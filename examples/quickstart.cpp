// Quickstart: the paper's §3 airline-reservation example, verbatim.
//
// Four sites W, X, Y, Z share flight A's N = 100 seats as data-value
// fragments of 25 each. Reservations decrement the local fragment;
// cancellations increment it; when a site's share runs short the value is
// redistributed via Virtual Messages; during a network partition both sides
// keep selling from their own quotas.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <iostream>

#include "system/cluster.h"

using namespace dvp;

namespace {

constexpr SiteId kW{0}, kX{1}, kY{2}, kZ{3};
const char* SiteName(SiteId s) {
  static const char* kNames[] = {"W", "X", "Y", "Z"};
  return kNames[s.value()];
}

void ShowFragments(system::Cluster& cluster, ItemId flight) {
  std::cout << "    fragments:";
  for (uint32_t s = 0; s < 4; ++s) {
    std::cout << " N_" << SiteName(SiteId(s)) << "="
              << cluster.site(SiteId(s)).LocalValue(flight);
  }
  std::cout << "  (N = " << cluster.TotalOf(flight) << ")\n";
}

void Reserve(system::Cluster& cluster, SiteId at, ItemId flight,
             core::Value seats) {
  txn::TxnSpec spec;
  spec.ops = {txn::TxnOp::Decrement(flight, seats)};
  spec.label = "reserve";
  auto submitted = cluster.Submit(at, spec, [&, at, seats](
                                                const txn::TxnResult& r) {
    std::cout << "  reserve " << seats << " seats at site " << SiteName(at)
              << " -> " << txn::TxnOutcomeName(r.outcome) << " (latency "
              << r.latency_us / 1000.0 << " ms, " << r.rounds
              << " gather rounds)\n";
  });
  if (!submitted.ok()) {
    std::cout << "  reserve refused: " << submitted.status().ToString()
              << "\n";
  }
  cluster.RunFor(2'000'000);
}

}  // namespace

int main() {
  // One data item: seats on flight A, domain = non-negative counts under
  // summation, initial value N = 100.
  core::Catalog catalog;
  ItemId flight_a =
      catalog.AddItem("flightA", core::CountDomain::Instance(), 100);

  system::ClusterOptions opts;
  opts.num_sites = 4;
  opts.seed = 2026;
  system::Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();  // N_W = N_X = N_Y = N_Z = 25

  std::cout << "== initial state ==\n";
  ShowFragments(cluster, flight_a);

  std::cout << "\n== customers requesting 3, 4 and 5 seats arrive at W ==\n";
  Reserve(cluster, kW, flight_a, 3);
  Reserve(cluster, kW, flight_a, 4);
  Reserve(cluster, kW, flight_a, 5);
  ShowFragments(cluster, flight_a);  // N_W: 25 -> 22 -> 18 -> 13

  std::cout << "\n== heavy selling elsewhere drains X to a small share ==\n";
  Reserve(cluster, kX, flight_a, 22);
  Reserve(cluster, kY, flight_a, 15);
  Reserve(cluster, kZ, flight_a, 10);
  ShowFragments(cluster, flight_a);

  std::cout << "\n== a customer wants 5 seats at X: X's share (3) is too "
               "small, so X redistributes via Vm ==\n";
  Reserve(cluster, kX, flight_a, 5);
  ShowFragments(cluster, flight_a);

  std::cout << "\n== network partitions {W,X} | {Y,Z}: both sides keep "
               "selling from local quotas ==\n";
  (void)cluster.Partition({{kW, kX}, {kY, kZ}});
  Reserve(cluster, kW, flight_a, 2);
  Reserve(cluster, kZ, flight_a, 2);
  std::cout << "  ...a demand larger than the group's reachable seats "
               "aborts by timeout (bounded decision, no blocking, no "
               "partition detection):\n";
  Reserve(cluster, kX, flight_a, 30);
  ShowFragments(cluster, flight_a);

  std::cout << "\n== the partition heals; the same demand now succeeds ==\n";
  cluster.Heal();
  Reserve(cluster, kX, flight_a, 30);
  ShowFragments(cluster, flight_a);

  std::cout << "\n== conservation audit ==\n";
  Status audit = cluster.AuditAll();
  std::cout << "  Σ fragments + in-flight Vm == initial + committed deltas: "
            << audit.ToString() << "\n";
  return audit.ok() ? 0 : 1;
}
