// Banking / electronic funds transfer (paper §2.2 and §8).
//
// Account balances are MoneyDomain items partitioned across branch sites.
// The paper's motivating scenarios:
//   * a deposit must ALWAYS be possible, even when the "home" share of the
//     balance is unreachable — it is an increment, effective at any site;
//   * withdrawals are bounded decrements — they succeed against whatever
//     share is reachable, never overdrawing;
//   * transfers move money between accounts atomically at one site;
//   * an audit (full read) drains the balance to one site — expensive but
//     exact, the §8 trade-off;
//   * crucial transfer messages are Vm: "the information contained in any
//     message is not lost by the system".
#include <iomanip>
#include <iostream>

#include "system/cluster.h"

using namespace dvp;

namespace {

std::string Money(core::Value cents) {
  std::ostringstream os;
  os << "$" << cents / 100 << "." << std::setw(2) << std::setfill('0')
     << cents % 100;
  return os.str();
}

txn::TxnResult RunTxn(system::Cluster& cluster, SiteId at,
                      const txn::TxnSpec& spec) {
  txn::TxnResult out;
  auto submitted =
      cluster.Submit(at, spec, [&out](const txn::TxnResult& r) { out = r; });
  if (!submitted.ok()) {
    out.status = submitted.status();
    return out;
  }
  cluster.RunFor(3'000'000);
  return out;
}

}  // namespace

int main() {
  core::Catalog catalog;
  // Two accounts, balances in cents.
  ItemId alice =
      catalog.AddItem("acct:alice", core::MoneyDomain::Instance(), 50'000);
  ItemId bob =
      catalog.AddItem("acct:bob", core::MoneyDomain::Instance(), 20'000);

  system::ClusterOptions opts;
  opts.num_sites = 3;  // three branches
  opts.seed = 7;
  system::Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();

  std::cout << "Branches: 3. alice=" << Money(cluster.TotalOf(alice))
            << " bob=" << Money(cluster.TotalOf(bob)) << "\n";

  // ---- Deposits during a partition -----------------------------------------
  std::cout << "\n-- network partitions {0} | {1,2}; alice deposits $120.00 "
               "at the isolated branch 0 --\n";
  (void)cluster.Partition({{SiteId(0)}, {SiteId(1), SiteId(2)}});
  txn::TxnSpec deposit;
  deposit.ops = {txn::TxnOp::Increment(alice, 12'000)};
  auto r = RunTxn(cluster, SiteId(0), deposit);
  std::cout << "   deposit: " << txn::TxnOutcomeName(r.outcome)
            << " — deposits never need the rest of the balance (§2.2's "
               "motivating example)\n";

  // ---- Withdrawal bounded by the reachable share ----------------------------
  std::cout << "\n-- bob withdraws $180.00 at branch 1 (his reachable share "
               "is 2/3 of $200.00) --\n";
  txn::TxnSpec withdraw;
  withdraw.ops = {txn::TxnOp::Decrement(bob, 18'000)};
  r = RunTxn(cluster, SiteId(1), withdraw);
  std::cout << "   withdraw $180: " << txn::TxnOutcomeName(r.outcome)
            << " (group holds only ~$133 of bob's money; the decision is a "
               "bounded timeout abort, money untouched)\n";
  withdraw.ops = {txn::TxnOp::Decrement(bob, 9'000)};
  r = RunTxn(cluster, SiteId(1), withdraw);
  std::cout << "   withdraw  $90: " << txn::TxnOutcomeName(r.outcome)
            << " (covered by the group's shares via redistribution)\n";

  cluster.Heal();
  cluster.RunFor(2'000'000);

  // ---- Atomic transfer ------------------------------------------------------
  std::cout << "\n-- alice pays bob $75.50 (single-site atomic transfer) --\n";
  txn::TxnSpec transfer;
  transfer.ops = {txn::TxnOp::Decrement(alice, 7'550),
                  txn::TxnOp::Increment(bob, 7'550)};
  transfer.label = "transfer";
  r = RunTxn(cluster, SiteId(2), transfer);
  std::cout << "   transfer: " << txn::TxnOutcomeName(r.outcome) << "\n";

  // ---- Full-read audit -------------------------------------------------------
  std::cout << "\n-- end-of-day audit: exact balances via full reads --\n";
  for (auto [name, item] : {std::pair{"alice", alice}, {"bob", bob}}) {
    txn::TxnSpec read;
    read.ops = {txn::TxnOp::ReadFull(item)};
    r = RunTxn(cluster, SiteId(0), read);
    if (!r.committed()) {
      // A first attempt from a branch whose Lamport clock lags can be
      // refused by the Conc1 gate; the refusals carry clock NACKs, so one
      // retry suffices (§7's bump-up in action).
      r = RunTxn(cluster, SiteId(0), read);
    }
    if (r.committed()) {
      std::cout << "   " << name << ": " << Money(r.read_values.at(item))
                << " (drained in " << r.rounds << " gather rounds)\n";
    } else {
      std::cout << "   " << name << ": audit aborted ("
                << r.status.ToString() << ")\n";
    }
  }

  std::cout << "\nExpected: alice = $500 + $120 - $75.50 = $544.50, "
               "bob = $200 - $90 + $75.50 = $185.50\n";

  Status audit = cluster.AuditAll();
  std::cout << "conservation audit: " << audit.ToString() << "\n";
  return audit.ok() ? 0 : 1;
}
