// Inventory control with a hot SKU, crash + independent recovery (paper §7,
// §8). Six warehouse sites allocate units of a single hot SKU concurrently
// (the "aggregate field" / hot-spot scenario); mid-run one site crashes and
// later recovers with no remote communication; the run ends with a
// conservation audit proving no unit was created or destroyed.
#include <iostream>

#include "system/cluster.h"
#include "workload/adapter.h"
#include "workload/generator.h"

using namespace dvp;

int main() {
  core::Catalog catalog;
  ItemId sku = catalog.AddItem("sku:widget", core::CountDomain::Instance(),
                               60'000);
  ItemId sku2 =
      catalog.AddItem("sku:gadget", core::CountDomain::Instance(), 12'000);

  system::ClusterOptions opts;
  opts.num_sites = 6;
  opts.seed = 99;
  opts.site.checkpoint_interval_us = 2'000'000;  // checkpoint every 2s
  system::Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();

  workload::DvpAdapter adapter(&cluster);
  workload::WorkloadOptions w;
  w.arrivals_per_sec = 300;   // allocations/restocks across all sites
  w.p_decrement = 0.55;       // ship units
  w.p_increment = 0.45;       // restock / returns
  w.p_read = 0;
  w.amount_min = 1;
  w.amount_max = 8;
  w.item_zipf_theta = 0.9;    // widget is the hot spot
  w.seed = 4242;
  std::vector<ItemId> items{sku, sku2};
  workload::WorkloadDriver driver(&adapter, items, w);

  // Crash site 2 at t=6s; recover it at t=12s and report what recovery did.
  cluster.kernel().ScheduleAt(6'000'000, [&cluster]() {
    std::cout << "[t=6s]  site 2 crashes (volatile state lost; its share of "
                 "the stock is temporarily inaccessible)\n";
    cluster.CrashSite(SiteId(2));
  });
  cluster.kernel().ScheduleAt(12'000'000, [&cluster]() {
    std::cout << "[t=12s] site 2 begins independent recovery\n";
    cluster.site(SiteId(2)).Recover([](const recovery::RecoveryReport& r) {
      std::cout << "[t=12s] recovery done: replayed " << r.records_replayed
                << " log records (" << r.redo_writes
                << " redo writes), remote messages needed = "
                << r.remote_messages_needed << "\n";
    });
  });

  std::cout << "Running 20s of inventory traffic on 6 sites "
               "(crash at 6s, recovery at 12s)...\n";
  auto results = driver.Run(20'000'000, 3'000'000);

  std::cout << "\nsubmitted " << results.submitted << ", committed "
            << results.committed() << " ("
            << 100.0 * results.commit_rate() << "%), refused while down "
            << results.rejected_down << "\n";
  std::cout << "commit latency p50 "
            << results.commit_latency_us.Median() / 1000.0 << " ms, p99 "
            << results.commit_latency_us.P99() / 1000.0 << " ms\n";

  std::cout << "\nfinal widget stock: " << cluster.TotalOf(sku)
            << " units across fragments:";
  for (uint32_t s = 0; s < cluster.num_sites(); ++s) {
    std::cout << " " << cluster.site(SiteId(s)).LocalValue(sku);
  }
  std::cout << "\n";

  Status audit = cluster.AuditAll();
  std::cout << "conservation audit (no unit created or lost, including "
               "across the crash): "
            << audit.ToString() << "\n";
  return audit.ok() ? 0 : 1;
}
