// Narrated partition timeline: watch the whole §3–§5 machinery at message
// granularity on a lossy network — partition, per-group progress, heal, Vm
// drain, then a full read that proves N_M = 0.
#include <iostream>

#include "system/cluster.h"

using namespace dvp;

namespace {

void Banner(system::Cluster& cluster, ItemId item, const std::string& what) {
  std::cout << "[t=" << cluster.Now() / 1000 << "ms] " << what
            << "  | fragments:";
  for (uint32_t s = 0; s < cluster.num_sites(); ++s) {
    if (cluster.site(SiteId(s)).IsUp()) {
      std::cout << " " << cluster.site(SiteId(s)).LocalValue(item);
    } else {
      std::cout << " (down)";
    }
  }
  auto audit = cluster.Audit(item);
  std::cout << " | in-flight Vm value: " << audit.in_flight << "\n";
}

void Submit(system::Cluster& cluster, SiteId at, txn::TxnSpec spec,
            const std::string& what) {
  (void)cluster.Submit(at, spec, [&cluster, what](const txn::TxnResult& r) {
    std::cout << "[t=" << cluster.Now() / 1000 << "ms]   " << what << " -> "
              << txn::TxnOutcomeName(r.outcome);
    for (const auto& [item, v] : r.read_values) {
      (void)item;
      std::cout << " (read " << v << ")";
    }
    std::cout << "\n";
  });
}

}  // namespace

int main() {
  core::Catalog catalog;
  ItemId pool = catalog.AddItem("pool", core::CountDomain::Instance(), 120);

  system::ClusterOptions opts;
  opts.num_sites = 4;
  opts.seed = 314;
  opts.link.loss_prob = 0.15;       // flaky links throughout
  opts.link.duplicate_prob = 0.05;  // and duplicating ones
  opts.site.txn.timeout_us = 400'000;
  system::Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();
  Banner(cluster, pool, "boot: 120 units split 30/30/30/30");

  // Drain site 0 so it must redistribute later.
  txn::TxnSpec drain;
  drain.ops = {txn::TxnOp::Decrement(pool, 28)};
  Submit(cluster, SiteId(0), drain, "allocate 28 at site 0 (local)");
  cluster.RunFor(500'000);

  txn::TxnSpec want10;
  want10.ops = {txn::TxnOp::Decrement(pool, 10)};
  Submit(cluster, SiteId(0), want10,
         "allocate 10 at site 0 (needs redistribution over lossy links)");
  cluster.RunFor(1'000'000);
  Banner(cluster, pool, "after lossy-link redistribution");

  std::cout << "\n--- network partitions {0,1} | {2,3} ---\n";
  (void)cluster.Partition({{SiteId(0), SiteId(1)}, {SiteId(2), SiteId(3)}});
  Submit(cluster, SiteId(1), want10, "allocate 10 at site 1 (own group)");
  Submit(cluster, SiteId(3), want10, "allocate 10 at site 3 (other group)");
  txn::TxnSpec want90;
  want90.ops = {txn::TxnOp::Decrement(pool, 90)};
  Submit(cluster, SiteId(2), want90,
         "allocate 90 at site 2 (more than its group holds: bounded abort)");
  cluster.RunFor(1'500'000);
  Banner(cluster, pool, "mid-partition");

  std::cout << "\n--- heal; in-flight Vm drain; full read proves N_M = 0 "
               "---\n";
  cluster.Heal();
  cluster.RunFor(1'000'000);
  txn::TxnSpec read;
  read.ops = {txn::TxnOp::ReadFull(pool)};
  Submit(cluster, SiteId(2), read, "full read at site 2 (drains Π⁻¹(d))");
  cluster.RunFor(3'000'000);
  Banner(cluster, pool, "after full read: everything at site 2");

  Status audit = cluster.AuditAll();
  std::cout << "\nconservation audit: " << audit.ToString() << "\n";
  return audit.ok() ? 0 : 1;
}
