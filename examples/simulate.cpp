// simulate — configurable simulation driver over the public API: build a
// cluster, run a mixed workload with optional faults, print the report.
//
//   ./build/examples/simulate --sites=8 --duration-s=30 --rate=200
//       --loss=0.2 --partition="0,1,2,3|4,5,6,7@10:20" --crash=2@5
//       --recover=2@15 --scheme=conc2 --read-mix=0.02
//
// Every flag has a sensible default; run with --help for the list.
#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "system/cluster.h"
#include "workload/adapter.h"
#include "workload/generator.h"

using namespace dvp;

namespace {

struct Flags {
  uint32_t sites = 4;
  uint64_t seed = 42;
  double duration_s = 20;
  double rate = 150;
  uint32_t items = 4;
  int64_t total = 4000;
  double read_mix = 0.0;
  double snap_mix = 0.0;
  double dec_mix = 0.5;
  double inc_mix = 0.5;
  double loss = 0.0;
  double dup = 0.0;
  double site_skew = 0.0;
  double timeout_ms = 300;
  std::string scheme = "conc1";
  // "g1|g2@start:end" with comma-separated site lists, seconds.
  std::string partition;
  // "site@t" in seconds.
  std::string crash;
  std::string recover;
  bool verbose = false;
};

void PrintHelp() {
  std::cout <<
      "simulate flags (all --key=value):\n"
      "  --sites=N --seed=N --duration-s=S --rate=TXN_PER_S\n"
      "  --items=N --total=V          catalog size / initial value each\n"
      "  --read-mix=F --snap-mix=F --dec-mix=F --inc-mix=F\n"
      "  --loss=F --dup=F             per-packet link faults\n"
      "  --site-skew=THETA            Zipf skew of submission sites\n"
      "  --timeout-ms=MS              redistribution timeout\n"
      "  --scheme=conc1|conc2         concurrency control\n"
      "  --partition=0,1|2,3@10:15    split groups over [10s,15s]\n"
      "  --crash=2@5 --recover=2@12   site failure schedule\n"
      "  --verbose                    dump per-site counters\n";
}

bool ParseFlag(const std::string& arg, const std::string& name,
               std::string* out) {
  std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

Flags Parse(int argc, char** argv) {
  Flags f;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string v;
    if (arg == "--help" || arg == "-h") {
      PrintHelp();
      std::exit(0);
    } else if (arg == "--verbose") {
      f.verbose = true;
    } else if (ParseFlag(arg, "sites", &v)) {
      f.sites = uint32_t(std::stoul(v));
    } else if (ParseFlag(arg, "seed", &v)) {
      f.seed = std::stoull(v);
    } else if (ParseFlag(arg, "duration-s", &v)) {
      f.duration_s = std::stod(v);
    } else if (ParseFlag(arg, "rate", &v)) {
      f.rate = std::stod(v);
    } else if (ParseFlag(arg, "items", &v)) {
      f.items = uint32_t(std::stoul(v));
    } else if (ParseFlag(arg, "total", &v)) {
      f.total = std::stoll(v);
    } else if (ParseFlag(arg, "read-mix", &v)) {
      f.read_mix = std::stod(v);
    } else if (ParseFlag(arg, "snap-mix", &v)) {
      f.snap_mix = std::stod(v);
    } else if (ParseFlag(arg, "dec-mix", &v)) {
      f.dec_mix = std::stod(v);
    } else if (ParseFlag(arg, "inc-mix", &v)) {
      f.inc_mix = std::stod(v);
    } else if (ParseFlag(arg, "loss", &v)) {
      f.loss = std::stod(v);
    } else if (ParseFlag(arg, "dup", &v)) {
      f.dup = std::stod(v);
    } else if (ParseFlag(arg, "site-skew", &v)) {
      f.site_skew = std::stod(v);
    } else if (ParseFlag(arg, "timeout-ms", &v)) {
      f.timeout_ms = std::stod(v);
    } else if (ParseFlag(arg, "scheme", &v)) {
      f.scheme = v;
    } else if (ParseFlag(arg, "partition", &v)) {
      f.partition = v;
    } else if (ParseFlag(arg, "crash", &v)) {
      f.crash = v;
    } else if (ParseFlag(arg, "recover", &v)) {
      f.recover = v;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      PrintHelp();
      std::exit(2);
    }
  }
  return f;
}

std::vector<SiteId> ParseSiteList(const std::string& s) {
  std::vector<SiteId> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(SiteId(uint32_t(std::stoul(tok))));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags = Parse(argc, argv);

  core::Catalog catalog;
  std::vector<ItemId> items;
  for (uint32_t i = 0; i < flags.items; ++i) {
    items.push_back(catalog.AddItem("item" + std::to_string(i),
                                    core::CountDomain::Instance(),
                                    flags.total));
  }

  system::ClusterOptions opts;
  opts.num_sites = flags.sites;
  opts.seed = flags.seed;
  opts.link.loss_prob = flags.loss;
  opts.link.duplicate_prob = flags.dup;
  opts.site.txn.timeout_us = SimTime(flags.timeout_ms * 1000);
  if (flags.scheme == "conc2") {
    opts.UseConc2();
  } else if (flags.scheme != "conc1") {
    std::cerr << "--scheme must be conc1 or conc2\n";
    return 2;
  }
  system::Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();
  workload::DvpAdapter adapter(&cluster);

  // Fault schedule.
  if (!flags.partition.empty()) {
    auto at = flags.partition.find('@');
    auto colon = flags.partition.find(':', at);
    auto bar = flags.partition.find('|');
    if (at == std::string::npos || colon == std::string::npos ||
        bar == std::string::npos) {
      std::cerr << "--partition format: g1|g2@start:end\n";
      return 2;
    }
    auto g1 = ParseSiteList(flags.partition.substr(0, bar));
    auto g2 = ParseSiteList(flags.partition.substr(bar + 1, at - bar - 1));
    SimTime start = SimTime(std::stod(flags.partition.substr(at + 1)) * 1e6);
    SimTime end = SimTime(std::stod(flags.partition.substr(colon + 1)) * 1e6);
    cluster.kernel().ScheduleAt(start, [&cluster, g1, g2]() {
      Status s = cluster.Partition({g1, g2});
      std::cout << "[fault] partition: " << s.ToString() << "\n";
    });
    cluster.kernel().ScheduleAt(end, [&cluster]() {
      cluster.Heal();
      std::cout << "[fault] healed\n";
    });
  }
  auto schedule_site_event = [&](const std::string& spec, bool is_crash) {
    if (spec.empty()) return;
    auto at = spec.find('@');
    SiteId site(uint32_t(std::stoul(spec.substr(0, at))));
    SimTime when = SimTime(std::stod(spec.substr(at + 1)) * 1e6);
    cluster.kernel().ScheduleAt(when, [&cluster, site, is_crash]() {
      if (is_crash) {
        cluster.CrashSite(site);
        std::cout << "[fault] site " << site.value() << " crashed\n";
      } else {
        cluster.RecoverSite(site);
        std::cout << "[fault] site " << site.value() << " recovering\n";
      }
    });
  };
  schedule_site_event(flags.crash, true);
  schedule_site_event(flags.recover, false);

  // Workload.
  workload::WorkloadOptions w;
  w.arrivals_per_sec = flags.rate;
  w.p_read = flags.read_mix;
  w.p_snapshot = flags.snap_mix;
  w.p_decrement = flags.dec_mix;
  w.p_increment = flags.inc_mix;
  w.site_zipf_theta = flags.site_skew;
  w.seed = flags.seed * 3 + 1;
  workload::WorkloadDriver driver(&adapter, items, w);

  std::cout << "running " << flags.duration_s << "s of virtual time on "
            << flags.sites << " sites (" << flags.scheme << ", "
            << flags.rate << " txn/s)...\n";
  auto results = driver.Run(SimTime(flags.duration_s * 1e6));

  // Report.
  std::cout << "\n== results ==\n";
  std::cout << "submitted            " << results.submitted << "\n";
  std::cout << "committed            " << results.committed() << " ("
            << 100.0 * results.commit_rate() << "%)\n";
  for (const auto& [outcome, count] : results.outcomes) {
    if (outcome == txn::TxnOutcome::kCommitted) continue;
    std::cout << txn::TxnOutcomeName(outcome) << "  " << count << "\n";
  }
  std::cout << "refused (site down)  " << results.rejected_down << "\n";
  std::cout << "commit latency       "
            << results.commit_latency_us.Summary() << " (us)\n";
  std::cout << "decision latency max " << results.decision_latency_us.max()
            << " us (non-blocking bound)\n";

  CounterSet counters = cluster.AggregateCounters();
  std::cout << "\nmessages sent " << counters.Get("net.sent")
            << ", vm created " << counters.Get("vm.created")
            << ", vm accepted " << counters.Get("vm.accepted") << "\n";
  if (flags.verbose) std::cout << counters.ToString() << "\n";

  std::cout << "\nitem totals:";
  for (ItemId item : items) std::cout << " " << cluster.TotalOf(item);
  Status audit = cluster.AuditAll();
  std::cout << "\nconservation audit: " << audit.ToString() << "\n";
  return audit.ok() ? 0 : 1;
}
