#include "net/transport.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "net/backoff.h"
#include "obs/trace.h"

namespace dvp::net {

Transport::Transport(runtime::Runtime* rt, Conduit* conduit, SiteId self,
                     obs::MetricsRegistry* metrics, Options options,
                     obs::TraceRecorder* trace)
    : rt_(rt),
      conduit_(conduit),
      self_(self),
      trace_(trace),
      options_(options),
      m_ack_piggyback_(obs::CounterIn(metrics, "transport.ack_piggyback")),
      m_ack_pure_(obs::CounterIn(metrics, "transport.ack_pure")),
      m_stale_epoch_drop_(obs::CounterIn(metrics, "transport.stale_epoch_drop")),
      m_cum_fastforward_(obs::CounterIn(metrics, "transport.cum_fastforward")),
      m_dup_drop_(obs::CounterIn(metrics, "transport.dup_drop")),
      m_window_drop_(obs::CounterIn(metrics, "transport.window_drop")),
      m_retransmit_(obs::CounterIn(metrics, "transport.retransmit")),
      m_coalesced_frames_(obs::CounterIn(metrics, "transport.coalesced_frames")),
      m_coalesced_riders_(obs::CounterIn(metrics, "transport.coalesced_riders")),
      m_frame_cache_invalidate_(
          obs::CounterIn(metrics, "transport.frame_cache_invalidate")),
      use_frame_cache_(conduit->WantsFrameCache()) {}

Transport::~Transport() { *alive_ = false; }

size_t Transport::dedup_entries() const {
  size_t n = 0;
  for (const auto& [peer, pi] : in_) {
    (void)peer;
    n += pi.above.size();
  }
  return n;
}

void Transport::NoteDedupSize() {
  dedup_peak_ = std::max(dedup_peak_, dedup_entries());
}

void Transport::AttachAck(Packet* p) {
  auto it = in_.find(p->dst);
  if (it == in_.end()) return;
  PeerIn& pi = it->second;
  p->has_ack = true;
  p->ack_epoch = pi.epoch;
  p->ack_cum = pi.cum;
  if (pi.ack_owed) {
    pi.ack_owed = false;  // this packet is the ack; the pure-ack timer yields
    pi.ack_timer.Cancel();
    ++piggyback_acks_;
    m_ack_piggyback_->Inc();
  }
}

void Transport::SendOnWire(Packet&& p) {
  if (hint_fn_ && options_.max_frame_hints > 0) {
    p.hints = hint_fn_(p.dst);
    if (p.hints.size() > options_.max_frame_hints) {
      p.hints.resize(options_.max_frame_hints);
    }
  }
  p.trace_id = p.payload ? p.payload->trace_id : 0;
  if (p.frame_cache) {
    // Cache validity is decided here, after every per-send field (hints, the
    // piggyback ack from AttachAck, seq_base) has been stamped: bytes encoded
    // under a different fingerprint would resurrect stale channel state on
    // the wire, so they are discarded and the conduit re-encodes.
    FrameCache& fc = *p.frame_cache;
    if (!fc.bytes.empty() && !fc.Matches(p)) {
      fc.bytes.clear();
      ++frame_cache_invalidations_;
      m_frame_cache_invalidate_->Inc();
    }
    if (fc.bytes.empty()) fc.Fingerprint(p);
  }
  if (trace_) {
    trace_->Instant(self_, obs::Track::kNet, "net.send", p.trace_id, "dst",
                    p.dst.value(), "seq", p.seq.valid() ? p.seq.value() : 0);
  }
  conduit_->Send(std::move(p));
}

void Transport::Stage(SiteId dst, Reliability reliability, uint64_t seq,
                      EnvelopePtr payload, FrameCachePtr cache) {
  staging_[dst].push_back(
      StagedMsg{reliability, seq, std::move(payload), std::move(cache)});
  if (flush_armed_) return;
  flush_armed_ = true;
  uint64_t gen = generation_;
  rt_->Schedule(0, [this, gen, alive = alive_]() {
    if (!*alive || gen != generation_) return;
    flush_armed_ = false;
    FlushStaging();
  });
}

void Transport::FlushStaging() {
  std::map<SiteId, std::vector<StagedMsg>> staged = std::move(staging_);
  staging_.clear();
  for (auto& [dst, msgs] : staged) {
    for (size_t i = 0; i < msgs.size(); i += options_.max_frame_msgs) {
      size_t end = std::min(msgs.size(),
                            i + static_cast<size_t>(options_.max_frame_msgs));
      Packet p;
      p.src = self_;
      p.dst = dst;
      p.reliability = msgs[i].reliability;
      p.epoch = epoch_;
      p.seq = MsgSeq(msgs[i].seq);
      auto po = out_.find(dst);
      if (po != out_.end() && !po->second.pending.empty()) {
        p.seq_base = po->second.pending.begin()->first;
      }
      p.payload = std::move(msgs[i].payload);
      for (size_t j = i + 1; j < end; ++j) {
        p.extra.push_back(
            SubMsg{msgs[j].reliability, MsgSeq(msgs[j].seq),
                   std::move(msgs[j].payload)});
      }
      if (end == i + 1) {
        // Single-message frame: byte-identical to a non-coalesced send, so
        // the message's encode-once slot applies. A frame with riders is a
        // different byte string and never one a retransmission replays.
        p.frame_cache = std::move(msgs[i].cache);
      }
      if (!p.extra.empty()) {
        ++coalesced_frames_;
        coalesced_riders_ += p.extra.size();
        m_coalesced_frames_->Inc();
        m_coalesced_riders_->Inc(p.extra.size());
      }
      AttachAck(&p);
      SendOnWire(std::move(p));
    }
  }
}

void Transport::SendPacket(SiteId dst, uint64_t seq,
                           const EnvelopePtr& payload,
                           const FrameCachePtr& cache) {
  if (options_.coalesce) {
    Stage(dst, Reliability::kReliable, seq, payload, cache);
    return;
  }
  Packet p;
  p.src = self_;
  p.dst = dst;
  p.reliability = Reliability::kReliable;
  p.epoch = epoch_;
  p.seq = MsgSeq(seq);
  auto po = out_.find(dst);
  if (po != out_.end() && !po->second.pending.empty()) {
    p.seq_base = po->second.pending.begin()->first;
  }
  p.payload = payload;
  p.frame_cache = cache;
  AttachAck(&p);
  SendOnWire(std::move(p));
}

void Transport::SendDatagram(SiteId dst, EnvelopePtr payload) {
  if (options_.coalesce) {
    Stage(dst, Reliability::kDatagram, /*seq=*/0, std::move(payload),
          /*cache=*/nullptr);
    return;
  }
  Packet p;
  p.src = self_;
  p.dst = dst;
  p.reliability = Reliability::kDatagram;
  p.epoch = epoch_;
  p.payload = std::move(payload);
  AttachAck(&p);
  SendOnWire(std::move(p));
}

void Transport::SendReliable(SiteId dst, uint64_t token,
                             EnvelopePtr payload) {
  if (token_index_.contains(token)) {
    // A silent overwrite here would orphan the first payload (its pending
    // entry — and with it the retransmission guarantee — would vanish).
    // Token reuse means the id space above us collapsed; refuse to run on.
    std::fprintf(stderr,
                 "Transport::SendReliable: token %llu is already a live "
                 "reliable send at site %u — caller reused an id\n",
                 static_cast<unsigned long long>(token), self_.value());
    std::abort();
  }
  PeerOut& po = out_[dst];
  uint64_t seq = po.next_seq++;
  token_index_.emplace(token, std::make_pair(dst, seq));
  FrameCachePtr cache =
      use_frame_cache_ ? std::make_shared<FrameCache>() : nullptr;
  po.pending.emplace(seq, PendingSend{token, payload, /*sends=*/1, cache});
  if (po.pending.size() == 1) {
    po.next_due = rt_->Now() + JitteredInterval(dst, po);
  }
  SendPacket(dst, seq, payload, cache);
  ArmTimer();
}

void Transport::CancelReliable(uint64_t token) {
  auto it = token_index_.find(token);
  if (it == token_index_.end()) return;
  auto [dst, seq] = it->second;
  token_index_.erase(it);
  auto po = out_.find(dst);
  if (po != out_.end()) po->second.pending.erase(seq);
}

void Transport::Broadcast(EnvelopePtr payload) {
  conduit_->Broadcast(self_, std::move(payload));
}

void Transport::ProcessAck(SiteId from, uint64_t ack_epoch, uint64_t ack_cum) {
  if (ack_epoch != epoch_) return;  // ack for a previous incarnation of us
  auto it = out_.find(from);
  if (it == out_.end()) return;
  PeerOut& po = it->second;
  // Evidence the peer is reachable again: restart the backoff schedule.
  po.backoff_exp = 0;
  std::vector<uint64_t> completed;
  while (!po.pending.empty() && po.pending.begin()->first <= ack_cum) {
    completed.push_back(po.pending.begin()->second.token);
    token_index_.erase(po.pending.begin()->second.token);
    po.pending.erase(po.pending.begin());
  }
  if (!completed.empty() && !po.pending.empty()) {
    po.next_due = rt_->Now() + JitteredInterval(from, po);
  }
  for (uint64_t token : completed) {
    if (trace_) {
      trace_->Instant(self_, obs::Track::kNet, "net.ack", 0, "peer",
                      from.value(), "token", token);
    }
    if (ack_fn_) ack_fn_(token);
  }
}

void Transport::OweAck(SiteId src) {
  PeerIn& pi = in_[src];
  if (pi.ack_owed) return;  // pure ack already armed
  pi.ack_owed = true;
  uint64_t gen = generation_;
  pi.ack_timer = rt_->Schedule(options_.ack_delay_us,
                                   [this, gen, src, alive = alive_]() {
    if (!*alive || gen != generation_) return;
    auto it = in_.find(src);
    if (it == in_.end() || !it->second.ack_owed) return;  // piggybacked since
    it->second.ack_owed = false;
    Packet p;
    p.src = self_;
    p.dst = src;
    p.reliability = Reliability::kDatagram;
    p.epoch = epoch_;
    p.has_ack = true;
    p.ack_epoch = it->second.epoch;
    p.ack_cum = it->second.cum;
    ++pure_acks_;
    m_ack_pure_->Inc();
    SendOnWire(std::move(p));
  });
}

void Transport::OnPacket(const Packet& packet) {
  // Hints first: a request riding this same frame should find the surplus
  // cache already refreshed by its own carrier.
  if (!packet.hints.empty() && hint_sink_) {
    hint_sink_(packet.src, packet.hints);
  }
  if (packet.has_ack) ProcessAck(packet.src, packet.ack_epoch, packet.ack_cum);
  if (packet.payload) {
    ProcessSub(packet.src, packet.epoch, packet.reliability,
               packet.seq.value(), packet.seq_base, packet.payload);
  }
  // Coalesced riders, in send order. Channel state (epoch, seq_base, the
  // piggyback ack above) is frame-wide; dedup and delivery are per message.
  for (const SubMsg& sub : packet.extra) {
    ProcessSub(packet.src, packet.epoch, sub.reliability, sub.seq.value(),
               packet.seq_base, sub.payload);
  }
}

void Transport::ProcessSub(SiteId src, uint64_t epoch, Reliability reliability,
                           uint64_t seq, uint64_t seq_base,
                           const EnvelopePtr& payload) {
  if (reliability != Reliability::kReliable) {
    if (deliver_fn_) deliver_fn_(src, payload);
    return;
  }

  PeerIn& pi = in_[src];
  if (epoch < pi.epoch) {
    // A packet from the sender's previous life; its numbering is void and
    // anything it carried was re-driven from the sender's log.
    m_stale_epoch_drop_->Inc();
    return;
  }
  if (epoch > pi.epoch) {
    pi = PeerIn{};  // reborn sender: fresh channel
    pi.epoch = epoch;
  }

  if (seq_base > pi.cum + 1) {
    // The sender has completed everything below seq_base (a previous
    // incarnation of us consumed it, or it was cancelled above the
    // transport) and will never retransmit it. Without the fast-forward a
    // reborn receiver's cumulative counter would stall below the gap forever
    // and no later send on this channel could ever be cum-acked.
    pi.cum = seq_base - 1;
    while (!pi.above.empty() && *pi.above.begin() <= pi.cum) {
      pi.above.erase(pi.above.begin());
    }
    while (pi.above.contains(pi.cum + 1)) {
      pi.above.erase(pi.cum + 1);
      ++pi.cum;
    }
    m_cum_fastforward_->Inc();
  }

  if (seq <= pi.cum || pi.above.contains(seq)) {
    ++dup_drops_;
    m_dup_drop_->Inc();
    if (trace_) {
      trace_->Instant(self_, obs::Track::kNet, "net.dedup",
                      payload ? payload->trace_id : 0, "src", src.value(),
                      "seq", seq);
    }
    OweAck(src);  // the sender evidently missed our ack; re-ack
    return;
  }
  if (seq > pi.cum + options_.recv_window) {
    // Beyond the receive window: recording it would unbound the dedup set.
    // Drop without acking; the sender's backoff re-offers it later.
    m_window_drop_->Inc();
    return;
  }

  bool consumed = deliver_fn_ && deliver_fn_(src, payload);
  if (!consumed) return;  // refused (e.g. locked item); retransmission re-offers

  // Note: deliver_fn_ may have re-entered us (the handler sends acks or new
  // transfers), so re-find the channel rather than trusting `pi`.
  PeerIn& pin = in_[src];
  if (epoch != pin.epoch) return;  // channel reset mid-delivery
  pin.above.insert(seq);
  while (pin.above.contains(pin.cum + 1)) {
    pin.above.erase(pin.cum + 1);
    ++pin.cum;
  }
  NoteDedupSize();
  OweAck(src);
}

void Transport::Crash() {
  out_.clear();
  in_.clear();
  token_index_.clear();
  // Staged-but-unflushed messages die with the process, exactly like packets
  // lost on the wire; reliable ones are re-driven from the log on recovery.
  staging_.clear();
  // Invalidate any armed timer: its generation check will fail. The owner
  // assigns a fresh epoch (from the stable incarnation) before reuse.
  ++generation_;
  timer_armed_ = false;
  flush_armed_ = false;
}

SimTime Transport::IntervalFor(const PeerOut& po) const {
  return backoff::Interval(options_.rto_us, options_.rto_max_us,
                           po.backoff_exp);
}

SimTime Transport::JitteredInterval(SiteId peer, const PeerOut& po) const {
  uint64_t salt = (uint64_t{self_.value()} << 40) ^
                  (uint64_t{peer.value()} << 20) ^ po.rounds;
  return backoff::Jittered(IntervalFor(po), options_.rto_max_us, salt);
}

void Transport::ArmTimer() {
  SimTime due = kSimTimeMax;
  for (const auto& [peer, po] : out_) {
    (void)peer;
    if (!po.pending.empty()) due = std::min(due, po.next_due);
  }
  if (due == kSimTimeMax) return;
  if (timer_armed_ && armed_at_ <= due) return;  // an earlier event covers it
  timer_armed_ = true;
  armed_at_ = due;
  uint64_t gen = generation_;
  rt_->ScheduleAt(std::max(due, rt_->Now()),
                      [this, gen, due, alive = alive_]() {
    if (!*alive || gen != generation_) return;
    if (!timer_armed_ || armed_at_ != due) return;  // superseded
    timer_armed_ = false;
    OnTimer();
  });
}

void Transport::OnTimer() {
  SimTime now = rt_->Now();
  for (auto& [peer, po] : out_) {
    if (po.pending.empty() || po.next_due > now) continue;
    // Retransmit the oldest unacked burst with their ORIGINAL seqs — the
    // receiver's dedup window and the Vm layer's logged filter both key on
    // them, so a retransmission must be indistinguishable from a link dup.
    uint32_t sent = 0;
    for (auto& [seq, ps] : po.pending) {
      if (sent >= options_.retransmit_burst) break;
      SendPacket(peer, seq, ps.payload, ps.cache);
      ++ps.sends;
      ++retransmissions_;
      m_retransmit_->Inc();
      if (trace_) {
        trace_->Instant(self_, obs::Track::kNet, "net.retransmit",
                        ps.payload ? ps.payload->trace_id : 0, "dst",
                        peer.value(), "seq", seq);
      }
      ++sent;
    }
    po.backoff_exp = std::min(po.backoff_exp + 1, uint32_t{30});
    ++po.rounds;
    po.next_due = now + JitteredInterval(peer, po);
  }
  ArmTimer();
}

}  // namespace dvp::net
