#include "net/transport.h"

#include <cassert>

namespace dvp::net {

Transport::Transport(sim::Kernel* kernel, Network* network, SiteId self,
                     Options options)
    : kernel_(kernel), network_(network), self_(self), options_(options) {}

void Transport::SendDatagram(SiteId dst, EnvelopePtr payload) {
  Packet p;
  p.src = self_;
  p.dst = dst;
  p.reliability = Reliability::kDatagram;
  p.seq = MsgSeq(next_seq_++);
  p.payload = std::move(payload);
  network_->Send(std::move(p));
}

void Transport::SendReliable(SiteId dst, uint64_t token,
                             EnvelopePtr payload) {
  Packet p;
  p.src = self_;
  p.dst = dst;
  p.reliability = Reliability::kReliable;
  p.seq = MsgSeq(next_seq_++);
  p.payload = payload;
  network_->Send(std::move(p));
  pending_[token] = PendingSend{dst, std::move(payload)};
  ArmTimer();
}

void Transport::CancelReliable(uint64_t token) { pending_.erase(token); }

void Transport::Broadcast(EnvelopePtr payload) {
  network_->Broadcast(self_, std::move(payload));
}

void Transport::OnPacket(const Packet& packet) {
  if (!packet.payload) return;  // pure-ack packets carry no payload
  if (deliver_fn_) deliver_fn_(packet.src, packet.payload);
}

void Transport::Crash() {
  pending_.clear();
  // Invalidate any armed timer: its generation check will fail.
  ++generation_;
  timer_armed_ = false;
}

void Transport::ArmTimer() {
  if (timer_armed_ || pending_.empty()) return;
  timer_armed_ = true;
  uint64_t gen = generation_;
  kernel_->Schedule(options_.rto_us, [this, gen]() {
    if (gen != generation_) return;  // crashed since; timer is stale
    timer_armed_ = false;
    OnTimer();
  });
}

void Transport::OnTimer() {
  for (const auto& [token, send] : pending_) {
    (void)token;
    Packet p;
    p.src = self_;
    p.dst = send.dst;
    p.reliability = Reliability::kReliable;
    p.seq = MsgSeq(next_seq_++);
    p.payload = send.payload;
    network_->Send(std::move(p));
    ++retransmissions_;
  }
  ArmTimer();
}

}  // namespace dvp::net
