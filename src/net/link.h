// Per-link fault and delay model. Links may "lose, delay, duplicate messages
// or just fail" (paper §7); this class samples those behaviours from a
// deterministic RNG stream.
#pragma once

#include "common/rng.h"
#include "common/types.h"

namespace dvp::net {

/// Parameters of a (directed) communication link.
struct LinkParams {
  /// Fixed propagation delay component, microseconds.
  SimTime base_delay_us = 1000;
  /// Mean of the additional exponential jitter; 0 disables jitter, which
  /// together with zero loss/duplication yields the FIFO, order-synchronous
  /// channels Conc2 requires (§6.2).
  double jitter_mean_us = 500;
  /// Probability an individual packet is silently dropped.
  double loss_prob = 0.0;
  /// Probability a packet is delivered twice (independent of loss).
  double duplicate_prob = 0.0;

  /// Convenience: a perfectly synchronous, loss-free FIFO link.
  static LinkParams Synchronous(SimTime delay_us = 1000) {
    LinkParams p;
    p.base_delay_us = delay_us;
    p.jitter_mean_us = 0;
    p.loss_prob = 0;
    p.duplicate_prob = 0;
    return p;
  }
};

/// Samples per-packet behaviour for one link.
class Link {
 public:
  Link(LinkParams params, Rng rng) : params_(params), rng_(rng) {}

  const LinkParams& params() const { return params_; }
  void set_params(LinkParams p) { params_ = p; }

  /// True if this packet instance should be dropped.
  bool SampleLoss() { return rng_.NextBool(params_.loss_prob); }
  /// True if an extra copy should be delivered.
  bool SampleDuplicate() { return rng_.NextBool(params_.duplicate_prob); }
  /// Delivery latency for one packet instance.
  SimTime SampleDelay() {
    SimTime d = params_.base_delay_us;
    if (params_.jitter_mean_us > 0) {
      d += static_cast<SimTime>(rng_.NextExponential(params_.jitter_mean_us));
    }
    return d;
  }

 private:
  LinkParams params_;
  Rng rng_;
};

}  // namespace dvp::net
