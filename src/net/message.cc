#include "net/message.h"

namespace dvp::net {

namespace {

/// Upstream of the envelope pool: counts every block the pool actually pulls
/// from the heap, so the envelopes/upstream ratio in EnvelopePoolStats shows
/// how much recycling the pool achieves.
class CountingUpstream final : public std::pmr::memory_resource {
 public:
  EnvelopePoolStats stats;

 private:
  void* do_allocate(size_t bytes, size_t alignment) override {
    ++stats.upstream_allocations;
    stats.upstream_bytes += bytes;
    return std::pmr::new_delete_resource()->allocate(bytes, alignment);
  }
  void do_deallocate(void* p, size_t bytes, size_t alignment) override {
    std::pmr::new_delete_resource()->deallocate(p, bytes, alignment);
  }
  bool do_is_equal(const std::pmr::memory_resource& other) const
      noexcept override {
    return this == &other;
  }
};

CountingUpstream& Upstream() {
  static CountingUpstream upstream;
  return upstream;
}

}  // namespace

std::pmr::memory_resource* EnvelopePool() {
  // Never destroyed: envelopes are shared across sites and a bench may hold
  // metrics snapshots past cluster teardown, so the arena must outlive every
  // possible shared_ptr. A leaked singleton is the standard answer.
  static auto* pool =
      new std::pmr::unsynchronized_pool_resource(&Upstream());
  return pool;
}

const EnvelopePoolStats& PoolStats() { return Upstream().stats; }

namespace internal {
void NoteEnvelopeAllocated() { ++Upstream().stats.envelopes; }
}  // namespace internal

}  // namespace dvp::net
