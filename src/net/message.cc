#include "net/message.h"

#include <atomic>
#include <mutex>

namespace dvp::net {

namespace {

/// Upstream of the envelope pool: counts every block the pool actually pulls
/// from the heap, so the envelopes/upstream ratio in EnvelopePoolStats shows
/// how much recycling the pool achieves.
class CountingUpstream final : public std::pmr::memory_resource {
 public:
  // Atomics: the pool refills from any site's loop thread on the real
  // runtime; NoteEnvelopeAllocated races with them by design.
  std::atomic<uint64_t> envelopes{0};
  std::atomic<uint64_t> upstream_allocations{0};
  std::atomic<uint64_t> upstream_bytes{0};

 private:
  void* do_allocate(size_t bytes, size_t alignment) override {
    upstream_allocations.fetch_add(1, std::memory_order_relaxed);
    upstream_bytes.fetch_add(bytes, std::memory_order_relaxed);
    return std::pmr::new_delete_resource()->allocate(bytes, alignment);
  }
  void do_deallocate(void* p, size_t bytes, size_t alignment) override {
    std::pmr::new_delete_resource()->deallocate(p, bytes, alignment);
  }
  bool do_is_equal(const std::pmr::memory_resource& other) const
      noexcept override {
    return this == &other;
  }
};

CountingUpstream& Upstream() {
  static CountingUpstream upstream;
  return upstream;
}

/// Serializes an unsynchronized pool instead of using
/// std::pmr::synchronized_pool_resource: the two differ in chunk-growth
/// policy, and the pinned bench JSONs (BENCH_scale.json) fix the exact
/// upstream-allocation count of the unsynchronized pool. The mutex gives the
/// real runtime's loop threads the same safety — a shared_ptr released on a
/// different thread than it was allocated on still returns its block under
/// the lock — while the sim pays one uncontended lock per allocation.
class LockedPool final : public std::pmr::memory_resource {
 public:
  explicit LockedPool(std::pmr::memory_resource* upstream) : pool_(upstream) {}

 private:
  void* do_allocate(size_t bytes, size_t alignment) override {
    std::lock_guard<std::mutex> lock(mu_);
    return pool_.allocate(bytes, alignment);
  }
  void do_deallocate(void* p, size_t bytes, size_t alignment) override {
    std::lock_guard<std::mutex> lock(mu_);
    pool_.deallocate(p, bytes, alignment);
  }
  bool do_is_equal(const std::pmr::memory_resource& other) const
      noexcept override {
    return this == &other;
  }

  std::mutex mu_;
  std::pmr::unsynchronized_pool_resource pool_;
};

}  // namespace

std::pmr::memory_resource* EnvelopePool() {
  // Never destroyed: envelopes are shared across sites and a bench may hold
  // metrics snapshots past cluster teardown, so the arena must outlive every
  // possible shared_ptr. A leaked singleton is the standard answer.
  static auto* pool = new LockedPool(&Upstream());
  return pool;
}

EnvelopePoolStats PoolStats() {
  CountingUpstream& up = Upstream();
  EnvelopePoolStats stats;
  stats.envelopes = up.envelopes.load(std::memory_order_relaxed);
  stats.upstream_allocations =
      up.upstream_allocations.load(std::memory_order_relaxed);
  stats.upstream_bytes = up.upstream_bytes.load(std::memory_order_relaxed);
  return stats;
}

namespace internal {
void NoteEnvelopeAllocated() {
  Upstream().envelopes.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace internal

}  // namespace dvp::net
