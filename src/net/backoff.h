// Shared capped-exponential-backoff arithmetic. The transport's per-peer
// retransmission schedule and the transaction manager's read-retry rounds
// both need the same two ingredients: a base interval doubled per attempt up
// to a cap, and a deterministic jitter that spreads simultaneous retriers
// without consuming any RNG stream (runs must stay a pure function of seed
// and schedule). Keeping the arithmetic here keeps the two schedules
// provably identical in shape and lets tests pin it once.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/types.h"

namespace dvp::net::backoff {

/// SplitMix64 finaliser: deterministic jitter without consuming RNG streams
/// (retry timing must not perturb the workload's random sequences).
inline uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Exponential backoff, capped (the "retransmission cap"): base_us << exp,
/// collapsed to max_us when the shift exceeds 30, overflows, or passes the
/// cap — shifts beyond the cap would overflow and an unreachable peer needs
/// no finer schedule.
inline SimTime Interval(SimTime base_us, SimTime max_us, uint32_t exp) {
  exp = std::min(exp, uint32_t{30});
  SimTime interval = base_us << exp;
  if (interval <= 0 || interval > max_us) interval = max_us;
  return interval;
}

/// Adds deterministic jitter in [0, interval/4] derived from `salt`: spreads
/// retriers so a heal does not trigger a synchronised burst.
inline SimTime Jittered(SimTime interval, uint64_t salt) {
  return interval +
         static_cast<SimTime>(Mix(salt) %
                              static_cast<uint64_t>(interval / 4 + 1));
}

}  // namespace dvp::net::backoff
