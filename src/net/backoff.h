// Shared capped-exponential-backoff arithmetic. The transport's per-peer
// retransmission schedule and the transaction manager's read-retry rounds
// both need the same two ingredients: a base interval doubled per attempt up
// to a cap, and a deterministic jitter that spreads simultaneous retriers
// without consuming any RNG stream (runs must stay a pure function of seed
// and schedule). Keeping the arithmetic here keeps the two schedules
// provably identical in shape and lets tests pin it once.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/types.h"

namespace dvp::net::backoff {

/// SplitMix64 finaliser: deterministic jitter without consuming RNG streams
/// (retry timing must not perturb the workload's random sequences).
inline uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Exponential backoff, capped (the "retransmission cap"): base_us doubled
/// `exp` times, collapsed to max_us once the doubled interval would pass the
/// cap — an unreachable peer needs no finer schedule. The would-it-pass test
/// is `base_us > max_us >> exp`, checked BEFORE any shift: the old
/// `base_us << exp` probe was a signed left shift that overflows (UB) for
/// large bases before its own `interval <= 0` guard could run. Degenerate
/// inputs (base or cap <= 0) collapse to the cap, matching the old guard.
inline SimTime Interval(SimTime base_us, SimTime max_us, uint32_t exp) {
  exp = std::min(exp, uint32_t{30});
  if (base_us <= 0 || max_us <= 0) return max_us;
  if (base_us > (max_us >> exp)) return max_us;
  return base_us << exp;  // cannot overflow: base_us <= max_us >> exp
}

/// Adds deterministic jitter in [0, interval/4] derived from `salt`, clamped
/// to `max_us`: spreads retriers so a heal does not trigger a synchronised
/// burst, without letting a maxed-out retrier wait past the documented cap
/// (jitter on top of an already-capped interval used to stretch the wait to
/// 1.25 * max_us).
inline SimTime Jittered(SimTime interval, SimTime max_us, uint64_t salt) {
  SimTime jittered =
      interval + static_cast<SimTime>(
                     Mix(salt) % static_cast<uint64_t>(interval / 4 + 1));
  return std::min(jittered, max_us);
}

}  // namespace dvp::net::backoff
