// The simulated network: routes packets between registered endpoints over
// per-pair Link fault models, subject to the PartitionOracle. Delivery is an
// event on the simulation kernel; connectivity is (re)checked at delivery
// time, so a split that happens while a packet is in flight destroys it —
// the pessimistic fault model of §2.2.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "net/conduit.h"
#include "net/link.h"
#include "net/message.h"
#include "net/partition.h"
#include "sim/kernel.h"

namespace dvp::net {

/// Statistics the network gathers for the experiment harness.
struct NetworkStats {
  uint64_t packets_sent = 0;
  uint64_t packets_delivered = 0;
  uint64_t packets_lost_link = 0;       ///< dropped by the link fault model
  uint64_t packets_lost_partition = 0;  ///< dropped by disconnection
  uint64_t packets_lost_down = 0;       ///< destination site was down
  uint64_t packets_duplicated = 0;
  /// Modeled wire bytes (WireBytes) of packets offered by senders. Link
  /// duplicates are charged to bytes_delivered only, mirroring how
  /// packets_sent excludes packets_duplicated.
  uint64_t bytes_sent = 0;
  uint64_t bytes_delivered = 0;  ///< bytes that reached a live endpoint
};

class Network final : public Conduit {
 public:
  /// All links start with `default_link`; individual pairs can be overridden
  /// via SetLinkParams.
  Network(sim::Kernel* kernel, uint32_t num_sites, LinkParams default_link,
          Rng rng);

  /// Registers the delivery callback for a site. `is_up` gates delivery so a
  /// crashed site silently loses incoming packets.
  void RegisterEndpoint(SiteId site, DeliveryFn deliver,
                        std::function<bool()> is_up) override;

  /// Sends a packet. Never fails from the caller's perspective: loss is
  /// silent, exactly as the paper's model demands (no undeliverable-message
  /// notifications).
  void Send(Packet packet) override;

  /// Broadcast helper used by Conc2: delivers copies of the payload to every
  /// other site with identical, loss-free timing (the atomic ordered
  /// broadcast assumed in §6.2). Requires synchronous link params.
  void Broadcast(SiteId src, EnvelopePtr payload) override;

  /// Overrides the fault model of the directed link src→dst.
  void SetLinkParams(SiteId src, SiteId dst, LinkParams params);
  /// Overrides every link at once.
  void SetAllLinkParams(LinkParams params);

  PartitionOracle& partition() { return partition_; }
  const PartitionOracle& partition() const { return partition_; }

  const NetworkStats& stats() const { return stats_; }
  uint32_t num_sites() const override { return num_sites_; }
  sim::Kernel* kernel() { return kernel_; }

 private:
  struct Endpoint {
    DeliveryFn deliver;
    std::function<bool()> is_up;
  };

  Link& LinkFor(SiteId src, SiteId dst);
  /// Takes the packet by value and moves it into the delivery event — one
  /// Packet (with its hint/rider vectors) alive per scheduled delivery, no
  /// extra copy per hop. `wire_bytes` is the sender-computed WireBytes,
  /// passed in so the figure is costed once per Send, not per delivery.
  void ScheduleDelivery(Packet packet, SimTime delay, uint64_t wire_bytes);

  sim::Kernel* kernel_;
  uint32_t num_sites_;
  PartitionOracle partition_;
  LinkParams default_link_;
  Rng rng_;
  std::vector<std::unique_ptr<Link>> links_;  // dense (src * n + dst)
  std::vector<Endpoint> endpoints_;
  NetworkStats stats_;
};

}  // namespace dvp::net
