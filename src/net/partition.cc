#include "net/partition.h"

#include <algorithm>

namespace dvp::net {

PartitionOracle::PartitionOracle(uint32_t num_sites)
    : group_(num_sites, 0) {}

Status PartitionOracle::Split(
    const std::vector<std::vector<SiteId>>& groups) {
  std::vector<uint32_t> assignment(group_.size(),
                                   std::numeric_limits<uint32_t>::max());
  for (uint32_t g = 0; g < groups.size(); ++g) {
    for (SiteId s : groups[g]) {
      if (!s.valid() || s.value() >= group_.size()) {
        return Status::InvalidArgument("Split: site id out of range");
      }
      if (assignment[s.value()] != std::numeric_limits<uint32_t>::max()) {
        return Status::InvalidArgument("Split: site listed twice");
      }
      assignment[s.value()] = g;
    }
  }
  for (uint32_t v : assignment) {
    if (v == std::numeric_limits<uint32_t>::max()) {
      return Status::InvalidArgument("Split: groups must cover every site");
    }
  }
  group_ = std::move(assignment);
  partitioned_ = groups.size() > 1;
  ++version_;
  return Status::OK();
}

void PartitionOracle::Heal() {
  std::fill(group_.begin(), group_.end(), 0);
  partitioned_ = false;
  ++version_;
}

Status PartitionOracle::Isolate(SiteId site) {
  if (!site.valid() || site.value() >= group_.size()) {
    return Status::InvalidArgument("Isolate: site id out of range");
  }
  // Give the isolated site a group id no other site uses.
  uint32_t fresh = static_cast<uint32_t>(group_.size()) + 1 + site.value();
  group_[site.value()] = fresh;
  partitioned_ = true;
  ++version_;
  return Status::OK();
}

bool PartitionOracle::Connected(SiteId a, SiteId b) const {
  if (a == b) return true;
  return group_[a.value()] == group_[b.value()];
}

uint32_t PartitionOracle::GroupOf(SiteId site) const {
  return group_[site.value()];
}

uint32_t PartitionOracle::num_groups() const {
  std::vector<uint32_t> seen(group_.begin(), group_.end());
  std::sort(seen.begin(), seen.end());
  seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
  return static_cast<uint32_t>(seen.size());
}

}  // namespace dvp::net
