// Per-site transport: at-least-once delivery for "crucial" payloads.
//
// The paper builds Vm on a window protocol with numbered messages and
// piggybacked cumulative acks (§4.2) and observes that unique per-message
// identifiers are not essential (§8). We implement the equivalent but
// crash-proof form: the transport retransmits a reliable payload on a timer
// until the layer above cancels it (which it does after durably logging the
// acknowledgement), and *exactly-once* semantics are enforced above us by the
// Vm layer's logged duplicate detection — volatile sequence numbers cannot
// survive a crash, logged Vm identifiers can. Requests and acks travel as
// fire-and-forget datagrams since "their delivery is not critical".
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "common/histogram.h"
#include "common/types.h"
#include "net/network.h"
#include "sim/kernel.h"

namespace dvp::net {

class Transport {
 public:
  struct Options {
    /// Retransmission interval for unacked reliable payloads.
    SimTime rto_us = 50'000;
  };

  Transport(sim::Kernel* kernel, Network* network, SiteId self,
            Options options);

  /// Fire-and-forget send.
  void SendDatagram(SiteId dst, EnvelopePtr payload);

  /// Sends `payload` now and keeps retransmitting every rto until
  /// CancelReliable(token) is called. `token` is chosen by the caller (the Vm
  /// layer passes the VmId) and must be unique among live reliable sends.
  void SendReliable(SiteId dst, uint64_t token, EnvelopePtr payload);

  /// Stops retransmitting `token`. Idempotent; unknown tokens are ignored
  /// (a duplicate ack after the first is the normal case).
  void CancelReliable(uint64_t token);

  /// Ordered-broadcast datagram to all other sites (Conc2's environment
  /// primitive; meaningful under synchronous link params).
  void Broadcast(EnvelopePtr payload);

  /// Wire entry: the Site routes incoming packets here; the transport simply
  /// hands the payload up (dedup lives in the Vm layer).
  void OnPacket(const Packet& packet);

  /// Upper-layer delivery hook.
  void set_deliver_fn(std::function<void(SiteId from, EnvelopePtr)> fn) {
    deliver_fn_ = std::move(fn);
  }

  /// Crash: all volatile retransmission state evaporates. The Vm layer
  /// re-registers outstanding sends from its log during recovery.
  void Crash();

  /// Number of payloads currently being retransmitted.
  size_t outstanding() const { return pending_.size(); }

  uint64_t retransmissions() const { return retransmissions_; }
  SiteId self() const { return self_; }

 private:
  void ArmTimer();
  void OnTimer();

  struct PendingSend {
    SiteId dst;
    EnvelopePtr payload;
  };

  sim::Kernel* kernel_;
  Network* network_;
  SiteId self_;
  Options options_;
  std::function<void(SiteId, EnvelopePtr)> deliver_fn_;
  std::map<uint64_t, PendingSend> pending_;
  bool timer_armed_ = false;
  uint64_t generation_ = 0;  // invalidates timers across crashes
  uint64_t retransmissions_ = 0;
  uint64_t next_seq_ = 1;  // tracing only
};

}  // namespace dvp::net
