// Per-site transport: the window protocol the paper defers to [Tanenbaum 81]
// for Vm delivery (§4.2), in crash-aware form.
//
//  * Per-peer sequence numbers. Each (sender, receiver) channel numbers its
//    reliable packets independently; retransmissions reuse the original
//    number, so every duplicate is recognisable downstream.
//  * Cumulative piggybacked acks. Every outgoing packet to a peer carries
//    "all reliable seqs <= ack_cum were received and processed safely"; a
//    delayed pure ack (empty packet) covers quiet reverse channels. When the
//    sender sees the ack it stops retransmitting and notifies the layer
//    above (set_ack_fn), which is how the Vm layer learns of acceptance even
//    when the explicit VmAckMsg datagram is lost.
//  * Bounded dedup window. The receiver drops reliable packets whose seq is
//    covered by the cumulative watermark or recorded in the (bounded)
//    out-of-order set, so the layer above sees each consumed payload once
//    per sender incarnation. Exactly-once across crashes still lives in the
//    Vm layer's *logged* duplicate filter — volatile windows cannot survive
//    a crash, logged Vm identifiers can.
//  * Epochs. Packets carry the sender's stable-storage incarnation; a reborn
//    sender starts a fresh channel and stale packets from its previous life
//    are dropped.
//  * Per-peer exponential backoff with deterministic jitter and a burst cap
//    per round, so an unreachable peer costs O(log time) packets instead of
//    the fixed-RTO retransmission storm.
//  * Optional frame coalescing. With Options::coalesce on, every message
//    staged within one event tick to the same peer rides a single frame
//    (primary + Packet::extra) under one piggybacked ack — the paper's
//    observation that a real message may carry many virtual messages (§4.2)
//    applied to the transport: a group-commit force that releases a burst of
//    Vm transfers and acceptance acks costs one packet per peer, not one per
//    message.
//
// Delivery is consume-aware: the upper layer returns false to refuse a
// payload (e.g. a Vm transfer deferred because the item is locked, §5); a
// refused packet is neither acked nor recorded, so retransmission re-offers
// it until it is consumed.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>

#include "common/histogram.h"
#include "common/types.h"
#include "net/conduit.h"
#include "obs/metrics.h"
#include "runtime/runtime.h"

namespace dvp::obs {
class TraceRecorder;
}

namespace dvp::net {

class Transport {
 public:
  struct Options {
    /// Base retransmission interval for unacked reliable payloads.
    SimTime rto_us = 50'000;
    /// Backoff cap: per-peer retransmission interval never exceeds this.
    SimTime rto_max_us = 1'600'000;
    /// Delayed pure-ack fallback: how long the receiver waits for reverse
    /// traffic to piggyback on before sending an empty ack packet.
    SimTime ack_delay_us = 10'000;
    /// At most this many pending payloads are retransmitted to one peer per
    /// backoff round (kills retransmission storms during partitions).
    uint32_t retransmit_burst = 8;
    /// Receive-window width: reliable seqs further than this beyond the
    /// cumulative watermark are dropped (the sender retries later), which
    /// bounds the out-of-order dedup set per peer.
    uint64_t recv_window = 1024;
    /// Coalescing: outgoing messages stage per destination for one zero-delay
    /// event tick and ride a single frame (primary + Packet::extra), sharing
    /// one piggybacked cumulative ack. Amortises real messages when a burst
    /// targets the same peer — e.g. the Vm transfers and acceptance acks a
    /// group-commit force releases together. Off: one message per packet,
    /// byte-identical to the pre-coalescing transport.
    bool coalesce = false;
    /// Upper bound on messages per coalesced frame (primary + riders).
    uint32_t max_frame_msgs = 8;
    /// Placement-hint piggyback: up to this many per-item surplus/demand
    /// advertisements (PlacementHint) ride every outgoing packet — the same
    /// free-rider trick as the cumulative ack. 0 disables the channel. The
    /// hints themselves come from set_hint_fn (the placement layer); the
    /// transport only bounds and carries them.
    uint32_t max_frame_hints = 0;
  };

  Transport(runtime::Runtime* rt, Conduit* conduit, SiteId self,
            obs::MetricsRegistry* metrics, Options options,
            obs::TraceRecorder* trace = nullptr);
  ~Transport();

  /// Fire-and-forget send (carries a piggybacked ack when one is owed).
  void SendDatagram(SiteId dst, EnvelopePtr payload);

  /// Sends `payload` now and keeps retransmitting (same seq, exponential
  /// per-peer backoff) until the peer's cumulative ack covers it or
  /// CancelReliable(token) is called. `token` is chosen by the caller (the
  /// Vm layer passes the VmId) and MUST be unique among live reliable sends;
  /// a collision is a caller bug and aborts loudly.
  void SendReliable(SiteId dst, uint64_t token, EnvelopePtr payload);

  /// Stops retransmitting `token`. Idempotent; unknown tokens are ignored
  /// (an ack that already completed the send is the normal case).
  void CancelReliable(uint64_t token);

  /// Ordered-broadcast datagram to all other sites (Conc2's environment
  /// primitive; meaningful under synchronous link params).
  void Broadcast(EnvelopePtr payload);

  /// Wire entry: the Site routes incoming packets here. Processes piggyback
  /// acks, dedups reliable packets, and hands fresh payloads up.
  void OnPacket(const Packet& packet);

  /// Upper-layer delivery hook. Returns true when the payload was consumed
  /// (safe to ack and dedup), false to refuse it (it will be re-offered on
  /// retransmission).
  void set_deliver_fn(std::function<bool(SiteId from, EnvelopePtr)> fn) {
    deliver_fn_ = std::move(fn);
  }

  /// Invoked with the caller's token when the peer's cumulative ack covers a
  /// reliable send — the transport-level "received and processed safely"
  /// signal (the Vm layer logs the Vm's death on it).
  void set_ack_fn(std::function<void(uint64_t token)> fn) {
    ack_fn_ = std::move(fn);
  }

  /// Placement-hint source: called once per outgoing packet with the
  /// destination, returns the advertisements to piggyback (already bounded by
  /// the provider; the transport additionally truncates to max_frame_hints).
  /// Hints are gathered at send time, so even a retransmission carries the
  /// sender's freshest view.
  void set_hint_fn(std::function<std::vector<PlacementHint>(SiteId dst)> fn) {
    hint_fn_ = std::move(fn);
  }

  /// Placement-hint sink: invoked with (sender, hints) before the packet's
  /// payload is delivered, so a request arriving on the same frame already
  /// sees the refreshed surplus cache.
  void set_hint_sink(
      std::function<void(SiteId src, const std::vector<PlacementHint>&)> fn) {
    hint_sink_ = std::move(fn);
  }

  /// Sender incarnation stamped on outgoing packets; the Site sets it from
  /// the stable storage incarnation after each recovery.
  void set_epoch(uint64_t epoch) { epoch_ = epoch; }
  uint64_t epoch() const { return epoch_; }

  /// Crash: all volatile channel state evaporates. The Vm layer re-registers
  /// outstanding sends from its log during recovery (under a new epoch).
  void Crash();

  /// Number of payloads currently being retransmitted.
  size_t outstanding() const { return token_index_.size(); }

  uint64_t retransmissions() const { return retransmissions_; }
  /// Encode-once bookkeeping (only moves when the conduit WantsFrameCache):
  /// how many times a pending send's cached bytes had to be discarded because
  /// the channel state under them drifted (ack advanced, hints changed).
  uint64_t frame_cache_invalidations() const {
    return frame_cache_invalidations_;
  }
  uint64_t dup_drops() const { return dup_drops_; }
  uint64_t pure_acks() const { return pure_acks_; }
  uint64_t piggyback_acks() const { return piggyback_acks_; }
  /// Frames that actually carried more than one message, and the total
  /// rider count across them (messages saved vs one-per-packet sending).
  uint64_t coalesced_frames() const { return coalesced_frames_; }
  uint64_t coalesced_riders() const { return coalesced_riders_; }
  /// Current total out-of-order dedup entries across peers (the cumulative
  /// watermarks compress everything below them to one integer per peer).
  size_t dedup_entries() const;
  /// High-water mark of dedup_entries() over the transport's lifetime.
  size_t dedup_peak() const { return dedup_peak_; }
  SiteId self() const { return self_; }

 private:
  /// Sender half of one channel.
  struct PendingSend {
    uint64_t token = 0;
    EnvelopePtr payload;
    uint64_t sends = 1;  // original + retransmissions
    /// Encode-once slot for this (dst, seq): filled by the conduit on first
    /// wire encoding, replayed by retransmissions while the fingerprint
    /// holds. Null when the conduit doesn't serialize (sim network).
    FrameCachePtr cache;
  };
  struct PeerOut {
    uint64_t next_seq = 1;
    std::map<uint64_t, PendingSend> pending;  // seq -> send, oldest first
    uint32_t backoff_exp = 0;
    SimTime next_due = 0;  // earliest time the next retransmit round may fire
    uint64_t rounds = 0;   // jitter salt
  };

  /// Receiver half of one channel (per sender incarnation).
  struct PeerIn {
    uint64_t epoch = 0;
    uint64_t cum = 0;          // all reliable seqs <= cum were consumed
    std::set<uint64_t> above;  // consumed out-of-order seqs > cum
    bool ack_owed = false;     // delayed pure ack armed
    /// The armed pure-ack event; cancelled outright when the ack piggybacks
    /// on an outgoing frame first, so the kernel queue is not left churning
    /// through tombstone wakeups on busy channels.
    runtime::TimerHandle ack_timer;
  };

  /// One staged message awaiting the coalescing flush.
  struct StagedMsg {
    Reliability reliability = Reliability::kDatagram;
    uint64_t seq = 0;
    EnvelopePtr payload;
    /// Rides along so a reliable message that flushes alone (no riders) still
    /// reuses its encode-once slot; a coalesced frame is a different byte
    /// string from any single-message frame, so riders forgo the cache.
    FrameCachePtr cache;
  };

  void ArmTimer();
  void OnTimer();
  /// Stamps the frame's trace_id from its primary payload, records the
  /// net.send trace event, and hands the packet to the network.
  void SendOnWire(Packet&& p);
  void SendPacket(SiteId dst, uint64_t seq, const EnvelopePtr& payload,
                  const FrameCachePtr& cache);
  void AttachAck(Packet* p);
  /// Queues one message for `dst` and arms the zero-delay flush event.
  void Stage(SiteId dst, Reliability reliability, uint64_t seq,
             EnvelopePtr payload, FrameCachePtr cache);
  /// Drains the staging buffers into coalesced frames (one per destination
  /// per max_frame_msgs chunk), each carrying the freshest piggyback ack.
  void FlushStaging();
  /// Receiver side of one message (the frame's primary or a rider): epoch
  /// and window checks, dedup, delivery, ack scheduling.
  void ProcessSub(SiteId src, uint64_t epoch, Reliability reliability,
                  uint64_t seq, uint64_t seq_base, const EnvelopePtr& payload);
  void ProcessAck(SiteId from, uint64_t ack_epoch, uint64_t ack_cum);
  void OweAck(SiteId src);
  SimTime IntervalFor(const PeerOut& po) const;
  SimTime JitteredInterval(SiteId peer, const PeerOut& po) const;
  void NoteDedupSize();

  runtime::Runtime* rt_;
  Conduit* conduit_;
  SiteId self_;
  obs::TraceRecorder* trace_;
  Options options_;

  // Typed metric handles, resolved once at construction (obs::MetricsRegistry
  // map nodes are stable); the hot path is a pointer increment.
  obs::Counter* m_ack_piggyback_;
  obs::Counter* m_ack_pure_;
  obs::Counter* m_stale_epoch_drop_;
  obs::Counter* m_cum_fastforward_;
  obs::Counter* m_dup_drop_;
  obs::Counter* m_window_drop_;
  obs::Counter* m_retransmit_;
  obs::Counter* m_coalesced_frames_;
  obs::Counter* m_coalesced_riders_;
  obs::Counter* m_frame_cache_invalidate_;
  std::function<bool(SiteId, EnvelopePtr)> deliver_fn_;
  std::function<void(uint64_t)> ack_fn_;
  std::function<std::vector<PlacementHint>(SiteId)> hint_fn_;
  std::function<void(SiteId, const std::vector<PlacementHint>&)> hint_sink_;

  uint64_t epoch_ = 0;
  std::map<SiteId, PeerOut> out_;
  std::map<SiteId, PeerIn> in_;
  /// token -> (dst, seq); also the collision detector.
  std::map<uint64_t, std::pair<SiteId, uint64_t>> token_index_;

  /// Per-destination messages awaiting the coalescing flush (empty when
  /// coalescing is off). Volatile: a crash drops staged messages exactly like
  /// packets lost on the wire — reliable ones are re-driven from the log.
  std::map<SiteId, std::vector<StagedMsg>> staging_;
  bool flush_armed_ = false;

  bool timer_armed_ = false;
  SimTime armed_at_ = 0;
  uint64_t generation_ = 0;  // invalidates timers across crashes
  /// Scheduled lambdas capture this flag instead of trusting `this` to
  /// outlive them: the Site destroys its Transport on crash while the
  /// kernel's queue may still hold our timer events.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  /// Resolved once: Conduit::WantsFrameCache at construction.
  bool use_frame_cache_ = false;

  uint64_t retransmissions_ = 0;
  uint64_t frame_cache_invalidations_ = 0;
  uint64_t dup_drops_ = 0;
  uint64_t pure_acks_ = 0;
  uint64_t piggyback_acks_ = 0;
  uint64_t coalesced_frames_ = 0;
  uint64_t coalesced_riders_ = 0;
  size_t dedup_peak_ = 0;
};

}  // namespace dvp::net
