// The transport-endpoint half of the runtime seam: everything the Site and
// its Transport ever asked of the simulated Network, as an interface. Two
// implementations:
//
//  * net::Network (network.h) — the simulated wire: per-pair Link fault
//    models, PartitionOracle, delivery as a kernel event. Packets cross as
//    shared C++ objects; EncodedSize() is a modeled byte ledger.
//  * runtime::Real's UDP conduit (runtime/real.h) — real loopback UDP
//    datagrams framed with the Packet byte codec (proto/packet_codec.h),
//    received on the destination site's event-loop thread.
//
// Contract: Send never fails from the caller's perspective (loss is silent,
// exactly as the paper's model demands — no undeliverable-message
// notifications); delivery happens on the destination site's runtime (its
// kernel event, or its loop thread), never synchronously inside Send.
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.h"
#include "net/message.h"

namespace dvp::net {

/// Callback a site registers to receive packets. A site that is crashed
/// deregisters (or returns false from its liveness probe) and in-flight
/// packets addressed to it are dropped.
using DeliveryFn = std::function<void(const Packet&)>;

class Conduit {
 public:
  virtual ~Conduit() = default;

  /// Registers the delivery callback for a site. `is_up` gates delivery so a
  /// crashed site silently loses incoming packets.
  virtual void RegisterEndpoint(SiteId site, DeliveryFn deliver,
                                std::function<bool()> is_up) = 0;

  /// Sends a packet. Loss is silent.
  virtual void Send(Packet packet) = 0;

  /// Broadcast helper used by Conc2: delivers copies of the payload to every
  /// other site. Only the sim network gives it the loss-free, identical
  /// timing of an atomic ordered broadcast (§6.2); the real backend degrades
  /// it to a best-effort datagram fan-out, so Conc2 soundness does NOT carry
  /// over (DESIGN § runtime seam).
  virtual void Broadcast(SiteId src, EnvelopePtr payload) = 0;

  virtual uint32_t num_sites() const = 0;

  /// True when this conduit actually serializes packets and wants the
  /// transport to attach a FrameCache to reliable sends so retransmissions
  /// can replay the first encoding. The sim network ships shared objects and
  /// keeps the default (no cache, no per-send bookkeeping).
  virtual bool WantsFrameCache() const { return false; }
};

}  // namespace dvp::net
