// Network-partition model. A partition assigns every site to a group;
// packets between different groups are dropped at delivery time (messages in
// flight when the split happens are lost too, matching the paper's worst-case
// assumption that no undeliverable-message notification exists, §2.2).
//
// Crucially, *no component of the DvP system ever queries this oracle* — the
// paper's central point is that transaction processing needs no partition
// detection. Only the harness (to inject faults) and the metrics layer (to
// label results per group) touch it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace dvp::net {

/// Mutable record of the current partition of n sites into groups.
class PartitionOracle {
 public:
  explicit PartitionOracle(uint32_t num_sites);

  /// Splits the network: `groups` must cover every site exactly once.
  Status Split(const std::vector<std::vector<SiteId>>& groups);

  /// Restores full connectivity.
  void Heal();

  /// Disconnects a single site from everyone else (a "clean" isolation).
  Status Isolate(SiteId site);

  /// True iff packets can currently flow from a to b.
  bool Connected(SiteId a, SiteId b) const;

  /// Group index of a site (0 when not partitioned).
  uint32_t GroupOf(SiteId site) const;

  /// True when more than one group exists.
  bool IsPartitioned() const { return partitioned_; }

  uint32_t num_sites() const { return static_cast<uint32_t>(group_.size()); }
  uint32_t num_groups() const;

  /// Monotone counter of topology changes; lets observers cheaply detect
  /// "something changed since I last looked".
  uint64_t version() const { return version_; }

 private:
  std::vector<uint32_t> group_;
  bool partitioned_ = false;
  uint64_t version_ = 0;
};

}  // namespace dvp::net
