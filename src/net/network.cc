#include "net/network.h"

#include <cassert>
#include <utility>

namespace dvp::net {

Network::Network(sim::Kernel* kernel, uint32_t num_sites,
                 LinkParams default_link, Rng rng)
    : kernel_(kernel),
      num_sites_(num_sites),
      partition_(num_sites),
      default_link_(default_link),
      rng_(rng),
      links_(static_cast<size_t>(num_sites) * num_sites),
      endpoints_(num_sites) {}

void Network::RegisterEndpoint(SiteId site, DeliveryFn deliver,
                               std::function<bool()> is_up) {
  assert(site.value() < num_sites_);
  endpoints_[site.value()] = Endpoint{std::move(deliver), std::move(is_up)};
}

Link& Network::LinkFor(SiteId src, SiteId dst) {
  size_t idx = static_cast<size_t>(src.value()) * num_sites_ + dst.value();
  if (!links_[idx]) {
    links_[idx] = std::make_unique<Link>(
        default_link_, rng_.Fork(0x10000 + idx));
  }
  return *links_[idx];
}

void Network::SetLinkParams(SiteId src, SiteId dst, LinkParams params) {
  LinkFor(src, dst).set_params(params);
}

void Network::SetAllLinkParams(LinkParams params) {
  default_link_ = params;
  for (auto& link : links_) {
    if (link) link->set_params(params);
  }
}

void Network::ScheduleDelivery(Packet packet, SimTime delay,
                               uint64_t wire_bytes) {
  kernel_->Schedule(delay, [this, packet = std::move(packet), wire_bytes]() {
    // Connectivity and destination liveness are evaluated at delivery time:
    // a partition or crash that happened while the packet was in flight
    // destroys it.
    if (!partition_.Connected(packet.src, packet.dst)) {
      ++stats_.packets_lost_partition;
      return;
    }
    const Endpoint& ep = endpoints_[packet.dst.value()];
    if (!ep.deliver || (ep.is_up && !ep.is_up())) {
      ++stats_.packets_lost_down;
      return;
    }
    ++stats_.packets_delivered;
    stats_.bytes_delivered += wire_bytes;
    ep.deliver(packet);
  });
}

void Network::Send(Packet packet) {
  assert(packet.src.value() < num_sites_ && packet.dst.value() < num_sites_);
  ++stats_.packets_sent;
  // Costed once here; envelopes cache their own encoded sizes, so even this
  // walk touches each sub-message's figure, not the sub-message itself.
  uint64_t wire_bytes = WireBytes(packet);
  stats_.bytes_sent += wire_bytes;
  if (packet.src == packet.dst) {
    // Local loopback: immediate, reliable.
    ScheduleDelivery(std::move(packet), 0, wire_bytes);
    return;
  }
  if (!partition_.Connected(packet.src, packet.dst)) {
    ++stats_.packets_lost_partition;
    return;
  }
  Link& link = LinkFor(packet.src, packet.dst);
  if (link.SampleLoss()) {
    ++stats_.packets_lost_link;
    return;
  }
  // The RNG draw order (loss, delay, duplicate?, dup-delay) and the
  // original-before-duplicate event insertion order are part of the chaos
  // determinism contract; the duplicate branch copies up front so the
  // common no-duplicate path moves the packet straight into its event.
  SimTime delay = link.SampleDelay();
  if (link.SampleDuplicate()) {
    ++stats_.packets_duplicated;
    Packet dup = packet;
    SimTime dup_delay = link.SampleDelay();
    ScheduleDelivery(std::move(packet), delay, wire_bytes);
    ScheduleDelivery(std::move(dup), dup_delay, wire_bytes);
  } else {
    ScheduleDelivery(std::move(packet), delay, wire_bytes);
  }
}

void Network::Broadcast(SiteId src, EnvelopePtr payload) {
  // Uniform delay for every destination: together with FIFO links this gives
  // the "every site receives the broadcasts in the same order" property.
  SimTime delay = default_link_.base_delay_us;
  for (uint32_t d = 0; d < num_sites_; ++d) {
    if (d == src.value()) continue;
    Packet p;
    p.src = src;
    p.dst = SiteId(d);
    p.reliability = Reliability::kDatagram;
    p.payload = payload;
    ++stats_.packets_sent;
    uint64_t wire_bytes = WireBytes(p);
    stats_.bytes_sent += wire_bytes;
    if (!partition_.Connected(p.src, p.dst)) {
      ++stats_.packets_lost_partition;
      continue;
    }
    ScheduleDelivery(std::move(p), delay, wire_bytes);
  }
}

}  // namespace dvp::net
