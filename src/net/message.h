// Wire-level message representation. The network layer treats payloads as
// opaque Envelope subclasses defined by the layers above (requests, Vm
// transfers, 2PC votes, ...). Packets carry the transport metadata the paper
// assumes from "window protocols" [Tanenbaum 81]: per-channel sequence
// numbers, a sender epoch (advanced on crash recovery), and a piggybacked
// cumulative acknowledgement for the reverse channel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <memory_resource>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace dvp::net {

/// Fixed overhead every envelope pays on the (modeled) wire: message kind,
/// trace id. The simulator never serializes for real; sizes are the byte
/// ledger the experiment harness charges traffic against.
inline constexpr size_t kEnvelopeHeaderBytes = 16;

/// Base class for all application payloads carried by the network.
/// Payloads are immutable once sent (shared between duplicates).
class Envelope {
 public:
  virtual ~Envelope() = default;
  /// Short human-readable tag for tracing (e.g. "VmTransfer", "Request").
  virtual std::string_view Tag() const = 0;

  /// Modeled serialized size of this payload, header included. Subclasses
  /// with variable-length bodies override; the default covers the fixed
  /// header only.
  virtual size_t EncodedSize() const { return kEnvelopeHeaderBytes; }

  /// Encode-once size: computed on first use and cached, the same trick
  /// GroupCommitLog::EncodeRecordTo plays for log records. Every
  /// retransmission, duplicate, and coalesced frame the envelope rides
  /// reuses the cached figure instead of re-walking the message.
  size_t WireSize() const {
    if (wire_size_ == 0) wire_size_ = EncodedSize();
    return wire_size_;
  }

  /// Causal id of the transaction (or standalone Vm) this payload serves;
  /// senders stamp it, replies echo it, and the trace recorder links the
  /// cross-site events it appears in into one chain. 0 = uncorrelated.
  uint64_t trace_id = 0;

 private:
  /// Cached EncodedSize(); safe because payloads are immutable once sent.
  mutable size_t wire_size_ = 0;
};

using EnvelopePtr = std::shared_ptr<const Envelope>;

/// Running tally of the envelope pool's behavior: how many envelopes were
/// pool-allocated versus how many times the pool had to go to the upstream
/// allocator for a fresh block. A high envelopes/upstream ratio is the
/// recycling the pool exists for.
struct EnvelopePoolStats {
  uint64_t envelopes = 0;             ///< MakeEnvelope allocations served
  uint64_t upstream_allocations = 0;  ///< pool refills from the heap
  uint64_t upstream_bytes = 0;        ///< bytes fetched from the heap
};

/// The process-lifetime pool envelopes are carved from. Messages are small,
/// identically-shaped, and churn at per-transaction rate — exactly the
/// profile a pool resource recycles well. Process lifetime (not per-site) so
/// shared_ptrs crossing sites never outlive their arena; unsynchronized is
/// fine because the simulation is single-threaded.
std::pmr::memory_resource* EnvelopePool();
/// Snapshot of the pool counters (by value: on the real runtime the counters
/// are atomics updated from every site's loop thread).
EnvelopePoolStats PoolStats();

namespace internal {
void NoteEnvelopeAllocated();
}  // namespace internal

/// Allocates an envelope (control block included, via allocate_shared) from
/// the pool. Drop-in for std::make_shared at every message construction site.
template <typename T, typename... Args>
std::shared_ptr<T> MakeEnvelope(Args&&... args) {
  internal::NoteEnvelopeAllocated();
  return std::allocate_shared<T>(std::pmr::polymorphic_allocator<T>(
                                     EnvelopePool()),
                                 std::forward<Args>(args)...);
}

/// Transport classes: reliable messages are numbered, retransmitted and
/// delivered in order exactly once per epoch; datagrams are fire-and-forget
/// (the paper notes request messages "need not have unique identifiers as
/// their delivery is not critical", §8).
enum class Reliability : uint8_t { kDatagram = 0, kReliable = 1 };

/// One additional message riding a coalesced frame (Transport::Options::
/// coalesce): the frame's primary fields describe the first message, each
/// rider carries its own transport class and sequence number. Everything else
/// — epoch, seq_base, the piggybacked ack — is channel state shared by the
/// whole frame.
struct SubMsg {
  Reliability reliability = Reliability::kDatagram;
  MsgSeq seq;  // meaningful for reliable riders
  EnvelopePtr payload;
};

/// One piggybacked fragment-placement advertisement: the sender's own view of
/// one item at send time. Rides outgoing packets the same way the cumulative
/// ack does (Transport::Options::max_frame_hints bounds how many per frame)
/// and is purely advisory — a stale or lost hint costs extra messages, never
/// correctness.
struct PlacementHint {
  ItemId item;
  /// MaxShippable(local fragment) at send time: what the sender could grant a
  /// redistribution request right now.
  int64_t surplus = 0;
  /// The sender's local-shortfall EWMA: how much value per recent history its
  /// own transactions came up short (drives the background rebalancer).
  int64_t demand = 0;
  /// Sender virtual send time; receivers keep only the freshest per
  /// (sender, item) so reordered frames cannot roll the cache backwards.
  uint64_t stamp = 0;

  friend bool operator==(const PlacementHint& a, const PlacementHint& b) {
    return a.item == b.item && a.surplus == b.surplus &&
           a.demand == b.demand && a.stamp == b.stamp;
  }
  friend bool operator!=(const PlacementHint& a, const PlacementHint& b) {
    return !(a == b);
  }
};

struct Packet;

/// Encode-once cache for one reliable send: the frame bytes from the first
/// wire encoding plus a fingerprint of every channel-state field that was
/// encoded under them. A retransmission whose fingerprint still matches
/// replays `bytes` verbatim; any drift (ack advanced, hints changed) clears
/// `bytes` so the conduit re-encodes against current state. Owned by the
/// transport's pending-send entry — it dies with the entry on cum-ack or
/// cancel, which is the (dst, seq) keyed eviction. Thread-confined to the
/// sending site's loop thread, like all per-channel transport state.
struct FrameCache {
  std::string bytes;  ///< encoded frame; empty = not (or no longer) cached

  // Fingerprint of the channel state the bytes were encoded under. Payload
  // and riders are immutable for the lifetime of a pending send, so they
  // need no entry; everything the transport may restamp per-send does.
  uint64_t epoch = 0;
  uint64_t seq_base = 0;
  bool has_ack = false;
  uint64_t ack_epoch = 0;
  uint64_t ack_cum = 0;
  std::vector<PlacementHint> hints;

  inline bool Matches(const Packet& p) const;
  inline void Fingerprint(const Packet& p);
};

using FrameCachePtr = std::shared_ptr<FrameCache>;

/// A packet in flight.
struct Packet {
  SiteId src;
  SiteId dst;
  Reliability reliability = Reliability::kDatagram;

  /// Sender incarnation; bumped by recovery so the receiver can reset
  /// per-channel sequencing state for a reborn sender.
  uint64_t epoch = 0;
  /// Per (src,dst,epoch) sequence number; meaningful for reliable packets.
  MsgSeq seq;
  /// Lowest seq still unacknowledged at the sender for this channel
  /// (TCP's snd_una). Everything below it was completed — consumed by some
  /// incarnation of the receiver or cancelled above the transport — and will
  /// never be retransmitted, so a receiver that lost its channel state (crash)
  /// fast-forwards its cumulative counter past the gap instead of stalling.
  uint64_t seq_base = 0;

  /// Piggybacked cumulative ack for the reverse channel: "all messages up to
  /// and including ack_cum in ack_epoch have been received and processed
  /// safely" (§4.2).
  uint64_t ack_epoch = 0;
  uint64_t ack_cum = 0;
  bool has_ack = false;

  EnvelopePtr payload;  // null for pure acks

  /// Causal id copied from the primary payload (0 for pure acks), so
  /// frame-level trace events correlate without downcasting the payload.
  uint64_t trace_id = 0;

  /// Coalesced riders in send order; empty unless the sender coalesces.
  std::vector<SubMsg> extra;

  /// Piggybacked placement advertisements (Transport::Options::
  /// max_frame_hints); advisory channel state like the ack, not payload.
  std::vector<PlacementHint> hints;

  /// Encode-once slot, set by the transport for reliable sends when the
  /// conduit opted in (Conduit::WantsFrameCache). Null everywhere else —
  /// the sim network ships packets as shared objects and never encodes.
  FrameCachePtr frame_cache;
};

inline bool FrameCache::Matches(const Packet& p) const {
  return epoch == p.epoch && seq_base == p.seq_base && has_ack == p.has_ack &&
         ack_epoch == p.ack_epoch && ack_cum == p.ack_cum && hints == p.hints;
}

inline void FrameCache::Fingerprint(const Packet& p) {
  epoch = p.epoch;
  seq_base = p.seq_base;
  has_ack = p.has_ack;
  ack_epoch = p.ack_epoch;
  ack_cum = p.ack_cum;
  hints = p.hints;
}

/// Modeled wire-size constants for the non-payload parts of a packet.
inline constexpr size_t kPacketHeaderBytes = 32;  ///< src,dst,class,epoch,seqs
inline constexpr size_t kAckBytes = 17;           ///< ack_epoch,ack_cum,flag
inline constexpr size_t kHintBytes = 28;          ///< item,surplus,demand,stamp
inline constexpr size_t kSubMsgHeaderBytes = 9;   ///< class,seq

/// Total modeled bytes the packet occupies on the wire. Payload and rider
/// sizes come from the envelopes' cached WireSize(), so a coalesced frame is
/// costed without re-walking any sub-message and a retransmission reuses
/// every figure from the first send.
inline size_t WireBytes(const Packet& p) {
  size_t bytes = kPacketHeaderBytes;
  if (p.has_ack) bytes += kAckBytes;
  bytes += p.hints.size() * kHintBytes;
  if (p.payload) bytes += p.payload->WireSize();
  for (const SubMsg& sub : p.extra) {
    bytes += kSubMsgHeaderBytes;
    if (sub.payload) bytes += sub.payload->WireSize();
  }
  return bytes;
}

}  // namespace dvp::net
