// Fixed-width table printer for the benchmark harnesses: every experiment
// prints its result as one of these tables so EXPERIMENTS.md rows can be
// regenerated verbatim.
#pragma once

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace dvp::workload {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  template <typename... Cells>
  void AddRow(Cells&&... cells) {
    std::vector<std::string> row;
    (row.push_back(ToCell(std::forward<Cells>(cells))), ...);
    rows_.push_back(std::move(row));
  }

  void Print(std::ostream& os = std::cout) const {
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto line = [&](const std::vector<std::string>& cells) {
      os << "|";
      for (size_t c = 0; c < width.size(); ++c) {
        std::string cell = c < cells.size() ? cells[c] : "";
        os << " " << cell << std::string(width[c] - cell.size(), ' ') << " |";
      }
      os << "\n";
    };
    line(headers_);
    os << "|";
    for (size_t c = 0; c < width.size(); ++c) {
      os << std::string(width[c] + 2, '-') << "|";
    }
    os << "\n";
    for (const auto& row : rows_) line(row);
  }

 private:
  template <typename T>
  static std::string ToCell(T&& v) {
    if constexpr (std::is_constructible_v<std::string, T>) {
      return std::string(std::forward<T>(v));
    } else if constexpr (std::is_floating_point_v<std::decay_t<T>>) {
      std::ostringstream os;
      os.setf(std::ios::fixed);
      os.precision(2);
      os << v;
      return os.str();
    } else {
      return std::to_string(v);
    }
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dvp::workload
