#include "workload/generator.h"

#include <cassert>

namespace dvp::workload {

WorkloadDriver::WorkloadDriver(SystemAdapter* adapter,
                               const std::vector<ItemId>& items,
                               WorkloadOptions options)
    : adapter_(adapter),
      items_(items),
      options_(options),
      rng_(options.seed),
      item_zipf_(items.empty() ? 1 : items.size(), options.item_zipf_theta),
      site_zipf_(adapter->num_sites(), options.site_zipf_theta),
      increment_site_zipf_(adapter->num_sites(),
                           options.increment_site_zipf_theta >= 0
                               ? options.increment_site_zipf_theta
                               : options.site_zipf_theta) {
  assert(!items.empty());
}

SiteId WorkloadDriver::PickSite(Rng& rng, const txn::TxnSpec& spec) {
  bool is_increment =
      !spec.ops.empty() && spec.ops.front().kind == txn::TxnOp::Kind::kIncrement;
  ZipfGenerator& zipf = is_increment ? increment_site_zipf_ : site_zipf_;
  return SiteId(static_cast<uint32_t>(zipf.Next(rng)));
}

txn::TxnSpec WorkloadDriver::MakeSpec(Rng& rng) {
  txn::TxnSpec spec;
  ItemId item = items_[item_zipf_.Next(rng)];
  double multi =
      items_.size() >= 2 ? options_.p_transfer + options_.p_order : 0.0;
  double total = options_.p_decrement + options_.p_increment +
                 options_.p_read + options_.p_snapshot + multi;
  double r = rng.NextDouble() * total;
  core::Value amount = rng.NextInt(options_.amount_min, options_.amount_max);
  // Snapshot slots in after the full read; at p_snapshot = 0 every threshold
  // below is numerically unchanged, so pre-existing seeds keep their stream.
  double single = options_.p_decrement + options_.p_increment +
                  options_.p_read + options_.p_snapshot;
  if (r < options_.p_decrement) {
    spec.ops = {txn::TxnOp::Decrement(item, amount)};
    spec.label = "decrement";
  } else if (r < options_.p_decrement + options_.p_increment) {
    spec.ops = {txn::TxnOp::Increment(item, amount)};
    spec.label = "increment";
  } else if (r <
             options_.p_decrement + options_.p_increment + options_.p_read) {
    spec.ops = {txn::TxnOp::ReadFull(item)};
    spec.label = "read";
  } else if (r < single) {
    spec.ops = {txn::TxnOp::ReadSnapshot(item)};
    spec.label = "snapshot";
  } else {
    // Multi-item classes: the second item comes from the same Zipf draw, so
    // hot-item pairs collide exactly as the skew dictates. These extra draws
    // only happen here — a mix with both knobs at 0 never reaches them.
    ItemId other = item;
    while (other == item) other = items_[item_zipf_.Next(rng)];
    spec = r < single + options_.p_transfer ? txn::MakeTransfer(item, other, amount)
                                            : txn::MakeOrder(item, other, amount);
  }
  return spec;
}

void WorkloadDriver::SubmitOne() {
  txn::TxnSpec spec = MakeSpec(rng_);
  SiteId at = PickSite(rng_, spec);
  ++results_.submitted;
  auto submitted = adapter_->Submit(
      at, spec, [this, at, spec](const txn::TxnResult& r) {
        ++results_.outcomes[r.outcome];
        results_.decision_latency_us.Add(static_cast<double>(r.latency_us));
        results_.gather_rounds.Add(static_cast<double>(r.rounds));
        if (r.committed()) {
          results_.commit_latency_us.Add(static_cast<double>(r.latency_us));
          if (on_commit_) on_commit_(r.id, spec, r);
        } else {
          results_.abort_latency_us.Add(static_cast<double>(r.latency_us));
        }
        if (on_decision_) on_decision_(at, spec, r);
      });
  if (!submitted.ok()) {
    --results_.submitted;
    ++results_.rejected_down;
  }
}

void WorkloadDriver::ScheduleNextArrival(SimTime horizon_end) {
  double mean_gap_us = 1e6 / options_.arrivals_per_sec;
  SimTime gap = static_cast<SimTime>(rng_.NextExponential(mean_gap_us)) + 1;
  SimTime when = adapter_->Now() + gap;
  if (when >= horizon_end) return;
  adapter_->kernel().ScheduleAt(when, [this, horizon_end]() {
    SubmitOne();
    ScheduleNextArrival(horizon_end);
  });
}

WorkloadResults WorkloadDriver::Run(SimTime duration_us, SimTime drain_us) {
  results_ = WorkloadResults{};
  SimTime end = adapter_->Now() + duration_us;
  ScheduleNextArrival(end);
  adapter_->RunFor(duration_us);
  adapter_->RunFor(drain_us);
  return results_;
}

}  // namespace dvp::workload
