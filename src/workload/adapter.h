// Uniform driving interface over the DvP cluster and the traditional
// baselines, so one workload driver can generate identical load against all
// of them and the measured differences are protocol-only.
#pragma once

#include <memory>

#include "baseline/primary_copy.h"
#include "baseline/twopc.h"
#include "common/status.h"
#include "common/types.h"
#include "system/cluster.h"
#include "txn/txn.h"

namespace dvp::workload {

class SystemAdapter {
 public:
  virtual ~SystemAdapter() = default;
  virtual std::string_view Name() const = 0;
  virtual StatusOr<TxnId> Submit(SiteId at, const txn::TxnSpec& spec,
                                 txn::TxnCallback cb) = 0;
  virtual void RunFor(SimTime us) = 0;
  virtual SimTime Now() const = 0;
  virtual sim::Kernel& kernel() = 0;
  virtual uint32_t num_sites() const = 0;
  virtual Status Partition(const std::vector<std::vector<SiteId>>& groups) = 0;
  virtual void Heal() = 0;
  virtual CounterSet Counters() const = 0;
};

class DvpAdapter final : public SystemAdapter {
 public:
  explicit DvpAdapter(system::Cluster* cluster) : cluster_(cluster) {}
  std::string_view Name() const override { return "DvP"; }
  StatusOr<TxnId> Submit(SiteId at, const txn::TxnSpec& spec,
                         txn::TxnCallback cb) override {
    return cluster_->Submit(at, spec, std::move(cb));
  }
  void RunFor(SimTime us) override { cluster_->RunFor(us); }
  SimTime Now() const override { return cluster_->Now(); }
  sim::Kernel& kernel() override { return cluster_->kernel(); }
  uint32_t num_sites() const override { return cluster_->num_sites(); }
  Status Partition(const std::vector<std::vector<SiteId>>& groups) override {
    return cluster_->Partition(groups);
  }
  void Heal() override { cluster_->Heal(); }
  CounterSet Counters() const override {
    return cluster_->AggregateCounters();
  }

 private:
  system::Cluster* cluster_;
};

class TwoPcAdapter final : public SystemAdapter {
 public:
  explicit TwoPcAdapter(baseline::TwoPcCluster* cluster,
                        std::string_view name = "2PC")
      : cluster_(cluster), name_(name) {}
  std::string_view Name() const override { return name_; }
  StatusOr<TxnId> Submit(SiteId at, const txn::TxnSpec& spec,
                         txn::TxnCallback cb) override {
    return cluster_->Submit(at, spec, std::move(cb));
  }
  void RunFor(SimTime us) override { cluster_->RunFor(us); }
  SimTime Now() const override { return cluster_->Now(); }
  sim::Kernel& kernel() override { return cluster_->kernel(); }
  uint32_t num_sites() const override { return cluster_->num_sites(); }
  Status Partition(const std::vector<std::vector<SiteId>>& groups) override {
    return cluster_->Partition(groups);
  }
  void Heal() override { cluster_->Heal(); }
  CounterSet Counters() const override {
    return cluster_->AggregateCounters();
  }

 private:
  baseline::TwoPcCluster* cluster_;
  std::string_view name_;
};

class PrimaryCopyAdapter final : public SystemAdapter {
 public:
  explicit PrimaryCopyAdapter(baseline::PrimaryCopyCluster* cluster)
      : cluster_(cluster) {}
  std::string_view Name() const override { return "PrimaryCopy"; }
  StatusOr<TxnId> Submit(SiteId at, const txn::TxnSpec& spec,
                         txn::TxnCallback cb) override {
    return cluster_->Submit(at, spec, std::move(cb));
  }
  void RunFor(SimTime us) override { cluster_->RunFor(us); }
  SimTime Now() const override { return cluster_->Now(); }
  sim::Kernel& kernel() override { return cluster_->kernel(); }
  uint32_t num_sites() const override { return cluster_->num_sites(); }
  Status Partition(const std::vector<std::vector<SiteId>>& groups) override {
    return cluster_->Partition(groups);
  }
  void Heal() override { cluster_->Heal(); }
  CounterSet Counters() const override {
    return cluster_->AggregateCounters();
  }

 private:
  baseline::PrimaryCopyCluster* cluster_;
};

}  // namespace dvp::workload
