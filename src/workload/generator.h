// Open-loop workload generation: Poisson arrivals of a reserve/cancel/read
// mix against any SystemAdapter, with Zipf skew over items and over sites,
// collecting per-outcome counts and latency histograms. This is the engine
// behind every experiment's load.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/types.h"
#include "txn/txn.h"
#include "workload/adapter.h"

namespace dvp::workload {

struct WorkloadOptions {
  /// Cluster-wide mean arrival rate, transactions per simulated second.
  double arrivals_per_sec = 200;
  /// Operation mix (normalised internally).
  double p_decrement = 0.70;  ///< reserve / withdraw / allocate
  double p_increment = 0.25;  ///< cancel / deposit / restock
  double p_read = 0.05;       ///< full read of the item value (drain)
  /// Stamped snapshot read of the item value (ReadMode::kSnapshot): no value
  /// moves, no locks. At 0 (the default) the mix draw thresholds are
  /// unchanged, so existing seeds keep their exact RNG stream.
  double p_snapshot = 0.0;
  /// Multi-item atomic sets (0 = none, the seed mix). A transfer moves the
  /// drawn amount between two Zipf-drawn distinct items; an order decrements
  /// stock and books the same quantity as revenue. Both need >= 2 items in
  /// the catalog — with fewer they are excluded from the mix. The extra RNG
  /// draws (second item) happen only when a multi-item class is actually
  /// drawn, so runs with these knobs at 0 keep the seed's exact RNG stream.
  double p_transfer = 0.0;
  double p_order = 0.0;
  /// Amount drawn uniformly from [amount_min, amount_max].
  core::Value amount_min = 1;
  core::Value amount_max = 5;
  /// Item popularity skew (0 = uniform; 0.99 = classic hot-spot).
  double item_zipf_theta = 0.0;
  /// Site-of-submission skew (0 = uniform; higher concentrates demand at
  /// low-numbered sites, stressing redistribution).
  double site_zipf_theta = 0.0;
  /// When >= 0, increments use this site skew instead (e.g. decrements
  /// concentrated at one site while cancellations arrive everywhere — the
  /// sustained-imbalance pattern that keeps value flowing as Vm).
  double increment_site_zipf_theta = -1.0;
  uint64_t seed = 1234;
};

/// Aggregated outcome of one workload run.
struct WorkloadResults {
  uint64_t submitted = 0;
  uint64_t rejected_down = 0;  ///< Submit refused (site down)
  std::map<txn::TxnOutcome, uint64_t> outcomes;
  Histogram commit_latency_us;
  Histogram abort_latency_us;
  Histogram decision_latency_us;  ///< all decisions (the non-blocking bound)
  Histogram gather_rounds;

  uint64_t committed() const {
    auto it = outcomes.find(txn::TxnOutcome::kCommitted);
    return it == outcomes.end() ? 0 : it->second;
  }
  uint64_t decided() const {
    uint64_t n = 0;
    for (const auto& [k, v] : outcomes) {
      (void)k;
      n += v;
    }
    return n;
  }
  double commit_rate() const {
    return submitted == 0 ? 0.0
                          : static_cast<double>(committed()) /
                                static_cast<double>(submitted);
  }
  double throughput_per_sec(SimTime duration_us) const {
    return duration_us == 0 ? 0.0
                            : static_cast<double>(committed()) * 1e6 /
                                  static_cast<double>(duration_us);
  }
};

/// Drives Poisson arrivals against `adapter` for `duration_us` of virtual
/// time, then keeps running `drain_us` longer so in-flight transactions
/// reach their decisions.
class WorkloadDriver {
 public:
  WorkloadDriver(SystemAdapter* adapter, const std::vector<ItemId>& items,
                 WorkloadOptions options);

  /// Optional per-commit hook (the serializability checker taps in here).
  void set_on_commit(
      std::function<void(TxnId, const txn::TxnSpec&, const txn::TxnResult&)>
          hook) {
    on_commit_ = std::move(hook);
  }

  /// Optional per-decision hook (availability probes tag results by group;
  /// the spec lets callers classify reads vs writes).
  void set_on_decision(std::function<void(SiteId, const txn::TxnSpec&,
                                          const txn::TxnResult&)>
                           hook) {
    on_decision_ = std::move(hook);
  }

  /// Runs the workload; returns aggregated results.
  WorkloadResults Run(SimTime duration_us, SimTime drain_us = 2'000'000);

  /// Builds one transaction from the mix (exposed for tests).
  txn::TxnSpec MakeSpec(Rng& rng);

  /// Picks the submission site for a spec built by MakeSpec.
  SiteId PickSite(Rng& rng, const txn::TxnSpec& spec);

 private:
  void ScheduleNextArrival(SimTime horizon_end);
  void SubmitOne();

  SystemAdapter* adapter_;
  std::vector<ItemId> items_;
  WorkloadOptions options_;
  Rng rng_;
  ZipfGenerator item_zipf_;
  ZipfGenerator site_zipf_;
  ZipfGenerator increment_site_zipf_;
  WorkloadResults results_;
  std::function<void(TxnId, const txn::TxnSpec&, const txn::TxnResult&)>
      on_commit_;
  std::function<void(SiteId, const txn::TxnSpec&, const txn::TxnResult&)>
      on_decision_;
};

}  // namespace dvp::workload
