// Deterministic discrete-event simulation kernel. All components (sites,
// network links, workload generators, failure injectors) schedule callbacks
// on a shared virtual clock. Determinism comes from (time, sequence) ordering
// of events and seeded RNG streams — a run is a pure function of its seed and
// schedule, which is what lets the tests assert exact invariants under fault
// injection.
//
// The kernel is the deterministic implementation of runtime::Runtime — the
// same protocol code that runs here runs on runtime::EventLoop threads with
// a real clock (runtime/real.h). The kernel remains the correctness oracle:
// only it can replay a run bit-for-bit.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "runtime/runtime.h"

namespace dvp::sim {

/// Opt-in schedule perturbation: the chaos harness searches *interleavings*,
/// not just fault timings, by (a) randomising the order of same-timestamp
/// events and (b) adding bounded random delay to every scheduled event. Both
/// draws happen at ScheduleAt time from a dedicated seeded stream, so a
/// perturbed run is still a pure function of (seed, schedule) — replayable
/// and shrinkable. Disabled (the default) the kernel is byte-identical to
/// the unperturbed FIFO tie-break behaviour.
struct PerturbOptions {
  uint64_t seed = 0;
  /// Randomise execution order among events with equal timestamps.
  bool shuffle_ties = false;
  /// Uniform extra delay in [0, max_jitter_us] added to every event's time.
  SimTime max_jitter_us = 0;

  bool enabled() const { return shuffle_ties || max_jitter_us > 0; }
};

/// Handle to a scheduled event; allows cancellation (used for transaction
/// timeout counters that are disarmed when all replies arrive). The shared
/// type with the real runtime: cancel-safe across threads, harmless after
/// fire.
using EventHandle = runtime::TimerHandle;

/// The event queue + virtual clock.
class Kernel final : public runtime::Runtime {
 public:
  Kernel() : tombstones_(std::make_shared<std::atomic<int64_t>>(0)) {}
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Current virtual time (microseconds).
  SimTime Now() const override { return now_; }

  /// Schedules `fn` to run at absolute virtual time `when` (>= Now()).
  EventHandle ScheduleAt(SimTime when, std::function<void()> fn) override;

  /// Runs events until the queue drains or virtual time would exceed
  /// `until`. Returns the number of events executed.
  uint64_t Run(SimTime until = kSimTimeMax);

  /// Executes exactly one event if any is pending. Returns false when idle.
  bool Step();

  /// True when no live events remain.
  bool Idle() const { return PendingEvents() == 0; }

  /// Virtual time of the next live (non-cancelled) event, or kSimTimeMax
  /// when the queue is drained. Pops cancelled tombstones as a side effect.
  SimTime NextEventTime();

  /// Number of LIVE pending events. Cancelled-but-unpopped tombstones are
  /// excluded: a long-lived rig that arms and cancels many ack timers sees
  /// its true backlog, not the garbage awaiting compaction.
  size_t PendingEvents() const {
    int64_t dead = tombstones_->load(std::memory_order_relaxed);
    if (dead < 0) dead = 0;
    size_t total = heap_.size();
    return total > static_cast<size_t>(dead) ? total - static_cast<size_t>(dead)
                                             : 0;
  }

  /// Queue entries including tombstones (test/debug visibility of the
  /// compaction machinery).
  size_t QueueEntries() const { return heap_.size(); }

  /// Total events executed since construction.
  uint64_t events_executed() const { return events_executed_; }

  /// Optional hook invoked after every executed event; used by the
  /// conservation auditor in tests to check invariants at each step.
  void set_post_event_hook(std::function<void()> hook) {
    post_event_hook_ = std::move(hook);
  }

  /// Enables schedule perturbation. Call before any events are scheduled;
  /// affects every subsequent ScheduleAt.
  void EnablePerturbation(const PerturbOptions& opts) {
    perturb_ = opts;
    if (opts.enabled()) perturb_rng_.emplace(opts.seed * 0x9e3779b97f4a7c15ull + 0x5eed);
  }
  const PerturbOptions& perturbation() const { return perturb_; }

 private:
  struct Event {
    SimTime when;
    uint64_t tie;  // FIFO seq, or a random key when shuffle_ties is on
    uint64_t seq;  // unique; final tie-break keeps the order total
    std::function<void()> fn;
    std::shared_ptr<runtime::TimerState> state;

    bool cancelled() const {
      return state->cancelled.load(std::memory_order_acquire);
    }
  };
  /// Heap comparator ("a fires later than b"): the ordering is total (seq is
  /// unique), so heap layout never affects execution order.
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      if (a.tie != b.tie) return a.tie > b.tie;
      return a.seq > b.seq;
    }
  };

  /// Pops the next live (non-cancelled) event into `out` if its time is
  /// <= `until`; discards cancelled tombstones along the way. Returns false
  /// (leaving the queue intact past `until`) when nothing qualifies. Step()
  /// and Run() share this — the single place the skip rules live.
  bool PopNextLive(SimTime until, Event* out);

  /// Removes the heap top and retires its cancellation state (balancing the
  /// tombstone tally when it was a tombstone).
  Event PopTop();

  /// Rebuilds the heap without its tombstones once they outnumber live
  /// events: Cancel() leaves entries in place (O(1)), so a rig that arms and
  /// cancels many timers between pops would otherwise grow the queue without
  /// bound. Amortised O(1) per schedule — each compaction is O(n) and at
  /// least half the entries die.
  void MaybeCompact();

  void Execute(Event& ev);

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  std::vector<Event> heap_;  // min-heap under Later via std::*_heap
  /// Count of cancelled-but-still-queued entries; shared with every handle
  /// so cancellation can tally without reaching into the kernel.
  std::shared_ptr<std::atomic<int64_t>> tombstones_;
  std::function<void()> post_event_hook_;
  PerturbOptions perturb_;
  std::optional<Rng> perturb_rng_;
};

}  // namespace dvp::sim
