// Deterministic discrete-event simulation kernel. All components (sites,
// network links, workload generators, failure injectors) schedule callbacks
// on a shared virtual clock. Determinism comes from (time, sequence) ordering
// of events and seeded RNG streams — a run is a pure function of its seed and
// schedule, which is what lets the tests assert exact invariants under fault
// injection.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace dvp::sim {

/// Opt-in schedule perturbation: the chaos harness searches *interleavings*,
/// not just fault timings, by (a) randomising the order of same-timestamp
/// events and (b) adding bounded random delay to every scheduled event. Both
/// draws happen at ScheduleAt time from a dedicated seeded stream, so a
/// perturbed run is still a pure function of (seed, schedule) — replayable
/// and shrinkable. Disabled (the default) the kernel is byte-identical to
/// the unperturbed FIFO tie-break behaviour.
struct PerturbOptions {
  uint64_t seed = 0;
  /// Randomise execution order among events with equal timestamps.
  bool shuffle_ties = false;
  /// Uniform extra delay in [0, max_jitter_us] added to every event's time.
  SimTime max_jitter_us = 0;

  bool enabled() const { return shuffle_ties || max_jitter_us > 0; }
};

/// Handle to a scheduled event; allows cancellation (used for transaction
/// timeout counters that are disarmed when all replies arrive).
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet. Idempotent.
  void Cancel() {
    if (cancelled_) *cancelled_ = true;
  }
  bool valid() const { return cancelled_ != nullptr; }
  bool cancelled() const { return cancelled_ && *cancelled_; }

 private:
  friend class Kernel;
  explicit EventHandle(std::shared_ptr<bool> flag)
      : cancelled_(std::move(flag)) {}
  std::shared_ptr<bool> cancelled_;
};

/// The event queue + virtual clock.
class Kernel {
 public:
  Kernel() = default;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Current virtual time (microseconds).
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `when` (>= Now()).
  EventHandle ScheduleAt(SimTime when, std::function<void()> fn);

  /// Schedules `fn` to run `delay` microseconds from now.
  EventHandle Schedule(SimTime delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue drains or virtual time would exceed
  /// `until`. Returns the number of events executed.
  uint64_t Run(SimTime until = kSimTimeMax);

  /// Executes exactly one event if any is pending. Returns false when idle.
  bool Step();

  /// True when no events remain.
  bool Idle() const { return queue_.empty(); }

  /// Virtual time of the next live (non-cancelled) event, or kSimTimeMax
  /// when the queue is drained. Pops cancelled tombstones as a side effect.
  SimTime NextEventTime();

  /// Number of pending events (live, not yet cancelled-and-popped).
  size_t PendingEvents() const { return queue_.size(); }

  /// Total events executed since construction.
  uint64_t events_executed() const { return events_executed_; }

  /// Optional hook invoked after every executed event; used by the
  /// conservation auditor in tests to check invariants at each step.
  void set_post_event_hook(std::function<void()> hook) {
    post_event_hook_ = std::move(hook);
  }

  /// Enables schedule perturbation. Call before any events are scheduled;
  /// affects every subsequent ScheduleAt.
  void EnablePerturbation(const PerturbOptions& opts) {
    perturb_ = opts;
    if (opts.enabled()) perturb_rng_.emplace(opts.seed * 0x9e3779b97f4a7c15ull + 0x5eed);
  }
  const PerturbOptions& perturbation() const { return perturb_; }

 private:
  struct Event {
    SimTime when;
    uint64_t tie;  // FIFO seq, or a random key when shuffle_ties is on
    uint64_t seq;  // unique; final tie-break keeps the order total
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      if (a.tie != b.tie) return a.tie > b.tie;
      return a.seq > b.seq;
    }
  };

  /// Pops the next live (non-cancelled) event into `out` if its time is
  /// <= `until`; discards cancelled tombstones along the way. Returns false
  /// (leaving the queue intact past `until`) when nothing qualifies. Step()
  /// and Run() share this — the single place the skip rules live.
  bool PopNextLive(SimTime until, Event* out);

  void Execute(Event& ev);

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::function<void()> post_event_hook_;
  PerturbOptions perturb_;
  std::optional<Rng> perturb_rng_;
};

}  // namespace dvp::sim
