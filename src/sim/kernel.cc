#include "sim/kernel.h"

#include <cassert>
#include <utility>

namespace dvp::sim {

EventHandle Kernel::ScheduleAt(SimTime when, std::function<void()> fn) {
  assert(when >= now_ && "cannot schedule in the past");
  auto flag = std::make_shared<bool>(false);
  queue_.push(Event{when, next_seq_++, std::move(fn), flag});
  return EventHandle(flag);
}

SimTime Kernel::NextEventTime() {
  while (!queue_.empty() && *queue_.top().cancelled) queue_.pop();
  return queue_.empty() ? kSimTimeMax : queue_.top().when;
}

bool Kernel::Step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (*ev.cancelled) continue;  // skip disarmed timers
    now_ = ev.when;
    ev.fn();
    ++events_executed_;
    if (post_event_hook_) post_event_hook_();
    return true;
  }
  return false;
}

uint64_t Kernel::Run(SimTime until) {
  uint64_t executed = 0;
  while (!queue_.empty()) {
    // Peek past cancelled events without advancing time.
    const Event& top = queue_.top();
    if (*top.cancelled) {
      queue_.pop();
      continue;
    }
    if (top.when > until) break;
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    ev.fn();
    ++events_executed_;
    ++executed;
    if (post_event_hook_) post_event_hook_();
  }
  if (now_ < until && until != kSimTimeMax) now_ = until;
  return executed;
}

}  // namespace dvp::sim
