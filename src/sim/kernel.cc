#include "sim/kernel.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace dvp::sim {

namespace {
/// Below this many entries a compaction pass costs more than the garbage.
constexpr size_t kCompactionFloor = 64;
}  // namespace

EventHandle Kernel::ScheduleAt(SimTime when, std::function<void()> fn) {
  assert(when >= now_ && "cannot schedule in the past");
  uint64_t seq = next_seq_++;
  uint64_t tie = seq;
  if (perturb_rng_) {
    if (perturb_.max_jitter_us > 0) {
      when += static_cast<SimTime>(perturb_rng_->NextBounded(
          static_cast<uint64_t>(perturb_.max_jitter_us) + 1));
    }
    if (perturb_.shuffle_ties) tie = perturb_rng_->NextU64();
  }
  auto state = std::make_shared<runtime::TimerState>();
  state->tally = tombstones_;
  heap_.push_back(Event{when, tie, seq, std::move(fn), state});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  MaybeCompact();
  return EventHandle(std::move(state));
}

Kernel::Event Kernel::PopTop() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  ev.state->Retire();
  return ev;
}

void Kernel::MaybeCompact() {
  int64_t dead = tombstones_->load(std::memory_order_relaxed);
  if (heap_.size() < kCompactionFloor ||
      dead <= static_cast<int64_t>(heap_.size() / 2)) {
    return;
  }
  auto live_end = std::remove_if(heap_.begin(), heap_.end(), [](Event& ev) {
    if (!ev.cancelled()) return false;
    ev.state->Retire();
    return true;
  });
  heap_.erase(live_end, heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), Later{});
}

SimTime Kernel::NextEventTime() {
  while (!heap_.empty() && heap_.front().cancelled()) PopTop();
  return heap_.empty() ? kSimTimeMax : heap_.front().when;
}

bool Kernel::PopNextLive(SimTime until, Event* out) {
  while (!heap_.empty()) {
    // Discard cancelled tombstones without advancing time.
    if (heap_.front().cancelled()) {
      PopTop();
      continue;
    }
    if (heap_.front().when > until) return false;
    *out = PopTop();
    return true;
  }
  return false;
}

void Kernel::Execute(Event& ev) {
  now_ = ev.when;
  ev.fn();
  ++events_executed_;
  if (post_event_hook_) post_event_hook_();
}

bool Kernel::Step() {
  Event ev;
  if (!PopNextLive(kSimTimeMax, &ev)) return false;
  Execute(ev);
  return true;
}

uint64_t Kernel::Run(SimTime until) {
  uint64_t executed = 0;
  Event ev;
  while (PopNextLive(until, &ev)) {
    Execute(ev);
    ++executed;
  }
  if (now_ < until && until != kSimTimeMax) now_ = until;
  return executed;
}

}  // namespace dvp::sim
