#include "sim/kernel.h"

#include <cassert>
#include <utility>

namespace dvp::sim {

EventHandle Kernel::ScheduleAt(SimTime when, std::function<void()> fn) {
  assert(when >= now_ && "cannot schedule in the past");
  uint64_t seq = next_seq_++;
  uint64_t tie = seq;
  if (perturb_rng_) {
    if (perturb_.max_jitter_us > 0) {
      when += static_cast<SimTime>(perturb_rng_->NextBounded(
          static_cast<uint64_t>(perturb_.max_jitter_us) + 1));
    }
    if (perturb_.shuffle_ties) tie = perturb_rng_->NextU64();
  }
  auto flag = std::make_shared<bool>(false);
  queue_.push(Event{when, tie, seq, std::move(fn), flag});
  return EventHandle(flag);
}

SimTime Kernel::NextEventTime() {
  while (!queue_.empty() && *queue_.top().cancelled) queue_.pop();
  return queue_.empty() ? kSimTimeMax : queue_.top().when;
}

bool Kernel::PopNextLive(SimTime until, Event* out) {
  while (!queue_.empty()) {
    // Discard cancelled tombstones without advancing time.
    if (*queue_.top().cancelled) {
      queue_.pop();
      continue;
    }
    if (queue_.top().when > until) return false;
    *out = queue_.top();
    queue_.pop();
    return true;
  }
  return false;
}

void Kernel::Execute(Event& ev) {
  now_ = ev.when;
  ev.fn();
  ++events_executed_;
  if (post_event_hook_) post_event_hook_();
}

bool Kernel::Step() {
  Event ev;
  if (!PopNextLive(kSimTimeMax, &ev)) return false;
  Execute(ev);
  return true;
}

uint64_t Kernel::Run(SimTime until) {
  uint64_t executed = 0;
  Event ev;
  while (PopNextLive(until, &ev)) {
    Execute(ev);
    ++executed;
  }
  if (now_ < until && until != kSimTimeMax) now_ = until;
  return executed;
}

}  // namespace dvp::sim
