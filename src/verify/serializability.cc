#include "verify/serializability.h"

#include <algorithm>
#include <set>

#include "dvpcore/operators.h"

namespace dvp::verify {

void HistoryChecker::RecordCommit(TxnId id, const txn::TxnSpec& spec,
                                  const txn::TxnResult& result) {
  RecordCommitAt(0, id, spec, result);
}

void HistoryChecker::RecordCommitAt(SimTime now_us, TxnId id,
                                    const txn::TxnSpec& spec,
                                    const txn::TxnResult& result) {
  CommittedTxn c;
  c.id = id;
  c.spec = spec;
  c.read_values = result.read_values;
  c.commit_seq = next_seq_++;
  c.commit_us = now_us;
  c.start_us = now_us - result.latency_us;
  history_.push_back(std::move(c));
}

namespace {

// Can `target` (one sum per read item) be formed by choosing a subset of the
// window *transactions*, where a chosen transaction contributes its delta
// vector to every read item at once? Transactions — not individual deltas —
// are the unit of choice: a reader that drained two items cannot see half of
// an atomic transfer, and validating each item's sum independently would
// accept exactly that inconsistent view (the missed cross-item edge).
// Breadth-first over achievable vectors; windows are small.
bool SubsetSumReachableJoint(
    const std::vector<std::vector<core::Value>>& deltas,
    const std::vector<core::Value>& target) {
  std::set<std::vector<core::Value>> reachable;
  reachable.insert(std::vector<core::Value>(target.size(), 0));
  for (const std::vector<core::Value>& d : deltas) {
    if (reachable.contains(target)) return true;
    std::set<std::vector<core::Value>> next = reachable;
    for (const std::vector<core::Value>& v : reachable) {
      std::vector<core::Value> sum = v;
      for (size_t i = 0; i < sum.size(); ++i) sum[i] += d[i];
      next.insert(std::move(sum));
    }
    reachable = std::move(next);
    if (reachable.size() > 200'000) return true;  // give up: assume ok
  }
  return reachable.contains(target);
}

}  // namespace

Status HistoryChecker::WindowedReadCheck(
    const CommittedTxn& c, const std::vector<ItemId>& read_items) const {
  // Windowed view check: each read serialised at its drain/capture points,
  // somewhere inside [start, commit]. Updates that committed before the
  // transaction started were necessarily visible; updates that committed
  // during the window may or may not have been — but per whole TRANSACTION,
  // not per item. A window transaction is either visible to all of this
  // transaction's reads or to none of them; choosing per item would accept
  // a reader that saw only one leg of an atomic transfer.
  std::vector<core::Value> must(read_items.size());
  std::vector<core::Value> target(read_items.size());
  for (size_t i = 0; i < read_items.size(); ++i) {
    must[i] = catalog_->info(read_items[i]).initial_total;
    target[i] = c.read_values.at(read_items[i]);
  }
  std::vector<std::vector<core::Value>> optional;
  for (const auto& other : history_) {
    if (&other == &c) continue;
    std::vector<core::Value> contrib(read_items.size(), 0);
    bool touches = false;
    for (const txn::TxnOp& oop : other.spec.ops) {
      if (oop.kind == txn::TxnOp::Kind::kReadFull ||
          oop.kind == txn::TxnOp::Kind::kReadSnapshot) {
        continue;
      }
      for (size_t i = 0; i < read_items.size(); ++i) {
        if (oop.item != read_items[i]) continue;
        contrib[i] += oop.kind == txn::TxnOp::Kind::kIncrement ? oop.amount
                                                               : -oop.amount;
        touches = true;
      }
    }
    if (!touches) continue;
    if (other.commit_us <= c.start_us) {
      for (size_t i = 0; i < read_items.size(); ++i) must[i] += contrib[i];
    } else if (other.commit_us <= c.commit_us) {
      optional.push_back(std::move(contrib));
    }
  }
  for (size_t i = 0; i < read_items.size(); ++i) target[i] -= must[i];
  if (!SubsetSumReachableJoint(optional, target)) {
    return Status::Internal(
        "windowed read check: txn ts=" +
        Timestamp::FromPacked(c.id.value()).ToString() + " observed " +
        std::to_string(read_items.size()) +
        " read(s) jointly unreachable with " +
        std::to_string(optional.size()) + " window transactions");
  }
  return Status::OK();
}

Status HistoryChecker::CheckSnapshotCuts() const {
  for (const auto& c : history_) {
    std::vector<ItemId> read_items;
    for (const txn::TxnOp& op : c.spec.ops) {
      if (op.kind != txn::TxnOp::Kind::kReadSnapshot) continue;
      if (!c.read_values.contains(op.item)) {
        return Status::Internal(
            "snapshot cut check: read value missing; txn ts=" +
            Timestamp::FromPacked(c.id.value()).ToString() + " item=" +
            catalog_->info(op.item).name);
      }
      read_items.push_back(op.item);
    }
    if (read_items.empty()) continue;
    if (Status s = WindowedReadCheck(c, read_items); !s.ok()) return s;
  }
  return Status::OK();
}

Status HistoryChecker::Check(
    Order order, const std::map<ItemId, core::Value>* final_totals) const {
  std::vector<const CommittedTxn*> serial;
  serial.reserve(history_.size());
  for (const auto& c : history_) serial.push_back(&c);
  if (order == Order::kTimestamp) {
    std::sort(serial.begin(), serial.end(),
              [](const CommittedTxn* a, const CommittedTxn* b) {
                return a->id.value() < b->id.value();
              });
  } else {
    std::sort(serial.begin(), serial.end(),
              [](const CommittedTxn* a, const CommittedTxn* b) {
                return a->commit_seq < b->commit_seq;
              });
  }

  // Whole-value serial replay.
  std::map<ItemId, core::Value> totals;
  for (ItemId item : catalog_->AllItems()) {
    totals[item] = catalog_->info(item).initial_total;
  }

  for (const CommittedTxn* c : serial) {
    auto describe = [&](const txn::TxnOp& op) {
      return "txn ts=" + Timestamp::FromPacked(c->id.value()).ToString() +
             " op=" + std::to_string(static_cast<int>(op.kind)) + " item=" +
             catalog_->info(op.item).name;
    };
    if (c->spec.atomic_set) {
      // The replay enforces the atomic-set contract too: a committed
      // transfer/order whose legs do not cancel is a history no correct
      // execution could have produced.
      core::Value net = 0;
      for (const txn::TxnOp& op : c->spec.ops) {
        net += op.kind == txn::TxnOp::Kind::kIncrement ? op.amount
                                                       : -op.amount;
      }
      if (net != 0) {
        return Status::Internal(
            "serial replay: committed atomic set not zero-sum; txn ts=" +
            Timestamp::FromPacked(c->id.value()).ToString() +
            " net=" + std::to_string(net));
      }
    }
    // Items this transaction read, in spec order; under kCommitOrder their
    // validation is deferred to one joint windowed check below.
    std::vector<ItemId> read_items;
    for (const txn::TxnOp& op : c->spec.ops) {
      core::Value& total = totals[op.item];
      switch (op.kind) {
        case txn::TxnOp::Kind::kIncrement:
          total += op.amount;
          break;
        case txn::TxnOp::Kind::kDecrement:
          if (total < op.amount) {
            return Status::Internal(
                "serial replay: committed decrement not applicable; " +
                describe(op) + " total=" + std::to_string(total) +
                " amount=" + std::to_string(op.amount));
          }
          total -= op.amount;
          break;
        case txn::TxnOp::Kind::kReadFull: {
          auto it = c->read_values.find(op.item);
          if (it == c->read_values.end()) {
            return Status::Internal("serial replay: read value missing; " +
                                    describe(op));
          }
          if (order == Order::kTimestamp) {
            if (it->second != total) {
              return Status::Internal(
                  "serial replay: read observed " +
                  std::to_string(it->second) + " but serial total is " +
                  std::to_string(total) + "; " + describe(op));
            }
            break;
          }
          read_items.push_back(op.item);
          break;
        }
        case txn::TxnOp::Kind::kReadSnapshot: {
          if (!c->read_values.contains(op.item)) {
            return Status::Internal("serial replay: read value missing; " +
                                    describe(op));
          }
          // A snapshot cut serialises at its capture points, never at the
          // reader's timestamp — windowed under both orders.
          read_items.push_back(op.item);
          break;
        }
      }
    }
    if (read_items.empty()) continue;
    if (Status s = WindowedReadCheck(*c, read_items); !s.ok()) return s;
  }

  if (final_totals != nullptr) {
    for (const auto& [item, expect] : *final_totals) {
      if (totals[item] != expect) {
        return Status::Internal(
            "serial replay final total mismatch for " +
            catalog_->info(item).name + ": serial=" +
            std::to_string(totals[item]) + " actual=" +
            std::to_string(expect));
      }
    }
  }
  return Status::OK();
}

}  // namespace dvp::verify
