#include "verify/serializability.h"

#include <algorithm>
#include <set>

#include "dvpcore/operators.h"

namespace dvp::verify {

void HistoryChecker::RecordCommit(TxnId id, const txn::TxnSpec& spec,
                                  const txn::TxnResult& result) {
  RecordCommitAt(0, id, spec, result);
}

void HistoryChecker::RecordCommitAt(SimTime now_us, TxnId id,
                                    const txn::TxnSpec& spec,
                                    const txn::TxnResult& result) {
  CommittedTxn c;
  c.id = id;
  c.spec = spec;
  c.read_values = result.read_values;
  c.commit_seq = next_seq_++;
  c.commit_us = now_us;
  c.start_us = now_us - result.latency_us;
  history_.push_back(std::move(c));
}

namespace {

// Can `target` be formed as a sum of a subset of `deltas`? Sizes are small
// (a read's overlap window); breadth-first over achievable sums.
bool SubsetSumReachable(const std::vector<core::Value>& deltas,
                        core::Value target) {
  std::set<core::Value> reachable{0};
  for (core::Value d : deltas) {
    if (reachable.contains(target)) return true;
    std::set<core::Value> next = reachable;
    for (core::Value v : reachable) next.insert(v + d);
    reachable = std::move(next);
    if (reachable.size() > 200'000) return true;  // give up: assume ok
  }
  return reachable.contains(target);
}

}  // namespace

Status HistoryChecker::Check(
    Order order, const std::map<ItemId, core::Value>* final_totals) const {
  std::vector<const CommittedTxn*> serial;
  serial.reserve(history_.size());
  for (const auto& c : history_) serial.push_back(&c);
  if (order == Order::kTimestamp) {
    std::sort(serial.begin(), serial.end(),
              [](const CommittedTxn* a, const CommittedTxn* b) {
                return a->id.value() < b->id.value();
              });
  } else {
    std::sort(serial.begin(), serial.end(),
              [](const CommittedTxn* a, const CommittedTxn* b) {
                return a->commit_seq < b->commit_seq;
              });
  }

  // Whole-value serial replay.
  std::map<ItemId, core::Value> totals;
  for (ItemId item : catalog_->AllItems()) {
    totals[item] = catalog_->info(item).initial_total;
  }

  for (const CommittedTxn* c : serial) {
    auto describe = [&](const txn::TxnOp& op) {
      return "txn ts=" + Timestamp::FromPacked(c->id.value()).ToString() +
             " op=" + std::to_string(static_cast<int>(op.kind)) + " item=" +
             catalog_->info(op.item).name;
    };
    for (const txn::TxnOp& op : c->spec.ops) {
      core::Value& total = totals[op.item];
      switch (op.kind) {
        case txn::TxnOp::Kind::kIncrement:
          total += op.amount;
          break;
        case txn::TxnOp::Kind::kDecrement:
          if (total < op.amount) {
            return Status::Internal(
                "serial replay: committed decrement not applicable; " +
                describe(op) + " total=" + std::to_string(total) +
                " amount=" + std::to_string(op.amount));
          }
          total -= op.amount;
          break;
        case txn::TxnOp::Kind::kReadFull: {
          auto it = c->read_values.find(op.item);
          if (it == c->read_values.end()) {
            return Status::Internal("serial replay: read value missing; " +
                                    describe(op));
          }
          if (order == Order::kTimestamp) {
            if (it->second != total) {
              return Status::Internal(
                  "serial replay: read observed " +
                  std::to_string(it->second) + " but serial total is " +
                  std::to_string(total) + "; " + describe(op));
            }
            break;
          }
          // Windowed view check (kCommitOrder): the read serialised at its
          // drain points, somewhere inside [start, commit]. Updates that
          // committed before it started were necessarily drained; updates
          // that committed during the window may or may not have been.
          core::Value must = catalog_->info(op.item).initial_total;
          std::vector<core::Value> optional;
          for (const auto& other : history_) {
            if (&other == c) continue;
            for (const txn::TxnOp& oop : other.spec.ops) {
              if (oop.item != op.item ||
                  oop.kind == txn::TxnOp::Kind::kReadFull) {
                continue;
              }
              core::Value delta = oop.kind == txn::TxnOp::Kind::kIncrement
                                      ? oop.amount
                                      : -oop.amount;
              if (other.commit_us <= c->start_us) {
                must += delta;
              } else if (other.commit_us <= c->commit_us) {
                optional.push_back(delta);
              }
            }
          }
          if (!SubsetSumReachable(optional, it->second - must)) {
            return Status::Internal(
                "windowed read check: observed " + std::to_string(it->second) +
                " unreachable from must=" + std::to_string(must) + " with " +
                std::to_string(optional.size()) + " window deltas; " +
                describe(op));
          }
          break;
        }
      }
    }
  }

  if (final_totals != nullptr) {
    for (const auto& [item, expect] : *final_totals) {
      if (totals[item] != expect) {
        return Status::Internal(
            "serial replay final total mismatch for " +
            catalog_->info(item).name + ": serial=" +
            std::to_string(totals[item]) + " actual=" +
            std::to_string(expect));
      }
    }
  }
  return Status::OK();
}

}  // namespace dvp::verify
