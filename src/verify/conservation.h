// The conservation invariant (§3): at every instant,
//     N = Σ_i N_i + N_M
// — the item's value equals the sum of all site fragments plus the value of
// all live Vm (created but not yet accepted anywhere). This auditor computes
// both terms purely from stable storage, so it is meaningful even mid-crash:
// a site's fragment is what its recovery would reconstruct, and a Vm is live
// exactly when its creation record exists and no acceptance record does.
#pragma once

#include <cstdint>
#include <span>

#include "common/status.h"
#include "common/types.h"
#include "dvpcore/catalog.h"
#include "wal/stable_storage.h"

namespace dvp::verify {

struct ConservationBreakdown {
  core::Value site_total = 0;  ///< Σ_i N_i (durable view)
  core::Value in_flight = 0;   ///< N_M: value of live Vm
  /// Net change to the item's value by committed transactions (redistribution
  /// contributes nothing): the invariant is
  ///     site_total + in_flight == initial_total + committed_delta.
  core::Value committed_delta = 0;
  uint64_t live_vms = 0;

  core::Value total() const { return site_total + in_flight; }
};

/// Computes the breakdown for one item across all sites.
ConservationBreakdown AuditItem(
    std::span<const wal::StableStorage* const> storages,
    const core::Catalog& catalog, ItemId item);

/// Checks every catalog item against its initial total; returns the first
/// violation as an Internal status.
Status AuditAll(std::span<const wal::StableStorage* const> storages,
                const core::Catalog& catalog);

}  // namespace dvp::verify
