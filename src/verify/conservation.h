// The conservation invariant (§3): at every instant,
//     N = Σ_i N_i + N_M
// — the item's value equals the sum of all site fragments plus the value of
// all live Vm (created but not yet accepted anywhere). This auditor computes
// both terms purely from stable storage, so it is meaningful even mid-crash:
// a site's fragment is what its recovery would reconstruct, and a Vm is live
// exactly when its creation record exists and no acceptance record does.
//
// A second, in-memory view audits the *volatile* state alongside the stable
// one: every up site's live fragment store must agree with what its log
// would rebuild (the stores are updated in lockstep with log forces, so any
// divergence at an event boundary is a bug), and the conservation sum holds
// with live values substituted for up sites. The chaos harness evaluates
// both views at random instants during a run, not only at quiescence.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>

#include "common/status.h"
#include "common/types.h"
#include "dvpcore/catalog.h"
#include "wal/stable_storage.h"

namespace dvp::verify {

struct ConservationBreakdown {
  core::Value site_total = 0;  ///< Σ_i N_i (durable view)
  core::Value in_flight = 0;   ///< N_M: value of live Vm
  /// Net change to the item's value by committed transactions (redistribution
  /// contributes nothing): the invariant is
  ///     site_total + in_flight == initial_total + committed_delta.
  core::Value committed_delta = 0;
  uint64_t live_vms = 0;

  /// Σ_i N_i with each *up* site's live in-memory fragment substituted for
  /// its durable one (down sites contribute their durable value). Only
  /// meaningful when a live view was supplied to the audit.
  core::Value volatile_site_total = 0;
  bool has_volatile = false;

  /// The volatile-view ledger is computed over the FULL appended log —
  /// including the unforced group-commit batch tail — because up sites apply
  /// buffered records to their in-memory stores at append time, before the
  /// covering force. Down sites have no unforced tail (a crash drops it), so
  /// for them the two ledgers coincide.
  core::Value volatile_in_flight = 0;
  core::Value volatile_committed_delta = 0;
  uint64_t volatile_live_vms = 0;

  core::Value total() const { return site_total + in_flight; }
  core::Value volatile_total() const {
    return volatile_site_total + volatile_in_flight;
  }
};

/// Live-state accessor for the volatile view: returns the in-memory fragment
/// value of `item` at `site`, or nullopt when the site is down (its durable
/// value is used instead). Null function = stable-storage-only audit.
using LiveValueFn =
    std::function<std::optional<core::Value>(SiteId, ItemId)>;

/// Computes the breakdown for one item across all sites. With `live`, also
/// fills the volatile view.
ConservationBreakdown AuditItem(
    std::span<const wal::StableStorage* const> storages,
    const core::Catalog& catalog, ItemId item,
    const LiveValueFn& live = nullptr);

/// Checks every catalog item against its initial total; returns the first
/// violation as an Internal status. With `live`, additionally checks that
/// the volatile sum conserves and that every up site's live fragment matches
/// its durable rebuild (volatile/durable coherence).
Status AuditAll(std::span<const wal::StableStorage* const> storages,
                const core::Catalog& catalog,
                const LiveValueFn& live = nullptr);

/// Durable-view conservation check over the WHOLE catalog with one store
/// rebuild and one log scan per site, instead of AuditAll's one per site
/// *per item*. The scale bench audits 10⁶ items × 100 sites; item-at-a-time
/// that is 10⁸ log replays. Semantically identical to AuditAll restricted to
/// the durable view: same rebuild, same ledgers, same invariant
///     site_total + in_flight == initial_total + committed_delta
/// for every item, just accumulated per item in a single pass.
Status AuditAllBulk(std::span<const wal::StableStorage* const> storages,
                    const core::Catalog& catalog);

/// Transaction-scoped cross-item conservation, part 1: every commit record
/// flagged atomic_set must carry at least two writes whose deltas sum to
/// zero — a transfer moves value between items, it never mints or destroys
/// it. Scans the FULL appended log of every site (an atomic record is one
/// append; there is no torn half to excuse), so a doctored record is caught
/// even while it sits in the unforced group-commit tail.
Status CheckAtomicSetCommits(
    std::span<const wal::StableStorage* const> storages);

/// Transaction-scoped cross-item conservation, part 2: the conservation sum
/// over a *group* of items. Writes of atomic-set records whose item set lies
/// entirely inside the group are excluded from the expected delta — they are
/// supposed to cancel — so a non-zero-sum atomic record shows up as a group
/// imbalance even though every per-item audit (which counts its legs
/// individually) still balances. Atomic records straddling the group edge
/// contribute their in-group legs like ordinary writes. Durable view.
Status AuditGroup(std::span<const wal::StableStorage* const> storages,
                  const core::Catalog& catalog,
                  std::span<const ItemId> group);

}  // namespace dvp::verify
