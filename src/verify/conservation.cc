#include "verify/conservation.h"

#include <map>
#include <set>

#include "dvpcore/value_store.h"
#include "recovery/recovery.h"

namespace dvp::verify {

ConservationBreakdown AuditItem(
    std::span<const wal::StableStorage* const> storages,
    const core::Catalog& catalog, ItemId item) {
  ConservationBreakdown out;

  struct LiveVm {
    core::Value amount = 0;
    ItemId item;
  };
  std::map<VmId, LiveVm> created;
  std::set<VmId> accepted;

  for (const wal::StableStorage* storage : storages) {
    // Durable fragment value = what recovery would rebuild.
    core::ValueStore scratch(&catalog);
    recovery::RecoveryReport report;
    Status s = recovery::RebuildStore(*storage, &scratch, &report);
    if (!s.ok()) continue;  // corrupted log: fragment contributes nothing
    out.site_total += scratch.value(item);

    Status scan = storage->Scan(0, [&](Lsn, const wal::LogRecord& rec) {
      if (const auto* c = std::get_if<wal::VmCreateRec>(&rec)) {
        created[c->vm] = LiveVm{c->amount, c->item};
      } else if (const auto* a = std::get_if<wal::VmAcceptRec>(&rec)) {
        accepted.insert(a->vm);
      } else if (const auto* t = std::get_if<wal::TxnCommitRec>(&rec)) {
        for (const auto& w : t->writes) {
          if (w.item == item) out.committed_delta += w.delta;
        }
      }
    });
    (void)scan;
  }

  for (const auto& [vm, live] : created) {
    if (live.item != item) continue;
    if (accepted.contains(vm)) continue;
    out.in_flight += live.amount;
    ++out.live_vms;
  }
  return out;
}

Status AuditAll(std::span<const wal::StableStorage* const> storages,
                const core::Catalog& catalog) {
  for (ItemId item : catalog.AllItems()) {
    ConservationBreakdown b = AuditItem(storages, catalog, item);
    core::Value expect = catalog.info(item).initial_total + b.committed_delta;
    if (b.total() != expect) {
      return Status::Internal(
          "conservation violated for item " + catalog.info(item).name +
          ": fragments=" + std::to_string(b.site_total) +
          " in_flight=" + std::to_string(b.in_flight) +
          " committed_delta=" + std::to_string(b.committed_delta) +
          " expected=" + std::to_string(expect));
    }
  }
  return Status::OK();
}

}  // namespace dvp::verify
