#include "verify/conservation.h"

#include <map>
#include <set>

#include "dvpcore/value_store.h"
#include "recovery/recovery.h"

namespace dvp::verify {

ConservationBreakdown AuditItem(
    std::span<const wal::StableStorage* const> storages,
    const core::Catalog& catalog, ItemId item, const LiveValueFn& live) {
  ConservationBreakdown out;
  out.has_volatile = static_cast<bool>(live);

  struct LiveVm {
    core::Value amount = 0;
    ItemId item;
  };
  std::map<VmId, LiveVm> created;
  std::set<VmId> accepted;

  for (const wal::StableStorage* storage : storages) {
    // Durable fragment value = what recovery would rebuild. Replay stops at
    // the last valid log prefix, exactly as a real recovery would.
    core::ValueStore scratch(&catalog);
    recovery::RecoveryReport report;
    Status s = recovery::RebuildStore(*storage, &scratch, &report);
    if (!s.ok()) continue;  // unreadable image: fragment contributes nothing
    core::Value durable = scratch.value(item);
    out.site_total += durable;
    if (live) {
      std::optional<core::Value> v = live(storage->site(), item);
      out.volatile_site_total += v.value_or(durable);
    }

    // The Vm liveness scan must read the same prefix the rebuild did.
    uint64_t ignored = 0;
    (void)storage->ScanPrefix(
        0, report.valid_prefix,
        [&](Lsn, const wal::LogRecord& rec) {
          if (const auto* c = std::get_if<wal::VmCreateRec>(&rec)) {
            created[c->vm] = LiveVm{c->amount, c->item};
          } else if (const auto* a = std::get_if<wal::VmAcceptRec>(&rec)) {
            accepted.insert(a->vm);
          } else if (const auto* t = std::get_if<wal::TxnCommitRec>(&rec)) {
            for (const auto& w : t->writes) {
              if (w.item == item) out.committed_delta += w.delta;
            }
          }
        },
        &ignored);
  }

  for (const auto& [vm, live_vm] : created) {
    if (live_vm.item != item) continue;
    if (accepted.contains(vm)) continue;
    out.in_flight += live_vm.amount;
    ++out.live_vms;
  }
  return out;
}

Status AuditAll(std::span<const wal::StableStorage* const> storages,
                const core::Catalog& catalog, const LiveValueFn& live) {
  for (ItemId item : catalog.AllItems()) {
    ConservationBreakdown b = AuditItem(storages, catalog, item, live);
    core::Value expect = catalog.info(item).initial_total + b.committed_delta;
    if (b.total() != expect) {
      return Status::Internal(
          "conservation violated for item " + catalog.info(item).name +
          ": fragments=" + std::to_string(b.site_total) +
          " in_flight=" + std::to_string(b.in_flight) +
          " committed_delta=" + std::to_string(b.committed_delta) +
          " expected=" + std::to_string(expect));
    }
    if (b.has_volatile && b.volatile_total() != expect) {
      return Status::Internal(
          "volatile conservation violated for item " +
          catalog.info(item).name +
          ": live_fragments=" + std::to_string(b.volatile_site_total) +
          " (durable=" + std::to_string(b.site_total) +
          ") in_flight=" + std::to_string(b.in_flight) +
          " expected=" + std::to_string(expect));
    }
  }
  return Status::OK();
}

}  // namespace dvp::verify
