#include "verify/conservation.h"

#include <map>
#include <set>
#include <unordered_map>

#include "dvpcore/value_store.h"
#include "recovery/recovery.h"

namespace dvp::verify {

ConservationBreakdown AuditItem(
    std::span<const wal::StableStorage* const> storages,
    const core::Catalog& catalog, ItemId item, const LiveValueFn& live) {
  ConservationBreakdown out;
  out.has_volatile = static_cast<bool>(live);

  struct LiveVm {
    core::Value amount = 0;
    ItemId item;
  };
  // Two ledgers: the durable one reads each site's forced prefix (what
  // recovery would see); the volatile one reads the full appended log,
  // unforced group-commit tail included, because live stores apply buffered
  // records at append time.
  std::map<VmId, LiveVm> created;
  std::set<VmId> accepted;
  std::map<VmId, LiveVm> created_vol;
  std::set<VmId> accepted_vol;

  for (const wal::StableStorage* storage : storages) {
    // Durable fragment value = what recovery would rebuild. Replay stops at
    // the last valid log prefix, exactly as a real recovery would.
    core::ValueStore scratch(&catalog);
    recovery::RecoveryReport report;
    Status s = recovery::RebuildStore(*storage, &scratch, &report);
    if (!s.ok()) continue;  // unreadable image: fragment contributes nothing
    core::Value durable = scratch.value(item);
    out.site_total += durable;
    if (live) {
      std::optional<core::Value> v = live(storage->site(), item);
      out.volatile_site_total += v.value_or(durable);
    }

    // One scan feeds both ledgers: records below the rebuild's valid prefix
    // are durable; everything decodable beyond it (the unforced tail) is
    // volatile-only.
    uint64_t ignored = 0;
    (void)storage->ScanPrefix(
        0, storage->log_size(),
        [&](Lsn lsn, const wal::LogRecord& rec) {
          bool is_durable = lsn.value() < report.valid_prefix;
          if (const auto* c = std::get_if<wal::VmCreateRec>(&rec)) {
            if (is_durable) created[c->vm] = LiveVm{c->amount, c->item};
            created_vol[c->vm] = LiveVm{c->amount, c->item};
          } else if (const auto* a = std::get_if<wal::VmAcceptRec>(&rec)) {
            if (is_durable) accepted.insert(a->vm);
            accepted_vol.insert(a->vm);
          } else if (const auto* t = std::get_if<wal::TxnCommitRec>(&rec)) {
            for (const auto& w : t->writes) {
              if (w.item != item) continue;
              if (is_durable) out.committed_delta += w.delta;
              out.volatile_committed_delta += w.delta;
            }
          }
        },
        &ignored);
  }

  for (const auto& [vm, live_vm] : created) {
    if (live_vm.item != item) continue;
    if (accepted.contains(vm)) continue;
    out.in_flight += live_vm.amount;
    ++out.live_vms;
  }
  for (const auto& [vm, live_vm] : created_vol) {
    if (live_vm.item != item) continue;
    if (accepted_vol.contains(vm)) continue;
    out.volatile_in_flight += live_vm.amount;
    ++out.volatile_live_vms;
  }
  return out;
}

Status AuditAll(std::span<const wal::StableStorage* const> storages,
                const core::Catalog& catalog, const LiveValueFn& live) {
  for (ItemId item : catalog.AllItems()) {
    ConservationBreakdown b = AuditItem(storages, catalog, item, live);
    core::Value expect = catalog.info(item).initial_total + b.committed_delta;
    if (b.total() != expect) {
      return Status::Internal(
          "conservation violated for item " + catalog.info(item).name +
          ": fragments=" + std::to_string(b.site_total) +
          " in_flight=" + std::to_string(b.in_flight) +
          " committed_delta=" + std::to_string(b.committed_delta) +
          " expected=" + std::to_string(expect));
    }
    core::Value expect_vol =
        catalog.info(item).initial_total + b.volatile_committed_delta;
    if (b.has_volatile && b.volatile_total() != expect_vol) {
      return Status::Internal(
          "volatile conservation violated for item " +
          catalog.info(item).name +
          ": live_fragments=" + std::to_string(b.volatile_site_total) +
          " (durable=" + std::to_string(b.site_total) +
          ") in_flight=" + std::to_string(b.volatile_in_flight) +
          " expected=" + std::to_string(expect_vol));
    }
  }
  return Status::OK();
}

Status AuditAllBulk(std::span<const wal::StableStorage* const> storages,
                    const core::Catalog& catalog) {
  struct LiveVm {
    core::Value amount = 0;
    ItemId item;
  };
  // Accumulated across ALL sites in one pass each; keyed by raw item id.
  std::unordered_map<uint32_t, core::Value> site_total;
  std::unordered_map<uint32_t, core::Value> committed_delta;
  std::map<VmId, LiveVm> created;
  std::set<VmId> accepted;

  for (const wal::StableStorage* storage : storages) {
    core::ValueStore scratch(&catalog);
    recovery::RecoveryReport report;
    Status s = recovery::RebuildStore(*storage, &scratch, &report);
    if (!s.ok()) continue;  // unreadable image: fragment contributes nothing
    for (const auto& [item, frag] : scratch.resident_fragments()) {
      site_total[item] += frag.value;
    }
    uint64_t ignored = 0;
    (void)storage->ScanPrefix(
        0, storage->log_size(),
        [&](Lsn lsn, const wal::LogRecord& rec) {
          if (lsn.value() >= report.valid_prefix) return;  // durable view only
          if (const auto* c = std::get_if<wal::VmCreateRec>(&rec)) {
            created[c->vm] = LiveVm{c->amount, c->item};
          } else if (const auto* a = std::get_if<wal::VmAcceptRec>(&rec)) {
            accepted.insert(a->vm);
          } else if (const auto* t = std::get_if<wal::TxnCommitRec>(&rec)) {
            for (const auto& w : t->writes) {
              committed_delta[w.item.value()] += w.delta;
            }
          }
        },
        &ignored);
  }

  std::unordered_map<uint32_t, core::Value> in_flight;
  for (const auto& [vm, live_vm] : created) {
    if (!accepted.contains(vm)) in_flight[live_vm.item.value()] += live_vm.amount;
  }

  auto lookup = [](const std::unordered_map<uint32_t, core::Value>& m,
                   uint32_t k) -> core::Value {
    auto it = m.find(k);
    return it == m.end() ? 0 : it->second;
  };
  for (ItemId item : catalog.AllItems()) {
    core::Value fragments = lookup(site_total, item.value());
    core::Value flight = lookup(in_flight, item.value());
    core::Value delta = lookup(committed_delta, item.value());
    core::Value expect = catalog.info(item).initial_total + delta;
    if (fragments + flight != expect) {
      return Status::Internal(
          "conservation violated for item " + catalog.info(item).name +
          ": fragments=" + std::to_string(fragments) +
          " in_flight=" + std::to_string(flight) +
          " committed_delta=" + std::to_string(delta) +
          " expected=" + std::to_string(expect));
    }
  }
  return Status::OK();
}

Status CheckAtomicSetCommits(
    std::span<const wal::StableStorage* const> storages) {
  Status violation = Status::OK();
  for (const wal::StableStorage* storage : storages) {
    uint64_t ignored = 0;
    (void)storage->ScanPrefix(
        0, storage->log_size(),
        [&](Lsn, const wal::LogRecord& rec) {
          if (!violation.ok()) return;
          const auto* t = std::get_if<wal::TxnCommitRec>(&rec);
          if (t == nullptr || !t->atomic_set) return;
          if (t->writes.size() < 2) {
            violation = Status::Internal(
                "atomic-set commit txn " + std::to_string(t->txn.value()) +
                " at site " + storage->site().ToString() + " has " +
                std::to_string(t->writes.size()) + " write(s), need >= 2");
            return;
          }
          core::Value net = 0;
          for (const auto& w : t->writes) net += w.delta;
          if (net != 0) {
            violation = Status::Internal(
                "atomic-set commit txn " + std::to_string(t->txn.value()) +
                " at site " + storage->site().ToString() +
                " is not zero-sum: net delta " + std::to_string(net));
          }
        },
        &ignored);
    if (!violation.ok()) return violation;
  }
  return violation;
}

Status AuditGroup(std::span<const wal::StableStorage* const> storages,
                  const core::Catalog& catalog,
                  std::span<const ItemId> group) {
  std::set<uint32_t> members;
  for (ItemId item : group) members.insert(item.value());

  struct LiveVm {
    core::Value amount = 0;
    ItemId item;
  };
  core::Value fragments = 0;
  core::Value expected_delta = 0;
  std::map<VmId, LiveVm> created;
  std::set<VmId> accepted;

  for (const wal::StableStorage* storage : storages) {
    core::ValueStore scratch(&catalog);
    recovery::RecoveryReport report;
    Status s = recovery::RebuildStore(*storage, &scratch, &report);
    if (!s.ok()) continue;  // unreadable image: fragment contributes nothing
    for (const auto& [item, frag] : scratch.resident_fragments()) {
      if (members.contains(item)) fragments += frag.value;
    }
    uint64_t ignored = 0;
    (void)storage->ScanPrefix(
        0, storage->log_size(),
        [&](Lsn lsn, const wal::LogRecord& rec) {
          if (lsn.value() >= report.valid_prefix) return;  // durable view
          if (const auto* c = std::get_if<wal::VmCreateRec>(&rec)) {
            if (members.contains(c->item.value())) {
              created[c->vm] = LiveVm{c->amount, c->item};
            }
          } else if (const auto* a = std::get_if<wal::VmAcceptRec>(&rec)) {
            accepted.insert(a->vm);
          } else if (const auto* t = std::get_if<wal::TxnCommitRec>(&rec)) {
            bool fully_inside = t->atomic_set;
            if (t->atomic_set) {
              for (const auto& w : t->writes) {
                if (!members.contains(w.item.value())) fully_inside = false;
              }
            }
            // Atomic sets wholly inside the group are excluded: their legs
            // must cancel, so counting them would mask a minting record.
            if (fully_inside) return;
            for (const auto& w : t->writes) {
              if (members.contains(w.item.value())) expected_delta += w.delta;
            }
          }
        },
        &ignored);
  }

  core::Value in_flight = 0;
  for (const auto& [vm, live_vm] : created) {
    if (!accepted.contains(vm)) in_flight += live_vm.amount;
  }

  core::Value initial = 0;
  for (ItemId item : group) initial += catalog.info(item).initial_total;
  core::Value expect = initial + expected_delta;
  if (fragments + in_flight != expect) {
    return Status::Internal(
        "cross-item conservation violated for group of " +
        std::to_string(group.size()) +
        " items: fragments=" + std::to_string(fragments) +
        " in_flight=" + std::to_string(in_flight) +
        " non-atomic delta=" + std::to_string(expected_delta) +
        " expected=" + std::to_string(expect));
  }
  return Status::OK();
}

}  // namespace dvp::verify
