// Serializability checker for "serializability subject to redistribution"
// (§6): the committed transactions, replayed one at a time in timestamp
// order against whole item values (no fragments, no messages), must
//   (a) all be *effectively applicable* at their turn — a committed bounded
//       decrement must find enough total value, and
//   (b) reproduce every committed full-read's observed value, and
//   (c) end at exactly the final totals the cluster reached.
// Conc1 guarantees equivalence to the timestamp serial order; Conc2 to some
// order consistent with its broadcast partial order (the checker can search
// commit order instead for Conc2 runs).
#pragma once

#include <map>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "dvpcore/catalog.h"
#include "txn/txn.h"

namespace dvp::verify {

/// One committed transaction as observed by the harness.
struct CommittedTxn {
  TxnId id;  ///< packed timestamp — the serial position under Conc1
  txn::TxnSpec spec;
  std::map<ItemId, core::Value> read_values;
  /// Monotone commit sequence (assigned by the harness at callback time);
  /// the serial order used when order == kCommitOrder.
  uint64_t commit_seq = 0;
  /// Virtual times of submission and decision (when recorded with
  /// RecordCommitAt); used by the windowed read check.
  SimTime start_us = 0;
  SimTime commit_us = 0;
};

class HistoryChecker {
 public:
  /// Which serial order the equivalence is checked against.
  enum class Order {
    kTimestamp,    ///< Conc1: replay by TS(t)
    kCommitOrder,  ///< Conc2: replay by real-time commit order
  };

  explicit HistoryChecker(const core::Catalog* catalog)
      : catalog_(catalog) {}

  /// Records a commit; call from the transaction callback.
  void RecordCommit(TxnId id, const txn::TxnSpec& spec,
                    const txn::TxnResult& result);

  /// Like RecordCommit but also records timing (`now_us` = decision time;
  /// the start is reconstructed from the result's latency). Needed for
  /// Check(kCommitOrder, ...), whose read validation is windowed.
  void RecordCommitAt(SimTime now_us, TxnId id, const txn::TxnSpec& spec,
                      const txn::TxnResult& result);

  size_t num_committed() const { return history_.size(); }

  /// Replays the history serially. `final_totals` (item → Σ fragments +
  /// in-flight at the end of the run) is checked when non-null.
  ///
  /// kTimestamp (Conc1) is the strong check: exact replay in TS(t) order,
  /// including every read value.
  ///
  /// kCommitOrder (Conc2) replays updates in commit order (sound for
  /// applicability and final state, since strict 2PL commits conflicting
  /// updates in serialization order) but validates each read with a
  /// *windowed view check*: the read must equal initial + all deltas
  /// committed before it started + some subset of the deltas that committed
  /// while it was draining — i.e. the read is placeable at a consistent
  /// point. (A 2PL read serialises at its drain points, which precede its
  /// commit point, so strict commit-order replay would be the wrong test.)
  /// Snapshot reads (kReadSnapshot) are validated with the windowed view
  /// check under BOTH orders: a snapshot cut serialises at its capture
  /// points, which lie strictly inside [start, commit] and bear no relation
  /// to the reader's timestamp, so exact replay at TS(t) would be the wrong
  /// test even under Conc1.
  Status Check(Order order,
               const std::map<ItemId, core::Value>* final_totals) const;

  /// Validates ONLY the snapshot reads in the history (windowed view check;
  /// no write replay, no applicability checks). This is the oracle the chaos
  /// harness runs on crash-laden histories, where decrement-applicability
  /// replay would need per-site durable-state reconstruction the harness
  /// does not track — a torn snapshot cut is still always detected.
  Status CheckSnapshotCuts() const;

 private:
  /// The windowed consistent-cut test for one committed reader: its observed
  /// values must equal initial + every delta committed before it started +
  /// some subset of the whole-transaction deltas committed inside its
  /// [start, commit] window.
  Status WindowedReadCheck(const CommittedTxn& c,
                           const std::vector<ItemId>& read_items) const;

  const core::Catalog* catalog_;
  std::vector<CommittedTxn> history_;
  uint64_t next_seq_ = 0;
};

}  // namespace dvp::verify
