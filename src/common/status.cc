#include "common/status.h"

namespace dvp {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace dvp
