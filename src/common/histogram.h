// Lightweight statistics helpers used by the benchmark harnesses and the
// metrics layer: an exact-quantile reservoir-free histogram (we keep all
// samples; experiment sizes are modest) and a streaming counter set.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dvp {

/// Collects numeric samples and reports count/mean/percentiles. Stores all
/// samples; intended for simulation-scale data (≤ millions of points).
class Histogram {
 public:
  void Add(double v);
  void Merge(const Histogram& other);
  void Clear();

  size_t count() const { return samples_.size(); }
  double sum() const { return sum_; }
  double mean() const;
  /// Running extrema maintained by Add/Merge — O(1), safe to call from
  /// per-row report loops (0 when empty).
  double min() const { return samples_.empty() ? 0.0 : min_; }
  double max() const { return samples_.empty() ? 0.0 : max_; }
  /// Exact quantile by sorting on demand (q in [0,1]).
  double Percentile(double q) const;
  double Median() const { return Percentile(0.5); }
  double P99() const { return Percentile(0.99); }
  double P999() const { return Percentile(0.999); }
  double StdDev() const;

  /// One-line summary: "n=... mean=... p50=... p99=... p999=... max=...",
  /// or just "n=0" when empty — an empty histogram has no extrema to report.
  std::string Summary() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Named monotonically increasing counters, used for per-run metrics such as
/// messages sent, log forces, aborts by reason.
class CounterSet {
 public:
  void Inc(const std::string& name, uint64_t delta = 1);
  uint64_t Get(const std::string& name) const;
  void Merge(const CounterSet& other);
  void Clear() { counters_.clear(); }

  const std::map<std::string, uint64_t>& counters() const { return counters_; }
  std::string ToString() const;

 private:
  std::map<std::string, uint64_t> counters_;
};

}  // namespace dvp
