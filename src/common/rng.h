// Deterministic random number generation for the simulator. Every stochastic
// component (link delays, workload arrivals, crash schedules) draws from its
// own seeded stream so experiments are exactly reproducible and components
// can be toggled without perturbing each other's draws.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dvp {

/// SplitMix64 — used to expand a single user seed into stream seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}
  uint64_t Next();

 private:
  uint64_t state_;
};

/// xoshiro256++ PRNG. Fast, high quality, trivially copyable; the state can
/// be snapshotted for crash/restart determinism.
class Rng {
 public:
  /// Seeds via SplitMix64 expansion; seed 0 is remapped to a fixed nonzero.
  explicit Rng(uint64_t seed);

  /// Derives an independent stream for a named component; same (seed,
  /// stream_index) always yields the same stream.
  Rng Fork(uint64_t stream_index) const;

  uint64_t NextU64();

  /// Uniform in [0, bound) without modulo bias; bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Bernoulli trial.
  bool NextBool(double p_true);

  /// Exponentially distributed with the given mean (> 0).
  double NextExponential(double mean);

  /// Standard normal (Box–Muller; one value per call).
  double NextGaussian();

 private:
  Rng() = default;
  uint64_t s_[4] = {};
  uint64_t seed_ = 0;
};

/// Zipf(θ) sampler over {0, ..., n-1}: P(k) ∝ 1/(k+1)^θ. theta = 0 is
/// uniform; larger theta skews mass toward small ranks. An exact inverse-CDF
/// table is used for small n AND for every θ ≥ 1 (where the classic Gray et
/// al. approximation diverges — its 1/(1-θ) exponent; that regime used to be
/// guarded by an assert only, so NDEBUG builds sampled garbage). Large n
/// with θ < 1 uses the approximation; the exact table there would cost O(n)
/// memory per generator for no accuracy the approximation lacks.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);

  uint64_t Next(Rng& rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static constexpr uint64_t kExactLimit = 4096;

  uint64_t n_;
  double theta_;
  // Exact mode.
  std::vector<double> cdf_;
  // Approximation mode (large n, theta < 1).
  double alpha_ = 0;
  double zetan_ = 0;
  double eta_ = 0;
};

/// Samples an index from non-negative weights (linear scan; used for small
/// site-selection distributions). A weight vector with no usable mass
/// (all-zero or non-finite total) falls back to a uniform draw over all
/// indices — never the silently-biased last index. `weights` must be
/// nonempty (debug assert; release returns 0).
size_t SampleWeighted(Rng& rng, const std::vector<double>& weights);

}  // namespace dvp
