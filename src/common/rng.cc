#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dvp {

uint64_t SplitMix64::Next() {
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed == 0 ? 0x6a09e667f3bcc908ULL : seed) {
  SplitMix64 sm(seed_);
  for (auto& s : s_) s = sm.Next();
}

Rng Rng::Fork(uint64_t stream_index) const {
  SplitMix64 sm(seed_ ^ (0x2545f4914f6cdd1dULL * (stream_index + 1)));
  Rng out;
  out.seed_ = sm.Next();
  SplitMix64 sm2(out.seed_);
  for (auto& s : out.s_) s = sm2.Next();
  return out;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method with rejection.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

double Rng::NextExponential(double mean) {
  assert(mean > 0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::NextGaussian() {
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

namespace {
double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}
}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n > 0);
  assert(theta >= 0);
  if (n == 0) n_ = n = 1;        // release-build guard: degenerate sampler
  if (theta < 0) theta_ = theta = 0;
  if (theta == 0.0) return;  // uniform fast path
  // The Gray et al. approximation diverges at theta >= 1 (its alpha =
  // 1/(1-theta) term), so that regime takes the exact inverse-CDF path at
  // ANY n. This used to be an assert — NDEBUG builds computed inf/negative
  // alpha and Next() returned garbage indices. The exact table costs O(n)
  // doubles once at construction, which is the price of correctness.
  if (n <= kExactLimit || theta >= 1.0) {
    cdf_.resize(n);
    double acc = 0;
    for (uint64_t i = 0; i < n; ++i) {
      acc += 1.0 / std::pow(double(i + 1), theta);
      cdf_[i] = acc;
    }
    for (double& c : cdf_) c /= acc;
    return;
  }
  zetan_ = Zeta(n, theta);
  double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ =
      (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) / (1.0 - zeta2 / zetan_);
}

uint64_t ZipfGenerator::Next(Rng& rng) {
  if (theta_ == 0.0) return rng.NextBounded(n_);
  double u = rng.NextDouble();
  if (!cdf_.empty()) {
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return it == cdf_.end() ? n_ - 1 : uint64_t(it - cdf_.begin());
  }
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  uint64_t v = static_cast<uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

size_t SampleWeighted(Rng& rng, const std::vector<double>& weights) {
  assert(!weights.empty());
  if (weights.empty()) return 0;  // release-build guard: caller bug
  double total = 0;
  for (double w : weights) total += w;
  // A mass-less (all-zero, or non-finite) weight vector used to hit an
  // assert that vanished under NDEBUG, silently returning the LAST index —
  // a biased, wrong answer. With no mass to be proportional to, uniform is
  // the only unbiased interpretation; the stream still advances so callers
  // stay deterministic whether or not the degenerate case fires.
  if (!(total > 0) || !std::isfinite(total)) {
    return static_cast<size_t>(rng.NextBounded(weights.size()));
  }
  double r = rng.NextDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace dvp
