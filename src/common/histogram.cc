#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace dvp {

void Histogram::Add(double v) {
  if (samples_.empty()) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  samples_.push_back(v);
  sum_ += v;
  sorted_ = false;
}

void Histogram::Merge(const Histogram& other) {
  if (other.samples_.empty()) return;
  if (samples_.empty()) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sum_ += other.sum_;
  sorted_ = false;
}

void Histogram::Clear() {
  samples_.clear();
  sum_ = 0;
  min_ = 0;
  max_ = 0;
  sorted_ = true;
}

double Histogram::mean() const {
  return samples_.empty() ? 0.0 : sum_ / double(samples_.size());
}

double Histogram::Percentile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (q <= 0) return samples_.front();
  if (q >= 1) return samples_.back();
  double pos = q * double(samples_.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  double frac = pos - double(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double Histogram::StdDev() const {
  if (samples_.size() < 2) return 0.0;
  double m = mean();
  double acc = 0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / double(samples_.size() - 1));
}

std::string Histogram::Summary() const {
  // An empty histogram has no extrema or quantiles; printing the accessors'
  // 0.0 placeholders would fabricate a sample that never existed.
  if (samples_.empty()) return "n=0";
  std::ostringstream os;
  os << "n=" << count() << " mean=" << mean() << " p50=" << Median()
     << " p99=" << P99() << " p999=" << P999() << " max=" << max();
  return os.str();
}

void CounterSet::Inc(const std::string& name, uint64_t delta) {
  counters_[name] += delta;
}

uint64_t CounterSet::Get(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void CounterSet::Merge(const CounterSet& other) {
  for (const auto& [k, v] : other.counters_) counters_[k] += v;
}

std::string CounterSet::ToString() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [k, v] : counters_) {
    if (!first) os << " ";
    os << k << "=" << v;
    first = false;
  }
  return os.str();
}

}  // namespace dvp
