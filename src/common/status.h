// Status / StatusOr: error handling without exceptions, in the style used by
// production database engines (RocksDB, Arrow). A Status is cheap to copy in
// the OK case (no allocation) and carries a code + message otherwise.
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace dvp {

/// Error categories used across the library. Kept deliberately small; the
/// message carries the detail.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,  ///< caller error: bad parameter / malformed spec
  kNotFound = 2,         ///< item / site / record does not exist
  kAborted = 3,          ///< transaction aborted (timeout, CC rejection, ...)
  kTimeout = 4,          ///< a timeout counter signalled (paper §5 step 3)
  kUnavailable = 5,      ///< resource unreachable (partition, crashed site)
  kConflict = 6,         ///< lock or timestamp conflict (Conc1/Conc2)
  kFailedPrecondition = 7,  ///< operation not valid in current state
  kCorruption = 8,          ///< log / storage integrity violation
  kInternal = 9,            ///< invariant violation inside the library
};

/// Human-readable name of a StatusCode (e.g. "Aborted").
std::string_view StatusCodeName(StatusCode code);

/// Result of an operation: OK or a (code, message) pair.
///
/// The OK status is represented by a null state pointer, so returning OK
/// never allocates.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_shared<State>(code, std::move(message))) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const {
    return state_ == nullptr ? StatusCode::kOk : state_->code;
  }
  /// Message text; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ == nullptr ? kEmpty : state_->message;
  }

  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsTimeout() const { return code() == StatusCode::kTimeout; }
  bool IsConflict() const { return code() == StatusCode::kConflict; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct State {
    State(StatusCode c, std::string m) : code(c), message(std::move(m)) {}
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<State> state_;  // null <=> OK
};

/// A value or an error Status. Minimal local analogue of absl::StatusOr.
template <typename T>
class StatusOr {
 public:
  /// Implicit from error status (must not be OK).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }
  /// Implicit from value.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return value_;
  }
  T& value() & {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const {
    return ok() ? value_ : std::move(fallback);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace dvp

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define DVP_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::dvp::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (0)

/// Evaluates a StatusOr expression, propagating errors, else binds the value.
#define DVP_ASSIGN_OR_RETURN(lhs, expr)      \
  auto DVP_CONCAT_(_so_, __LINE__) = (expr); \
  if (!DVP_CONCAT_(_so_, __LINE__).ok())     \
    return DVP_CONCAT_(_so_, __LINE__).status(); \
  lhs = std::move(DVP_CONCAT_(_so_, __LINE__)).value()

#define DVP_CONCAT_INNER_(a, b) a##b
#define DVP_CONCAT_(a, b) DVP_CONCAT_INNER_(a, b)
