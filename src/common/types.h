// Strong identifier types and the Lamport timestamp used throughout the
// library. Strong typing prevents a SiteId from being passed where a TxnId
// is expected — a real hazard in a codebase that juggles half a dozen
// integer id spaces.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace dvp {

/// Virtual time in the discrete-event simulation, in microseconds.
using SimTime = int64_t;
inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();

namespace internal {

/// CRTP-free strong integer wrapper. `Tag` makes distinct instantiations
/// incompatible; `U` is the underlying integer.
template <typename Tag, typename U = uint64_t>
class StrongId {
 public:
  using underlying_type = U;

  constexpr StrongId() = default;
  constexpr explicit StrongId(U value) : value_(value) {}

  constexpr U value() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalidValue; }

  static constexpr StrongId Invalid() { return StrongId(kInvalidValue); }

  friend constexpr auto operator<=>(StrongId a, StrongId b) = default;

  std::string ToString() const {
    return valid() ? std::to_string(value_) : "<invalid>";
  }

 private:
  static constexpr U kInvalidValue = std::numeric_limits<U>::max();
  U value_ = kInvalidValue;
};

}  // namespace internal

/// Identifies one of the n sites (0-based dense index).
using SiteId = internal::StrongId<struct SiteIdTag, uint32_t>;
/// Identifies a logical data item d (e.g. "seats on flight A").
using ItemId = internal::StrongId<struct ItemIdTag, uint32_t>;
/// Identifies a transaction; in Conc1 the TxnId *is* the timestamp value.
using TxnId = internal::StrongId<struct TxnIdTag, uint64_t>;
/// Log sequence number within one site's stable log.
using Lsn = internal::StrongId<struct LsnTag, uint64_t>;
/// Per-(sender,receiver) message sequence number (transport layer).
using MsgSeq = internal::StrongId<struct MsgSeqTag, uint64_t>;
/// Identifies a Vm uniquely in the whole system (issued by the sender).
using VmId = internal::StrongId<struct VmIdTag, uint64_t>;

/// Lamport timestamp with the site id in the low-order bits, the "common
/// scheme" the paper adopts in §7. Total order: counter first, then site.
class Timestamp {
 public:
  constexpr Timestamp() = default;
  constexpr Timestamp(uint64_t counter, SiteId site)
      : packed_((counter << kSiteBits) | (site.value() & kSiteMask)) {}

  constexpr uint64_t counter() const { return packed_ >> kSiteBits; }
  constexpr SiteId site() const {
    return SiteId(static_cast<uint32_t>(packed_ & kSiteMask));
  }
  constexpr uint64_t packed() const { return packed_; }

  static constexpr Timestamp FromPacked(uint64_t packed) {
    Timestamp ts;
    ts.packed_ = packed;
    return ts;
  }
  /// The minimal timestamp; every fragment starts here so that any real
  /// transaction may lock it.
  static constexpr Timestamp Zero() { return Timestamp(); }

  friend constexpr auto operator<=>(Timestamp a, Timestamp b) = default;

  std::string ToString() const {
    return std::to_string(counter()) + "." + std::to_string(site().value());
  }

  /// Number of low-order bits reserved for the site id (up to 1024 sites).
  static constexpr int kSiteBits = 10;
  static constexpr uint64_t kSiteMask = (uint64_t{1} << kSiteBits) - 1;

 private:
  uint64_t packed_ = 0;
};

/// A Lamport clock: ticks on local events, merges on message receipt
/// ("bump-up", paper §7).
class LamportClock {
 public:
  explicit LamportClock(SiteId site) : site_(site) {}

  /// Advances the clock and returns a fresh, unique timestamp.
  Timestamp Next() { return Timestamp(++counter_, site_); }

  /// Current value without advancing.
  Timestamp Peek() const { return Timestamp(counter_, site_); }

  /// Merges a timestamp observed on an incoming message: the local counter
  /// jumps past it, repairing an outdated clock after recovery.
  void Observe(Timestamp ts) {
    if (ts.counter() > counter_) counter_ = ts.counter();
  }

  /// Restores the counter after a crash (from the log tail). Passing a stale
  /// value is safe: Observe() repairs it, as the paper notes in §7.
  void Reset(uint64_t counter) { counter_ = counter; }

  SiteId site() const { return site_; }

 private:
  SiteId site_;
  uint64_t counter_ = 0;
};

}  // namespace dvp

namespace std {
template <typename Tag, typename U>
struct hash<dvp::internal::StrongId<Tag, U>> {
  size_t operator()(dvp::internal::StrongId<Tag, U> id) const {
    return std::hash<U>{}(id.value());
  }
};
template <>
struct hash<dvp::Timestamp> {
  size_t operator()(dvp::Timestamp ts) const {
    return std::hash<uint64_t>{}(ts.packed());
  }
};
}  // namespace std
