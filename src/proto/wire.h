// Wire protocol of the DvP system: the message kinds the paper's protocol
// exchanges between sites.
//
//  * RequestMsg    — "send me (part of) your d_j" for one or more items
//                    (§5 step 2). All of one transaction's requests travel
//                    in a single message so Conc2 can broadcast them together
//                    atomically (§6.2). Datagram: delivery is not critical
//                    (§8); a lost request at worst costs a timeout abort.
//  * VmTransferMsg — the real message carrying a Vm's value. Reliable:
//                    retransmitted until the recipient's acceptance ack is
//                    durably processed, so the Vm is never lost (§4.2).
//  * VmAckMsg      — recipient → sender after the acceptance record is
//                    forced: the sender stops retransmitting and logs the
//                    Vm's death. Datagram; duplicates of the transfer are
//                    re-acked, so a lost ack only delays cleanup.
#pragma once

#include <vector>

#include "common/types.h"
#include "dvpcore/domain.h"
#include "net/message.h"

namespace dvp::proto {

/// One item's worth of a request. `read_all` marks a traditional full read:
/// the remote must ship its *entire* fragment and may only do so when it has
/// no outstanding Vm for the item (§5); otherwise `amount` is the shortfall
/// the origin needs.
struct RequestPart {
  ItemId item;
  core::Value amount = 0;
  bool read_all = false;
};

/// Request for data values (§5 step 2).
struct RequestMsg final : public net::Envelope {
  TxnId txn;               ///< requesting transaction
  uint64_t ts_packed = 0;  ///< TS(t), gating the grant under Conc1
  SiteId origin;           ///< site executing the transaction
  /// Full-read round number; reads iterate gather rounds until the system
  /// quiesces on the item (N_M = 0 in the paper's notation, §3).
  uint32_t round = 1;
  std::vector<RequestPart> parts;
  /// Set by surplus-directed origins: a recipient that cannot ship anything
  /// answers with a SurplusNackMsg so the origin's hint cache self-corrects.
  bool want_surplus_nack = false;
  /// The requesting transaction is a multi-item atomic set: its parts gather
  /// several items under one timestamp. Advisory today (recipients count it
  /// for observability); carried on the wire so recipients could prioritise
  /// or co-grant. Encoded as a bit of the same flags byte as
  /// want_surplus_nack — the frame layout and EncodedSize are unchanged.
  bool atomic_set = false;

  std::string_view Tag() const override { return "Request"; }
  size_t EncodedSize() const override {
    // txn, ts, origin, round, flags (want_surplus_nack bit 0, atomic_set
    // bit 1) + one (item, amount, flag) per part.
    return net::kEnvelopeHeaderBytes + 8 + 8 + 4 + 4 + 1 + parts.size() * 13;
  }
};

/// A real message belonging to a Vm.
struct VmTransferMsg final : public net::Envelope {
  VmId vm;
  SiteId src;
  ItemId item;
  core::Value amount = 0;
  /// Transaction the value was requested for; lets the origin match replies
  /// to the waiting transaction. Invalid for spontaneous redistribution.
  TxnId for_txn;
  /// Lamport timestamp at creation; bumps the recipient's clock (§7).
  uint64_t ts_packed = 0;
  /// Sender's closed watermark for this destination: every Vm counter below
  /// this that the sender ever addressed to the recipient has been durably
  /// acked (VmAckedRec forced) and will never be retransmitted. The
  /// recipient prunes its accepted-set below it — the piggybacked cumulative
  /// ack of §4.2 turned around to bound the *receiver's* dedup state.
  uint64_t closed_below = 0;

  // ---- Full-read reply metadata (meaningful when is_read_reply) ----------
  bool is_read_reply = false;
  /// Which gather round this reply answers.
  uint32_t round = 0;
  /// The sender's lifetime count of accepted Vm at reply time. The reader
  /// terminates only after two consecutive all-zero rounds with unchanged
  /// counters — evidence that no value moved anywhere in between (the
  /// N_M = 0 condition of §3 turned into a termination-detection rule).
  uint64_t accept_count = 0;
  /// Lifetime count of Vm *created* at the source site, snapshotted with
  /// accept_count. The read-termination rule compares both: an acceptance can
  /// land after the acceptor's reply for a round, but the matching creation
  /// always precedes the creator's own next reply (the Vm must be acked
  /// before the creator's outbox clears), so the pair is race-free where the
  /// accept count alone is not.
  uint64_t create_count = 0;

  std::string_view Tag() const override { return "VmTransfer"; }
  size_t EncodedSize() const override {
    // vm, src, item, amount, for_txn, ts, closed_below + read-reply block.
    return net::kEnvelopeHeaderBytes + 8 + 4 + 4 + 8 + 8 + 8 + 8 +
           (1 + 4 + 8 + 8);
  }
};

/// Acknowledgement that `vm` was durably accepted.
struct VmAckMsg final : public net::Envelope {
  VmId vm;
  SiteId from;
  uint64_t ts_packed = 0;

  std::string_view Tag() const override { return "VmAck"; }
  size_t EncodedSize() const override {
    return net::kEnvelopeHeaderBytes + 8 + 4 + 8;  // vm, from, ts
  }
};

/// Courtesy notification that the sender's channel to the recipient drained:
/// every Vm counter below `closed_below` that the sender ever addressed to
/// the recipient is durably closed (VmAckedRec forced) and will never be
/// retransmitted. Transfers piggyback the same watermark, but once the last
/// outstanding Vm is acked there is no further transfer to carry it — without
/// this datagram the recipient's dedup entries for the final burst would
/// linger until the channel's next use. Best-effort: if lost, the next
/// transfer prunes instead; the entries are volatile either way.
struct VmClosureMsg final : public net::Envelope {
  SiteId src;
  uint64_t closed_below = 0;

  std::string_view Tag() const override { return "VmClosure"; }
  size_t EncodedSize() const override {
    return net::kEnvelopeHeaderBytes + 4 + 8;  // src, closed_below
  }
};

/// Courtesy refusal when the Conc1 timestamp rule blocks a request: carries
/// the refusing site's clock so the origin's Lamport counter catches up
/// (§7's "bump-up" — without it, a site with a lagging clock could have its
/// requests refused indefinitely). A retry of the transaction then carries a
/// competitive timestamp. Purely an optimisation; losing it costs nothing.
struct CcNackMsg final : public net::Envelope {
  SiteId from;
  uint64_t ts_packed = 0;

  std::string_view Tag() const override { return "CcNack"; }
  size_t EncodedSize() const override {
    return net::kEnvelopeHeaderBytes + 4 + 8;  // from, ts
  }
};

/// Courtesy "nothing to ship" reply to a surplus-directed shortfall request
/// (RequestMsg::want_surplus_nack): the origin zeroes its cached surplus for
/// (from, item) instead of waiting for the hint to age out. Datagram, purely
/// advisory — losing it costs at most one more misdirected request.
struct SurplusNackMsg final : public net::Envelope {
  SiteId from;
  ItemId item;
  uint64_t ts_packed = 0;

  std::string_view Tag() const override { return "SurplusNack"; }
  size_t EncodedSize() const override {
    return net::kEnvelopeHeaderBytes + 4 + 4 + 8;  // from, item, ts
  }
};

/// One item's stamped entry in a snapshot reply: the replying site's resident
/// fragment plus its per-item Vm ledger at the capture instant. The four
/// counters are lifetime totals of Vm this site created / accepted for the
/// item (read-reply Vm included — they carry real value); together with the
/// fragment they satisfy, at every instant,
///   fragment == initial + accepted_value − created_value + Σ committed deltas
/// which is what lets the reader assemble an exact consistent cut from one
/// entry per site without moving any value (see DESIGN §4, snapshot reads).
struct SnapshotEntry {
  ItemId item;
  core::Value fragment = 0;     ///< resident fragment value at capture
  uint64_t frag_ts_packed = 0;  ///< fragment's Lamport stamp at capture
  uint64_t created_count = 0;   ///< Vm this site created for the item
  int64_t created_value = 0;    ///< value those Vm carried away
  uint64_t accepted_count = 0;  ///< Vm this site accepted for the item
  int64_t accepted_value = 0;   ///< value those Vm brought in
  /// Sender's per-item closed watermark: every Vm counter below this that it
  /// ever created for the item is durably dead. Staleness observability.
  uint64_t closed_below = 0;

  friend bool operator==(const SnapshotEntry&, const SnapshotEntry&) = default;
};

/// Stamped snapshot-read request (ReadMode::kSnapshot): "answer with your
/// resident fragments and per-item Vm ledgers for these items". Unlike a
/// full-read RequestMsg it moves no value, takes no remote lock, and the
/// remote's concurrent writes proceed untouched. Datagram: a lost request is
/// re-sent by the reader's bounded-backoff retry rounds.
struct SnapshotReqMsg final : public net::Envelope {
  TxnId txn;               ///< reading transaction (reply routing key)
  uint64_t ts_packed = 0;  ///< TS(t); bumps the remote clock
  SiteId origin;           ///< site executing the read
  uint32_t round = 1;      ///< snapshot round this request opens
  std::vector<ItemId> items;

  std::string_view Tag() const override { return "SnapshotReq"; }
  size_t EncodedSize() const override {
    // txn, ts, origin, round + one item id per requested item.
    return net::kEnvelopeHeaderBytes + 8 + 8 + 4 + 4 + items.size() * 4;
  }

  friend bool operator==(const SnapshotReqMsg& a, const SnapshotReqMsg& b) {
    return a.txn == b.txn && a.ts_packed == b.ts_packed &&
           a.origin == b.origin && a.round == b.round && a.items == b.items;
  }
};

/// Reply to a SnapshotReqMsg: one stamped entry per requested item, captured
/// atomically at the instant the request was handled. The reply is sent only
/// after the capturing site's next log force (Site's snapshot handler gates
/// it through GroupCommitLog::OnNextForce), so every commit the captured
/// fragments reflect is durable — a crash before the force silently drops
/// the reply instead of leaking a cut containing rolled-back commits.
struct SnapshotReplyMsg final : public net::Envelope {
  TxnId txn;                ///< echoes the request
  SiteId from;              ///< replying site
  uint32_t round = 0;       ///< round the capture answers
  uint64_t ts_packed = 0;   ///< replier's clock at capture
  std::vector<SnapshotEntry> entries;

  std::string_view Tag() const override { return "SnapshotReply"; }
  size_t EncodedSize() const override {
    // txn, from, round, ts + (item, fragment, frag_ts, created count/value,
    // accepted count/value, closed_below) per entry.
    return net::kEnvelopeHeaderBytes + 8 + 4 + 4 + 8 + entries.size() * 60;
  }

  friend bool operator==(const SnapshotReplyMsg& a, const SnapshotReplyMsg& b) {
    return a.txn == b.txn && a.from == b.from && a.round == b.round &&
           a.ts_packed == b.ts_packed && a.entries == b.entries;
  }
};

}  // namespace dvp::proto
