// Wire protocol of the DvP system: the message kinds the paper's protocol
// exchanges between sites.
//
//  * RequestMsg    — "send me (part of) your d_j" for one or more items
//                    (§5 step 2). All of one transaction's requests travel
//                    in a single message so Conc2 can broadcast them together
//                    atomically (§6.2). Datagram: delivery is not critical
//                    (§8); a lost request at worst costs a timeout abort.
//  * VmTransferMsg — the real message carrying a Vm's value. Reliable:
//                    retransmitted until the recipient's acceptance ack is
//                    durably processed, so the Vm is never lost (§4.2).
//  * VmAckMsg      — recipient → sender after the acceptance record is
//                    forced: the sender stops retransmitting and logs the
//                    Vm's death. Datagram; duplicates of the transfer are
//                    re-acked, so a lost ack only delays cleanup.
#pragma once

#include <vector>

#include "common/types.h"
#include "dvpcore/domain.h"
#include "net/message.h"

namespace dvp::proto {

/// One item's worth of a request. `read_all` marks a traditional full read:
/// the remote must ship its *entire* fragment and may only do so when it has
/// no outstanding Vm for the item (§5); otherwise `amount` is the shortfall
/// the origin needs.
struct RequestPart {
  ItemId item;
  core::Value amount = 0;
  bool read_all = false;
};

/// Request for data values (§5 step 2).
struct RequestMsg final : public net::Envelope {
  TxnId txn;               ///< requesting transaction
  uint64_t ts_packed = 0;  ///< TS(t), gating the grant under Conc1
  SiteId origin;           ///< site executing the transaction
  /// Full-read round number; reads iterate gather rounds until the system
  /// quiesces on the item (N_M = 0 in the paper's notation, §3).
  uint32_t round = 1;
  std::vector<RequestPart> parts;

  std::string_view Tag() const override { return "Request"; }
};

/// A real message belonging to a Vm.
struct VmTransferMsg final : public net::Envelope {
  VmId vm;
  SiteId src;
  ItemId item;
  core::Value amount = 0;
  /// Transaction the value was requested for; lets the origin match replies
  /// to the waiting transaction. Invalid for spontaneous redistribution.
  TxnId for_txn;
  /// Lamport timestamp at creation; bumps the recipient's clock (§7).
  uint64_t ts_packed = 0;

  // ---- Full-read reply metadata (meaningful when is_read_reply) ----------
  bool is_read_reply = false;
  /// Which gather round this reply answers.
  uint32_t round = 0;
  /// The sender's lifetime count of accepted Vm at reply time. The reader
  /// terminates only after two consecutive all-zero rounds with unchanged
  /// counters — evidence that no value moved anywhere in between (the
  /// N_M = 0 condition of §3 turned into a termination-detection rule).
  uint64_t accept_count = 0;

  std::string_view Tag() const override { return "VmTransfer"; }
};

/// Acknowledgement that `vm` was durably accepted.
struct VmAckMsg final : public net::Envelope {
  VmId vm;
  SiteId from;
  uint64_t ts_packed = 0;

  std::string_view Tag() const override { return "VmAck"; }
};

/// Courtesy refusal when the Conc1 timestamp rule blocks a request: carries
/// the refusing site's clock so the origin's Lamport counter catches up
/// (§7's "bump-up" — without it, a site with a lagging clock could have its
/// requests refused indefinitely). A retry of the transaction then carries a
/// competitive timestamp. Purely an optimisation; losing it costs nothing.
struct CcNackMsg final : public net::Envelope {
  SiteId from;
  uint64_t ts_packed = 0;

  std::string_view Tag() const override { return "CcNack"; }
};

}  // namespace dvp::proto
