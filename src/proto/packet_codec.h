// Byte codec for whole net::Packet frames — the real-runtime counterpart of
// the simulator's modeled byte ledger. The sim network ships packets as
// shared C++ objects and only *costs* them via EncodedSize/WireBytes; the
// UDP conduit (runtime/real.h) must actually cross an address space, so every
// envelope kind the protocol exchanges gets a real encoding here.
//
// Frame layout mirrors the snapshot codec and wal::EncodeRecord: fixed32
// CRC32C over the body, then the body — packet transport fields as varints
// (zigzag for signed values), piggybacked hints, then the primary payload and
// each coalesced rider as length-prefixed envelope blobs. An envelope blob is
// a kind byte (one per proto message type; snapshot messages nest their
// existing standalone frames) followed by the message fields. Decoding is
// defensive end to end: arbitrary bytes — truncations, forged counts, bad
// checksums, unknown kinds, trailing garbage — surface as Status::Corruption,
// never undefined behaviour, because a real socket can hand us anything.
#pragma once

#include <string>
#include <string_view>

#include "common/status.h"
#include "net/message.h"

namespace dvp::proto {

/// Serializes one envelope (kind byte + fields). Used for packet payloads and
/// riders; exposed for tests. Returns an empty string for envelope types the
/// codec does not know (nothing in the protocol sends such a payload).
std::string EncodeEnvelope(const net::Envelope& env);

/// Appends one envelope blob to *out — same bytes as EncodeEnvelope without
/// the temporary string (unknown envelope types append nothing).
void EncodeEnvelopeTo(const net::Envelope& env, std::string* out);

/// Decodes an envelope blob produced by EncodeEnvelope.
StatusOr<net::EnvelopePtr> DecodeEnvelope(std::string_view blob);

/// Serializes a whole packet: transport header, ack, hints, payload, riders.
std::string EncodePacket(const net::Packet& packet);

/// Appends a whole frame (fixed32 CRC + body) to *out, byte-for-byte equal to
/// EncodePacket. `scratch` is a caller-owned buffer reused for nested
/// envelope blobs; with warmed capacities in *out and *scratch the call
/// performs zero heap allocations — the transport fast path depends on that.
void EncodePacketTo(const net::Packet& packet, std::string* out,
                    std::string* scratch);

/// Broadcast fan-out helper: the frame layout is CRC | src | dst | rest, and
/// for a fan-out only `dst` (and hence the CRC) differs per leg. Encodes
/// `rest` once into *tail when *tail is empty, then assembles the frame for
/// `dst` by splicing the header onto the shared tail and patching the
/// checksum. Byte-for-byte equal to EncodePacket on a copy of `packet` with
/// its dst replaced. Callers reuse one cleared *tail per fan-out.
void EncodePacketWithDstTo(const net::Packet& packet, SiteId dst,
                           std::string* out, std::string* tail,
                           std::string* scratch);

/// Decodes a frame produced by EncodePacket. Rejects (kCorruption) bad
/// checksums, truncations, unknown envelope kinds, and trailing garbage.
StatusOr<net::Packet> DecodePacket(std::string_view frame);

}  // namespace dvp::proto
