// Byte codec for whole net::Packet frames — the real-runtime counterpart of
// the simulator's modeled byte ledger. The sim network ships packets as
// shared C++ objects and only *costs* them via EncodedSize/WireBytes; the
// UDP conduit (runtime/real.h) must actually cross an address space, so every
// envelope kind the protocol exchanges gets a real encoding here.
//
// Frame layout mirrors the snapshot codec and wal::EncodeRecord: fixed32
// CRC32C over the body, then the body — packet transport fields as varints
// (zigzag for signed values), piggybacked hints, then the primary payload and
// each coalesced rider as length-prefixed envelope blobs. An envelope blob is
// a kind byte (one per proto message type; snapshot messages nest their
// existing standalone frames) followed by the message fields. Decoding is
// defensive end to end: arbitrary bytes — truncations, forged counts, bad
// checksums, unknown kinds, trailing garbage — surface as Status::Corruption,
// never undefined behaviour, because a real socket can hand us anything.
#pragma once

#include <string>
#include <string_view>

#include "common/status.h"
#include "net/message.h"

namespace dvp::proto {

/// Serializes one envelope (kind byte + fields). Used for packet payloads and
/// riders; exposed for tests. Returns an empty string for envelope types the
/// codec does not know (nothing in the protocol sends such a payload).
std::string EncodeEnvelope(const net::Envelope& env);

/// Decodes an envelope blob produced by EncodeEnvelope.
StatusOr<net::EnvelopePtr> DecodeEnvelope(std::string_view blob);

/// Serializes a whole packet: transport header, ack, hints, payload, riders.
std::string EncodePacket(const net::Packet& packet);

/// Decodes a frame produced by EncodePacket. Rejects (kCorruption) bad
/// checksums, truncations, unknown envelope kinds, and trailing garbage.
StatusOr<net::Packet> DecodePacket(std::string_view frame);

}  // namespace dvp::proto
