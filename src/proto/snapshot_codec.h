// Byte codec for the snapshot-read messages. The simulator itself never
// serializes envelopes (EncodedSize models the wire), but the snapshot
// protocol is the first whose replies a real deployment would persist or
// ship across address spaces, so these two messages get a real encoding:
// CRC32C-framed, varint-packed, and decoded defensively — arbitrary bytes
// must surface as Status::Corruption, never undefined behaviour. The fuzz
// suite drives Decode* with random bytes, truncations, and doctored frames
// exactly like the WAL record decoder.
//
// Frame layout (mirrors wal::EncodeRecord): fixed32 CRC32C over the body,
// then the body — a kind byte (1 = request, 2 = reply) followed by the
// message fields as varints (zigzag for signed values). A decoder consumes
// the entire body or rejects the frame; trailing bytes are corruption.
#pragma once

#include <string>
#include <string_view>

#include "common/status.h"
#include "proto/wire.h"

namespace dvp::proto {

std::string EncodeSnapshotReq(const SnapshotReqMsg& msg);
std::string EncodeSnapshotReply(const SnapshotReplyMsg& msg);

/// Decode a frame produced by the matching Encode*. Rejects (kCorruption)
/// bad checksums, truncations, wrong kind bytes, and trailing garbage.
StatusOr<SnapshotReqMsg> DecodeSnapshotReq(std::string_view frame);
StatusOr<SnapshotReplyMsg> DecodeSnapshotReply(std::string_view frame);

}  // namespace dvp::proto
