#include "proto/packet_codec.h"

#include <utility>

#include "proto/snapshot_codec.h"
#include "proto/wire.h"
#include "wal/encoding.h"

namespace dvp::proto {

namespace {

// Envelope kind bytes. Frozen: the UDP conduit speaks this across address
// spaces, so renumbering is a wire break.
constexpr uint8_t kKindRequest = 1;
constexpr uint8_t kKindVmTransfer = 2;
constexpr uint8_t kKindVmAck = 3;
constexpr uint8_t kKindVmClosure = 4;
constexpr uint8_t kKindCcNack = 5;
constexpr uint8_t kKindSurplusNack = 6;
constexpr uint8_t kKindSnapshotReq = 7;
constexpr uint8_t kKindSnapshotReply = 8;

void PutBool(std::string* dst, bool v) {
  dst->push_back(v ? '\x01' : '\x00');
}

bool GetBool(wal::Decoder* dec, bool* v) {
  uint64_t raw = 0;
  if (!dec->GetVarint64(&raw) || raw > 1) return false;
  *v = raw != 0;
  return true;
}

void EncodeRequest(std::string* body, const RequestMsg& m) {
  wal::PutVarint64(body, m.txn.value());
  wal::PutVarint64(body, m.ts_packed);
  wal::PutVarint64(body, m.origin.value());
  wal::PutVarint64(body, m.round);
  uint8_t flags = (m.want_surplus_nack ? 1 : 0) | (m.atomic_set ? 2 : 0);
  body->push_back(static_cast<char>(flags));
  wal::PutVarint64(body, m.parts.size());
  for (const RequestPart& p : m.parts) {
    wal::PutVarint64(body, p.item.value());
    wal::PutVarsint64(body, p.amount);
    PutBool(body, p.read_all);
  }
}

StatusOr<net::EnvelopePtr> DecodeRequest(wal::Decoder& dec) {
  auto m = net::MakeEnvelope<RequestMsg>();
  uint64_t txn = 0, ts = 0, origin = 0, round = 0, flags = 0, n = 0;
  if (!dec.GetVarint64(&txn) || !dec.GetVarint64(&ts) ||
      !dec.GetVarint64(&origin) || !dec.GetVarint64(&round) ||
      !dec.GetVarint64(&flags) || flags > 3 || !dec.GetVarint64(&n)) {
    return Status::Corruption("request: truncated header");
  }
  if (n > dec.remaining()) {
    return Status::Corruption("request: part count exceeds frame");
  }
  m->txn = TxnId(txn);
  m->ts_packed = ts;
  m->origin = SiteId(static_cast<uint32_t>(origin));
  m->round = static_cast<uint32_t>(round);
  m->want_surplus_nack = (flags & 1) != 0;
  m->atomic_set = (flags & 2) != 0;
  m->parts.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    RequestPart p;
    uint64_t item = 0;
    if (!dec.GetVarint64(&item) || !dec.GetVarsint64(&p.amount) ||
        !GetBool(&dec, &p.read_all)) {
      return Status::Corruption("request: truncated part");
    }
    p.item = ItemId(static_cast<uint32_t>(item));
    m->parts.push_back(p);
  }
  return net::EnvelopePtr(std::move(m));
}

void EncodeVmTransfer(std::string* body, const VmTransferMsg& m) {
  wal::PutVarint64(body, m.vm.value());
  wal::PutVarint64(body, m.src.value());
  wal::PutVarint64(body, m.item.value());
  wal::PutVarsint64(body, m.amount);
  wal::PutVarint64(body, m.for_txn.value());
  wal::PutVarint64(body, m.ts_packed);
  wal::PutVarint64(body, m.closed_below);
  PutBool(body, m.is_read_reply);
  wal::PutVarint64(body, m.round);
  wal::PutVarint64(body, m.accept_count);
  wal::PutVarint64(body, m.create_count);
}

StatusOr<net::EnvelopePtr> DecodeVmTransfer(wal::Decoder& dec) {
  auto m = net::MakeEnvelope<VmTransferMsg>();
  uint64_t vm = 0, src = 0, item = 0, txn = 0, round = 0;
  if (!dec.GetVarint64(&vm) || !dec.GetVarint64(&src) ||
      !dec.GetVarint64(&item) || !dec.GetVarsint64(&m->amount) ||
      !dec.GetVarint64(&txn) || !dec.GetVarint64(&m->ts_packed) ||
      !dec.GetVarint64(&m->closed_below) ||
      !GetBool(&dec, &m->is_read_reply) || !dec.GetVarint64(&round) ||
      !dec.GetVarint64(&m->accept_count) ||
      !dec.GetVarint64(&m->create_count)) {
    return Status::Corruption("vm transfer: truncated");
  }
  m->vm = VmId(vm);
  m->src = SiteId(static_cast<uint32_t>(src));
  m->item = ItemId(static_cast<uint32_t>(item));
  m->for_txn = TxnId(txn);
  m->round = static_cast<uint32_t>(round);
  return net::EnvelopePtr(std::move(m));
}

void EncodeVmAck(std::string* body, const VmAckMsg& m) {
  wal::PutVarint64(body, m.vm.value());
  wal::PutVarint64(body, m.from.value());
  wal::PutVarint64(body, m.ts_packed);
}

StatusOr<net::EnvelopePtr> DecodeVmAck(wal::Decoder& dec) {
  auto m = net::MakeEnvelope<VmAckMsg>();
  uint64_t vm = 0, from = 0;
  if (!dec.GetVarint64(&vm) || !dec.GetVarint64(&from) ||
      !dec.GetVarint64(&m->ts_packed)) {
    return Status::Corruption("vm ack: truncated");
  }
  m->vm = VmId(vm);
  m->from = SiteId(static_cast<uint32_t>(from));
  return net::EnvelopePtr(std::move(m));
}

void EncodeVmClosure(std::string* body, const VmClosureMsg& m) {
  wal::PutVarint64(body, m.src.value());
  wal::PutVarint64(body, m.closed_below);
}

StatusOr<net::EnvelopePtr> DecodeVmClosure(wal::Decoder& dec) {
  auto m = net::MakeEnvelope<VmClosureMsg>();
  uint64_t src = 0;
  if (!dec.GetVarint64(&src) || !dec.GetVarint64(&m->closed_below)) {
    return Status::Corruption("vm closure: truncated");
  }
  m->src = SiteId(static_cast<uint32_t>(src));
  return net::EnvelopePtr(std::move(m));
}

void EncodeCcNack(std::string* body, const CcNackMsg& m) {
  wal::PutVarint64(body, m.from.value());
  wal::PutVarint64(body, m.ts_packed);
}

StatusOr<net::EnvelopePtr> DecodeCcNack(wal::Decoder& dec) {
  auto m = net::MakeEnvelope<CcNackMsg>();
  uint64_t from = 0;
  if (!dec.GetVarint64(&from) || !dec.GetVarint64(&m->ts_packed)) {
    return Status::Corruption("cc nack: truncated");
  }
  m->from = SiteId(static_cast<uint32_t>(from));
  return net::EnvelopePtr(std::move(m));
}

void EncodeSurplusNack(std::string* body, const SurplusNackMsg& m) {
  wal::PutVarint64(body, m.from.value());
  wal::PutVarint64(body, m.item.value());
  wal::PutVarint64(body, m.ts_packed);
}

StatusOr<net::EnvelopePtr> DecodeSurplusNack(wal::Decoder& dec) {
  auto m = net::MakeEnvelope<SurplusNackMsg>();
  uint64_t from = 0, item = 0;
  if (!dec.GetVarint64(&from) || !dec.GetVarint64(&item) ||
      !dec.GetVarint64(&m->ts_packed)) {
    return Status::Corruption("surplus nack: truncated");
  }
  m->from = SiteId(static_cast<uint32_t>(from));
  m->item = ItemId(static_cast<uint32_t>(item));
  return net::EnvelopePtr(std::move(m));
}

// Overwrites 4 bytes at `pos` with the same little-endian layout as
// wal::PutFixed32 — used to patch the CRC placeholder once the body that
// follows it has been appended in place.
void PatchFixed32(std::string* s, size_t pos, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    (*s)[pos + i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

// Length-prefixed envelope blob via the reusable scratch buffer (cleared, not
// shrunk, so its capacity amortizes to zero allocations).
void AppendEnvelopeBlob(const net::EnvelopePtr& env, std::string* out,
                        std::string* scratch) {
  scratch->clear();
  if (env) EncodeEnvelopeTo(*env, scratch);
  wal::PutLengthPrefixed(out, *scratch);
}

// Body bytes after the dst varint: reliability through riders. Shared by the
// whole-frame and broadcast-fan-out encoders.
void AppendBodyAfterDst(const net::Packet& p, std::string* out,
                        std::string* scratch) {
  out->push_back(static_cast<char>(p.reliability));
  wal::PutVarint64(out, p.epoch);
  wal::PutVarint64(out, p.seq.value());
  wal::PutVarint64(out, p.seq_base);
  PutBool(out, p.has_ack);
  if (p.has_ack) {
    wal::PutVarint64(out, p.ack_epoch);
    wal::PutVarint64(out, p.ack_cum);
  }
  wal::PutVarint64(out, p.trace_id);
  wal::PutVarint64(out, p.hints.size());
  for (const net::PlacementHint& h : p.hints) {
    wal::PutVarint64(out, h.item.value());
    wal::PutVarsint64(out, h.surplus);
    wal::PutVarsint64(out, h.demand);
    wal::PutVarint64(out, h.stamp);
  }
  AppendEnvelopeBlob(p.payload, out, scratch);
  wal::PutVarint64(out, p.extra.size());
  for (const net::SubMsg& sub : p.extra) {
    out->push_back(static_cast<char>(sub.reliability));
    wal::PutVarint64(out, sub.seq.value());
    AppendEnvelopeBlob(sub.payload, out, scratch);
  }
}

}  // namespace

std::string EncodeEnvelope(const net::Envelope& env) {
  std::string blob;
  EncodeEnvelopeTo(env, &blob);
  return blob;
}

void EncodeEnvelopeTo(const net::Envelope& env, std::string* out) {
  // Kind byte, causal trace id (every envelope carries one), then the
  // kind-specific fields (or, for the snapshot messages, the nested frame —
  // they already have a standalone fuzz-hardened CRC codec; nest it rather
  // than invent a second layout).
  std::string& blob = *out;
  std::string_view tag = env.Tag();
  uint8_t kind = 0;
  if (tag == "Request") kind = kKindRequest;
  else if (tag == "VmTransfer") kind = kKindVmTransfer;
  else if (tag == "VmAck") kind = kKindVmAck;
  else if (tag == "VmClosure") kind = kKindVmClosure;
  else if (tag == "CcNack") kind = kKindCcNack;
  else if (tag == "SurplusNack") kind = kKindSurplusNack;
  else if (tag == "SnapshotReq") kind = kKindSnapshotReq;
  else if (tag == "SnapshotReply") kind = kKindSnapshotReply;
  else return;  // unknown envelope type: nothing on the wire
  blob.push_back(static_cast<char>(kind));
  wal::PutVarint64(&blob, env.trace_id);
  switch (kind) {
    case kKindRequest:
      EncodeRequest(&blob, static_cast<const RequestMsg&>(env));
      break;
    case kKindVmTransfer:
      EncodeVmTransfer(&blob, static_cast<const VmTransferMsg&>(env));
      break;
    case kKindVmAck:
      EncodeVmAck(&blob, static_cast<const VmAckMsg&>(env));
      break;
    case kKindVmClosure:
      EncodeVmClosure(&blob, static_cast<const VmClosureMsg&>(env));
      break;
    case kKindCcNack:
      EncodeCcNack(&blob, static_cast<const CcNackMsg&>(env));
      break;
    case kKindSurplusNack:
      EncodeSurplusNack(&blob, static_cast<const SurplusNackMsg&>(env));
      break;
    case kKindSnapshotReq:
      blob += EncodeSnapshotReq(static_cast<const SnapshotReqMsg&>(env));
      break;
    case kKindSnapshotReply:
      blob += EncodeSnapshotReply(static_cast<const SnapshotReplyMsg&>(env));
      break;
  }
}

StatusOr<net::EnvelopePtr> DecodeEnvelope(std::string_view blob) {
  if (blob.empty()) return Status::Corruption("envelope: empty blob");
  uint8_t kind = static_cast<uint8_t>(blob[0]);
  wal::Decoder dec(blob.substr(1));
  uint64_t trace_id = 0;
  if (!dec.GetVarint64(&trace_id)) {
    return Status::Corruption("envelope: truncated trace id");
  }
  // Bytes past the (kind, trace_id) prefix — the nested snapshot frames
  // consume this view whole instead of going through `dec`.
  std::string_view rest = blob.substr(blob.size() - dec.remaining());
  StatusOr<net::EnvelopePtr> result =
      Status::Corruption("envelope: unknown kind");
  switch (kind) {
    case kKindRequest:
      result = DecodeRequest(dec);
      break;
    case kKindVmTransfer:
      result = DecodeVmTransfer(dec);
      break;
    case kKindVmAck:
      result = DecodeVmAck(dec);
      break;
    case kKindVmClosure:
      result = DecodeVmClosure(dec);
      break;
    case kKindCcNack:
      result = DecodeCcNack(dec);
      break;
    case kKindSurplusNack:
      result = DecodeSurplusNack(dec);
      break;
    case kKindSnapshotReq: {
      StatusOr<SnapshotReqMsg> req = DecodeSnapshotReq(rest);
      if (!req.ok()) return req.status();
      auto env = net::MakeEnvelope<SnapshotReqMsg>(std::move(*req));
      env->trace_id = trace_id;
      return net::EnvelopePtr(std::move(env));
    }
    case kKindSnapshotReply: {
      StatusOr<SnapshotReplyMsg> reply = DecodeSnapshotReply(rest);
      if (!reply.ok()) return reply.status();
      auto env = net::MakeEnvelope<SnapshotReplyMsg>(std::move(*reply));
      env->trace_id = trace_id;
      return net::EnvelopePtr(std::move(env));
    }
    default:
      return result;
  }
  if (!result.ok()) return result;
  if (!dec.empty()) return Status::Corruption("envelope: trailing bytes");
  // Safe: the envelope was created mutable moments ago; sharing begins here.
  const_cast<net::Envelope*>(result->get())->trace_id = trace_id;
  return result;
}

std::string EncodePacket(const net::Packet& p) {
  std::string out, scratch;
  EncodePacketTo(p, &out, &scratch);
  return out;
}

void EncodePacketTo(const net::Packet& p, std::string* out,
                    std::string* scratch) {
  // CRC placeholder first, body appended in place behind it, checksum patched
  // at the end — one pass, no body copy (EncodePacket used to build the body
  // in a temporary and prepend the checksum).
  const size_t crc_pos = out->size();
  out->append(4, '\0');
  const size_t body_pos = out->size();
  wal::PutVarint64(out, p.src.value());
  wal::PutVarint64(out, p.dst.value());
  AppendBodyAfterDst(p, out, scratch);
  PatchFixed32(out, crc_pos,
               wal::Crc32c(std::string_view(*out).substr(body_pos)));
}

void EncodePacketWithDstTo(const net::Packet& p, SiteId dst, std::string* out,
                           std::string* tail, std::string* scratch) {
  if (tail->empty()) AppendBodyAfterDst(p, tail, scratch);
  const size_t crc_pos = out->size();
  out->append(4, '\0');
  const size_t body_pos = out->size();
  wal::PutVarint64(out, p.src.value());
  wal::PutVarint64(out, dst.value());
  out->append(*tail);
  PatchFixed32(out, crc_pos,
               wal::Crc32c(std::string_view(*out).substr(body_pos)));
}

StatusOr<net::Packet> DecodePacket(std::string_view frame) {
  wal::Decoder crc_dec(frame);
  uint32_t crc = 0;
  if (!crc_dec.GetFixed32(&crc)) {
    return Status::Corruption("packet: too short for checksum");
  }
  std::string_view body = frame.substr(4);
  if (wal::Crc32c(body) != crc) {
    return Status::Corruption("packet: checksum mismatch");
  }

  wal::Decoder dec(body);
  net::Packet p;
  uint64_t src = 0, dst = 0, rel = 0, seq = 0;
  if (!dec.GetVarint64(&src) || !dec.GetVarint64(&dst)) {
    return Status::Corruption("packet: truncated addressing");
  }
  if (!dec.GetVarint64(&rel) || rel > 1) {
    return Status::Corruption("packet: bad reliability class");
  }
  if (!dec.GetVarint64(&p.epoch) || !dec.GetVarint64(&seq) ||
      !dec.GetVarint64(&p.seq_base) || !GetBool(&dec, &p.has_ack)) {
    return Status::Corruption("packet: truncated channel state");
  }
  if (p.has_ack &&
      (!dec.GetVarint64(&p.ack_epoch) || !dec.GetVarint64(&p.ack_cum))) {
    return Status::Corruption("packet: truncated ack");
  }
  uint64_t num_hints = 0;
  if (!dec.GetVarint64(&p.trace_id) || !dec.GetVarint64(&num_hints)) {
    return Status::Corruption("packet: truncated trace/hints header");
  }
  if (num_hints > dec.remaining()) {
    return Status::Corruption("packet: hint count exceeds frame");
  }
  p.src = SiteId(static_cast<uint32_t>(src));
  p.dst = SiteId(static_cast<uint32_t>(dst));
  p.reliability = static_cast<net::Reliability>(rel);
  p.seq = MsgSeq(seq);
  p.hints.reserve(num_hints);
  for (uint64_t i = 0; i < num_hints; ++i) {
    net::PlacementHint h;
    uint64_t item = 0;
    if (!dec.GetVarint64(&item) || !dec.GetVarsint64(&h.surplus) ||
        !dec.GetVarsint64(&h.demand) || !dec.GetVarint64(&h.stamp)) {
      return Status::Corruption("packet: truncated hint");
    }
    h.item = ItemId(static_cast<uint32_t>(item));
    p.hints.push_back(h);
  }
  std::string_view payload_blob;
  if (!dec.GetLengthPrefixed(&payload_blob)) {
    return Status::Corruption("packet: truncated payload");
  }
  if (!payload_blob.empty()) {
    StatusOr<net::EnvelopePtr> payload = DecodeEnvelope(payload_blob);
    if (!payload.ok()) return payload.status();
    p.payload = std::move(*payload);
  }
  uint64_t num_extra = 0;
  if (!dec.GetVarint64(&num_extra)) {
    return Status::Corruption("packet: truncated rider count");
  }
  if (num_extra > dec.remaining()) {
    return Status::Corruption("packet: rider count exceeds frame");
  }
  p.extra.reserve(num_extra);
  for (uint64_t i = 0; i < num_extra; ++i) {
    net::SubMsg sub;
    uint64_t sub_rel = 0, sub_seq = 0;
    if (!dec.GetVarint64(&sub_rel) || sub_rel > 1 ||
        !dec.GetVarint64(&sub_seq)) {
      return Status::Corruption("packet: truncated rider header");
    }
    std::string_view sub_blob;
    if (!dec.GetLengthPrefixed(&sub_blob) || sub_blob.empty()) {
      return Status::Corruption("packet: truncated rider payload");
    }
    StatusOr<net::EnvelopePtr> sub_payload = DecodeEnvelope(sub_blob);
    if (!sub_payload.ok()) return sub_payload.status();
    sub.reliability = static_cast<net::Reliability>(sub_rel);
    sub.seq = MsgSeq(sub_seq);
    sub.payload = std::move(*sub_payload);
    p.extra.push_back(std::move(sub));
  }
  if (!dec.empty()) return Status::Corruption("packet: trailing bytes");
  return p;
}

}  // namespace dvp::proto
