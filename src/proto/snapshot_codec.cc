#include "proto/snapshot_codec.h"

#include "wal/encoding.h"

namespace dvp::proto {

namespace {

constexpr uint8_t kKindReq = 1;
constexpr uint8_t kKindReply = 2;

std::string Frame(std::string body) {
  std::string out;
  wal::PutFixed32(&out, wal::Crc32c(body));
  out += body;
  return out;
}

/// Strips and verifies the CRC framing; returns the body or empty status.
Status Unframe(std::string_view frame, std::string_view* body) {
  wal::Decoder dec(frame);
  uint32_t crc = 0;
  if (!dec.GetFixed32(&crc)) {
    return Status::Corruption("snapshot frame: too short for checksum");
  }
  std::string_view rest = frame.substr(4);
  if (wal::Crc32c(rest) != crc) {
    return Status::Corruption("snapshot frame: checksum mismatch");
  }
  *body = rest;
  return Status::OK();
}

}  // namespace

std::string EncodeSnapshotReq(const SnapshotReqMsg& msg) {
  std::string body;
  body.push_back(static_cast<char>(kKindReq));
  wal::PutVarint64(&body, msg.txn.value());
  wal::PutVarint64(&body, msg.ts_packed);
  wal::PutVarint64(&body, msg.origin.value());
  wal::PutVarint64(&body, msg.round);
  wal::PutVarint64(&body, msg.items.size());
  for (ItemId item : msg.items) wal::PutVarint64(&body, item.value());
  return Frame(std::move(body));
}

std::string EncodeSnapshotReply(const SnapshotReplyMsg& msg) {
  std::string body;
  body.push_back(static_cast<char>(kKindReply));
  wal::PutVarint64(&body, msg.txn.value());
  wal::PutVarint64(&body, msg.from.value());
  wal::PutVarint64(&body, msg.round);
  wal::PutVarint64(&body, msg.ts_packed);
  wal::PutVarint64(&body, msg.entries.size());
  for (const SnapshotEntry& e : msg.entries) {
    wal::PutVarint64(&body, e.item.value());
    wal::PutVarsint64(&body, e.fragment);
    wal::PutVarint64(&body, e.frag_ts_packed);
    wal::PutVarint64(&body, e.created_count);
    wal::PutVarsint64(&body, e.created_value);
    wal::PutVarint64(&body, e.accepted_count);
    wal::PutVarsint64(&body, e.accepted_value);
    wal::PutVarint64(&body, e.closed_below);
  }
  return Frame(std::move(body));
}

StatusOr<SnapshotReqMsg> DecodeSnapshotReq(std::string_view frame) {
  std::string_view body;
  if (Status s = Unframe(frame, &body); !s.ok()) return s;
  wal::Decoder dec(body);
  if (dec.empty() || static_cast<uint8_t>(body[0]) != kKindReq) {
    return Status::Corruption("snapshot frame: not a request");
  }
  dec = wal::Decoder(body.substr(1));
  SnapshotReqMsg msg;
  uint64_t txn = 0, ts = 0, origin = 0, round = 0, n = 0;
  if (!dec.GetVarint64(&txn) || !dec.GetVarint64(&ts) ||
      !dec.GetVarint64(&origin) || !dec.GetVarint64(&round) ||
      !dec.GetVarint64(&n)) {
    return Status::Corruption("snapshot request: truncated header");
  }
  // An item id per remaining byte at minimum — a forged huge count must not
  // drive a huge allocation before the per-item reads fail.
  if (n > dec.remaining()) {
    return Status::Corruption("snapshot request: item count exceeds frame");
  }
  msg.txn = TxnId(txn);
  msg.ts_packed = ts;
  msg.origin = SiteId(static_cast<uint32_t>(origin));
  msg.round = static_cast<uint32_t>(round);
  msg.items.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t item = 0;
    if (!dec.GetVarint64(&item)) {
      return Status::Corruption("snapshot request: truncated item list");
    }
    msg.items.push_back(ItemId(static_cast<uint32_t>(item)));
  }
  if (!dec.empty()) {
    return Status::Corruption("snapshot request: trailing bytes");
  }
  return msg;
}

StatusOr<SnapshotReplyMsg> DecodeSnapshotReply(std::string_view frame) {
  std::string_view body;
  if (Status s = Unframe(frame, &body); !s.ok()) return s;
  wal::Decoder dec(body);
  if (dec.empty() || static_cast<uint8_t>(body[0]) != kKindReply) {
    return Status::Corruption("snapshot frame: not a reply");
  }
  dec = wal::Decoder(body.substr(1));
  SnapshotReplyMsg msg;
  uint64_t txn = 0, from = 0, round = 0, ts = 0, n = 0;
  if (!dec.GetVarint64(&txn) || !dec.GetVarint64(&from) ||
      !dec.GetVarint64(&round) || !dec.GetVarint64(&ts) ||
      !dec.GetVarint64(&n)) {
    return Status::Corruption("snapshot reply: truncated header");
  }
  if (n > dec.remaining()) {
    return Status::Corruption("snapshot reply: entry count exceeds frame");
  }
  msg.txn = TxnId(txn);
  msg.from = SiteId(static_cast<uint32_t>(from));
  msg.round = static_cast<uint32_t>(round);
  msg.ts_packed = ts;
  msg.entries.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    SnapshotEntry e;
    uint64_t item = 0;
    if (!dec.GetVarint64(&item) || !dec.GetVarsint64(&e.fragment) ||
        !dec.GetVarint64(&e.frag_ts_packed) ||
        !dec.GetVarint64(&e.created_count) ||
        !dec.GetVarsint64(&e.created_value) ||
        !dec.GetVarint64(&e.accepted_count) ||
        !dec.GetVarsint64(&e.accepted_value) ||
        !dec.GetVarint64(&e.closed_below)) {
      return Status::Corruption("snapshot reply: truncated entry");
    }
    e.item = ItemId(static_cast<uint32_t>(item));
    msg.entries.push_back(e);
  }
  if (!dec.empty()) {
    return Status::Corruption("snapshot reply: trailing bytes");
  }
  return msg;
}

}  // namespace dvp::proto
