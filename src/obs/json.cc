#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/histogram.h"

namespace dvp::obs {

void JsonWriter::Set(const std::string& key, uint64_t v) {
  entries_[key] = std::to_string(v);
}

void JsonWriter::Set(const std::string& key, int64_t v) {
  entries_[key] = std::to_string(v);
}

void JsonWriter::Set(const std::string& key, double v) {
  if (!std::isfinite(v)) {
    entries_[key] = "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  entries_[key] = buf;
}

void JsonWriter::Set(const std::string& key, bool v) {
  entries_[key] = v ? "true" : "false";
}

void JsonWriter::Set(const std::string& key, const std::string& v) {
  entries_[key] = "\"" + Escape(v) + "\"";
}

void JsonWriter::SetNull(const std::string& key) { entries_[key] = "null"; }

void JsonWriter::SetRaw(const std::string& key, std::string rendered) {
  entries_[key] = std::move(rendered);
}

void JsonWriter::SetHistogram(const std::string& prefix, const Histogram& h) {
  Set(prefix + ".n", static_cast<uint64_t>(h.count()));
  Set(prefix + ".mean", h.mean());
  Set(prefix + ".p50", h.Median());
  Set(prefix + ".p99", h.P99());
  Set(prefix + ".p999", h.P999());
  if (h.count() == 0) {
    SetNull(prefix + ".min");
    SetNull(prefix + ".max");
  } else {
    Set(prefix + ".min", h.min());
    Set(prefix + ".max", h.max());
  }
}

std::string JsonWriter::ToString() const {
  std::string out = "{\n";
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    out += "  \"" + it->first + "\": " + it->second;
    out += std::next(it) == entries_.end() ? "\n" : ",\n";
  }
  out += "}\n";
  return out;
}

void JsonWriter::WriteTo(const std::string& path) const {
  if (path.empty()) return;
  std::ofstream f(path, std::ios::trunc);
  f << ToString();
}

std::string JsonWriter::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          // Strict JSON forbids raw control characters inside strings.
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
        break;
    }
  }
  return out;
}

}  // namespace dvp::obs
