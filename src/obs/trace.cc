#include "obs/trace.h"

#include <cstring>
#include <fstream>
#include <map>

#include "sim/kernel.h"

namespace dvp::obs {

std::string_view TrackName(Track t) {
  switch (t) {
    case Track::kTxn:
      return "txn";
    case Track::kVm:
      return "vm";
    case Track::kWal:
      return "wal";
    case Track::kNet:
      return "net";
    case Track::kSite:
      return "site";
  }
  return "?";
}

void TraceRecorder::Push(const TraceEvent& e) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(e);
}

void TraceRecorder::Begin(SiteId site, Track track, const char* name,
                          uint64_t id, const char* k1, uint64_t v1,
                          const char* k2, uint64_t v2) {
  Push({kernel_ ? kernel_->Now() : 0, static_cast<uint32_t>(site.value()),
        track, 'b', name, id, k1, v1, k2, v2});
}

void TraceRecorder::End(SiteId site, Track track, const char* name,
                        uint64_t id, const char* k1, uint64_t v1,
                        const char* k2, uint64_t v2) {
  Push({kernel_ ? kernel_->Now() : 0, static_cast<uint32_t>(site.value()),
        track, 'e', name, id, k1, v1, k2, v2});
}

void TraceRecorder::Instant(SiteId site, Track track, const char* name,
                            uint64_t id, const char* k1, uint64_t v1,
                            const char* k2, uint64_t v2) {
  Push({kernel_ ? kernel_->Now() : 0, static_cast<uint32_t>(site.value()),
        track, 'i', name, id, k1, v1, k2, v2});
}

std::vector<TraceEvent> TraceRecorder::EventsFor(uint64_t id) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.id == id && id != 0) out.push_back(e);
  }
  return out;
}

SimTime TraceRecorder::FirstTimeOf(const char* name, uint64_t v1) const {
  for (const auto& e : events_) {
    if (std::strcmp(e.name, name) == 0 && e.k1 != nullptr && e.v1 == v1) {
      return e.ts;
    }
  }
  return -1;
}

std::string TraceRecorder::ToPerfettoJson() const {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&out, &first](const std::string& line) {
    if (!first) out += ",\n";
    first = false;
    out += line;
  };

  // Metadata first: name each site's process and each (site, track) thread.
  // std::map iteration gives sorted, hence byte-stable, metadata order.
  std::map<uint32_t, std::map<uint8_t, Track>> layout;
  for (const auto& e : events_) {
    layout[e.site][static_cast<uint8_t>(e.track)] = e.track;
  }
  for (const auto& [site, tracks] : layout) {
    emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
         std::to_string(site) + ",\"tid\":0,\"args\":{\"name\":\"site" +
         std::to_string(site) + "\"}}");
    for (const auto& [tid, track] : tracks) {
      emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(site) + ",\"tid\":" + std::to_string(tid) +
           ",\"args\":{\"name\":\"" + std::string(TrackName(track)) + "\"}}");
    }
  }

  // Events in record order (the simulation's deterministic execution order).
  for (const auto& e : events_) {
    std::string line = "{\"name\":\"";
    line += e.name;
    line += "\",\"cat\":\"";
    line += TrackName(e.track);
    line += "\",\"ph\":\"";
    line += e.ph;
    line += "\",\"ts\":" + std::to_string(e.ts);
    line += ",\"pid\":" + std::to_string(e.site);
    line +=
        ",\"tid\":" + std::to_string(static_cast<uint8_t>(e.track));
    if (e.ph == 'b' || e.ph == 'e') {
      // Async-nestable spans correlate begin/end by (cat, id): concurrent
      // transactions at one site overlap, so duration events cannot nest.
      line += ",\"id\":\"" + std::to_string(e.id) + "\"";
    } else {
      line += ",\"s\":\"t\"";
    }
    line += ",\"args\":{";
    bool first_arg = true;
    auto arg = [&line, &first_arg](const char* k, uint64_t v) {
      if (k == nullptr) return;
      if (!first_arg) line += ",";
      first_arg = false;
      line += "\"";
      line += k;
      line += "\":" + std::to_string(v);
    };
    if (e.ph == 'i' && e.id != 0) arg("trace_id", e.id);
    arg(e.k1, e.v1);
    arg(e.k2, e.v2);
    line += "}}";
    emit(line);
  }
  out += "\n]}\n";
  return out;
}

void TraceRecorder::WriteTo(const std::string& path) const {
  if (path.empty()) return;
  std::ofstream f(path, std::ios::trunc);
  f << ToPerfettoJson();
}

}  // namespace dvp::obs
