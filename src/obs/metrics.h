// Typed metrics registry: the replacement for scattered
// CounterSet::Inc("free.form.key") call sites. A component resolves its
// handles ONCE at construction — the hot path is then a single pointer
// increment, with no string hashing and no map lookup — and the registry
// renders a legacy CounterSet compatibility view so AggregateCounters(),
// the chaos digest and every existing assertion keep their dotted names.
//
// Components that may run without a registry (unit-test rigs pass one; some
// baselines do not) resolve against Nop(), a shared write-only sink, so the
// increment stays branch-free instead of null-checking per event.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>

#include "common/histogram.h"

namespace dvp::obs {

/// Monotone counter handle. Stable address for the registry's lifetime.
class Counter {
 public:
  void Inc(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;
  uint64_t value_ = 0;
};

/// Last-value / high-water gauge handle.
class Gauge {
 public:
  void Set(int64_t v) { value_ = v; }
  /// High-water update: keeps the maximum ever Set or NoteMax'd.
  void NoteMax(int64_t v) { value_ = std::max(value_, v); }
  int64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;
  int64_t value_ = 0;
};

class JsonWriter;

/// Register-or-get registry of typed counters, gauges and histograms keyed
/// by the legacy dotted names. Handles are stable pointers (map nodes).
class MetricsRegistry {
 public:
  Counter* counter(const std::string& name) { return &counters_[name]; }
  Gauge* gauge(const std::string& name) { return &gauges_[name]; }
  Histogram* histogram(const std::string& name) { return &histograms_[name]; }

  /// Convenience read of a counter's value (0 when never registered) — the
  /// same contract CounterSet::Get had, so test assertions port verbatim.
  uint64_t Get(const std::string& name) const;
  /// Gauge read; 0 when never registered.
  int64_t GetGauge(const std::string& name) const;

  /// Legacy compatibility view: every counter that has counted something,
  /// under its registered name. Zero-valued handles are skipped to match the
  /// old behavior where a key existed only once incremented (digests and
  /// dumps stay free of registration-order noise).
  CounterSet AsCounterSet() const;

  /// Dumps every counter, gauge and histogram into the shared JSON sink
  /// (counters under `prefix + name`, histograms via SetHistogram).
  void DumpJson(JsonWriter* out, const std::string& prefix = "") const;

  /// Shared write-only sink for components constructed without a registry.
  static Counter* Nop();
  static Gauge* NopGauge();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Resolve helper: a handle from `m`, or the shared no-op sink.
inline Counter* CounterIn(MetricsRegistry* m, const char* name) {
  return m ? m->counter(name) : MetricsRegistry::Nop();
}
inline Gauge* GaugeIn(MetricsRegistry* m, const char* name) {
  return m ? m->gauge(name) : MetricsRegistry::NopGauge();
}

}  // namespace dvp::obs
