#include "obs/metrics.h"

#include "obs/json.h"

namespace dvp::obs {

uint64_t MetricsRegistry::Get(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

int64_t MetricsRegistry::GetGauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second.value();
}

CounterSet MetricsRegistry::AsCounterSet() const {
  CounterSet out;
  for (const auto& [name, c] : counters_) {
    if (c.value() != 0) out.Inc(name, c.value());
  }
  return out;
}

void MetricsRegistry::DumpJson(JsonWriter* out, const std::string& prefix) const {
  for (const auto& [name, c] : counters_) out->Set(prefix + name, c.value());
  for (const auto& [name, g] : gauges_) out->Set(prefix + name, g.value());
  for (const auto& [name, h] : histograms_) {
    out->SetHistogram(prefix + name, h);
  }
}

Counter* MetricsRegistry::Nop() {
  static Counter nop;
  return &nop;
}

Gauge* MetricsRegistry::NopGauge() {
  static Gauge nop;
  return &nop;
}

}  // namespace dvp::obs
