// Deterministic JSON sink shared by the bench binaries and chaos_runner —
// the single DumpJson of the observability layer. Keys emit sorted; integers
// render as integers, doubles with fixed six-digit precision, and non-finite
// doubles as null (printf's "nan"/"inf" are not JSON and silently broke the
// CI byte-diff before this class existed). A fixed-seed run therefore
// produces byte-identical, strictly-parseable files — the property the CI
// perf-smoke bounds check and BENCH_seed.json rely on.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace dvp {
class Histogram;
}

namespace dvp::obs {

class JsonWriter {
 public:
  void Set(const std::string& key, uint64_t v);
  void Set(const std::string& key, int64_t v);
  void Set(const std::string& key, int v) { Set(key, int64_t{v}); }
  void Set(const std::string& key, unsigned v) { Set(key, uint64_t{v}); }
  /// Non-finite values serialize as null: strict JSON has no nan/inf.
  void Set(const std::string& key, double v);
  void Set(const std::string& key, bool v);
  void Set(const std::string& key, const std::string& v);
  void Set(const std::string& key, const char* v) { Set(key, std::string(v)); }
  void SetNull(const std::string& key);
  /// Pre-rendered JSON fragment (nested array/object); the caller guarantees
  /// validity. This is how chaos_runner embeds its failures array.
  void SetRaw(const std::string& key, std::string rendered);

  /// Emits `prefix.n/.mean/.p50/.p99/.min/.max`. An empty histogram emits
  /// n=0 with null extrema — a real 0-valued sample and "no samples" must
  /// not be conflated in dumps (the Histogram::min()/max() 0.0 ambiguity).
  void SetHistogram(const std::string& prefix, const Histogram& h);

  std::string ToString() const;

  /// Writes the file when `path` is nonempty; a no-op sink otherwise, so
  /// callers record metrics unconditionally.
  void WriteTo(const std::string& path) const;

  /// JSON string escaping for ", \ and control characters (shared with
  /// hand-rendered fragments).
  static std::string Escape(const std::string& s);

 private:
  std::map<std::string, std::string> entries_;  // key -> rendered value
};

}  // namespace dvp::obs
