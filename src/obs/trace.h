// Causal trace recorder: typed span/instant events over the simulation's
// virtual clock, exported as Perfetto/chrome trace_event JSON.
//
// Determinism contract: recording NEVER touches the kernel's event queue,
// any RNG stream, or component state — it appends to a vector and stamps the
// current virtual time. A traced run therefore executes the exact same event
// sequence as an untraced one (same digest), and two runs of the same seed
// produce byte-identical JSON. Disabled (`trace_ == nullptr` in every
// component), the entire layer costs one pointer test per would-be event.
//
// Causality: every transaction mints a trace_id (its TxnId — the packed
// Lamport timestamp, globally unique) and every Envelope/Packet carries the
// id of the transaction (or Vm) it serves, so cross-site events — the
// request at the origin, the Vm born at the honoring site, the acceptance
// back home — share one id and link into a single causal chain. Rds
// transfers outside any transaction use their VmId as the trace_id.
//
// Export model: one Perfetto "process" per site, one "thread" per subsystem
// track (txn/vm/wal/net/site). Transaction phases are async-nestable spans
// (ph "b"/"e" keyed by trace_id) because concurrent transactions at one site
// overlap; everything else is an instant event.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace dvp::sim {
class Kernel;
}

namespace dvp::obs {

/// Subsystem track within one site's process. The numeric value is the
/// Perfetto tid.
enum class Track : uint8_t { kTxn = 0, kVm = 1, kWal = 2, kNet = 3, kSite = 4 };

std::string_view TrackName(Track t);

/// One recorded event. Names and arg keys must be string literals (static
/// storage): events are plain value copies, never owners.
struct TraceEvent {
  SimTime ts = 0;
  uint32_t site = 0;
  Track track = Track::kSite;
  char ph = 'i';  ///< 'b' span begin, 'e' span end, 'i' instant
  const char* name = "";
  uint64_t id = 0;  ///< causal trace_id (0 = uncorrelated)
  const char* k1 = nullptr;
  uint64_t v1 = 0;
  const char* k2 = nullptr;
  uint64_t v2 = 0;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(size_t max_events = size_t{1} << 20)
      : max_events_(max_events) {}

  /// Binds the virtual clock events are stamped with. The owner of the
  /// kernel (Cluster) attaches on construction; events recorded while
  /// unattached are stamped at ts 0.
  void Attach(const sim::Kernel* kernel) { kernel_ = kernel; }

  void Begin(SiteId site, Track track, const char* name, uint64_t id,
             const char* k1 = nullptr, uint64_t v1 = 0,
             const char* k2 = nullptr, uint64_t v2 = 0);
  void End(SiteId site, Track track, const char* name, uint64_t id,
           const char* k1 = nullptr, uint64_t v1 = 0,
           const char* k2 = nullptr, uint64_t v2 = 0);
  void Instant(SiteId site, Track track, const char* name, uint64_t id = 0,
               const char* k1 = nullptr, uint64_t v1 = 0,
               const char* k2 = nullptr, uint64_t v2 = 0);

  const std::vector<TraceEvent>& events() const { return events_; }
  /// Events recorded past max_events are counted here instead of stored.
  uint64_t dropped() const { return dropped_; }
  void Clear() {
    events_.clear();
    dropped_ = 0;
  }

  /// All events carrying causal id `id`, in record order — the oracle
  /// explanation mode's query ("what did this Vm/transaction actually do").
  std::vector<TraceEvent> EventsFor(uint64_t id) const;
  /// First event with this name whose k1-arg equals `v1` (e.g. the vm.born
  /// event of one VmId); ts of -1 means "no such event".
  SimTime FirstTimeOf(const char* name, uint64_t v1) const;

  /// Perfetto/chrome trace_event JSON: process per site, thread per track,
  /// byte-stable for a fixed event sequence.
  std::string ToPerfettoJson() const;
  /// Writes ToPerfettoJson() when `path` is nonempty.
  void WriteTo(const std::string& path) const;

 private:
  void Push(const TraceEvent& e);

  const sim::Kernel* kernel_ = nullptr;
  size_t max_events_;
  std::vector<TraceEvent> events_;
  uint64_t dropped_ = 0;
};

}  // namespace dvp::obs
