// One site of the DvP system: the composition of fragment store, lock table,
// Vm machinery, transaction manager, transport and stable storage, plus the
// crash/recover lifecycle. Volatile components live behind unique_ptrs and
// are destroyed wholesale on a crash; the StableStorage object is owned by
// the harness and survives, mirroring disk vs RAM.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "cc/lock_manager.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/types.h"
#include "dvpcore/catalog.h"
#include "dvpcore/value_store.h"
#include "net/conduit.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "placement/placement.h"
#include "recovery/recovery.h"
#include "runtime/runtime.h"
#include "txn/txn.h"
#include "txn/txn_manager.h"
#include "vm/vm_manager.h"
#include "wal/group_commit.h"
#include "wal/stable_storage.h"

namespace dvp::site {

struct SiteOptions {
  txn::TxnManagerOptions txn;
  net::Transport::Options transport;
  /// Demand-aware placement: surplus-hint piggyback + background rebalancer
  /// (both off by default). hints_per_frame is mirrored into the transport's
  /// max_frame_hints at build time.
  placement::PlacementOptions placement;
  /// Group-commit force policy (off by default: force per append).
  wal::GroupCommitOptions group_commit;
  /// Automatic checkpoint period; 0 disables (manual Checkpoint() only).
  SimTime checkpoint_interval_us = 0;
  /// Simulated redo cost per log-suffix record during recovery.
  SimTime recovery_us_per_record = 5;
  /// Optional causal trace recorder shared by every component of the site
  /// (and, via ClusterOptions.site, by the whole cluster). Null = tracing
  /// off, which costs one pointer test per would-be event.
  obs::TraceRecorder* trace = nullptr;
};

class Site {
 public:
  Site(SiteId id, runtime::Runtime* rt, net::Conduit* conduit,
       wal::StableStorage* storage, const core::Catalog* catalog, Rng rng,
       SiteOptions options);
  ~Site();

  Site(const Site&) = delete;
  Site& operator=(const Site&) = delete;

  /// First boot: installs this site's initial fragment allocation into the
  /// stable image and the live store. Call once, before running.
  void Bootstrap(const std::map<ItemId, core::Value>& initial_fragments);

  /// Submits a transaction here (§5). Fails fast when the site is down.
  StatusOr<TxnId> Submit(const txn::TxnSpec& spec, txn::TxnCallback cb);

  // ---- Failure lifecycle ---------------------------------------------------

  /// Clean crash: volatile state evaporates; pending transactions report
  /// site-failure (or commit, if their commit record was already forced).
  void Crash();

  /// Begins recovery; the site comes back up after the simulated redo time
  /// and is immediately able to process local transactions — no remote
  /// communication happens at any point (§7).
  void Recover(std::function<void(const recovery::RecoveryReport&)> done =
                   nullptr);

  bool IsUp() const { return up_; }

  /// True while a Recover() is scheduled but not yet complete; a second
  /// Recover (or a Crash) must wait it out.
  bool IsRecovering() const { return recovering_; }

  /// Flushes the fragment store to the stable image and advances the
  /// checkpoint, shortening future recoveries.
  void Checkpoint();

  // ---- Redistribution conveniences (Rds transactions, §5) ------------------

  void Prefetch(ItemId item, core::Value amount);
  Status SendValue(SiteId dst, ItemId item, core::Value amount);

  // ---- Introspection --------------------------------------------------------

  SiteId id() const { return id_; }
  const core::Catalog& catalog() const { return *catalog_; }
  wal::StableStorage& storage() { return *storage_; }
  const wal::StableStorage& storage() const { return *storage_; }
  /// Legacy compatibility view of the metrics registry (dotted names, only
  /// counters that have counted). Returned by value: the registry is the
  /// store, this is a rendering.
  CounterSet counters() const { return metrics_.AsCounterSet(); }
  /// The typed registry all of this site's components register with.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Live fragment value; requires the site to be up.
  core::Value LocalValue(ItemId item) const;

  /// The value recovery would produce — authoritative even while down.
  core::Value DurableValue(ItemId item) const;

  core::ValueStore* store() { return store_.get(); }
  cc::LockManager* locks() { return locks_.get(); }
  placement::PlacementManager* placement() { return placement_.get(); }
  vm::VmManager* vm() { return vm_.get(); }
  txn::TxnManager* txns() { return txn_.get(); }
  net::Transport* transport() { return transport_.get(); }
  wal::GroupCommitLog* wal() { return wal_.get(); }
  LamportClock& clock() { return clock_; }

 private:
  void BuildVolatile();
  /// Returns true when the payload was consumed (transport may ack/dedup);
  /// false defers it to a later retransmission (locked-item Vm transfers).
  bool OnEnvelope(SiteId from, net::EnvelopePtr payload);
  void ArmCheckpointTimer();

  SiteId id_;
  runtime::Runtime* rt_;
  net::Conduit* conduit_;
  wal::StableStorage* storage_;
  const core::Catalog* catalog_;
  Rng rng_;
  SiteOptions options_;
  obs::MetricsRegistry metrics_;
  LamportClock clock_;
  bool up_ = false;
  bool recovering_ = false;
  uint64_t lifecycle_generation_ = 0;  // invalidates stale timers

  // Volatile components (destroyed on crash). The group-commit scheduler is
  // volatile too: its batch buffer and pending completion callbacks die with
  // the crash, and Crash() drops the matching unforced log tail.
  std::unique_ptr<core::ValueStore> store_;
  std::unique_ptr<cc::LockManager> locks_;
  std::unique_ptr<placement::PlacementManager> placement_;
  std::unique_ptr<net::Transport> transport_;
  std::unique_ptr<wal::GroupCommitLog> wal_;
  std::unique_ptr<vm::VmManager> vm_;
  std::unique_ptr<txn::TxnManager> txn_;
};

}  // namespace dvp::site
