#include "site/site.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "proto/wire.h"

namespace dvp::site {

Site::Site(SiteId id, runtime::Runtime* rt, net::Conduit* conduit,
           wal::StableStorage* storage, const core::Catalog* catalog, Rng rng,
           SiteOptions options)
    : id_(id),
      rt_(rt),
      conduit_(conduit),
      storage_(storage),
      catalog_(catalog),
      rng_(rng),
      options_(options),
      clock_(id) {
  conduit_->RegisterEndpoint(
      id_,
      [this](const net::Packet& packet) {
        if (!up_ || !transport_) return;
        transport_->OnPacket(packet);
      },
      [this]() { return up_; });
}

Site::~Site() = default;

void Site::BuildVolatile() {
  store_ = std::make_unique<core::ValueStore>(catalog_);
  locks_ = std::make_unique<cc::LockManager>();
  placement_ = std::make_unique<placement::PlacementManager>(
      id_, conduit_->num_sites(), rt_, store_.get(), &metrics_,
      options_.placement);
  net::Transport::Options topts = options_.transport;
  if (options_.placement.hints_per_frame > 0) {
    topts.max_frame_hints = options_.placement.hints_per_frame;
  }
  transport_ = std::make_unique<net::Transport>(rt_, conduit_, id_,
                                                &metrics_, topts,
                                                options_.trace);
  transport_->set_epoch(storage_->incarnation());
  transport_->set_deliver_fn([this](SiteId from, net::EnvelopePtr payload) {
    return OnEnvelope(from, std::move(payload));
  });
  if (options_.placement.hints_per_frame > 0) {
    transport_->set_hint_fn(
        [this](SiteId dst) { return placement_->AdvertsFor(dst); });
    transport_->set_hint_sink(
        [this](SiteId src, const std::vector<net::PlacementHint>& hints) {
          placement_->OnHints(src, hints);
        });
  }
  wal_ = std::make_unique<wal::GroupCommitLog>(rt_, storage_, &metrics_,
                                               options_.group_commit,
                                               options_.trace);
  bool stamp_on_accept = options_.txn.scheme == cc::CcScheme::kConc1;
  vm_ = std::make_unique<vm::VmManager>(
      id_, wal_.get(), store_.get(), locks_.get(), transport_.get(), &clock_,
      &metrics_, stamp_on_accept, options_.txn.accept_stamp, options_.trace);
  // The transport's cumulative ack doubles as the Vm acceptance signal: it
  // fires when the peer has consumed the transfer even if every explicit
  // VmAckMsg was lost.
  transport_->set_ack_fn(
      [this](uint64_t token) { vm_->OnTransportAck(token); });
  txn_ = std::make_unique<txn::TxnManager>(
      id_, conduit_->num_sites(), rt_, wal_.get(), store_.get(),
      locks_.get(), vm_.get(), transport_.get(), &clock_, &metrics_,
      rng_.Fork(0xff00 + lifecycle_generation_), options_.txn, options_.trace,
      placement_.get());
  // The rebalancer's pushes are ordinary Rds/Vm transfers through the
  // transaction manager — conservation holds by construction.
  placement_->set_send_value_fn(
      [this](SiteId dst, ItemId item, core::Value amount) {
        return txn_->SendValue(dst, item, amount);
      });
  placement_->Start();
}

void Site::Bootstrap(const std::map<ItemId, core::Value>& initial_fragments) {
  assert(!up_ && "Bootstrap is for first boot only");
  if (up_) return;  // release-build guard
  BuildVolatile();
  for (const auto& [item, value] : initial_fragments) {
    assert(catalog_->domain(item).ValidFragment(value));
    storage_->WriteImage(item, value, Timestamp::Zero().packed());
    store_->Install(item, value, Timestamp::Zero());
  }
  storage_->set_checkpoint_upto(storage_->log_size());
  up_ = true;
  ArmCheckpointTimer();
}

StatusOr<TxnId> Site::Submit(const txn::TxnSpec& spec, txn::TxnCallback cb) {
  if (!up_) return Status::Unavailable("site is down");
  return txn_->Begin(spec, std::move(cb));
}

void Site::Crash() {
  if (!up_) return;
  up_ = false;
  ++lifecycle_generation_;
  metrics_.counter("site.crashes")->Inc();
  if (options_.trace) {
    options_.trace->Instant(id_, obs::Track::kSite, "site.crash");
  }
  // Pending transactions get their final verdict before the state dies.
  txn_->CrashAbortAll();
  transport_->Crash();
  txn_.reset();
  vm_.reset();
  wal_.reset();
  transport_.reset();
  placement_.reset();
  locks_.reset();
  store_.reset();
  // The batch buffer dies with the scheduler: records never covered by a
  // force were volatile, and the crash is the moment that shows.
  uint64_t dropped = storage_->DropUnforcedTail();
  if (dropped > 0) metrics_.counter("wal.dropped_unforced")->Inc(dropped);
}

void Site::Recover(
    std::function<void(const recovery::RecoveryReport&)> done) {
  assert(!up_ && !recovering_ && "Recover requires a crashed, idle site");
  if (up_ || recovering_) return;  // release-build guard: idempotent
  recovering_ = true;
  SimTime duration = recovery::RecoveryDuration(*storage_,
                                                options_.recovery_us_per_record);
  uint64_t gen = ++lifecycle_generation_;
  rt_->Schedule(duration, [this, gen, done = std::move(done)]() {
    if (gen != lifecycle_generation_) return;
    recovering_ = false;

    BuildVolatile();
    recovery::RecoveryReport report;
    Status s = recovery::RebuildStore(*storage_, store_.get(), &report);
    assert(s.ok() && "log corruption during recovery");
    (void)s;
    if (report.torn_tail) {
      // The damaged suffix was never safely forced; drop it so future
      // appends (and future recoveries) see a clean log.
      storage_->Truncate(report.valid_prefix);
      metrics_.counter("recovery.torn_tail")->Inc();
    }

    // §7: stale local counters are safe; restore the watermark we have.
    clock_.Reset(report.clock_counter);

    storage_->set_incarnation(storage_->incarnation() + 1);
    // The new incarnation is the transport epoch: peers reset per-channel
    // sequencing for the reborn sender and drop its previous life's packets.
    transport_->set_epoch(storage_->incarnation());
    storage_->Append(wal::LogRecord(
        wal::RecoveryRec{storage_->incarnation(), report.clock_counter}));

    // Re-arm outstanding Vm (the log is their home; the transport merely
    // retries them).
    vm_->RestoreFromLog();

    up_ = true;
    metrics_.counter("site.recoveries")->Inc();
    if (options_.trace) {
      options_.trace->Instant(id_, obs::Track::kSite, "site.recover", 0,
                              "incarnation", storage_->incarnation());
    }
    ArmCheckpointTimer();
    if (done) done(report);
  });
}

void Site::Checkpoint() {
  if (!up_) return;
  // Force the pending batch (running its completion callbacks) before
  // imaging the store: the image must not get ahead of the durable log.
  wal_->Flush();
  // Only materialised fragments need an image entry: an absent fragment IS
  // the domain identity, and recovery's store starts there. Sorted so the
  // imaging order (and any accounting keyed on it) is deterministic.
  std::vector<uint32_t> resident;
  resident.reserve(store_->resident_count());
  for (const auto& [item, frag] : store_->resident_fragments()) {
    (void)frag;
    resident.push_back(item);
  }
  std::sort(resident.begin(), resident.end());
  for (uint32_t i : resident) {
    const core::Fragment& frag = store_->fragment(ItemId(i));
    storage_->WriteImage(ItemId(i), frag.value, frag.ts.packed());
  }
  // The marker goes in first so the watermark covers it: a checkpoint
  // leaves nothing to replay.
  storage_->Append(wal::LogRecord(wal::CheckpointRec{}));
  storage_->set_checkpoint_upto(storage_->log_size());
  metrics_.counter("site.checkpoints")->Inc();
  if (options_.trace) {
    options_.trace->Instant(id_, obs::Track::kSite, "site.checkpoint");
  }
}

void Site::ArmCheckpointTimer() {
  if (options_.checkpoint_interval_us <= 0) return;
  uint64_t gen = lifecycle_generation_;
  rt_->Schedule(options_.checkpoint_interval_us, [this, gen]() {
    if (gen != lifecycle_generation_ || !up_) return;
    Checkpoint();
    ArmCheckpointTimer();
  });
}

void Site::Prefetch(ItemId item, core::Value amount) {
  if (up_) txn_->Prefetch(item, amount);
}

Status Site::SendValue(SiteId dst, ItemId item, core::Value amount) {
  if (!up_) return Status::Unavailable("site is down");
  return txn_->SendValue(dst, item, amount);
}

core::Value Site::LocalValue(ItemId item) const {
  assert(up_);
  return store_->value(item);
}

core::Value Site::DurableValue(ItemId item) const {
  core::ValueStore scratch(catalog_);
  recovery::RecoveryReport report;
  Status s = recovery::RebuildStore(*storage_, &scratch, &report);
  assert(s.ok());
  (void)s;
  return scratch.value(item);
}

bool Site::OnEnvelope(SiteId from, net::EnvelopePtr payload) {
  if (!up_) return false;
  if (const auto* req =
          dynamic_cast<const proto::RequestMsg*>(payload.get())) {
    txn_->OnRequest(from, *req);
    return true;
  }
  if (const auto* transfer =
          dynamic_cast<const proto::VmTransferMsg*>(payload.get())) {
    vm_->ObserveClosedBelow(transfer->src, transfer->closed_below);
    if (vm_->AlreadyAccepted(transfer->vm)) {
      // An acceptance still in the unforced batch must not be acked NOR
      // consumed: the transport's cumulative ack doubles as a Vm ack, and a
      // crash here could still lose the acceptance. Refuse; the covering
      // force sends the first ack, and any later retransmission ReAcks.
      if (vm_->IsUnforcedAccept(transfer->vm)) return false;
      vm_->ReAck(*transfer);
      return true;
    }
    if (txn_->RouteVmTransfer(from, *transfer)) {
      return !vm_->IsUnforcedAccept(transfer->vm);
    }
    // False here means deferred-while-locked: refuse the packet so the
    // transport neither acks nor dedups it and a retransmission re-offers
    // the value once the lock clears (§5). Accepted-but-unforced is refused
    // for the same reason as above.
    return vm_->AcceptOrIgnore(*transfer) &&
           !vm_->IsUnforcedAccept(transfer->vm);
  }
  if (const auto* sreq =
          dynamic_cast<const proto::SnapshotReqMsg*>(payload.get())) {
    txn_->OnSnapshotReq(from, *sreq);
    return true;
  }
  if (const auto* sreply =
          dynamic_cast<const proto::SnapshotReplyMsg*>(payload.get())) {
    txn_->OnSnapshotReply(from, *sreply);
    return true;
  }
  if (const auto* ack = dynamic_cast<const proto::VmAckMsg*>(payload.get())) {
    vm_->OnAck(*ack);
    return true;
  }
  if (const auto* closure =
          dynamic_cast<const proto::VmClosureMsg*>(payload.get())) {
    vm_->ObserveClosedBelow(closure->src, closure->closed_below);
    return true;
  }
  if (const auto* nack =
          dynamic_cast<const proto::CcNackMsg*>(payload.get())) {
    clock_.Observe(Timestamp::FromPacked(nack->ts_packed));
    metrics_.counter("req.nack_received")->Inc();
    return true;
  }
  if (const auto* snack =
          dynamic_cast<const proto::SurplusNackMsg*>(payload.get())) {
    txn_->OnSurplusNack(from, *snack);
    return true;
  }
  metrics_.counter("msg.unknown")->Inc();
  return true;
}

}  // namespace dvp::site
