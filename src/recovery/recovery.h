// Independent recovery (§7). A recovering site:
//   1. assumes no locks are held (the lock table is volatile by design);
//   2. rebuilds its fragments from the stable database image plus an
//      idempotent redo of the log suffix (absolute post-values, log order);
//   3. restores its Lamport counter from the log watermark — a stale counter
//      is only a temporary problem, repaired by Observe on the first
//      incoming message;
//   4. lets the ordinary Vm machinery re-drive outstanding Vm.
// No other site is consulted at any step: recovery is purely local.
#pragma once

#include <cstdint>

#include "common/status.h"
#include "common/types.h"
#include "dvpcore/value_store.h"
#include "wal/stable_storage.h"

namespace dvp::recovery {

/// What a recovery pass did; feeds the E6 experiment and the crash tests.
struct RecoveryReport {
  uint64_t records_replayed = 0;  ///< log suffix length beyond the checkpoint
  uint64_t redo_writes = 0;       ///< fragment writes re-applied
  uint64_t committed_txns = 0;    ///< commit records seen in the suffix
  uint64_t vm_creates = 0;        ///< Vm births seen in the suffix
  uint64_t vm_accepts = 0;        ///< Vm deaths seen in the suffix
  uint64_t clock_counter = 0;     ///< restored Lamport watermark
  uint64_t remote_messages_needed = 0;  ///< always 0 — the headline claim
  /// Records [checkpoint, valid_prefix) decoded cleanly; valid_prefix ==
  /// log_size when the log is intact. Replay never reads past the first
  /// damaged record — a torn or corrupted tail costs the unforced suffix,
  /// never the site.
  uint64_t valid_prefix = 0;
  /// True when the log ended in an undecodable record (torn write / bit
  /// rot). The caller should Truncate() the log to valid_prefix before
  /// appending anything new.
  bool torn_tail = false;
};

/// Rebuilds `store` (which must be freshly constructed) from `storage`'s
/// image and log suffix, and computes the Lamport watermark. Does not touch
/// the network. Replay stops at the last valid log prefix: a damaged record
/// ends the redo there (reported via valid_prefix / torn_tail) rather than
/// failing recovery — the records beyond it were never safely forced.
Status RebuildStore(const wal::StableStorage& storage, core::ValueStore* store,
                    RecoveryReport* report);

/// Like RebuildStore but replays only log records with LSN < `upto` — the
/// state a crash immediately after record `upto - 1` would recover to. The
/// chaos harness checks every such prefix is a sane state (the WAL-prefix
/// recoverability oracle).
Status RebuildStorePrefix(const wal::StableStorage& storage, uint64_t upto,
                          core::ValueStore* store, RecoveryReport* report);

/// Simulated duration of the redo pass: `us_per_record` per suffix record.
SimTime RecoveryDuration(const wal::StableStorage& storage,
                         SimTime us_per_record);

}  // namespace dvp::recovery
