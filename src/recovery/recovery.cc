#include "recovery/recovery.h"

#include <algorithm>

namespace dvp::recovery {

namespace {

// Applies one FragmentWrite to the store; absolute post-values make this
// idempotent under arbitrary replay positions.
void Redo(const wal::FragmentWrite& w, core::ValueStore* store,
          RecoveryReport* report) {
  store->Install(w.item, w.post_value, Timestamp::FromPacked(w.post_ts_packed));
  ++report->redo_writes;
}

}  // namespace

Status RebuildStore(const wal::StableStorage& storage,
                    core::ValueStore* store, RecoveryReport* report) {
  // Recovery sees the forced prefix only: records in the unforced group-
  // commit batch buffer are volatile by construction and a crash drops them.
  return RebuildStorePrefix(storage, storage.durable_size(), store, report);
}

Status RebuildStorePrefix(const wal::StableStorage& storage, uint64_t upto,
                          core::ValueStore* store, RecoveryReport* report) {
  // Start from the checkpointed image.
  for (const auto& [item, entry] : storage.image()) {
    store->Install(item, entry.value, Timestamp::FromPacked(entry.ts_packed));
  }

  uint64_t max_counter = 0;
  auto observe = [&max_counter](uint64_t ts_packed) {
    max_counter =
        std::max(max_counter, Timestamp::FromPacked(ts_packed).counter());
  };

  Status scan = storage.ScanPrefix(
      storage.checkpoint_upto(), upto,
      [&](Lsn, const wal::LogRecord& rec) {
        ++report->records_replayed;
        if (const auto* commit = std::get_if<wal::TxnCommitRec>(&rec)) {
          ++report->committed_txns;
          observe(commit->ts_packed);
          for (const auto& w : commit->writes) Redo(w, store, report);
        } else if (const auto* create = std::get_if<wal::VmCreateRec>(&rec)) {
          ++report->vm_creates;
          observe(create->write.post_ts_packed);
          Redo(create->write, store, report);
        } else if (const auto* accept = std::get_if<wal::VmAcceptRec>(&rec)) {
          ++report->vm_accepts;
          observe(accept->write.post_ts_packed);
          Redo(accept->write, store, report);
        } else if (const auto* recov = std::get_if<wal::RecoveryRec>(&rec)) {
          max_counter = std::max(max_counter, recov->clock_counter);
        }
      },
      &report->valid_prefix);
  if (!scan.ok()) return scan;
  report->torn_tail = report->valid_prefix < std::min(upto, storage.log_size());

  // The image's timestamps also bound the clock (commits before the
  // checkpoint are only in the image).
  for (const auto& [item, entry] : storage.image()) {
    (void)item;
    observe(entry.ts_packed);
  }

  report->clock_counter = max_counter;
  report->remote_messages_needed = 0;  // by construction
  return Status::OK();
}

SimTime RecoveryDuration(const wal::StableStorage& storage,
                         SimTime us_per_record) {
  uint64_t suffix = storage.durable_size() - storage.checkpoint_upto();
  return static_cast<SimTime>(suffix) * us_per_record;
}

}  // namespace dvp::recovery
