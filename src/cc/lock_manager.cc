#include "cc/lock_manager.h"

#include <algorithm>

namespace dvp::cc {

bool LockManager::TryLockAll(std::span<const ItemId> items, TxnId owner) {
  for (ItemId item : items) {
    auto it = table_.find(item);
    if (it != table_.end() && it->second != owner) return false;
  }
  for (ItemId item : items) table_[item] = owner;
  return true;
}

bool LockManager::TryLockAllOrdered(std::vector<ItemId> items, TxnId owner) {
  std::sort(items.begin(), items.end(),
            [](ItemId a, ItemId b) { return a.value() < b.value(); });
  items.erase(std::unique(items.begin(), items.end()), items.end());
  last_acquisition_order_.clear();
  for (ItemId item : items) {
    auto it = table_.find(item);
    if (it != table_.end() && it->second != owner) return false;
  }
  for (ItemId item : items) {
    table_[item] = owner;
    last_acquisition_order_.push_back(item);
  }
  return true;
}

bool LockManager::TryLock(ItemId item, TxnId owner) {
  auto [it, inserted] = table_.try_emplace(item, owner);
  return inserted || it->second == owner;
}

TxnId LockManager::OwnerOf(ItemId item) const {
  auto it = table_.find(item);
  return it == table_.end() ? TxnId::Invalid() : it->second;
}

bool LockManager::HeldBy(ItemId item, TxnId owner) const {
  auto it = table_.find(item);
  return it != table_.end() && it->second == owner;
}

void LockManager::Unlock(ItemId item, TxnId owner) {
  auto it = table_.find(item);
  if (it != table_.end() && it->second == owner) table_.erase(it);
}

void LockManager::ReleaseAll(TxnId owner) {
  for (auto it = table_.begin(); it != table_.end();) {
    if (it->second == owner) {
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace dvp::cc
