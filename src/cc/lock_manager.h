// Exclusive lock table for one site's fragments. All acquisitions are
// try-locks: a transaction either obtains every lock it asked for atomically
// (§5 step 1) or fails immediately, and remote requests on locked fragments
// are simply ignored. No lock ever waits on another, which is precisely why
// the scheme "is deadlock-free since there is no situation where an
// indefinite amount of waiting is involved" (§8).
//
// Lock state is volatile by design: §7 shows it is safe — and therefore
// required by our crash model — to assume no locks are held after a failure.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace dvp::cc {

class LockManager {
 public:
  /// Atomically acquires exclusive locks on all `items` for `owner`.
  /// Returns false (acquiring nothing) if any item is already locked by a
  /// different transaction. Items may repeat; a transaction never conflicts
  /// with itself.
  bool TryLockAll(std::span<const ItemId> items, TxnId owner);

  /// TryLockAll with the items sorted into ascending item-id order (and
  /// deduplicated) before acquisition. Multi-item transactions must acquire
  /// through this entry point: the global ascending order means no two
  /// multi-ops can ever hold-and-want each other's locks in a cycle, even
  /// across schemes that retry rather than abort. Acquisition is still
  /// all-or-nothing.
  bool TryLockAllOrdered(std::vector<ItemId> items, TxnId owner);

  /// The exact item sequence the last TryLockAllOrdered call walked while
  /// acquiring (empty if it failed the conflict pre-check). Exposed so tests
  /// can assert the lock-order invariant directly.
  const std::vector<ItemId>& last_acquisition_order() const {
    return last_acquisition_order_;
  }

  /// Try-lock for a single item (used by request-handling Rds actions).
  bool TryLock(ItemId item, TxnId owner);

  bool IsLocked(ItemId item) const { return table_.contains(item); }

  /// Owner of the lock on `item`, or invalid TxnId when free.
  TxnId OwnerOf(ItemId item) const;

  /// True iff `owner` currently holds the lock on `item`.
  bool HeldBy(ItemId item, TxnId owner) const;

  /// Releases one lock; no-op unless held by `owner`.
  void Unlock(ItemId item, TxnId owner);

  /// Releases every lock held by `owner` (§5 step 7).
  void ReleaseAll(TxnId owner);

  /// Drops the whole table — a crash, or §7 step 1 of recovery.
  void Clear() { table_.clear(); }

  size_t num_locked() const { return table_.size(); }

 private:
  std::unordered_map<ItemId, TxnId> table_;
  std::vector<ItemId> last_acquisition_order_;
};

}  // namespace dvp::cc
