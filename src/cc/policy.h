// Concurrency-control policy selection (§6).
//
// Conc1 (timestamping): transaction t may lock fragment d_j only when
// TS(t) > TS(d_j); granting sets TS(d_j) := TS(t). Conservative — a stale
// (small-timestamp) transaction is refused even on a free fragment — but
// serializable with no environment assumptions.
//
// Conc2 (two-phase locking): plain strict 2PL per site with no timestamp
// gate; sound only when the network offers order-synchronous FIFO channels
// and failure-free ordered broadcast of a transaction's requests (§6.2). The
// Cluster configures synchronous links and request broadcast in this mode.
#pragma once

#include "common/types.h"

namespace dvp::cc {

enum class CcScheme {
  kConc1,  ///< timestamp rule, targeted requests (default)
  kConc2,  ///< strict 2PL, broadcast requests, synchronous network assumed
};

/// How an unlocked Vm acceptance stamps the merged fragment under Conc1.
/// Both are sound; they differ in how many later requesters get refused.
enum class AcceptStampMode {
  kCreationTs,  ///< max(old stamp, the Vm's creation timestamp) — the least
                ///< conservative sound stamp (default)
  kFreshLocal,  ///< a fresh local timestamp — strictly more conservative;
                ///< kept for the ablation study (bench_conc)
};

/// Stateless policy object shared by the transaction manager and the remote
/// request handler.
class CcPolicy {
 public:
  explicit CcPolicy(CcScheme scheme) : scheme_(scheme) {}

  CcScheme scheme() const { return scheme_; }

  /// Gate applied before any lock grant (local or on behalf of a request).
  bool MayLock(Timestamp txn_ts, Timestamp fragment_ts) const {
    if (scheme_ == CcScheme::kConc2) return true;
    return txn_ts > fragment_ts;
  }

  /// Whether a grant must advance the fragment timestamp.
  bool StampOnLock() const { return scheme_ == CcScheme::kConc1; }

  /// Whether a transaction's remote requests travel as one atomic broadcast
  /// (Conc2's requirement that "all the requests made by a transaction are
  /// broadcast together").
  bool BroadcastRequests() const { return scheme_ == CcScheme::kConc2; }

 private:
  CcScheme scheme_;
};

}  // namespace dvp::cc
