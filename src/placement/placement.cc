#include "placement/placement.h"

#include <algorithm>

namespace dvp::placement {

PlacementManager::PlacementManager(SiteId self, uint32_t num_sites,
                                   runtime::Runtime* rt,
                                   core::ValueStore* store,
                                   obs::MetricsRegistry* metrics,
                                   PlacementOptions options)
    : self_(self),
      num_sites_(num_sites),
      rt_(rt),
      store_(store),
      options_(options),
      m_hint_observed_(obs::CounterIn(metrics, "placement.hint.observed")),
      m_hint_hit_(obs::CounterIn(metrics, "placement.hint.hit")),
      m_hint_miss_(obs::CounterIn(metrics, "placement.hint.miss")),
      m_hint_stale_(obs::CounterIn(metrics, "placement.hint.stale")),
      m_hint_empty_(obs::CounterIn(metrics, "placement.hint.empty")),
      m_rebalance_push_(obs::CounterIn(metrics, "placement.rebalance.push")),
      m_rebalance_value_(obs::CounterIn(metrics, "placement.rebalance.value")) {
  // Feed the advert ring from store writes: any item whose fragment moves
  // here may have surplus worth advertising. This is what keeps AdvertsFor
  // O(active) — the ring tracks touched items instead of scanning the
  // catalog. (Demand bumps feed the ring on their own path.)
  if (options_.hints_per_frame > 0) {
    store_->set_observer([this](ItemId item) { TouchAdvert(item.value()); });
    // Fragments materialised before this manager existed (bootstrap images,
    // recovery replay) still get airtime.
    for (const auto& [item, frag] : store_->resident_fragments()) {
      (void)frag;
      TouchAdvert(item);
    }
    std::sort(advert_ring_.begin(), advert_ring_.end());  // resident order
                                                          // is unspecified
  }
}

PlacementManager::~PlacementManager() {
  *alive_ = false;
  if (options_.hints_per_frame > 0) store_->set_observer(nullptr);
}

void PlacementManager::TouchAdvert(uint32_t item) {
  if (options_.hints_per_frame == 0) return;
  if (advert_members_.insert(item).second) advert_ring_.push_back(item);
}

void PlacementManager::RetireAdvert(size_t pos) {
  advert_members_.erase(advert_ring_[pos]);
  advert_ring_[pos] = advert_ring_.back();
  advert_ring_.pop_back();
}

bool PlacementManager::DemandGone(uint32_t item, SimTime now) {
  auto it = demand_.find(item);
  if (it == demand_.end()) return true;
  DecayInPlace(it->second, now);
  if (it->second.level_q8 <= 0) {
    demand_.erase(it);
    return true;
  }
  return false;
}

std::vector<net::PlacementHint> PlacementManager::AdvertsFor(SiteId dst) {
  (void)dst;  // advertisements describe only the sender; same for every peer
  std::vector<net::PlacementHint> out;
  if (options_.hints_per_frame == 0 || advert_ring_.empty()) return out;
  SimTime now = rt_->Now();
  uint64_t stamp = static_cast<uint64_t>(now);
  // At most one lap over the ring as it stood on entry; each step either
  // emits/keeps (cursor advances) or retires a drained entry (ring shrinks).
  size_t budget = advert_ring_.size();
  while (budget-- > 0 && out.size() < options_.hints_per_frame &&
         !advert_ring_.empty()) {
    if (advert_cursor_ >= advert_ring_.size()) advert_cursor_ = 0;
    ItemId item(advert_ring_[advert_cursor_]);
    const core::Domain& domain = store_->catalog().domain(item);
    core::Value surplus = domain.MaxShippable(store_->value(item));
    if (surplus <= 0 && DemandGone(item.value(), now)) {
      // Nothing left to say about this item; drop it from the ring. A later
      // store write or demand bump re-adds it.
      RetireAdvert(advert_cursor_);
      continue;
    }
    core::Value demand = LocalDemand(item);
    if (surplus > 0 || demand > 0) {
      out.push_back(net::PlacementHint{item, surplus, demand, stamp});
    }
    ++advert_cursor_;
  }
  return out;
}

void PlacementManager::OnHints(SiteId src,
                               const std::vector<net::PlacementHint>& hints) {
  if (src == self_ || src.value() >= num_sites_) return;
  SimTime now = rt_->Now();
  for (const net::PlacementHint& h : hints) {
    if (h.item.value() >= store_->num_items()) continue;
    HintRow& row = cache_[h.item.value()];
    auto [it, inserted] = row.try_emplace(src.value());
    CachedHint& entry = it->second;
    if (inserted) {
      ++cache_entry_count_;
      cache_entries_peak_ = std::max(cache_entries_peak_, cache_entry_count_);
    } else if (h.stamp < entry.stamp) {
      continue;  // reordered frame: older view
    }
    entry.surplus = h.surplus;
    entry.demand = h.demand;
    entry.stamp = h.stamp;
    entry.seen_at = now;
    m_hint_observed_->Inc();
  }
}

std::vector<PlacementManager::Target> PlacementManager::RankTargets(
    ItemId item) {
  std::vector<Target> out;
  if (item.value() >= store_->num_items()) return out;
  SimTime now = rt_->Now();
  auto row = cache_.find(item.value());
  if (row != cache_.end()) {
    for (const auto& [site, h] : row->second) {
      if (!Fresh(h, now)) {
        m_hint_stale_->Inc();
        continue;
      }
      if (h.surplus <= 0) continue;
      out.push_back(Target{SiteId(site), h.surplus});
    }
  }
  std::sort(out.begin(), out.end(), [](const Target& a, const Target& b) {
    if (a.surplus != b.surplus) return a.surplus > b.surplus;
    return a.site.value() < b.site.value();
  });
  (out.empty() ? m_hint_miss_ : m_hint_hit_)->Inc();
  return out;
}

void PlacementManager::NoteShipped(SiteId src, ItemId item,
                                   core::Value amount) {
  if (src == self_ || src.value() >= num_sites_ ||
      item.value() >= store_->num_items()) {
    return;
  }
  auto row = cache_.find(item.value());
  if (row == cache_.end()) return;
  auto it = row->second.find(src.value());
  if (it == row->second.end()) return;  // never advertised; nothing to correct
  it->second.surplus = std::max<core::Value>(0, it->second.surplus - amount);
  it->second.seen_at = rt_->Now();  // a shipment is fresh direct evidence
}

void PlacementManager::NoteEmpty(SiteId src, ItemId item) {
  if (src == self_ || src.value() >= num_sites_ ||
      item.value() >= store_->num_items()) {
    return;
  }
  auto [it, inserted] = cache_[item.value()].try_emplace(src.value());
  if (inserted) {
    ++cache_entry_count_;
    cache_entries_peak_ = std::max(cache_entries_peak_, cache_entry_count_);
  }
  it->second.surplus = 0;
  it->second.seen_at = rt_->Now();
  m_hint_empty_->Inc();
}

void PlacementManager::DecayInPlace(Demand& d, SimTime now) const {
  if (d.level_q8 <= 0 || options_.demand_halflife_us <= 0) return;
  int64_t halvings = (now - d.updated_at) / options_.demand_halflife_us;
  if (halvings <= 0) return;
  d.level_q8 = halvings >= 62 ? 0 : d.level_q8 >> halvings;
  d.updated_at += halvings * options_.demand_halflife_us;
}

void PlacementManager::BumpDemand(ItemId item, core::Value amount) {
  if (amount <= 0 || item.value() >= store_->num_items()) return;
  Demand& d = demand_[item.value()];
  DecayInPlace(d, rt_->Now());
  d.level_q8 += amount << 8;
  if (d.level_q8 == amount << 8) d.updated_at = rt_->Now();
  TouchAdvert(item.value());  // demand alone makes an item worth advertising
}

void PlacementManager::NoteShortfall(ItemId item, core::Value amount) {
  BumpDemand(item, amount);
}

void PlacementManager::NoteTimeout(ItemId item, core::Value remaining) {
  // Double weight: a timeout means the gather failed outright, the strongest
  // evidence that value must move here proactively.
  BumpDemand(item, remaining * 2);
}

core::Value PlacementManager::LocalDemand(ItemId item) const {
  auto it = demand_.find(item.value());
  if (it == demand_.end()) return 0;
  Demand d = it->second;
  DecayInPlace(d, rt_->Now());
  return static_cast<core::Value>(d.level_q8 >> 8);
}

void PlacementManager::Start() {
  if (!options_.rebalance || options_.rebalance_interval_us <= 0) return;
  ArmTick();
}

void PlacementManager::ArmTick() {
  // Small per-site phase offset so the fleet's ticks interleave instead of
  // all landing on the same instants (deterministic: no RNG draw).
  SimTime delay = options_.rebalance_interval_us +
                  static_cast<SimTime>(self_.value()) * 997;
  rt_->Schedule(delay, [this, alive = alive_]() {
    if (!*alive) return;
    Tick();
    ArmTick();
  });
}

void PlacementManager::Tick() {
  if (!send_value_fn_ || cache_.empty()) return;
  SimTime now = rt_->Now();
  // A hint row untouched this long is dead weight: evict rather than let the
  // cache grow monotonically with every item ever hinted.
  SimTime evict_after = options_.hint_staleness_us *
                        static_cast<SimTime>(std::max<uint32_t>(
                            1, options_.cache_evict_staleness_windows));
  uint32_t pushes = 0;
  // One lap over the ACTIVE set — cost scales with hinted items, never with
  // catalog width.
  size_t limit = cache_.size();
  auto it = cache_.lower_bound(rebalance_cursor_);
  for (size_t scanned = 0;
       scanned < limit && pushes < options_.rebalance_max_pushes; ++scanned) {
    if (it == cache_.end()) it = cache_.begin();
    HintRow& row = it->second;
    for (auto h = row.begin(); h != row.end();) {
      if (now - h->second.seen_at > evict_after) {
        h = row.erase(h);
        --cache_entry_count_;
      } else {
        ++h;
      }
    }
    if (row.empty()) {
      it = cache_.erase(it);
      continue;
    }
    if (TryPush(ItemId(it->first), row)) ++pushes;
    ++it;
  }
  rebalance_cursor_ = it == cache_.end() ? 0 : it->first;
}

bool PlacementManager::TryPush(ItemId item, HintRow& row) {
  const core::Domain& domain = store_->catalog().domain(item);
  core::Value local = store_->value(item);
  core::Value shippable = domain.MaxShippable(local);
  core::Value own_demand = LocalDemand(item);
  // Never strip the fragment bare: keep the reserve slice and whatever our
  // own decayed demand suggests we are about to need.
  core::Value reserve =
      local > 0 ? local * options_.rebalance_reserve_permille / 1000 : 0;
  core::Value avail = shippable - std::max(reserve, own_demand);
  if (avail <= 0) return false;

  // Hottest fresh peer: largest unmet demand (advertised demand beyond what
  // the peer already holds), strictly hotter than we are. The row is ordered
  // by site id and the comparison strict, so the lowest site wins ties.
  SimTime now = rt_->Now();
  CachedHint* best = nullptr;
  SiteId best_site = SiteId::Invalid();
  core::Value best_need = 0;
  for (auto& [site, h] : row) {
    if (site == self_.value()) continue;
    if (!Fresh(h, now)) continue;
    if (h.demand < options_.rebalance_min_demand) continue;
    if (h.demand <= own_demand) continue;
    core::Value need = h.demand - h.surplus;
    if (need > best_need) {
      best = &h;
      best_site = SiteId(site);
      best_need = need;
    }
  }
  if (best == nullptr || best_need <= 0) return false;

  core::Value amount = std::min({avail, options_.rebalance_chunk, best_need});
  if (amount <= 0) return false;
  if (!send_value_fn_(best_site, item, amount).ok()) return false;
  m_rebalance_push_->Inc();
  m_rebalance_value_->Inc(static_cast<uint64_t>(amount));
  // Served: damp the cached demand so the next tick waits for the peer to
  // re-advertise instead of piling more pushes onto one stale reading.
  best->demand = std::max<core::Value>(0, best->demand - amount);
  return true;
}

}  // namespace dvp::placement
