#include "placement/placement.h"

#include <algorithm>

namespace dvp::placement {

PlacementManager::PlacementManager(SiteId self, uint32_t num_sites,
                                   sim::Kernel* kernel,
                                   core::ValueStore* store,
                                   obs::MetricsRegistry* metrics,
                                   PlacementOptions options)
    : self_(self),
      num_sites_(num_sites),
      kernel_(kernel),
      store_(store),
      options_(options),
      m_hint_observed_(obs::CounterIn(metrics, "placement.hint.observed")),
      m_hint_hit_(obs::CounterIn(metrics, "placement.hint.hit")),
      m_hint_miss_(obs::CounterIn(metrics, "placement.hint.miss")),
      m_hint_stale_(obs::CounterIn(metrics, "placement.hint.stale")),
      m_hint_empty_(obs::CounterIn(metrics, "placement.hint.empty")),
      m_rebalance_push_(obs::CounterIn(metrics, "placement.rebalance.push")),
      m_rebalance_value_(obs::CounterIn(metrics, "placement.rebalance.value")),
      cache_(num_sites, std::vector<CachedHint>(store->num_items())),
      demand_(store->num_items()) {}

PlacementManager::~PlacementManager() { *alive_ = false; }

std::vector<net::PlacementHint> PlacementManager::AdvertsFor(SiteId dst) {
  (void)dst;  // advertisements describe only the sender; same for every peer
  std::vector<net::PlacementHint> out;
  uint32_t n = store_->num_items();
  if (n == 0 || options_.hints_per_frame == 0) return out;
  uint64_t now = static_cast<uint64_t>(kernel_->Now());
  for (uint32_t scanned = 0;
       scanned < n && out.size() < options_.hints_per_frame; ++scanned) {
    ItemId item((advert_cursor_ + scanned) % n);
    const core::Domain& domain = store_->catalog().domain(item);
    core::Value surplus = domain.MaxShippable(store_->value(item));
    core::Value demand = LocalDemand(item);
    if (surplus <= 0 && demand <= 0) continue;
    out.push_back(net::PlacementHint{item, surplus, demand, now});
  }
  // Rotate so narrow frames still cover every item over a few packets.
  advert_cursor_ = (advert_cursor_ + std::max<uint32_t>(
                        1, static_cast<uint32_t>(out.size()))) % n;
  return out;
}

void PlacementManager::OnHints(SiteId src,
                               const std::vector<net::PlacementHint>& hints) {
  if (src == self_ || src.value() >= num_sites_) return;
  SimTime now = kernel_->Now();
  for (const net::PlacementHint& h : hints) {
    if (h.item.value() >= store_->num_items()) continue;
    CachedHint& entry = cache_[src.value()][h.item.value()];
    if (h.stamp < entry.stamp) continue;  // reordered frame: older view
    entry.surplus = h.surplus;
    entry.demand = h.demand;
    entry.stamp = h.stamp;
    entry.seen_at = now;
    m_hint_observed_->Inc();
  }
}

std::vector<PlacementManager::Target> PlacementManager::RankTargets(
    ItemId item) {
  std::vector<Target> out;
  if (item.value() >= store_->num_items()) return out;
  SimTime now = kernel_->Now();
  for (uint32_t s = 0; s < num_sites_; ++s) {
    if (s == self_.value()) continue;
    const CachedHint& h = cache_[s][item.value()];
    if (h.seen_at < 0) continue;
    if (!Fresh(h, now)) {
      m_hint_stale_->Inc();
      continue;
    }
    if (h.surplus <= 0) continue;
    out.push_back(Target{SiteId(s), h.surplus});
  }
  std::sort(out.begin(), out.end(), [](const Target& a, const Target& b) {
    if (a.surplus != b.surplus) return a.surplus > b.surplus;
    return a.site.value() < b.site.value();
  });
  (out.empty() ? m_hint_miss_ : m_hint_hit_)->Inc();
  return out;
}

void PlacementManager::NoteShipped(SiteId src, ItemId item,
                                   core::Value amount) {
  if (src == self_ || src.value() >= num_sites_ ||
      item.value() >= store_->num_items()) {
    return;
  }
  CachedHint& entry = cache_[src.value()][item.value()];
  if (entry.seen_at < 0) return;  // never advertised; nothing to correct
  entry.surplus = std::max<core::Value>(0, entry.surplus - amount);
  entry.seen_at = kernel_->Now();  // a shipment is fresh direct evidence
}

void PlacementManager::NoteEmpty(SiteId src, ItemId item) {
  if (src == self_ || src.value() >= num_sites_ ||
      item.value() >= store_->num_items()) {
    return;
  }
  CachedHint& entry = cache_[src.value()][item.value()];
  entry.surplus = 0;
  entry.seen_at = kernel_->Now();
  m_hint_empty_->Inc();
}

void PlacementManager::DecayInPlace(Demand& d, SimTime now) const {
  if (d.level_q8 <= 0 || options_.demand_halflife_us <= 0) return;
  int64_t halvings = (now - d.updated_at) / options_.demand_halflife_us;
  if (halvings <= 0) return;
  d.level_q8 = halvings >= 62 ? 0 : d.level_q8 >> halvings;
  d.updated_at += halvings * options_.demand_halflife_us;
}

void PlacementManager::BumpDemand(ItemId item, core::Value amount) {
  if (amount <= 0 || item.value() >= store_->num_items()) return;
  Demand& d = demand_[item.value()];
  DecayInPlace(d, kernel_->Now());
  d.level_q8 += amount << 8;
  if (d.level_q8 == amount << 8) d.updated_at = kernel_->Now();
}

void PlacementManager::NoteShortfall(ItemId item, core::Value amount) {
  BumpDemand(item, amount);
}

void PlacementManager::NoteTimeout(ItemId item, core::Value remaining) {
  // Double weight: a timeout means the gather failed outright, the strongest
  // evidence that value must move here proactively.
  BumpDemand(item, remaining * 2);
}

core::Value PlacementManager::LocalDemand(ItemId item) const {
  if (item.value() >= store_->num_items()) return 0;
  Demand d = demand_[item.value()];
  DecayInPlace(d, kernel_->Now());
  return static_cast<core::Value>(d.level_q8 >> 8);
}

void PlacementManager::Start() {
  if (!options_.rebalance || options_.rebalance_interval_us <= 0) return;
  ArmTick();
}

void PlacementManager::ArmTick() {
  // Small per-site phase offset so the fleet's ticks interleave instead of
  // all landing on the same instants (deterministic: no RNG draw).
  SimTime delay = options_.rebalance_interval_us +
                  static_cast<SimTime>(self_.value()) * 997;
  kernel_->Schedule(delay, [this, alive = alive_]() {
    if (!*alive) return;
    Tick();
    ArmTick();
  });
}

void PlacementManager::Tick() {
  if (!send_value_fn_) return;
  uint32_t n = store_->num_items();
  if (n == 0) return;
  uint32_t pushes = 0;
  uint32_t scanned = 0;
  for (; scanned < n && pushes < options_.rebalance_max_pushes; ++scanned) {
    ItemId item((rebalance_cursor_ + scanned) % n);
    if (TryPush(item)) ++pushes;
  }
  rebalance_cursor_ = (rebalance_cursor_ + scanned) % n;
}

bool PlacementManager::TryPush(ItemId item) {
  const core::Domain& domain = store_->catalog().domain(item);
  core::Value local = store_->value(item);
  core::Value shippable = domain.MaxShippable(local);
  core::Value own_demand = LocalDemand(item);
  // Never strip the fragment bare: keep the reserve slice and whatever our
  // own decayed demand suggests we are about to need.
  core::Value reserve =
      local > 0 ? local * options_.rebalance_reserve_permille / 1000 : 0;
  core::Value avail = shippable - std::max(reserve, own_demand);
  if (avail <= 0) return false;

  // Hottest fresh peer: largest unmet demand (advertised demand beyond what
  // the peer already holds), strictly hotter than we are.
  SimTime now = kernel_->Now();
  SiteId best = SiteId::Invalid();
  core::Value best_need = 0;
  core::Value best_demand = 0;
  for (uint32_t s = 0; s < num_sites_; ++s) {
    if (s == self_.value()) continue;
    const CachedHint& h = cache_[s][item.value()];
    if (!Fresh(h, now)) continue;
    if (h.demand < options_.rebalance_min_demand) continue;
    if (h.demand <= own_demand) continue;
    core::Value need = h.demand - h.surplus;
    if (need > best_need) {
      best = SiteId(s);
      best_need = need;
      best_demand = h.demand;
    }
  }
  if (!best.valid() || best_need <= 0) return false;

  core::Value amount =
      std::min({avail, options_.rebalance_chunk, best_need});
  if (amount <= 0) return false;
  if (!send_value_fn_(best, item, amount).ok()) return false;
  m_rebalance_push_->Inc();
  m_rebalance_value_->Inc(static_cast<uint64_t>(amount));
  // Served: damp the cached demand so the next tick waits for the peer to
  // re-advertise instead of piling more pushes onto one stale reading.
  CachedHint& entry = cache_[best.value()][item.value()];
  entry.demand = std::max<core::Value>(0, best_demand - amount);
  return true;
}

}  // namespace dvp::placement
