// Demand-aware fragment placement: the layer that turns the paper's Rds
// machinery (§6) into a policy that keeps value where transactions need it.
//
// Three cooperating pieces, all advisory — correctness never depends on any
// of them (a wrong hint costs extra messages or a timeout abort, exactly what
// the blind protocol already risks; every value move is an ordinary Vm):
//
//  * Surplus hints. Each site piggybacks bounded, freshness-stamped per-item
//    advertisements of its own shippable surplus and local demand pressure on
//    packets it already sends (Transport::Options::max_frame_hints — the same
//    free-rider trick as the cumulative piggyback ack). Peers fold them into
//    a SurplusMap cache.
//  * Surplus-directed gather. TxnManager::SendRequests consults
//    RankTargets(): fresh advertised surplus ranks the targets and the
//    shortfall is split proportionally to what each can actually ship,
//    falling back to randomized fan-out when hints are stale or absent.
//    NACK/empty outcomes and observed shipments feed back into the cache so
//    it self-corrects faster than the staleness horizon.
//  * Background rebalancer. An EWMA of local shortfalls and timeout aborts
//    tracks per-item demand; surplus sites issue paced SendValue pushes
//    toward advertised demand hot spots so subsequent transactions there hit
//    the write-only/locally-satisfiable fast path with zero redistribution
//    messages.
//
// All state is SPARSE and sized by activity, not by catalog width. The
// advert side keeps a ring of items this site has actually touched (fed by a
// ValueStore observer and by demand bumps) so building a frame's hints never
// scans num_items; the cache side keys by hinted item then by site, so a
// million-item catalog with a few thousand hot items costs a few thousand
// entries — not sites×items — and the rebalance tick walks only items some
// peer has advertised.
//
// Everything is integer arithmetic on kernel time — no RNG streams, no
// floating point — so chaos runs stay a pure function of seed and schedule.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "dvpcore/value_store.h"
#include "net/message.h"
#include "obs/metrics.h"
#include "runtime/runtime.h"

namespace dvp::placement {

struct PlacementOptions {
  /// Advertisements piggybacked per outgoing packet; 0 keeps the placement
  /// layer entirely off the wire (seed behavior). The Site mirrors this into
  /// Transport::Options::max_frame_hints.
  uint32_t hints_per_frame = 0;
  /// A cached hint older than this never directs a gather — the requester
  /// falls back to blind fan-out rather than trust a stale view.
  SimTime hint_staleness_us = 400'000;
  /// Background rebalancer: paced Rds pushes from surplus toward demand.
  bool rebalance = false;
  SimTime rebalance_interval_us = 250'000;
  /// Largest value moved by one push; pacing bounds how fast placement can
  /// churn (a misprediction is cheap to undo).
  core::Value rebalance_chunk = 16;
  /// Pushes attempted per tick across all items.
  uint32_t rebalance_max_pushes = 2;
  /// Fraction of the local fragment (permille) always kept home, so a site
  /// never strips itself bare chasing someone else's demand spike.
  uint32_t rebalance_reserve_permille = 250;
  /// A peer only counts as a hot spot above this decayed demand level.
  core::Value rebalance_min_demand = 2;
  /// Demand EWMA halving period (integer halvings of elapsed/halflife).
  SimTime demand_halflife_us = 1'000'000;
  /// A cached hint untouched for this many staleness windows is evicted by
  /// the rebalance tick; bounds cache memory to recently-hinted items.
  uint32_t cache_evict_staleness_windows = 8;
};

/// Per-site placement state: the SurplusMap cache of peers' advertisements,
/// the local demand EWMA, and the rebalance tick. Volatile — a crash loses
/// it and the rebuilt site re-learns from the hint stream.
class PlacementManager {
 public:
  /// One ranked gather target: a peer with fresh advertised surplus.
  struct Target {
    SiteId site;
    core::Value surplus = 0;
  };

  PlacementManager(SiteId self, uint32_t num_sites, runtime::Runtime* rt,
                   core::ValueStore* store, obs::MetricsRegistry* metrics,
                   PlacementOptions options);
  ~PlacementManager();

  // ---- Advertiser side ----------------------------------------------------

  /// Up to hints_per_frame advertisements for a packet to `dst`: own
  /// shippable surplus + decayed demand per item, round-robin over the ring
  /// of touched items so every active item gets airtime even on narrow
  /// frames. Called by the transport at send time, so even retransmissions
  /// carry the freshest view. Cost is O(hints_per_frame + entries retired),
  /// never O(num_items).
  std::vector<net::PlacementHint> AdvertsFor(SiteId dst);

  // ---- Cache side ---------------------------------------------------------

  /// Folds a frame's piggybacked hints into the cache; a hint whose stamp is
  /// older than the cached one is dropped (reordered frames must not roll the
  /// cache backwards).
  void OnHints(SiteId src, const std::vector<net::PlacementHint>& hints);

  /// Peers with fresh positive advertised surplus for `item`, largest first
  /// (ties broken by site id for determinism). Empty = no usable hints; the
  /// caller falls back to blind fan-out.
  std::vector<Target> RankTargets(ItemId item);

  // ---- Feedback -----------------------------------------------------------

  /// A peer shipped `amount` of `item` to us: its advertised surplus shrank
  /// by at least that much, and the shipment is fresh direct evidence.
  void NoteShipped(SiteId src, ItemId item, core::Value amount);
  /// A peer answered a directed request with "nothing to ship".
  void NoteEmpty(SiteId src, ItemId item);
  /// A local transaction came up `amount` short on `item` (bumps demand).
  void NoteShortfall(ItemId item, core::Value amount);
  /// A local transaction timed out still `remaining` short — weighted double:
  /// unresolved demand is the signal the rebalancer most needs to see.
  void NoteTimeout(ItemId item, core::Value remaining);

  /// Decayed local-demand EWMA for `item` (value units).
  core::Value LocalDemand(ItemId item) const;

  // ---- Rebalancer ---------------------------------------------------------

  /// The Rds push primitive (TxnManager::SendValue); wired by the Site after
  /// the transaction manager exists.
  void set_send_value_fn(
      std::function<Status(SiteId dst, ItemId item, core::Value amount)> fn) {
    send_value_fn_ = std::move(fn);
  }

  /// Arms the rebalance tick when options().rebalance is set.
  void Start();

  const PlacementOptions& options() const { return options_; }

  // ---- Introspection (memory proxies for the scale bench) ------------------

  /// Items currently in the advert ring (touched, not yet retired).
  size_t advert_ring_size() const { return advert_ring_.size(); }
  /// Hinted items / total (item, site) hint entries currently cached.
  size_t cache_items() const { return cache_.size(); }
  size_t cache_entries() const { return cache_entry_count_; }
  /// High-water mark of cache_entries() — the O(active) claim, measurable.
  size_t cache_entries_peak() const { return cache_entries_peak_; }
  /// Items with live (undecayed) local demand state.
  size_t demand_entries() const { return demand_.size(); }

 private:
  struct CachedHint {
    core::Value surplus = 0;
    core::Value demand = 0;
    uint64_t stamp = 0;    ///< sender send time; monotone per (src, item)
    SimTime seen_at = -1;  ///< local receive time; -1 = never heard
  };
  /// Demand EWMA in Q8 fixed point, decayed lazily by whole halflives.
  struct Demand {
    int64_t level_q8 = 0;
    SimTime updated_at = 0;
  };
  /// Hints about one item, keyed by advertising site. Ordered so ranking and
  /// push-target scans are deterministic without a sort over sites.
  using HintRow = std::map<uint32_t, CachedHint>;

  bool Fresh(const CachedHint& h, SimTime now) const {
    return h.seen_at >= 0 && now - h.seen_at <= options_.hint_staleness_us;
  }
  void DecayInPlace(Demand& d, SimTime now) const;
  void BumpDemand(ItemId item, core::Value amount);
  /// Ensures `item` is in the advert ring (no-op when hints are off).
  void TouchAdvert(uint32_t item);
  /// Swap-erases ring slot `pos`; the cursor then points at the moved-in
  /// tail element, so callers keep scanning without skipping it.
  void RetireAdvert(size_t pos);
  /// Decays the item's demand entry; erases and returns true when no Q8 mass
  /// is left (the item can leave the advert ring).
  bool DemandGone(uint32_t item, SimTime now);
  void ArmTick();
  void Tick();
  /// One rebalance attempt for `item`; true if a push went out.
  bool TryPush(ItemId item, HintRow& row);

  SiteId self_;
  uint32_t num_sites_;
  runtime::Runtime* rt_;
  core::ValueStore* store_;
  PlacementOptions options_;

  obs::Counter* m_hint_observed_;
  obs::Counter* m_hint_hit_;
  obs::Counter* m_hint_miss_;
  obs::Counter* m_hint_stale_;
  obs::Counter* m_hint_empty_;
  obs::Counter* m_rebalance_push_;
  obs::Counter* m_rebalance_value_;

  /// Peer advertisements, cache_[item][site]; only items some peer has
  /// actually hinted (or NACKed) exist. Ordered by item so the rebalance
  /// cursor can resume deterministically across inserts and evictions.
  std::map<uint32_t, HintRow> cache_;
  size_t cache_entry_count_ = 0;
  size_t cache_entries_peak_ = 0;
  /// Local demand EWMAs, only for items with undecayed mass.
  std::map<uint32_t, Demand> demand_;

  /// Items worth advertising: everything this site's store has materialised
  /// plus everything with local demand. Entries whose surplus and demand
  /// have both drained are retired lazily as the cursor passes them.
  std::vector<uint32_t> advert_ring_;
  std::unordered_set<uint32_t> advert_members_;
  size_t advert_cursor_ = 0;
  /// Item id (not index) the next rebalance tick resumes from.
  uint32_t rebalance_cursor_ = 0;

  std::function<Status(SiteId, ItemId, core::Value)> send_value_fn_;
  /// Tick lambdas capture this instead of trusting `this` to outlive them
  /// (the Site destroys its PlacementManager on crash while the kernel queue
  /// may still hold the tick event).
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace dvp::placement
