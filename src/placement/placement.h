// Demand-aware fragment placement: the layer that turns the paper's Rds
// machinery (§6) into a policy that keeps value where transactions need it.
//
// Three cooperating pieces, all advisory — correctness never depends on any
// of them (a wrong hint costs extra messages or a timeout abort, exactly what
// the blind protocol already risks; every value move is an ordinary Vm):
//
//  * Surplus hints. Each site piggybacks bounded, freshness-stamped per-item
//    advertisements of its own shippable surplus and local demand pressure on
//    packets it already sends (Transport::Options::max_frame_hints — the same
//    free-rider trick as the cumulative piggyback ack). Peers fold them into
//    a SurplusMap cache.
//  * Surplus-directed gather. TxnManager::SendRequests consults
//    RankTargets(): fresh advertised surplus ranks the targets and the
//    shortfall is split proportionally to what each can actually ship,
//    falling back to randomized fan-out when hints are stale or absent.
//    NACK/empty outcomes and observed shipments feed back into the cache so
//    it self-corrects faster than the staleness horizon.
//  * Background rebalancer. An EWMA of local shortfalls and timeout aborts
//    tracks per-item demand; surplus sites issue paced SendValue pushes
//    toward advertised demand hot spots so subsequent transactions there hit
//    the write-only/locally-satisfiable fast path with zero redistribution
//    messages.
//
// Everything is integer arithmetic on kernel time — no RNG streams, no
// floating point — so chaos runs stay a pure function of seed and schedule.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "dvpcore/value_store.h"
#include "net/message.h"
#include "obs/metrics.h"
#include "sim/kernel.h"

namespace dvp::placement {

struct PlacementOptions {
  /// Advertisements piggybacked per outgoing packet; 0 keeps the placement
  /// layer entirely off the wire (seed behavior). The Site mirrors this into
  /// Transport::Options::max_frame_hints.
  uint32_t hints_per_frame = 0;
  /// A cached hint older than this never directs a gather — the requester
  /// falls back to blind fan-out rather than trust a stale view.
  SimTime hint_staleness_us = 400'000;
  /// Background rebalancer: paced Rds pushes from surplus toward demand.
  bool rebalance = false;
  SimTime rebalance_interval_us = 250'000;
  /// Largest value moved by one push; pacing bounds how fast placement can
  /// churn (a misprediction is cheap to undo).
  core::Value rebalance_chunk = 16;
  /// Pushes attempted per tick across all items.
  uint32_t rebalance_max_pushes = 2;
  /// Fraction of the local fragment (permille) always kept home, so a site
  /// never strips itself bare chasing someone else's demand spike.
  uint32_t rebalance_reserve_permille = 250;
  /// A peer only counts as a hot spot above this decayed demand level.
  core::Value rebalance_min_demand = 2;
  /// Demand EWMA halving period (integer halvings of elapsed/halflife).
  SimTime demand_halflife_us = 1'000'000;
};

/// Per-site placement state: the SurplusMap cache of peers' advertisements,
/// the local demand EWMA, and the rebalance tick. Volatile — a crash loses
/// it and the rebuilt site re-learns from the hint stream.
class PlacementManager {
 public:
  /// One ranked gather target: a peer with fresh advertised surplus.
  struct Target {
    SiteId site;
    core::Value surplus = 0;
  };

  PlacementManager(SiteId self, uint32_t num_sites, sim::Kernel* kernel,
                   core::ValueStore* store, obs::MetricsRegistry* metrics,
                   PlacementOptions options);
  ~PlacementManager();

  // ---- Advertiser side ----------------------------------------------------

  /// Up to hints_per_frame advertisements for a packet to `dst`: own
  /// shippable surplus + decayed demand per item, round-robin over items so
  /// every item gets airtime even on narrow frames. Called by the transport
  /// at send time, so even retransmissions carry the freshest view.
  std::vector<net::PlacementHint> AdvertsFor(SiteId dst);

  // ---- Cache side ---------------------------------------------------------

  /// Folds a frame's piggybacked hints into the cache; a hint whose stamp is
  /// older than the cached one is dropped (reordered frames must not roll the
  /// cache backwards).
  void OnHints(SiteId src, const std::vector<net::PlacementHint>& hints);

  /// Peers with fresh positive advertised surplus for `item`, largest first
  /// (ties broken by site id for determinism). Empty = no usable hints; the
  /// caller falls back to blind fan-out.
  std::vector<Target> RankTargets(ItemId item);

  // ---- Feedback -----------------------------------------------------------

  /// A peer shipped `amount` of `item` to us: its advertised surplus shrank
  /// by at least that much, and the shipment is fresh direct evidence.
  void NoteShipped(SiteId src, ItemId item, core::Value amount);
  /// A peer answered a directed request with "nothing to ship".
  void NoteEmpty(SiteId src, ItemId item);
  /// A local transaction came up `amount` short on `item` (bumps demand).
  void NoteShortfall(ItemId item, core::Value amount);
  /// A local transaction timed out still `remaining` short — weighted double:
  /// unresolved demand is the signal the rebalancer most needs to see.
  void NoteTimeout(ItemId item, core::Value remaining);

  /// Decayed local-demand EWMA for `item` (value units).
  core::Value LocalDemand(ItemId item) const;

  // ---- Rebalancer ---------------------------------------------------------

  /// The Rds push primitive (TxnManager::SendValue); wired by the Site after
  /// the transaction manager exists.
  void set_send_value_fn(
      std::function<Status(SiteId dst, ItemId item, core::Value amount)> fn) {
    send_value_fn_ = std::move(fn);
  }

  /// Arms the rebalance tick when options().rebalance is set.
  void Start();

  const PlacementOptions& options() const { return options_; }

 private:
  struct CachedHint {
    core::Value surplus = 0;
    core::Value demand = 0;
    uint64_t stamp = 0;    ///< sender send time; monotone per (src, item)
    SimTime seen_at = -1;  ///< local receive time; -1 = never heard
  };
  /// Demand EWMA in Q8 fixed point, decayed lazily by whole halflives.
  struct Demand {
    int64_t level_q8 = 0;
    SimTime updated_at = 0;
  };

  bool Fresh(const CachedHint& h, SimTime now) const {
    return h.seen_at >= 0 && now - h.seen_at <= options_.hint_staleness_us;
  }
  void DecayInPlace(Demand& d, SimTime now) const;
  void BumpDemand(ItemId item, core::Value amount);
  void ArmTick();
  void Tick();
  /// One rebalance attempt for `item`; true if a push went out.
  bool TryPush(ItemId item);

  SiteId self_;
  uint32_t num_sites_;
  sim::Kernel* kernel_;
  core::ValueStore* store_;
  PlacementOptions options_;

  obs::Counter* m_hint_observed_;
  obs::Counter* m_hint_hit_;
  obs::Counter* m_hint_miss_;
  obs::Counter* m_hint_stale_;
  obs::Counter* m_hint_empty_;
  obs::Counter* m_rebalance_push_;
  obs::Counter* m_rebalance_value_;

  /// cache_[src][item]; the self row stays empty.
  std::vector<std::vector<CachedHint>> cache_;
  std::vector<Demand> demand_;
  uint32_t advert_cursor_ = 0;
  uint32_t rebalance_cursor_ = 0;

  std::function<Status(SiteId, ItemId, core::Value)> send_value_fn_;
  /// Tick lambdas capture this instead of trusting `this` to outlive them
  /// (the Site destroys its PlacementManager on crash while the kernel queue
  /// may still hold the tick event).
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace dvp::placement
