// Partitionable operators (§4.1): f is partitionable for (Γ, Π) when its
// *effective* application to any one fragment of Π⁻¹(d) changes the item's
// value exactly as applying f to d itself would — so it can run against
// whatever fragment is locally accessible, commutes with other partitionable
// operators, and never needs the rest of the multiset.
//
// Application is tri-state:
//   * kApplied      — effective: fragment updated, item value changed by f.
//   * kInsufficient — the local fragment cannot absorb the operator (e.g.
//                     decrement would drive it below the domain bound); the
//                     caller may redistribute (`shortfall` says how much more
//                     value it must gather) and retry.
//   * kIneffective  — a no-op by the operator's own semantics.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "dvpcore/domain.h"

namespace dvp::core {

/// Result of attempting to apply an operator to one fragment.
struct ApplyOutcome {
  enum class Kind { kApplied, kInsufficient, kIneffective };
  Kind kind = Kind::kIneffective;
  /// New fragment value (valid when kApplied).
  Value new_value = 0;
  /// Change to the item's total value (valid when kApplied).
  Value delta = 0;
  /// Minimum extra value the fragment needs before the operator could apply
  /// (valid when kInsufficient).
  Value shortfall = 0;

  static ApplyOutcome Applied(Value new_value, Value delta) {
    return {Kind::kApplied, new_value, delta, 0};
  }
  static ApplyOutcome Insufficient(Value shortfall) {
    return {Kind::kInsufficient, 0, 0, shortfall};
  }
  static ApplyOutcome Ineffective() { return {}; }

  bool applied() const { return kind == Kind::kApplied; }
  bool insufficient() const { return kind == Kind::kInsufficient; }
};

/// A partitionable operator over a domain.
class PartitionableOp {
 public:
  virtual ~PartitionableOp() = default;

  virtual std::string name() const = 0;

  /// Attempts effective application to a fragment currently holding
  /// `fragment` under `domain`.
  virtual ApplyOutcome Apply(const Domain& domain, Value fragment) const = 0;

  /// The operator applied directly to the whole item value — the reference
  /// semantics used by the serializability checker (g(Π(b)) side of the
  /// §4.1 identity). Returns the new total, or the old one when the operator
  /// would be ineffective at that total.
  virtual Value ApplyToTotal(Value total) const = 0;

  /// Signed change to the item value when the operator applies effectively.
  virtual Value delta() const = 0;
};

/// "Increment the argument by m" (m > 0). Always effective.
class IncrementOp final : public PartitionableOp {
 public:
  explicit IncrementOp(Value amount) : amount_(amount) {}
  std::string name() const override {
    return "incr(" + std::to_string(amount_) + ")";
  }
  ApplyOutcome Apply(const Domain& domain, Value fragment) const override;
  Value ApplyToTotal(Value total) const override { return total + amount_; }
  Value delta() const override { return amount_; }
  Value amount() const { return amount_; }

 private:
  Value amount_;
};

/// "Decrement the argument by m if the result does not fall below the domain
/// bound" (m > 0) — the operator whose bounded form motivates effectiveness
/// in §4.1. When the fragment alone is too small the outcome is
/// kInsufficient with the shortfall, triggering redistribution.
class BoundedDecrementOp final : public PartitionableOp {
 public:
  explicit BoundedDecrementOp(Value amount) : amount_(amount) {}
  std::string name() const override {
    return "decr(" + std::to_string(amount_) + ")";
  }
  ApplyOutcome Apply(const Domain& domain, Value fragment) const override;
  Value ApplyToTotal(Value total) const override {
    return total >= amount_ ? total - amount_ : total;
  }
  Value delta() const override { return -amount_; }
  Value amount() const { return amount_; }

 private:
  Value amount_;
};

std::unique_ptr<PartitionableOp> MakeIncrement(Value amount);
std::unique_ptr<PartitionableOp> MakeDecrement(Value amount);

}  // namespace dvp::core
