#include "dvpcore/value_store.h"

namespace dvp::core {

// Returned (by const ref) for out-of-catalog lookups in release builds; a
// zero fragment with a zero timestamp is inert for every caller.
const Fragment ValueStore::kOutOfCatalog{};

}  // namespace dvp::core
