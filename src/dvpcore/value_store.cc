#include "dvpcore/value_store.h"

namespace dvp::core {

ValueStore::ValueStore(const Catalog* catalog) : catalog_(catalog) {
  fragments_.resize(catalog->num_items());
  for (uint32_t i = 0; i < fragments_.size(); ++i) {
    fragments_[i].value = catalog->domain(ItemId(i)).Identity();
    fragments_[i].ts = Timestamp::Zero();
  }
}

void ValueStore::Install(ItemId item, Value value, Timestamp ts) {
  fragments_[item.value()] = Fragment{value, ts};
}

}  // namespace dvp::core
