// The Data-value Partitioning abstraction of §4.1.
//
// A data item d is drawn from a domain Γ and stored only as a multiset
// b = Π⁻¹(d) of fragments scattered across sites (plus any in-flight Vm).
// Π : Γ⁺ → Γ reassembles the value. The *partitionable* property — applying
// Π group-wise then again over the group results leaves the value unchanged
// — is what lets a transaction operate on whatever fragments it can reach.
//
// All the paper's motivating domains (seats, inventory units, money) are
// counted quantities under summation; `Value` is therefore int64_t and the
// Domain interface chiefly fixes Π, the identity element, and which fragment
// values are legal (seats cannot be negative; an overdraft gauge can).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

#include "common/status.h"

namespace dvp::core {

/// The scalar carrier for Γ. Counts are unit-less; money is in cents.
using Value = int64_t;

/// A data-value partitioning Π together with the domain's fragment rules.
class Domain {
 public:
  virtual ~Domain() = default;

  virtual std::string_view name() const = 0;

  /// Π over a multiset of fragment values.
  virtual Value Pi(std::span<const Value> multiset) const = 0;

  /// The identity fragment e: Π({x, e}) = x. A site holding no share of an
  /// item conceptually holds e.
  virtual Value Identity() const = 0;

  /// True iff `v` is a legal fragment value for this domain.
  virtual bool ValidFragment(Value v) const = 0;

  /// Largest amount that can be split out of a fragment currently holding
  /// `fragment` while leaving a legal remainder (used when honoring
  /// redistribution requests).
  virtual Value MaxShippable(Value fragment) const = 0;
};

/// Γ = non-negative counts under summation: airline seats, inventory units.
/// Fragments must stay >= 0, so "decrement by m if the result does not fall
/// below 0" is the canonical bounded operator.
class CountDomain final : public Domain {
 public:
  std::string_view name() const override { return "count"; }
  Value Pi(std::span<const Value> multiset) const override;
  Value Identity() const override { return 0; }
  bool ValidFragment(Value v) const override { return v >= 0; }
  Value MaxShippable(Value fragment) const override {
    return fragment > 0 ? fragment : 0;
  }

  static const CountDomain& Instance();
};

/// Γ = money amounts in cents under summation. Fragments must stay
/// non-negative — each fragment "is itself some amount of money" (§3).
class MoneyDomain final : public Domain {
 public:
  std::string_view name() const override { return "money"; }
  Value Pi(std::span<const Value> multiset) const override;
  Value Identity() const override { return 0; }
  bool ValidFragment(Value v) const override { return v >= 0; }
  Value MaxShippable(Value fragment) const override {
    return fragment > 0 ? fragment : 0;
  }

  static const MoneyDomain& Instance();
};

/// Γ = integers under summation with no per-fragment bound; decrements are
/// always effective. Models gauges/net-position aggregates and demonstrates
/// the "more data types" extension flagged as future work in §9.
class GaugeDomain final : public Domain {
 public:
  std::string_view name() const override { return "gauge"; }
  Value Pi(std::span<const Value> multiset) const override;
  Value Identity() const override { return 0; }
  bool ValidFragment(Value) const override { return true; }
  Value MaxShippable(Value fragment) const override { return fragment; }

  static const GaugeDomain& Instance();
};

}  // namespace dvp::core
