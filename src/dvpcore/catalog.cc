#include "dvpcore/catalog.h"

namespace dvp::core {

ItemId Catalog::AddItem(std::string name, const Domain& domain,
                        Value initial_total) {
  items_.push_back(ItemInfo{std::move(name), &domain, initial_total});
  return ItemId(static_cast<uint32_t>(items_.size() - 1));
}

StatusOr<ItemId> Catalog::Find(std::string_view name) const {
  for (uint32_t i = 0; i < items_.size(); ++i) {
    if (items_[i].name == name) return ItemId(i);
  }
  return Status::NotFound("no item named " + std::string(name));
}

std::vector<ItemId> Catalog::AllItems() const {
  std::vector<ItemId> out;
  out.reserve(items_.size());
  for (uint32_t i = 0; i < items_.size(); ++i) out.push_back(ItemId(i));
  return out;
}

}  // namespace dvp::core
