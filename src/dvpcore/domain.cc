#include "dvpcore/domain.h"

namespace dvp::core {

namespace {
Value Sum(std::span<const Value> multiset) {
  Value total = 0;
  for (Value v : multiset) total += v;
  return total;
}
}  // namespace

Value CountDomain::Pi(std::span<const Value> multiset) const {
  return Sum(multiset);
}
const CountDomain& CountDomain::Instance() {
  static const CountDomain kInstance;
  return kInstance;
}

Value MoneyDomain::Pi(std::span<const Value> multiset) const {
  return Sum(multiset);
}
const MoneyDomain& MoneyDomain::Instance() {
  static const MoneyDomain kInstance;
  return kInstance;
}

Value GaugeDomain::Pi(std::span<const Value> multiset) const {
  return Sum(multiset);
}
const GaugeDomain& GaugeDomain::Instance() {
  static const GaugeDomain kInstance;
  return kInstance;
}

}  // namespace dvp::core
