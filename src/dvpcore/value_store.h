// The volatile, site-local fragment store: one Fragment per catalog item
// holding this site's share d_i and its lock timestamp TS(d_i). It is a
// cache over the stable database image; a crash destroys it and recovery
// rebuilds it from the image plus the log suffix (§7).
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "dvpcore/catalog.h"
#include "dvpcore/domain.h"

namespace dvp::core {

/// One site's share of one item.
struct Fragment {
  Value value = 0;
  /// Timestamp of the last transaction to have locked this fragment (§6.1).
  Timestamp ts = Timestamp::Zero();
};

class ValueStore {
 public:
  /// Creates fragments (identity-valued) for every catalog item.
  explicit ValueStore(const Catalog* catalog);

  const Catalog& catalog() const { return *catalog_; }

  /// Installs an initial / recovered fragment state.
  void Install(ItemId item, Value value, Timestamp ts);

  const Fragment& fragment(ItemId item) const {
    return fragments_[item.value()];
  }
  Value value(ItemId item) const { return fragments_[item.value()].value; }
  Timestamp ts(ItemId item) const { return fragments_[item.value()].ts; }

  /// Overwrites the fragment value (caller has verified domain validity and
  /// logged the change).
  void SetValue(ItemId item, Value value) {
    fragments_[item.value()].value = value;
  }
  void SetTs(ItemId item, Timestamp ts) { fragments_[item.value()].ts = ts; }

  uint32_t num_items() const {
    return static_cast<uint32_t>(fragments_.size());
  }

  /// Sum of all local fragment values for one item's domain-mates — not
  /// meaningful across items; helper for audits that iterate items.
  const std::vector<Fragment>& fragments() const { return fragments_; }

 private:
  const Catalog* catalog_;
  std::vector<Fragment> fragments_;
};

}  // namespace dvp::core
