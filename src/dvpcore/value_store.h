// The volatile, site-local fragment store: one Fragment per catalog item
// holding this site's share d_i and its lock timestamp TS(d_i). It is a
// cache over the stable database image; a crash destroys it and recovery
// rebuilds it from the image plus the log suffix (§7).
//
// Storage is SPARSE: a fragment is materialised the first time it is
// installed or written, and an absent fragment reads as the domain identity
// (exactly the value the dense store used to pre-fill). At the scale the
// paper's performance question demands (10⁶ items × 100+ sites) a dense
// per-site vector is ~10⁸ fragments across the cluster; each site actually
// holds value for only its slice of the catalog.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/status.h"
#include "common/types.h"
#include "dvpcore/catalog.h"
#include "dvpcore/domain.h"

namespace dvp::core {

/// One site's share of one item.
struct Fragment {
  Value value = 0;
  /// Timestamp of the last transaction to have locked this fragment (§6.1).
  Timestamp ts = Timestamp::Zero();
};

class ValueStore {
 public:
  /// Binds the catalog; fragments materialise lazily (absent = identity).
  explicit ValueStore(const Catalog* catalog) : catalog_(catalog) {}

  const Catalog& catalog() const { return *catalog_; }

  /// Installs an initial / recovered fragment state.
  void Install(ItemId item, Value value, Timestamp ts) {
    if (!InCatalog(item)) return;
    fragments_[item.value()] = Fragment{value, ts};
    if (observer_) observer_(item);
  }

  /// Fragment view; an item never written here reads as the domain identity.
  /// Out-of-catalog ids are a caller bug: debug builds assert, release
  /// builds return an inert zero fragment instead of indexing out of bounds
  /// (the old dense store did `fragments_[item.value()]` unchecked — silent
  /// UB exactly in the builds where the assert was gone).
  const Fragment& fragment(ItemId item) const {
    if (!InCatalog(item)) return kOutOfCatalog;
    auto it = fragments_.find(item.value());
    if (it != fragments_.end()) return it->second;
    return Materialize(item);
  }
  Value value(ItemId item) const { return fragment(item).value; }
  Timestamp ts(ItemId item) const { return fragment(item).ts; }

  /// Overwrites the fragment value (caller has verified domain validity and
  /// logged the change).
  void SetValue(ItemId item, Value value) {
    if (!InCatalog(item)) return;
    Materialize(item).value = value;
    if (observer_) observer_(item);
  }
  void SetTs(ItemId item, Timestamp ts) {
    if (!InCatalog(item)) return;
    Materialize(item).ts = ts;
  }

  /// Catalog width, NOT resident count: ids in [0, num_items) are valid.
  uint32_t num_items() const { return catalog_->num_items(); }

  /// Fragments actually materialised at this site — the store's real memory
  /// footprint, and the set a checkpoint must image (absent = identity needs
  /// no image entry). Iteration order is unspecified; consumers that need
  /// determinism must sort or write into an ordered sink.
  const std::unordered_map<uint32_t, Fragment>& resident_fragments() const {
    return fragments_;
  }
  size_t resident_count() const { return fragments_.size(); }

  /// Change notification: invoked with the item after every Install/SetValue
  /// (not SetTs — timestamps don't move value). The placement layer uses it
  /// to keep its advert ring O(active items) without scanning the catalog.
  void set_observer(std::function<void(ItemId)> fn) {
    observer_ = std::move(fn);
  }

 private:
  bool InCatalog(ItemId item) const {
    bool ok = item.valid() && item.value() < catalog_->num_items();
    assert(ok && "ValueStore: out-of-catalog ItemId");
    return ok;
  }
  /// Creates the fragment at its domain identity on first touch. References
  /// stay stable across inserts (node-based map).
  Fragment& Materialize(ItemId item) const {
    auto [it, inserted] = fragments_.try_emplace(item.value());
    if (inserted) {
      it->second.value = catalog_->domain(item).Identity();
    }
    return it->second;
  }

  const Catalog* catalog_;
  /// Lazily materialised; mutable so const reads can cache the identity
  /// fragment they would otherwise have to fabricate per call.
  mutable std::unordered_map<uint32_t, Fragment> fragments_;
  std::function<void(ItemId)> observer_;
  static const Fragment kOutOfCatalog;
};

}  // namespace dvp::core
