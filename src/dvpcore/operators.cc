#include "dvpcore/operators.h"

#include <cassert>

namespace dvp::core {

ApplyOutcome IncrementOp::Apply(const Domain& domain, Value fragment) const {
  assert(amount_ > 0);
  Value next = fragment + amount_;
  if (!domain.ValidFragment(next)) return ApplyOutcome::Ineffective();
  return ApplyOutcome::Applied(next, amount_);
}

ApplyOutcome BoundedDecrementOp::Apply(const Domain& domain,
                                       Value fragment) const {
  assert(amount_ > 0);
  Value next = fragment - amount_;
  if (domain.ValidFragment(next)) return ApplyOutcome::Applied(next, -amount_);
  // For bounded domains the smallest legal remainder is the identity; the
  // shortfall is what the fragment must gain before the decrement applies.
  return ApplyOutcome::Insufficient(amount_ - fragment);
}

std::unique_ptr<PartitionableOp> MakeIncrement(Value amount) {
  return std::make_unique<IncrementOp>(amount);
}

std::unique_ptr<PartitionableOp> MakeDecrement(Value amount) {
  return std::make_unique<BoundedDecrementOp>(amount);
}

}  // namespace dvp::core
