// System-wide item catalog: the static mapping from ItemId to name and
// domain. The catalog is replicated metadata agreed at configuration time
// (like a schema); it never changes during a run, so it lives outside the
// crash-volatile state.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "dvpcore/domain.h"

namespace dvp::core {

/// One catalog entry.
struct ItemInfo {
  std::string name;
  const Domain* domain = nullptr;
  /// The item's initial total value N = Π(initial fragments).
  Value initial_total = 0;
};

class Catalog {
 public:
  /// Registers an item; ids are dense, assigned in registration order.
  ItemId AddItem(std::string name, const Domain& domain, Value initial_total);

  const ItemInfo& info(ItemId item) const { return items_[item.value()]; }
  const Domain& domain(ItemId item) const {
    return *items_[item.value()].domain;
  }
  uint32_t num_items() const { return static_cast<uint32_t>(items_.size()); }

  /// Looks up an item by name.
  StatusOr<ItemId> Find(std::string_view name) const;

  std::vector<ItemId> AllItems() const;

 private:
  std::vector<ItemInfo> items_;
};

}  // namespace dvp::core
