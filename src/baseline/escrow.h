// The Escrow transactional method (O'Neil 1986), cited by §8 as the closest
// single-site relative of DvP: an aggregate "hot spot" field admits
// concurrent increments/decrements by *reserving* quantities in escrow while
// the enclosing (multi-step) transaction runs, so long as the worst-case
// outcome keeps the field within bounds.
//
// This module models one site holding one aggregate field under two
// concurrency modes, for the E4 hot-spot experiment:
//   * kExclusive — the conventional scheme: the field is exclusively locked
//     for the transaction's whole duration; concurrent arrivals abort
//     (no-wait locking, matching the DvP side's pessimism).
//   * kEscrow    — O'Neil admission: decrement(m) is admitted iff
//     committed_value - reserved_decrements >= m; increments are always
//     admitted. Reservations release at commit/abort.
#pragma once

#include <cstdint>
#include <functional>

#include "common/histogram.h"
#include "common/status.h"
#include "common/types.h"
#include "dvpcore/domain.h"
#include "sim/kernel.h"

namespace dvp::baseline {

class EscrowSite {
 public:
  enum class Mode { kExclusive, kEscrow };

  struct Stats {
    uint64_t committed = 0;
    uint64_t aborted_conflict = 0;      ///< exclusive-lock collisions
    uint64_t aborted_insufficient = 0;  ///< escrow admission failures
  };

  /// `txn_duration_us` is the simulated multi-step transaction time during
  /// which the reservation (or lock) is held.
  EscrowSite(sim::Kernel* kernel, Mode mode, core::Value initial,
             SimTime txn_duration_us);

  /// Starts a decrement-by-m transaction. The callback fires at commit or
  /// immediately on admission failure.
  void Decrement(core::Value m, std::function<void(Status)> done);

  /// Starts an increment-by-m transaction.
  void Increment(core::Value m, std::function<void(Status)> done);

  core::Value committed_value() const { return value_; }
  core::Value reserved_decrements() const { return reserved_dec_; }
  const Stats& stats() const { return stats_; }
  Mode mode() const { return mode_; }

 private:
  void Run(core::Value delta, std::function<void(Status)> done);

  sim::Kernel* kernel_;
  Mode mode_;
  core::Value value_;
  core::Value reserved_dec_ = 0;
  uint32_t active_ = 0;  // concurrent transactions in progress
  bool locked_ = false;  // exclusive mode
  SimTime txn_duration_us_;
  Stats stats_;
};

}  // namespace dvp::baseline
