// Traditional baseline: fully replicated data items updated by distributed
// transactions under strict two-phase locking and two-phase commit — the
// system §§1–2 of the paper argue cannot be made non-blocking.
//
// Two replica-control policies:
//   * kWriteAll — every site must grant and prepare (read-one/write-all);
//   * kQuorum   — a majority (or configured w > n/2) must grant; values are
//                 versioned and the coordinator reads the max version among
//                 the grants (Gifford-style quorum consensus).
//
// Blocking semantics modelled faithfully:
//   * A participant that voted YES (forced its prepare record) is in the
//     uncertainty window: it may not abort, release locks, or serve other
//     transactions on those items until it learns the decision — if the
//     network partitions right then, it sits there polling, and the blocked
//     time is measured.
//   * The coordinator itself never blocks (it may always abort before
//     deciding), which is precisely why participants can be stranded.
//
// Recovery is *dependent*: a recovering participant that finds a prepare
// record without a decision must re-acquire the locks and interrogate the
// coordinator — the remote messages DvP recovery never needs (E6).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "cc/lock_manager.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "dvpcore/catalog.h"
#include "net/network.h"
#include "sim/kernel.h"
#include "txn/txn.h"
#include "wal/stable_storage.h"

namespace dvp::baseline {

enum class ReplicaPolicy { kWriteAll, kQuorum };

struct TwoPcOptions {
  uint32_t num_sites = 4;
  uint64_t seed = 42;
  net::LinkParams link;
  ReplicaPolicy policy = ReplicaPolicy::kWriteAll;
  /// Quorum size; 0 means majority (n/2 + 1). Ignored for kWriteAll.
  uint32_t quorum = 0;
  /// Coordinator patience for grants and votes before unilaterally aborting.
  SimTime coordinator_timeout_us = 300'000;
  /// Blocked-participant poll interval for the decision.
  SimTime decision_retry_us = 100'000;
};

/// A full replicated-data 2PC cluster sharing the DvP substrate (kernel,
/// network fault model, stable logs), so measured differences are protocol,
/// not harness.
class TwoPcCluster {
 public:
  TwoPcCluster(const core::Catalog* catalog, TwoPcOptions options);
  ~TwoPcCluster();

  TwoPcCluster(const TwoPcCluster&) = delete;
  TwoPcCluster& operator=(const TwoPcCluster&) = delete;

  /// Installs the initial value of every item at every replica.
  void Bootstrap();

  /// Submits a transaction with `at` as coordinator. Reads take a quorum of
  /// exclusive locks too (single lock mode, like the DvP side).
  StatusOr<TxnId> Submit(SiteId at, const txn::TxnSpec& spec,
                         txn::TxnCallback cb);

  void RunFor(SimTime us);
  SimTime Now() const;

  Status Partition(const std::vector<std::vector<SiteId>>& groups);
  void Heal();
  void CrashSite(SiteId s);
  /// Recovery: redo from log; in-doubt transactions re-block and interrogate
  /// their coordinators. Fires `done` with the number of remote messages the
  /// site had to send before all items became available again.
  void RecoverSite(SiteId s, std::function<void(uint64_t)> done = nullptr);

  uint32_t num_sites() const { return options_.num_sites; }
  net::Network& network() { return *network_; }
  sim::Kernel& kernel() { return kernel_; }

  /// Value of the replica at one site (requires the site up).
  core::Value ReplicaValue(SiteId s, ItemId item) const;
  /// Latest-version value across reachable replicas (diagnostic).
  core::Value AuthoritativeValue(ItemId item) const;

  /// True iff any participant is currently inside the uncertainty window.
  bool AnyBlockedParticipant() const;
  /// Number of participants currently blocked.
  uint32_t BlockedParticipants() const;

  CounterSet AggregateCounters() const;
  /// Time participants spent inside the uncertainty window (per episode).
  const Histogram& blocked_time() const { return blocked_time_; }
  /// Commit/abort decision latency at the coordinator.
  const Histogram& decision_latency() const { return decision_latency_; }

 private:
  struct SiteState;
  friend struct SiteState;

  uint32_t QuorumSize() const;
  SiteState& state(SiteId s) { return *sites_[s.value()]; }

  const core::Catalog* catalog_;
  TwoPcOptions options_;
  sim::Kernel kernel_;
  Rng rng_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<wal::StableStorage>> storages_;
  std::vector<std::unique_ptr<SiteState>> sites_;
  Histogram blocked_time_;
  Histogram decision_latency_;
};

}  // namespace dvp::baseline
