#include "baseline/primary_copy.h"

#include <cassert>

namespace dvp::baseline {

namespace {

struct ExecReqMsg final : public net::Envelope {
  TxnId txn;
  SiteId origin;
  txn::TxnSpec spec;
  std::string_view Tag() const override { return "pc.ExecReq"; }
};

struct ExecReplyMsg final : public net::Envelope {
  TxnId txn;
  bool committed = false;
  std::string message;
  std::map<ItemId, core::Value> read_values;
  std::string_view Tag() const override { return "pc.ExecReply"; }
};

}  // namespace

struct PrimaryCopyCluster::SiteState {
  struct Waiting {
    txn::TxnCallback cb;
    SimTime start = 0;
    sim::EventHandle timer;
  };

  PrimaryCopyCluster* owner = nullptr;
  SiteId id;
  wal::StableStorage* storage = nullptr;
  bool up = false;
  uint64_t generation = 0;
  uint64_t next_txn = 1;
  CounterSet counters;
  std::map<ItemId, core::Value> values;  // only items this site is primary of
  std::map<TxnId, Waiting> waiting;

  void Send(SiteId dst, net::EnvelopePtr payload) {
    net::Packet p;
    p.src = id;
    p.dst = dst;
    p.payload = std::move(payload);
    owner->network_->Send(std::move(p));
  }

  /// Executes a transaction locally (this site is the primary).
  void ExecuteLocal(TxnId txn, const txn::TxnSpec& spec,
                    ExecReplyMsg* reply) {
    // Single-site semantics: evaluate against the sole copy atomically.
    wal::TxnCommitRec rec;
    rec.txn = txn;
    for (const auto& op : spec.ops) {
      auto it = values.find(op.item);
      if (it == values.end()) {
        reply->committed = false;
        reply->message = "not the primary of item";
        return;
      }
      switch (op.kind) {
        case txn::TxnOp::Kind::kIncrement:
          rec.writes.push_back(
              wal::FragmentWrite{op.item, it->second + op.amount, op.amount, 0});
          break;
        case txn::TxnOp::Kind::kDecrement:
          if (it->second < op.amount) {
            reply->committed = false;
            reply->message = "insufficient value";
            counters.Inc("pc.txn.insufficient");
            return;
          }
          rec.writes.push_back(wal::FragmentWrite{
              op.item, it->second - op.amount, -op.amount, 0});
          break;
        case txn::TxnOp::Kind::kReadFull:
          reply->read_values[op.item] = it->second;
          break;
      }
    }
    storage->Append(wal::LogRecord(rec));
    for (const auto& w : rec.writes) values[w.item] = w.post_value;
    reply->committed = true;
    counters.Inc("pc.txn.committed");
  }

  void OnEnvelope(SiteId from, const net::EnvelopePtr& payload) {
    if (const auto* req = dynamic_cast<const ExecReqMsg*>(payload.get())) {
      auto reply = std::make_shared<ExecReplyMsg>();
      reply->txn = req->txn;
      ExecuteLocal(req->txn, req->spec, reply.get());
      Send(from, std::move(reply));
      return;
    }
    if (const auto* rep = dynamic_cast<const ExecReplyMsg*>(payload.get())) {
      auto it = waiting.find(rep->txn);
      if (it == waiting.end()) return;  // duplicate or after timeout
      Waiting w = std::move(it->second);
      waiting.erase(it);
      w.timer.Cancel();
      txn::TxnResult result;
      result.id = rep->txn;
      result.outcome = rep->committed ? txn::TxnOutcome::kCommitted
                                      : txn::TxnOutcome::kAbortTimeout;
      result.status =
          rep->committed ? Status::OK() : Status::Aborted(rep->message);
      result.read_values = rep->read_values;
      result.latency_us = owner->kernel_.Now() - w.start;
      owner->decision_latency_.Add(static_cast<double>(result.latency_us));
      if (w.cb) w.cb(result);
    }
  }
};

PrimaryCopyCluster::PrimaryCopyCluster(const core::Catalog* catalog,
                                       PrimaryCopyOptions options)
    : catalog_(catalog), options_(options), rng_(options.seed) {
  network_ = std::make_unique<net::Network>(&kernel_, options_.num_sites,
                                            options_.link, rng_.Fork(1));
  for (uint32_t s = 0; s < options_.num_sites; ++s) {
    storages_.push_back(std::make_unique<wal::StableStorage>(SiteId(s)));
    auto state = std::make_unique<SiteState>();
    state->owner = this;
    state->id = SiteId(s);
    state->storage = storages_.back().get();
    sites_.push_back(std::move(state));
    SiteState* raw = sites_.back().get();
    network_->RegisterEndpoint(
        SiteId(s),
        [raw](const net::Packet& packet) {
          if (raw->up && packet.payload) {
            raw->OnEnvelope(packet.src, packet.payload);
          }
        },
        [raw]() { return raw->up; });
  }
}

PrimaryCopyCluster::~PrimaryCopyCluster() = default;

void PrimaryCopyCluster::Bootstrap() {
  for (ItemId item : catalog_->AllItems()) {
    SiteState& primary = *sites_[PrimaryOf(item).value()];
    primary.values[item] = catalog_->info(item).initial_total;
    primary.storage->WriteImage(item, catalog_->info(item).initial_total, 0);
  }
  for (auto& s : sites_) s->up = true;
}

StatusOr<TxnId> PrimaryCopyCluster::Submit(SiteId at, const txn::TxnSpec& spec,
                                           txn::TxnCallback cb) {
  SiteState& s = *sites_[at.value()];
  if (!s.up) return Status::Unavailable("site is down");
  if (spec.ops.empty()) return Status::InvalidArgument("no ops");
  SiteId primary = PrimaryOf(spec.ops.front().item);
  for (const auto& op : spec.ops) {
    if (PrimaryOf(op.item) != primary) {
      return Status::InvalidArgument(
          "cross-primary transaction needs 2PC; use TwoPcCluster");
    }
  }
  TxnId txn((s.next_txn++ << Timestamp::kSiteBits) | at.value());

  if (primary == at) {
    // We are the primary: single-site execution, immediate decision.
    ExecReplyMsg reply;
    reply.txn = txn;
    s.ExecuteLocal(txn, spec, &reply);
    txn::TxnResult result;
    result.id = txn;
    result.outcome = reply.committed ? txn::TxnOutcome::kCommitted
                                     : txn::TxnOutcome::kAbortTimeout;
    result.status =
        reply.committed ? Status::OK() : Status::Aborted(reply.message);
    result.read_values = reply.read_values;
    result.latency_us = 0;
    decision_latency_.Add(0);
    if (cb) cb(result);
    return txn;
  }

  auto req = std::make_shared<ExecReqMsg>();
  req->txn = txn;
  req->origin = at;
  req->spec = spec;
  s.Send(primary, std::move(req));

  SiteState::Waiting w;
  w.cb = std::move(cb);
  w.start = kernel_.Now();
  uint64_t gen = s.generation;
  SiteState* raw = &s;
  w.timer = kernel_.Schedule(options_.request_timeout_us, [raw, gen, txn]() {
    if (gen != raw->generation) return;
    auto it = raw->waiting.find(txn);
    if (it == raw->waiting.end()) return;
    SiteState::Waiting w = std::move(it->second);
    raw->waiting.erase(it);
    raw->counters.Inc("pc.txn.timeout");
    txn::TxnResult result;
    result.id = txn;
    result.outcome = txn::TxnOutcome::kAbortTimeout;
    result.status = Status::Timeout("primary unreachable; outcome unknown");
    result.latency_us = raw->owner->kernel_.Now() - w.start;
    if (w.cb) w.cb(result);
  });
  s.waiting.emplace(txn, std::move(w));
  return txn;
}

void PrimaryCopyCluster::RunFor(SimTime us) { kernel_.Run(kernel_.Now() + us); }
SimTime PrimaryCopyCluster::Now() const { return kernel_.Now(); }

Status PrimaryCopyCluster::Partition(
    const std::vector<std::vector<SiteId>>& groups) {
  return network_->partition().Split(groups);
}
void PrimaryCopyCluster::Heal() { network_->partition().Heal(); }

void PrimaryCopyCluster::CrashSite(SiteId s) {
  SiteState& st = *sites_[s.value()];
  if (!st.up) return;
  st.up = false;
  ++st.generation;
  for (auto& [txn, w] : st.waiting) {
    w.timer.Cancel();
    if (w.cb) {
      txn::TxnResult result;
      result.id = txn;
      result.outcome = txn::TxnOutcome::kAbortSiteFailure;
      result.status = Status::Unavailable("origin site crashed");
      w.cb(result);
    }
  }
  st.waiting.clear();
  st.values.clear();
}

void PrimaryCopyCluster::RecoverSite(SiteId s) {
  SiteState& st = *sites_[s.value()];
  assert(!st.up);
  ++st.generation;
  // Redo from image + committed records.
  for (const auto& [item, entry] : st.storage->image()) {
    st.values[item] = entry.value;
  }
  Status scan = st.storage->Scan(0, [&](Lsn, const wal::LogRecord& rec) {
    if (const auto* c = std::get_if<wal::TxnCommitRec>(&rec)) {
      for (const auto& w : c->writes) st.values[w.item] = w.post_value;
    }
  });
  assert(scan.ok());
  (void)scan;
  st.up = true;
}

core::Value PrimaryCopyCluster::PrimaryValue(ItemId item) const {
  const SiteState& st = *sites_[PrimaryOf(item).value()];
  auto it = st.values.find(item);
  return it == st.values.end() ? 0 : it->second;
}

CounterSet PrimaryCopyCluster::AggregateCounters() const {
  CounterSet out;
  for (const auto& s : sites_) out.Merge(s->counters);
  return out;
}

}  // namespace dvp::baseline
