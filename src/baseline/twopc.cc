#include "baseline/twopc.h"

#include <algorithm>
#include <cassert>

namespace dvp::baseline {

namespace {

// ---- Wire messages (internal to the baseline) ------------------------------

struct ReplicaRead {
  ItemId item;
  core::Value value = 0;
  uint64_t version = 0;
};

struct LockReqMsg final : public net::Envelope {
  TxnId txn;
  SiteId coordinator;
  std::vector<ItemId> items;
  std::string_view Tag() const override { return "2pc.LockReq"; }
};

struct LockReplyMsg final : public net::Envelope {
  TxnId txn;
  SiteId site;
  bool granted = false;
  std::vector<ReplicaRead> reads;  // when granted
  std::string_view Tag() const override { return "2pc.LockReply"; }
};

struct PrepareReqMsg final : public net::Envelope {
  TxnId txn;
  SiteId coordinator;
  std::vector<wal::FragmentWrite> writes;  // post_ts_packed carries version
  std::string_view Tag() const override { return "2pc.Prepare"; }
};

struct VoteMsg final : public net::Envelope {
  TxnId txn;
  SiteId site;
  bool yes = false;
  std::string_view Tag() const override { return "2pc.Vote"; }
};

struct DecisionMsg final : public net::Envelope {
  TxnId txn;
  bool committed = false;
  std::string_view Tag() const override { return "2pc.Decision"; }
};

struct DecisionReqMsg final : public net::Envelope {
  TxnId txn;
  SiteId from;
  SiteId coordinator;
  std::string_view Tag() const override { return "2pc.DecisionReq"; }
};

}  // namespace

// ---- Per-site state ---------------------------------------------------------

struct TwoPcCluster::SiteState {
  enum class CoordPhase { kGathering, kVoting, kDecided };

  struct Coordinator {
    txn::TxnSpec spec;
    txn::TxnCallback cb;
    SimTime start = 0;
    CoordPhase phase = CoordPhase::kGathering;
    std::map<SiteId, std::vector<ReplicaRead>> grants;
    uint32_t refusals = 0;
    std::set<SiteId> participants;  // the quorum that prepared
    std::set<SiteId> votes;
    std::vector<wal::FragmentWrite> writes;
    std::map<ItemId, core::Value> read_values;
    sim::EventHandle timer;
  };

  struct Participant {
    SiteId coordinator;
    std::vector<ItemId> items;
    std::vector<wal::FragmentWrite> writes;
    bool prepared = false;
    bool in_doubt_after_recovery = false;
    SimTime prepared_at = 0;
    sim::EventHandle timer;
  };

  struct Replica {
    core::Value value = 0;
    uint64_t version = 0;
  };

  TwoPcCluster* owner = nullptr;
  SiteId id;
  wal::StableStorage* storage = nullptr;
  bool up = false;
  uint64_t generation = 0;
  uint64_t next_txn = 1;
  CounterSet counters;

  // Volatile:
  std::vector<Replica> replicas;
  cc::LockManager locks;
  std::map<TxnId, Coordinator> coords;
  std::map<TxnId, Participant> parts;
  std::map<TxnId, bool> decisions;  // durable via DecisionRec

  // Recovery-in-progress bookkeeping.
  uint64_t recovery_messages = 0;
  uint32_t in_doubt = 0;
  std::function<void(uint64_t)> recovery_done;

  void Send(SiteId dst, net::EnvelopePtr payload) {
    net::Packet p;
    p.src = id;
    p.dst = dst;
    p.payload = std::move(payload);
    owner->network_->Send(std::move(p));
  }

  void OnEnvelope(SiteId from, const net::EnvelopePtr& payload);
  void StartTxn(const txn::TxnSpec& spec, txn::TxnCallback cb, TxnId txn);
  void OnLockReq(SiteId from, const LockReqMsg& msg);
  void OnLockReply(const LockReplyMsg& msg);
  void TryPrepare(TxnId txn);
  void OnPrepareReq(SiteId from, const PrepareReqMsg& msg);
  void OnVote(const VoteMsg& msg);
  void Decide(TxnId txn, bool commit, txn::TxnOutcome outcome,
              const std::string& why);
  void OnDecision(const DecisionMsg& msg);
  void OnDecisionReq(SiteId from, const DecisionReqMsg& msg);
  void ApplyWrites(const std::vector<wal::FragmentWrite>& writes);
  void ArmParticipantPoll(TxnId txn);
  void ResolveInDoubt(TxnId txn);
  void Crash();
  void Recover(std::function<void(uint64_t)> done);
};

// ---- Cluster ---------------------------------------------------------------

TwoPcCluster::TwoPcCluster(const core::Catalog* catalog, TwoPcOptions options)
    : catalog_(catalog), options_(options), rng_(options.seed) {
  network_ = std::make_unique<net::Network>(&kernel_, options_.num_sites,
                                            options_.link, rng_.Fork(1));
  for (uint32_t s = 0; s < options_.num_sites; ++s) {
    storages_.push_back(std::make_unique<wal::StableStorage>(SiteId(s)));
    auto state = std::make_unique<SiteState>();
    state->owner = this;
    state->id = SiteId(s);
    state->storage = storages_.back().get();
    sites_.push_back(std::move(state));
    SiteState* raw = sites_.back().get();
    network_->RegisterEndpoint(
        SiteId(s),
        [raw](const net::Packet& packet) {
          if (raw->up && packet.payload) {
            raw->OnEnvelope(packet.src, packet.payload);
          }
        },
        [raw]() { return raw->up; });
  }
}

TwoPcCluster::~TwoPcCluster() = default;

uint32_t TwoPcCluster::QuorumSize() const {
  if (options_.policy == ReplicaPolicy::kWriteAll) return options_.num_sites;
  if (options_.quorum > 0) return options_.quorum;
  return options_.num_sites / 2 + 1;
}

void TwoPcCluster::Bootstrap() {
  for (auto& site : sites_) {
    site->replicas.assign(catalog_->num_items(), SiteState::Replica{});
    for (ItemId item : catalog_->AllItems()) {
      core::Value v = catalog_->info(item).initial_total;
      site->replicas[item.value()] = SiteState::Replica{v, 0};
      site->storage->WriteImage(item, v, 0);
    }
    site->up = true;
  }
}

StatusOr<TxnId> TwoPcCluster::Submit(SiteId at, const txn::TxnSpec& spec,
                                     txn::TxnCallback cb) {
  SiteState& s = state(at);
  if (!s.up) return Status::Unavailable("site is down");
  TxnId txn((s.next_txn++ << Timestamp::kSiteBits) | at.value());
  s.StartTxn(spec, std::move(cb), txn);
  return txn;
}

void TwoPcCluster::RunFor(SimTime us) { kernel_.Run(kernel_.Now() + us); }
SimTime TwoPcCluster::Now() const { return kernel_.Now(); }

Status TwoPcCluster::Partition(const std::vector<std::vector<SiteId>>& groups) {
  return network_->partition().Split(groups);
}
void TwoPcCluster::Heal() { network_->partition().Heal(); }

void TwoPcCluster::CrashSite(SiteId s) { state(s).Crash(); }

void TwoPcCluster::RecoverSite(SiteId s, std::function<void(uint64_t)> done) {
  state(s).Recover(std::move(done));
}

core::Value TwoPcCluster::ReplicaValue(SiteId s, ItemId item) const {
  return sites_[s.value()]->replicas[item.value()].value;
}

core::Value TwoPcCluster::AuthoritativeValue(ItemId item) const {
  core::Value best = 0;
  uint64_t best_ver = 0;
  bool any = false;
  for (const auto& s : sites_) {
    if (!s->up) continue;
    const auto& r = s->replicas[item.value()];
    if (!any || r.version > best_ver) {
      best = r.value;
      best_ver = r.version;
      any = true;
    }
  }
  return best;
}

bool TwoPcCluster::AnyBlockedParticipant() const {
  return BlockedParticipants() > 0;
}

uint32_t TwoPcCluster::BlockedParticipants() const {
  uint32_t n = 0;
  for (const auto& s : sites_) {
    for (const auto& [txn, p] : s->parts) {
      (void)txn;
      if (p.prepared) ++n;
    }
  }
  return n;
}

CounterSet TwoPcCluster::AggregateCounters() const {
  CounterSet out;
  for (const auto& s : sites_) out.Merge(s->counters);
  return out;
}

// ---- SiteState behaviour ------------------------------------------------------

void TwoPcCluster::SiteState::OnEnvelope(SiteId from,
                                         const net::EnvelopePtr& payload) {
  if (const auto* m = dynamic_cast<const LockReqMsg*>(payload.get())) {
    OnLockReq(from, *m);
  } else if (const auto* m =
                 dynamic_cast<const LockReplyMsg*>(payload.get())) {
    OnLockReply(*m);
  } else if (const auto* m =
                 dynamic_cast<const PrepareReqMsg*>(payload.get())) {
    OnPrepareReq(from, *m);
  } else if (const auto* m = dynamic_cast<const VoteMsg*>(payload.get())) {
    OnVote(*m);
  } else if (const auto* m = dynamic_cast<const DecisionMsg*>(payload.get())) {
    OnDecision(*m);
  } else if (const auto* m =
                 dynamic_cast<const DecisionReqMsg*>(payload.get())) {
    OnDecisionReq(from, *m);
  }
}

void TwoPcCluster::SiteState::StartTxn(const txn::TxnSpec& spec,
                                       txn::TxnCallback cb, TxnId txn) {
  auto& coord = coords[txn];
  coord.spec = spec;
  coord.cb = std::move(cb);
  coord.start = owner->kernel_.Now();
  counters.Inc("2pc.txn.started");

  std::vector<ItemId> items;
  for (const auto& op : spec.ops) items.push_back(op.item);

  auto req = std::make_shared<LockReqMsg>();
  req->txn = txn;
  req->coordinator = id;
  req->items = items;
  for (uint32_t s = 0; s < owner->options_.num_sites; ++s) {
    Send(SiteId(s), req);
  }

  uint64_t gen = generation;
  coord.timer = owner->kernel_.Schedule(
      owner->options_.coordinator_timeout_us, [this, gen, txn]() {
        if (gen != generation) return;
        auto it = coords.find(txn);
        if (it == coords.end() || it->second.phase == CoordPhase::kDecided) {
          return;
        }
        Decide(txn, false, txn::TxnOutcome::kAbortTimeout,
               "coordinator timeout");
      });
}

void TwoPcCluster::SiteState::OnLockReq(SiteId from, const LockReqMsg& msg) {
  if (parts.contains(msg.txn)) return;  // duplicate
  auto reply = std::make_shared<LockReplyMsg>();
  reply->txn = msg.txn;
  reply->site = id;
  if (!locks.TryLockAll(msg.items, msg.txn)) {
    reply->granted = false;
    counters.Inc("2pc.lock.refused");
    Send(from, std::move(reply));
    return;
  }
  Participant& p = parts[msg.txn];
  p.coordinator = msg.coordinator;
  p.items = msg.items;
  reply->granted = true;
  for (ItemId item : msg.items) {
    const Replica& r = replicas[item.value()];
    reply->reads.push_back(ReplicaRead{item, r.value, r.version});
  }
  counters.Inc("2pc.lock.granted");
  Send(from, std::move(reply));

  // Pre-vote patience: a participant that granted but never got a prepare
  // may unilaterally release (it has promised nothing yet).
  uint64_t gen = generation;
  TxnId txn = msg.txn;
  p.timer = owner->kernel_.Schedule(
      2 * owner->options_.coordinator_timeout_us, [this, gen, txn]() {
        if (gen != generation) return;
        auto it = parts.find(txn);
        if (it == parts.end() || it->second.prepared) return;
        locks.ReleaseAll(txn);
        parts.erase(it);
        counters.Inc("2pc.grant.expired");
      });
}

void TwoPcCluster::SiteState::OnLockReply(const LockReplyMsg& msg) {
  auto it = coords.find(msg.txn);
  if (it == coords.end() || it->second.phase != CoordPhase::kGathering) {
    // A grant that arrives after the decision (or after an abort) would
    // leave that replica locked until its grant-expiry timer; tell the
    // granter the outcome right away so the lock frees promptly.
    if (msg.granted) {
      auto known = decisions.find(msg.txn);
      bool committed = known != decisions.end() && known->second;
      auto decision = std::make_shared<DecisionMsg>();
      decision->txn = msg.txn;
      decision->committed = committed;
      Send(msg.site, std::move(decision));
    }
    return;
  }
  Coordinator& c = it->second;
  if (msg.granted) {
    c.grants[msg.site] = msg.reads;
    TryPrepare(msg.txn);
  } else {
    ++c.refusals;
    uint32_t needed = owner->QuorumSize();
    if (owner->options_.num_sites - c.refusals < needed) {
      Decide(msg.txn, false, txn::TxnOutcome::kAbortLockConflict,
             "lock refused at replica");
    }
  }
}

void TwoPcCluster::SiteState::TryPrepare(TxnId txn) {
  Coordinator& c = coords.at(txn);
  uint32_t needed = owner->QuorumSize();
  if (c.grants.size() < needed) return;

  // Latest committed value per item = max version among the quorum's reads
  // (quorums intersect, so the latest committed write is represented).
  std::map<ItemId, ReplicaRead> latest;
  for (const auto& [site, reads] : c.grants) {
    (void)site;
    for (const ReplicaRead& r : reads) {
      auto [it, inserted] = latest.try_emplace(r.item, r);
      if (!inserted && r.version > it->second.version) it->second = r;
    }
  }

  // Semantic evaluation against the whole (replicated) value.
  for (const auto& op : c.spec.ops) {
    const ReplicaRead& r = latest.at(op.item);
    switch (op.kind) {
      case txn::TxnOp::Kind::kIncrement:
        c.writes.push_back(wal::FragmentWrite{op.item, r.value + op.amount,
                                              op.amount, r.version + 1});
        break;
      case txn::TxnOp::Kind::kDecrement:
        if (r.value < op.amount) {
          Decide(txn, false, txn::TxnOutcome::kAbortTimeout,
                 "insufficient value");
          return;
        }
        c.writes.push_back(wal::FragmentWrite{op.item, r.value - op.amount,
                                              -op.amount, r.version + 1});
        break;
      case txn::TxnOp::Kind::kReadFull:
        c.read_values[op.item] = r.value;
        break;
    }
  }

  c.phase = CoordPhase::kVoting;
  for (const auto& [site, reads] : c.grants) {
    (void)reads;
    c.participants.insert(site);
  }
  auto prep = std::make_shared<PrepareReqMsg>();
  prep->txn = txn;
  prep->coordinator = id;
  prep->writes = c.writes;
  for (SiteId site : c.participants) Send(site, prep);
  counters.Inc("2pc.prepare.sent");
}

void TwoPcCluster::SiteState::OnPrepareReq(SiteId from,
                                           const PrepareReqMsg& msg) {
  auto it = parts.find(msg.txn);
  if (it == parts.end()) {
    // We never granted (or already expired the grant): refuse.
    auto vote = std::make_shared<VoteMsg>();
    vote->txn = msg.txn;
    vote->site = id;
    vote->yes = false;
    Send(from, std::move(vote));
    return;
  }
  Participant& p = it->second;
  if (!p.prepared) {
    p.writes = msg.writes;
    p.prepared = true;
    p.prepared_at = owner->kernel_.Now();
    p.timer.Cancel();
    storage->Append(
        wal::LogRecord(wal::PrepareRec{msg.txn, msg.coordinator, msg.writes}));
    counters.Inc("2pc.prepared");
    ArmParticipantPoll(msg.txn);
  }
  auto vote = std::make_shared<VoteMsg>();
  vote->txn = msg.txn;
  vote->site = id;
  vote->yes = true;
  Send(from, std::move(vote));
}

void TwoPcCluster::SiteState::OnVote(const VoteMsg& msg) {
  auto it = coords.find(msg.txn);
  if (it == coords.end() || it->second.phase != CoordPhase::kVoting) return;
  Coordinator& c = it->second;
  if (!msg.yes) {
    Decide(msg.txn, false, txn::TxnOutcome::kAbortLockConflict,
           "participant voted no");
    return;
  }
  c.votes.insert(msg.site);
  if (c.votes.size() == c.participants.size()) {
    Decide(msg.txn, true, txn::TxnOutcome::kCommitted, "");
  }
}

void TwoPcCluster::SiteState::Decide(TxnId txn, bool commit,
                                     txn::TxnOutcome outcome,
                                     const std::string& why) {
  auto it = coords.find(txn);
  assert(it != coords.end());
  Coordinator& c = it->second;
  assert(c.phase != CoordPhase::kDecided);
  c.phase = CoordPhase::kDecided;
  c.timer.Cancel();

  // The decision record is the commit point.
  storage->Append(wal::LogRecord(wal::DecisionRec{txn, commit}));
  decisions[txn] = commit;
  counters.Inc(commit ? "2pc.txn.committed"
                      : std::string("2pc.txn.") +
                            std::string(txn::TxnOutcomeName(outcome)));

  txn::TxnResult result;
  result.id = txn;
  result.outcome = outcome;
  result.status = commit ? Status::OK() : Status::Aborted(why);
  result.read_values = c.read_values;
  result.latency_us = owner->kernel_.Now() - c.start;
  owner->decision_latency_.Add(static_cast<double>(result.latency_us));

  auto decision = std::make_shared<DecisionMsg>();
  decision->txn = txn;
  decision->committed = commit;
  // Inform everyone who may hold state: the prepared quorum on commit, every
  // granting site on abort.
  std::set<SiteId> recipients = c.participants;
  for (const auto& [site, reads] : c.grants) {
    (void)reads;
    recipients.insert(site);
  }
  for (SiteId site : recipients) Send(site, decision);

  txn::TxnCallback cb = std::move(c.cb);
  coords.erase(it);
  if (cb) cb(result);
}

void TwoPcCluster::SiteState::ApplyWrites(
    const std::vector<wal::FragmentWrite>& writes) {
  for (const auto& w : writes) {
    Replica& r = replicas[w.item.value()];
    if (w.post_ts_packed >= r.version) {
      r.value = w.post_value;
      r.version = w.post_ts_packed;
    }
  }
}

void TwoPcCluster::SiteState::OnDecision(const DecisionMsg& msg) {
  auto it = parts.find(msg.txn);
  if (!decisions.contains(msg.txn)) {
    storage->Append(wal::LogRecord(wal::DecisionRec{msg.txn, msg.committed}));
    decisions[msg.txn] = msg.committed;
  }
  if (it == parts.end()) return;
  Participant& p = it->second;
  if (p.prepared) {
    owner->blocked_time_.Add(
        static_cast<double>(owner->kernel_.Now() - p.prepared_at));
    if (p.in_doubt_after_recovery) ResolveInDoubt(msg.txn);
  }
  if (msg.committed) ApplyWrites(p.writes);
  p.timer.Cancel();
  locks.ReleaseAll(msg.txn);
  parts.erase(it);
}

void TwoPcCluster::SiteState::OnDecisionReq(SiteId from,
                                            const DecisionReqMsg& msg) {
  auto known = decisions.find(msg.txn);
  if (known != decisions.end()) {
    auto decision = std::make_shared<DecisionMsg>();
    decision->txn = msg.txn;
    decision->committed = known->second;
    Send(from, std::move(decision));
    return;
  }
  if (coords.contains(msg.txn)) return;  // still undecided: stay blocked
  // Unknown transaction: presumed abort.
  auto decision = std::make_shared<DecisionMsg>();
  decision->txn = msg.txn;
  decision->committed = false;
  Send(from, std::move(decision));
}

void TwoPcCluster::SiteState::ArmParticipantPoll(TxnId txn) {
  uint64_t gen = generation;
  auto it = parts.find(txn);
  if (it == parts.end()) return;
  it->second.timer = owner->kernel_.Schedule(
      owner->options_.decision_retry_us, [this, gen, txn]() {
        if (gen != generation) return;
        auto pit = parts.find(txn);
        if (pit == parts.end() || !pit->second.prepared) return;
        auto req = std::make_shared<DecisionReqMsg>();
        req->txn = txn;
        req->from = id;
        req->coordinator = pit->second.coordinator;
        counters.Inc("2pc.blocked.poll");
        if (in_doubt > 0) ++recovery_messages;
        Send(pit->second.coordinator, std::move(req));
        ArmParticipantPoll(txn);
      });
}

void TwoPcCluster::SiteState::ResolveInDoubt(TxnId txn) {
  (void)txn;
  assert(in_doubt > 0);
  --in_doubt;
  if (in_doubt == 0 && recovery_done) {
    auto done = std::move(recovery_done);
    recovery_done = nullptr;
    done(recovery_messages);
  }
}

void TwoPcCluster::SiteState::Crash() {
  if (!up) return;
  up = false;
  ++generation;
  counters.Inc("2pc.site.crashes");
  // Coordinators die undecided; their clients see a failure.
  for (auto& [txn, c] : coords) {
    c.timer.Cancel();
    if (c.phase != CoordPhase::kDecided && c.cb) {
      txn::TxnResult result;
      result.id = txn;
      result.outcome = txn::TxnOutcome::kAbortSiteFailure;
      result.status = Status::Unavailable("coordinator crashed");
      result.latency_us = owner->kernel_.Now() - c.start;
      c.cb(result);
    }
  }
  coords.clear();
  for (auto& [txn, p] : parts) {
    (void)txn;
    p.timer.Cancel();
  }
  parts.clear();
  locks.Clear();
  replicas.clear();
  decisions.clear();
  recovery_messages = 0;
  in_doubt = 0;
  recovery_done = nullptr;
}

void TwoPcCluster::SiteState::Recover(std::function<void(uint64_t)> done) {
  assert(!up);
  ++generation;
  counters.Inc("2pc.site.recoveries");
  recovery_messages = 0;

  // Rebuild replicas from the image, then redo in log order.
  replicas.assign(owner->catalog_->num_items(), Replica{});
  for (const auto& [item, entry] : storage->image()) {
    replicas[item.value()] = Replica{entry.value, entry.ts_packed};
  }
  std::map<TxnId, wal::PrepareRec> prepared;
  Status s = storage->Scan(0, [&](Lsn, const wal::LogRecord& rec) {
    if (const auto* p = std::get_if<wal::PrepareRec>(&rec)) {
      prepared[p->txn] = *p;
    } else if (const auto* d = std::get_if<wal::DecisionRec>(&rec)) {
      decisions[d->txn] = d->committed;
      if (d->committed) {
        auto it = prepared.find(d->txn);
        if (it != prepared.end()) ApplyWrites(it->second.writes);
      }
    }
  });
  assert(s.ok());
  (void)s;
  up = true;

  // In-doubt transactions: prepared here, decision unknown. The participant
  // must re-lock the items, re-enter the uncertainty window, and interrogate
  // the coordinator — recovery is *dependent* on remote communication.
  for (const auto& [txn, prep] : prepared) {
    if (decisions.contains(txn)) continue;
    Participant& p = parts[txn];
    p.coordinator = prep.coordinator;
    p.writes = prep.writes;
    for (const auto& w : prep.writes) p.items.push_back(w.item);
    bool relocked = locks.TryLockAll(p.items, txn);
    assert(relocked);
    (void)relocked;
    p.prepared = true;
    p.in_doubt_after_recovery = true;
    p.prepared_at = owner->kernel_.Now();
    ++in_doubt;

    auto req = std::make_shared<DecisionReqMsg>();
    req->txn = txn;
    req->from = id;
    req->coordinator = prep.coordinator;
    ++recovery_messages;
    counters.Inc("2pc.recovery.decision_req");
    Send(prep.coordinator, req);
    ArmParticipantPoll(txn);
  }
  if (in_doubt == 0) {
    if (done) done(recovery_messages);
  } else {
    recovery_done = std::move(done);
  }
}

}  // namespace dvp::baseline
