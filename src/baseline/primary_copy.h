// Traditional baseline: primary-copy. Each item lives at a designated
// primary site; every transaction on it is forwarded there and executed as a
// local, single-site transaction. Non-blocking (the primary decides alone)
// but availability collapses to "can you reach the primary": a partition
// makes the item unusable for every other group, and a primary crash makes
// it unusable for everyone (no election protocol — §2.2's "a primary copy
// site fails" caveat).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "dvpcore/catalog.h"
#include "net/network.h"
#include "sim/kernel.h"
#include "txn/txn.h"
#include "wal/stable_storage.h"

namespace dvp::baseline {

struct PrimaryCopyOptions {
  uint32_t num_sites = 4;
  uint64_t seed = 42;
  net::LinkParams link;
  /// Origin-side patience for the primary's reply.
  SimTime request_timeout_us = 300'000;
};

class PrimaryCopyCluster {
 public:
  PrimaryCopyCluster(const core::Catalog* catalog, PrimaryCopyOptions options);
  ~PrimaryCopyCluster();

  /// Installs initial values at each item's primary.
  void Bootstrap();

  /// Primary of an item: round-robin by id.
  SiteId PrimaryOf(ItemId item) const {
    return SiteId(item.value() % options_.num_sites);
  }

  /// Submits at `at`; ops are forwarded to the primary. All items of one
  /// transaction must share a primary (cross-primary transactions would need
  /// 2PC, which is the other baseline).
  StatusOr<TxnId> Submit(SiteId at, const txn::TxnSpec& spec,
                         txn::TxnCallback cb);

  void RunFor(SimTime us);
  SimTime Now() const;
  Status Partition(const std::vector<std::vector<SiteId>>& groups);
  void Heal();
  void CrashSite(SiteId s);
  void RecoverSite(SiteId s);

  core::Value PrimaryValue(ItemId item) const;
  CounterSet AggregateCounters() const;
  const Histogram& decision_latency() const { return decision_latency_; }
  uint32_t num_sites() const { return options_.num_sites; }
  sim::Kernel& kernel() { return kernel_; }
  net::Network& network() { return *network_; }

 private:
  struct SiteState;

  const core::Catalog* catalog_;
  PrimaryCopyOptions options_;
  sim::Kernel kernel_;
  Rng rng_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<wal::StableStorage>> storages_;
  std::vector<std::unique_ptr<SiteState>> sites_;
  Histogram decision_latency_;
};

}  // namespace dvp::baseline
