#include "baseline/escrow.h"

namespace dvp::baseline {

EscrowSite::EscrowSite(sim::Kernel* kernel, Mode mode, core::Value initial,
                       SimTime txn_duration_us)
    : kernel_(kernel),
      mode_(mode),
      value_(initial),
      txn_duration_us_(txn_duration_us) {}

void EscrowSite::Run(core::Value delta, std::function<void(Status)> done) {
  ++active_;
  kernel_->Schedule(txn_duration_us_, [this, delta,
                                       done = std::move(done)]() {
    // Commit: apply the delta, release the reservation/lock.
    value_ += delta;
    if (delta < 0) reserved_dec_ += delta;  // release the reservation
    --active_;
    if (mode_ == Mode::kExclusive) locked_ = false;
    ++stats_.committed;
    if (done) done(Status::OK());
  });
}

void EscrowSite::Decrement(core::Value m, std::function<void(Status)> done) {
  if (mode_ == Mode::kExclusive) {
    if (locked_) {
      ++stats_.aborted_conflict;
      if (done) done(Status::Conflict("hot spot exclusively locked"));
      return;
    }
    if (value_ < m) {
      ++stats_.aborted_insufficient;
      if (done) done(Status::FailedPrecondition("insufficient value"));
      return;
    }
    locked_ = true;
    Run(-m, std::move(done));
    return;
  }
  // Escrow admission: even if every other reserved decrement commits, this
  // one must still be coverable.
  if (value_ - reserved_dec_ < m) {
    ++stats_.aborted_insufficient;
    if (done) done(Status::FailedPrecondition("escrow admission failed"));
    return;
  }
  reserved_dec_ += m;
  Run(-m, std::move(done));
}

void EscrowSite::Increment(core::Value m, std::function<void(Status)> done) {
  if (mode_ == Mode::kExclusive) {
    if (locked_) {
      ++stats_.aborted_conflict;
      if (done) done(Status::Conflict("hot spot exclusively locked"));
      return;
    }
    locked_ = true;
    Run(m, std::move(done));
    return;
  }
  Run(m, std::move(done));
}

}  // namespace dvp::baseline
