// Binary encoding primitives for log records: little-endian fixed integers,
// LEB128 varints, zigzag for signed deltas, and a CRC32 (Castagnoli
// polynomial, software implementation) used to detect torn or corrupted
// records on recovery.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace dvp::wal {

/// Appends a little-endian fixed-width integer.
void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);

/// Appends a LEB128 varint.
void PutVarint64(std::string* dst, uint64_t v);

/// Appends a zigzag-encoded signed varint.
void PutVarsint64(std::string* dst, int64_t v);

/// Appends a length-prefixed byte string.
void PutLengthPrefixed(std::string* dst, std::string_view s);

/// Cursor over an encoded buffer; all Get* return false on underflow or
/// malformed input (the caller converts that to Status::Corruption).
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  bool GetFixed32(uint32_t* v);
  bool GetFixed64(uint64_t* v);
  bool GetVarint64(uint64_t* v);
  bool GetVarsint64(int64_t* v);
  bool GetLengthPrefixed(std::string_view* s);

  bool empty() const { return data_.empty(); }
  size_t remaining() const { return data_.size(); }

 private:
  std::string_view data_;
};

/// CRC32C over a byte buffer.
uint32_t Crc32c(std::string_view data);

}  // namespace dvp::wal
