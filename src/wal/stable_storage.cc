#include "wal/stable_storage.h"

#include <algorithm>

namespace dvp::wal {

Lsn StableStorage::AppendEncoded(const LogRecord& record) {
  std::string& slot = encoded_.emplace_back();
  EncodeRecordTo(record, &slot);
  log_bytes_ += slot.size();
  ++appends_;
  return Lsn(encoded_.size() - 1);
}

Lsn StableStorage::Append(const LogRecord& record) {
  Lsn lsn = AppendEncoded(record);
  ForceTail();
  // The hook fires after the force, so crash-injection tests still model
  // "record durable, in-memory update lost".
  if (post_append_hook_) post_append_hook_(lsn, record);
  return lsn;
}

Lsn StableStorage::AppendBuffered(const LogRecord& record) {
  Lsn lsn = AppendEncoded(record);
  if (post_append_hook_) post_append_hook_(lsn, record);
  return lsn;
}

uint64_t StableStorage::ForceTail() {
  if (durable_size_ == encoded_.size()) return 0;
  uint64_t n = encoded_.size() - durable_size_;
  uint64_t bytes = log_bytes_ - durable_bytes_;
  durable_size_ = encoded_.size();
  durable_bytes_ = log_bytes_;
  ++forces_;
  last_group_records_ = n;
  last_group_bytes_ = bytes;
  max_group_records_ = std::max(max_group_records_, n);
  max_group_bytes_ = std::max(max_group_bytes_, bytes);
  return n;
}

uint64_t StableStorage::DropUnforcedTail() {
  uint64_t dropped = encoded_.size() - durable_size_;
  Truncate(durable_size_);
  return dropped;
}

StatusOr<LogRecord> StableStorage::Read(Lsn lsn) const {
  if (!lsn.valid() || lsn.value() >= encoded_.size()) {
    return Status::NotFound("no record at lsn " + lsn.ToString());
  }
  return DecodeRecord(encoded_[lsn.value()]);
}

Status StableStorage::Scan(
    uint64_t from,
    const std::function<void(Lsn, const LogRecord&)>& fn) const {
  for (uint64_t i = from; i < encoded_.size(); ++i) {
    auto rec = DecodeRecord(encoded_[i]);
    if (!rec.ok()) {
      return Status::Corruption("log record " + std::to_string(i) + " at site " +
                                site_.ToString() + ": " +
                                rec.status().message());
    }
    fn(Lsn(i), rec.value());
  }
  return Status::OK();
}

Status StableStorage::ScanPrefix(
    uint64_t from, uint64_t upto,
    const std::function<void(Lsn, const LogRecord&)>& fn,
    uint64_t* valid_upto) const {
  upto = std::min<uint64_t>(upto, encoded_.size());
  for (uint64_t i = from; i < upto; ++i) {
    auto rec = DecodeRecord(encoded_[i]);
    if (!rec.ok()) {
      if (valid_upto) *valid_upto = i;
      return Status::OK();
    }
    fn(Lsn(i), rec.value());
  }
  if (valid_upto) *valid_upto = upto;
  return Status::OK();
}

void StableStorage::Truncate(uint64_t new_size) {
  while (encoded_.size() > new_size) {
    size_t bytes = encoded_.back().size();
    log_bytes_ -= bytes;
    encoded_.pop_back();
    if (durable_size_ > encoded_.size()) {
      durable_size_ = encoded_.size();
      durable_bytes_ -= bytes;
    }
  }
}

Status StableStorage::TearTailForTest(size_t keep_bytes) {
  if (encoded_.empty()) return Status::FailedPrecondition("empty log");
  std::string& rec = encoded_.back();
  if (keep_bytes >= rec.size()) {
    return Status::InvalidArgument("keep_bytes does not shorten the record");
  }
  size_t delta = rec.size() - keep_bytes;
  log_bytes_ -= delta;
  if (durable_size_ == encoded_.size()) durable_bytes_ -= delta;
  rec.resize(keep_bytes);
  return Status::OK();
}

StatusOr<size_t> StableStorage::RecordSizeForTest(Lsn lsn) const {
  if (!lsn.valid() || lsn.value() >= encoded_.size()) {
    return Status::NotFound("no record at lsn " + lsn.ToString());
  }
  return encoded_[lsn.value()].size();
}

Status StableStorage::CorruptRecordForTest(Lsn lsn, size_t byte_offset) {
  if (!lsn.valid() || lsn.value() >= encoded_.size()) {
    return Status::NotFound("no record at lsn " + lsn.ToString());
  }
  std::string& rec = encoded_[lsn.value()];
  if (byte_offset >= rec.size()) {
    return Status::InvalidArgument("byte offset beyond record");
  }
  rec[byte_offset] = static_cast<char>(rec[byte_offset] ^ 0x40);
  return Status::OK();
}

}  // namespace dvp::wal
