#include "wal/stable_storage.h"

namespace dvp::wal {

Lsn StableStorage::Append(const LogRecord& record) {
  encoded_.push_back(EncodeRecord(record));
  log_bytes_ += encoded_.back().size();
  ++forces_;
  Lsn lsn(encoded_.size() - 1);
  if (post_append_hook_) post_append_hook_(lsn, record);
  return lsn;
}

StatusOr<LogRecord> StableStorage::Read(Lsn lsn) const {
  if (!lsn.valid() || lsn.value() >= encoded_.size()) {
    return Status::NotFound("no record at lsn " + lsn.ToString());
  }
  return DecodeRecord(encoded_[lsn.value()]);
}

Status StableStorage::Scan(
    uint64_t from,
    const std::function<void(Lsn, const LogRecord&)>& fn) const {
  for (uint64_t i = from; i < encoded_.size(); ++i) {
    auto rec = DecodeRecord(encoded_[i]);
    if (!rec.ok()) {
      return Status::Corruption("log record " + std::to_string(i) + " at site " +
                                site_.ToString() + ": " +
                                rec.status().message());
    }
    fn(Lsn(i), rec.value());
  }
  return Status::OK();
}

Status StableStorage::CorruptRecordForTest(Lsn lsn, size_t byte_offset) {
  if (!lsn.valid() || lsn.value() >= encoded_.size()) {
    return Status::NotFound("no record at lsn " + lsn.ToString());
  }
  std::string& rec = encoded_[lsn.value()];
  if (byte_offset >= rec.size()) {
    return Status::InvalidArgument("byte offset beyond record");
  }
  rec[byte_offset] = static_cast<char>(rec[byte_offset] ^ 0x40);
  return Status::OK();
}

}  // namespace dvp::wal
