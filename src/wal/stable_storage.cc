#include "wal/stable_storage.h"

#include <algorithm>

namespace dvp::wal {

Lsn StableStorage::Append(const LogRecord& record) {
  encoded_.push_back(EncodeRecord(record));
  log_bytes_ += encoded_.back().size();
  ++forces_;
  Lsn lsn(encoded_.size() - 1);
  if (post_append_hook_) post_append_hook_(lsn, record);
  return lsn;
}

StatusOr<LogRecord> StableStorage::Read(Lsn lsn) const {
  if (!lsn.valid() || lsn.value() >= encoded_.size()) {
    return Status::NotFound("no record at lsn " + lsn.ToString());
  }
  return DecodeRecord(encoded_[lsn.value()]);
}

Status StableStorage::Scan(
    uint64_t from,
    const std::function<void(Lsn, const LogRecord&)>& fn) const {
  for (uint64_t i = from; i < encoded_.size(); ++i) {
    auto rec = DecodeRecord(encoded_[i]);
    if (!rec.ok()) {
      return Status::Corruption("log record " + std::to_string(i) + " at site " +
                                site_.ToString() + ": " +
                                rec.status().message());
    }
    fn(Lsn(i), rec.value());
  }
  return Status::OK();
}

Status StableStorage::ScanPrefix(
    uint64_t from, uint64_t upto,
    const std::function<void(Lsn, const LogRecord&)>& fn,
    uint64_t* valid_upto) const {
  upto = std::min<uint64_t>(upto, encoded_.size());
  for (uint64_t i = from; i < upto; ++i) {
    auto rec = DecodeRecord(encoded_[i]);
    if (!rec.ok()) {
      if (valid_upto) *valid_upto = i;
      return Status::OK();
    }
    fn(Lsn(i), rec.value());
  }
  if (valid_upto) *valid_upto = upto;
  return Status::OK();
}

void StableStorage::Truncate(uint64_t new_size) {
  while (encoded_.size() > new_size) {
    log_bytes_ -= encoded_.back().size();
    encoded_.pop_back();
  }
}

Status StableStorage::TearTailForTest(size_t keep_bytes) {
  if (encoded_.empty()) return Status::FailedPrecondition("empty log");
  std::string& rec = encoded_.back();
  if (keep_bytes >= rec.size()) {
    return Status::InvalidArgument("keep_bytes does not shorten the record");
  }
  log_bytes_ -= rec.size() - keep_bytes;
  rec.resize(keep_bytes);
  return Status::OK();
}

StatusOr<size_t> StableStorage::RecordSizeForTest(Lsn lsn) const {
  if (!lsn.valid() || lsn.value() >= encoded_.size()) {
    return Status::NotFound("no record at lsn " + lsn.ToString());
  }
  return encoded_[lsn.value()].size();
}

Status StableStorage::CorruptRecordForTest(Lsn lsn, size_t byte_offset) {
  if (!lsn.valid() || lsn.value() >= encoded_.size()) {
    return Status::NotFound("no record at lsn " + lsn.ToString());
  }
  std::string& rec = encoded_[lsn.value()];
  if (byte_offset >= rec.size()) {
    return Status::InvalidArgument("byte offset beyond record");
  }
  rec[byte_offset] = static_cast<char>(rec[byte_offset] ^ 0x40);
  return Status::OK();
}

}  // namespace dvp::wal
