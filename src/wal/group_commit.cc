#include "wal/group_commit.h"

#include <utility>

#include "obs/trace.h"

namespace dvp::wal {

Lsn GroupCommitLog::Append(const LogRecord& record,
                           std::function<void()> on_durable) {
  if (!options_.enabled) {
    Lsn lsn = storage_->Append(record);
    if (trace_) {
      trace_->Instant(storage_->site(), obs::Track::kWal, "wal.append", 0,
                      "lsn", lsn.value());
      trace_->Instant(storage_->site(), obs::Track::kWal, "wal.force", 0,
                      "records", 1);
    }
    if (on_durable) on_durable();
    return lsn;
  }
  Lsn lsn = storage_->AppendBuffered(record);
  if (trace_) {
    trace_->Instant(storage_->site(), obs::Track::kWal, "wal.append", 0,
                    "lsn", lsn.value());
  }
  if (on_durable) callbacks_.push_back(std::move(on_durable));
  if (storage_->unforced_records() >= options_.max_records ||
      storage_->unforced_bytes() >= options_.max_bytes) {
    Flush();
  } else {
    ArmTimer();
  }
  return lsn;
}

void GroupCommitLog::Flush() {
  if (storage_->unforced_records() == 0 && callbacks_.empty()) return;
  uint64_t n = storage_->ForceTail();
  if (n > 0) {
    m_group_forces_->Inc();
    m_group_records_->Inc(n);
    if (trace_) {
      trace_->Instant(storage_->site(), obs::Track::kWal, "wal.force", 0,
                      "records", n);
    }
  }
  // A synchronous StableStorage::Append interleaved with the batch forces
  // the whole tail, so by here every pending callback's record is durable —
  // run them all. Move first: a callback may re-enter Append and start a
  // fresh batch.
  std::vector<std::function<void()>> ready = std::move(callbacks_);
  callbacks_.clear();
  for (auto& cb : ready) cb();
}

void GroupCommitLog::OnNextForce(std::function<void()> fn) {
  if (!options_.enabled || storage_->unforced_records() == 0) {
    fn();
    return;
  }
  callbacks_.push_back(std::move(fn));
  ArmTimer();
}

void GroupCommitLog::ArmTimer() {
  if (timer_armed_) return;
  timer_armed_ = true;
  rt_->Schedule(options_.max_delay_us, [this, alive = alive_] {
    if (!*alive) return;
    timer_armed_ = false;
    if (storage_->unforced_records() > 0 || !callbacks_.empty()) Flush();
  });
}

}  // namespace dvp::wal
