// Typed log records. The paper's protocol forces exactly two kinds of
// compound records — `[database-actions, message-sequence]` at Vm creation
// and `[database-actions]` at Vm acceptance / transaction commit — plus
// bookkeeping records (applied markers, Vm acks, recovery markers).
//
// Every FragmentWrite carries the *absolute* post-state of the fragment, not
// just the delta, so that redo is idempotent as §7 requires ("the redoing
// actions must be idempotent"). The delta is retained for auditing.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "wal/encoding.h"

namespace dvp::wal {

/// One database action: fragment `item` at this site becomes `post_value`
/// with lock-timestamp `post_ts`; `delta` records the change for audits.
struct FragmentWrite {
  ItemId item;
  int64_t post_value = 0;
  int64_t delta = 0;
  uint64_t post_ts_packed = 0;

  friend bool operator==(const FragmentWrite&, const FragmentWrite&) = default;
};

/// Commit record: the single commit point of a transaction (§5 step 5).
/// Writing this record commits; a crash before it aborts with no effect.
struct TxnCommitRec {
  TxnId txn;
  uint64_t ts_packed = 0;
  std::vector<FragmentWrite> writes;
  /// The writes form one multi-item atomic set whose deltas cancel (a
  /// transfer/order). Auditors check Σ delta == 0 per such record — the
  /// transaction-scoped cross-item conservation invariant. Encoded as an
  /// optional trailing flag only when set, so every pre-existing commit
  /// record keeps its byte-identical encoding.
  bool atomic_set = false;

  friend bool operator==(const TxnCommitRec&, const TxnCommitRec&) = default;
};

/// Marks that a committed transaction's writes reached the database image
/// (§5 step 6); lets recovery skip the redo for this transaction.
struct TxnAppliedRec {
  TxnId txn;
  friend bool operator==(const TxnAppliedRec&, const TxnAppliedRec&) = default;
};

/// Vm birth: `[database-actions, message-sequence]` as one record (§4.2).
/// The local fragment is reduced by `amount`, which is now in flight to
/// `dst`. The Vm exists from the instant this record is forced.
struct VmCreateRec {
  VmId vm;
  SiteId dst;
  ItemId item;
  int64_t amount = 0;
  /// The transaction (or request id) on whose behalf the Vm travels; carried
  /// inside the real messages so the recipient can match replies (§5).
  TxnId for_txn;
  FragmentWrite write;

  friend bool operator==(const VmCreateRec&, const VmCreateRec&) = default;
};

/// Vm death at the recipient: `[database-actions]` (§4.2). Forcing this
/// record is the atomic acceptance; the accepted-vm set in this log is the
/// duplicate filter that survives crashes.
struct VmAcceptRec {
  VmId vm;
  SiteId src;
  ItemId item;
  int64_t amount = 0;
  TxnId for_txn;
  FragmentWrite write;

  friend bool operator==(const VmAcceptRec&, const VmAcceptRec&) = default;
};

/// Sender learned (durably) that `vm` was accepted: retransmission stops and
/// the Vm leaves the outbox.
struct VmAckedRec {
  VmId vm;
  friend bool operator==(const VmAckedRec&, const VmAckedRec&) = default;
};

/// Written at the end of each recovery: bumps the site incarnation and
/// restores the Lamport counter watermark.
struct RecoveryRec {
  uint64_t incarnation = 0;
  uint64_t clock_counter = 0;
  friend bool operator==(const RecoveryRec&, const RecoveryRec&) = default;
};

/// Checkpoint marker: the stable database image reflects the log up to and
/// including this record's LSN.
struct CheckpointRec {
  friend bool operator==(const CheckpointRec&, const CheckpointRec&) = default;
};

// ---- Records used only by the traditional (baseline) systems --------------

/// 2PC participant prepare record: the transaction's proposed writes are
/// durable and the participant has entered its uncertainty window. For
/// replicated values, FragmentWrite::post_ts_packed carries the version.
struct PrepareRec {
  TxnId txn;
  SiteId coordinator;
  std::vector<FragmentWrite> writes;
  friend bool operator==(const PrepareRec&, const PrepareRec&) = default;
};

/// 2PC decision record (coordinator commit point, and participant's durable
/// learning of the outcome).
struct DecisionRec {
  TxnId txn;
  bool committed = false;
  friend bool operator==(const DecisionRec&, const DecisionRec&) = default;
};

using LogRecord =
    std::variant<TxnCommitRec, TxnAppliedRec, VmCreateRec, VmAcceptRec,
                 VmAckedRec, RecoveryRec, CheckpointRec, PrepareRec,
                 DecisionRec>;

/// Serializes a record (type byte + payload + CRC32C trailer).
std::string EncodeRecord(const LogRecord& record);

/// Appends the serialized record to *out without intermediate copies: the
/// checksum slot is reserved up front, the body is encoded in place, and the
/// CRC is patched afterwards. This is the batch-append encode path — one
/// allocation-amortized write per record instead of encode-into-temporary
/// plus copy.
void EncodeRecordTo(const LogRecord& record, std::string* out);

/// Decodes a record produced by EncodeRecord, verifying the checksum.
StatusOr<LogRecord> DecodeRecord(std::string_view data);

/// Human-readable one-liner for traces and debugging.
std::string RecordToString(const LogRecord& record);

}  // namespace dvp::wal
