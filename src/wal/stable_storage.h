// Simulated stable storage for one site: an append-only, checksummed log and
// a checkpointed database image. A Site's volatile state (caches, lock
// table, in-flight transactions, transport buffers) dies with a crash; the
// StableStorage object survives — it is owned by the cluster harness, not by
// the Site, mirroring disk vs RAM.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "wal/record.h"

namespace dvp::wal {

/// Stable image of one fragment (the site's share of one data item).
struct ImageEntry {
  int64_t value = 0;
  uint64_t ts_packed = 0;
};

class StableStorage {
 public:
  explicit StableStorage(SiteId site) : site_(site) {}

  SiteId site() const { return site_; }

  // ---- Log ----------------------------------------------------------------
  //
  // The log has two watermarks: `log_size()` counts every appended record,
  // `durable_size()` counts the forced prefix. A synchronous Append() keeps
  // them equal; the group-commit path widens the gap with AppendBuffered()
  // and closes it with ForceTail(). A crash loses exactly the records in
  // [durable_size, log_size) — the unforced tail is volatile by construction.

  /// Appends and forces a record; returns its LSN (dense, 0-based). The
  /// force covers any buffered tail too, so the durable log is always a
  /// prefix of append order even when buffered and synchronous appenders
  /// interleave.
  Lsn Append(const LogRecord& record);

  /// Appends without forcing: the record is in the volatile batch buffer
  /// until the next ForceTail()/Append() and is lost by DropUnforcedTail().
  Lsn AppendBuffered(const LogRecord& record);

  /// Forces every buffered record as ONE multi-record group (one force,
  /// regardless of group size). Returns the number of records forced;
  /// returns 0 — and counts no force — when the tail is already clean.
  uint64_t ForceTail();

  /// Discards the unforced tail (crash path): a crash interrupts the batch
  /// buffer before its covering force, so those records never existed.
  /// Returns the number of records dropped.
  uint64_t DropUnforcedTail();

  /// Number of records appended (forced or not).
  uint64_t log_size() const { return encoded_.size(); }

  /// Number of records in the forced prefix — the log that survives a crash.
  uint64_t durable_size() const { return durable_size_; }

  /// Records / bytes sitting in the unforced tail right now.
  uint64_t unforced_records() const { return encoded_.size() - durable_size_; }
  uint64_t unforced_bytes() const { return log_bytes_ - durable_bytes_; }

  /// Decodes the record at `lsn`.
  StatusOr<LogRecord> Read(Lsn lsn) const;

  /// Replays records with LSN in [from, log_size) through `fn`, verifying
  /// checksums. Stops with Corruption on a damaged record.
  Status Scan(uint64_t from,
              const std::function<void(Lsn, const LogRecord&)>& fn) const;

  /// Like Scan, but bounded to [from, upto) and tolerant of a damaged tail:
  /// replay stops (returning OK) at the first undecodable record, reporting
  /// how far it got in *valid_upto. A fully intact range yields
  /// *valid_upto == upto. This is the read path recovery uses — a torn or
  /// bit-rotted tail truncates the log instead of losing the site.
  Status ScanPrefix(uint64_t from, uint64_t upto,
                    const std::function<void(Lsn, const LogRecord&)>& fn,
                    uint64_t* valid_upto) const;

  /// Discards every record with LSN >= new_size (recovery drops a damaged
  /// tail with this before appending new records after it).
  void Truncate(uint64_t new_size);

  /// Total stable-storage forces — the E10 overhead metric. One synchronous
  /// Append is one force; one ForceTail over an N-record group is also one.
  uint64_t forces() const { return forces_; }
  /// Total records ever appended (monotone; Truncate does not rewind it).
  uint64_t appends() const { return appends_; }
  /// Total encoded log bytes.
  uint64_t log_bytes() const { return log_bytes_; }

  // ---- Group accounting (bench attribution) --------------------------------

  /// Records / encoded bytes covered by the most recent force.
  uint64_t last_group_records() const { return last_group_records_; }
  uint64_t last_group_bytes() const { return last_group_bytes_; }
  /// Largest group any single force has covered.
  uint64_t max_group_records() const { return max_group_records_; }
  uint64_t max_group_bytes() const { return max_group_bytes_; }

  // ---- Database image (checkpoint target) ---------------------------------

  /// Overwrites the stable image of one fragment.
  void WriteImage(ItemId item, int64_t value, uint64_t ts_packed) {
    image_[item] = ImageEntry{value, ts_packed};
  }

  const std::map<ItemId, ImageEntry>& image() const { return image_; }

  /// The image reflects log records with LSN < checkpoint_upto.
  void set_checkpoint_upto(uint64_t upto) { checkpoint_upto_ = upto; }
  uint64_t checkpoint_upto() const { return checkpoint_upto_; }

  // ---- Site incarnation ----------------------------------------------------

  /// Bumped by each recovery; distinguishes reborn sites.
  uint64_t incarnation() const { return incarnation_; }
  void set_incarnation(uint64_t inc) { incarnation_ = inc; }

  // ---- Test hooks ----------------------------------------------------------

  /// Invoked after each append; crash-injection tests use it to kill the
  /// site between a log force and the in-memory update that follows it.
  void set_post_append_hook(std::function<void(Lsn, const LogRecord&)> hook) {
    post_append_hook_ = std::move(hook);
  }

  /// Flips one byte of an encoded record (corruption tests).
  Status CorruptRecordForTest(Lsn lsn, size_t byte_offset);

  /// Models a torn write: the final record keeps only its first `keep_bytes`
  /// bytes, as if the crash interrupted the force mid-sector.
  Status TearTailForTest(size_t keep_bytes);

  /// Encoded size of one record (lets tests iterate byte offsets).
  StatusOr<size_t> RecordSizeForTest(Lsn lsn) const;

 private:
  Lsn AppendEncoded(const LogRecord& record);

  SiteId site_;
  std::vector<std::string> encoded_;
  std::map<ItemId, ImageEntry> image_;
  uint64_t checkpoint_upto_ = 0;
  uint64_t incarnation_ = 0;
  uint64_t forces_ = 0;
  uint64_t appends_ = 0;
  uint64_t log_bytes_ = 0;
  uint64_t durable_size_ = 0;
  uint64_t durable_bytes_ = 0;
  uint64_t last_group_records_ = 0;
  uint64_t last_group_bytes_ = 0;
  uint64_t max_group_records_ = 0;
  uint64_t max_group_bytes_ = 0;
  std::function<void(Lsn, const LogRecord&)> post_append_hook_;
};

}  // namespace dvp::wal
