#include "wal/encoding.h"

#include <array>
#include <cstring>

namespace dvp::wal {

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  dst->append(buf, 8);
}

void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

void PutVarsint64(std::string* dst, int64_t v) {
  uint64_t zz = (static_cast<uint64_t>(v) << 1) ^
                static_cast<uint64_t>(v >> 63);
  PutVarint64(dst, zz);
}

void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutVarint64(dst, s.size());
  dst->append(s.data(), s.size());
}

bool Decoder::GetFixed32(uint32_t* v) {
  if (data_.size() < 4) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<unsigned char>(data_[i]))
           << (8 * i);
  }
  *v = out;
  data_.remove_prefix(4);
  return true;
}

bool Decoder::GetFixed64(uint64_t* v) {
  if (data_.size() < 8) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<unsigned char>(data_[i]))
           << (8 * i);
  }
  *v = out;
  data_.remove_prefix(8);
  return true;
}

bool Decoder::GetVarint64(uint64_t* v) {
  uint64_t out = 0;
  int shift = 0;
  size_t i = 0;
  while (i < data_.size() && shift <= 63) {
    uint8_t byte = static_cast<uint8_t>(data_[i]);
    out |= static_cast<uint64_t>(byte & 0x7f) << shift;
    ++i;
    if ((byte & 0x80) == 0) {
      *v = out;
      data_.remove_prefix(i);
      return true;
    }
    shift += 7;
  }
  return false;
}

bool Decoder::GetVarsint64(int64_t* v) {
  uint64_t zz;
  if (!GetVarint64(&zz)) return false;
  *v = static_cast<int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
  return true;
}

bool Decoder::GetLengthPrefixed(std::string_view* s) {
  uint64_t len;
  if (!GetVarint64(&len)) return false;
  if (data_.size() < len) return false;
  *s = data_.substr(0, len);
  data_.remove_prefix(len);
  return true;
}

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  constexpr uint32_t kPoly = 0x82f63b78;  // reflected Castagnoli
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32c(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t crc = 0xffffffff;
  for (char c : data) {
    crc = kTable[(crc ^ static_cast<uint8_t>(c)) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xffffffff;
}

}  // namespace dvp::wal
