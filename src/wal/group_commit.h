// Group-commit force scheduler: appends from concurrent transactions at a
// site accumulate in StableStorage's volatile batch buffer and are forced as
// ONE multi-record group. The policy is the classic one (Gray & Lamport's
// log-force batching): force when the batch reaches K records or B bytes, or
// when a T-µs sim-time timer expires — whichever comes first.
//
// Callers that need to know when their record is durable pass an on_durable
// callback; it runs when the covering force completes. This is how the
// TxnManager defers commit completion and the VmManager defers transfer
// sends and acceptance acks to the force that makes them real. Disabled
// (the default), Append degenerates to a synchronous force-per-append with
// the callback run inline — byte-identical to the pre-group-commit system.
//
// Lifetime: the scheduler is part of the site's VOLATILE state (it dies with
// a crash, its pending callbacks with it); the StableStorage it wraps is the
// disk and survives. The crash path (Site::Crash) drops the unforced tail,
// so a crash mid-batch loses exactly the records whose callbacks never ran.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/histogram.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "runtime/runtime.h"
#include "wal/stable_storage.h"

namespace dvp::obs {
class TraceRecorder;
}

namespace dvp::wal {

struct GroupCommitOptions {
  /// Off by default: every Append forces synchronously, callbacks inline.
  bool enabled = false;
  /// Force when the batch holds this many records (K).
  uint32_t max_records = 8;
  /// ... or this many encoded bytes (B).
  uint64_t max_bytes = 1 << 16;
  /// ... or this much sim-time after the batch's oldest append (T).
  SimTime max_delay_us = 1000;
};

class GroupCommitLog {
 public:
  GroupCommitLog(runtime::Runtime* rt, StableStorage* storage,
                 obs::MetricsRegistry* metrics, GroupCommitOptions options,
                 obs::TraceRecorder* trace = nullptr)
      : rt_(rt),
        storage_(storage),
        trace_(trace),
        options_(options),
        m_group_forces_(obs::CounterIn(metrics, "wal.group_forces")),
        m_group_records_(obs::CounterIn(metrics, "wal.group_records")),
        alive_(std::make_shared<bool>(true)) {}
  ~GroupCommitLog() { *alive_ = false; }
  GroupCommitLog(const GroupCommitLog&) = delete;
  GroupCommitLog& operator=(const GroupCommitLog&) = delete;

  /// Appends `record`; `on_durable` (optional) runs once the record is
  /// covered by a force. Disabled: synchronous force + inline callback.
  /// Enabled: buffered append; the callback runs at the K/B/T-policy force.
  Lsn Append(const LogRecord& record,
             std::function<void()> on_durable = nullptr);

  /// Forces the batch now and runs every pending callback whose record the
  /// force covered. Also runs callbacks that an interleaved synchronous
  /// StableStorage::Append already made durable. No-op when nothing pends.
  void Flush();

  /// Runs `fn` once the log's current unforced tail is durable — immediately
  /// when nothing pends (or group commit is disabled), otherwise at the next
  /// covering force. Unlike Append's on_durable this writes no record: it is
  /// for actions that must not outrun durability of state they *observed*
  /// (the snapshot reply gate — a captured cut may reflect buffered commits,
  /// so the reply waits for the force that makes them real; a crash before
  /// it drops the callback with the rest of the volatile scheduler).
  void OnNextForce(std::function<void()> fn);

  bool enabled() const { return options_.enabled; }
  const GroupCommitOptions& options() const { return options_; }
  StableStorage* storage() const { return storage_; }

  /// Callbacks waiting for a covering force (test/debug visibility).
  size_t pending_callbacks() const { return callbacks_.size(); }

 private:
  void ArmTimer();

  runtime::Runtime* rt_;
  StableStorage* storage_;
  obs::TraceRecorder* trace_;
  GroupCommitOptions options_;
  obs::Counter* m_group_forces_;
  obs::Counter* m_group_records_;
  std::vector<std::function<void()>> callbacks_;
  bool timer_armed_ = false;
  std::shared_ptr<bool> alive_;
};

}  // namespace dvp::wal
