#include "wal/record.h"

#include <sstream>

namespace dvp::wal {

namespace {

enum RecordType : uint8_t {
  kTxnCommit = 1,
  kTxnApplied = 2,
  kVmCreate = 3,
  kVmAccept = 4,
  kVmAcked = 5,
  kRecovery = 6,
  kCheckpoint = 7,
  kPrepare = 8,
  kDecision = 9,
};

void EncodeFragmentWrite(std::string* out, const FragmentWrite& w) {
  PutVarint64(out, w.item.value());
  PutVarsint64(out, w.post_value);
  PutVarsint64(out, w.delta);
  PutVarint64(out, w.post_ts_packed);
}

bool DecodeFragmentWrite(Decoder* dec, FragmentWrite* w) {
  uint64_t item;
  if (!dec->GetVarint64(&item)) return false;
  w->item = ItemId(static_cast<uint32_t>(item));
  return dec->GetVarsint64(&w->post_value) && dec->GetVarsint64(&w->delta) &&
         dec->GetVarint64(&w->post_ts_packed);
}

struct Encoder {
  std::string* out;

  void operator()(const TxnCommitRec& r) {
    out->push_back(static_cast<char>(kTxnCommit));
    PutVarint64(out, r.txn.value());
    PutVarint64(out, r.ts_packed);
    PutVarint64(out, r.writes.size());
    for (const auto& w : r.writes) EncodeFragmentWrite(out, w);
    // Optional trailing flag: only atomic-set records carry it, keeping the
    // legacy encoding byte-identical for everything else.
    if (r.atomic_set) PutVarint64(out, 1);
  }
  void operator()(const TxnAppliedRec& r) {
    out->push_back(static_cast<char>(kTxnApplied));
    PutVarint64(out, r.txn.value());
  }
  void operator()(const VmCreateRec& r) {
    out->push_back(static_cast<char>(kVmCreate));
    PutVarint64(out, r.vm.value());
    PutVarint64(out, r.dst.value());
    PutVarint64(out, r.item.value());
    PutVarsint64(out, r.amount);
    PutVarint64(out, r.for_txn.value());
    EncodeFragmentWrite(out, r.write);
  }
  void operator()(const VmAcceptRec& r) {
    out->push_back(static_cast<char>(kVmAccept));
    PutVarint64(out, r.vm.value());
    PutVarint64(out, r.src.value());
    PutVarint64(out, r.item.value());
    PutVarsint64(out, r.amount);
    PutVarint64(out, r.for_txn.value());
    EncodeFragmentWrite(out, r.write);
  }
  void operator()(const VmAckedRec& r) {
    out->push_back(static_cast<char>(kVmAcked));
    PutVarint64(out, r.vm.value());
  }
  void operator()(const RecoveryRec& r) {
    out->push_back(static_cast<char>(kRecovery));
    PutVarint64(out, r.incarnation);
    PutVarint64(out, r.clock_counter);
  }
  void operator()(const CheckpointRec&) {
    out->push_back(static_cast<char>(kCheckpoint));
  }
  void operator()(const PrepareRec& r) {
    out->push_back(static_cast<char>(kPrepare));
    PutVarint64(out, r.txn.value());
    PutVarint64(out, r.coordinator.value());
    PutVarint64(out, r.writes.size());
    for (const auto& w : r.writes) EncodeFragmentWrite(out, w);
  }
  void operator()(const DecisionRec& r) {
    out->push_back(static_cast<char>(kDecision));
    PutVarint64(out, r.txn.value());
    out->push_back(r.committed ? 1 : 0);
  }
};

}  // namespace

std::string EncodeRecord(const LogRecord& record) {
  std::string out;
  EncodeRecordTo(record, &out);
  return out;
}

void EncodeRecordTo(const LogRecord& record, std::string* out) {
  const size_t crc_at = out->size();
  PutFixed32(out, 0);  // checksum slot, patched below
  std::visit(Encoder{out}, record);
  std::string_view body(out->data() + crc_at + 4, out->size() - crc_at - 4);
  uint32_t crc = Crc32c(body);
  (*out)[crc_at + 0] = static_cast<char>(crc & 0xff);
  (*out)[crc_at + 1] = static_cast<char>((crc >> 8) & 0xff);
  (*out)[crc_at + 2] = static_cast<char>((crc >> 16) & 0xff);
  (*out)[crc_at + 3] = static_cast<char>((crc >> 24) & 0xff);
}

StatusOr<LogRecord> DecodeRecord(std::string_view data) {
  Decoder dec(data);
  uint32_t crc;
  if (!dec.GetFixed32(&crc)) {
    return Status::Corruption("record too short for checksum");
  }
  std::string_view body = data.substr(4);
  if (Crc32c(body) != crc) {
    return Status::Corruption("record checksum mismatch");
  }
  if (body.empty()) return Status::Corruption("empty record body");
  uint8_t type = static_cast<uint8_t>(body[0]);
  Decoder d(body.substr(1));
  auto bad = [] { return Status::Corruption("truncated record body"); };

  switch (type) {
    case kTxnCommit: {
      TxnCommitRec r;
      uint64_t txn, n;
      if (!d.GetVarint64(&txn) || !d.GetVarint64(&r.ts_packed) ||
          !d.GetVarint64(&n)) {
        return bad();
      }
      r.txn = TxnId(txn);
      r.writes.resize(n);
      for (auto& w : r.writes) {
        if (!DecodeFragmentWrite(&d, &w)) return bad();
      }
      // Optional atomic-set flag. Anything other than exactly one trailing
      // varint with value 1 — a zero flag, garbage after it — is a malformed
      // frame and is rejected, never silently accepted.
      if (!d.empty()) {
        uint64_t flag;
        if (!d.GetVarint64(&flag) || flag != 1 || !d.empty()) {
          return Status::Corruption("bad atomic-set trailer");
        }
        r.atomic_set = true;
      }
      return LogRecord(std::move(r));
    }
    case kTxnApplied: {
      uint64_t txn;
      if (!d.GetVarint64(&txn)) return bad();
      return LogRecord(TxnAppliedRec{TxnId(txn)});
    }
    case kVmCreate: {
      VmCreateRec r;
      uint64_t vm, dst, item, txn;
      if (!d.GetVarint64(&vm) || !d.GetVarint64(&dst) ||
          !d.GetVarint64(&item) || !d.GetVarsint64(&r.amount) ||
          !d.GetVarint64(&txn) || !DecodeFragmentWrite(&d, &r.write)) {
        return bad();
      }
      r.vm = VmId(vm);
      r.dst = SiteId(static_cast<uint32_t>(dst));
      r.item = ItemId(static_cast<uint32_t>(item));
      r.for_txn = TxnId(txn);
      return LogRecord(std::move(r));
    }
    case kVmAccept: {
      VmAcceptRec r;
      uint64_t vm, src, item, txn;
      if (!d.GetVarint64(&vm) || !d.GetVarint64(&src) ||
          !d.GetVarint64(&item) || !d.GetVarsint64(&r.amount) ||
          !d.GetVarint64(&txn) || !DecodeFragmentWrite(&d, &r.write)) {
        return bad();
      }
      r.vm = VmId(vm);
      r.src = SiteId(static_cast<uint32_t>(src));
      r.item = ItemId(static_cast<uint32_t>(item));
      r.for_txn = TxnId(txn);
      return LogRecord(std::move(r));
    }
    case kVmAcked: {
      uint64_t vm;
      if (!d.GetVarint64(&vm)) return bad();
      return LogRecord(VmAckedRec{VmId(vm)});
    }
    case kRecovery: {
      RecoveryRec r;
      if (!d.GetVarint64(&r.incarnation) || !d.GetVarint64(&r.clock_counter)) {
        return bad();
      }
      return LogRecord(r);
    }
    case kCheckpoint:
      return LogRecord(CheckpointRec{});
    case kPrepare: {
      PrepareRec r;
      uint64_t txn, coord, n;
      if (!d.GetVarint64(&txn) || !d.GetVarint64(&coord) ||
          !d.GetVarint64(&n)) {
        return bad();
      }
      r.txn = TxnId(txn);
      r.coordinator = SiteId(static_cast<uint32_t>(coord));
      r.writes.resize(n);
      for (auto& w : r.writes) {
        if (!DecodeFragmentWrite(&d, &w)) return bad();
      }
      return LogRecord(std::move(r));
    }
    case kDecision: {
      // The flag byte (0/1) is also a valid one-byte varint.
      uint64_t txn, flag;
      if (!d.GetVarint64(&txn) || !d.GetVarint64(&flag)) return bad();
      DecisionRec r;
      r.txn = TxnId(txn);
      r.committed = flag != 0;
      return LogRecord(r);
    }
    default:
      return Status::Corruption("unknown record type " +
                                std::to_string(int(type)));
  }
}

namespace {
struct Printer {
  std::ostringstream& os;
  void operator()(const TxnCommitRec& r) {
    os << "TxnCommit{txn=" << r.txn.value() << " writes=" << r.writes.size()
       << (r.atomic_set ? " atomic}" : "}");
  }
  void operator()(const TxnAppliedRec& r) {
    os << "TxnApplied{txn=" << r.txn.value() << "}";
  }
  void operator()(const VmCreateRec& r) {
    os << "VmCreate{vm=" << r.vm.value() << " dst=" << r.dst.value()
       << " item=" << r.item.value() << " amount=" << r.amount << "}";
  }
  void operator()(const VmAcceptRec& r) {
    os << "VmAccept{vm=" << r.vm.value() << " src=" << r.src.value()
       << " item=" << r.item.value() << " amount=" << r.amount << "}";
  }
  void operator()(const VmAckedRec& r) { os << "VmAcked{vm=" << r.vm.value() << "}"; }
  void operator()(const PrepareRec& r) {
    os << "Prepare{txn=" << r.txn.value() << " coord=" << r.coordinator.value()
       << " writes=" << r.writes.size() << "}";
  }
  void operator()(const DecisionRec& r) {
    os << "Decision{txn=" << r.txn.value()
       << (r.committed ? " commit}" : " abort}");
  }
  void operator()(const RecoveryRec& r) {
    os << "Recovery{incarnation=" << r.incarnation << "}";
  }
  void operator()(const CheckpointRec&) { os << "Checkpoint{}"; }
};
}  // namespace

std::string RecordToString(const LogRecord& record) {
  std::ostringstream os;
  std::visit(Printer{os}, record);
  return os.str();
}

}  // namespace dvp::wal
