// The transaction manager for one site: implements the seven-step protocol
// of §5 (lock → request → await/timeout → compute → force commit record →
// apply → unlock), the write-only fast path, the remote request handler (the
// implicit Rds transactions of §6), and the iterative full-read drain.
//
// Non-blocking by construction: every submitted transaction reaches a
// commit/abort decision within max(local work, timeout) — no step ever waits
// on a lock, a failure detector, or another site's decision.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "cc/lock_manager.h"
#include "cc/policy.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/types.h"
#include "dvpcore/value_store.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "proto/wire.h"
#include "runtime/runtime.h"
#include "txn/txn.h"
#include "vm/vm_manager.h"
#include "wal/group_commit.h"

namespace dvp::obs {
class TraceRecorder;
}

namespace dvp::placement {
class PlacementManager;
}

namespace dvp::txn {

/// How shortfall-request fan-out targets are chosen.
enum class TargetPolicy : uint8_t {
  /// First k sites by id. Deterministic and reproducible, but with a fanout
  /// below the cluster size it permanently starves high-id sites — test-only;
  /// benches and chaos default to kRandom or kSurplus.
  kFirstK,
  /// Fisher-Yates randomized fan-out (the livelock mitigation of §8).
  kRandom,
  /// Surplus-hint-directed: rank targets by fresh advertised surplus and
  /// split the shortfall proportionally to what each can ship; falls back to
  /// kRandom whenever no fresh hints exist for the item.
  kSurplus,
};

struct TxnManagerOptions {
  /// §5 step 3: redistribution replies must arrive within this window or the
  /// transaction aborts.
  SimTime timeout_us = 300'000;
  /// Read retries (both modes) re-send their (non-critical, datagram)
  /// requests until every site has answered — a remote site silently ignores
  /// a full-read request while it still has outstanding Vm for the item, so
  /// the reader must poll (§5's optional request retry), and a snapshot
  /// round can lose requests or replies outright. This is the BASE interval
  /// of a capped exponential backoff (net::backoff): attempt k waits
  /// Jittered(Interval(read_retry_us, read_retry_max_us, k)), so a healthy
  /// cluster retries fast while a partitioned one stops hammering the wire.
  SimTime read_retry_us = 40'000;
  /// Cap of the read-retry backoff (see read_retry_us).
  SimTime read_retry_max_us = 320'000;
  cc::CcScheme scheme = cc::CcScheme::kConc1;
  /// How many remote sites receive a shortfall request; 0 = all other sites.
  uint32_t request_fanout = 0;
  /// When true, the shortfall is divided across the fan-out targets instead
  /// of asking each for the full amount (less over-shipping, more aborts
  /// when one target cannot contribute its share). The split is exact: the
  /// amounts sum to the shortfall (base share everywhere, remainder spread
  /// one unit at a time), never the up-to-k-1 over-ask of ceil division.
  bool divide_shortfall = false;
  /// Fan-out target selection policy; see TargetPolicy.
  TargetPolicy targeting = TargetPolicy::kFirstK;
  /// Paced re-request rounds for a gather still short after the first round:
  /// every interval the *remaining* shortfall is re-sent to freshly chosen
  /// targets until the timeout decides. 0 = single round (seed behavior).
  SimTime gather_retry_us = 0;
  /// Simulated local computation between "all values gathered" and the
  /// commit-record force (§5 step 4→5). Locks stay held, so this is the
  /// window in which contention is visible (0 = instantaneous commit).
  SimTime local_compute_us = 0;
  /// Conc1 acceptance-stamp policy (see cc::AcceptStampMode); ignored under
  /// Conc2.
  cc::AcceptStampMode accept_stamp = cc::AcceptStampMode::kCreationTs;
  /// Abort-on-cycle-risk timeout for multi-item atomic sets: when > 0, an
  /// atomic_set transaction arms min(timeout_us, multiop_timeout_us) instead
  /// of the full window. Multi-ops hold several locks at once, so giving up
  /// earlier bounds the time their lock footprint can starve opposing
  /// multi-ops (the try-lock scheme never deadlocks; this caps livelock).
  /// 0 = same timeout as single-item transactions.
  SimTime multiop_timeout_us = 0;
};

class TxnManager {
 public:
  TxnManager(SiteId self, uint32_t num_sites, runtime::Runtime* rt,
             wal::GroupCommitLog* log, core::ValueStore* store,
             cc::LockManager* locks, vm::VmManager* vm,
             net::Transport* transport, LamportClock* clock,
             obs::MetricsRegistry* metrics, Rng rng, TxnManagerOptions options,
             obs::TraceRecorder* trace = nullptr,
             placement::PlacementManager* placement = nullptr);

  /// Submits a transaction at this site. The callback always fires exactly
  /// once (commit, abort, or site failure) — see CrashAbortAll.
  TxnId Begin(const TxnSpec& spec, TxnCallback cb);

  /// Handles a request from another site's transaction (or this site's —
  /// i = j is legal in the paper and arises in single-site clusters).
  void OnRequest(SiteId from, const proto::RequestMsg& msg);

  /// Snapshot-read request handler: captures the resident fragments and
  /// per-item Vm ledgers at this instant, then sends the reply at the next
  /// covering log force (a reply must never leak a cut containing commits a
  /// crash could still roll back). Takes no locks, moves no value.
  void OnSnapshotReq(SiteId from, const proto::SnapshotReqMsg& msg);

  /// Snapshot-read reply handler for a read pending at this site. Keeps the
  /// latest reply per site; once every remote has answered, checks the
  /// balance certificate and completes or opens another round.
  void OnSnapshotReply(SiteId from, const proto::SnapshotReplyMsg& msg);

  /// "Nothing to ship" feedback for a surplus-directed request: zeroes the
  /// placement cache entry for (from, item) so the next gather redirects.
  void OnSurplusNack(SiteId from, const proto::SurplusNackMsg& msg);

  /// Routes an incoming Vm transfer. Returns true if a pending transaction
  /// holding the item's lock absorbed it; otherwise the caller should fall
  /// back to the unlocked acceptance path.
  bool RouteVmTransfer(SiteId from, const proto::VmTransferMsg& msg);

  /// Redistribution-only transaction (§5): fire-and-forget prefetch of
  /// `amount` of `item` from other sites. No locks held, no reply awaited.
  void Prefetch(ItemId item, core::Value amount);

  /// Rds push: ship `amount` of `item` to `dst` right now. Fails if the item
  /// is locked or the fragment cannot cover the amount.
  Status SendValue(SiteId dst, ItemId item, core::Value amount);

  /// Crash path: every pending transaction's callback fires with
  /// kAbortSiteFailure — unless its commit record was already FORCED, in
  /// which case it reports committed (the commit point had passed). A commit
  /// record still sitting in the unforced group-commit batch dies with the
  /// crash, so its transaction correctly reports site failure.
  void CrashAbortAll();

  size_t pending_count() const { return pending_.size(); }
  const TxnManagerOptions& options() const { return options_; }

  /// Chaos clock-skew knob: transactions submitted from now on arm their §5
  /// timeout at timeout_us * permille / 1000 — a site whose clock runs slow
  /// (permille > 1000) waits longer before giving up, one that runs fast
  /// gives up sooner. The non-blocking bound scales accordingly. Volatile:
  /// a crash/rebuild resets it to 1000.
  void set_timeout_skew_permille(uint32_t permille) {
    timeout_skew_permille_ = permille == 0 ? 1 : permille;
  }
  uint32_t timeout_skew_permille() const { return timeout_skew_permille_; }

 private:
  struct AbsorbedCredit {
    SiteId src;
    ItemId item;
    core::Value amount = 0;
  };

  struct ReadState {
    uint32_t round = 1;
    /// Replies this round: src → (accept_count, create_count) at reply time.
    /// Both are needed: an acceptance can land just after the acceptor's
    /// reply and escape the accept comparison, but the Vm's creation always
    /// precedes the creator's own next reply (its outbox must drain first),
    /// so the creator's create_count catches the movement.
    std::map<SiteId, std::pair<uint64_t, uint64_t>> counters;
    std::map<SiteId, std::pair<uint64_t, uint64_t>> prev_counters;
    bool this_round_nonzero = false;
    bool prev_round_all_zero = false;
    bool done = false;
  };

  /// State of one snapshot read (ReadMode::kSnapshot). The reader assembles
  /// Σ fragments + Σ (created − accepted) ledger values from the latest
  /// reply per site plus a fresh local capture; the per-site identity
  ///   fragment ≡ initial + accepted_value − created_value + Σ local commits
  /// makes ANY such combination an exact total under the windowed
  /// commit-subset rule, so correctness never depends on which round a reply
  /// came from. The balance certificate (Σ created == Σ accepted, counts and
  /// values, per item) is the quiescence signal that ends the read: while
  /// value is visibly in flight another round is opened, bounded by
  /// kSnapshotMaxRounds — past the cap the (still exact) cut is accepted.
  struct SnapState {
    std::vector<ItemId> items;
    uint32_t round = 1;
    /// Backoff exponent for paced retry rounds (see read_retry_us).
    uint32_t attempts = 0;
    struct Reply {
      uint32_t round = 0;
      std::vector<proto::SnapshotEntry> entries;
    };
    /// Latest reply per remote site (a higher round supersedes).
    std::map<SiteId, Reply> replies;
    /// Assembled totals per item, valid once done.
    std::map<ItemId, core::Value> totals;
    bool done = false;
  };

  struct PendingTxn {
    TxnId id;
    Timestamp ts;
    TxnSpec spec;
    std::vector<ItemId> items;
    /// Remaining shortfall per decrement item still short.
    std::map<ItemId, core::Value> shortfall;
    std::map<ItemId, ReadState> reads;
    SnapState snap;
    runtime::TimerHandle timeout;
    runtime::TimerHandle read_retry;
    runtime::TimerHandle gather_retry;
    runtime::TimerHandle snap_retry;
    TxnCallback cb;
    SimTime start_time = 0;
    uint32_t rounds = 0;
    /// Read-retry timer firings (the backoff exponent for full reads).
    uint32_t read_retry_attempts = 0;
    bool committed = false;
    bool commit_scheduled = false;
    /// Value this transaction absorbed mid-gather, per (src, item) — tracked
    /// only for atomic_set specs so an abort can return every partial gather
    /// to where it came from via ordinary Rds sends.
    std::vector<AbsorbedCredit> absorbed;
  };

  void SendRequests(PendingTxn& t,
                    const std::vector<proto::RequestPart>& parts,
                    uint32_t round);
  void Reevaluate(PendingTxn& t);
  void ScheduleCommit(PendingTxn& t);
  void Commit(PendingTxn& t);
  void Abort(PendingTxn& t, TxnOutcome outcome, const std::string& why);
  void Finish(PendingTxn& t, TxnResult result);
  void HandleReadReply(PendingTxn& t, const proto::VmTransferMsg& msg);
  void SendReadRound(PendingTxn& t, ItemId item, bool only_missing);
  void ArmReadRetry(PendingTxn& t);
  void ArmGatherRetry(PendingTxn& t);
  /// Sends the current snapshot round's request. `only_stale` (the retry
  /// path) re-asks only sites whose latest reply predates the round.
  void SendSnapshotRound(PendingTxn& t, bool only_stale);
  /// Evaluates the balance certificate over the latest-reply-per-site set
  /// plus a fresh local capture; completes the read or advances the round.
  void TryCompleteSnapshot(PendingTxn& t);
  void ArmSnapshotRetry(PendingTxn& t);
  std::vector<SiteId> PickTargets();
  /// Counter for a final verdict (txn.committed / txn.abort.*), and the
  /// closing edge of the transaction's trace span.
  void NoteOutcome(TxnId id, TxnOutcome outcome);
  /// Commit-side placement metrics: the local-commit counter (zero gather
  /// rounds — the fast path the rebalancer works to hit) and the rounds
  /// histogram.
  void NoteCommitted(const PendingTxn& t);

  SiteId self_;
  uint32_t num_sites_;
  runtime::Runtime* rt_;
  wal::GroupCommitLog* log_;
  core::ValueStore* store_;
  cc::LockManager* locks_;
  vm::VmManager* vm_;
  net::Transport* transport_;
  LamportClock* clock_;
  obs::TraceRecorder* trace_;
  placement::PlacementManager* placement_;
  Rng rng_;
  TxnManagerOptions options_;
  cc::CcPolicy policy_;
  uint32_t timeout_skew_permille_ = 1000;

  /// Final-verdict counters indexed by TxnOutcome (txn.committed first).
  obs::Counter* m_outcome_[6];
  obs::Counter* m_req_sent_;
  obs::Counter* m_req_msgs_;
  obs::Counter* m_req_received_;
  obs::Counter* m_req_ignored_locked_;
  obs::Counter* m_req_ignored_cc_;
  obs::Counter* m_req_ignored_outstanding_;
  obs::Counter* m_req_ignored_empty_;
  obs::Counter* m_req_honored_;
  obs::Counter* m_req_honored_read_;
  obs::Counter* m_req_prefetch_;
  obs::Counter* m_rds_send_value_;
  obs::Counter* m_local_commit_;
  obs::Counter* m_gather_directed_;
  obs::Counter* m_gather_fallback_;
  obs::Counter* m_surplus_nack_;
  /// Multi-item atomic-set counters. They only move on multiop code paths,
  /// so workloads without atomic sets keep byte-identical counter sets.
  obs::Counter* m_multiop_committed_;
  obs::Counter* m_multiop_aborted_;
  obs::Counter* m_multiop_return_;
  obs::Counter* m_req_multiop_;
  /// Snapshot-read counters; only move when kReadSnapshot ops run, so
  /// snapshot-free workloads keep byte-identical counter sets.
  obs::Counter* m_snap_req_sent_;
  obs::Counter* m_snap_req_received_;
  obs::Counter* m_snap_reply_sent_;
  obs::Counter* m_snap_reply_received_;
  obs::Counter* m_snap_unbalanced_;
  obs::Counter* m_snap_stale_replies_;
  obs::Counter* m_snap_cut_forced_;
  /// Gather rounds per committed transaction; null without a registry.
  Histogram* h_rounds_ = nullptr;
  /// Snapshot rounds per completed snapshot read (≈1 at quiescence).
  Histogram* h_snap_rounds_ = nullptr;
  /// Retry-timer firings per read, both modes — the backoff observability
  /// the fixed 40 ms poll never had.
  Histogram* h_read_retry_ = nullptr;

  std::map<TxnId, std::unique_ptr<PendingTxn>> pending_;
};

}  // namespace dvp::txn
