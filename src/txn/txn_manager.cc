#include "txn/txn_manager.h"

#include <algorithm>
#include <cassert>
#include <memory>

#include "dvpcore/operators.h"
#include "net/backoff.h"
#include "obs/trace.h"
#include "placement/placement.h"

namespace dvp::txn {

namespace {
/// Snapshot retry pacing: the first kSnapshotFastRounds unbalanced rounds
/// re-ask immediately (an unbalanced certificate usually closes within a
/// round-trip once the in-flight Vm land); further rounds ride the backoff
/// timer so a hot item cannot turn the reader into a poll loop.
constexpr uint32_t kSnapshotFastRounds = 2;
/// Hard bound on snapshot rounds. Past it the cut is accepted as-is: the
/// per-site ledger identity makes every complete round's sum exact, so the
/// certificate only ever gates *quiescence*, never correctness — the cap
/// trades the closed-cut guarantee for the non-blocking bound.
constexpr uint32_t kSnapshotMaxRounds = 32;
}  // namespace

std::string_view TxnOutcomeName(TxnOutcome outcome) {
  switch (outcome) {
    case TxnOutcome::kCommitted:
      return "committed";
    case TxnOutcome::kAbortLockConflict:
      return "abort.lock";
    case TxnOutcome::kAbortCcReject:
      return "abort.cc";
    case TxnOutcome::kAbortTimeout:
      return "abort.timeout";
    case TxnOutcome::kAbortSiteFailure:
      return "abort.site_failure";
    case TxnOutcome::kAbortInvalid:
      return "abort.invalid";
  }
  return "unknown";
}

TxnSpec MakeTransfer(ItemId from, ItemId to, core::Value amount) {
  TxnSpec spec;
  spec.ops = {TxnOp::Decrement(from, amount), TxnOp::Increment(to, amount)};
  spec.label = "transfer";
  spec.atomic_set = true;
  return spec;
}

TxnSpec MakeOrder(ItemId stock, ItemId revenue, core::Value qty) {
  TxnSpec spec;
  spec.ops = {TxnOp::Decrement(stock, qty), TxnOp::Increment(revenue, qty)};
  spec.label = "order";
  spec.atomic_set = true;
  return spec;
}

TxnManager::TxnManager(SiteId self, uint32_t num_sites, runtime::Runtime* rt,
                       wal::GroupCommitLog* log, core::ValueStore* store,
                       cc::LockManager* locks, vm::VmManager* vm,
                       net::Transport* transport, LamportClock* clock,
                       obs::MetricsRegistry* metrics, Rng rng,
                       TxnManagerOptions options, obs::TraceRecorder* trace,
                       placement::PlacementManager* placement)
    : self_(self),
      num_sites_(num_sites),
      rt_(rt),
      log_(log),
      store_(store),
      locks_(locks),
      vm_(vm),
      transport_(transport),
      clock_(clock),
      trace_(trace),
      placement_(placement),
      rng_(rng),
      options_(options),
      policy_(options.scheme),
      m_req_sent_(obs::CounterIn(metrics, "req.sent")),
      m_req_msgs_(obs::CounterIn(metrics, "req.msgs")),
      m_req_received_(obs::CounterIn(metrics, "req.received")),
      m_req_ignored_locked_(obs::CounterIn(metrics, "req.ignored.locked")),
      m_req_ignored_cc_(obs::CounterIn(metrics, "req.ignored.cc")),
      m_req_ignored_outstanding_(
          obs::CounterIn(metrics, "req.ignored.outstanding")),
      m_req_ignored_empty_(obs::CounterIn(metrics, "req.ignored.empty")),
      m_req_honored_(obs::CounterIn(metrics, "req.honored")),
      m_req_honored_read_(obs::CounterIn(metrics, "req.honored.read")),
      m_req_prefetch_(obs::CounterIn(metrics, "req.prefetch")),
      m_rds_send_value_(obs::CounterIn(metrics, "rds.send_value")),
      m_local_commit_(obs::CounterIn(metrics, "txn.local_commit")),
      m_gather_directed_(obs::CounterIn(metrics, "placement.gather.directed")),
      m_gather_fallback_(obs::CounterIn(metrics, "placement.gather.fallback")),
      m_surplus_nack_(obs::CounterIn(metrics, "req.surplus_nack")),
      m_multiop_committed_(obs::CounterIn(metrics, "txn.multiop.committed")),
      m_multiop_aborted_(obs::CounterIn(metrics, "txn.multiop.aborted")),
      m_multiop_return_(obs::CounterIn(metrics, "txn.multiop.return_sends")),
      m_req_multiop_(obs::CounterIn(metrics, "req.multiop")),
      m_snap_req_sent_(obs::CounterIn(metrics, "snapshot.req.sent")),
      m_snap_req_received_(obs::CounterIn(metrics, "snapshot.req.received")),
      m_snap_reply_sent_(obs::CounterIn(metrics, "snapshot.reply.sent")),
      m_snap_reply_received_(
          obs::CounterIn(metrics, "snapshot.reply.received")),
      m_snap_unbalanced_(obs::CounterIn(metrics, "snapshot.rounds.unbalanced")),
      m_snap_stale_replies_(obs::CounterIn(metrics, "snapshot.stale_replies")),
      m_snap_cut_forced_(obs::CounterIn(metrics, "snapshot.cut_forced")),
      h_rounds_(metrics ? metrics->histogram("txn.rounds") : nullptr),
      h_snap_rounds_(metrics ? metrics->histogram("txn.snapshot.rounds")
                             : nullptr),
      h_read_retry_(metrics ? metrics->histogram("txn.read.retry_rounds")
                            : nullptr) {
  for (int o = 0; o <= static_cast<int>(TxnOutcome::kAbortInvalid); ++o) {
    std::string name =
        "txn." + std::string(TxnOutcomeName(static_cast<TxnOutcome>(o)));
    m_outcome_[o] =
        metrics ? metrics->counter(name) : obs::MetricsRegistry::Nop();
  }
}

void TxnManager::NoteOutcome(TxnId id, TxnOutcome outcome) {
  m_outcome_[static_cast<int>(outcome)]->Inc();
  if (trace_) {
    trace_->End(self_, obs::Track::kTxn, "txn", id.value(), "outcome",
                static_cast<uint64_t>(outcome));
  }
}

void TxnManager::NoteCommitted(const PendingTxn& t) {
  if (t.rounds == 0) m_local_commit_->Inc();
  if (t.spec.atomic_set) m_multiop_committed_->Inc();
  if (h_rounds_) h_rounds_->Add(static_cast<double>(t.rounds));
  if (h_read_retry_ && !t.reads.empty()) {
    h_read_retry_->Add(static_cast<double>(t.read_retry_attempts));
  }
  if (!t.snap.items.empty()) {
    if (h_read_retry_) {
      h_read_retry_->Add(static_cast<double>(t.snap.attempts));
    }
    if (h_snap_rounds_) h_snap_rounds_->Add(static_cast<double>(t.snap.round));
  }
}

TxnId TxnManager::Begin(const TxnSpec& spec, TxnCallback cb) {
  Timestamp ts = clock_->Next();
  TxnId id(ts.packed());
  // The packed Lamport timestamp is globally unique — it is the transaction's
  // causal trace_id, carried by every message sent on its behalf.
  if (trace_) {
    trace_->Begin(self_, obs::Track::kTxn, "txn", id.value(), "ops",
                  spec.ops.size());
  }

  auto fail_fast = [&](TxnOutcome outcome, std::string why) {
    NoteOutcome(id, outcome);
    TxnResult r;
    r.id = id;
    r.outcome = outcome;
    r.status = Status::Aborted(std::move(why));
    r.latency_us = 0;
    if (cb) cb(r);
    return id;
  };

  // Validate: at least one op, one op per item, positive amounts.
  if (spec.ops.empty()) return fail_fast(TxnOutcome::kAbortInvalid, "no ops");
  std::vector<ItemId> items;
  for (const TxnOp& op : spec.ops) {
    if (op.item.value() >= store_->num_items()) {
      return fail_fast(TxnOutcome::kAbortInvalid, "unknown item");
    }
    bool is_read = op.kind == TxnOp::Kind::kReadFull ||
                   op.kind == TxnOp::Kind::kReadSnapshot;
    if (!is_read && op.amount <= 0) {
      return fail_fast(TxnOutcome::kAbortInvalid, "non-positive amount");
    }
    if (std::find(items.begin(), items.end(), op.item) != items.end()) {
      return fail_fast(TxnOutcome::kAbortInvalid, "duplicate item in spec");
    }
    items.push_back(op.item);
  }

  // An atomic set is one cross-item ACID unit: at least two write ops whose
  // increments and decrements cancel. Reads are excluded (a read is not a
  // transfer of value) and the zero-sum rule is what makes the cross-item
  // conservation oracle checkable per commit record.
  if (spec.atomic_set) {
    if (spec.ops.size() < 2) {
      return fail_fast(TxnOutcome::kAbortInvalid, "atomic set needs >= 2 ops");
    }
    core::Value net = 0;
    for (const TxnOp& op : spec.ops) {
      if (op.kind == TxnOp::Kind::kReadFull ||
          op.kind == TxnOp::Kind::kReadSnapshot) {
        return fail_fast(TxnOutcome::kAbortInvalid,
                         "atomic set cannot contain reads");
      }
      net += op.kind == TxnOp::Kind::kIncrement ? op.amount : -op.amount;
    }
    if (net != 0) {
      return fail_fast(TxnOutcome::kAbortInvalid, "atomic set not zero-sum");
    }
  }

  // Snapshot reads take NO locks and never stamp: the stamped cut is
  // assembled entirely from reply-time captures, so a snapshot item is
  // excluded from A(t) — it cannot conflict, cannot be refused by the
  // timestamp rule, and concurrent writers never see the read at all.
  std::vector<ItemId> lock_items;
  for (const TxnOp& op : spec.ops) {
    if (op.kind != TxnOp::Kind::kReadSnapshot) lock_items.push_back(op.item);
  }

  // §5 step 1: atomically lock every local fragment in A(t). The pessimism
  // of the scheme: any conflict aborts immediately rather than waiting.
  for (ItemId item : lock_items) {
    if (locks_->IsLocked(item)) {
      return fail_fast(TxnOutcome::kAbortLockConflict,
                       "fragment locked: item " + item.ToString());
    }
    if (!policy_.MayLock(ts, store_->ts(item))) {
      return fail_fast(TxnOutcome::kAbortCcReject,
                       "Conc1 timestamp rule: item " + item.ToString());
    }
  }
  // Multi-item sets walk the lock table in global ascending item-id order —
  // the deadlock-free total order every site agrees on. With try-locks the
  // order cannot cause a wait cycle anyway; keeping it canonical means the
  // invariant also survives any future scheme that retries instead of
  // aborting, and lets tests assert the order directly.
  bool locked = lock_items.size() > 1
                    ? locks_->TryLockAllOrdered(lock_items, id)
                    : locks_->TryLockAll(lock_items, id);
  assert(locked);
  (void)locked;
  if (policy_.StampOnLock()) {
    for (ItemId item : lock_items) store_->SetTs(item, ts);
  }

  auto t = std::make_unique<PendingTxn>();
  t->id = id;
  t->ts = ts;
  t->spec = spec;
  t->items = lock_items;
  t->cb = std::move(cb);
  t->start_time = rt_->Now();

  // §5 step 2: determine which items the local value is inadequate for.
  std::vector<proto::RequestPart> parts;
  for (const TxnOp& op : spec.ops) {
    const core::Domain& domain = store_->catalog().domain(op.item);
    switch (op.kind) {
      case TxnOp::Kind::kIncrement:
        break;  // always effective locally
      case TxnOp::Kind::kDecrement: {
        core::BoundedDecrementOp dec(op.amount);
        core::ApplyOutcome out = dec.Apply(domain, store_->value(op.item));
        if (out.insufficient()) {
          t->shortfall[op.item] = out.shortfall;
          parts.push_back({op.item, out.shortfall, false});
          // Demand signal for the rebalancer: this site wanted more of the
          // item than it held.
          if (placement_) placement_->NoteShortfall(op.item, out.shortfall);
        }
        break;
      }
      case TxnOp::Kind::kReadFull: {
        ReadState rs;
        if (num_sites_ <= 1) {
          rs.done = true;  // nothing remote to drain
        } else {
          parts.push_back({op.item, 0, true});
        }
        t->reads.emplace(op.item, rs);
        break;
      }
      case TxnOp::Kind::kReadSnapshot:
        t->snap.items.push_back(op.item);
        break;
    }
  }

  // A single-site snapshot degenerates to the local capture: the fragment
  // plus the (necessarily drained) local ledger is the whole cut.
  if (!t->snap.items.empty() && num_sites_ <= 1) {
    for (ItemId item : t->snap.items) {
      const vm::VmManager::ItemLedger& led = vm_->ledger(item);
      t->snap.totals[item] =
          store_->value(item) + led.created_value - led.accepted_value;
    }
    t->snap.done = true;
  }

  PendingTxn& ref = *t;
  pending_.emplace(id, std::move(t));

  if (parts.empty() && ref.shortfall.empty() &&
      (ref.snap.items.empty() || ref.snap.done)) {
    // Write-only / locally satisfiable fast path: no redistribution phase.
    bool all_reads_done = true;
    for (const auto& [item, rs] : ref.reads) {
      (void)item;
      if (!rs.done) all_reads_done = false;
    }
    if (all_reads_done) {
      ScheduleCommit(ref);
      return id;
    }
  }

  // §5 steps 2–3: dispatch requests and start the timeout counter.
  SendRequests(ref, parts, /*round=*/1);
  ref.rounds = 1;
  ArmReadRetry(ref);
  ArmGatherRetry(ref);
  if (!ref.snap.items.empty() && !ref.snap.done) {
    SendSnapshotRound(ref, /*only_stale=*/false);
    ArmSnapshotRetry(ref);
  }
  TxnId timeout_id = id;
  SimTime base_timeout = options_.timeout_us;
  if (spec.atomic_set && options_.multiop_timeout_us > 0) {
    // Abort-on-cycle-risk: a multi-op parks locks on several items while it
    // gathers; a shorter window bounds how long opposing multi-ops can
    // mutually starve before one of them backs off.
    base_timeout = std::min(base_timeout, options_.multiop_timeout_us);
  }
  SimTime timeout_us = base_timeout * timeout_skew_permille_ / 1000;
  ref.timeout = rt_->Schedule(timeout_us, [this, timeout_id]() {
    auto it = pending_.find(timeout_id);
    if (it == pending_.end()) return;
    if (placement_) {
      // The strongest demand signal: the gather failed outright while this
      // much value was still missing.
      for (const auto& [item, amount] : it->second->shortfall) {
        placement_->NoteTimeout(item, amount);
      }
    }
    Abort(*it->second, TxnOutcome::kAbortTimeout, "redistribution timeout");
  });
  return id;
}

std::vector<SiteId> TxnManager::PickTargets() {
  std::vector<SiteId> all;
  for (uint32_t s = 0; s < num_sites_; ++s) {
    if (s != self_.value()) all.push_back(SiteId(s));
  }
  uint32_t k = options_.request_fanout;
  // kFirstK keeps the deterministic order (and with k < n starves high ids —
  // test-only, see TargetPolicy); kSurplus randomizes its fallback pool.
  bool randomize = options_.targeting != TargetPolicy::kFirstK;
  if (k == 0 || k >= all.size()) {
    if (randomize && !all.empty()) {
      // Fisher-Yates with our deterministic stream.
      for (size_t i = all.size() - 1; i > 0; --i) {
        std::swap(all[i], all[rng_.NextBounded(i + 1)]);
      }
    }
    return all;
  }
  // Choose k targets (random unless first-k-by-id was asked for).
  if (randomize) {
    for (size_t i = 0; i < k; ++i) {
      size_t j = i + rng_.NextBounded(all.size() - i);
      std::swap(all[i], all[j]);
    }
  }
  all.resize(k);
  return all;
}

void TxnManager::SendRequests(PendingTxn& t,
                              const std::vector<proto::RequestPart>& parts,
                              uint32_t round) {
  if (parts.empty()) return;
  m_req_sent_->Inc(parts.size());
  if (trace_) {
    trace_->Instant(self_, obs::Track::kTxn, "txn.redistribute", t.id.value(),
                    "round", round, "parts", parts.size());
  }

  auto make_msg = [&]() {
    auto msg = net::MakeEnvelope<proto::RequestMsg>();
    msg->txn = t.id;
    msg->ts_packed = t.ts.packed();
    msg->origin = self_;
    msg->round = round;
    msg->atomic_set = t.spec.atomic_set;
    msg->trace_id = t.id.value();
    return msg;
  };

  if (policy_.BroadcastRequests()) {
    // Conc2: all of a transaction's requests go out as one atomic broadcast.
    auto msg = make_msg();
    msg->parts = parts;
    m_req_msgs_->Inc(num_sites_ - 1);
    transport_->Broadcast(std::move(msg));
    return;
  }

  std::vector<SiteId> targets = PickTargets();
  bool surplus_mode =
      options_.targeting == TargetPolicy::kSurplus && placement_ != nullptr;

  // Per-destination ask lists. Blind modes give every target the same list;
  // surplus-directed mode slices each shortfall across the peers that
  // advertised they can actually cover it.
  std::map<SiteId, std::vector<proto::RequestPart>> per_dst;
  for (const proto::RequestPart& part : parts) {
    if (part.read_all || part.amount <= 0) {
      for (SiteId dst : targets) per_dst[dst].push_back(part);
      continue;
    }

    std::vector<placement::PlacementManager::Target> ranked;
    if (surplus_mode) {
      ranked = placement_->RankTargets(part.item);
      if (options_.request_fanout > 0 &&
          ranked.size() > options_.request_fanout) {
        ranked.resize(options_.request_fanout);
      }
      // Minimal covering prefix: once the best-ranked targets' advertised
      // surplus covers the need, asking anyone further down is pure message
      // overhead (a 4-unit ask has no business reaching five sites). Each
      // retry round widens the prefix by one: a target that refused or
      // under-shipped the previous round must not stay the only one asked.
      core::Value covered = 0;
      size_t take = ranked.size();
      for (size_t i = 0; i < ranked.size(); ++i) {
        covered += ranked[i].surplus;
        if (covered >= part.amount) {
          take = i + 1;
          break;
        }
      }
      take += round - 1;
      if (take < ranked.size()) ranked.resize(take);
    }

    if (!ranked.empty()) {
      m_gather_directed_->Inc();
      core::Value need = part.amount;
      core::Value total = 0;
      for (const auto& tg : ranked) total += tg.surplus;
      std::vector<core::Value> ask(ranked.size(), 0);
      if (total <= need) {
        // Hints under-cover the shortfall: take everything advertised and
        // spread the residual blindly over the non-ranked fallback targets
        // (hints may simply be incomplete).
        for (size_t i = 0; i < ranked.size(); ++i) ask[i] = ranked[i].surplus;
        core::Value residual = need - total;
        if (residual > 0) {
          std::vector<SiteId> rest;
          for (SiteId dst : targets) {
            bool is_ranked = false;
            for (const auto& tg : ranked) {
              if (tg.site == dst) is_ranked = true;
            }
            if (!is_ranked) rest.push_back(dst);
          }
          if (rest.empty()) {
            ask[0] += residual;  // nobody left to ask; over-ask the best
          } else {
            core::Value base = residual / static_cast<core::Value>(rest.size());
            core::Value rem = residual % static_cast<core::Value>(rest.size());
            for (size_t i = 0; i < rest.size(); ++i) {
              core::Value amt = base + (static_cast<core::Value>(i) < rem);
              if (amt > 0) per_dst[rest[i]].push_back({part.item, amt, false});
            }
          }
        }
      } else {
        // Proportional to advertised surplus, exact sum, each ask capped at
        // the target's surplus (floor shares first, then the remainder one
        // target at a time in rank order — total > need guarantees it fits).
        core::Value assigned = 0;
        for (size_t i = 0; i < ranked.size(); ++i) {
          ask[i] = need * ranked[i].surplus / total;
          assigned += ask[i];
        }
        core::Value rem = need - assigned;
        for (size_t i = 0; i < ranked.size() && rem > 0; ++i) {
          core::Value add = std::min(rem, ranked[i].surplus - ask[i]);
          ask[i] += add;
          rem -= add;
        }
      }
      for (size_t i = 0; i < ranked.size(); ++i) {
        if (ask[i] > 0) {
          per_dst[ranked[i].site].push_back({part.item, ask[i], false});
        }
      }
      continue;
    }

    if (surplus_mode) m_gather_fallback_->Inc();
    if (options_.divide_shortfall && !targets.empty()) {
      // Exact split: amounts sum to the shortfall. Ceil division here used
      // to over-gather up to k-1 units per round.
      core::Value base = part.amount / static_cast<core::Value>(targets.size());
      core::Value rem = part.amount % static_cast<core::Value>(targets.size());
      for (size_t i = 0; i < targets.size(); ++i) {
        core::Value amt = base + (static_cast<core::Value>(i) < rem);
        if (amt > 0) per_dst[targets[i]].push_back({part.item, amt, false});
      }
    } else {
      for (SiteId dst : targets) per_dst[dst].push_back(part);
    }
  }

  // Send in PickTargets order (preserves the pre-placement event schedule in
  // blind modes), then any directed targets outside the fallback pool in id
  // order.
  std::vector<SiteId> order;
  for (SiteId dst : targets) {
    if (per_dst.contains(dst)) order.push_back(dst);
  }
  for (const auto& [dst, dst_parts] : per_dst) {
    (void)dst_parts;
    if (std::find(order.begin(), order.end(), dst) == order.end()) {
      order.push_back(dst);
    }
  }
  for (SiteId dst : order) {
    auto msg = make_msg();
    msg->parts = std::move(per_dst[dst]);
    msg->want_surplus_nack = surplus_mode;
    m_req_msgs_->Inc();
    transport_->SendDatagram(dst, std::move(msg));
  }
}

void TxnManager::OnRequest(SiteId from, const proto::RequestMsg& msg) {
  (void)from;
  clock_->Observe(Timestamp::FromPacked(msg.ts_packed));
  Timestamp req_ts = Timestamp::FromPacked(msg.ts_packed);
  if (msg.atomic_set) m_req_multiop_->Inc();

  for (const proto::RequestPart& part : msg.parts) {
    m_req_received_->Inc();
    if (part.item.value() >= store_->num_items()) continue;

    // A locked fragment means some transaction (or in-progress Rds action)
    // owns it; the request is simply not honored (§5).
    if (locks_->IsLocked(part.item)) {
      m_req_ignored_locked_->Inc();
      continue;
    }
    // Conc1 gate: TS(t) must dominate TS(d_j). Equality is the same
    // transaction returning for another gather round (timestamps are
    // unique), which is always safe to honor. The refusal is answered with a
    // clock-carrying NACK so a lagging origin catches up and can retry.
    if (policy_.scheme() == cc::CcScheme::kConc1 &&
        req_ts < store_->ts(part.item)) {
      m_req_ignored_cc_->Inc();
      auto nack = net::MakeEnvelope<proto::CcNackMsg>();
      nack->from = self_;
      nack->trace_id = msg.trace_id;
      // Carry whichever is larger: our clock or the stamp that beat the
      // request -- the origin must exceed the *stamp* on its retry.
      nack->ts_packed =
          std::max(clock_->Peek(), store_->ts(part.item)).packed();
      transport_->SendDatagram(msg.origin, std::move(nack));
      continue;
    }

    const core::Fragment& frag = store_->fragment(part.item);
    const core::Domain& domain = store_->catalog().domain(part.item);

    if (part.read_all) {
      // §5: a read may be honored only when no Vm for the item is
      // outstanding here, so the reader provably drains the full multiset.
      if (vm_->HasOutstandingFor(part.item)) {
        m_req_ignored_outstanding_->Inc();
        continue;
      }
      if (policy_.StampOnLock()) store_->SetTs(part.item, req_ts);
      vm_->CreateVm(msg.origin, part.item, frag.value, msg.txn,
                    /*is_read_reply=*/true, msg.round);
      m_req_honored_read_->Inc();
    } else {
      core::Value ship = std::min(part.amount, domain.MaxShippable(frag.value));
      if (ship <= 0) {
        m_req_ignored_empty_->Inc();
        if (msg.want_surplus_nack) {
          // Tell the surplus-directed origin its hint was wrong so its cache
          // self-corrects now rather than when the hint ages out.
          auto nack = net::MakeEnvelope<proto::SurplusNackMsg>();
          nack->from = self_;
          nack->item = part.item;
          nack->ts_packed = clock_->Peek().packed();
          nack->trace_id = msg.trace_id;
          transport_->SendDatagram(msg.origin, std::move(nack));
        }
        continue;
      }
      if (policy_.StampOnLock()) store_->SetTs(part.item, req_ts);
      vm_->CreateVm(msg.origin, part.item, ship, msg.txn);
      m_req_honored_->Inc();
    }
  }
}

void TxnManager::OnSurplusNack(SiteId from, const proto::SurplusNackMsg& msg) {
  clock_->Observe(Timestamp::FromPacked(msg.ts_packed));
  m_surplus_nack_->Inc();
  if (placement_) placement_->NoteEmpty(from, msg.item);
}

bool TxnManager::RouteVmTransfer(SiteId from, const proto::VmTransferMsg& msg) {
  (void)from;
  TxnId owner = locks_->OwnerOf(msg.item);
  if (!owner.valid()) return false;
  auto it = pending_.find(owner);
  if (it == pending_.end()) return false;  // not a transaction of ours
  PendingTxn& t = *it->second;

  // The lock-holding transaction accepts the Vm itself (§5) — but only a Vm
  // that answers *its own* requests: those grants were gated by the Conc1
  // timestamp rule at the honoring site, so absorbing them preserves
  // timestamp-order serializability. Unrelated transfers stay deferred
  // ("it will eventually be sent again anyway") and are merged by the
  // unlocked Rds path after this transaction ends.
  if (msg.for_txn != t.id) return false;
  core::Value credited = vm_->AcceptForTxn(msg);
  if (t.spec.atomic_set && credited > 0 && !msg.is_read_reply) {
    // Remember where each partial gather came from: an abort must return it
    // all via ordinary Rds sends, or the abandoned value piles up here and
    // the item pair drifts from its surplus-directed placement.
    bool merged = false;
    for (AbsorbedCredit& a : t.absorbed) {
      if (a.src == msg.src && a.item == msg.item) {
        a.amount += credited;
        merged = true;
        break;
      }
    }
    if (!merged) t.absorbed.push_back({msg.src, msg.item, credited});
  }
  if (placement_ && !msg.is_read_reply) {
    // The granting site's advertised surplus shrank by at least the shipped
    // amount; correct the cache without waiting for its next hint.
    placement_->NoteShipped(msg.src, msg.item, msg.amount);
  }
  if (msg.is_read_reply && msg.for_txn == t.id) {
    HandleReadReply(t, msg);
    // HandleReadReply may have committed/aborted; don't touch `t` after
    // Reevaluate below without re-checking.
  }
  auto again = pending_.find(owner);
  if (again != pending_.end()) Reevaluate(*again->second);
  return true;
}

void TxnManager::HandleReadReply(PendingTxn& t,
                                 const proto::VmTransferMsg& msg) {
  auto it = t.reads.find(msg.item);
  if (it == t.reads.end()) return;
  ReadState& rs = it->second;
  if (rs.done || msg.round != rs.round) return;

  rs.counters[msg.src] = {msg.accept_count, msg.create_count};
  if (msg.amount > 0) rs.this_round_nonzero = true;
  if (rs.counters.size() < num_sites_ - 1) return;

  // Round complete. Terminate only after two consecutive all-zero rounds
  // with unchanged acceptance AND creation counters: no fragment held value
  // at any reply point, no site had outstanding Vm (they would have
  // refused), and no value moved in between — hence N_M = 0 and the local
  // fragment now holds Π⁻¹(d) in its entirety. The creation counters close
  // the snapshot-skew race: a Vm created, accepted and acked entirely
  // between two rounds can evade the acceptor's comparison (its second
  // reply may precede the acceptance), but never the creator's — the
  // creator cannot reply while its outbox still holds the Vm.
  //
  // The same outstanding-Vm rule must hold at the reader's OWN site: a Vm
  // for the item created here before the read began (a gather grant, or a
  // multi-op abort returning its partial gathers) holds value that is in no
  // remote fragment and no remote outbox — invisible to every probe above —
  // until it lands. A remote site would refuse our rounds in this state
  // (§5); the local outbox is checked directly, and termination waits until
  // the in-flight value surfaces in some later round's counters.
  bool all_zero = !rs.this_round_nonzero;
  if (all_zero && rs.prev_round_all_zero && rs.counters == rs.prev_counters &&
      !vm_->HasOutstandingFor(msg.item)) {
    rs.done = true;
    return;
  }
  rs.prev_counters = std::move(rs.counters);
  rs.prev_round_all_zero = all_zero;
  rs.counters.clear();
  rs.this_round_nonzero = false;
  ++rs.round;
  ++t.rounds;
  SendReadRound(t, msg.item, /*only_missing=*/false);
}

void TxnManager::SendReadRound(PendingTxn& t, ItemId item,
                               bool only_missing) {
  const ReadState& rs = t.reads.at(item);
  auto msg = net::MakeEnvelope<proto::RequestMsg>();
  msg->txn = t.id;
  msg->ts_packed = t.ts.packed();
  msg->origin = self_;
  msg->round = rs.round;
  msg->parts = {{item, 0, true}};
  msg->trace_id = t.id.value();
  m_req_sent_->Inc();
  if (policy_.BroadcastRequests()) {
    m_req_msgs_->Inc(num_sites_ - 1);
    transport_->Broadcast(std::move(msg));
    return;
  }
  for (uint32_t s = 0; s < num_sites_; ++s) {
    if (s == self_.value()) continue;
    if (only_missing && rs.counters.contains(SiteId(s))) continue;
    m_req_msgs_->Inc();
    transport_->SendDatagram(SiteId(s), msg);
  }
}

void TxnManager::ArmReadRetry(PendingTxn& t) {
  bool any_open = false;
  for (const auto& [item, rs] : t.reads) {
    (void)item;
    if (!rs.done) any_open = true;
  }
  if (!any_open) return;
  TxnId id = t.id;
  // Capped exponential backoff with deterministic jitter instead of the old
  // fixed 40 ms poll: a healthy round re-asks quickly, a partitioned one
  // stops hammering the wire, and readers on different sites (or different
  // transactions on one site) spread out instead of firing in lockstep.
  uint64_t salt = (uint64_t{self_.value()} << 40) ^ (id.value() << 1) ^
                  t.read_retry_attempts;
  SimTime delay = net::backoff::Jittered(
      net::backoff::Interval(options_.read_retry_us, options_.read_retry_max_us,
                             t.read_retry_attempts),
      options_.read_retry_max_us, salt);
  t.read_retry = rt_->Schedule(delay, [this, id]() {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;
    PendingTxn& t = *it->second;
    ++t.read_retry_attempts;
    for (auto& [item, rs] : t.reads) {
      if (!rs.done) SendReadRound(t, item, /*only_missing=*/true);
    }
    ArmReadRetry(t);
  });
}

void TxnManager::OnSnapshotReq(SiteId from, const proto::SnapshotReqMsg& msg) {
  (void)from;
  clock_->Observe(Timestamp::FromPacked(msg.ts_packed));
  m_snap_req_received_->Inc();

  // Capture NOW — fragment values and ledgers at one instant, so the
  // per-site identity holds exactly for this entry set. No locks checked,
  // no value moved: concurrent writers are entirely untouched.
  auto reply = net::MakeEnvelope<proto::SnapshotReplyMsg>();
  reply->txn = msg.txn;
  reply->from = self_;
  reply->round = msg.round;
  reply->ts_packed = clock_->Next().packed();
  reply->trace_id = msg.trace_id;
  for (ItemId item : msg.items) {
    if (item.value() >= store_->num_items()) continue;
    const core::Fragment& frag = store_->fragment(item);
    const vm::VmManager::ItemLedger& led = vm_->ledger(item);
    proto::SnapshotEntry e;
    e.item = item;
    e.fragment = frag.value;
    e.frag_ts_packed = frag.ts.packed();
    e.created_count = led.created_count;
    e.created_value = led.created_value;
    e.accepted_count = led.accepted_count;
    e.accepted_value = led.accepted_value;
    e.closed_below = vm_->ItemClosedBelow(item);
    reply->entries.push_back(e);
  }

  // Force gate: the captured fragments may reflect commits still sitting in
  // the unforced group-commit batch. The reply leaves only at the force that
  // makes them durable — a crash before it drops the reply with the rest of
  // the volatile scheduler, so no cut ever contains a rolled-back commit.
  // Force-per-append mode has no unforced tail and sends immediately.
  SiteId origin = msg.origin;
  log_->OnNextForce([this, origin, reply = std::move(reply)]() mutable {
    m_snap_reply_sent_->Inc();
    transport_->SendDatagram(origin, std::move(reply));
  });
}

void TxnManager::OnSnapshotReply(SiteId from,
                                 const proto::SnapshotReplyMsg& msg) {
  (void)from;
  clock_->Observe(Timestamp::FromPacked(msg.ts_packed));
  m_snap_reply_received_->Inc();
  auto it = pending_.find(msg.txn);
  if (it == pending_.end()) return;
  PendingTxn& t = *it->second;
  if (t.snap.items.empty() || t.snap.done) return;
  if (msg.round < t.snap.round) m_snap_stale_replies_->Inc();
  SnapState::Reply& slot = t.snap.replies[msg.from];
  // Latest reply per site wins; a reordered older duplicate is dropped.
  if (msg.round < slot.round) return;
  slot.round = msg.round;
  slot.entries = msg.entries;
  TryCompleteSnapshot(t);
}

void TxnManager::TryCompleteSnapshot(PendingTxn& t) {
  SnapState& s = t.snap;
  if (s.done || s.replies.size() + 1 < num_sites_) return;

  // Assemble the cut from the latest reply per site plus a fresh local
  // capture: Σ fragments + Σ (created − accepted) ledger value. The per-site
  // identity telescopes to  N₀ + Σᵢ (commits at i before its capture) , an
  // exact total under the windowed commit-subset rule — even when the
  // in-flight term is transiently negative (an acceptance captured whose
  // creation was not double-counts a fragment; the negative channel term is
  // its exact compensation).
  bool balanced = true;
  std::map<ItemId, core::Value> totals;
  for (ItemId item : s.items) {
    const vm::VmManager::ItemLedger& led = vm_->ledger(item);
    uint64_t created_count = led.created_count;
    uint64_t accepted_count = led.accepted_count;
    int64_t created_value = led.created_value;
    int64_t accepted_value = led.accepted_value;
    core::Value fragments = store_->value(item);
    for (const auto& [site, reply] : s.replies) {
      (void)site;
      for (const proto::SnapshotEntry& e : reply.entries) {
        if (e.item != item) continue;
        fragments += e.fragment;
        created_count += e.created_count;
        accepted_count += e.accepted_count;
        created_value += e.created_value;
        accepted_value += e.accepted_value;
      }
    }
    totals[item] = fragments + (created_value - accepted_value);
    // Balance certificate: every created Vm's acceptance captured and vice
    // versa — no value visibly in flight, the cut is closed.
    if (created_count != accepted_count || created_value != accepted_value) {
      balanced = false;
    }
  }

  if (balanced || s.round >= kSnapshotMaxRounds) {
    if (!balanced) m_snap_cut_forced_->Inc();
    s.totals = std::move(totals);
    s.done = true;
    t.snap_retry.Cancel();
    Reevaluate(t);
    return;
  }

  // Unbalanced: only advance once the current round is fully answered —
  // a straggler from this round may still close the certificate.
  for (const auto& [site, reply] : s.replies) {
    (void)site;
    if (reply.round < s.round) return;
  }
  m_snap_unbalanced_->Inc();
  ++s.round;
  ++t.rounds;
  if (s.round <= kSnapshotFastRounds) {
    // The in-flight value usually lands within a round-trip; re-ask now.
    SendSnapshotRound(t, /*only_stale=*/false);
  }
  // Beyond the fast rounds the armed backoff timer paces the re-asks.
}

void TxnManager::SendSnapshotRound(PendingTxn& t, bool only_stale) {
  const SnapState& s = t.snap;
  for (uint32_t site = 0; site < num_sites_; ++site) {
    if (site == self_.value()) continue;
    if (only_stale) {
      auto it = s.replies.find(SiteId(site));
      if (it != s.replies.end() && it->second.round >= s.round) continue;
    }
    auto msg = net::MakeEnvelope<proto::SnapshotReqMsg>();
    msg->txn = t.id;
    msg->ts_packed = t.ts.packed();
    msg->origin = self_;
    msg->round = s.round;
    msg->items = s.items;
    msg->trace_id = t.id.value();
    m_snap_req_sent_->Inc();
    transport_->SendDatagram(SiteId(site), std::move(msg));
  }
}

void TxnManager::ArmSnapshotRetry(PendingTxn& t) {
  if (t.snap.items.empty() || t.snap.done) return;
  TxnId id = t.id;
  uint64_t salt =
      (uint64_t{self_.value()} << 40) ^ (id.value() << 1) ^ t.snap.attempts;
  SimTime delay = net::backoff::Jittered(
      net::backoff::Interval(options_.read_retry_us, options_.read_retry_max_us,
                             t.snap.attempts),
      options_.read_retry_max_us, salt);
  t.snap_retry = rt_->Schedule(delay, [this, id]() {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;
    PendingTxn& t = *it->second;
    if (t.snap.done) return;
    ++t.snap.attempts;
    // Retry only the sites whose latest reply predates the current round —
    // balanced sites' entries are already usable as-is.
    SendSnapshotRound(t, /*only_stale=*/true);
    ArmSnapshotRetry(t);
  });
}

void TxnManager::ArmGatherRetry(PendingTxn& t) {
  if (options_.gather_retry_us <= 0 || t.shortfall.empty()) return;
  TxnId id = t.id;
  t.gather_retry = rt_->Schedule(options_.gather_retry_us, [this, id]() {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;
    PendingTxn& t = *it->second;
    if (t.commit_scheduled || t.shortfall.empty()) return;
    // A CC-refused round is not a death sentence: the CcNack bumped this
    // site's clock past the refusing fragment's stamp, so re-issue the
    // still-missing asks under a fresh timestamp. Sound for the Conc1 gate —
    // the local locks were granted under an older ts and raising it
    // preserves every MayLock comparison; the commit record stamps fragments
    // with the final (freshest) ts.
    t.ts = clock_->Next();
    if (policy_.StampOnLock()) {
      for (ItemId item : t.items) store_->SetTs(item, t.ts);
    }
    // Re-request only what is still missing, against freshly ranked (or
    // freshly drawn) targets — the previous round's grants and NACK feedback
    // have already reshaped the ask.
    std::vector<proto::RequestPart> parts;
    for (const auto& [item, amount] : t.shortfall) {
      parts.push_back({item, amount, false});
    }
    ++t.rounds;
    SendRequests(t, parts, t.rounds);
    ArmGatherRetry(t);
  });
}

void TxnManager::Reevaluate(PendingTxn& t) {
  // Re-check decrement shortfalls against the (possibly grown) fragments.
  for (auto it = t.shortfall.begin(); it != t.shortfall.end();) {
    ItemId item = it->first;
    const TxnOp* op = nullptr;
    for (const TxnOp& candidate : t.spec.ops) {
      if (candidate.item == item) op = &candidate;
    }
    assert(op && op->kind == TxnOp::Kind::kDecrement);
    const core::Domain& domain = store_->catalog().domain(item);
    core::BoundedDecrementOp dec(op->amount);
    core::ApplyOutcome out = dec.Apply(domain, store_->value(item));
    if (out.applied()) {
      it = t.shortfall.erase(it);
    } else {
      it->second = out.shortfall;
      ++it;
    }
  }
  if (!t.shortfall.empty()) return;
  for (const auto& [item, rs] : t.reads) {
    (void)item;
    if (!rs.done) return;
  }
  if (!t.snap.items.empty() && !t.snap.done) return;
  ScheduleCommit(t);
}

void TxnManager::ScheduleCommit(PendingTxn& t) {
  if (t.commit_scheduled) return;
  t.commit_scheduled = true;
  if (trace_) {
    trace_->Instant(self_, obs::Track::kTxn, "txn.compute", t.id.value(),
                    "rounds", t.rounds);
  }
  // The gather succeeded: the timeout counter is disarmed and the remaining
  // work is purely local (§5 step 4) — by construction it cannot block.
  t.timeout.Cancel();
  t.read_retry.Cancel();
  t.gather_retry.Cancel();
  t.snap_retry.Cancel();
  if (options_.local_compute_us <= 0) {
    Commit(t);
    return;
  }
  TxnId id = t.id;
  rt_->Schedule(options_.local_compute_us, [this, id]() {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;  // site crashed meanwhile
    Commit(*it->second);
  });
}

void TxnManager::Commit(PendingTxn& t) {
  // §5 steps 4–5: compute the updates with partitionable operators and force
  // the commit record. That force *is* the commit point; there is no
  // prepared state and no possibility of blocking.
  wal::TxnCommitRec rec;
  rec.txn = t.id;
  rec.ts_packed = t.ts.packed();
  rec.atomic_set = t.spec.atomic_set;

  TxnResult result;
  result.id = t.id;
  result.outcome = TxnOutcome::kCommitted;
  result.rounds = t.rounds;

  for (const TxnOp& op : t.spec.ops) {
    const core::Fragment& frag = store_->fragment(op.item);
    switch (op.kind) {
      case TxnOp::Kind::kIncrement:
        rec.writes.push_back(wal::FragmentWrite{
            op.item, frag.value + op.amount, op.amount, t.ts.packed()});
        break;
      case TxnOp::Kind::kDecrement:
        assert(store_->catalog()
                   .domain(op.item)
                   .ValidFragment(frag.value - op.amount));
        rec.writes.push_back(wal::FragmentWrite{
            op.item, frag.value - op.amount, -op.amount, t.ts.packed()});
        break;
      case TxnOp::Kind::kReadFull:
        result.read_values[op.item] = frag.value;
        break;
      case TxnOp::Kind::kReadSnapshot:
        result.read_values[op.item] = t.snap.totals.at(op.item);
        break;
    }
  }

  if (trace_) {
    trace_->Instant(self_, obs::Track::kTxn, "txn.force", t.id.value(),
                    "writes", rec.writes.size());
  }

  if (!log_->enabled()) {
    // Force-per-append path: the Append below is synchronous, so the commit
    // point passes before this function returns.
    log_->Append(wal::LogRecord(rec));
    t.committed = true;

    // §5 step 6: apply to the local database and record that fact.
    for (const wal::FragmentWrite& w : rec.writes) {
      store_->SetValue(w.item, w.post_value);
      store_->SetTs(w.item, Timestamp::FromPacked(w.post_ts_packed));
    }
    log_->Append(wal::LogRecord(wal::TxnAppliedRec{t.id}));

    // §5 step 7.
    locks_->ReleaseAll(t.id);
    t.timeout.Cancel();
    t.read_retry.Cancel();
    t.gather_retry.Cancel();

    NoteOutcome(t.id, TxnOutcome::kCommitted);
    NoteCommitted(t);
    result.status = Status::OK();
    result.latency_us = rt_->Now() - t.start_time;
    Finish(t, std::move(result));
    return;
  }

  // Group-commit path: the commit record joins the batch buffer and the
  // commit point is the covering force. Completion — the client callback,
  // the committed verdict, the latency stamp — waits for it; everything
  // volatile (store update, lock release) happens now, at the same instant
  // it would under force-per-append, so lock timing and therefore commit
  // outcomes are unchanged. Releasing locks before the force is sound
  // because value never escapes this site except via a Vm transfer, and
  // transfers are themselves gated on their own, later-in-log create-record
  // force. A crash before the force drops the whole unforced tail: the
  // transaction reports site failure and its writes never existed.
  TxnId id = t.id;
  for (const wal::FragmentWrite& w : rec.writes) {
    store_->SetValue(w.item, w.post_value);
    store_->SetTs(w.item, Timestamp::FromPacked(w.post_ts_packed));
  }
  locks_->ReleaseAll(id);
  t.timeout.Cancel();
  t.read_retry.Cancel();
  t.gather_retry.Cancel();
  t.snap_retry.Cancel();
  // `t` may die inside the first Append below (a full batch flushes inline,
  // running the completion callback) — no member of `t` is touched after it.
  log_->Append(wal::LogRecord(rec),
               [this, id, result = std::move(result)]() mutable {
                 auto it = pending_.find(id);
                 if (it == pending_.end()) return;
                 PendingTxn& t = *it->second;
                 t.committed = true;
                 NoteOutcome(id, TxnOutcome::kCommitted);
                 NoteCommitted(t);
                 result.status = Status::OK();
                 result.latency_us = rt_->Now() - t.start_time;
                 Finish(t, std::move(result));
               });
  log_->Append(wal::LogRecord(wal::TxnAppliedRec{id}));
}

void TxnManager::Abort(PendingTxn& t, TxnOutcome outcome,
                       const std::string& why) {
  // Aborting is purely local: locks drop, nothing to undo — everything that
  // happened so far was value-preserving redistribution (§5: "there is no
  // concept of rollbacks").
  locks_->ReleaseAll(t.id);
  t.timeout.Cancel();
  t.read_retry.Cancel();
  t.gather_retry.Cancel();
  t.snap_retry.Cancel();

  // A multi-op that gathered part of its item set returns every partial
  // gather to its source as an ordinary Rds send — still conservation-
  // preserving (a Vm either lands or stays live), it just undoes the
  // placement skew an abandoned gather would leave behind. The locks are
  // already dropped, so the fragment is free to ship from. Clamp to what the
  // domain lets the fragment ship right now: concurrent acceptances may have
  // been consumed by value we legitimately still hold.
  if (t.spec.atomic_set) {
    m_multiop_aborted_->Inc();
    for (const AbsorbedCredit& a : t.absorbed) {
      const core::Domain& domain = store_->catalog().domain(a.item);
      core::Value ship =
          std::min(a.amount, domain.MaxShippable(store_->value(a.item)));
      if (ship <= 0) continue;
      vm_->CreateVm(a.src, a.item, ship, TxnId::Invalid());
      m_multiop_return_->Inc();
    }
  }
  NoteOutcome(t.id, outcome);

  TxnResult result;
  result.id = t.id;
  result.outcome = outcome;
  result.status = outcome == TxnOutcome::kAbortTimeout
                      ? Status::Timeout(why)
                      : Status::Aborted(why);
  result.latency_us = rt_->Now() - t.start_time;
  result.rounds = t.rounds;
  Finish(t, std::move(result));
}

void TxnManager::Finish(PendingTxn& t, TxnResult result) {
  auto node = pending_.extract(t.id);
  assert(!node.empty());
  TxnCallback cb = std::move(node.mapped()->cb);
  if (cb) cb(result);
  // node (and the PendingTxn) dies here; `t` must not be used afterwards.
}

void TxnManager::Prefetch(ItemId item, core::Value amount) {
  if (amount <= 0 || item.value() >= store_->num_items()) return;
  auto msg = net::MakeEnvelope<proto::RequestMsg>();
  Timestamp ts = clock_->Next();
  msg->txn = TxnId(ts.packed());
  msg->ts_packed = ts.packed();
  msg->origin = self_;
  msg->round = 1;
  msg->parts = {{item, amount, false}};
  msg->trace_id = ts.packed();
  m_req_prefetch_->Inc();
  if (policy_.BroadcastRequests()) {
    transport_->Broadcast(std::move(msg));
  } else {
    for (SiteId dst : PickTargets()) transport_->SendDatagram(dst, msg);
  }
}

Status TxnManager::SendValue(SiteId dst, ItemId item, core::Value amount) {
  if (amount <= 0) return Status::InvalidArgument("amount must be positive");
  if (item.value() >= store_->num_items()) {
    return Status::NotFound("unknown item");
  }
  if (locks_->IsLocked(item)) {
    return Status::Conflict("item locked; redistribution refused");
  }
  const core::Domain& domain = store_->catalog().domain(item);
  if (amount > domain.MaxShippable(store_->value(item))) {
    return Status::FailedPrecondition("fragment cannot cover the amount");
  }
  vm_->CreateVm(dst, item, amount, TxnId::Invalid());
  m_rds_send_value_->Inc();
  return Status::OK();
}

void TxnManager::CrashAbortAll() {
  // Deliver a final verdict for every in-flight transaction. A transaction
  // whose commit record was already forced *did* commit — the crash merely
  // raced the reply; everything else dies with the volatile state.
  std::vector<std::unique_ptr<PendingTxn>> doomed;
  doomed.reserve(pending_.size());
  for (auto& [id, t] : pending_) {
    (void)id;
    doomed.push_back(std::move(t));
  }
  pending_.clear();
  for (auto& t : doomed) {
    t->timeout.Cancel();
    t->read_retry.Cancel();
    t->gather_retry.Cancel();
    t->snap_retry.Cancel();
    TxnResult result;
    result.id = t->id;
    if (t->committed) {
      result.outcome = TxnOutcome::kCommitted;
      result.status = Status::OK();
      NoteCommitted(*t);
    } else {
      result.outcome = TxnOutcome::kAbortSiteFailure;
      result.status = Status::Unavailable("site crashed");
      // No return sends here: the crash drops all volatile state, and the
      // absorbed value is exactly what the durable log says this site holds
      // — recovery and the conservation audit account for it in place.
      if (t->spec.atomic_set) m_multiop_aborted_->Inc();
    }
    NoteOutcome(t->id, result.outcome);
    result.latency_us = rt_->Now() - t->start_time;
    if (t->cb) t->cb(result);
  }
}

}  // namespace dvp::txn
