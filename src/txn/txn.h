// Transaction model. A transaction is a set of partitionable operations over
// data items, submitted at one site and executed entirely there (§5): any
// value it is short of is *brought to it* by Vm during the redistribution
// phase; nothing is ever computed remotely on its behalf beyond the implicit
// Rds transactions that honor its requests.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "dvpcore/domain.h"

namespace dvp::txn {

/// One operation of a transaction. At most one op per item per transaction.
struct TxnOp {
  enum class Kind {
    kIncrement,  ///< item += amount; always effective (cancellations,
                 ///< deposits, restocking)
    kDecrement,  ///< item -= amount if the fragment can cover it, else
                 ///< redistribute-then-retry (reservations, withdrawals)
    kReadFull,   ///< read the item's total value N — requires draining
                 ///< Π⁻¹(d) to this site (§3: N_W = N_Y = N_Z = N_M = 0)
    kReadSnapshot,  ///< read the item's total value N from a stamped
                    ///< consistent cut: sites answer with fragment + Vm
                    ///< ledger, no value moves, no locks are taken, and
                    ///< concurrent writes proceed untouched (DESIGN §4)
  };
  Kind kind = Kind::kIncrement;
  ItemId item;
  core::Value amount = 0;  ///< unused for the read kinds

  static TxnOp Increment(ItemId item, core::Value amount) {
    return {Kind::kIncrement, item, amount};
  }
  static TxnOp Decrement(ItemId item, core::Value amount) {
    return {Kind::kDecrement, item, amount};
  }
  static TxnOp ReadFull(ItemId item) { return {Kind::kReadFull, item, 0}; }
  static TxnOp ReadSnapshot(ItemId item) {
    return {Kind::kReadSnapshot, item, 0};
  }
};

/// A transaction specification.
struct TxnSpec {
  std::vector<TxnOp> ops;
  /// Free-form label for traces and per-class metrics (e.g. "reserve").
  std::string label;
  /// Multi-item ACID unit: the ops form one atomic cross-item write whose
  /// increments and decrements cancel (Σ amounts is zero-sum), e.g. a
  /// transfer moving value between two items. Such a spec must have ≥ 2
  /// write ops, no reads, and is validated at Begin; its locks are acquired
  /// in global ascending item-id order and its commit record is tagged so
  /// auditors can check transaction-scoped cross-item conservation.
  bool atomic_set = false;
};

/// transfer(from → to, amount): one atomic unit moving `amount` from item
/// `from` to item `to`. Conserves the sum over {from, to}.
TxnSpec MakeTransfer(ItemId from, ItemId to, core::Value amount);

/// order(stock, revenue, qty): decrement `qty` units of stock and record the
/// same quantity as revenue, atomically. (The paper's partitionable-op model
/// carries quantities, not prices, so revenue is counted in units.)
TxnSpec MakeOrder(ItemId stock, ItemId revenue, core::Value qty);

/// Why a transaction ended the way it did.
enum class TxnOutcome {
  kCommitted,
  kAbortLockConflict,  ///< a needed local fragment was locked (§5 pessimism)
  kAbortCcReject,      ///< Conc1 timestamp rule refused the lock
  kAbortTimeout,       ///< the timeout counter signalled (§5 step 3)
  kAbortSiteFailure,   ///< the executing site crashed before commit
  kAbortInvalid,       ///< malformed specification
};

std::string_view TxnOutcomeName(TxnOutcome outcome);

/// Completion report delivered to the submitter.
struct TxnResult {
  TxnId id;
  TxnOutcome outcome = TxnOutcome::kAbortInvalid;
  Status status;
  /// Values observed by kReadFull / kReadSnapshot ops.
  std::map<ItemId, core::Value> read_values;
  /// Virtual time from submission to decision. Bounded for every outcome —
  /// that is the non-blocking property.
  SimTime latency_us = 0;
  /// Remote gather rounds used (0 for purely local execution).
  uint32_t rounds = 0;

  bool committed() const { return outcome == TxnOutcome::kCommitted; }
};

using TxnCallback = std::function<void(const TxnResult&)>;

}  // namespace dvp::txn
