#include "chaos/shrink.h"

#include <algorithm>

namespace dvp::chaos {

namespace {

/// Re-runs a candidate; true iff it still fails (and then records the
/// failure). Respects the execution budget.
bool StillFails(const ChaosCase& cand, const ShrinkOptions& opts,
                uint32_t* runs, RunResult* out) {
  if (*runs >= opts.max_runs) return false;
  ++*runs;
  RunOptions ro = opts.run;
  ro.record_trace = false;
  RunResult r = RunCase(cand, ro);
  bool failed = !r.ok;
  if (failed) *out = std::move(r);
  return failed;
}

/// One greedy deletion sweep at the given chunk size. Returns true if any
/// deletion stuck.
bool DeletePass(ChaosCase* cur, size_t chunk, const ShrinkOptions& opts,
                uint32_t* runs, RunResult* best) {
  bool progress = false;
  size_t i = 0;
  while (i < cur->plan.events.size() && *runs < opts.max_runs) {
    ChaosCase cand = *cur;
    size_t n = std::min(chunk, cand.plan.events.size() - i);
    cand.plan.events.erase(cand.plan.events.begin() + i,
                           cand.plan.events.begin() + i + n);
    if (StillFails(cand, opts, runs, best)) {
      *cur = std::move(cand);
      progress = true;  // retry the same index against the shorter plan
    } else {
      i += n;
    }
  }
  return progress;
}

}  // namespace

ShrinkResult Shrink(const ChaosCase& c, const ShrinkOptions& opts) {
  ShrinkResult sr;
  sr.minimal = c;

  RunOptions ro = opts.run;
  ro.record_trace = false;
  sr.result = RunCase(c, ro);
  sr.runs = 1;
  sr.original_violation = sr.result.violation;
  if (sr.result.ok) return sr;  // nothing to shrink

  ChaosCase cur = c;

  // Phase 1 — delete fault-plan entries: halves, quarters, ... then singles.
  size_t chunk = std::max<size_t>(1, cur.plan.events.size() / 2);
  while (sr.runs < opts.max_runs) {
    bool progress = DeletePass(&cur, chunk, opts, &sr.runs, &sr.result);
    if (!progress) {
      if (chunk == 1) break;
      chunk = std::max<size_t>(1, chunk / 2);
    }
  }

  // Phase 2 — advance survivors toward t=0: an early fault is a simpler
  // story than a mid-run one, and collapsed timings shorten the replay.
  for (size_t i = 0; i < cur.plan.events.size() && sr.runs < opts.max_runs;
       ++i) {
    for (SimTime t : {SimTime{0}, cur.plan.events[i].at / 2}) {
      if (t >= cur.plan.events[i].at) continue;
      ChaosCase cand = cur;
      cand.plan.events[i].at = t;
      if (StillFails(cand, opts, &sr.runs, &sr.result)) {
        cur = std::move(cand);
        break;
      }
    }
  }

  // Phase 3 — shrink the workload. Smaller txn counts reuse a prefix of the
  // same precomputed action stream, so the reduction is monotone.
  for (uint32_t t : {cur.workload.txns / 8, cur.workload.txns / 4,
                     cur.workload.txns / 2}) {
    if (t == 0 || t >= cur.workload.txns || sr.runs >= opts.max_runs) continue;
    ChaosCase cand = cur;
    cand.workload.txns = t;
    if (StillFails(cand, opts, &sr.runs, &sr.result)) {
      cur = std::move(cand);
      break;
    }
  }

  // Phase 4 — drop the schedule perturbation if the failure is not
  // interleaving-dependent.
  if (cur.perturb_seed != 0 && sr.runs < opts.max_runs) {
    ChaosCase cand = cur;
    cand.perturb_seed = 0;
    cand.max_jitter_us = 0;
    if (StillFails(cand, opts, &sr.runs, &sr.result)) cur = std::move(cand);
  }

  // Phase 5 — the smaller workload may have unlocked more deletions.
  while (sr.runs < opts.max_runs &&
         DeletePass(&cur, 1, opts, &sr.runs, &sr.result)) {
  }

  sr.minimal = std::move(cur);
  return sr;
}

}  // namespace dvp::chaos
