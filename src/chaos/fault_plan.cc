#include "chaos/fault_plan.h"

#include <algorithm>

#include "common/rng.h"

namespace dvp::chaos {

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash: return "kCrash";
    case FaultKind::kRecover: return "kRecover";
    case FaultKind::kPartition: return "kPartition";
    case FaultKind::kHeal: return "kHeal";
    case FaultKind::kLinkLoss: return "kLinkLoss";
    case FaultKind::kLinkDelay: return "kLinkDelay";
    case FaultKind::kLinkDup: return "kLinkDup";
    case FaultKind::kLinkLossOne: return "kLinkLossOne";
    case FaultKind::kTimeoutSkew: return "kTimeoutSkew";
  }
  return "?";
}

std::string FaultPlan::ToLiteral() const {
  std::string out = "{";
  for (size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    if (i > 0) out += ", ";
    out += "{" + std::to_string(e.at) + ", chaos::FaultKind::" +
           std::string(FaultKindName(e.kind)) + ", " +
           std::to_string(e.site) + ", " + std::to_string(e.arg) + "}";
  }
  out += "}";
  return out;
}

std::string FaultPlan::ToString() const {
  std::string out;
  for (const FaultEvent& e : events) {
    out += "  t=" + std::to_string(e.at) + "us " +
           std::string(FaultKindName(e.kind)) + " site/mask=" +
           std::to_string(e.site) + " arg=" + std::to_string(e.arg) + "\n";
  }
  return out;
}

namespace {

/// A two-group partition mask over num_sites with both groups non-empty.
uint32_t DrawPartitionMask(Rng& rng, uint32_t num_sites) {
  uint32_t all = (num_sites >= 32) ? ~0u : ((1u << num_sites) - 1);
  uint32_t mask;
  do {
    mask = static_cast<uint32_t>(rng.NextU64()) & all;
  } while (mask == 0 || mask == all);
  return mask;
}

}  // namespace

FaultPlan GeneratePlan(uint64_t seed, const PlanSpec& spec) {
  Rng rng(seed ^ 0xfa017c4a05ull);
  FaultPlan plan;

  // Swarm step: choose the fault classes active in THIS run. Each allowed
  // class survives with p = 0.65; a run that drew none gets link faults (the
  // mildest class) so every plan perturbs something.
  bool crashes = spec.crashes && (spec.crashable_mask != 0) && rng.NextBool(0.65);
  bool partitions = spec.partitions && spec.num_sites >= 2 && rng.NextBool(0.65);
  bool links = spec.link_faults && rng.NextBool(0.65);
  bool skew = spec.skew && rng.NextBool(0.65);
  if (!crashes && !partitions && !links && !skew) links = true;

  std::vector<FaultKind> kinds;
  if (crashes) {
    kinds.push_back(FaultKind::kCrash);
    kinds.push_back(FaultKind::kRecover);
  }
  if (partitions) {
    kinds.push_back(FaultKind::kPartition);
    kinds.push_back(FaultKind::kHeal);
  }
  if (links) {
    kinds.push_back(FaultKind::kLinkLoss);
    kinds.push_back(FaultKind::kLinkDelay);
    kinds.push_back(FaultKind::kLinkDup);
    kinds.push_back(FaultKind::kLinkLossOne);
  }
  if (skew) kinds.push_back(FaultKind::kTimeoutSkew);

  uint32_t n_events = static_cast<uint32_t>(
      rng.NextInt(1, std::max<uint32_t>(1, spec.max_events)));
  plan.events.reserve(n_events);

  std::vector<uint32_t> crashable;
  for (uint32_t s = 0; s < spec.num_sites; ++s) {
    if (spec.crashable_mask & (1u << s)) crashable.push_back(s);
  }

  for (uint32_t i = 0; i < n_events; ++i) {
    FaultEvent e;
    e.at = static_cast<SimTime>(rng.NextBounded(
        static_cast<uint64_t>(std::max<SimTime>(1, spec.horizon_us))));
    e.kind = kinds[rng.NextBounded(kinds.size())];
    switch (e.kind) {
      case FaultKind::kCrash:
      case FaultKind::kRecover:
        e.site = crashable[rng.NextBounded(crashable.size())];
        break;
      case FaultKind::kPartition:
        e.site = DrawPartitionMask(rng, spec.num_sites);
        break;
      case FaultKind::kHeal:
        break;
      case FaultKind::kLinkLoss:
        e.arg = rng.NextBounded(1001);  // up to total silence
        break;
      case FaultKind::kLinkDelay:
        e.arg = static_cast<uint64_t>(rng.NextInt(200, 20'000));
        break;
      case FaultKind::kLinkDup:
        e.arg = rng.NextBounded(401);
        break;
      case FaultKind::kLinkLossOne:
        e.site = static_cast<uint32_t>(
            rng.NextBounded(uint64_t{spec.num_sites} * spec.num_sites));
        e.arg = rng.NextBounded(1001);
        break;
      case FaultKind::kTimeoutSkew:
        e.site = static_cast<uint32_t>(rng.NextBounded(spec.num_sites));
        e.arg = static_cast<uint64_t>(rng.NextInt(500, 2000));
        break;
    }
    plan.events.push_back(e);
  }

  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return plan;
}

}  // namespace dvp::chaos
