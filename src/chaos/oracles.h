// Mid-flight invariant oracles. Each is a pure check over the cluster's
// current state, designed to be evaluated at *random instants during* a
// chaos run — not only at quiescence. A violation returns an Internal status
// whose message names the oracle and the offending state.
//
//  * conservation (durable)  — §3's Σ fragments + Σ live Vm = N, computed
//    from stable storage alone (verify::AuditAll).
//  * conservation (volatile) — the same sum with every up site's live
//    in-memory fragment substituted, plus volatile/durable agreement; the
//    stores are written in lockstep with log forces, so divergence at an
//    event boundary is a bug the stable view cannot see.
//  * exactly-once Vm accounting — across all logs: a VmId is created at most
//    once, accepted at most once system-wide, every acceptance matches its
//    creation's (item, amount), and a sender's VmAckedRec implies a durable
//    acceptance somewhere.
//  * WAL-prefix recoverability — every prefix of every site's log (from the
//    checkpoint on) rebuilds without error into domain-valid fragments: no
//    crash point leaves a state recovery cannot handle.
#pragma once

#include <cstdint>
#include <span>

#include <string>

#include "common/status.h"
#include "dvpcore/catalog.h"
#include "system/cluster.h"
#include "wal/stable_storage.h"

namespace dvp::obs {
class TraceRecorder;
}  // namespace dvp::obs

namespace dvp::chaos {

struct OracleOptions {
  bool conservation = true;
  bool volatile_view = true;
  bool exactly_once = true;
  bool wal_prefix = true;
  /// Transaction-scoped cross-item conservation: every atomic-set commit
  /// record is zero-sum, and the sum over the whole item set balances with
  /// atomic sets excluded (verify::CheckAtomicSetCommits + AuditGroup).
  bool atomic_commits = true;
  /// WAL-prefix audit is O(suffix²); beyond this many suffix records the
  /// prefixes are strided instead of exhaustive.
  uint64_t wal_prefix_exhaustive_limit = 400;
};

/// Exactly-once Vm accounting over all logs.
Status CheckExactlyOnce(std::span<const wal::StableStorage* const> storages);

/// WAL-prefix recoverability for one site's log.
Status CheckWalPrefixes(const wal::StableStorage& storage,
                        const core::Catalog& catalog,
                        uint64_t exhaustive_limit);

/// Runs every enabled oracle against the cluster; first violation wins.
Status CheckInvariants(const system::Cluster& cluster,
                       const OracleOptions& opts);

/// Trace-backed explanation of a conservation / exactly-once violation:
/// re-walks every log's Vm records and names each anomaly — a VmId created or
/// accepted more than once, accepted without a creation, accepted with a
/// mismatched (item, amount), or still open — with its endpoints and, when a
/// TraceRecorder was attached to the run, the virtual times of the matching
/// vm.born / vm.accepted events. A created record with no vm.born event is
/// called out explicitly: it was planted in the log behind the Vm layer's
/// back. Returns at most eight lines; empty when the logs are clean (the
/// violation lies elsewhere, e.g. a torn fragment write).
std::string ExplainViolation(
    std::span<const wal::StableStorage* const> storages,
    const obs::TraceRecorder* trace);

}  // namespace dvp::chaos
