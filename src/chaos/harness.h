// The chaos harness: one deterministic adversarial run, end to end.
//
// Determinism contract: a run is a pure function of its ChaosCase —
//     run = f(seed, fault-plan, perturbation)
// The workload (every submission's site, operation and amount, every
// redistribution) is precomputed from `seed` before the clock starts, the
// fault plan is applied at its scheduled instants, and the only other
// randomness is the kernel's perturbation stream (itself seeded). Two runs
// of the same case produce identical event sequences, identical counters
// and an identical digest — which is what makes counterexamples shrinkable
// and replayable as regression tests.
//
// Oracles fire mid-flight: probe events at seeded random instants evaluate
// the full invariant suite (conservation in both views, exactly-once Vm
// accounting, WAL-prefix recoverability, the non-blocking latency bound)
// while faults are still live, then again after a finalize/drain phase.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/fault_plan.h"
#include "chaos/oracles.h"
#include "common/types.h"

namespace dvp::obs {
class TraceRecorder;
}  // namespace dvp::obs

namespace dvp::chaos {

/// Marker for "pick a random up site per submission".
inline constexpr uint32_t kAnySite = 0xffffffffu;

/// The deterministic workload a chaos run drives. Aggregate: pinned cases
/// are pasted into tests as brace-literals.
struct WorkloadSpec {
  uint32_t sites = 4;
  uint32_t items = 2;
  int64_t total = 240;            ///< initial total of item 0 (+17 per item)
  uint32_t txns = 80;             ///< submissions over the run
  SimTime gap_us = 20'000;        ///< mean inter-submission gap
  uint32_t submit_site = kAnySite;
  uint32_t read_permille = 0;     ///< share of kReadFull transactions
  uint32_t redist_permille = 150; ///< share of SendValue/Prefetch actions
  int64_t max_amount = 40;
  SimTime timeout_us = 150'000;
  uint32_t loss_permille = 0;     ///< baseline link loss (plan may ramp it)
  uint32_t dup_permille = 0;
  // New knobs append here: pinned cases are positional brace-literals, so
  // inserting above would silently re-map every reproducer in the tree.
  /// Group-commit batch bound per site; 0 or 1 = force per append (off).
  uint32_t group_commit_records = 0;
  /// Group-commit timer bound; only meaningful with records >= 2.
  SimTime group_commit_delay_us = 0;
  /// Transport frame coalescing (0/1).
  uint32_t coalesce = 0;
  /// Placement layer: surplus-hint piggyback + surplus-directed targeting
  /// with paced gather-retry rounds (0/1).
  uint32_t surplus_hints = 0;
  /// Background rebalancer (0/1; only meaningful with surplus_hints).
  uint32_t rebalance = 0;
  /// Share of submissions that are two-item atomic transfers (decrement one
  /// Zipf-ish item, increment another, one timestamp, zero-sum). Needs
  /// items >= 2; ignored otherwise.
  uint32_t transfer_permille = 0;
  /// Share that are two-item "order" atomic sets (stock down, revenue up).
  uint32_t order_permille = 0;
  /// Share of single-item submissions that are stamped snapshot reads
  /// (ReadMode::kSnapshot — no drain, no locks). At 0 no extra RNG draw is
  /// consumed, so pre-existing seeds keep their exact action stream. When
  /// nonzero the run also records committed history and checks every
  /// snapshot cut against the windowed consistent-cut oracle at finalize.
  uint32_t snapshot_permille = 0;

  friend bool operator==(const WorkloadSpec&, const WorkloadSpec&) = default;
};

/// Everything that determines a run. ToLiteral() emits a paste-able
/// reproducer; the shrinker minimises the plan (and workload) while the
/// failure persists.
struct ChaosCase {
  uint64_t seed = 1;
  /// Schedule perturbation: 0 disables; nonzero seeds the tie-break shuffle.
  uint64_t perturb_seed = 0;
  /// Bounded random delivery jitter (only with perturb_seed != 0).
  SimTime max_jitter_us = 0;
  WorkloadSpec workload;
  FaultPlan plan;

  std::string ToLiteral() const;

  friend bool operator==(const ChaosCase&, const ChaosCase&) = default;
};

struct RunOptions {
  OracleOptions oracles;
  uint32_t probes = 4;            ///< mid-flight oracle instants
  /// After the plan and workload end: heal, recover everyone, clear link
  /// faults, and require in-flight value to drain to zero.
  bool finalize = true;
  SimTime drain_us = 30'000'000;
  /// Debug hook proving the oracle→shrink pipeline: at this virtual time a
  /// bogus Vm-creation record is planted in site 0's log, violating
  /// conservation by +1 in-flight unit. 0 = off.
  SimTime planted_violation_at_us = 0;
  /// Record applied faults and probe outcomes into RunResult::trace.
  bool record_trace = true;
  /// Audit durable conservation after EVERY simulation event, not just at
  /// the probe instants (expensive — keep the workload modest).
  bool audit_every_event = false;
  /// Optional causal trace recorder, shared by every component of every site
  /// in the run. Recording is passive (never touches the kernel queue or any
  /// RNG), so a traced run executes the same event sequence — and produces
  /// the same digest — as an untraced one.
  obs::TraceRecorder* trace = nullptr;
};

struct RunResult {
  bool ok = true;
  std::string violation;          ///< first oracle failure (empty when ok)
  /// Trace-backed account of the first Vm-accounting anomaly behind the
  /// violation: which Vm double-counted (or appeared from thin air), between
  /// which sites, at what virtual time. Empty when ok or unexplained.
  std::string explanation;
  SimTime violation_time = -1;
  uint64_t events_executed = 0;
  uint64_t submitted = 0;         ///< submissions accepted by an up site
  uint64_t skipped = 0;           ///< submissions aimed at a down site
  uint64_t decided = 0;
  uint64_t committed = 0;
  SimTime max_latency_us = 0;
  SimTime latency_bound_us = 0;
  /// FNV-1a over the run's observable outcome (decisions, counters, audit
  /// breakdowns). Identical cases yield identical digests — the determinism
  /// check of the swarm runner.
  uint64_t digest = 0;
  std::vector<std::string> trace;
};

/// Executes one chaos case. Deterministic; never throws on oracle failure —
/// the violation is reported in the result.
RunResult RunCase(const ChaosCase& c, const RunOptions& opts = {});

/// Swarm-testing case generator: draws a workload shape, a perturbation and
/// a fault plan from `seed` alone, varying which fault classes are active so
/// different seeds explore different failure-mode mixes. Used by the
/// chaos_runner swarm and the property tests.
ChaosCase MakeSwarmCase(uint64_t seed);

}  // namespace dvp::chaos
