// Counterexample shrinking. Because a run is a pure function of its
// ChaosCase, a failing case can be minimised mechanically: greedily delete
// fault-plan entries (ddmin-style chunks, then singles), advance survivors
// toward t=0, shrink the workload, and drop the schedule perturbation — each
// candidate is re-run and kept only if the failure persists. The result is a
// paste-able one-line ChaosCase literal for a regression test.
#pragma once

#include <cstdint>
#include <string>

#include "chaos/harness.h"

namespace dvp::chaos {

struct ShrinkOptions {
  /// The run configuration the failure was observed under; every candidate
  /// is re-executed with exactly these options (traces disabled).
  RunOptions run;
  /// Re-execution budget. Shrinking stops — keeping the best case so far —
  /// when it is exhausted.
  uint32_t max_runs = 200;
};

struct ShrinkResult {
  ChaosCase minimal;
  /// The failing result of `minimal`.
  RunResult result;
  /// Violation message of the *original* case (shrinking may surface a
  /// different oracle; any failure counts as reproducing).
  std::string original_violation;
  uint32_t runs = 0;  ///< executions spent, including the initial replay
};

/// Minimises a failing case. If `c` does not actually fail under `opts.run`,
/// returns it unchanged with result.ok == true.
ShrinkResult Shrink(const ChaosCase& c, const ShrinkOptions& opts = {});

}  // namespace dvp::chaos
