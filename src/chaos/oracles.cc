#include "chaos/oracles.h"

#include <cstring>
#include <map>
#include <variant>
#include <vector>

#include "dvpcore/value_store.h"
#include "obs/trace.h"
#include "recovery/recovery.h"
#include "verify/conservation.h"
#include "vm/vm_manager.h"
#include "wal/record.h"

namespace dvp::chaos {

namespace {

struct VmLedger {
  uint64_t creates = 0;
  uint64_t accepts = 0;
  uint64_t acks = 0;
  ItemId created_item;
  int64_t created_amount = 0;
  ItemId accepted_item;
  int64_t accepted_amount = 0;
};

}  // namespace

Status CheckExactlyOnce(std::span<const wal::StableStorage* const> storages) {
  std::map<VmId, VmLedger> ledger;
  for (const wal::StableStorage* storage : storages) {
    uint64_t ignored = 0;
    (void)storage->ScanPrefix(
        0, storage->log_size(),
        [&](Lsn, const wal::LogRecord& rec) {
          if (const auto* c = std::get_if<wal::VmCreateRec>(&rec)) {
            VmLedger& l = ledger[c->vm];
            ++l.creates;
            l.created_item = c->item;
            l.created_amount = c->amount;
          } else if (const auto* a = std::get_if<wal::VmAcceptRec>(&rec)) {
            VmLedger& l = ledger[a->vm];
            ++l.accepts;
            l.accepted_item = a->item;
            l.accepted_amount = a->amount;
          } else if (const auto* k = std::get_if<wal::VmAckedRec>(&rec)) {
            ++ledger[k->vm].acks;
          }
        },
        &ignored);
  }
  for (const auto& [vm, l] : ledger) {
    std::string id = "vm " + vm.ToString();
    if (l.creates > 1) {
      return Status::Internal("exactly-once: " + id + " created " +
                              std::to_string(l.creates) + " times");
    }
    if (l.accepts > 1) {
      return Status::Internal("exactly-once: " + id + " accepted " +
                              std::to_string(l.accepts) +
                              " times across the system");
    }
    if (l.accepts == 1 && l.creates == 0) {
      return Status::Internal("exactly-once: " + id +
                              " accepted without a creation record");
    }
    if (l.accepts == 1 &&
        (l.accepted_item != l.created_item ||
         l.accepted_amount != l.created_amount)) {
      return Status::Internal(
          "exactly-once: " + id + " accepted (item " +
          l.accepted_item.ToString() + ", amount " +
          std::to_string(l.accepted_amount) + ") != created (item " +
          l.created_item.ToString() + ", amount " +
          std::to_string(l.created_amount) + ")");
    }
    if (l.acks > 0 && l.accepts == 0) {
      return Status::Internal("exactly-once: " + id +
                              " acked at the sender but never accepted");
    }
  }
  return Status::OK();
}

Status CheckWalPrefixes(const wal::StableStorage& storage,
                        const core::Catalog& catalog,
                        uint64_t exhaustive_limit) {
  uint64_t from = storage.checkpoint_upto();
  uint64_t size = storage.log_size();
  uint64_t suffix = size - from;
  uint64_t stride =
      suffix <= exhaustive_limit ? 1 : (suffix / exhaustive_limit + 1);
  for (uint64_t limit = from;; limit += stride) {
    // Always include the full-log prefix even when striding.
    if (limit > size) limit = size;
    core::ValueStore scratch(&catalog);
    recovery::RecoveryReport report;
    Status s = recovery::RebuildStorePrefix(storage, limit, &scratch, &report);
    if (!s.ok()) {
      return Status::Internal("wal-prefix: site " + storage.site().ToString() +
                              " prefix " + std::to_string(limit) +
                              " fails to rebuild: " + s.message());
    }
    if (report.valid_prefix < limit) {
      return Status::Internal("wal-prefix: site " + storage.site().ToString() +
                              " record " +
                              std::to_string(report.valid_prefix) +
                              " is undecodable mid-log");
    }
    for (ItemId item : catalog.AllItems()) {
      core::Value v = scratch.value(item);
      if (!catalog.domain(item).ValidFragment(v)) {
        return Status::Internal(
            "wal-prefix: site " + storage.site().ToString() + " prefix " +
            std::to_string(limit) + " rebuilds item " + item.ToString() +
            " to domain-invalid value " + std::to_string(v));
      }
    }
    if (limit == size) break;
  }
  return Status::OK();
}

std::string ExplainViolation(
    std::span<const wal::StableStorage* const> storages,
    const obs::TraceRecorder* trace) {
  struct Entry {
    uint64_t creates = 0;
    uint64_t accepts = 0;
    uint64_t acks = 0;
    SiteId dst;
    ItemId item;
    int64_t amount = 0;
    ItemId accepted_item;
    int64_t accepted_amount = 0;
  };
  std::map<VmId, Entry> ledger;
  for (const wal::StableStorage* storage : storages) {
    uint64_t ignored = 0;
    (void)storage->ScanPrefix(
        0, storage->log_size(),
        [&](Lsn, const wal::LogRecord& rec) {
          if (const auto* c = std::get_if<wal::VmCreateRec>(&rec)) {
            Entry& e = ledger[c->vm];
            ++e.creates;
            e.dst = c->dst;
            e.item = c->item;
            e.amount = c->amount;
          } else if (const auto* a = std::get_if<wal::VmAcceptRec>(&rec)) {
            Entry& e = ledger[a->vm];
            ++e.accepts;
            e.accepted_item = a->item;
            e.accepted_amount = a->amount;
          } else if (const auto* k = std::get_if<wal::VmAckedRec>(&rec)) {
            ++ledger[k->vm].acks;
          }
        },
        &ignored);
  }

  // Every virtual time at which the named vm.* event fired for this VmId.
  // The Vm layer stamps each such event with the vm id as its first arg.
  auto times = [trace](const char* event, VmId vm) -> std::string {
    if (trace == nullptr) return "";
    std::string out;
    for (const obs::TraceEvent& e : trace->events()) {
      if (std::strcmp(e.name, event) == 0 && e.k1 != nullptr &&
          e.v1 == vm.value()) {
        out += (out.empty() ? " at t=" : ",") + std::to_string(e.ts);
      }
    }
    return out;
  };

  std::vector<std::string> lines;
  for (const auto& [vm, e] : ledger) {
    std::string route = "site " + vm::VmIdSite(vm).ToString() + " -> site " +
                        e.dst.ToString() + ", item " + e.item.ToString() +
                        ", amount " + std::to_string(e.amount);
    if (e.creates > 1) {
      lines.push_back("vm " + vm.ToString() + " created " +
                      std::to_string(e.creates) + " times (" + route + ")" +
                      times("vm.born", vm));
    }
    if (e.accepts > 1) {
      lines.push_back("vm " + vm.ToString() + " double-counted: accepted " +
                      std::to_string(e.accepts) + " times (" + route + ")" +
                      times("vm.accepted", vm));
    }
    if (e.accepts == 1 && e.creates == 0) {
      lines.push_back("vm " + vm.ToString() +
                      " accepted without a creation record" +
                      times("vm.accepted", vm));
    }
    if (e.accepts == 1 && e.creates == 1 &&
        (e.accepted_item != e.item || e.accepted_amount != e.amount)) {
      lines.push_back("vm " + vm.ToString() + " accepted (item " +
                      e.accepted_item.ToString() + ", amount " +
                      std::to_string(e.accepted_amount) +
                      ") != created (item " + e.item.ToString() +
                      ", amount " + std::to_string(e.amount) + ")");
    }
    if (e.creates >= 1 && e.accepts == 0) {
      std::string born = times("vm.born", vm);
      if (trace != nullptr && born.empty()) {
        born = " (no vm.born trace event — record not produced by the Vm "
               "layer)";
      }
      lines.push_back("vm " + vm.ToString() + " open: " + route +
                      " in flight, born" + born);
    }
  }

  std::string out;
  for (size_t i = 0; i < lines.size() && i < 8; ++i) out += lines[i] + "\n";
  if (lines.size() > 8) {
    out += "(+" + std::to_string(lines.size() - 8) + " more)\n";
  }
  return out;
}

Status CheckInvariants(const system::Cluster& cluster,
                       const OracleOptions& opts) {
  auto storages = cluster.Storages();
  if (opts.conservation) {
    Status s = verify::AuditAll(storages, cluster.catalog());
    if (!s.ok()) return s;
  }
  if (opts.volatile_view) {
    Status s =
        verify::AuditAll(storages, cluster.catalog(), cluster.LiveView());
    if (!s.ok()) return s;
  }
  if (opts.exactly_once) {
    Status s = CheckExactlyOnce(storages);
    if (!s.ok()) return s;
  }
  if (opts.atomic_commits) {
    Status s = verify::CheckAtomicSetCommits(storages);
    if (!s.ok()) return s;
    std::vector<ItemId> all = cluster.catalog().AllItems();
    s = verify::AuditGroup(storages, cluster.catalog(), all);
    if (!s.ok()) return s;
  }
  if (opts.wal_prefix) {
    for (const wal::StableStorage* storage : storages) {
      Status s = CheckWalPrefixes(*storage, cluster.catalog(),
                                  opts.wal_prefix_exhaustive_limit);
      if (!s.ok()) return s;
    }
  }
  return Status::OK();
}

}  // namespace dvp::chaos
