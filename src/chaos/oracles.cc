#include "chaos/oracles.h"

#include <map>
#include <variant>

#include "dvpcore/value_store.h"
#include "recovery/recovery.h"
#include "verify/conservation.h"
#include "wal/record.h"

namespace dvp::chaos {

namespace {

struct VmLedger {
  uint64_t creates = 0;
  uint64_t accepts = 0;
  uint64_t acks = 0;
  ItemId created_item;
  int64_t created_amount = 0;
  ItemId accepted_item;
  int64_t accepted_amount = 0;
};

}  // namespace

Status CheckExactlyOnce(std::span<const wal::StableStorage* const> storages) {
  std::map<VmId, VmLedger> ledger;
  for (const wal::StableStorage* storage : storages) {
    uint64_t ignored = 0;
    (void)storage->ScanPrefix(
        0, storage->log_size(),
        [&](Lsn, const wal::LogRecord& rec) {
          if (const auto* c = std::get_if<wal::VmCreateRec>(&rec)) {
            VmLedger& l = ledger[c->vm];
            ++l.creates;
            l.created_item = c->item;
            l.created_amount = c->amount;
          } else if (const auto* a = std::get_if<wal::VmAcceptRec>(&rec)) {
            VmLedger& l = ledger[a->vm];
            ++l.accepts;
            l.accepted_item = a->item;
            l.accepted_amount = a->amount;
          } else if (const auto* k = std::get_if<wal::VmAckedRec>(&rec)) {
            ++ledger[k->vm].acks;
          }
        },
        &ignored);
  }
  for (const auto& [vm, l] : ledger) {
    std::string id = "vm " + vm.ToString();
    if (l.creates > 1) {
      return Status::Internal("exactly-once: " + id + " created " +
                              std::to_string(l.creates) + " times");
    }
    if (l.accepts > 1) {
      return Status::Internal("exactly-once: " + id + " accepted " +
                              std::to_string(l.accepts) +
                              " times across the system");
    }
    if (l.accepts == 1 && l.creates == 0) {
      return Status::Internal("exactly-once: " + id +
                              " accepted without a creation record");
    }
    if (l.accepts == 1 &&
        (l.accepted_item != l.created_item ||
         l.accepted_amount != l.created_amount)) {
      return Status::Internal(
          "exactly-once: " + id + " accepted (item " +
          l.accepted_item.ToString() + ", amount " +
          std::to_string(l.accepted_amount) + ") != created (item " +
          l.created_item.ToString() + ", amount " +
          std::to_string(l.created_amount) + ")");
    }
    if (l.acks > 0 && l.accepts == 0) {
      return Status::Internal("exactly-once: " + id +
                              " acked at the sender but never accepted");
    }
  }
  return Status::OK();
}

Status CheckWalPrefixes(const wal::StableStorage& storage,
                        const core::Catalog& catalog,
                        uint64_t exhaustive_limit) {
  uint64_t from = storage.checkpoint_upto();
  uint64_t size = storage.log_size();
  uint64_t suffix = size - from;
  uint64_t stride =
      suffix <= exhaustive_limit ? 1 : (suffix / exhaustive_limit + 1);
  for (uint64_t limit = from;; limit += stride) {
    // Always include the full-log prefix even when striding.
    if (limit > size) limit = size;
    core::ValueStore scratch(&catalog);
    recovery::RecoveryReport report;
    Status s = recovery::RebuildStorePrefix(storage, limit, &scratch, &report);
    if (!s.ok()) {
      return Status::Internal("wal-prefix: site " + storage.site().ToString() +
                              " prefix " + std::to_string(limit) +
                              " fails to rebuild: " + s.message());
    }
    if (report.valid_prefix < limit) {
      return Status::Internal("wal-prefix: site " + storage.site().ToString() +
                              " record " +
                              std::to_string(report.valid_prefix) +
                              " is undecodable mid-log");
    }
    for (ItemId item : catalog.AllItems()) {
      core::Value v = scratch.value(item);
      if (!catalog.domain(item).ValidFragment(v)) {
        return Status::Internal(
            "wal-prefix: site " + storage.site().ToString() + " prefix " +
            std::to_string(limit) + " rebuilds item " + item.ToString() +
            " to domain-invalid value " + std::to_string(v));
      }
    }
    if (limit == size) break;
  }
  return Status::OK();
}

Status CheckInvariants(const system::Cluster& cluster,
                       const OracleOptions& opts) {
  auto storages = cluster.Storages();
  if (opts.conservation) {
    Status s = verify::AuditAll(storages, cluster.catalog());
    if (!s.ok()) return s;
  }
  if (opts.volatile_view) {
    Status s =
        verify::AuditAll(storages, cluster.catalog(), cluster.LiveView());
    if (!s.ok()) return s;
  }
  if (opts.exactly_once) {
    Status s = CheckExactlyOnce(storages);
    if (!s.ok()) return s;
  }
  if (opts.wal_prefix) {
    for (const wal::StableStorage* storage : storages) {
      Status s = CheckWalPrefixes(*storage, cluster.catalog(),
                                  opts.wal_prefix_exhaustive_limit);
      if (!s.ok()) return s;
    }
  }
  return Status::OK();
}

}  // namespace dvp::chaos
