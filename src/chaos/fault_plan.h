// FaultPlan: a timed program of faults, drawn from a single seed. This is
// the chaos harness's search space — one plan entry is one fault action at
// one virtual instant, and a whole adversarial schedule (site crashes and
// recoveries, partition reshuffles, per-link loss/delay/duplication ramps,
// clock-skewed timeouts) is just a vector of entries. Because the plan is
// plain data, a failing run can be *shrunk* (entries deleted, times
// advanced) and the minimal plan pasted into a regression test as a literal.
//
// Generation follows the swarm-testing result: rather than one fixed fault
// mix, each seed first draws WHICH fault classes are active this run, then
// draws a program over the active classes — randomized mixes find more bugs
// than any single hand-tuned mix.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace dvp::chaos {

enum class FaultKind : uint8_t {
  kCrash = 0,     ///< crash site `site`
  kRecover,       ///< recover site `site` (no-op when up / mid-recovery)
  kPartition,     ///< split sites into two groups by the bitmask in `site`
  kHeal,          ///< restore full connectivity
  kLinkLoss,      ///< all links: loss probability = arg / 1000
  kLinkDelay,     ///< all links: base delay = arg us, jitter mean = arg / 2
  kLinkDup,       ///< all links: duplication probability = arg / 1000
  kLinkLossOne,   ///< one directed link (`site` = src * n + dst): loss = arg/1000
  kTimeoutSkew,   ///< site `site`: future txn timeouts scale by arg / 1000
};

std::string_view FaultKindName(FaultKind kind);

/// One fault action. Aggregate — regression tests paste shrunk plans as
/// brace-literals, so keep this free of constructors.
struct FaultEvent {
  SimTime at = 0;       ///< virtual time the fault fires
  FaultKind kind = FaultKind::kHeal;
  uint32_t site = 0;    ///< target site / partition bitmask / link index
  uint64_t arg = 0;     ///< magnitude (permille or microseconds, per kind)

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

struct FaultPlan {
  std::vector<FaultEvent> events;  ///< sorted by `at` (ties in plan order)

  /// C++ brace-literal for pasting into a regression test, e.g.
  ///   {{120000, chaos::FaultKind::kCrash, 2, 0}, ...}
  std::string ToLiteral() const;
  /// Human-readable multi-line summary for logs.
  std::string ToString() const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Knobs bounding what a generated plan may contain. Property tests narrow
/// these (e.g. the non-blocking test forbids crashing the submitting site);
/// the swarm runner leaves them wide open.
struct PlanSpec {
  uint32_t num_sites = 4;
  SimTime horizon_us = 2'000'000;  ///< faults are drawn in [0, horizon)
  uint32_t max_events = 24;        ///< plan length is drawn in [1, max]
  uint32_t crashable_mask = ~0u;   ///< bit s set = site s may crash
  bool crashes = true;
  bool partitions = true;
  bool link_faults = true;
  bool skew = true;
};

/// Draws a fault plan from `seed`. Same (seed, spec) → same plan, always.
FaultPlan GeneratePlan(uint64_t seed, const PlanSpec& spec);

}  // namespace dvp::chaos
