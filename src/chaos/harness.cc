#include "chaos/harness.h"

#include <algorithm>
#include <string>

#include "common/rng.h"
#include "dvpcore/catalog.h"
#include "system/cluster.h"
#include "verify/serializability.h"
#include "vm/vm_manager.h"
#include "wal/record.h"

namespace dvp::chaos {

namespace {

std::string U64(uint64_t v) { return std::to_string(v); }

/// One precomputed workload action. Everything random about the workload is
/// drawn here, before the clock starts, so the action stream is identical
/// across replays regardless of how faults perturb the interleaving.
struct Action {
  enum Kind { kTxn, kSend, kPrefetch };
  enum Multi : uint8_t { kSingle = 0, kTransfer = 1, kOrder = 2 };
  SimTime at = 0;
  Kind kind = kTxn;
  uint32_t site = 0;
  uint32_t dst = 0;
  uint32_t item = 0;
  int64_t amount = 1;
  bool is_read = false;
  bool is_snapshot = false;
  bool is_decrement = false;
  /// Multi-item atomic set: item is the decrement leg, item2 the increment.
  Multi multi = kSingle;
  uint32_t item2 = 0;
};

std::vector<Action> PrecomputeWorkload(const ChaosCase& c) {
  const WorkloadSpec& w = c.workload;
  Rng rng(c.seed * 0x51a1d + 11);
  std::vector<Action> actions;
  actions.reserve(w.txns);
  SimTime t = 0;
  for (uint32_t i = 0; i < w.txns; ++i) {
    t += rng.NextInt(1, std::max<SimTime>(2, 2 * w.gap_us));
    Action a;
    a.at = t;
    a.site = w.submit_site != kAnySite
                 ? w.submit_site
                 : static_cast<uint32_t>(rng.NextBounded(w.sites));
    a.dst = static_cast<uint32_t>(rng.NextBounded(w.sites));
    a.item = static_cast<uint32_t>(rng.NextBounded(std::max(1u, w.items)));
    a.amount = rng.NextInt(1, std::max<int64_t>(1, w.max_amount));
    uint64_t roll = rng.NextBounded(1000);
    if (roll < w.redist_permille) {
      a.kind = rng.NextBool(0.5) ? Action::kSend : Action::kPrefetch;
      a.amount = rng.NextInt(1, 5);
    } else {
      a.kind = Action::kTxn;
      // Multi-op draws are gated on the knobs so every pre-existing seed
      // consumes exactly the RNG stream it always did.
      uint32_t mp = w.transfer_permille + w.order_permille;
      if (mp > 0 && w.items >= 2) {
        uint64_t mroll = rng.NextBounded(1000);
        if (mroll < mp) {
          a.multi = mroll < w.transfer_permille ? Action::kTransfer
                                                : Action::kOrder;
          do {
            a.item2 = static_cast<uint32_t>(rng.NextBounded(w.items));
          } while (a.item2 == a.item);
        }
      }
      if (a.multi == Action::kSingle) {
        a.is_read = rng.NextBounded(1000) < w.read_permille;
        a.is_decrement = rng.NextBool(0.5);
        // Gated on the knob: seeds with snapshot_permille == 0 draw nothing
        // extra and keep their exact action stream.
        if (w.snapshot_permille > 0 && !a.is_read) {
          a.is_snapshot = rng.NextBounded(1000) < w.snapshot_permille;
        }
      }
    }
    actions.push_back(a);
  }
  return actions;
}

void Fail(RunResult* r, SimTime now, const std::string& what) {
  if (!r->ok) return;  // first violation wins
  r->ok = false;
  r->violation = what;
  r->violation_time = now;
}

uint64_t Fnv1a(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

uint64_t FnvStr(uint64_t h, const std::string& s) {
  for (char ch : s) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

std::string ChaosCase::ToLiteral() const {
  const WorkloadSpec& w = workload;
  std::string out = "chaos::ChaosCase{" + U64(seed) + ", " + U64(perturb_seed) +
                    ", " + std::to_string(max_jitter_us) + ", ";
  out += "{" + U64(w.sites) + ", " + U64(w.items) + ", " +
         std::to_string(w.total) + ", " + U64(w.txns) + ", " +
         std::to_string(w.gap_us) + ", " +
         (w.submit_site == kAnySite ? std::string("chaos::kAnySite")
                                    : U64(w.submit_site)) +
         ", " + U64(w.read_permille) + ", " + U64(w.redist_permille) + ", " +
         std::to_string(w.max_amount) + ", " + std::to_string(w.timeout_us) +
         ", " + U64(w.loss_permille) + ", " + U64(w.dup_permille) + ", " +
         U64(w.group_commit_records) + ", " +
         std::to_string(w.group_commit_delay_us) + ", " + U64(w.coalesce) +
         ", " + U64(w.surplus_hints) + ", " + U64(w.rebalance) + ", " +
         U64(w.transfer_permille) + ", " + U64(w.order_permille) + ", " +
         U64(w.snapshot_permille) + "}, ";
  out += plan.ToLiteral() + "}";
  return out;
}

RunResult RunCase(const ChaosCase& c, const RunOptions& opts) {
  const WorkloadSpec& w = c.workload;
  RunResult result;

  core::Catalog catalog;
  std::vector<ItemId> items;
  for (uint32_t i = 0; i < std::max(1u, w.items); ++i) {
    items.push_back(catalog.AddItem("item" + std::to_string(i),
                                    core::CountDomain::Instance(),
                                    w.total + 17 * i));
  }

  system::ClusterOptions copts;
  copts.num_sites = w.sites;
  copts.seed = c.seed;
  copts.link.loss_prob = w.loss_permille / 1000.0;
  copts.link.duplicate_prob = w.dup_permille / 1000.0;
  copts.site.txn.timeout_us = w.timeout_us;
  if (w.group_commit_records >= 2) {
    copts.site.group_commit.enabled = true;
    copts.site.group_commit.max_records = w.group_commit_records;
    copts.site.group_commit.max_delay_us = w.group_commit_delay_us;
  }
  copts.site.transport.coalesce = w.coalesce != 0;
  // Chaos defaults to randomized fan-out (first-k-by-id is a test-only mode
  // that starves high-id sites); surplus_hints upgrades it to hint-directed
  // targeting with gather-retry rounds inside the unchanged timeout budget.
  copts.site.txn.targeting = w.surplus_hints != 0
                                 ? txn::TargetPolicy::kSurplus
                                 : txn::TargetPolicy::kRandom;
  if (w.surplus_hints != 0) {
    copts.site.placement.hints_per_frame = 4;
    copts.site.txn.gather_retry_us = std::max<SimTime>(w.timeout_us / 3, 1);
  }
  if (w.rebalance != 0) {
    copts.site.placement.rebalance = true;
  }
  copts.site.trace = opts.trace;
  if (c.perturb_seed != 0) {
    copts.perturb.seed = c.perturb_seed;
    copts.perturb.shuffle_ties = true;
    copts.perturb.max_jitter_us = c.max_jitter_us;
  }
  system::Cluster cluster(&catalog, copts);
  cluster.BootstrapEven();

  auto trace = [&](const std::string& line) {
    if (opts.record_trace && result.trace.size() < 256) {
      result.trace.push_back("t=" + std::to_string(cluster.Now()) + " " + line);
    }
  };

  if (opts.audit_every_event) {
    cluster.kernel().set_post_event_hook([&]() {
      if (!result.ok) return;
      Status s = cluster.AuditAll();
      if (!s.ok()) {
        Fail(&result, cluster.Now(), "post-event audit: " + s.message());
      }
    });
  }

  // ---- The non-blocking bound this run must honour ------------------------
  uint64_t max_skew_permille = 1000;
  for (const FaultEvent& e : c.plan.events) {
    if (e.kind == FaultKind::kTimeoutSkew) {
      max_skew_permille = std::max(max_skew_permille, e.arg);
    }
  }
  // Group commit defers the commit-point force by up to the batch timer, and
  // the force that makes the *reply* visible can lag one more timer period.
  result.latency_bound_us =
      static_cast<SimTime>(w.timeout_us * max_skew_permille / 1000) +
      2 * c.max_jitter_us + 2 * w.group_commit_delay_us + 1'000;

  // ---- Workload ------------------------------------------------------------
  // With snapshot reads in the mix the run also keeps a committed history:
  // every committed write plus every committed snapshot read, so the windowed
  // consistent-cut oracle can reject a torn cut at finalize. Recording is
  // passive (no kernel events, no RNG), so digests are unaffected.
  verify::HistoryChecker checker(&catalog);
  const bool check_cuts = w.snapshot_permille > 0;
  std::vector<Action> actions = PrecomputeWorkload(c);
  SimTime last_submit = actions.empty() ? 0 : actions.back().at;
  for (const Action& a : actions) {
    cluster.kernel().ScheduleAt(a.at, [&, a]() {
      // Resolve the acting site against liveness at fire time.
      uint32_t s = a.site;
      if (w.submit_site == kAnySite) {
        for (uint32_t k = 0; k < w.sites; ++k) {
          uint32_t cand = (a.site + k) % w.sites;
          if (cluster.site(SiteId(cand)).IsUp()) {
            s = cand;
            break;
          }
        }
      }
      if (!cluster.site(SiteId(s)).IsUp()) {
        ++result.skipped;
        return;
      }
      ItemId item = items[a.item];
      if (a.kind == Action::kSend) {
        (void)cluster.site(SiteId(s)).SendValue(SiteId(a.dst), item, a.amount);
        return;
      }
      if (a.kind == Action::kPrefetch) {
        cluster.site(SiteId(s)).Prefetch(item, a.amount);
        return;
      }
      txn::TxnSpec spec;
      if (a.multi == Action::kTransfer) {
        spec = txn::MakeTransfer(item, items[a.item2], a.amount);
      } else if (a.multi == Action::kOrder) {
        spec = txn::MakeOrder(item, items[a.item2], a.amount);
      } else if (a.is_read) {
        spec.ops = {txn::TxnOp::ReadFull(item)};
      } else if (a.is_snapshot) {
        spec.ops = {txn::TxnOp::ReadSnapshot(item)};
      } else {
        spec.ops = {a.is_decrement ? txn::TxnOp::Decrement(item, a.amount)
                                   : txn::TxnOp::Increment(item, a.amount)};
      }
      auto ok = cluster.Submit(
          SiteId(s), spec, [&, spec](const txn::TxnResult& r) {
            ++result.decided;
            if (r.committed()) {
              ++result.committed;
              if (check_cuts) {
                // A crash reports forced-committed transactions with a fresh
                // result that carries no read values; such a read has no cut
                // to validate, so it is excluded from the history. Everything
                // else committed — writes and answered reads — goes in.
                bool read_lost = false;
                for (const txn::TxnOp& op : spec.ops) {
                  if ((op.kind == txn::TxnOp::Kind::kReadFull ||
                       op.kind == txn::TxnOp::Kind::kReadSnapshot) &&
                      !r.read_values.contains(op.item)) {
                    read_lost = true;
                  }
                }
                if (!read_lost) {
                  checker.RecordCommitAt(cluster.Now(), r.id, spec, r);
                }
              }
            }
            result.max_latency_us =
                std::max(result.max_latency_us, r.latency_us);
          });
      if (ok.ok()) {
        ++result.submitted;
      } else {
        ++result.skipped;
      }
    });
  }

  // ---- Fault plan ----------------------------------------------------------
  net::LinkParams shadow = copts.link;  // current all-links fault model
  SimTime plan_end = 0;
  for (const FaultEvent& e : c.plan.events) {
    plan_end = std::max(plan_end, e.at);
    cluster.kernel().ScheduleAt(e.at, [&, e]() {
      switch (e.kind) {
        case FaultKind::kCrash:
          if (e.site < w.sites && cluster.site(SiteId(e.site)).IsUp()) {
            cluster.CrashSite(SiteId(e.site));
            trace("crash site " + U64(e.site));
          }
          break;
        case FaultKind::kRecover:
          if (e.site < w.sites && !cluster.site(SiteId(e.site)).IsUp() &&
              !cluster.site(SiteId(e.site)).IsRecovering()) {
            cluster.RecoverSite(SiteId(e.site));
            trace("recover site " + U64(e.site));
          }
          break;
        case FaultKind::kPartition: {
          std::vector<SiteId> g0, g1;
          for (uint32_t s = 0; s < w.sites; ++s) {
            ((e.site >> s) & 1 ? g1 : g0).push_back(SiteId(s));
          }
          if (g0.empty() || g1.empty()) {
            cluster.Heal();
          } else {
            (void)cluster.Partition({g0, g1});
          }
          trace("partition mask=" + U64(e.site));
          break;
        }
        case FaultKind::kHeal:
          cluster.Heal();
          trace("heal");
          break;
        case FaultKind::kLinkLoss:
          shadow.loss_prob = e.arg / 1000.0;
          cluster.network().SetAllLinkParams(shadow);
          trace("link loss -> " + U64(e.arg) + "/1000");
          break;
        case FaultKind::kLinkDelay:
          shadow.base_delay_us = static_cast<SimTime>(e.arg);
          shadow.jitter_mean_us = e.arg / 2.0;
          cluster.network().SetAllLinkParams(shadow);
          trace("link delay -> " + U64(e.arg) + "us");
          break;
        case FaultKind::kLinkDup:
          shadow.duplicate_prob = e.arg / 1000.0;
          cluster.network().SetAllLinkParams(shadow);
          trace("link dup -> " + U64(e.arg) + "/1000");
          break;
        case FaultKind::kLinkLossOne: {
          uint32_t src = e.site / w.sites, dst = e.site % w.sites;
          net::LinkParams p = shadow;
          p.loss_prob = e.arg / 1000.0;
          cluster.network().SetLinkParams(SiteId(src), SiteId(dst), p);
          trace("link " + U64(src) + "->" + U64(dst) + " loss " + U64(e.arg) +
                "/1000");
          break;
        }
        case FaultKind::kTimeoutSkew:
          if (e.site < w.sites && cluster.site(SiteId(e.site)).IsUp()) {
            cluster.site(SiteId(e.site))
                .txns()
                ->set_timeout_skew_permille(static_cast<uint32_t>(e.arg));
            trace("timeout skew site " + U64(e.site) + " -> " + U64(e.arg) +
                  "/1000");
          }
          break;
      }
    });
  }

  // ---- Planted violation (debug hook) -------------------------------------
  if (opts.planted_violation_at_us > 0) {
    cluster.kernel().ScheduleAt(opts.planted_violation_at_us, [&]() {
      // A Vm that was never debited anywhere: +1 in-flight out of thin air.
      // Every conservation probe from here on must flag it.
      core::Value durable = cluster.site(SiteId(0)).DurableValue(items[0]);
      wal::VmCreateRec rec;
      rec.vm = vm::MakeVmId(SiteId(0), (uint64_t{1} << 40) + 1);
      rec.dst = SiteId(0);
      rec.item = items[0];
      rec.amount = 1;
      rec.write = wal::FragmentWrite{items[0], durable, 0, 0};
      cluster.storage(SiteId(0)).Append(wal::LogRecord(rec));
      trace("planted conservation violation");
    });
  }

  // ---- Mid-flight oracle probes -------------------------------------------
  SimTime active_end =
      std::max({last_submit + result.latency_bound_us + 100'000,
                plan_end + 100'000,
                opts.planted_violation_at_us + 50'000});
  Rng probe_rng(c.seed * 0x0bac1e + 29);
  std::vector<SimTime> probe_times;
  for (uint32_t i = 0; i < opts.probes; ++i) {
    probe_times.push_back(static_cast<SimTime>(
        probe_rng.NextBounded(static_cast<uint64_t>(active_end) + 1)));
  }
  auto run_oracles = [&](const char* where) {
    if (!result.ok) return;
    Status s = CheckInvariants(cluster, opts.oracles);
    if (!s.ok()) {
      Fail(&result, cluster.Now(), std::string(where) + ": " + s.message());
      trace(std::string("ORACLE VIOLATION (") + where + "): " + s.message());
      if (result.explanation.empty()) {
        result.explanation = ExplainViolation(cluster.Storages(), opts.trace);
      }
    } else if (result.max_latency_us > result.latency_bound_us) {
      Fail(&result, cluster.Now(),
           std::string(where) + ": non-blocking bound exceeded: latency " +
               std::to_string(result.max_latency_us) + "us > bound " +
               std::to_string(result.latency_bound_us) + "us");
    }
  };
  for (SimTime pt : probe_times) {
    cluster.kernel().ScheduleAt(pt, [&, pt]() {
      run_oracles("probe");
      if (opts.record_trace && result.ok) trace("probe ok");
      (void)pt;
    });
  }

  // ---- Drive ---------------------------------------------------------------
  cluster.RunFor(active_end + 1);

  if (opts.finalize) {
    // Clear every standing fault, bring everyone back, and let the system
    // drain: all in-flight value must reach a fragment.
    cluster.Heal();
    net::LinkParams clean;
    clean.loss_prob = 0;
    clean.duplicate_prob = 0;
    cluster.network().SetAllLinkParams(clean);
    for (int sweep = 0; sweep < 64; ++sweep) {
      bool all_up = true;
      for (uint32_t s = 0; s < w.sites; ++s) {
        site::Site& site = cluster.site(SiteId(s));
        if (!site.IsUp() && !site.IsRecovering()) site.Recover();
        if (!site.IsUp()) all_up = false;
      }
      if (all_up) break;
      cluster.RunFor(500'000);
    }
    cluster.RunUntilQuiescent(opts.drain_us);
  }

  // ---- Final oracle suite --------------------------------------------------
  run_oracles("final");
  if (result.ok && result.decided != result.submitted) {
    Fail(&result, cluster.Now(),
         "non-blocking violated: " +
             std::to_string(result.submitted - result.decided) +
             " of " + std::to_string(result.submitted) +
             " transactions never decided");
  }
  if (result.ok && check_cuts) {
    Status s = checker.CheckSnapshotCuts();
    if (!s.ok()) {
      Fail(&result, cluster.Now(), "snapshot cut oracle: " + s.message());
    }
  }
  if (result.ok && opts.finalize) {
    for (ItemId item : items) {
      auto b = cluster.Audit(item);
      if (b.in_flight != 0) {
        Fail(&result, cluster.Now(),
             "liveness: item " + item.ToString() + " retains " +
                 std::to_string(b.in_flight) + " in-flight value (" +
                 std::to_string(b.live_vms) + " live Vm) after drain");
        break;
      }
    }
  }

  // ---- Digest --------------------------------------------------------------
  result.events_executed = cluster.kernel().events_executed();
  uint64_t h = 0xcbf29ce484222325ull;
  h = Fnv1a(h, result.submitted);
  h = Fnv1a(h, result.decided);
  h = Fnv1a(h, result.committed);
  h = Fnv1a(h, result.skipped);
  h = Fnv1a(h, static_cast<uint64_t>(result.max_latency_us));
  h = Fnv1a(h, result.events_executed);
  h = Fnv1a(h, result.ok ? 1 : 0);
  for (ItemId item : items) {
    auto b = cluster.Audit(item);
    h = Fnv1a(h, static_cast<uint64_t>(b.site_total));
    h = Fnv1a(h, static_cast<uint64_t>(b.in_flight));
    h = Fnv1a(h, static_cast<uint64_t>(b.committed_delta));
  }
  CounterSet counters = cluster.AggregateCounters();
  for (const auto& [name, value] : counters.counters()) {
    h = FnvStr(h, name);
    h = Fnv1a(h, value);
  }
  result.digest = h;
  return result;
}

ChaosCase MakeSwarmCase(uint64_t seed) {
  Rng rng(seed ^ 0x5a9a);
  ChaosCase c;
  c.seed = seed;
  WorkloadSpec& w = c.workload;
  w.sites = 3 + static_cast<uint32_t>(rng.NextBounded(3));
  w.items = 1 + static_cast<uint32_t>(rng.NextBounded(2));
  w.total = 240;
  w.txns = 40 + static_cast<uint32_t>(rng.NextBounded(81));
  w.gap_us = 10'000 + static_cast<SimTime>(rng.NextBounded(20'001));
  w.read_permille = rng.NextBool(0.3) ? 100 : 0;
  w.redist_permille = static_cast<uint32_t>(rng.NextBounded(300));
  w.loss_permille =
      rng.NextBool(0.5) ? static_cast<uint32_t>(rng.NextBounded(120)) : 0;
  w.dup_permille =
      rng.NextBool(0.3) ? static_cast<uint32_t>(rng.NextBounded(100)) : 0;
  // Half the swarm runs with group commit on (so crashes land mid-batch and
  // must drop exactly the unforced suffix); coalescing toggles independently.
  if (rng.NextBool(0.5)) {
    w.group_commit_records = 2 + static_cast<uint32_t>(rng.NextBounded(15));
    w.group_commit_delay_us = 200 + static_cast<SimTime>(rng.NextBounded(4801));
  }
  w.coalesce = rng.NextBool(0.5) ? 1 : 0;
  // Half the swarm exercises the placement layer (hint-directed gathers and
  // retry rounds), and half of that runs the rebalancer too — its pushes are
  // ordinary Vm transfers, so the conservation and exactly-once oracles
  // police them like any other traffic.
  w.surplus_hints = rng.NextBool(0.5) ? 1 : 0;
  w.rebalance = (w.surplus_hints != 0 && rng.NextBool(0.5)) ? 1 : 0;
  if (rng.NextBool(0.7)) {
    c.perturb_seed = seed * 31 + 7;
    c.max_jitter_us =
        rng.NextBool(0.5) ? static_cast<SimTime>(rng.NextBounded(301)) : 0;
  }
  // A third of the swarm mixes in multi-item atomic sets, so transfers and
  // orders meet crashes, partitions and loss with the cross-item oracles
  // live. Drawn last: pre-existing draws keep their stream positions.
  if (rng.NextBool(0.33)) {
    if (w.items < 2) w.items = 2;
    w.transfer_permille = 50 + static_cast<uint32_t>(rng.NextBounded(301));
    w.order_permille =
        rng.NextBool(0.5) ? static_cast<uint32_t>(rng.NextBounded(201)) : 0;
  }
  // A third of the swarm mixes in stamped snapshot reads, so balance
  // certificates meet loss, dup, partitions and crashes with the windowed
  // cut oracle live. Drawn last for the same stream-position reason.
  if (rng.NextBool(0.33)) {
    w.snapshot_permille = 100 + static_cast<uint32_t>(rng.NextBounded(301));
  }
  PlanSpec ps;
  ps.num_sites = w.sites;
  ps.horizon_us = static_cast<SimTime>(w.txns) * w.gap_us * 2;
  ps.max_events = 16;
  c.plan = GeneratePlan(seed, ps);
  return c;
}

}  // namespace dvp::chaos
