#include "runtime/real.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstring>
#include <future>

#include "net/backoff.h"
#include "obs/metrics.h"
#include "proto/packet_codec.h"

namespace dvp::runtime {

namespace {

/// Largest UDP payload we ever put on the wire. Loopback takes close to
/// 64 KiB; coalesced DvP frames are a few hundred bytes, so a frame that
/// exceeds this is a bug upstream — it is dropped and counted, not split.
constexpr size_t kMaxDatagram = 65000;

/// poll() ceiling so the loop re-checks its stop flag even if a wakeup write
/// were ever lost; normal shutdown is pipe-driven and immediate.
constexpr int kMaxPollMs = 100;

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

// ---- EventLoop -------------------------------------------------------------

EventLoop::EventLoop(Clock::time_point epoch, std::string name)
    : epoch_(epoch), name_(std::move(name)) {
  [[maybe_unused]] int rc = ::pipe(wake_fds_);
  assert(rc == 0 && "pipe() failed");
  SetNonBlocking(wake_fds_[0]);
  SetNonBlocking(wake_fds_[1]);
}

EventLoop::~EventLoop() {
  Stop();
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
}

SimTime EventLoop::Now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               epoch_)
      .count();
}

TimerHandle EventLoop::ScheduleAt(SimTime when, std::function<void()> fn) {
  auto state = std::make_shared<TimerState>();
  bool wake;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // The new timer needs a wakeup only when it becomes the earliest —
    // otherwise the loop's current poll deadline already covers it.
    wake = heap_.empty() || when < heap_.front().when;
    heap_.push_back(Timer{when, next_seq_++, std::move(fn), state});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }
  if (wake && started_.load(std::memory_order_acquire) && !OnLoopThread()) {
    Wake();
  }
  return TimerHandle(std::move(state));
}

void EventLoop::RegisterFd(int fd, std::function<void()> on_readable) {
  assert(!running() && "RegisterFd must precede Start()");
  SetNonBlocking(fd);
  fd_handlers_.push_back(FdHandler{fd, std::move(on_readable)});
}

void EventLoop::AddFlushFn(std::function<void()> fn) {
  assert(!running() && "AddFlushFn must precede Start()");
  flush_fns_.push_back(std::move(fn));
}

void EventLoop::Start() {
  if (started_.exchange(true, std::memory_order_acq_rel)) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
}

void EventLoop::Stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  assert(!OnLoopThread() && "a loop cannot join itself");
  stop_.store(true, std::memory_order_release);
  Wake();
  if (thread_.joinable()) thread_.join();
  started_.store(false, std::memory_order_release);
}

void EventLoop::Wake() {
  char byte = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is success.
  [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &byte, 1);
}

bool EventLoop::PopDue(SimTime now, Timer* out, SimTime* next_when) {
  std::lock_guard<std::mutex> lock(mu_);
  while (!heap_.empty()) {
    Timer& top = heap_.front();
    if (top.state->cancelled.load(std::memory_order_acquire)) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.back().state->Retire();
      heap_.pop_back();
      continue;
    }
    if (top.when > now) {
      *next_when = top.when;
      return false;
    }
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    *out = std::move(heap_.back());
    heap_.pop_back();
    out->state->Retire();
    return true;
  }
  *next_when = kSimTimeMax;
  return false;
}

void EventLoop::Run() {
  std::vector<pollfd> pfds;
  pfds.reserve(1 + fd_handlers_.size());
  while (true) {
    // Drain every due timer, re-reading the clock as we go: a callback may
    // schedule an immediate follow-up that is due in the same pass.
    SimTime next_when = kSimTimeMax;
    Timer timer;
    while (PopDue(Now(), &timer, &next_when)) {
      // Cancelled-after-pop is indistinguishable from cancelled-after-fire
      // (the documented race); run it — PopDue filtered the settled cases.
      timer.fn();
      timers_fired_.fetch_add(1, std::memory_order_relaxed);
      if (stop_.load(std::memory_order_acquire)) return;
    }
    if (stop_.load(std::memory_order_acquire)) return;

    // Pre-poll flush: everything the timer quantum staged (e.g. the UDP
    // conduit's outgoing datagrams) leaves before the loop blocks. Work
    // staged by the fd handlers below reaches here on the next iteration,
    // still strictly before any blocking wait.
    for (const auto& flush : flush_fns_) flush();

    int timeout_ms = kMaxPollMs;
    if (next_when != kSimTimeMax) {
      SimTime delta_us = next_when - Now();
      if (delta_us <= 0) {
        timeout_ms = 0;
      } else {
        timeout_ms = static_cast<int>(
            std::min<SimTime>((delta_us + 999) / 1000, kMaxPollMs));
      }
    }

    pfds.clear();
    pfds.push_back(pollfd{wake_fds_[0], POLLIN, 0});
    for (const FdHandler& h : fd_handlers_) {
      pfds.push_back(pollfd{h.fd, POLLIN, 0});
    }
    int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      assert(false && "poll() failed");
      return;
    }
    if (pfds[0].revents & POLLIN) {
      char buf[64];
      while (::read(wake_fds_[0], buf, sizeof buf) > 0) {
      }
    }
    for (size_t i = 1; i < pfds.size(); ++i) {
      if (pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) {
        fd_handlers_[i - 1].on_readable();
        if (stop_.load(std::memory_order_acquire)) return;
      }
    }
  }
}

// ---- UdpConduit ------------------------------------------------------------

/// recvmmsg buffer set: enough for a burst without unbounded memory. Lazily
/// allocated per site on first drain, reused for the socket's lifetime.
struct UdpConduit::RecvState {
  static constexpr int kBatch = 8;
  static constexpr size_t kBufSize = 65536;
  std::vector<char> bufs;  // kBatch contiguous datagram buffers
#ifdef __linux__
  mmsghdr msgs[kBatch];
  iovec iovs[kBatch];
#endif
};

UdpConduit::UdpConduit(std::vector<EventLoop*> loops, Options options)
    : loops_(std::move(loops)), options_(options) {
  uint32_t n = num_sites();
  fds_.resize(n, -1);
  ports_.resize(n, 0);
  endpoints_.resize(n);
  send_states_.resize(n);
  recv_states_.resize(n);
  for (uint32_t s = 0; s < n; ++s) {
    send_states_[s] = std::make_unique<SendState>();
    recv_states_[s] = std::make_unique<RecvState>();
    int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    assert(fd >= 0 && "socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // ephemeral
    [[maybe_unused]] int rc =
        ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    assert(rc == 0 && "bind() failed");
    socklen_t len = sizeof addr;
    rc = ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    assert(rc == 0 && "getsockname() failed");
    fds_[s] = fd;
    ports_[s] = ntohs(addr.sin_port);
    loops_[s]->RegisterFd(fd, [this, s] { DrainSocket(s); });
    loops_[s]->AddFlushFn([this, s] { FlushSends(s); });
  }
}

UdpConduit::~UdpConduit() {
  for (int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

bool UdpConduit::DropInjected() {
  if (options_.drop_one_in == 0) return false;
  // Hash the counter instead of taking it mod N: a plain modulus drops a
  // strictly periodic pattern, which can phase-lock with periodic traffic
  // (a fixed-size retransmit burst followed by one pure ack loses the ack
  // every round — a livelock no real network produces). The hash keeps the
  // 1/N rate and the determinism without the periodicity.
  uint64_t n = send_counter_.fetch_add(1, std::memory_order_relaxed);
  if (net::backoff::Mix(n) % options_.drop_one_in != 0) return false;
  datagrams_dropped_injected_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void UdpConduit::NoteBufferGrowth(size_t cap_before, size_t cap_after) {
  if (cap_after != cap_before) {
    frame_buffer_allocs_.fetch_add(1, std::memory_order_relaxed);
  }
}

void UdpConduit::SendNow(uint32_t src, uint32_t dst, const char* data,
                         size_t len) {
  sockaddr_in to{};
  to.sin_family = AF_INET;
  to.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  to.sin_port = htons(ports_[dst]);
  for (;;) {
    ssize_t n = ::sendto(fds_[src], data, len, 0,
                         reinterpret_cast<sockaddr*>(&to), sizeof to);
    send_syscalls_.fetch_add(1, std::memory_order_relaxed);
    if (n >= 0) {
      datagrams_sent_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) {
      // Backpressure: the kernel's buffers are full right now. Loss is
      // silent by contract; reliable classes ride retransmission.
      send_soft_errors_.fetch_add(1, std::memory_order_relaxed);
    } else {
      send_errors_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
}

void UdpConduit::StageOrSend(uint32_t src, uint32_t dst, const char* data,
                             size_t len) {
#ifdef __linux__
  if (options_.batch_io && loops_[src]->running() &&
      loops_[src]->OnLoopThread()) {
    SendState& st = *send_states_[src];
    size_t cap_before = st.batch.capacity();
    size_t off = st.batch.size();
    st.batch.append(data, len);
    NoteBufferGrowth(cap_before, st.batch.capacity());
    st.staged.push_back(SendState::Range{off, len, dst});
    return;
  }
#endif
  SendNow(src, dst, data, len);
}

void UdpConduit::FlushSends(uint32_t site) {
  SendState& st = *send_states_[site];
  if (st.staged.empty()) return;
#ifdef __linux__
  // One loop thread per site, so thread_local arrays are per-site and their
  // capacity survives across flushes — no allocation in steady state.
  thread_local std::vector<mmsghdr> msgs;
  thread_local std::vector<iovec> iovs;
  thread_local std::vector<sockaddr_in> addrs;
  size_t n = st.staged.size();
  msgs.resize(n);
  iovs.resize(n);
  addrs.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const SendState::Range& r = st.staged[i];
    iovs[i].iov_base = st.batch.data() + r.off;
    iovs[i].iov_len = r.len;
    addrs[i] = sockaddr_in{};
    addrs[i].sin_family = AF_INET;
    addrs[i].sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addrs[i].sin_port = htons(ports_[r.dst]);
    msgs[i] = mmsghdr{};
    msgs[i].msg_hdr.msg_name = &addrs[i];
    msgs[i].msg_hdr.msg_namelen = sizeof addrs[i];
    msgs[i].msg_hdr.msg_iov = &iovs[i];
    msgs[i].msg_hdr.msg_iovlen = 1;
  }
  size_t done = 0;
  while (done < n) {
    int sent = ::sendmmsg(fds_[site], msgs.data() + done,
                          static_cast<unsigned>(n - done), 0);
    send_syscalls_.fetch_add(1, std::memory_order_relaxed);
    if (sent < 0) {
      if (errno == EINTR) continue;
      // The datagram at `done` failed. Classify it, drop it, press on with
      // the rest — one bad destination must not strand the whole batch.
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) {
        send_soft_errors_.fetch_add(1, std::memory_order_relaxed);
      } else {
        send_errors_.fetch_add(1, std::memory_order_relaxed);
      }
      ++done;
      continue;
    }
    datagrams_sent_.fetch_add(static_cast<uint64_t>(sent),
                              std::memory_order_relaxed);
    if (sent == 0) ++done;  // defensive: never spin without progress
    done += static_cast<size_t>(sent);
  }
#else
  for (const SendState::Range& r : st.staged) {
    SendNow(site, r.dst, st.batch.data() + r.off, r.len);
  }
#endif
  st.staged.clear();
  st.batch.clear();
}

void UdpConduit::Send(net::Packet packet) {
  assert(packet.dst.value() < fds_.size());
  if (DropInjected()) return;
  uint32_t src = packet.src.value();
  uint32_t dst = packet.dst.value();
  if (!options_.frame_cache || !loops_[src]->OnLoopThread()) {
    // Legacy path (also the thread-safe one for foreign-thread callers in
    // tests): fresh heap string per frame, exactly the PR 9 cost model the
    // latency bench uses as its baseline.
    std::string frame = proto::EncodePacket(packet);
    frames_encoded_.fetch_add(1, std::memory_order_relaxed);
    frame_buffer_allocs_.fetch_add(1, std::memory_order_relaxed);
    if (frame.size() > kMaxDatagram) {
      oversize_frames_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (loops_[src]->OnLoopThread()) {
      StageOrSend(src, dst, frame.data(), frame.size());
    } else {
      SendNow(src, dst, frame.data(), frame.size());
    }
    return;
  }
  SendState& st = *send_states_[src];
  net::FrameCache* fc = packet.frame_cache.get();
  const std::string* bytes;
  if (fc && !fc->bytes.empty()) {
    // Encode-once payoff: a retransmission whose channel-state fingerprint
    // still matches (the transport validated it in SendOnWire) replays the
    // first encoding byte for byte.
    frame_cache_hits_.fetch_add(1, std::memory_order_relaxed);
    bytes = &fc->bytes;
  } else {
    std::string* out = fc ? &fc->bytes : &st.frame;
    size_t cap_before = out->capacity() + st.env_scratch.capacity();
    out->clear();
    proto::EncodePacketTo(packet, out, &st.env_scratch);
    NoteBufferGrowth(cap_before, out->capacity() + st.env_scratch.capacity());
    frames_encoded_.fetch_add(1, std::memory_order_relaxed);
    bytes = out;
  }
  if (bytes->size() > kMaxDatagram) {
    oversize_frames_.fetch_add(1, std::memory_order_relaxed);
    if (fc) fc->bytes.clear();  // never replay an unsendable frame
    return;
  }
  StageOrSend(src, dst, bytes->data(), bytes->size());
}

void UdpConduit::Broadcast(SiteId src, net::EnvelopePtr payload) {
  uint32_t s = src.value();
  if (!options_.frame_cache || !loops_[s]->OnLoopThread()) {
    for (uint32_t d = 0; d < num_sites(); ++d) {
      if (d == s) continue;
      broadcast_legs_.fetch_add(1, std::memory_order_relaxed);
      broadcast_payload_encodes_.fetch_add(1, std::memory_order_relaxed);
      net::Packet p;
      p.src = src;
      p.dst = SiteId(d);
      p.reliability = net::Reliability::kDatagram;
      p.trace_id = payload ? payload->trace_id : 0;
      p.payload = payload;
      Send(std::move(p));
    }
    return;
  }
  // Fast path: CRC | src | dst | rest — only dst and the checksum differ per
  // leg, so the rest (including the payload envelope) is encoded exactly
  // once into the shared tail and spliced per destination.
  SendState& st = *send_states_[s];
  net::Packet p;
  p.src = src;
  p.dst = src;  // template; the real destination is patched per leg
  p.reliability = net::Reliability::kDatagram;
  p.trace_id = payload ? payload->trace_id : 0;
  p.payload = std::move(payload);
  st.bcast_tail.clear();
  for (uint32_t d = 0; d < num_sites(); ++d) {
    if (d == s) continue;
    broadcast_legs_.fetch_add(1, std::memory_order_relaxed);
    if (DropInjected()) continue;
    size_t cap_before = st.frame.capacity() + st.bcast_tail.capacity() +
                        st.env_scratch.capacity();
    bool builds_tail = st.bcast_tail.empty();
    st.frame.clear();
    proto::EncodePacketWithDstTo(p, SiteId(d), &st.frame, &st.bcast_tail,
                                 &st.env_scratch);
    NoteBufferGrowth(cap_before, st.frame.capacity() +
                                     st.bcast_tail.capacity() +
                                     st.env_scratch.capacity());
    if (builds_tail) {
      broadcast_payload_encodes_.fetch_add(1, std::memory_order_relaxed);
    }
    frames_encoded_.fetch_add(1, std::memory_order_relaxed);
    if (st.frame.size() > kMaxDatagram) {
      oversize_frames_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    StageOrSend(s, d, st.frame.data(), st.frame.size());
  }
}

void UdpConduit::HandleFrame(uint32_t site, const char* data, size_t len) {
  datagrams_received_.fetch_add(1, std::memory_order_relaxed);
  StatusOr<net::Packet> packet =
      proto::DecodePacket(std::string_view(data, len));
  if (!packet.ok()) {
    decode_errors_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const Endpoint& ep = endpoints_[site];
  if (!ep.deliver || (ep.is_up && !ep.is_up())) {
    dropped_down_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ep.deliver(*packet);
}

void UdpConduit::RegisterEndpoint(SiteId site, net::DeliveryFn deliver,
                                  std::function<bool()> is_up) {
  assert(site.value() < endpoints_.size());
  endpoints_[site.value()] =
      Endpoint{std::move(deliver), std::move(is_up)};
}

void UdpConduit::DrainSocket(uint32_t site) {
#ifdef __linux__
  if (options_.batch_io) {
    RecvState& rs = *recv_states_[site];
    if (rs.bufs.empty()) {
      // First drain on this socket: size the reused buffer set once.
      rs.bufs.resize(RecvState::kBatch * RecvState::kBufSize);
      for (int i = 0; i < RecvState::kBatch; ++i) {
        rs.iovs[i].iov_base = rs.bufs.data() + i * RecvState::kBufSize;
        rs.iovs[i].iov_len = RecvState::kBufSize;
        rs.msgs[i] = mmsghdr{};
        rs.msgs[i].msg_hdr.msg_iov = &rs.iovs[i];
        rs.msgs[i].msg_hdr.msg_iovlen = 1;
      }
    }
    for (;;) {
      int n = ::recvmmsg(fds_[site], rs.msgs, RecvState::kBatch, MSG_DONTWAIT,
                         nullptr);
      recv_syscalls_.fetch_add(1, std::memory_order_relaxed);
      if (n < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN (drained) or transient error: treat as loss
      }
      for (int i = 0; i < n; ++i) {
        HandleFrame(site,
                    rs.bufs.data() + static_cast<size_t>(i) *
                                         RecvState::kBufSize,
                    rs.msgs[i].msg_len);
      }
      if (n < RecvState::kBatch) return;  // socket drained
    }
  }
#endif
  char buf[65536];
  for (;;) {
    ssize_t n = ::recv(fds_[site], buf, sizeof buf, 0);
    recv_syscalls_.fetch_add(1, std::memory_order_relaxed);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient socket error: treat as loss
    }
    HandleFrame(site, buf, static_cast<size_t>(n));
  }
}

uint16_t UdpConduit::port(SiteId site) const {
  assert(site.value() < ports_.size());
  return ports_[site.value()];
}

UdpConduit::Stats UdpConduit::stats() const {
  Stats s;
  s.datagrams_sent = datagrams_sent_.load(std::memory_order_relaxed);
  s.datagrams_dropped_injected =
      datagrams_dropped_injected_.load(std::memory_order_relaxed);
  s.send_errors = send_errors_.load(std::memory_order_relaxed);
  s.send_soft_errors = send_soft_errors_.load(std::memory_order_relaxed);
  s.oversize_frames = oversize_frames_.load(std::memory_order_relaxed);
  s.datagrams_received = datagrams_received_.load(std::memory_order_relaxed);
  s.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  s.dropped_down = dropped_down_.load(std::memory_order_relaxed);
  s.send_syscalls = send_syscalls_.load(std::memory_order_relaxed);
  s.recv_syscalls = recv_syscalls_.load(std::memory_order_relaxed);
  s.frames_encoded = frames_encoded_.load(std::memory_order_relaxed);
  s.frame_cache_hits = frame_cache_hits_.load(std::memory_order_relaxed);
  s.broadcast_legs = broadcast_legs_.load(std::memory_order_relaxed);
  s.broadcast_payload_encodes =
      broadcast_payload_encodes_.load(std::memory_order_relaxed);
  s.frame_buffer_allocs = frame_buffer_allocs_.load(std::memory_order_relaxed);
  return s;
}

void UdpConduit::ExportStats(obs::MetricsRegistry* metrics) const {
  if (!metrics) return;
  Stats s = stats();
  auto set = [&](const char* name, uint64_t v) {
    metrics->gauge(name)->Set(static_cast<int64_t>(v));
  };
  set("udp.datagrams_sent", s.datagrams_sent);
  set("udp.datagrams_dropped_injected", s.datagrams_dropped_injected);
  set("udp.send_errors", s.send_errors);
  set("udp.send_soft_errors", s.send_soft_errors);
  set("udp.oversize_frames", s.oversize_frames);
  set("udp.datagrams_received", s.datagrams_received);
  set("udp.decode_errors", s.decode_errors);
  set("udp.dropped_down", s.dropped_down);
  set("udp.send_syscalls", s.send_syscalls);
  set("udp.recv_syscalls", s.recv_syscalls);
  set("udp.frames_encoded", s.frames_encoded);
  set("udp.frame_cache_hits", s.frame_cache_hits);
  set("udp.broadcast_legs", s.broadcast_legs);
  set("udp.broadcast_payload_encodes", s.broadcast_payload_encodes);
  set("udp.frame_buffer_allocs", s.frame_buffer_allocs);
}

// ---- Real ------------------------------------------------------------------

Real::Real(uint32_t num_sites, Options options)
    : epoch_(EventLoop::Clock::now()) {
  loops_.reserve(num_sites);
  std::vector<EventLoop*> raw;
  raw.reserve(num_sites);
  for (uint32_t s = 0; s < num_sites; ++s) {
    loops_.push_back(std::make_unique<EventLoop>(
        epoch_, "site-" + std::to_string(s)));
    raw.push_back(loops_.back().get());
  }
  conduit_ = std::make_unique<UdpConduit>(std::move(raw), options.net);
}

Real::~Real() { Stop(); }

SimTime Real::Now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             EventLoop::Clock::now() - epoch_)
      .count();
}

void Real::Start() {
  for (auto& loop : loops_) loop->Start();
}

void Real::Stop() {
  for (auto& loop : loops_) loop->Stop();
}

void Real::RunOn(SiteId site, std::function<void()> fn) {
  std::promise<void> done;
  std::future<void> wait = done.get_future();
  loop(site).Post([&fn, &done] {
    fn();
    done.set_value();
  });
  wait.get();
}

}  // namespace dvp::runtime
