#include "runtime/real.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstring>
#include <future>

#include "net/backoff.h"
#include "proto/packet_codec.h"

namespace dvp::runtime {

namespace {

/// Largest UDP payload we ever put on the wire. Loopback takes close to
/// 64 KiB; coalesced DvP frames are a few hundred bytes, so a frame that
/// exceeds this is a bug upstream — it is dropped and counted, not split.
constexpr size_t kMaxDatagram = 65000;

/// poll() ceiling so the loop re-checks its stop flag even if a wakeup write
/// were ever lost; normal shutdown is pipe-driven and immediate.
constexpr int kMaxPollMs = 100;

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

// ---- EventLoop -------------------------------------------------------------

EventLoop::EventLoop(Clock::time_point epoch, std::string name)
    : epoch_(epoch), name_(std::move(name)) {
  [[maybe_unused]] int rc = ::pipe(wake_fds_);
  assert(rc == 0 && "pipe() failed");
  SetNonBlocking(wake_fds_[0]);
  SetNonBlocking(wake_fds_[1]);
}

EventLoop::~EventLoop() {
  Stop();
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
}

SimTime EventLoop::Now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               epoch_)
      .count();
}

TimerHandle EventLoop::ScheduleAt(SimTime when, std::function<void()> fn) {
  auto state = std::make_shared<TimerState>();
  bool wake;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // The new timer needs a wakeup only when it becomes the earliest —
    // otherwise the loop's current poll deadline already covers it.
    wake = heap_.empty() || when < heap_.front().when;
    heap_.push_back(Timer{when, next_seq_++, std::move(fn), state});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }
  if (wake && started_.load(std::memory_order_acquire) && !OnLoopThread()) {
    Wake();
  }
  return TimerHandle(std::move(state));
}

void EventLoop::RegisterFd(int fd, std::function<void()> on_readable) {
  assert(!running() && "RegisterFd must precede Start()");
  SetNonBlocking(fd);
  fd_handlers_.push_back(FdHandler{fd, std::move(on_readable)});
}

void EventLoop::Start() {
  if (started_.exchange(true, std::memory_order_acq_rel)) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
}

void EventLoop::Stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  assert(!OnLoopThread() && "a loop cannot join itself");
  stop_.store(true, std::memory_order_release);
  Wake();
  if (thread_.joinable()) thread_.join();
  started_.store(false, std::memory_order_release);
}

void EventLoop::Wake() {
  char byte = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is success.
  [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &byte, 1);
}

bool EventLoop::PopDue(SimTime now, Timer* out, SimTime* next_when) {
  std::lock_guard<std::mutex> lock(mu_);
  while (!heap_.empty()) {
    Timer& top = heap_.front();
    if (top.state->cancelled.load(std::memory_order_acquire)) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.back().state->Retire();
      heap_.pop_back();
      continue;
    }
    if (top.when > now) {
      *next_when = top.when;
      return false;
    }
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    *out = std::move(heap_.back());
    heap_.pop_back();
    out->state->Retire();
    return true;
  }
  *next_when = kSimTimeMax;
  return false;
}

void EventLoop::Run() {
  std::vector<pollfd> pfds;
  pfds.reserve(1 + fd_handlers_.size());
  while (true) {
    // Drain every due timer, re-reading the clock as we go: a callback may
    // schedule an immediate follow-up that is due in the same pass.
    SimTime next_when = kSimTimeMax;
    Timer timer;
    while (PopDue(Now(), &timer, &next_when)) {
      // Cancelled-after-pop is indistinguishable from cancelled-after-fire
      // (the documented race); run it — PopDue filtered the settled cases.
      timer.fn();
      timers_fired_.fetch_add(1, std::memory_order_relaxed);
      if (stop_.load(std::memory_order_acquire)) return;
    }
    if (stop_.load(std::memory_order_acquire)) return;

    int timeout_ms = kMaxPollMs;
    if (next_when != kSimTimeMax) {
      SimTime delta_us = next_when - Now();
      if (delta_us <= 0) {
        timeout_ms = 0;
      } else {
        timeout_ms = static_cast<int>(
            std::min<SimTime>((delta_us + 999) / 1000, kMaxPollMs));
      }
    }

    pfds.clear();
    pfds.push_back(pollfd{wake_fds_[0], POLLIN, 0});
    for (const FdHandler& h : fd_handlers_) {
      pfds.push_back(pollfd{h.fd, POLLIN, 0});
    }
    int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      assert(false && "poll() failed");
      return;
    }
    if (pfds[0].revents & POLLIN) {
      char buf[64];
      while (::read(wake_fds_[0], buf, sizeof buf) > 0) {
      }
    }
    for (size_t i = 1; i < pfds.size(); ++i) {
      if (pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) {
        fd_handlers_[i - 1].on_readable();
        if (stop_.load(std::memory_order_acquire)) return;
      }
    }
  }
}

// ---- UdpConduit ------------------------------------------------------------

UdpConduit::UdpConduit(std::vector<EventLoop*> loops, Options options)
    : loops_(std::move(loops)), options_(options) {
  uint32_t n = num_sites();
  fds_.resize(n, -1);
  ports_.resize(n, 0);
  endpoints_.resize(n);
  for (uint32_t s = 0; s < n; ++s) {
    int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    assert(fd >= 0 && "socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;  // ephemeral
    [[maybe_unused]] int rc =
        ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    assert(rc == 0 && "bind() failed");
    socklen_t len = sizeof addr;
    rc = ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    assert(rc == 0 && "getsockname() failed");
    fds_[s] = fd;
    ports_[s] = ntohs(addr.sin_port);
    loops_[s]->RegisterFd(fd, [this, s] { DrainSocket(s); });
  }
}

UdpConduit::~UdpConduit() {
  for (int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

void UdpConduit::RegisterEndpoint(SiteId site, net::DeliveryFn deliver,
                                  std::function<bool()> is_up) {
  assert(site.value() < endpoints_.size());
  endpoints_[site.value()] =
      Endpoint{std::move(deliver), std::move(is_up)};
}

void UdpConduit::Send(net::Packet packet) {
  assert(packet.dst.value() < fds_.size());
  if (options_.drop_one_in > 0) {
    // Hash the counter instead of taking it mod N: a plain modulus drops a
    // strictly periodic pattern, which can phase-lock with periodic traffic
    // (a fixed-size retransmit burst followed by one pure ack loses the ack
    // every round — a livelock no real network produces). The hash keeps the
    // 1/N rate and the determinism without the periodicity.
    uint64_t n = send_counter_.fetch_add(1, std::memory_order_relaxed);
    if (net::backoff::Mix(n) % options_.drop_one_in == 0) {
      datagrams_dropped_injected_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  std::string frame = proto::EncodePacket(packet);
  if (frame.size() > kMaxDatagram) {
    send_errors_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  sockaddr_in to{};
  to.sin_family = AF_INET;
  to.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  to.sin_port = htons(ports_[packet.dst.value()]);
  ssize_t n = ::sendto(fds_[packet.src.value()], frame.data(), frame.size(),
                       0, reinterpret_cast<sockaddr*>(&to), sizeof to);
  if (n == static_cast<ssize_t>(frame.size())) {
    datagrams_sent_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // ENOBUFS/EMSGSIZE/anything: the wire ate it. Loss is silent by
    // contract; the transport's retransmissions carry the reliable classes.
    send_errors_.fetch_add(1, std::memory_order_relaxed);
  }
}

void UdpConduit::Broadcast(SiteId src, net::EnvelopePtr payload) {
  for (uint32_t s = 0; s < num_sites(); ++s) {
    if (s == src.value()) continue;
    net::Packet p;
    p.src = src;
    p.dst = SiteId(s);
    p.reliability = net::Reliability::kDatagram;
    p.trace_id = payload ? payload->trace_id : 0;
    p.payload = payload;
    Send(std::move(p));
  }
}

void UdpConduit::DrainSocket(uint32_t site) {
  char buf[65536];
  for (;;) {
    ssize_t n = ::recv(fds_[site], buf, sizeof buf, 0);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient socket error: treat as loss
    }
    datagrams_received_.fetch_add(1, std::memory_order_relaxed);
    StatusOr<net::Packet> packet =
        proto::DecodePacket(std::string_view(buf, static_cast<size_t>(n)));
    if (!packet.ok()) {
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const Endpoint& ep = endpoints_[site];
    if (!ep.deliver || (ep.is_up && !ep.is_up())) {
      dropped_down_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    ep.deliver(*packet);
  }
}

uint16_t UdpConduit::port(SiteId site) const {
  assert(site.value() < ports_.size());
  return ports_[site.value()];
}

UdpConduit::Stats UdpConduit::stats() const {
  Stats s;
  s.datagrams_sent = datagrams_sent_.load(std::memory_order_relaxed);
  s.datagrams_dropped_injected =
      datagrams_dropped_injected_.load(std::memory_order_relaxed);
  s.send_errors = send_errors_.load(std::memory_order_relaxed);
  s.datagrams_received = datagrams_received_.load(std::memory_order_relaxed);
  s.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  s.dropped_down = dropped_down_.load(std::memory_order_relaxed);
  return s;
}

// ---- Real ------------------------------------------------------------------

Real::Real(uint32_t num_sites, Options options)
    : epoch_(EventLoop::Clock::now()) {
  loops_.reserve(num_sites);
  std::vector<EventLoop*> raw;
  raw.reserve(num_sites);
  for (uint32_t s = 0; s < num_sites; ++s) {
    loops_.push_back(std::make_unique<EventLoop>(
        epoch_, "site-" + std::to_string(s)));
    raw.push_back(loops_.back().get());
  }
  conduit_ = std::make_unique<UdpConduit>(std::move(raw), options.net);
}

Real::~Real() { Stop(); }

SimTime Real::Now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             EventLoop::Clock::now() - epoch_)
      .count();
}

void Real::Start() {
  for (auto& loop : loops_) loop->Start();
}

void Real::Stop() {
  for (auto& loop : loops_) loop->Stop();
}

void Real::RunOn(SiteId site, std::function<void()> fn) {
  std::promise<void> done;
  std::future<void> wait = done.get_future();
  loop(site).Post([&fn, &done] {
    fn();
    done.set_value();
  });
  wait.get();
}

}  // namespace dvp::runtime
