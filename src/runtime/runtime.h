// The runtime seam: the clock-and-timer interface every protocol layer
// (site/, txn/, vm/, placement/, net/transport, wal/group_commit) programs
// against, so the identical protocol sources compile against either backend:
//
//  * sim::Kernel — the deterministic discrete-event kernel. Single-threaded,
//    virtual time, a run is a pure function of (seed, schedule). Still the
//    correctness oracle: the chaos swarm and every pinned bench stay here.
//  * runtime::EventLoop (runtime/real.h) — one OS thread per site, a
//    monotonic steady clock, poll()-driven timers and sockets. Wall-clock
//    time, true parallelism, none of the sim's determinism guarantees.
//
// Contract both backends honour (runtime_conformance_test pins it):
//  * Now() is monotone non-decreasing, in microseconds.
//  * ScheduleAt(when, fn) runs fn at the earliest instant the backend's
//    clock reaches `when`; two timers never run concurrently on one runtime
//    (per-site single-threadedness is what keeps protocol state lock-free).
//  * Timers with equal deadlines run in schedule order (sim guarantees it
//    exactly; the real loop preserves it via a FIFO tie-break).
//  * TimerHandle::Cancel() is idempotent, safe after the timer fired, safe
//    from a timer callback, and safe from any thread — the flag is atomic
//    and the shared state outlives both the runtime and the handle.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>

#include "common/types.h"

namespace dvp::runtime {

/// Shared cancellation state of one scheduled timer. The owning runtime
/// keeps one reference inside its queue entry; any number of handles keep
/// others. `tally` (optional) points at the owner's count of
/// cancelled-but-still-queued entries — the tombstone counter that lets the
/// owner report live event counts and decide when to compact. The counter is
/// shared (not raw) so a handle outliving its runtime cancels into memory
/// that is still alive.
struct TimerState {
  std::atomic<bool> cancelled{false};
  /// Set by the owner when the entry leaves its queue (fired, discarded, or
  /// compacted away); a Cancel() after that must not count a tombstone.
  std::atomic<bool> retired{false};
  std::shared_ptr<std::atomic<int64_t>> tally;

  /// Owner-side: the entry is leaving the queue. Balances the tombstone
  /// tally if the timer was cancelled while queued.
  void Retire() {
    retired.store(true, std::memory_order_release);
    if (cancelled.load(std::memory_order_acquire) && tally) {
      tally->fetch_sub(1, std::memory_order_relaxed);
    }
  }
};

/// Handle to a scheduled timer; allows cancellation (transaction timeout
/// counters disarmed when all replies arrive, pure-ack timers superseded by
/// piggybacks, ...). Copyable; all copies share one cancellation flag.
class TimerHandle {
 public:
  TimerHandle() = default;
  explicit TimerHandle(std::shared_ptr<TimerState> state)
      : state_(std::move(state)) {}

  /// Cancels the timer if it has not fired yet. Idempotent; callable from
  /// any thread and harmless after the timer fired.
  void Cancel() {
    if (!state_) return;
    if (!state_->cancelled.exchange(true, std::memory_order_acq_rel)) {
      if (!state_->retired.load(std::memory_order_acquire) && state_->tally) {
        state_->tally->fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  bool valid() const { return state_ != nullptr; }
  bool cancelled() const {
    return state_ && state_->cancelled.load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<TimerState> state_;
};

/// The seam itself: a clock and a timer queue. Everything the protocol
/// layers ever asked of the sim kernel, and nothing more — transport
/// endpoints live behind net::Conduit, stable storage behind
/// wal::StableStorage, both runtime-agnostic already.
class Runtime {
 public:
  virtual ~Runtime() = default;

  /// Current time in microseconds: virtual on the sim kernel, monotonic
  /// steady-clock on the real loop.
  virtual SimTime Now() const = 0;

  /// Schedules `fn` to run at absolute time `when` (>= Now()).
  virtual TimerHandle ScheduleAt(SimTime when, std::function<void()> fn) = 0;

  /// Schedules `fn` to run `delay` microseconds from now.
  TimerHandle Schedule(SimTime delay, std::function<void()> fn) {
    return ScheduleAt(Now() + delay, std::move(fn));
  }
};

}  // namespace dvp::runtime
