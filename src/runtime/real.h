// The real backend of the runtime seam: one OS thread per site, a monotonic
// steady clock, poll()-driven timers, and loopback UDP datagrams framed with
// the packet byte codec. The protocol sources that run here are byte-for-byte
// the ones the sim kernel runs — the seam (runtime::Runtime, net::Conduit)
// is the only thing that changes underneath them.
//
// What carries over from the sim and what does not:
//  * Per-site single-threadedness carries over: every timer, every delivery
//    for a site runs on that site's one loop thread, so the protocol state
//    stays lock-free exactly as in the kernel.
//  * Loss, reordering, and duplication are real now; the transport's
//    retransmission/dedup machinery — exercised for years under the sim's
//    fault models — is what makes the system correct on top of them.
//  * Determinism does NOT carry over. A real run is not replayable; the
//    kernel remains the correctness oracle (chaos swarm, pinned benches).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/types.h"
#include "net/conduit.h"
#include "runtime/runtime.h"

namespace dvp::obs {
class MetricsRegistry;
}

namespace dvp::runtime {

/// One site's runtime: a thread, a timer heap, and a poll() loop over a
/// wakeup pipe plus any registered sockets. Implements the Runtime seam with
/// a monotonic steady clock (microseconds since a shared epoch, so every
/// loop in one process agrees on Now() to within clock-read jitter).
///
/// Thread model: ScheduleAt and TimerHandle::Cancel are safe from any
/// thread; callbacks (timers and fd handlers) run on the loop thread only,
/// one at a time. RegisterFd must happen before Start().
class EventLoop final : public Runtime {
 public:
  using Clock = std::chrono::steady_clock;

  EventLoop(Clock::time_point epoch, std::string name);
  ~EventLoop() override;

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Microseconds since the shared epoch. Monotone by construction.
  SimTime Now() const override;

  /// Schedules `fn` at absolute time `when` (clamped to now if already
  /// past). Thread-safe; wakes the loop when the new timer becomes the
  /// earliest. Timers with equal deadlines fire in schedule order (FIFO
  /// tie-break, matching the kernel).
  TimerHandle ScheduleAt(SimTime when, std::function<void()> fn) override;

  /// Runs `fn` on the loop thread as soon as possible. The marshalling
  /// primitive: cross-thread calls into a site's protocol state go through
  /// here (submission from a driver thread, deliveries from a peer's loop in
  /// tests).
  void Post(std::function<void()> fn) { ScheduleAt(0, std::move(fn)); }

  /// Registers a readable-event handler for `fd` (a nonblocking socket).
  /// Must be called before Start(); the handler runs on the loop thread.
  void RegisterFd(int fd, std::function<void()> on_readable);

  /// Registers a pre-poll hook: runs on the loop thread once per loop
  /// iteration, after due timers have fired and before the loop blocks in
  /// poll(). The UDP conduit drains its staged datagrams here, so everything
  /// a timer quantum produced leaves in one batched syscall. Must be called
  /// before Start().
  void AddFlushFn(std::function<void()> fn);

  /// Starts the loop thread. Timers scheduled before Start() fire after it.
  void Start();

  /// Stops and joins the loop thread. Idempotent; safe from any thread
  /// except the loop thread itself (a callback asking its own loop to stop
  /// would self-join). Pending timers are discarded.
  void Stop();

  bool running() const { return started_.load(std::memory_order_acquire); }
  bool OnLoopThread() const {
    return std::this_thread::get_id() == thread_.get_id();
  }
  const std::string& name() const { return name_; }

  /// Timer callbacks executed (loop thread writes, anyone reads).
  uint64_t timers_fired() const {
    return timers_fired_.load(std::memory_order_relaxed);
  }

 private:
  struct Timer {
    SimTime when;
    uint64_t seq;  // FIFO tie-break; unique, so the order is total
    std::function<void()> fn;
    std::shared_ptr<TimerState> state;
  };
  /// "a fires later than b" — min-heap via std::push_heap/pop_heap.
  struct Later {
    bool operator()(const Timer& a, const Timer& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void Run();
  void Wake();
  /// Pops the next due live timer (cancelled tops are retired and
  /// discarded). Returns false and reports the next deadline (or
  /// kSimTimeMax) when nothing is due.
  bool PopDue(SimTime now, Timer* out, SimTime* next_when);

  const Clock::time_point epoch_;
  const std::string name_;
  int wake_fds_[2] = {-1, -1};  // self-pipe: [0] polled, [1] written
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
  std::atomic<uint64_t> timers_fired_{0};

  mutable std::mutex mu_;
  std::vector<Timer> heap_;  // guarded by mu_
  uint64_t next_seq_ = 0;    // guarded by mu_
  struct FdHandler {
    int fd;
    std::function<void()> on_readable;
  };
  std::vector<FdHandler> fd_handlers_;  // set before Start, read by the loop
  std::vector<std::function<void()>> flush_fns_;  // ditto
};

/// The transport endpoint of the real runtime: one loopback UDP socket per
/// site, packets framed by proto::EncodePacket/DecodePacket. A site's
/// datagrams are received and decoded on that site's own loop thread, so
/// delivery lands in the protocol exactly where a kernel delivery event
/// would. Loss is real (and injectable); a frame that fails to decode is
/// dropped silently — precisely the paper's lossy-channel model.
class UdpConduit final : public net::Conduit {
 public:
  struct Options {
    /// Drop every Nth outgoing datagram before it reaches the socket
    /// (0 = off). Counter-based, so a fixed workload sees a fixed drop
    /// pattern — the real-runtime analogue of the sim's loss probability.
    uint64_t drop_one_in = 0;
    /// Batched syscalls: stage outgoing datagrams per loop iteration and
    /// drain them through one sendmmsg() before the loop blocks; read with
    /// recvmmsg() into a reused buffer set. Off = one sendto()/recv() per
    /// datagram (the portability fallback, also the PR 9 baseline the
    /// latency bench compares against). Non-Linux builds always take the
    /// single-shot path regardless of this flag.
    bool batch_io = true;
    /// Encode-once: answer WantsFrameCache so the transport attaches a
    /// FrameCache to reliable sends (retransmissions replay the first
    /// encoding), encode broadcast fan-outs once and patch only the
    /// destination, and reuse per-site scratch buffers so the steady-state
    /// datagram path allocates nothing. Off = every send encodes into a
    /// fresh heap string (the PR 9 baseline).
    bool frame_cache = true;
  };

  struct Stats {
    uint64_t datagrams_sent = 0;
    uint64_t datagrams_dropped_injected = 0;
    uint64_t send_errors = 0;       ///< hard send failures (silent loss)
    uint64_t send_soft_errors = 0;  ///< EAGAIN/ENOBUFS backpressure drops
    uint64_t oversize_frames = 0;   ///< frames > kMaxDatagram, never sent
    uint64_t datagrams_received = 0;
    uint64_t decode_errors = 0;  ///< frames rejected by the codec
    uint64_t dropped_down = 0;   ///< destination's is_up() said no
    uint64_t send_syscalls = 0;  ///< sendto + sendmmsg calls
    uint64_t recv_syscalls = 0;  ///< recv + recvmmsg calls
    uint64_t frames_encoded = 0;     ///< actual EncodePacket* executions
    uint64_t frame_cache_hits = 0;   ///< sends that replayed cached bytes
    uint64_t broadcast_legs = 0;     ///< fan-out destinations attempted
    uint64_t broadcast_payload_encodes = 0;  ///< shared tails built (once
                                             ///< per fan-out, not per leg)
    uint64_t frame_buffer_allocs = 0;  ///< frame/batch buffer heap growths
  };

  /// One loop per site; sockets are created (bound to 127.0.0.1, ephemeral
  /// ports) and registered on their site's loop here, before any Start().
  UdpConduit(std::vector<EventLoop*> loops, Options options);
  ~UdpConduit() override;

  UdpConduit(const UdpConduit&) = delete;
  UdpConduit& operator=(const UdpConduit&) = delete;

  void RegisterEndpoint(SiteId site, net::DeliveryFn deliver,
                        std::function<bool()> is_up) override;
  void Send(net::Packet packet) override;
  /// Best-effort datagram fan-out. NOT the sim's loss-free atomic ordered
  /// broadcast — Conc2 soundness does not carry over (see net/conduit.h).
  /// With Options::frame_cache the shared body is encoded once and only the
  /// destination field (and checksum) is patched per leg.
  void Broadcast(SiteId src, net::EnvelopePtr payload) override;
  uint32_t num_sites() const override {
    return static_cast<uint32_t>(loops_.size());
  }
  bool WantsFrameCache() const override { return options_.frame_cache; }

  uint16_t port(SiteId site) const;
  Stats stats() const;
  /// Publishes a stats() snapshot into `metrics` as "udp.*" gauges. Pull
  /// style on purpose: the counters are atomics fed from every loop thread,
  /// while MetricsRegistry handles are unsynchronized — call this from one
  /// thread at quiescence (end of run), not from the hot path. Idempotent.
  void ExportStats(obs::MetricsRegistry* metrics) const;

 private:
  struct Endpoint {
    net::DeliveryFn deliver;
    std::function<bool()> is_up;
  };

  /// Per-site send-side scratch, touched only from that site's loop thread
  /// (every Transport action for a site runs there). All buffers are
  /// clear()ed, never shrunk, so their capacities warm up once and the
  /// steady-state path stops allocating.
  struct SendState {
    /// Staged outgoing datagrams, contiguous. Frames are copied in at stage
    /// time (not referenced) so a pending-send cache entry freed before the
    /// flush — cum-acked or cancelled — can never dangle under an iovec.
    std::string batch;
    struct Range {
      size_t off;
      size_t len;
      uint32_t dst;
    };
    std::vector<Range> staged;
    std::string frame;        ///< encode target for uncached frames
    std::string env_scratch;  ///< nested envelope blobs (codec scratch)
    std::string bcast_tail;   ///< shared broadcast body (after dst field)
  };

  /// Reads every pending datagram off `site`'s socket (loop thread only).
  void DrainSocket(uint32_t site);
  /// Decode + deliver one received frame (shared by both I/O modes).
  void HandleFrame(uint32_t site, const char* data, size_t len);
  /// True when the packet was claimed by injected drop (counter bumped).
  bool DropInjected();
  /// Stages `len` bytes for dst (batched mode on the loop thread) or sends
  /// them immediately (fallback mode, foreign threads, stopped loops).
  void StageOrSend(uint32_t src, uint32_t dst, const char* data, size_t len);
  /// One classified sendto: EINTR retried, EAGAIN/ENOBUFS soft, rest hard.
  void SendNow(uint32_t src, uint32_t dst, const char* data, size_t len);
  /// Drains site's staged datagrams through sendmmsg (pre-poll hook).
  void FlushSends(uint32_t site);
  /// Tracks capacity growth of a reused buffer across an append/encode.
  void NoteBufferGrowth(size_t cap_before, size_t cap_after);

  std::vector<EventLoop*> loops_;
  Options options_;
  std::vector<int> fds_;
  std::vector<uint16_t> ports_;
  std::vector<Endpoint> endpoints_;
  std::vector<std::unique_ptr<SendState>> send_states_;
  /// Per-site recvmmsg buffer set, lazily sized on first drain.
  struct RecvState;
  std::vector<std::unique_ptr<RecvState>> recv_states_;
  std::atomic<uint64_t> send_counter_{0};

  std::atomic<uint64_t> datagrams_sent_{0};
  std::atomic<uint64_t> datagrams_dropped_injected_{0};
  std::atomic<uint64_t> send_errors_{0};
  std::atomic<uint64_t> send_soft_errors_{0};
  std::atomic<uint64_t> oversize_frames_{0};
  std::atomic<uint64_t> datagrams_received_{0};
  std::atomic<uint64_t> decode_errors_{0};
  std::atomic<uint64_t> dropped_down_{0};
  std::atomic<uint64_t> send_syscalls_{0};
  std::atomic<uint64_t> recv_syscalls_{0};
  std::atomic<uint64_t> frames_encoded_{0};
  std::atomic<uint64_t> frame_cache_hits_{0};
  std::atomic<uint64_t> broadcast_legs_{0};
  std::atomic<uint64_t> broadcast_payload_encodes_{0};
  std::atomic<uint64_t> frame_buffer_allocs_{0};
};

/// The whole real runtime for an n-site system: a shared clock epoch, one
/// EventLoop per site, and the UDP conduit wiring them together. Owns
/// nothing protocol-level — sites are composed on top exactly as they are on
/// the kernel (see system::RealCluster).
class Real {
 public:
  struct Options {
    UdpConduit::Options net;
  };

  explicit Real(uint32_t num_sites, Options options = {});
  ~Real();

  Real(const Real&) = delete;
  Real& operator=(const Real&) = delete;

  EventLoop& loop(SiteId site) { return *loops_[site.value()]; }
  UdpConduit& conduit() { return *conduit_; }
  uint32_t num_sites() const { return static_cast<uint32_t>(loops_.size()); }

  /// Microseconds since construction (the epoch every loop shares).
  SimTime Now() const;

  void Start();
  void Stop();

  /// Runs `fn` on `site`'s loop thread and blocks until it returns. The
  /// synchronous marshalling helper drivers use to touch protocol state.
  void RunOn(SiteId site, std::function<void()> fn);

 private:
  EventLoop::Clock::time_point epoch_;
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::unique_ptr<UdpConduit> conduit_;
};

}  // namespace dvp::runtime
