// Dynamic hybrid placement (§8): "it may be preferable to design systems
// that can respond to different situations by dynamically interchanging
// between a DvP scheme and some traditional scheme."
//
// The controller watches each item's access mix over a sliding window:
//   * when full reads dominate, it CONSOLIDATES the item — drains Π⁻¹(d) to
//     the site issuing most reads (a ReadFull transaction does exactly this),
//     after which reads at that site are local and exact while remote
//     updates pay per-operation redistribution;
//   * when updates dominate again, it RE-SPLITS — pushes even shares back to
//     every site with Rds SendValue transfers, restoring local-update
//     throughput everywhere.
// Both transitions are ordinary DvP transactions/redistributions: no new
// protocol, no global coordination, and every invariant (conservation,
// non-blocking) holds throughout — which is the point of doing it this way.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.h"
#include "system/cluster.h"
#include "system/retry_client.h"

namespace dvp::system {

struct HybridOptions {
  /// Controller evaluation period.
  SimTime tick_us = 500'000;
  /// Consolidate when reads are at least this fraction of window accesses
  /// (and there are at least min_accesses).
  double consolidate_read_fraction = 0.3;
  /// Re-split when reads fall to or below this fraction.
  double resplit_read_fraction = 0.05;
  uint64_t min_accesses = 10;
  RetryPolicy retry;
};

class HybridController {
 public:
  enum class Mode { kPartitioned, kConsolidated };

  struct Stats {
    uint64_t consolidations = 0;
    uint64_t resplits = 0;
    uint64_t failed_transitions = 0;
  };

  HybridController(Cluster* cluster, HybridOptions options, uint64_t seed);

  /// Starts the periodic evaluation loop.
  void Start();

  /// Access notification (call from the workload path; the bench's driver
  /// hook does). Reads at the consolidated home are what the controller is
  /// optimising for.
  void RecordAccess(ItemId item, bool is_read, SiteId at);

  Mode mode(ItemId item) const;
  /// Home site of a consolidated item (invalid when partitioned).
  SiteId home(ItemId item) const;
  const Stats& stats() const { return stats_; }

  /// Hint for workloads: the site where a read of `item` is currently
  /// cheapest (its home when consolidated, anywhere otherwise).
  SiteId PreferredReadSite(ItemId item, SiteId fallback) const;

  /// Routing hint for updates: while consolidated, updates execute at the
  /// home (the traditional single-copy discipline — remote fragments are
  /// empty, so executing elsewhere would pull the value straight back out);
  /// while partitioned, anywhere.
  SiteId PreferredUpdateSite(ItemId item, SiteId fallback) const {
    return PreferredReadSite(item, fallback);
  }

 private:
  struct ItemState {
    Mode mode = Mode::kPartitioned;
    SiteId home;
    bool transition_in_flight = false;
    uint64_t window_reads = 0;
    uint64_t window_updates = 0;
    std::vector<uint64_t> reads_by_site;
  };

  void Tick();
  void Consolidate(ItemId item, SiteId target);
  void Resplit(ItemId item);

  Cluster* cluster_;
  HybridOptions options_;
  RetryingClient client_;
  std::vector<ItemState> items_;
  Stats stats_;
};

}  // namespace dvp::system
