// A complete DvP system on the real runtime: n sites, one OS thread and one
// loopback UDP socket each, stable storage per site — the same composition
// as system::Cluster with runtime::Real swapped in for the sim kernel and
// its network. The protocol sources underneath are identical; this facade
// only changes how drivers interact with them:
//
//  * Site state is owned by its loop thread once Start() runs. Submit()
//    marshals onto the target site's loop; completion callbacks fire on that
//    loop thread. Construction and Bootstrap happen before Start() on the
//    caller's thread.
//  * There is no RunFor/RunUntilQuiescent — wall-clock time passes by
//    itself. Drivers pace themselves and detect quiescence from their own
//    completion counts (see bench_realtime).
//  * Fault injection (partitions, crash/recover) is not carried over; the
//    sim remains the place where failures are searched. Real loss exists —
//    and can be injected per-datagram via Options::runtime.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "dvpcore/catalog.h"
#include "runtime/real.h"
#include "site/site.h"
#include "txn/txn.h"
#include "wal/stable_storage.h"

namespace dvp::system {

struct RealClusterOptions {
  uint32_t num_sites = 4;
  uint64_t seed = 42;
  site::SiteOptions site;
  runtime::Real::Options runtime;
};

class RealCluster {
 public:
  RealCluster(const core::Catalog* catalog, RealClusterOptions options);
  ~RealCluster();

  RealCluster(const RealCluster&) = delete;
  RealCluster& operator=(const RealCluster&) = delete;

  /// Splits every item's initial total evenly across sites and boots every
  /// site. Call before Start().
  void BootstrapEven();

  /// Starts every site's loop thread; timers armed during construction
  /// begin firing. Stop() joins them all (idempotent; the destructor calls
  /// it too). After Stop() the storages are quiescent and safe to audit.
  void Start();
  void Stop();

  /// Submits a transaction at `at` from any thread: the submission is
  /// marshalled onto that site's loop, and `cb` runs there when the
  /// transaction settles. Fire-and-forget — rejection at Begin (site down,
  /// invalid spec) surfaces through `cb` never being armed; drivers track
  /// completions, not submission handles.
  void Submit(SiteId at, txn::TxnSpec spec, txn::TxnCallback cb);

  uint32_t num_sites() const { return options_.num_sites; }
  runtime::Real& runtime() { return *real_; }
  site::Site& site(SiteId s) { return *sites_[s.value()]; }
  wal::StableStorage& storage(SiteId s) { return *storages_[s.value()]; }
  const core::Catalog& catalog() const { return *catalog_; }

  std::vector<const wal::StableStorage*> Storages() const;

  /// Durable conservation over every item (see verify::AuditAll). Only
  /// meaningful while the loops are stopped — the auditor replays logs the
  /// loop threads would otherwise still be appending to.
  Status AuditAll() const;

 private:
  const core::Catalog* catalog_;
  RealClusterOptions options_;
  Rng rng_;
  std::unique_ptr<runtime::Real> real_;
  std::vector<std::unique_ptr<wal::StableStorage>> storages_;
  std::vector<std::unique_ptr<site::Site>> sites_;
};

}  // namespace dvp::system
