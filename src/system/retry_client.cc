#include "system/retry_client.h"

namespace dvp::system {

void RetryingClient::Submit(SiteId at, const txn::TxnSpec& spec,
                            std::function<void(const RetryOutcome&)> done) {
  Attempt(at, spec, 1, policy_.base_backoff_us, std::move(done));
}

void RetryingClient::Attempt(SiteId at, txn::TxnSpec spec, uint32_t attempt,
                             SimTime backoff_us,
                             std::function<void(const RetryOutcome&)> done) {
  // Shared so the completion survives whichever path fires: the transaction
  // callback, or the synchronous Submit failure below (which destroys the
  // callback unfired).
  auto done_shared =
      std::make_shared<std::function<void(const RetryOutcome&)>>(
          std::move(done));
  auto submitted = cluster_->Submit(
      at, spec,
      [this, at, spec, attempt, backoff_us,
       done_shared](const txn::TxnResult& r) mutable {
        auto done = std::move(*done_shared);
        if (r.committed() || !Retryable(r) ||
            attempt >= policy_.max_attempts) {
          if (done) done(RetryOutcome{r, attempt});
          return;
        }
        ++total_retries_;
        // Randomised backoff: jitter desynchronises colliding clients.
        double jitter = 1.0 + policy_.jitter_fraction *
                                  (2.0 * rng_.NextDouble() - 1.0);
        SimTime delay = std::max<SimTime>(
            1, static_cast<SimTime>(double(backoff_us) * jitter));
        SimTime next_backoff = static_cast<SimTime>(
            double(backoff_us) * policy_.backoff_multiplier);
        cluster_->kernel().Schedule(
            delay, [this, at, spec = std::move(spec), attempt, next_backoff,
                    done = std::move(done)]() mutable {
              Attempt(at, std::move(spec), attempt + 1, next_backoff,
                      std::move(done));
            });
      });
  if (!submitted.ok()) {
    // Site down: final, no retry loop against a dead site.
    txn::TxnResult r;
    r.outcome = txn::TxnOutcome::kAbortSiteFailure;
    r.status = submitted.status();
    if (*done_shared) (*done_shared)(RetryOutcome{r, attempt});
  }
}

}  // namespace dvp::system
