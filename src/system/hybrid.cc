#include "system/hybrid.h"

#include <algorithm>

namespace dvp::system {

HybridController::HybridController(Cluster* cluster, HybridOptions options,
                                   uint64_t seed)
    : cluster_(cluster),
      options_(options),
      client_(cluster, options.retry, seed) {
  items_.resize(cluster->catalog().num_items());
  for (auto& state : items_) {
    state.reads_by_site.assign(cluster->num_sites(), 0);
  }
}

void HybridController::Start() {
  cluster_->kernel().Schedule(options_.tick_us, [this]() {
    Tick();
    Start();
  });
}

void HybridController::RecordAccess(ItemId item, bool is_read, SiteId at) {
  ItemState& state = items_[item.value()];
  if (is_read) {
    ++state.window_reads;
    ++state.reads_by_site[at.value()];
  } else {
    ++state.window_updates;
  }
}

HybridController::Mode HybridController::mode(ItemId item) const {
  return items_[item.value()].mode;
}

SiteId HybridController::home(ItemId item) const {
  const ItemState& state = items_[item.value()];
  return state.mode == Mode::kConsolidated ? state.home : SiteId::Invalid();
}

SiteId HybridController::PreferredReadSite(ItemId item,
                                           SiteId fallback) const {
  const ItemState& state = items_[item.value()];
  return state.mode == Mode::kConsolidated ? state.home : fallback;
}

void HybridController::Tick() {
  for (uint32_t i = 0; i < items_.size(); ++i) {
    ItemState& state = items_[i];
    uint64_t total = state.window_reads + state.window_updates;
    if (state.transition_in_flight || total < options_.min_accesses) {
      state.window_reads = 0;
      state.window_updates = 0;
      std::fill(state.reads_by_site.begin(), state.reads_by_site.end(), 0);
      continue;
    }
    double read_fraction = double(state.window_reads) / double(total);
    if (state.mode == Mode::kPartitioned &&
        read_fraction >= options_.consolidate_read_fraction) {
      // Drain to the site doing most of the reading.
      auto it = std::max_element(state.reads_by_site.begin(),
                                 state.reads_by_site.end());
      SiteId target(
          static_cast<uint32_t>(it - state.reads_by_site.begin()));
      Consolidate(ItemId(i), target);
    } else if (state.mode == Mode::kConsolidated &&
               read_fraction <= options_.resplit_read_fraction) {
      Resplit(ItemId(i));
    }
    state.window_reads = 0;
    state.window_updates = 0;
    std::fill(state.reads_by_site.begin(), state.reads_by_site.end(), 0);
  }
}

void HybridController::Consolidate(ItemId item, SiteId target) {
  ItemState& state = items_[item.value()];
  state.transition_in_flight = true;
  txn::TxnSpec drain;
  drain.ops = {txn::TxnOp::ReadFull(item)};
  drain.label = "hybrid.consolidate";
  client_.Submit(target, drain, [this, item, target](const RetryOutcome& o) {
    ItemState& state = items_[item.value()];
    state.transition_in_flight = false;
    if (o.result.committed()) {
      state.mode = Mode::kConsolidated;
      state.home = target;
      ++stats_.consolidations;
    } else {
      ++stats_.failed_transitions;  // try again on a later tick
    }
  });
}

void HybridController::Resplit(ItemId item) {
  ItemState& state = items_[item.value()];
  if (!cluster_->site(state.home).IsUp()) {
    ++stats_.failed_transitions;
    return;
  }
  // Push even shares from the home to every other site. These are plain Rds
  // transfers: conservation holds throughout, and a failure just leaves the
  // value partially redistributed — harmless, retried next tick.
  core::Value total = cluster_->site(state.home).LocalValue(item);
  uint32_t n = cluster_->num_sites();
  std::vector<core::Value> shares = SplitEven(total, n);
  bool all_ok = true;
  for (uint32_t s = 0; s < n; ++s) {
    if (s == state.home.value() || shares[s] <= 0) continue;
    Status sent =
        cluster_->site(state.home).SendValue(SiteId(s), item, shares[s]);
    if (!sent.ok()) all_ok = false;
  }
  if (all_ok) {
    state.mode = Mode::kPartitioned;
    state.home = SiteId::Invalid();
    ++stats_.resplits;
  } else {
    ++stats_.failed_transitions;
  }
}

}  // namespace dvp::system
