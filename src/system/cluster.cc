#include "system/cluster.h"

#include <cassert>
#include <numeric>

namespace dvp::system {

std::vector<core::Value> SplitEven(core::Value total, uint32_t n) {
  assert(n > 0);
  std::vector<core::Value> out(n, total / n);
  core::Value remainder = total % n;
  for (uint32_t i = 0; i < remainder; ++i) ++out[i];
  return out;
}

Cluster::Cluster(const core::Catalog* catalog, ClusterOptions options)
    : catalog_(catalog), options_(options), rng_(options.seed) {
  kernel_.EnablePerturbation(options_.perturb);
  // Bind the shared trace recorder (if any) to this cluster's virtual clock
  // so every component's events carry the simulation timestamp.
  if (options_.site.trace) options_.site.trace->Attach(&kernel_);
  network_ = std::make_unique<net::Network>(&kernel_, options_.num_sites,
                                            options_.link, rng_.Fork(1));
  storages_.reserve(options_.num_sites);
  sites_.reserve(options_.num_sites);
  for (uint32_t s = 0; s < options_.num_sites; ++s) {
    storages_.push_back(std::make_unique<wal::StableStorage>(SiteId(s)));
    sites_.push_back(std::make_unique<site::Site>(
        SiteId(s), &kernel_, network_.get(), storages_.back().get(), catalog_,
        rng_.Fork(100 + s), options_.site));
  }
}

Cluster::~Cluster() = default;

void Cluster::BootstrapEven() {
  std::map<ItemId, std::vector<core::Value>> alloc;
  for (ItemId item : catalog_->AllItems()) {
    alloc[item] = SplitEven(catalog_->info(item).initial_total,
                            options_.num_sites);
  }
  Status s = Bootstrap(alloc);
  assert(s.ok());
  (void)s;
}

void Cluster::BootstrapHomed() {
  assert(!booted_);
  if (booted_) return;  // release-build guard
  // Build each site's slice directly: no per-item num_sites-wide share
  // vectors, no cross-site validation loop. Domain validity of "everything"
  // and "nothing" is the bootstrap invariant the even split also relies on.
  for (uint32_t s = 0; s < options_.num_sites; ++s) {
    std::map<ItemId, core::Value> per_site;
    for (uint32_t i = s; i < catalog_->num_items(); i += options_.num_sites) {
      per_site[ItemId(i)] = catalog_->info(ItemId(i)).initial_total;
    }
    sites_[s]->Bootstrap(per_site);
  }
  booted_ = true;
}

Status Cluster::Bootstrap(
    const std::map<ItemId, std::vector<core::Value>>& alloc) {
  if (booted_) return Status::FailedPrecondition("cluster already booted");
  for (const auto& [item, shares] : alloc) {
    if (shares.size() != options_.num_sites) {
      return Status::InvalidArgument("allocation size != num_sites");
    }
    core::Value sum = std::accumulate(shares.begin(), shares.end(),
                                      core::Value{0});
    if (sum != catalog_->info(item).initial_total) {
      return Status::InvalidArgument(
          "allocation for " + catalog_->info(item).name +
          " does not sum to the initial total");
    }
    for (core::Value v : shares) {
      if (!catalog_->domain(item).ValidFragment(v)) {
        return Status::InvalidArgument("invalid fragment in allocation");
      }
    }
  }
  for (uint32_t s = 0; s < options_.num_sites; ++s) {
    std::map<ItemId, core::Value> per_site;
    for (const auto& [item, shares] : alloc) per_site[item] = shares[s];
    sites_[s]->Bootstrap(per_site);
  }
  booted_ = true;
  return Status::OK();
}

StatusOr<TxnId> Cluster::Submit(SiteId at, const txn::TxnSpec& spec,
                                txn::TxnCallback cb) {
  return sites_[at.value()]->Submit(spec, std::move(cb));
}

void Cluster::RunFor(SimTime us) { kernel_.Run(kernel_.Now() + us); }

void Cluster::RunUntilQuiescent(SimTime max_us) {
  // Unlike RunFor, the clock is left at the last executed event when the
  // queue drains before the deadline — "how long did this actually take".
  SimTime deadline = kernel_.Now() + max_us;
  while (kernel_.NextEventTime() <= deadline) {
    if (!kernel_.Step()) break;
  }
}

SimTime Cluster::Now() const { return kernel_.Now(); }

Status Cluster::Partition(const std::vector<std::vector<SiteId>>& groups) {
  return network_->partition().Split(groups);
}

void Cluster::Heal() { network_->partition().Heal(); }

void Cluster::CrashSite(SiteId s) { sites_[s.value()]->Crash(); }

void Cluster::RecoverSite(SiteId s) { sites_[s.value()]->Recover(); }

std::vector<const wal::StableStorage*> Cluster::Storages() const {
  std::vector<const wal::StableStorage*> out;
  out.reserve(storages_.size());
  for (const auto& s : storages_) out.push_back(s.get());
  return out;
}

verify::ConservationBreakdown Cluster::Audit(ItemId item) const {
  auto storages = Storages();
  return verify::AuditItem(storages, *catalog_, item);
}

Status Cluster::AuditAll() const {
  auto storages = Storages();
  return verify::AuditAll(storages, *catalog_);
}

Status Cluster::AuditAllBulk() const {
  auto storages = Storages();
  return verify::AuditAllBulk(storages, *catalog_);
}

verify::LiveValueFn Cluster::LiveView() const {
  return [this](SiteId s, ItemId item) -> std::optional<core::Value> {
    const site::Site& site = *sites_[s.value()];
    if (!site.IsUp()) return std::nullopt;
    return site.LocalValue(item);
  };
}

Status Cluster::AuditAllVolatile() const {
  auto storages = Storages();
  return verify::AuditAll(storages, *catalog_, LiveView());
}

CounterSet Cluster::AggregateCounters() const {
  CounterSet out;
  for (const auto& s : sites_) out.Merge(s->counters());
  const net::NetworkStats& ns = network_->stats();
  out.Inc("net.sent", ns.packets_sent);
  out.Inc("net.delivered", ns.packets_delivered);
  out.Inc("net.lost_link", ns.packets_lost_link);
  out.Inc("net.lost_partition", ns.packets_lost_partition);
  out.Inc("net.lost_down", ns.packets_lost_down);
  out.Inc("net.duplicated", ns.packets_duplicated);
  out.Inc("net.bytes_sent", ns.bytes_sent);
  out.Inc("net.bytes_delivered", ns.bytes_delivered);
  return out;
}

}  // namespace dvp::system
