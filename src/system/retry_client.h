// Client-side retry with randomised exponential backoff — the "additional
// mechanisms" §8 alludes to for avoiding livelock, and the natural companion
// to Conc1's conservatism: lock conflicts, timestamp refusals and gather
// timeouts are all transient (CC NACKs bump the local clock, redistribution
// continues in the background), so a retried transaction carries a
// competitive timestamp and usually succeeds.
#pragma once

#include <functional>

#include "common/rng.h"
#include "common/types.h"
#include "system/cluster.h"
#include "txn/txn.h"

namespace dvp::system {

struct RetryPolicy {
  /// Total tries including the first.
  uint32_t max_attempts = 4;
  /// First backoff; grows geometrically.
  SimTime base_backoff_us = 20'000;
  double backoff_multiplier = 2.0;
  /// Uniform jitter fraction applied to each backoff (±): two clients that
  /// keep colliding desynchronise instead of lock-stepping — the livelock
  /// breaker.
  double jitter_fraction = 0.5;
};

/// Final report of a retried submission.
struct RetryOutcome {
  txn::TxnResult result;  ///< the last attempt's result
  uint32_t attempts = 0;
};

class RetryingClient {
 public:
  RetryingClient(Cluster* cluster, RetryPolicy policy, uint64_t seed)
      : cluster_(cluster), policy_(policy), rng_(seed) {}

  /// Submits `spec` at `at`, retrying on transient aborts (lock conflict,
  /// Conc1 refusal, gather timeout). Invalid-spec aborts and site failures
  /// are final. The callback fires exactly once.
  void Submit(SiteId at, const txn::TxnSpec& spec,
              std::function<void(const RetryOutcome&)> done);

  uint64_t total_retries() const { return total_retries_; }

 private:
  static bool Retryable(const txn::TxnResult& r) {
    switch (r.outcome) {
      case txn::TxnOutcome::kAbortLockConflict:
      case txn::TxnOutcome::kAbortCcReject:
      case txn::TxnOutcome::kAbortTimeout:
        return true;
      default:
        return false;
    }
  }

  void Attempt(SiteId at, txn::TxnSpec spec, uint32_t attempt,
               SimTime backoff_us,
               std::function<void(const RetryOutcome&)> done);

  Cluster* cluster_;
  RetryPolicy policy_;
  Rng rng_;
  uint64_t total_retries_ = 0;
};

}  // namespace dvp::system
