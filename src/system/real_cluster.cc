#include "system/real_cluster.h"

#include <cassert>
#include <map>
#include <utility>

#include "system/cluster.h"
#include "verify/conservation.h"

namespace dvp::system {

RealCluster::RealCluster(const core::Catalog* catalog,
                         RealClusterOptions options)
    : catalog_(catalog), options_(options), rng_(options.seed) {
  real_ = std::make_unique<runtime::Real>(options_.num_sites,
                                          options_.runtime);
  storages_.reserve(options_.num_sites);
  sites_.reserve(options_.num_sites);
  for (uint32_t s = 0; s < options_.num_sites; ++s) {
    storages_.push_back(std::make_unique<wal::StableStorage>(SiteId(s)));
    sites_.push_back(std::make_unique<site::Site>(
        SiteId(s), &real_->loop(SiteId(s)), &real_->conduit(),
        storages_.back().get(), catalog_, rng_.Fork(100 + s),
        options_.site));
  }
}

RealCluster::~RealCluster() { Stop(); }

void RealCluster::BootstrapEven() {
  assert(!real_->loop(SiteId(0)).running() &&
         "bootstrap must precede Start()");
  for (uint32_t s = 0; s < options_.num_sites; ++s) {
    std::map<ItemId, core::Value> per_site;
    for (ItemId item : catalog_->AllItems()) {
      per_site[item] = SplitEven(catalog_->info(item).initial_total,
                                 options_.num_sites)[s];
    }
    sites_[s]->Bootstrap(per_site);
  }
}

void RealCluster::Start() { real_->Start(); }

void RealCluster::Stop() { real_->Stop(); }

void RealCluster::Submit(SiteId at, txn::TxnSpec spec, txn::TxnCallback cb) {
  site::Site* target = sites_[at.value()].get();
  real_->loop(at).Post(
      [target, spec = std::move(spec), cb = std::move(cb)]() mutable {
        txn::TxnCallback on_done = cb;
        StatusOr<TxnId> id = target->Submit(spec, std::move(cb));
        if (!id.ok() && on_done) {
          // Rejected at Begin (site down, invalid spec): settle the
          // submission through the same callback so drivers counting
          // completions never hang on it.
          txn::TxnResult result;
          result.outcome = txn::TxnOutcome::kAbortInvalid;
          result.status = id.status();
          on_done(result);
        }
      });
}

std::vector<const wal::StableStorage*> RealCluster::Storages() const {
  std::vector<const wal::StableStorage*> out;
  out.reserve(storages_.size());
  for (const auto& s : storages_) out.push_back(s.get());
  return out;
}

Status RealCluster::AuditAll() const {
  return verify::AuditAll(Storages(), *catalog_);
}

}  // namespace dvp::system
