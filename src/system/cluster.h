// Public facade: a complete DvP system — n sites, a fault-modelled network,
// stable storage per site — plus fault-injection and measurement hooks. This
// is the API the examples and benchmarks program against.
//
// Typical use (the paper's §3 airline example):
//
//   core::Catalog catalog;
//   ItemId flight_a = catalog.AddItem("flightA", core::CountDomain::Instance(), 100);
//   system::ClusterOptions opts;
//   opts.num_sites = 4;
//   system::Cluster cluster(&catalog, opts);
//   cluster.BootstrapEven();                       // 25 seats per site
//   cluster.Submit(SiteId(0), reserve_3_seats, cb);
//   cluster.RunFor(1'000'000);
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "dvpcore/catalog.h"
#include "net/network.h"
#include "sim/kernel.h"
#include "site/site.h"
#include "verify/conservation.h"
#include "wal/stable_storage.h"

namespace dvp::system {

struct ClusterOptions {
  uint32_t num_sites = 4;
  uint64_t seed = 42;
  net::LinkParams link;
  site::SiteOptions site;
  /// Schedule perturbation (chaos runs search interleavings with this);
  /// disabled by default — see sim::PerturbOptions.
  sim::PerturbOptions perturb;

  /// Convenience: configure for Conc2 (strict 2PL + ordered broadcast).
  /// Forces synchronous, loss-free FIFO links — Conc2's stated environment.
  ClusterOptions& UseConc2() {
    site.txn.scheme = cc::CcScheme::kConc2;
    link = net::LinkParams::Synchronous(link.base_delay_us);
    return *this;
  }
};

class Cluster {
 public:
  Cluster(const core::Catalog* catalog, ClusterOptions options);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // ---- Initial allocation ---------------------------------------------------

  /// Splits every item's initial total evenly across sites (remainder to the
  /// lowest site ids) and boots every site.
  void BootstrapEven();

  /// Boots with an explicit per-item, per-site allocation. Each vector must
  /// have num_sites entries summing to the item's initial total.
  Status Bootstrap(const std::map<ItemId, std::vector<core::Value>>& alloc);

  /// Boots with item i's FULL initial total at its home site (i mod
  /// num_sites) and nothing anywhere else. O(items) setup where an explicit
  /// Bootstrap allocation is O(items × sites) — the difference between a
  /// million-item cluster booting instantly and building 10⁸ map entries.
  /// Placement starts maximally skewed, which is exactly the regime the
  /// redistribution machinery is measured under.
  void BootstrapHomed();

  // ---- Work -----------------------------------------------------------------

  /// Submits a transaction at `at`. Fails fast if the site is down.
  StatusOr<TxnId> Submit(SiteId at, const txn::TxnSpec& spec,
                         txn::TxnCallback cb);

  /// Advances virtual time by `us`.
  void RunFor(SimTime us);
  /// Runs until the event queue drains or `max_us` elapses.
  void RunUntilQuiescent(SimTime max_us);
  SimTime Now() const;

  // ---- Fault injection --------------------------------------------------------

  Status Partition(const std::vector<std::vector<SiteId>>& groups);
  void Heal();
  void CrashSite(SiteId s);
  void RecoverSite(SiteId s);

  // ---- Introspection ----------------------------------------------------------

  uint32_t num_sites() const { return options_.num_sites; }
  site::Site& site(SiteId s) { return *sites_[s.value()]; }
  const site::Site& site(SiteId s) const { return *sites_[s.value()]; }
  wal::StableStorage& storage(SiteId s) { return *storages_[s.value()]; }
  sim::Kernel& kernel() { return kernel_; }
  net::Network& network() { return *network_; }
  const core::Catalog& catalog() const { return *catalog_; }

  /// Every site's stable storage, for the auditors.
  std::vector<const wal::StableStorage*> Storages() const;

  /// Durable conservation breakdown for one item.
  verify::ConservationBreakdown Audit(ItemId item) const;
  /// Checks the conservation invariant for all items.
  Status AuditAll() const;
  /// Same durable-view invariant, one log pass per site instead of one per
  /// site per item; the only audit that finishes at 10⁶ items × 100 sites.
  Status AuditAllBulk() const;

  /// Checks conservation in *both* views: the durable one and the volatile
  /// one, where every up site contributes its live in-memory fragment
  /// instead of its durable rebuild. Catches cache/WAL divergence that the
  /// stable-storage audit alone cannot see.
  Status AuditAllVolatile() const;

  /// The live-value accessor the volatile audit uses (up sites only).
  verify::LiveValueFn LiveView() const;

  /// Current durable item total (fragments + in-flight).
  core::Value TotalOf(ItemId item) const { return Audit(item).total(); }

  /// Sum of all sites' counters plus network statistics.
  CounterSet AggregateCounters() const;

 private:
  const core::Catalog* catalog_;
  ClusterOptions options_;
  sim::Kernel kernel_;
  Rng rng_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<wal::StableStorage>> storages_;
  std::vector<std::unique_ptr<site::Site>> sites_;
  bool booted_ = false;
};

/// Splits `total` into `n` non-negative shares, remainder to low indices.
std::vector<core::Value> SplitEven(core::Value total, uint32_t n);

}  // namespace dvp::system
