#include "vm/vm_manager.h"

#include <algorithm>
#include <cassert>
#include <memory>

#include "obs/trace.h"

namespace dvp::vm {

VmManager::VmManager(SiteId self, wal::GroupCommitLog* log,
                     core::ValueStore* store, cc::LockManager* locks,
                     net::Transport* transport, LamportClock* clock,
                     obs::MetricsRegistry* metrics, bool stamp_on_accept,
                     cc::AcceptStampMode stamp_mode, obs::TraceRecorder* trace)
    : self_(self),
      log_(log),
      store_(store),
      locks_(locks),
      transport_(transport),
      clock_(clock),
      trace_(trace),
      stamp_on_accept_(stamp_on_accept),
      stamp_mode_(stamp_mode),
      m_created_(obs::CounterIn(metrics, "vm.created")),
      m_accepted_(obs::CounterIn(metrics, "vm.accepted")),
      m_duplicate_(obs::CounterIn(metrics, "vm.duplicate")),
      m_deferred_locked_(obs::CounterIn(metrics, "vm.deferred_locked")),
      m_acked_(obs::CounterIn(metrics, "vm.acked")),
      m_closure_sent_(obs::CounterIn(metrics, "vm.closure_sent")),
      m_accepted_pruned_(obs::CounterIn(metrics, "vm.accepted_pruned")) {}

VmId VmManager::NextVmId() { return MakeVmId(self_, next_vm_counter_++); }

bool VmManager::AlreadyAccepted(VmId vm) const {
  auto it = accepted_.find(VmIdSite(vm));
  if (it == accepted_.end()) return false;
  uint64_t counter = VmIdCounter(vm);
  return counter < it->second.pruned_below ||
         it->second.counters.contains(counter);
}

size_t VmManager::accepted_entries() const {
  size_t n = 0;
  for (const auto& [site, pa] : accepted_) {
    (void)site;
    n += pa.counters.size();
  }
  return n;
}

void VmManager::MarkAccepted(VmId vm) {
  PeerAccepted& pa = accepted_[VmIdSite(vm)];
  uint64_t counter = VmIdCounter(vm);
  if (counter >= pa.pruned_below) pa.counters.insert(counter);
  ++lifetime_accepts_;
  accepted_peak_ = std::max(accepted_peak_, accepted_entries());
}

void VmManager::ObserveClosedBelow(SiteId src, uint64_t closed_below) {
  if (closed_below == 0) return;
  auto it = accepted_.find(src);
  if (it == accepted_.end()) return;
  PeerAccepted& pa = it->second;
  if (closed_below <= pa.pruned_below) return;
  auto upto = pa.counters.lower_bound(closed_below);
  size_t pruned = static_cast<size_t>(std::distance(pa.counters.begin(), upto));
  pa.counters.erase(pa.counters.begin(), upto);
  pa.pruned_below = closed_below;
  if (pruned > 0) m_accepted_pruned_->Inc(pruned);
}

uint64_t VmManager::ItemClosedBelow(ItemId item) const {
  uint64_t closed = next_vm_counter_;
  for (const auto& [id, out] : outbox_) {
    if (out.item == item) closed = std::min(closed, VmIdCounter(id));
  }
  return closed;
}

uint64_t VmManager::ClosedBelowFor(SiteId dst) const {
  uint64_t closed = next_vm_counter_;
  for (const auto& [id, out] : outbox_) {
    if (out.dst == dst) closed = std::min(closed, VmIdCounter(id));
  }
  return closed;
}

VmId VmManager::CreateVm(SiteId dst, ItemId item, core::Value amount,
                         TxnId for_txn, bool is_read_reply, uint32_t round) {
  const core::Fragment& frag = store_->fragment(item);
  assert(amount >= 0 && "Vm amounts are non-negative shares of the value");
  assert(store_->catalog().domain(item).ValidFragment(frag.value - amount));

  VmId id = NextVmId();
  if (trace_) {
    trace_->Instant(self_, obs::Track::kVm, "vm.born", TraceIdFor(id, for_txn),
                    "vm", id.value(), "amount",
                    static_cast<uint64_t>(amount));
  }

  // §4.2: one forced record carrying both the database action and the
  // message sequence. The Vm exists from this instant.
  wal::VmCreateRec rec;
  rec.vm = id;
  rec.dst = dst;
  rec.item = item;
  rec.amount = amount;
  rec.for_txn = for_txn;
  rec.write = wal::FragmentWrite{item, frag.value - amount, -amount,
                                 frag.ts.packed()};

  // Per-item ledger bump at the debit instant (read replies included — they
  // carry real value): keeps the snapshot identity exact at every instant.
  ItemLedger& led = ledger_[item];
  ++led.created_count;
  led.created_value += amount;

  if (!log_->enabled()) {
    log_->Append(wal::LogRecord(rec));

    // Database action: debit the fragment.
    store_->SetValue(item, frag.value - amount);

    OutVm out{dst, item, amount, for_txn, is_read_reply, round};
    outbox_.emplace(id, out);
    // Read replies are excluded from the movement counter: every reply to a
    // reader's round is itself a Vm, so counting them would bump the count
    // each round and no read could ever terminate.
    if (!is_read_reply) ++lifetime_creates_;
    m_created_->Inc();

    SendTransfer(id, out);
    return id;
  }

  // Group-commit path: the Vm is born only when the creation record's
  // covering force completes, so the real message carrying it is deferred
  // to that instant — a crash before the force must mean the Vm never
  // existed, and a transfer already on the wire would contradict that. The
  // debit and outbox entry are volatile and applied now.
  store_->SetValue(item, frag.value - amount);
  OutVm out{dst, item, amount, for_txn, is_read_reply, round};
  outbox_.emplace(id, out);
  if (!is_read_reply) ++lifetime_creates_;
  m_created_->Inc();
  log_->Append(wal::LogRecord(rec), [this, id] {
    auto it = outbox_.find(id);
    if (it != outbox_.end()) SendTransfer(id, it->second);
  });
  return id;
}

void VmManager::SendTransfer(VmId id, const OutVm& out) {
  auto msg = net::MakeEnvelope<proto::VmTransferMsg>();
  msg->vm = id;
  msg->src = self_;
  msg->item = out.item;
  msg->amount = out.amount;
  msg->for_txn = out.for_txn;
  msg->ts_packed = clock_->Next().packed();
  msg->is_read_reply = out.is_read_reply;
  msg->round = out.round;
  msg->accept_count = lifetime_accepts_;
  msg->create_count = lifetime_creates_;
  msg->closed_below = ClosedBelowFor(out.dst);
  msg->trace_id = TraceIdFor(id, out.for_txn);
  if (trace_) {
    trace_->Instant(self_, obs::Track::kVm, "vm.sent", msg->trace_id, "vm",
                    id.value(), "dst", out.dst.value());
  }
  transport_->SendReliable(out.dst, id.value(), std::move(msg));
}

void VmManager::SendAck(VmId vm, SiteId to, uint64_t trace_id) {
  auto ack = net::MakeEnvelope<proto::VmAckMsg>();
  ack->vm = vm;
  ack->from = self_;
  ack->ts_packed = clock_->Next().packed();
  ack->trace_id = trace_id;
  transport_->SendDatagram(to, std::move(ack));
}

core::Value VmManager::DoAccept(const proto::VmTransferMsg& msg,
                                bool stamp_fresh) {
  clock_->Observe(Timestamp::FromPacked(msg.ts_packed));
  if (AlreadyAccepted(msg.vm)) {
    m_duplicate_->Inc();
    if (trace_) {
      trace_->Instant(self_, obs::Track::kVm, "vm.duplicate", msg.trace_id,
                      "vm", msg.vm.value());
    }
    // No ack while the acceptance is still unforced: the covering force's
    // deferred SendAck will be the first (and only safe) one.
    if (!IsUnforcedAccept(msg.vm)) SendAck(msg.vm, msg.src, msg.trace_id);
    return 0;
  }
  const core::Fragment& frag = store_->fragment(msg.item);

  // An unlocked acceptance is an implicit Rds transaction; under Conc1 it
  // stamps the fragment so that no transaction older than the value's causal
  // past can lock the merged fragment. The creation timestamp of the Vm
  // bounds that past exactly (the creating site observed the requester's
  // timestamp before sending), so max(old stamp, creation ts) is the least
  // conservative sound stamp -- fresher local timestamps would refuse more
  // requesters than necessary.
  Timestamp post_ts = frag.ts;
  if (stamp_fresh && stamp_on_accept_) {
    post_ts = stamp_mode_ == cc::AcceptStampMode::kFreshLocal
                  ? clock_->Next()
                  : std::max(frag.ts, Timestamp::FromPacked(msg.ts_packed));
  }

  // §4.2: acceptance is the forcing of the [database-actions] record.
  wal::VmAcceptRec rec;
  rec.vm = msg.vm;
  rec.src = msg.src;
  rec.item = msg.item;
  rec.amount = msg.amount;
  rec.for_txn = msg.for_txn;
  rec.write = wal::FragmentWrite{msg.item, frag.value + msg.amount,
                                 msg.amount, post_ts.packed()};

  if (trace_) {
    trace_->Instant(self_, obs::Track::kVm, "vm.accepted", msg.trace_id, "vm",
                    msg.vm.value(), "amount",
                    static_cast<uint64_t>(msg.amount));
  }

  // Ledger bump at the credit instant — the mirror of CreateVm's debit.
  ItemLedger& led = ledger_[msg.item];
  ++led.accepted_count;
  led.accepted_value += msg.amount;

  if (!log_->enabled()) {
    log_->Append(wal::LogRecord(rec));

    store_->SetValue(msg.item, frag.value + msg.amount);
    store_->SetTs(msg.item, post_ts);
    MarkAccepted(msg.vm);
    m_accepted_->Inc();

    SendAck(msg.vm, msg.src, msg.trace_id);
    return msg.amount;
  }

  // Group-commit path: the Vm dies only at the covering force, so the ack —
  // which lets the sender durably close the Vm — waits for it. The credit
  // and dedup entry are volatile and applied now; until the force the
  // acceptance is tracked in unforced_accepts_ so duplicate handling and the
  // transport's consume/cum-ack logic treat the transfer as still open.
  store_->SetValue(msg.item, frag.value + msg.amount);
  store_->SetTs(msg.item, post_ts);
  MarkAccepted(msg.vm);
  m_accepted_->Inc();
  unforced_accepts_.insert(msg.vm);
  VmId vm = msg.vm;
  SiteId src = msg.src;
  uint64_t tid = msg.trace_id;
  log_->Append(wal::LogRecord(rec), [this, vm, src, tid] {
    unforced_accepts_.erase(vm);
    SendAck(vm, src, tid);
  });
  return msg.amount;
}

bool VmManager::AcceptOrIgnore(const proto::VmTransferMsg& msg) {
  if (AlreadyAccepted(msg.vm)) {
    if (!IsUnforcedAccept(msg.vm)) ReAck(msg);
    return false;
  }
  if (locks_->IsLocked(msg.item)) {
    // Locked by an unrelated transaction: ignore; the transfer will be
    // retransmitted and accepted once the lock clears (§5).
    m_deferred_locked_->Inc();
    if (trace_) {
      trace_->Instant(self_, obs::Track::kVm, "vm.deferred", msg.trace_id,
                      "vm", msg.vm.value(), "item", msg.item.value());
    }
    return false;
  }
  DoAccept(msg, /*stamp_fresh=*/true);
  return true;
}

core::Value VmManager::AcceptForTxn(const proto::VmTransferMsg& msg) {
  // The lock holder's own timestamp already guards the fragment.
  return DoAccept(msg, /*stamp_fresh=*/false);
}

void VmManager::ReAck(const proto::VmTransferMsg& msg) {
  m_duplicate_->Inc();
  SendAck(msg.vm, msg.src, msg.trace_id);
}

void VmManager::FinishAcked(VmId vm) {
  auto it = outbox_.find(vm);
  if (it == outbox_.end()) return;  // duplicate ack
  SiteId dst = it->second.dst;
  if (trace_) {
    trace_->Instant(self_, obs::Track::kVm, "vm.closed",
                    TraceIdFor(vm, it->second.for_txn), "vm", vm.value());
  }
  // The acked marker can ride the batch without a completion callback: it is
  // an optimization (stops retransmission across recoveries), and losing an
  // unforced one merely re-sends a transfer the receiver will ReAck.
  log_->Append(wal::LogRecord(wal::VmAckedRec{vm}));
  outbox_.erase(it);
  transport_->CancelReliable(vm.value());
  m_acked_->Inc();
  // Channel drained: no further transfer will carry the (now fully advanced)
  // watermark, so push it explicitly. Otherwise the recipient's dedup
  // entries for the final burst would linger until the channel's next use.
  // Sent reliably — a single lost datagram would strand them just as long —
  // but under a reserved token so it never masquerades as a Vm, and
  // cancelling any previous closure to the same peer so at most one is ever
  // in flight per channel.
  if (ClosedBelowFor(dst) == next_vm_counter_) {
    auto closure = net::MakeEnvelope<proto::VmClosureMsg>();
    closure->src = self_;
    closure->closed_below = next_vm_counter_;
    auto prev = closure_tokens_.find(dst);
    if (prev != closure_tokens_.end()) {
      transport_->CancelReliable(prev->second);
    }
    uint64_t token = kClosureTokenBase | next_closure_token_++;
    closure_tokens_[dst] = token;
    transport_->SendReliable(dst, token, std::move(closure));
    m_closure_sent_->Inc();
  }
}

void VmManager::OnAck(const proto::VmAckMsg& msg) {
  clock_->Observe(Timestamp::FromPacked(msg.ts_packed));
  FinishAcked(msg.vm);
}

void VmManager::OnTransportAck(uint64_t token) {
  if ((token & kClosureTokenBase) == kClosureTokenBase) {
    // A closure notification completed; it is not a Vm. Forget its token.
    for (auto it = closure_tokens_.begin(); it != closure_tokens_.end(); ++it) {
      if (it->second == token) {
        closure_tokens_.erase(it);
        break;
      }
    }
    return;
  }
  FinishAcked(VmId(token));
}

bool VmManager::HasOutstandingFor(ItemId item) const {
  for (const auto& [id, out] : outbox_) {
    (void)id;
    if (out.item == item) return true;
  }
  return false;
}

void VmManager::Clear() {
  outbox_.clear();
  accepted_.clear();
  unforced_accepts_.clear();
  closure_tokens_.clear();
  next_closure_token_ = 0;
  lifetime_accepts_ = 0;
  lifetime_creates_ = 0;
  accepted_peak_ = 0;
  ledger_.clear();
  next_vm_counter_ = 1;
}

void VmManager::RestoreFromLog() {
  Clear();
  Status s = log_->storage()->Scan(0, [&](Lsn, const wal::LogRecord& rec) {
    if (const auto* create = std::get_if<wal::VmCreateRec>(&rec)) {
      outbox_.emplace(create->vm,
                      OutVm{create->dst, create->item, create->amount,
                            create->for_txn, /*is_read_reply=*/false,
                            /*round=*/0});
      // The log does not record is_read_reply, so this over-counts replies.
      // Safe: a level shift only makes the reader's equality comparison fail
      // and run an extra round — never terminate early.
      ++lifetime_creates_;
      // The per-item ledger IS exact across recovery (unlike the count
      // above): the same durable records rebuild the store, so the fragment
      // identity holds again the instant the scan finishes.
      ItemLedger& cled = ledger_[create->item];
      ++cled.created_count;
      cled.created_value += create->amount;
      if (VmIdSite(create->vm) == self_) {
        next_vm_counter_ =
            std::max(next_vm_counter_, VmIdCounter(create->vm) + 1);
      }
    } else if (const auto* accept = std::get_if<wal::VmAcceptRec>(&rec)) {
      // The full accepted history is rebuilt (pruning watermarks are
      // volatile); the first transfers from each peer re-prune it.
      MarkAccepted(accept->vm);
      ItemLedger& aled = ledger_[accept->item];
      ++aled.accepted_count;
      aled.accepted_value += accept->amount;
    } else if (const auto* acked = std::get_if<wal::VmAckedRec>(&rec)) {
      outbox_.erase(acked->vm);
    }
  });
  assert(s.ok() && "vm recovery scan hit log corruption");
  (void)s;
  // The scan double-counted nothing (DoAccept logs each Vm at most once),
  // but it bumped lifetime_accepts_ via MarkAccepted — which is exactly the
  // durable lifetime count the read-termination rule needs.

  // §7: "outstanding Vm need not be sent again" by any special action — the
  // normal guaranteed-delivery machinery re-drives them. Re-arming the
  // transport is that machinery for a reborn site.
  //
  // Read-reply metadata is not reconstructed: the requesting read has long
  // since aborted (its site saw a timeout) or completed; the value itself is
  // what must not be lost, and it is not.
  for (const auto& [id, out] : outbox_) SendTransfer(id, out);
}

}  // namespace dvp::vm
