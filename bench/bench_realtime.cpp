// bench_realtime — the real-runtime driver (CI's realtime-smoke leg).
//
// Two phases:
//
//  1. Smoke (correctness gate, unchanged since PR 9): the same E4-style
//     hot-counter op list runs on runtime::Real and on the sim kernel; the
//     real run must settle >= 99% commits, the sim must commit everything,
//     both must pass the durable conservation audit.
//
//  2. E14 (wall-clock latency): an open-loop driver — Poisson admission at a
//     target rate, Zipfian item skew from the E12 generators — runs twice on
//     the real runtime: once with the PR 9 wire path (fresh heap string per
//     encode, one sendto/recv per datagram: frame_cache=off, batch_io=off)
//     and once with the fast path (encode-once frame cache, batched
//     sendmmsg/recvmmsg, reused buffers). It reports p50/p99/p999 commit
//     latency, txns/sec, syscalls/txn, and allocations/txn per mode, and
//     gates in-binary: the fast path must show >= 2x fewer frame-buffer
//     allocations per txn and fewer syscalls per txn than the baseline.
//
// `--json <path>` writes the strict-JSON report CI pins (deterministic
// fields) and bounds (timing fields).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/histogram.h"
#include "system/real_cluster.h"

namespace dvp::bench {
namespace {

constexpr uint32_t kNumSites = 4;
constexpr uint32_t kNumTxns = 1000;
constexpr core::Value kInitial = 1'000'000;  // conflicts, never drain
constexpr SimTime kPaceUs = 500;             // one submission per 500 us
constexpr SimTime kSettleDeadlineUs = 30'000'000;

// E14 open-loop parameters. Totals are kept small on purpose: each item is
// decremented at one site and incremented at the next, so the decrement site
// runs dry almost immediately and every later decrement must pull value over
// the wire (the paper's redistribution path) — that sustained cross-site
// traffic is what the two wire paths are compared on.
constexpr uint32_t kOpenTxns = 4000;
constexpr uint32_t kOpenItems = 64;
constexpr core::Value kOpenTotal = 8;       // per item, split across 4 sites
constexpr double kOpenZipfTheta = 0.8;
constexpr double kOpenRatePerSec = 2000.0;  // Poisson admission target

struct Op {
  SiteId at;
  bool down;            // decrement vs increment
  core::Value amount;   // 1..3
  SimTime submit_us;    // offset from run start
};

std::vector<Op> MakeOps(uint64_t seed) {
  Rng rng(seed);
  std::vector<Op> ops;
  ops.reserve(kNumTxns);
  SimTime t = 0;
  for (uint32_t i = 0; i < kNumTxns; ++i) {
    t += kPaceUs;
    ops.push_back(Op{SiteId(rng.NextInt(0, kNumSites - 1)),
                     rng.NextBool(0.5), rng.NextInt(1, 3), t});
  }
  return ops;
}

txn::TxnSpec SpecFor(const Op& op, ItemId item) {
  txn::TxnSpec spec;
  txn::TxnOp top;
  top.item = item;
  top.kind =
      op.down ? txn::TxnOp::Kind::kDecrement : txn::TxnOp::Kind::kIncrement;
  top.amount = op.amount;
  spec.ops.push_back(top);
  spec.label = "smoke";
  return spec;
}

struct Tally {
  uint64_t committed = 0;
  uint64_t decided = 0;
  bool audit_ok = false;
};

Tally RunReal(const std::vector<Op>& ops, uint64_t seed) {
  std::vector<ItemId> items;
  core::Catalog catalog = MakeCountCatalog(1, kInitial, &items);
  system::RealClusterOptions opts;
  opts.num_sites = kNumSites;
  opts.seed = seed;
  system::RealCluster cluster(&catalog, opts);
  cluster.BootstrapEven();
  cluster.Start();

  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> decided{0};
  auto start = std::chrono::steady_clock::now();
  for (const Op& op : ops) {
    std::this_thread::sleep_until(start +
                                  std::chrono::microseconds(op.submit_us));
    cluster.Submit(op.at, SpecFor(op, items[0]),
                   [&committed, &decided](const txn::TxnResult& r) {
                     if (r.committed()) {
                       committed.fetch_add(1, std::memory_order_relaxed);
                     }
                     decided.fetch_add(1, std::memory_order_relaxed);
                   });
  }
  auto deadline = start + std::chrono::microseconds(kSettleDeadlineUs);
  while (decided.load(std::memory_order_relaxed) < kNumTxns &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  cluster.Stop();

  Tally tally;
  tally.committed = committed.load();
  tally.decided = decided.load();
  tally.audit_ok = cluster.AuditAll().ok();
  return tally;
}

Tally RunSim(const std::vector<Op>& ops, uint64_t seed) {
  std::vector<ItemId> items;
  core::Catalog catalog = MakeCountCatalog(1, kInitial, &items);
  system::ClusterOptions opts;
  opts.num_sites = kNumSites;
  opts.seed = seed;
  system::Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();

  Tally tally;
  for (const Op& op : ops) {
    cluster.kernel().ScheduleAt(op.submit_us, [&cluster, &tally, op]() {
      auto id = cluster.Submit(SiteId(op.at), SpecFor(op, ItemId(0)),
                               [&tally](const txn::TxnResult& r) {
                                 if (r.committed()) ++tally.committed;
                                 ++tally.decided;
                               });
      (void)id;
    });
  }
  cluster.RunUntilQuiescent(kSettleDeadlineUs);
  tally.audit_ok = cluster.AuditAll().ok();
  return tally;
}

// ---- E14: open-loop wall-clock latency ------------------------------------

struct OpenLoopResult {
  uint32_t submitted = 0;
  uint64_t decided = 0;
  uint64_t committed = 0;
  bool audit_ok = false;
  Histogram commit_us;       // wall-clock submit->decision latency
  double elapsed_s = 0;      // admission start to last decision (or deadline)
  runtime::UdpConduit::Stats udp;
  uint64_t envelope_allocs = 0;  // pool envelopes consumed by this run
  uint64_t retransmissions = 0;        // summed over sites' transports
  uint64_t cache_invalidations = 0;    // ditto (fingerprint drift rebuilds)
};

/// One open-loop run: Poisson arrivals at kOpenRatePerSec, Zipf item skew.
/// `fast` selects the wire path under test; `drop_one_in` injects datagram
/// loss (0 = clean) so retransmissions — and therefore frame-cache replays —
/// actually occur.
OpenLoopResult RunOpenLoop(uint64_t seed, bool fast, uint32_t txns,
                           uint64_t drop_one_in, bool hints,
                           double rate_per_sec) {
  std::vector<ItemId> items;
  core::Catalog catalog = MakeCountCatalog(kOpenItems, kOpenTotal, &items);
  system::RealClusterOptions opts;
  opts.num_sites = kNumSites;
  opts.seed = seed;
  opts.runtime.net.batch_io = fast;
  opts.runtime.net.frame_cache = fast;
  opts.runtime.net.drop_one_in = drop_one_in;
  // Paced gather retries: the workload keeps decrement sites permanently
  // short, so a single-round ask that lands while the donor is locked (hot
  // item, concurrent increments) would otherwise sit out the whole 300 ms
  // timeout — identical protocol config in both modes, so the comparison
  // stays about the wire path.
  opts.site.txn.gather_retry_us = 5'000;
  // Surplus hints steer re-asks at the sites that actually hold value — but
  // each wire send restamps them, which (correctly) invalidates any cached
  // frame, so the loss phase that counter-asserts cache replays turns them
  // off.
  opts.site.placement.hints_per_frame = hints ? 2 : 0;
  system::RealCluster cluster(&catalog, opts);
  cluster.BootstrapEven();
  cluster.Start();

  OpenLoopResult res;
  res.submitted = txns;
  res.envelope_allocs = net::PoolStats().envelopes;

  std::mutex mu;
  Histogram commit_us;
  std::atomic<uint64_t> decided{0};
  std::atomic<uint64_t> committed{0};

  Rng rng(seed * 7919 + 17);
  ZipfGenerator zipf(kOpenItems, kOpenZipfTheta);
  // Per-item increment/decrement alternation keeps every global total within
  // one unit of its initial value (no drift aborts) while the site split —
  // decrements at item%n, increments at the next site — keeps the decrement
  // side permanently short of local value, so redistribution never idles.
  std::vector<uint8_t> toggle(kOpenItems, 0);
  using ClockT = std::chrono::steady_clock;
  auto start = ClockT::now();
  double next_us = 0;
  for (uint32_t i = 0; i < txns; ++i) {
    next_us += rng.NextExponential(1e6 / rate_per_sec);
    auto due = start + std::chrono::microseconds(
                           static_cast<int64_t>(next_us));
    std::this_thread::sleep_until(due);
    uint64_t k = zipf.Next(rng);
    bool down = (toggle[k] ^= 1) != 0;  // first touch decrements
    uint32_t site = down ? uint32_t(k) % kNumSites
                         : (uint32_t(k) + 1) % kNumSites;
    Op op{SiteId(site), down, /*amount=*/1, 0};
    ItemId item = items[k];
    auto submitted = ClockT::now();
    cluster.Submit(
        op.at, SpecFor(op, item),
        [&mu, &commit_us, &decided, &committed,
         submitted](const txn::TxnResult& r) {
          double us = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          ClockT::now() - submitted)
                          .count() /
                      1000.0;
          {
            std::lock_guard<std::mutex> lock(mu);
            commit_us.Add(us);
          }
          if (r.committed()) {
            committed.fetch_add(1, std::memory_order_relaxed);
          }
          decided.fetch_add(1, std::memory_order_relaxed);
        });
  }
  auto deadline = ClockT::now() + std::chrono::microseconds(kSettleDeadlineUs);
  while (decided.load(std::memory_order_relaxed) < txns &&
         ClockT::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  res.elapsed_s = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      ClockT::now() - start)
                      .count() /
                  1e9;
  res.udp = cluster.runtime().conduit().stats();
  // Surface the conduit counters through the obs registry (satellite: the
  // split error counters are pull-exported, not pushed per event).
  cluster.runtime().conduit().ExportStats(&cluster.site(SiteId(0)).metrics());
  cluster.Stop();

  // Loop threads are joined; per-site transport counters are safe to read.
  for (uint32_t s = 0; s < kNumSites; ++s) {
    net::Transport* t = cluster.site(SiteId(s)).transport();
    res.retransmissions += t->retransmissions();
    res.cache_invalidations += t->frame_cache_invalidations();
  }
  res.decided = decided.load();
  res.committed = committed.load();
  res.audit_ok = cluster.AuditAll().ok();
  {
    std::lock_guard<std::mutex> lock(mu);
    res.commit_us = commit_us;
  }
  res.envelope_allocs = net::PoolStats().envelopes - res.envelope_allocs;
  return res;
}

double PerTxn(uint64_t count, uint64_t txns) {
  return txns == 0 ? 0.0 : static_cast<double>(count) / double(txns);
}

void ReportMode(const char* name, const OpenLoopResult& r, JsonMetrics* json) {
  double syscalls_per_txn =
      PerTxn(r.udp.send_syscalls + r.udp.recv_syscalls, r.decided);
  double allocs_per_txn = PerTxn(r.udp.frame_buffer_allocs, r.decided);
  double datagrams_per_txn = PerTxn(r.udp.datagrams_sent, r.decided);
  double tput = r.elapsed_s > 0 ? double(r.decided) / r.elapsed_s : 0.0;
  std::printf(
      "  %-8s decided %llu/%u commit %.1f%%  p50 %.0fus p99 %.0fus "
      "p999 %.0fus  %.0f txn/s  syscalls/txn %.2f  allocs/txn %.3f\n",
      name, static_cast<unsigned long long>(r.decided), r.submitted,
      100.0 * PerTxn(r.committed, r.decided), r.commit_us.Median(),
      r.commit_us.P99(), r.commit_us.P999(), tput, syscalls_per_txn,
      allocs_per_txn);
  std::string p = std::string("e14.") + name;
  json->Set(p + ".decided", r.decided);
  json->Set(p + ".committed", r.committed);
  json->Set(p + ".audit_ok", r.audit_ok);
  json->Set(p + ".p50_commit_us", r.commit_us.Median());
  json->Set(p + ".p99_commit_us", r.commit_us.P99());
  json->Set(p + ".p999_commit_us", r.commit_us.P999());
  json->Set(p + ".txns_per_sec", tput);
  json->Set(p + ".syscalls_per_txn", syscalls_per_txn);
  json->Set(p + ".allocs_per_txn", allocs_per_txn);
  json->Set(p + ".datagrams_per_txn", datagrams_per_txn);
  json->Set(p + ".envelope_allocs_per_txn",
            PerTxn(r.envelope_allocs, r.decided));
  json->Set(p + ".frames_encoded", r.udp.frames_encoded);
  json->Set(p + ".frame_cache_hits", r.udp.frame_cache_hits);
  json->Set(p + ".send_syscalls", r.udp.send_syscalls);
  json->Set(p + ".recv_syscalls", r.udp.recv_syscalls);
  json->Set(p + ".send_errors", r.udp.send_errors);
  json->Set(p + ".send_soft_errors", r.udp.send_soft_errors);
  json->Set(p + ".oversize_frames", r.udp.oversize_frames);
}

int Main(int argc, char** argv) {
  constexpr uint64_t kSeed = 20260808;
  JsonMetrics json;
  std::string json_path = JsonPathFromArgs(argc, argv);

  // ---- Phase 1: smoke cross-check -----------------------------------------
  std::vector<Op> ops = MakeOps(kSeed);
  std::printf("bench_realtime: %u txns, %u sites, hot counter, pace %lld us\n",
              kNumTxns, kNumSites, static_cast<long long>(kPaceUs));
  Tally real = RunReal(ops, kSeed);
  Tally sim = RunSim(ops, kSeed);

  std::printf("  real: decided %llu/%u, committed %llu, conservation %s\n",
              static_cast<unsigned long long>(real.decided), kNumTxns,
              static_cast<unsigned long long>(real.committed),
              real.audit_ok ? "OK" : "VIOLATED");
  std::printf("  sim:  decided %llu/%u, committed %llu, conservation %s\n",
              static_cast<unsigned long long>(sim.decided), kNumTxns,
              static_cast<unsigned long long>(sim.committed),
              sim.audit_ok ? "OK" : "VIOLATED");

  bool ok = true;
  if (real.committed * 100 < uint64_t{kNumTxns} * 99) {
    std::printf("FAIL: real runtime committed < 99%%\n");
    ok = false;
  }
  if (sim.committed != kNumTxns) {
    std::printf("FAIL: sim oracle did not commit every transaction\n");
    ok = false;
  }
  if (!real.audit_ok || !sim.audit_ok) {
    std::printf("FAIL: conservation audit\n");
    ok = false;
  }
  json.Set("smoke.real_decided", real.decided);
  json.Set("smoke.sim_decided", sim.decided);
  json.Set("smoke.sim_committed", sim.committed);
  json.Set("smoke.ok", ok);

  // ---- Phase 2: E14 open-loop latency, baseline vs fast path --------------
  std::printf(
      "E14: open loop, %u txns @ %.0f/s Poisson, %u items zipf %.2f, "
      "%u sites\n",
      kOpenTxns, kOpenRatePerSec, kOpenItems, kOpenZipfTheta, kNumSites);
  OpenLoopResult base =
      RunOpenLoop(kSeed, /*fast=*/false, kOpenTxns, /*drop_one_in=*/0,
                  /*hints=*/true, kOpenRatePerSec);
  OpenLoopResult fastr =
      RunOpenLoop(kSeed, /*fast=*/true, kOpenTxns, /*drop_one_in=*/0,
                  /*hints=*/true, kOpenRatePerSec);
  ReportMode("baseline", base, &json);
  ReportMode("fast", fastr, &json);

  json.Set("e14.sites", uint64_t{kNumSites});
  json.Set("e14.txns", uint64_t{kOpenTxns});
  json.Set("e14.items", uint64_t{kOpenItems});
  json.Set("e14.zipf_theta", kOpenZipfTheta);
  json.Set("e14.target_rate_per_s", kOpenRatePerSec);
  json.Set("e14.seed", kSeed);

  auto check = [&ok](bool cond, const char* what) {
    if (!cond) {
      std::printf("FAIL: %s\n", what);
      ok = false;
    }
    return cond;
  };
  bool base_settled = check(base.decided == kOpenTxns, "baseline settled");
  bool fast_settled = check(fastr.decided == kOpenTxns, "fast settled");
  bool both_settled = base_settled && fast_settled;
  check(base.audit_ok && fastr.audit_ok, "E14 conservation audit");
  // Looser than the smoke gate on purpose: E14 runs hot items permanently
  // short of local value, so a few timeout aborts under scheduler jitter are
  // expected — correctness is the smoke phase's gate, this phase gates perf.
  check(PerTxn(base.committed, base.decided) >= 0.95 &&
            PerTxn(fastr.committed, fastr.decided) >= 0.95,
        "E14 commit rate >= 95%");

  double base_allocs = PerTxn(base.udp.frame_buffer_allocs, base.decided);
  double fast_allocs = PerTxn(fastr.udp.frame_buffer_allocs, fastr.decided);
  double base_sys =
      PerTxn(base.udp.send_syscalls + base.udp.recv_syscalls, base.decided);
  double fast_sys =
      PerTxn(fastr.udp.send_syscalls + fastr.udp.recv_syscalls, fastr.decided);
  bool alloc_ok =
      both_settled && fast_allocs * 2.0 <= base_allocs;
  bool syscall_ok = both_settled && fast_sys < base_sys;
  check(alloc_ok, "fast path >= 2x fewer frame-buffer allocs/txn");
  check(syscall_ok, "fast path fewer syscalls/txn");
  json.Set("e14.alloc_reduction_x",
           fast_allocs > 0 ? base_allocs / fast_allocs : 0.0);
  json.Set("e14.alloc_reduction_ok", alloc_ok);
  json.Set("e14.syscall_reduction_ok", syscall_ok);

  std::printf("  alloc/txn %.3f -> %.3f (%.1fx), syscalls/txn %.2f -> %.2f\n",
              base_allocs, fast_allocs,
              fast_allocs > 0 ? base_allocs / fast_allocs : 0.0, base_sys,
              fast_sys);

  // ---- Phase 3: encode-once under loss ------------------------------------
  // A clean loopback run never retransmits, so the cache replay path never
  // fires above. Inject datagram loss to force retransmissions and
  // counter-assert that they replay cached bytes (frame_cache_hits) instead
  // of re-encoding, while exactly-once delivery still settles every txn.
  // Sparse admission on purpose: on a busy channel the piggyback ack drifts
  // inside the RTO window and (correctly) invalidates the cached frame, so a
  // high-rate run would mostly measure rebuilds. At low rate the reverse
  // channel is quiet between first send and retransmit and the replay path
  // actually fires.
  constexpr uint32_t kLossyTxns = 400;
  std::printf("E14-loss: %u txns @ %.0f/s, drop 1-in-16, fast path\n",
              kLossyTxns, kOpenRatePerSec / 10);
  OpenLoopResult lossy =
      RunOpenLoop(kSeed + 1, /*fast=*/true, kLossyTxns, /*drop_one_in=*/16,
                  /*hints=*/false, kOpenRatePerSec / 10);
  ReportMode("lossy", lossy, &json);
  check(lossy.decided == kLossyTxns, "lossy run settled");
  check(lossy.audit_ok, "lossy conservation audit");
  check(lossy.retransmissions > 0, "loss actually forced retransmissions");
  // The encode-once contract under loss: a retransmitted frame is either
  // replayed verbatim from its cache (conduit hit) or re-encoded only after
  // a counted fingerprint invalidation (ack/seq_base drifted — the bytes
  // WERE stale). Retransmits coalesced with riders carry no cache, so
  // hits + invalidations can undershoot retransmissions, never exceed it.
  bool replay_ok =
      lossy.udp.frame_cache_hits + lossy.cache_invalidations > 0 &&
      lossy.udp.frame_cache_hits + lossy.cache_invalidations <=
          lossy.retransmissions;
  check(replay_ok, "retransmits replay cache or rebuild after invalidation");
  std::printf(
      "  lossy: %llu injected drops, %llu retransmits, %llu cache replays, "
      "%llu invalidations\n",
      static_cast<unsigned long long>(lossy.udp.datagrams_dropped_injected),
      static_cast<unsigned long long>(lossy.retransmissions),
      static_cast<unsigned long long>(lossy.udp.frame_cache_hits),
      static_cast<unsigned long long>(lossy.cache_invalidations));
  json.Set("e14.lossy.injected_drops", lossy.udp.datagrams_dropped_injected);
  json.Set("e14.lossy.retransmissions", lossy.retransmissions);
  json.Set("e14.lossy.cache_invalidations", lossy.cache_invalidations);
  json.Set("e14.lossy.replay_ok", replay_ok);
  json.Set("e14.ok", ok);

  if (!json_path.empty()) json.WriteTo(json_path);
  if (ok) std::printf("bench_realtime: PASS\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace dvp::bench

int main(int argc, char** argv) { return dvp::bench::Main(argc, argv); }
