// bench_realtime — the real-runtime smoke driver (CI's realtime-smoke leg).
//
// Not an experiment: a correctness gate. The same E4-style hot-counter
// workload (increment/decrement ±1..3 against one aggregate item, 4 sites)
// runs twice from one deterministic op list —
//   1. on runtime::Real: one OS thread and one loopback UDP socket per
//      site, wall-clock pacing, the packet byte codec on the wire;
//   2. on the sim kernel: the deterministic oracle, same spec, virtual
//      pacing.
// The driver then cross-checks: the real run must settle >= 99% of the
// transactions as commits, the sim run must commit them all, and BOTH
// clusters must pass the durable conservation audit. Any miss exits
// non-zero. This is the "same protocol sources, different runtime" claim
// made executable.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "system/real_cluster.h"

namespace dvp::bench {
namespace {

constexpr uint32_t kNumSites = 4;
constexpr uint32_t kNumTxns = 1000;
constexpr core::Value kInitial = 1'000'000;  // conflicts, never drain
constexpr SimTime kPaceUs = 500;             // one submission per 500 us
constexpr SimTime kSettleDeadlineUs = 30'000'000;

struct Op {
  SiteId at;
  bool down;            // decrement vs increment
  core::Value amount;   // 1..3
  SimTime submit_us;    // offset from run start
};

std::vector<Op> MakeOps(uint64_t seed) {
  Rng rng(seed);
  std::vector<Op> ops;
  ops.reserve(kNumTxns);
  SimTime t = 0;
  for (uint32_t i = 0; i < kNumTxns; ++i) {
    t += kPaceUs;
    ops.push_back(Op{SiteId(rng.NextInt(0, kNumSites - 1)),
                     rng.NextBool(0.5), rng.NextInt(1, 3), t});
  }
  return ops;
}

txn::TxnSpec SpecFor(const Op& op) {
  txn::TxnSpec spec;
  txn::TxnOp top;
  top.item = ItemId(0);
  top.kind =
      op.down ? txn::TxnOp::Kind::kDecrement : txn::TxnOp::Kind::kIncrement;
  top.amount = op.amount;
  spec.ops.push_back(top);
  spec.label = "smoke";
  return spec;
}

struct Tally {
  uint64_t committed = 0;
  uint64_t decided = 0;
  bool audit_ok = false;
};

Tally RunReal(const std::vector<Op>& ops, uint64_t seed) {
  std::vector<ItemId> items;
  core::Catalog catalog = MakeCountCatalog(1, kInitial, &items);
  system::RealClusterOptions opts;
  opts.num_sites = kNumSites;
  opts.seed = seed;
  system::RealCluster cluster(&catalog, opts);
  cluster.BootstrapEven();
  cluster.Start();

  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> decided{0};
  auto start = std::chrono::steady_clock::now();
  for (const Op& op : ops) {
    std::this_thread::sleep_until(start +
                                  std::chrono::microseconds(op.submit_us));
    cluster.Submit(op.at, SpecFor(op),
                   [&committed, &decided](const txn::TxnResult& r) {
                     if (r.committed()) {
                       committed.fetch_add(1, std::memory_order_relaxed);
                     }
                     decided.fetch_add(1, std::memory_order_relaxed);
                   });
  }
  auto deadline = start + std::chrono::microseconds(kSettleDeadlineUs);
  while (decided.load(std::memory_order_relaxed) < kNumTxns &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  cluster.Stop();

  Tally tally;
  tally.committed = committed.load();
  tally.decided = decided.load();
  tally.audit_ok = cluster.AuditAll().ok();
  return tally;
}

Tally RunSim(const std::vector<Op>& ops, uint64_t seed) {
  std::vector<ItemId> items;
  core::Catalog catalog = MakeCountCatalog(1, kInitial, &items);
  system::ClusterOptions opts;
  opts.num_sites = kNumSites;
  opts.seed = seed;
  system::Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();

  Tally tally;
  for (const Op& op : ops) {
    cluster.kernel().ScheduleAt(op.submit_us, [&cluster, &tally, op]() {
      auto id = cluster.Submit(op.at, SpecFor(op),
                               [&tally](const txn::TxnResult& r) {
                                 if (r.committed()) ++tally.committed;
                                 ++tally.decided;
                               });
      (void)id;
    });
  }
  cluster.RunUntilQuiescent(kSettleDeadlineUs);
  tally.audit_ok = cluster.AuditAll().ok();
  return tally;
}

int Main() {
  constexpr uint64_t kSeed = 20260808;
  std::vector<Op> ops = MakeOps(kSeed);

  std::printf("bench_realtime: %u txns, %u sites, hot counter, pace %lld us\n",
              kNumTxns, kNumSites, static_cast<long long>(kPaceUs));
  Tally real = RunReal(ops, kSeed);
  Tally sim = RunSim(ops, kSeed);

  std::printf("  real: decided %llu/%u, committed %llu, conservation %s\n",
              static_cast<unsigned long long>(real.decided), kNumTxns,
              static_cast<unsigned long long>(real.committed),
              real.audit_ok ? "OK" : "VIOLATED");
  std::printf("  sim:  decided %llu/%u, committed %llu, conservation %s\n",
              static_cast<unsigned long long>(sim.decided), kNumTxns,
              static_cast<unsigned long long>(sim.committed),
              sim.audit_ok ? "OK" : "VIOLATED");

  bool ok = true;
  if (real.committed * 100 < uint64_t{kNumTxns} * 99) {
    std::printf("FAIL: real runtime committed < 99%%\n");
    ok = false;
  }
  if (sim.committed != kNumTxns) {
    std::printf("FAIL: sim oracle did not commit every transaction\n");
    ok = false;
  }
  if (!real.audit_ok || !sim.audit_ok) {
    std::printf("FAIL: conservation audit\n");
    ok = false;
  }
  if (ok) std::printf("bench_realtime: PASS\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace dvp::bench

int main() { return dvp::bench::Main(); }
