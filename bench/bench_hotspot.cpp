// E4 — Hot-spot aggregate fields (paper §8, the escrow comparison).
//
// Claim: DvP lets many processes update one aggregate quantity concurrently
// (each against its own fragment), like O'Neil's escrow method does at a
// single site — while conventional exclusive locking serialises the hot spot
// and collapses under load.
//
// Setup: one hot counter; transactions are increment/decrement ±1..3 and
// hold the quantity for a 5 ms "multi-step transaction" window. Sweep the
// offered load; compare throughput and conflict-abort rate across:
//   exclusive-1site | escrow-1site | DvP-4sites | 2PC-writeall-4sites
#include <iomanip>

#include "baseline/escrow.h"
#include "baseline/twopc.h"
#include "bench/bench_common.h"

namespace dvp::bench {
namespace {

using txn::TxnOp;
using txn::TxnOutcome;
using txn::TxnSpec;

constexpr SimTime kRun = 30'000'000;
constexpr SimTime kTxnDuration = 5'000;  // 5 ms of held locks / escrow
constexpr core::Value kInitial = 1'000'000;  // plenty: conflicts, not drain

struct Row {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  double throughput(SimTime dur) const {
    return double(committed) * 1e6 / double(dur);
  }
  double abort_pct() const {
    uint64_t total = committed + aborted;
    return total == 0 ? 0 : 100.0 * double(aborted) / double(total);
  }
};

/// Drives a single-site EscrowSite (either mode) with Poisson arrivals.
Row RunSingleSite(baseline::EscrowSite::Mode mode, double rate,
                  uint64_t seed) {
  sim::Kernel kernel;
  baseline::EscrowSite site(&kernel, mode, kInitial, kTxnDuration);
  Rng rng(seed);
  Row row;
  // Schedule arrivals up front (open loop).
  SimTime t = 0;
  while (true) {
    t += SimTime(rng.NextExponential(1e6 / rate)) + 1;
    if (t >= kRun) break;
    core::Value m = rng.NextInt(1, 3);
    bool down = rng.NextBool(0.5);
    kernel.ScheduleAt(t, [&site, &row, m, down]() {
      auto cb = [&row](Status s) { s.ok() ? ++row.committed : ++row.aborted; };
      if (down) {
        site.Decrement(m, cb);
      } else {
        site.Increment(m, cb);
      }
    });
  }
  kernel.Run();
  return row;
}

Row RunDvp(double rate, uint64_t seed) {
  std::vector<ItemId> items;
  core::Catalog catalog = MakeCountCatalog(1, kInitial, &items);
  system::ClusterOptions opts;
  opts.num_sites = 4;
  opts.seed = seed;
  opts.site.txn.local_compute_us = kTxnDuration;
  system::Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();
  workload::DvpAdapter adapter(&cluster);
  workload::WorkloadOptions w;
  w.arrivals_per_sec = rate;
  w.p_decrement = 0.5;
  w.p_increment = 0.5;
  w.p_read = 0;
  w.amount_min = 1;
  w.amount_max = 3;
  w.seed = seed * 3 + 1;
  workload::WorkloadDriver driver(&adapter, items, w);
  auto r = driver.Run(kRun);
  Row row;
  row.committed = r.committed();
  row.aborted = r.decided() - r.committed();
  return row;
}

Row Run2pc(double rate, uint64_t seed) {
  std::vector<ItemId> items;
  core::Catalog catalog = MakeCountCatalog(1, kInitial, &items);
  baseline::TwoPcOptions opts;
  opts.num_sites = 4;
  opts.seed = seed;
  baseline::TwoPcCluster cluster(&catalog, opts);
  cluster.Bootstrap();
  workload::TwoPcAdapter adapter(&cluster);
  workload::WorkloadOptions w;
  w.arrivals_per_sec = rate;
  w.p_decrement = 0.5;
  w.p_increment = 0.5;
  w.p_read = 0;
  w.amount_min = 1;
  w.amount_max = 3;
  w.seed = seed * 3 + 1;
  workload::WorkloadDriver driver(&adapter, items, w);
  auto r = driver.Run(kRun);
  Row row;
  row.committed = r.committed();
  row.aborted = r.decided() - r.committed();
  return row;
}

// ---- E4b: site-skew sweep — blind vs surplus-directed vs rebalancer ---------
//
// One hot counter, 8 sites, both kinds of skew at once: all supply sits at
// two "warehouse" sites (1 and 2, replenished by increments), all demand at
// site 0 (a paced decrement every 20 ms). The pacing is deterministic and
// slower than any gather, so every mode decides every transaction the same
// way — the committed column is pinned — and only the traffic moves:
//   blind      — randomized full-ask fan-out (the pre-placement default)
//                pays request messages to the five permanently-empty sites
//                on every gather,
//   directed   — surplus hints route the exact ask to a covering warehouse,
//   rebalance  — directed plus the background rebalancer pushing value to
//                the demand hot spot so decrements commit locally, with no
//                gather at all.

constexpr SimTime kSkewRun = 20'000'000;
constexpr SimTime kSkewDrain = 5'000'000;
constexpr uint32_t kSkewSites = 8;
constexpr core::Value kSkewStock = 2'000;  // per warehouse
constexpr SimTime kSkewGap = 20'000;       // one decrement / increment pair
constexpr core::Value kSkewAmount = 4;
constexpr SimTime kSkewTimeout = 300'000;

enum class GatherMode { kBlind, kDirected, kRebalance };

std::string_view ModeName(GatherMode m) {
  switch (m) {
    case GatherMode::kBlind:
      return "blind";
    case GatherMode::kDirected:
      return "directed";
    case GatherMode::kRebalance:
      return "rebalance";
  }
  return "?";
}

struct SkewOutcome {
  uint64_t submitted = 0;
  uint64_t committed = 0;
  uint64_t timeouts = 0;
  uint64_t req_msgs = 0;
  uint64_t packets = 0;
  uint64_t local_commits = 0;
  uint64_t rebalance_pushes = 0;
  double local_fraction = 0;
  double msgs_per_txn = 0;
  double req_msgs_per_txn = 0;
  double rounds_p99 = 0;
  double timeout_rate = 0;
};

SkewOutcome RunSkew(GatherMode mode) {
  std::vector<ItemId> items;
  core::Catalog catalog = MakeCountCatalog(1, 2 * kSkewStock, &items);
  system::ClusterOptions opts;
  opts.num_sites = kSkewSites;
  opts.seed = 4'040;
  opts.site.txn.timeout_us = kSkewTimeout;
  opts.site.txn.targeting = mode == GatherMode::kBlind
                                ? txn::TargetPolicy::kRandom
                                : txn::TargetPolicy::kSurplus;
  if (mode != GatherMode::kBlind) {
    opts.site.placement.hints_per_frame = 4;
    // Faster than the submission gap: a round-1 miss (a warehouse's Conc1
    // gate refusing the ask) is re-asked wider and commits before the next
    // decrement arrives, so no mode ever sees a lock conflict.
    opts.site.txn.gather_retry_us = kSkewGap / 2;
  }
  if (mode == GatherMode::kRebalance) {
    opts.site.placement.rebalance = true;
    opts.site.placement.rebalance_interval_us = 100'000;
  }
  system::Cluster cluster(&catalog, opts);
  std::map<ItemId, std::vector<core::Value>> alloc;
  alloc[items[0]] = std::vector<core::Value>(kSkewSites, 0);
  alloc[items[0]][1] = kSkewStock;
  alloc[items[0]][2] = kSkewStock;
  Status booted = cluster.Bootstrap(alloc);
  assert(booted.ok());
  (void)booted;

  // Paced, deterministic schedule: every kSkewGap a decrement lands at the
  // demand site and a matching increment restocks a warehouse, so the total
  // stays level and the warehouses never run dry.
  SkewOutcome out;
  Histogram dec_rounds;
  for (SimTime at = kSkewGap; at < kSkewRun; at += kSkewGap) {
    cluster.kernel().ScheduleAt(at, [&cluster, &out, &dec_rounds, &items,
                                     at]() {
      TxnSpec dec;
      dec.ops = {TxnOp::Decrement(items[0], kSkewAmount)};
      ++out.submitted;
      (void)cluster.Submit(
          SiteId(0), dec, [&out, &dec_rounds](const txn::TxnResult& r) {
            if (r.committed()) {
              ++out.committed;
              dec_rounds.Add(double(r.rounds));
              if (r.rounds == 0) ++out.local_commits;
            } else if (r.outcome == TxnOutcome::kAbortTimeout) {
              ++out.timeouts;
            }
          });
      TxnSpec inc;
      inc.ops = {TxnOp::Increment(items[0], kSkewAmount)};
      SiteId warehouse((at / kSkewGap) % 2 == 0 ? 1 : 2);
      (void)cluster.Submit(warehouse, inc, nullptr);
    });
  }
  cluster.RunFor(kSkewRun + kSkewDrain);

  CounterSet counters = cluster.AggregateCounters();
  out.req_msgs = counters.Get("req.msgs");
  out.rebalance_pushes = counters.Get("placement.rebalance.push");
  out.packets = cluster.network().stats().packets_sent;
  double commits = double(std::max<uint64_t>(1, out.committed));
  out.local_fraction = double(out.local_commits) / commits;
  out.msgs_per_txn = double(out.packets) / commits;
  out.req_msgs_per_txn = double(out.req_msgs) / commits;
  out.rounds_p99 = dec_rounds.P99();
  out.timeout_rate =
      double(out.timeouts) / double(std::max<uint64_t>(1, out.submitted));

  Status audit = cluster.AuditAll();
  if (!audit.ok()) {
    std::cout << "CONSERVATION VIOLATION (" << ModeName(mode)
              << "): " << audit.ToString() << "\n";
    std::exit(1);
  }
  return out;
}

void MainSkew(const std::string& json_path) {
  PrintHeader("E4b",
              "site-skewed hot spot: request traffic and local-commit "
              "fraction, blind vs surplus-directed vs rebalancer");
  JsonMetrics metrics;
  workload::TablePrinter table({"mode", "committed", "local commit %",
                                "req msgs/txn", "msgs/txn", "rounds p99",
                                "timeout %", "rebal pushes"});
  std::map<GatherMode, SkewOutcome> outcomes;
  for (GatherMode mode : {GatherMode::kBlind, GatherMode::kDirected,
                          GatherMode::kRebalance}) {
    SkewOutcome o = RunSkew(mode);
    outcomes[mode] = o;
    table.AddRow(ModeName(mode), o.committed, Pct(o.local_fraction),
                 o.req_msgs_per_txn, o.msgs_per_txn, o.rounds_p99,
                 Pct(o.timeout_rate), o.rebalance_pushes);
    std::string k = "e4b." + std::string(ModeName(mode)) + ".";
    metrics.Set(k + "submitted", o.submitted);
    metrics.Set(k + "committed", o.committed);
    metrics.Set(k + "local_commit_fraction", o.local_fraction);
    metrics.Set(k + "msgs_per_txn", o.msgs_per_txn);
    metrics.Set(k + "req_msgs_per_txn", o.req_msgs_per_txn);
    metrics.Set(k + "rounds_p99", o.rounds_p99);
    metrics.Set(k + "timeout_abort_rate", o.timeout_rate);
    metrics.Set(k + "rebalance_pushes", o.rebalance_pushes);
  }
  table.Print();

  const SkewOutcome& blind = outcomes[GatherMode::kBlind];
  const SkewOutcome& directed = outcomes[GatherMode::kDirected];
  const SkewOutcome& rebal = outcomes[GatherMode::kRebalance];
  double req_cut = directed.req_msgs_per_txn > 0
                       ? blind.req_msgs_per_txn / directed.req_msgs_per_txn
                       : 0;
  bool committed_equal = blind.committed == directed.committed &&
                         blind.committed == rebal.committed;
  metrics.Set("e4b.req_msg_reduction_x", req_cut);
  metrics.Set("e4b.committed_equal", uint64_t(committed_equal ? 1 : 0));
  metrics.Set("e4b.local_commit_gain",
              rebal.local_fraction - blind.local_fraction);
  metrics.WriteTo(json_path);

  std::cout << "\nreq-message reduction (blind vs directed): " << req_cut
            << "x; local-commit fraction " << Pct(blind.local_fraction)
            << "% (blind) -> " << Pct(rebal.local_fraction)
            << "% (rebalance); committed counts "
            << (committed_equal ? "identical" : "DIVERGED") << ".\n";
  std::cout << "CHECK req_reduction>=2: " << (req_cut >= 2.0 ? "PASS" : "FAIL")
            << "  CHECK committed_equal: "
            << (committed_equal ? "PASS" : "FAIL")
            << "  CHECK rebalance_raises_local: "
            << (rebal.local_fraction > blind.local_fraction ? "PASS" : "FAIL")
            << "\n";
  if (req_cut < 2.0 || !committed_equal ||
      rebal.local_fraction <= blind.local_fraction) {
    std::exit(1);
  }
}

void Main() {
  PrintHeader("E4",
              "hot-spot counter: committed txn/s (and conflict-abort %) vs "
              "offered load; 5 ms transactions");
  workload::TablePrinter table({"offered txn/s", "exclusive 1-site",
                                "escrow 1-site", "DvP 4-site",
                                "2PC write-all"});
  for (double rate : {50.0, 100.0, 200.0, 400.0, 800.0}) {
    auto cell = [&](Row r) {
      std::ostringstream os;
      os.setf(std::ios::fixed);
      os.precision(0);
      os << r.throughput(kRun) << "/s (" << std::setprecision(1)
         << r.abort_pct() << "% ab)";
      return os.str();
    };
    Row ex = RunSingleSite(baseline::EscrowSite::Mode::kExclusive, rate, 42);
    Row es = RunSingleSite(baseline::EscrowSite::Mode::kEscrow, rate, 42);
    Row dv = RunDvp(rate, 42);
    Row tp = Run2pc(rate, 42);
    table.AddRow(rate, cell(ex), cell(es), cell(dv), cell(tp));
  }
  table.Print();
  std::cout << "\nExclusive locking saturates near 1/txn-duration = 200/s "
               "and aborts the excess. Escrow admits all concurrent "
               "increments/decrements; DvP does the same *distributed*, with "
               "per-site fragments; 2PC pays replica locking on top of the "
               "hot spot.\n";
}

}  // namespace
}  // namespace dvp::bench

int main(int argc, char** argv) {
  std::string json = dvp::bench::JsonPathFromArgs(argc, argv);
  // CI's perf-smoke runs only the E4b sweep (that's where the pinned JSON
  // and the bounds live); the interactive run prints both experiments.
  if (json.empty()) dvp::bench::Main();
  dvp::bench::MainSkew(json);
}
