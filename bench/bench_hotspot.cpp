// E4 — Hot-spot aggregate fields (paper §8, the escrow comparison).
//
// Claim: DvP lets many processes update one aggregate quantity concurrently
// (each against its own fragment), like O'Neil's escrow method does at a
// single site — while conventional exclusive locking serialises the hot spot
// and collapses under load.
//
// Setup: one hot counter; transactions are increment/decrement ±1..3 and
// hold the quantity for a 5 ms "multi-step transaction" window. Sweep the
// offered load; compare throughput and conflict-abort rate across:
//   exclusive-1site | escrow-1site | DvP-4sites | 2PC-writeall-4sites
#include <iomanip>

#include "baseline/escrow.h"
#include "baseline/twopc.h"
#include "bench/bench_common.h"

namespace dvp::bench {
namespace {

constexpr SimTime kRun = 30'000'000;
constexpr SimTime kTxnDuration = 5'000;  // 5 ms of held locks / escrow
constexpr core::Value kInitial = 1'000'000;  // plenty: conflicts, not drain

struct Row {
  uint64_t committed = 0;
  uint64_t aborted = 0;
  double throughput(SimTime dur) const {
    return double(committed) * 1e6 / double(dur);
  }
  double abort_pct() const {
    uint64_t total = committed + aborted;
    return total == 0 ? 0 : 100.0 * double(aborted) / double(total);
  }
};

/// Drives a single-site EscrowSite (either mode) with Poisson arrivals.
Row RunSingleSite(baseline::EscrowSite::Mode mode, double rate,
                  uint64_t seed) {
  sim::Kernel kernel;
  baseline::EscrowSite site(&kernel, mode, kInitial, kTxnDuration);
  Rng rng(seed);
  Row row;
  // Schedule arrivals up front (open loop).
  SimTime t = 0;
  while (true) {
    t += SimTime(rng.NextExponential(1e6 / rate)) + 1;
    if (t >= kRun) break;
    core::Value m = rng.NextInt(1, 3);
    bool down = rng.NextBool(0.5);
    kernel.ScheduleAt(t, [&site, &row, m, down]() {
      auto cb = [&row](Status s) { s.ok() ? ++row.committed : ++row.aborted; };
      if (down) {
        site.Decrement(m, cb);
      } else {
        site.Increment(m, cb);
      }
    });
  }
  kernel.Run();
  return row;
}

Row RunDvp(double rate, uint64_t seed) {
  std::vector<ItemId> items;
  core::Catalog catalog = MakeCountCatalog(1, kInitial, &items);
  system::ClusterOptions opts;
  opts.num_sites = 4;
  opts.seed = seed;
  opts.site.txn.local_compute_us = kTxnDuration;
  system::Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();
  workload::DvpAdapter adapter(&cluster);
  workload::WorkloadOptions w;
  w.arrivals_per_sec = rate;
  w.p_decrement = 0.5;
  w.p_increment = 0.5;
  w.p_read = 0;
  w.amount_min = 1;
  w.amount_max = 3;
  w.seed = seed * 3 + 1;
  workload::WorkloadDriver driver(&adapter, items, w);
  auto r = driver.Run(kRun);
  Row row;
  row.committed = r.committed();
  row.aborted = r.decided() - r.committed();
  return row;
}

Row Run2pc(double rate, uint64_t seed) {
  std::vector<ItemId> items;
  core::Catalog catalog = MakeCountCatalog(1, kInitial, &items);
  baseline::TwoPcOptions opts;
  opts.num_sites = 4;
  opts.seed = seed;
  baseline::TwoPcCluster cluster(&catalog, opts);
  cluster.Bootstrap();
  workload::TwoPcAdapter adapter(&cluster);
  workload::WorkloadOptions w;
  w.arrivals_per_sec = rate;
  w.p_decrement = 0.5;
  w.p_increment = 0.5;
  w.p_read = 0;
  w.amount_min = 1;
  w.amount_max = 3;
  w.seed = seed * 3 + 1;
  workload::WorkloadDriver driver(&adapter, items, w);
  auto r = driver.Run(kRun);
  Row row;
  row.committed = r.committed();
  row.aborted = r.decided() - r.committed();
  return row;
}

void Main() {
  PrintHeader("E4",
              "hot-spot counter: committed txn/s (and conflict-abort %) vs "
              "offered load; 5 ms transactions");
  workload::TablePrinter table({"offered txn/s", "exclusive 1-site",
                                "escrow 1-site", "DvP 4-site",
                                "2PC write-all"});
  for (double rate : {50.0, 100.0, 200.0, 400.0, 800.0}) {
    auto cell = [&](Row r) {
      std::ostringstream os;
      os.setf(std::ios::fixed);
      os.precision(0);
      os << r.throughput(kRun) << "/s (" << std::setprecision(1)
         << r.abort_pct() << "% ab)";
      return os.str();
    };
    Row ex = RunSingleSite(baseline::EscrowSite::Mode::kExclusive, rate, 42);
    Row es = RunSingleSite(baseline::EscrowSite::Mode::kEscrow, rate, 42);
    Row dv = RunDvp(rate, 42);
    Row tp = Run2pc(rate, 42);
    table.AddRow(rate, cell(ex), cell(es), cell(dv), cell(tp));
  }
  table.Print();
  std::cout << "\nExclusive locking saturates near 1/txn-duration = 200/s "
               "and aborts the excess. Escrow admits all concurrent "
               "increments/decrements; DvP does the same *distributed*, with "
               "per-site fragments; 2PC pays replica locking on top of the "
               "hot spot.\n";
}

}  // namespace
}  // namespace dvp::bench

int main() { dvp::bench::Main(); }
