// E5 / E5b — The price of reading, and the stamped-snapshot answer.
//
// E5 (paper §8: "there is a high overhead in reading the entire value of a
// particular data item"): a DvP full read must drain Π⁻¹(d) to the reader —
// multi-round gather, messages proportional to rounds × sites — and it drags
// the background write commit rate down as the read mix grows, because every
// read concentrates all value at the reader. 2PC quorum reads are shown for
// contrast (cheap when healthy, unavailable under failures — the paper's
// trade).
//
// E5b (this repo's extension): the stamped snapshot read assembles
// Σ fragments + Σ in-flight from per-site ledger replies instead of draining
// value. No value moves, no locks are taken, and concurrent writes proceed
// untouched — so the read is a round-trip, not a drain, and the write commit
// rate stays flat across the whole mix sweep. Every committed snapshot is
// validated by the windowed consistent-cut oracle, each seed runs TWICE and
// the outcomes must match field for field, and CI byte-diffs the JSON
// against BENCH_read.json.
//
// Self-checks (exit 1 on failure):
//   - snapshot read p50 <= full-drain read p50 / 5 at the 20% mix
//   - background write commit rate >= 90% at every snapshot mix (1%..50%)
//   - zero serializability / snapshot-cut oracle violations
//   - both seeds deterministic across their two runs
#include "baseline/twopc.h"
#include "bench/bench_common.h"
#include "verify/serializability.h"

namespace dvp::bench {
namespace {

constexpr SimTime kRun = 20'000'000;
constexpr SimTime kDrain = 4'000'000;
constexpr uint32_t kSites = 4;
constexpr uint32_t kItems = 4;
constexpr core::Value kPerItem = 4000;
constexpr double kRate = 60.0;
constexpr double kMixes[] = {0.01, 0.05, 0.10, 0.20, 0.50};
constexpr uint64_t kSeeds[] = {5'001, 8'202};

uint32_t Mille(double mix) { return static_cast<uint32_t>(mix * 1000 + 0.5); }

/// Everything one arm measures. Field-for-field equality across two runs of
/// the same (mix, seed) is the determinism gate.
struct Outcome {
  uint64_t submitted = 0;
  uint64_t read_committed = 0;
  uint64_t read_aborted = 0;
  double read_p50_us = 0;
  double read_p99_us = 0;
  double read_rounds_p50 = 0;
  uint64_t write_committed = 0;
  uint64_t write_decided = 0;
  uint64_t msgs = 0;
  uint64_t snap_unbalanced_rounds = 0;
  uint64_t snap_cut_forced = 0;
  uint64_t oracle_ok = 1;

  double write_commit_rate() const {
    return write_decided == 0
               ? 1.0
               : double(write_committed) / double(write_decided);
  }
  double read_abort_pct() const {
    uint64_t n = read_committed + read_aborted;
    return n == 0 ? 0.0 : 100.0 * double(read_aborted) / double(n);
  }

  friend bool operator==(const Outcome&, const Outcome&) = default;
};

/// One DvP run at the given mix; `snapshot` selects which read mode fills
/// the mix's read share. Snapshot runs feed every commit to the history
/// checker and validate both the full serializability replay and the
/// snapshot-only cut oracle.
Outcome RunDvp(double read_mix, uint64_t seed, bool snapshot) {
  std::vector<ItemId> items;
  core::Catalog catalog = MakeCountCatalog(kItems, kPerItem, &items);
  system::ClusterOptions opts;
  opts.num_sites = kSites;
  opts.seed = seed;
  opts.site.txn.timeout_us = 500'000;
  system::Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();
  workload::DvpAdapter adapter(&cluster);

  workload::WorkloadOptions w;
  w.arrivals_per_sec = kRate;
  w.p_read = snapshot ? 0.0 : read_mix;
  w.p_snapshot = snapshot ? read_mix : 0.0;
  w.p_decrement = (1.0 - read_mix) / 2;
  w.p_increment = (1.0 - read_mix) / 2;
  w.seed = seed * 3 + Mille(read_mix);
  workload::WorkloadDriver driver(&adapter, items, w);

  verify::HistoryChecker checker(&catalog);
  if (snapshot) {
    driver.set_on_commit([&](TxnId id, const txn::TxnSpec& spec,
                             const txn::TxnResult& r) {
      checker.RecordCommitAt(adapter.Now(), id, spec, r);
    });
  }

  Outcome out;
  Histogram read_latency, read_rounds;
  driver.set_on_decision([&](SiteId, const txn::TxnSpec& spec,
                             const txn::TxnResult& r) {
    bool is_read = spec.ops.front().kind == txn::TxnOp::Kind::kReadFull ||
                   spec.ops.front().kind == txn::TxnOp::Kind::kReadSnapshot;
    if (is_read) {
      if (r.committed()) {
        ++out.read_committed;
        read_latency.Add(double(r.latency_us));
        read_rounds.Add(double(r.rounds));
      } else {
        ++out.read_aborted;
      }
    } else {
      ++out.write_decided;
      if (r.committed()) ++out.write_committed;
    }
  });

  auto results = driver.Run(kRun, kDrain);
  out.submitted = results.submitted;
  out.read_p50_us = read_latency.Median();
  out.read_p99_us = read_latency.P99();
  out.read_rounds_p50 = read_rounds.Median();
  CounterSet counters = cluster.AggregateCounters();
  out.msgs = counters.Get("net.sent");
  out.snap_unbalanced_rounds = counters.Get("snapshot.rounds.unbalanced");
  out.snap_cut_forced = counters.Get("snapshot.cut_forced");

  if (snapshot) {
    std::map<ItemId, core::Value> final_totals;
    for (ItemId item : items) final_totals[item] = cluster.TotalOf(item);
    Status ser = checker.Check(verify::HistoryChecker::Order::kTimestamp,
                               &final_totals);
    Status cuts = checker.CheckSnapshotCuts();
    out.oracle_ok = ser.ok() && cuts.ok() ? 1 : 0;
    if (!ser.ok()) {
      std::cout << "SERIALIZABILITY VIOLATION (mix " << Mille(read_mix)
                << ", seed " << seed << "): " << ser.ToString() << "\n";
    }
    if (!cuts.ok()) {
      std::cout << "SNAPSHOT CUT VIOLATION (mix " << Mille(read_mix)
                << ", seed " << seed << "): " << cuts.ToString() << "\n";
    }
  }
  return out;
}

/// The 2PC quorum contrast arm (reads are quorum reads).
Outcome RunTwoPc(double read_mix, uint64_t seed) {
  std::vector<ItemId> items;
  core::Catalog catalog = MakeCountCatalog(kItems, kPerItem, &items);
  baseline::TwoPcOptions opts;
  opts.num_sites = kSites;
  opts.seed = seed;
  opts.policy = baseline::ReplicaPolicy::kQuorum;
  baseline::TwoPcCluster cluster(&catalog, opts);
  cluster.Bootstrap();
  workload::TwoPcAdapter adapter(&cluster, "2PC quorum");

  workload::WorkloadOptions w;
  w.arrivals_per_sec = kRate;
  w.p_read = read_mix;
  w.p_decrement = (1.0 - read_mix) / 2;
  w.p_increment = (1.0 - read_mix) / 2;
  w.seed = seed * 3 + Mille(read_mix);
  workload::WorkloadDriver driver(&adapter, items, w);

  Outcome out;
  Histogram read_latency;
  driver.set_on_decision([&](SiteId, const txn::TxnSpec& spec,
                             const txn::TxnResult& r) {
    if (spec.ops.front().kind == txn::TxnOp::Kind::kReadFull) {
      if (r.committed()) {
        ++out.read_committed;
        read_latency.Add(double(r.latency_us));
      } else {
        ++out.read_aborted;
      }
    } else {
      ++out.write_decided;
      if (r.committed()) ++out.write_committed;
    }
  });
  auto results = driver.Run(kRun, kDrain);
  out.submitted = results.submitted;
  out.read_p50_us = read_latency.Median();
  out.read_p99_us = read_latency.P99();
  return out;
}

void Emit(JsonMetrics* m, const std::string& k, const Outcome& o) {
  m->Set(k + "submitted", o.submitted);
  m->Set(k + "read_committed", o.read_committed);
  m->Set(k + "read_aborted", o.read_aborted);
  m->Set(k + "read_p50_us", o.read_p50_us);
  m->Set(k + "read_p99_us", o.read_p99_us);
  m->Set(k + "read_rounds_p50", o.read_rounds_p50);
  m->Set(k + "write_committed", o.write_committed);
  m->Set(k + "write_decided", o.write_decided);
  m->Set(k + "msgs", o.msgs);
  m->Set(k + "snap_unbalanced_rounds", o.snap_unbalanced_rounds);
  m->Set(k + "snap_cut_forced", o.snap_cut_forced);
  m->Set(k + "oracle_ok", o.oracle_ok);
}

void Main(const std::string& json_path) {
  PrintHeader("E5/E5b",
              "full-read drain cost vs stamped snapshot reads (4 sites, "
              "4 items)");
  JsonMetrics metrics;
  workload::TablePrinter table(
      {"read mix %", "system", "read p50 (ms)", "read p99 (ms)",
       "rounds p50", "read abort %", "write commit %"});

  bool ok = true;
  std::map<uint32_t, double> full_p50;

  // ---- E5: the full-drain arm and the 2PC contrast ------------------------
  for (double mix : kMixes) {
    Outcome full = RunDvp(mix, 55, /*snapshot=*/false);
    full_p50[Mille(mix)] = full.read_p50_us;
    table.AddRow(Pct(mix), "DvP full drain", full.read_p50_us / 1000.0,
                 full.read_p99_us / 1000.0, full.read_rounds_p50,
                 full.read_abort_pct(), Pct(full.write_commit_rate()));
    Emit(&metrics, "read.full.mix" + std::to_string(Mille(mix)) + ".", full);

    Outcome twopc = RunTwoPc(mix, 55);
    table.AddRow(Pct(mix), "2PC quorum", twopc.read_p50_us / 1000.0,
                 twopc.read_p99_us / 1000.0, 0.0, twopc.read_abort_pct(),
                 Pct(twopc.write_commit_rate()));
    Emit(&metrics, "read.twopc.mix" + std::to_string(Mille(mix)) + ".",
         twopc);
  }

  // ---- E5b: the snapshot arm — two seeds, each run twice ------------------
  uint64_t deterministic = 1;
  for (uint64_t seed : kSeeds) {
    for (double mix : kMixes) {
      Outcome a = RunDvp(mix, seed, /*snapshot=*/true);
      Outcome b = RunDvp(mix, seed, /*snapshot=*/true);
      if (!(a == b)) {
        deterministic = 0;
        std::cout << "DETERMINISM VIOLATION: seed " << seed << " mix "
                  << Mille(mix) << " diverged across two runs\n";
      }
      if (seed == kSeeds[0]) {
        table.AddRow(Pct(mix), "DvP snapshot", a.read_p50_us / 1000.0,
                     a.read_p99_us / 1000.0, a.read_rounds_p50,
                     a.read_abort_pct(), Pct(a.write_commit_rate()));
      }
      Emit(&metrics,
           "read.snap.s" + std::to_string(seed) + ".mix" +
               std::to_string(Mille(mix)) + ".",
           a);
      ok = ok && a.oracle_ok == 1;
      // The availability claim: snapshots never throttle the writers.
      if (a.write_commit_rate() < 0.90) {
        ok = false;
        std::cout << "WRITE COMMIT REGRESSION: seed " << seed << " mix "
                  << Mille(mix) << " rate " << a.write_commit_rate() << "\n";
      }
    }
  }

  // The headline ratio: a snapshot is a stamped round-trip, not a drain.
  double snap20 =
      RunDvp(0.20, kSeeds[0], /*snapshot=*/true).read_p50_us;  // = pinned run
  double full20 = full_p50[200];
  double speedup = snap20 > 0 ? full20 / snap20 : 0.0;
  metrics.Set("read.snapshot_speedup_at_mix200", speedup);
  metrics.Set("read.determinism", deterministic);
  metrics.WriteTo(json_path);
  table.Print();

  std::cout << "\nfull-drain p50 at 20% mix: " << full20 / 1000.0
            << " ms; snapshot p50: " << snap20 / 1000.0 << " ms ("
            << speedup << "x)\n";
  if (speedup < 5.0) {
    ok = false;
    std::cout << "SPEEDUP REGRESSION: snapshot p50 must be <= 1/5 of the "
                 "full-drain p50 at the 20% mix\n";
  }
  ok = ok && deterministic == 1;
  std::cout << "CHECK snapshot >=5x cheaper, writes >=90% committed, "
            << "oracles clean, deterministic: " << (ok ? "PASS" : "FAIL")
            << "\n";
  if (!ok) std::exit(1);
}

}  // namespace
}  // namespace dvp::bench

int main(int argc, char** argv) {
  dvp::bench::Main(dvp::bench::JsonPathFromArgs(argc, argv));
}
