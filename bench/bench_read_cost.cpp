// E5 — The price of full reads (paper §8: "there is a high overhead in
// reading the entire value of a particular data item").
//
// Claim: a DvP full read must drain Π⁻¹(d) to the reader (multi-round
// gather, messages proportional to rounds × sites) and fails under
// concurrent traffic or partitions; but in a *traditional replicated* system
// an item that is updated elsewhere cannot be read at all during failures —
// DvP trades steady-state read cost for failure-time availability.
//
// Sweep: read fraction in the mix; report read latency/rounds/abort rate and
// the background write commit rate, plus the same mix on 2PC for contrast.
#include "baseline/twopc.h"
#include "bench/bench_common.h"

namespace dvp::bench {
namespace {

constexpr SimTime kRun = 40'000'000;

struct ReadStats {
  Histogram latency;
  Histogram rounds;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  double abort_pct() const {
    uint64_t n = committed + aborted;
    return n == 0 ? 0.0 : 100.0 * double(aborted) / double(n);
  }
};

void Main() {
  PrintHeader("E5", "full-read drain cost vs read mix (4 sites, 4 items)");
  workload::TablePrinter table(
      {"read mix %", "system", "read p50 (ms)", "read p99 (ms)",
       "read rounds p50", "read abort %", "write commit %", "msgs/txn"});

  for (double read_mix : {0.01, 0.05, 0.10, 0.25, 0.50}) {
    // ---- DvP ----
    {
      std::vector<ItemId> items;
      core::Catalog catalog = MakeCountCatalog(4, 4000, &items);
      system::ClusterOptions opts;
      opts.num_sites = 4;
      opts.seed = 55;
      opts.site.txn.timeout_us = 500'000;
      system::Cluster cluster(&catalog, opts);
      cluster.BootstrapEven();
      workload::DvpAdapter adapter(&cluster);

      workload::WorkloadOptions w;
      w.arrivals_per_sec = 60;
      w.p_read = read_mix;
      w.p_decrement = (1.0 - read_mix) / 2;
      w.p_increment = (1.0 - read_mix) / 2;
      w.seed = 900 + uint64_t(read_mix * 100);
      workload::WorkloadDriver driver(&adapter, items, w);

      ReadStats reads;
      uint64_t write_committed = 0, write_decided = 0;
      driver.set_on_decision([&](SiteId, const txn::TxnSpec& spec,
                                 const txn::TxnResult& r) {
        bool is_read =
            spec.ops.front().kind == txn::TxnOp::Kind::kReadFull;
        if (is_read) {
          if (r.committed()) {
            ++reads.committed;
            reads.latency.Add(double(r.latency_us));
            reads.rounds.Add(double(r.rounds));
          } else {
            ++reads.aborted;
          }
        } else {
          ++write_decided;
          if (r.committed()) ++write_committed;
        }
      });
      auto results = driver.Run(kRun);
      CounterSet counters = cluster.AggregateCounters();
      double msgs_per_txn =
          results.submitted == 0
              ? 0
              : double(counters.Get("net.sent")) / double(results.submitted);
      table.AddRow(Pct(read_mix), "DvP", reads.latency.Median() / 1000.0,
                   reads.latency.P99() / 1000.0, reads.rounds.Median(),
                   reads.abort_pct(),
                   write_decided == 0 ? 0.0
                                      : Pct(double(write_committed) /
                                            double(write_decided)),
                   msgs_per_txn);
    }
    // ---- 2PC quorum (reads are quorum reads) ----
    {
      std::vector<ItemId> items;
      core::Catalog catalog = MakeCountCatalog(4, 4000, &items);
      baseline::TwoPcOptions opts;
      opts.num_sites = 4;
      opts.seed = 55;
      opts.policy = baseline::ReplicaPolicy::kQuorum;
      baseline::TwoPcCluster cluster(&catalog, opts);
      cluster.Bootstrap();
      workload::TwoPcAdapter adapter(&cluster, "2PC quorum");

      workload::WorkloadOptions w;
      w.arrivals_per_sec = 60;
      w.p_read = read_mix;
      w.p_decrement = (1.0 - read_mix) / 2;
      w.p_increment = (1.0 - read_mix) / 2;
      w.seed = 900 + uint64_t(read_mix * 100);
      workload::WorkloadDriver driver(&adapter, items, w);

      ReadStats reads;
      uint64_t write_committed = 0, write_decided = 0;
      driver.set_on_decision([&](SiteId, const txn::TxnSpec& spec,
                                 const txn::TxnResult& r) {
        if (spec.ops.front().kind == txn::TxnOp::Kind::kReadFull) {
          if (r.committed()) {
            ++reads.committed;
            reads.latency.Add(double(r.latency_us));
          } else {
            ++reads.aborted;
          }
        } else {
          ++write_decided;
          if (r.committed()) ++write_committed;
        }
      });
      auto results = driver.Run(kRun);
      (void)results;
      table.AddRow(Pct(read_mix), "2PC quorum",
                   reads.latency.Median() / 1000.0,
                   reads.latency.P99() / 1000.0, 0.0, reads.abort_pct(),
                   write_decided == 0 ? 0.0
                                      : Pct(double(write_committed) /
                                            double(write_decided)),
                   0.0);
    }
  }
  table.Print();
  std::cout << "\nDvP reads cost multiple gather rounds and drag the write "
               "commit rate down as the mix grows (reads concentrate all "
               "value at the reader). Quorum reads are cheap when the "
               "network is healthy — the trade the paper states.\n";
}

}  // namespace
}  // namespace dvp::bench

int main() { dvp::bench::Main(); }
