// E9 — Tuning the pessimistic timeout (paper §5 step 3: "a timeout always
// results in the abortion of the transaction"), plus a seed-sensitivity
// ablation.
//
// The timeout is the only knob that trades latency for commit rate: too
// short and healthy gathers abort; too long and doomed gathers (partitioned
// peers, exhausted value) waste their bound. Sweep timeout × mean link
// delay; then repeat one cell over five seeds to show determinism-level
// noise.
#include "bench/bench_common.h"

namespace dvp::bench {
namespace {

constexpr SimTime kRun = 30'000'000;

workload::WorkloadResults RunCell(SimTime timeout_us, SimTime delay_us,
                                  uint64_t seed) {
  std::vector<ItemId> items;
  core::Catalog catalog = MakeCountCatalog(2, 2000, &items);
  system::ClusterOptions opts;
  opts.num_sites = 4;
  opts.seed = seed;
  opts.site.txn.timeout_us = timeout_us;
  opts.link.base_delay_us = delay_us;
  opts.link.jitter_mean_us = double(delay_us) / 2;
  system::Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();
  workload::DvpAdapter adapter(&cluster);

  workload::WorkloadOptions w;
  w.arrivals_per_sec = 100;
  w.p_decrement = 0.5;
  w.p_increment = 0.5;
  w.p_read = 0;
  w.site_zipf_theta = 1.2;  // heavy redistribution
  w.increment_site_zipf_theta = 0.0;
  w.seed = seed * 13 + 7;
  workload::WorkloadDriver driver(&adapter, items, w);
  return driver.Run(kRun);
}

void Main() {
  PrintHeader("E9", "timeout tuning: commit rate vs decision bound");
  workload::TablePrinter table({"link delay (ms)", "timeout (ms)", "commit %",
                                "timeout abort %", "p99 commit (ms)",
                                "max decision (ms)"});
  for (SimTime delay : {1'000, 5'000, 20'000}) {
    for (SimTime timeout : {25'000, 100'000, 400'000, 1'600'000}) {
      auto r = RunCell(timeout, delay, 42);
      double timeout_pct = 0;
      if (auto it = r.outcomes.find(txn::TxnOutcome::kAbortTimeout);
          it != r.outcomes.end()) {
        timeout_pct = 100.0 * double(it->second) /
                      double(std::max<uint64_t>(1, r.submitted));
      }
      table.AddRow(double(delay) / 1000.0, double(timeout) / 1000.0,
                   Pct(r.commit_rate()), timeout_pct,
                   r.commit_latency_us.P99() / 1000.0,
                   r.decision_latency_us.max() / 1000.0);
    }
  }
  table.Print();

  std::cout << "\nSeed sensitivity (delay 5 ms, timeout 100 ms):\n";
  workload::TablePrinter seeds({"seed", "commit %", "p99 commit (ms)"});
  Histogram commit_rates;
  for (uint64_t seed : {1, 2, 3, 4, 5}) {
    auto r = RunCell(100'000, 5'000, seed);
    commit_rates.Add(Pct(r.commit_rate()));
    seeds.AddRow(seed, Pct(r.commit_rate()),
                 r.commit_latency_us.P99() / 1000.0);
  }
  seeds.Print();
  std::cout << "commit% across seeds: mean=" << commit_rates.mean()
            << " stddev=" << commit_rates.StdDev()
            << " (tight: results are workload-determined, not "
               "schedule-lucky)\n";
}

}  // namespace
}  // namespace dvp::bench

int main() { dvp::bench::Main(); }
