// E7 — Conc1 (timestamping) vs Conc2 (strict 2PL + ordered broadcast), §6.
//
// Claims:
//  (a) Both schemes produce serializable histories — verified here by serial
//      replay of every committed transaction (timestamp order for Conc1,
//      commit order for Conc2) against whole item values, including read
//      results.
//  (b) Conc1 is the more conservative: its timestamp gate refuses locks and
//      requests that Conc2 (running in its friendlier, synchronous
//      environment) would grant, so Conc1 shows extra "cc" aborts.
//
// Sweep: contention level (number of items for a fixed arrival rate — fewer
// items = hotter).
#include "bench/bench_common.h"
#include "verify/serializability.h"

namespace dvp::bench {
namespace {

constexpr SimTime kRun = 40'000'000;

struct Row {
  workload::WorkloadResults results;
  CounterSet counters;
  std::string serializable;
  std::map<ItemId, core::Value> final_totals;
};

Row RunScheme(cc::CcScheme scheme, uint32_t n_items, uint64_t seed) {
  std::vector<ItemId> items;
  core::Catalog catalog = MakeCountCatalog(n_items, 8000, &items);
  system::ClusterOptions opts;
  opts.num_sites = 4;
  opts.seed = seed;
  opts.site.txn.local_compute_us = 2'000;  // hold locks: makes contention real
  if (scheme == cc::CcScheme::kConc2) {
    opts.UseConc2();
  }
  system::Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();
  workload::DvpAdapter adapter(&cluster);

  workload::WorkloadOptions w;
  w.arrivals_per_sec = 100;
  w.p_decrement = 0.45;
  w.p_increment = 0.45;
  w.p_read = 0.10;
  w.site_zipf_theta = 0.6;
  w.seed = seed * 7 + 1;
  workload::WorkloadDriver driver(&adapter, items, w);

  verify::HistoryChecker checker(&catalog);
  driver.set_on_commit([&checker, &adapter](TxnId id, const txn::TxnSpec& spec,
                                            const txn::TxnResult& r) {
    checker.RecordCommitAt(adapter.Now(), id, spec, r);
  });

  Row row;
  row.results = driver.Run(kRun, 3'000'000);
  row.counters = cluster.AggregateCounters();
  for (ItemId item : items) row.final_totals[item] = cluster.TotalOf(item);

  auto order = scheme == cc::CcScheme::kConc1
                   ? verify::HistoryChecker::Order::kTimestamp
                   : verify::HistoryChecker::Order::kCommitOrder;
  Status check = checker.Check(order, &row.final_totals);
  row.serializable = check.ok() ? "YES" : check.ToString();
  return row;
}

void Main() {
  PrintHeader("E7",
              "Conc1 vs Conc2: abort profile and verified serializability "
              "vs contention");
  workload::TablePrinter table({"items", "scheme", "commit %", "abort lock %",
                                "abort cc %", "abort timeout %",
                                "serializable"});
  for (uint32_t n_items : {16, 4, 2, 1}) {
    for (cc::CcScheme scheme : {cc::CcScheme::kConc1, cc::CcScheme::kConc2}) {
      Row row = RunScheme(scheme, n_items, 4000 + n_items);
      const auto& r = row.results;
      double n = double(std::max<uint64_t>(1, r.submitted));
      auto pct = [&](txn::TxnOutcome o) {
        auto it = r.outcomes.find(o);
        return it == r.outcomes.end() ? 0.0 : 100.0 * double(it->second) / n;
      };
      table.AddRow(n_items,
                   scheme == cc::CcScheme::kConc1 ? "Conc1" : "Conc2",
                   Pct(r.commit_rate()),
                   pct(txn::TxnOutcome::kAbortLockConflict),
                   pct(txn::TxnOutcome::kAbortCcReject),
                   pct(txn::TxnOutcome::kAbortTimeout), row.serializable);
    }
  }
  table.Print();
  std::cout << "\nEvery run replays serially to the exact final totals and "
               "read values. Conc1's extra 'cc' aborts are the price of "
               "needing no environment assumptions; Conc2 avoids them but "
               "only exists under synchronous, loss-free, ordered-broadcast "
               "links.\n";

  // ---- Ablation: the acceptance-stamp design choice ------------------------
  // Merging a Vm must stamp the fragment so that no transaction older than
  // the value's causal past can consume it. Two sound choices: the Vm's
  // creation timestamp (our default — the tight causal bound) or a fresh
  // local timestamp (strictly more conservative). Measured on a gather-heavy
  // skewed workload with full reads in the mix.
  std::cout << "\nConc1 acceptance-stamp ablation (skewed gather-heavy mix):\n";
  workload::TablePrinter ab({"stamp policy", "commit %", "req refused (cc)",
                             "read commit %"});
  for (cc::AcceptStampMode mode :
       {cc::AcceptStampMode::kCreationTs, cc::AcceptStampMode::kFreshLocal}) {
    std::vector<ItemId> items;
    core::Catalog catalog = MakeCountCatalog(2, 4000, &items);
    system::ClusterOptions opts;
    opts.num_sites = 4;
    opts.seed = 4242;
    opts.site.txn.accept_stamp = mode;
    system::Cluster cluster(&catalog, opts);
    cluster.BootstrapEven();
    workload::DvpAdapter adapter(&cluster);

    workload::WorkloadOptions w;
    w.arrivals_per_sec = 120;
    w.p_decrement = 0.48;
    w.p_increment = 0.48;
    w.p_read = 0.04;
    w.site_zipf_theta = 1.2;
    w.increment_site_zipf_theta = 0.0;
    w.seed = 8011;
    workload::WorkloadDriver driver(&adapter, items, w);
    uint64_t read_committed = 0, read_total = 0;
    driver.set_on_decision([&](SiteId, const txn::TxnSpec& spec,
                               const txn::TxnResult& r) {
      if (spec.ops.front().kind == txn::TxnOp::Kind::kReadFull) {
        ++read_total;
        if (r.committed()) ++read_committed;
      }
    });
    auto results = driver.Run(kRun);
    CounterSet counters = cluster.AggregateCounters();
    ab.AddRow(mode == cc::AcceptStampMode::kCreationTs ? "creation ts"
                                                       : "fresh local",
              Pct(results.commit_rate()), counters.Get("req.ignored.cc"),
              read_total == 0
                  ? 0.0
                  : Pct(double(read_committed) / double(read_total)));
  }
  ab.Print();
  std::cout << "Both stamps give the same serializability guarantee; the "
               "tight causal bound (creation ts) admits slightly more reads "
               "on this mix. The effect is modest because request timestamps "
               "usually dominate either stamp — it matters most for "
               "cold-clock readers (see the banking example's audit "
               "retry).\n";
}

}  // namespace
}  // namespace dvp::bench

int main() { dvp::bench::Main(); }
