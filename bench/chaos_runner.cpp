// Chaos swarm runner. Executes a block of seeded chaos cases, evaluates the
// mid-flight oracles, shrinks every failure to a minimal ChaosCase literal,
// and prints one JSON summary to stdout.
//
// The JSON is a pure function of the flags: it contains virtual-time and
// digest data only, never wall-clock measurements, so two invocations with
// the same flags are byte-identical — that is the determinism check CI runs.
// Wall-clock progress goes to stderr. With --budget-ms the run stops early
// once the wall budget is spent (the JSON then reflects however many runs
// completed, so budgeted invocations are NOT comparable byte-for-byte).
//
//   chaos_runner --seed-start=1 --runs=200
//   chaos_runner --runs=50 --budget-ms=60000        # CI swarm
//   chaos_runner --runs=1 --plant-at-us=400000      # planted-violation demo
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "chaos/harness.h"
#include "chaos/shrink.h"

namespace {

bool FlagU64(std::string_view arg, std::string_view name, uint64_t* out) {
  std::string prefix = "--" + std::string(name) + "=";
  if (arg.substr(0, prefix.size()) != prefix) return false;
  *out = std::strtoull(std::string(arg.substr(prefix.size())).c_str(),
                       nullptr, 10);
  return true;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out += '\\';
    out += ch;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed_start = 1;
  uint64_t runs = 50;
  uint64_t budget_ms = 0;  // 0 = no wall budget
  uint64_t plant_at_us = 0;

  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (FlagU64(arg, "seed-start", &seed_start) ||
        FlagU64(arg, "runs", &runs) || FlagU64(arg, "budget-ms", &budget_ms) ||
        FlagU64(arg, "plant-at-us", &plant_at_us)) {
      continue;
    }
    std::cerr << "unknown flag: " << arg << "\n"
              << "usage: chaos_runner [--seed-start=N] [--runs=N]"
                 " [--budget-ms=N] [--plant-at-us=N]\n";
    return 2;
  }

  auto wall_start = std::chrono::steady_clock::now();
  auto wall_ms = [&]() {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - wall_start)
        .count();
  };

  dvp::chaos::RunOptions run_opts;
  run_opts.planted_violation_at_us = static_cast<dvp::SimTime>(plant_at_us);
  run_opts.record_trace = false;

  struct Failure {
    uint64_t seed;
    std::string violation;
    dvp::SimTime violation_time;
    size_t shrunk_events;
    uint32_t shrink_runs;
    std::string literal;
  };
  std::vector<Failure> failures;
  uint64_t completed = 0;
  uint64_t swarm_digest = 0xcbf29ce484222325ull;

  for (uint64_t i = 0; i < runs; ++i) {
    if (budget_ms > 0 && static_cast<uint64_t>(wall_ms()) >= budget_ms) {
      std::cerr << "budget exhausted after " << completed << " runs\n";
      break;
    }
    uint64_t seed = seed_start + i;
    dvp::chaos::ChaosCase c = dvp::chaos::MakeSwarmCase(seed);
    dvp::chaos::RunResult r = dvp::chaos::RunCase(c, run_opts);
    ++completed;
    for (int b = 0; b < 8; ++b) {
      swarm_digest ^= (r.digest >> (b * 8)) & 0xff;
      swarm_digest *= 0x100000001b3ull;
    }
    if (!r.ok) {
      std::cerr << "seed " << seed << " FAILED: " << r.violation
                << " — shrinking\n";
      dvp::chaos::ShrinkOptions sopts;
      sopts.run = run_opts;
      dvp::chaos::ShrinkResult sr = dvp::chaos::Shrink(c, sopts);
      failures.push_back({seed, r.violation, r.violation_time,
                          sr.minimal.plan.events.size(), sr.runs,
                          sr.minimal.ToLiteral()});
    }
    if ((i + 1) % 25 == 0 || i + 1 == runs) {
      std::cerr << "[" << (i + 1) << "/" << runs << "] " << wall_ms()
                << "ms, " << failures.size() << " failure(s)\n";
    }
  }

  std::cout << "{\n";
  std::cout << "  \"seed_start\": " << seed_start << ",\n";
  std::cout << "  \"runs_requested\": " << runs << ",\n";
  std::cout << "  \"runs_completed\": " << completed << ",\n";
  std::cout << "  \"swarm_digest\": \"" << std::hex << swarm_digest << std::dec
            << "\",\n";
  std::cout << "  \"failures\": [";
  for (size_t i = 0; i < failures.size(); ++i) {
    const Failure& f = failures[i];
    std::cout << (i ? "," : "") << "\n    {\"seed\": " << f.seed
              << ", \"violation\": \"" << JsonEscape(f.violation)
              << "\", \"violation_time_us\": " << f.violation_time
              << ", \"shrunk_plan_events\": " << f.shrunk_events
              << ", \"shrink_runs\": " << f.shrink_runs
              << ", \"repro\": \"" << JsonEscape(f.literal) << "\"}";
  }
  std::cout << (failures.empty() ? "" : "\n  ") << "],\n";
  std::cout << "  \"ok\": " << (failures.empty() ? "true" : "false") << "\n";
  std::cout << "}\n";

  std::cerr << "total wall time " << wall_ms() << "ms\n";
  return failures.empty() ? 0 : 1;
}
