// Chaos swarm runner. Executes a block of seeded chaos cases, evaluates the
// mid-flight oracles, shrinks every failure to a minimal ChaosCase literal,
// and prints one JSON summary to stdout.
//
// The JSON is a pure function of the flags: it contains virtual-time and
// digest data only, never wall-clock measurements, so two invocations with
// the same flags are byte-identical — that is the determinism check CI runs.
// Wall-clock progress goes to stderr. With --budget-ms the run stops early
// once the wall budget is spent (the JSON then reflects however many runs
// completed, so budgeted invocations are NOT comparable byte-for-byte).
//
// With --trace-out=PATH, the first failure's *shrunken* case is replayed
// once more with a causal TraceRecorder attached and its Perfetto timeline
// is written next to the repro literal; each failure's JSON entry also
// carries the trace-backed explanation (which Vm double-counted, at what
// virtual time). Tracing never perturbs the run: the replay's digest equals
// the untraced one.
//
//   chaos_runner --seed-start=1 --runs=200
//   chaos_runner --runs=50 --budget-ms=60000        # CI swarm
//   chaos_runner --runs=1 --plant-at-us=400000 --trace-out=timeline.json
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "chaos/harness.h"
#include "chaos/shrink.h"
#include "obs/json.h"
#include "obs/trace.h"

namespace {

bool FlagU64(std::string_view arg, std::string_view name, uint64_t* out) {
  std::string prefix = "--" + std::string(name) + "=";
  if (arg.substr(0, prefix.size()) != prefix) return false;
  *out = std::strtoull(std::string(arg.substr(prefix.size())).c_str(),
                       nullptr, 10);
  return true;
}

bool FlagStr(std::string_view arg, std::string_view name, std::string* out) {
  std::string prefix = "--" + std::string(name) + "=";
  if (arg.substr(0, prefix.size()) != prefix) return false;
  *out = std::string(arg.substr(prefix.size()));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed_start = 1;
  uint64_t runs = 50;
  uint64_t budget_ms = 0;  // 0 = no wall budget
  uint64_t plant_at_us = 0;
  std::string trace_out;

  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (FlagU64(arg, "seed-start", &seed_start) ||
        FlagU64(arg, "runs", &runs) || FlagU64(arg, "budget-ms", &budget_ms) ||
        FlagU64(arg, "plant-at-us", &plant_at_us) ||
        FlagStr(arg, "trace-out", &trace_out)) {
      continue;
    }
    std::cerr << "unknown flag: " << arg << "\n"
              << "usage: chaos_runner [--seed-start=N] [--runs=N]"
                 " [--budget-ms=N] [--plant-at-us=N] [--trace-out=PATH]\n";
    return 2;
  }

  auto wall_start = std::chrono::steady_clock::now();
  auto wall_ms = [&]() {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - wall_start)
        .count();
  };

  dvp::chaos::RunOptions run_opts;
  run_opts.planted_violation_at_us = static_cast<dvp::SimTime>(plant_at_us);
  run_opts.record_trace = false;

  struct Failure {
    uint64_t seed;
    std::string violation;
    std::string explanation;
    dvp::SimTime violation_time;
    size_t shrunk_events;
    uint32_t shrink_runs;
    std::string literal;
    dvp::chaos::ChaosCase shrunk;
  };
  std::vector<Failure> failures;
  uint64_t completed = 0;
  uint64_t swarm_digest = 0xcbf29ce484222325ull;

  for (uint64_t i = 0; i < runs; ++i) {
    if (budget_ms > 0 && static_cast<uint64_t>(wall_ms()) >= budget_ms) {
      std::cerr << "budget exhausted after " << completed << " runs\n";
      break;
    }
    uint64_t seed = seed_start + i;
    dvp::chaos::ChaosCase c = dvp::chaos::MakeSwarmCase(seed);
    dvp::chaos::RunResult r = dvp::chaos::RunCase(c, run_opts);
    ++completed;
    for (int b = 0; b < 8; ++b) {
      swarm_digest ^= (r.digest >> (b * 8)) & 0xff;
      swarm_digest *= 0x100000001b3ull;
    }
    if (!r.ok) {
      std::cerr << "seed " << seed << " FAILED: " << r.violation
                << " — shrinking\n";
      dvp::chaos::ShrinkOptions sopts;
      sopts.run = run_opts;
      dvp::chaos::ShrinkResult sr = dvp::chaos::Shrink(c, sopts);
      failures.push_back({seed, r.violation, r.explanation, r.violation_time,
                          sr.minimal.plan.events.size(), sr.runs,
                          sr.minimal.ToLiteral(), sr.minimal});
    }
    if ((i + 1) % 25 == 0 || i + 1 == runs) {
      std::cerr << "[" << (i + 1) << "/" << runs << "] " << wall_ms()
                << "ms, " << failures.size() << " failure(s)\n";
    }
  }

  if (!failures.empty() && !trace_out.empty()) {
    // Replay the first failure's minimal case with the trace recorder on and
    // dump the event timeline next to the repro literal. Recording is
    // passive, so this replay reproduces the failure exactly.
    dvp::obs::TraceRecorder recorder;
    dvp::chaos::RunOptions topts = run_opts;
    topts.trace = &recorder;
    dvp::chaos::RunResult tr = dvp::chaos::RunCase(failures[0].shrunk, topts);
    recorder.WriteTo(trace_out);
    if (!tr.explanation.empty()) failures[0].explanation = tr.explanation;
    std::cerr << "failure timeline (" << recorder.events().size()
              << " events) written to " << trace_out << "\n";
  }

  dvp::obs::JsonWriter out;
  out.Set("seed_start", seed_start);
  out.Set("runs_requested", runs);
  out.Set("runs_completed", completed);
  std::ostringstream hex;
  hex << std::hex << swarm_digest;
  out.Set("swarm_digest", hex.str());
  out.Set("ok", failures.empty());
  std::string arr = "[";
  for (size_t i = 0; i < failures.size(); ++i) {
    const Failure& f = failures[i];
    arr += (i ? "," : "");
    arr += "\n    {\"seed\": " + std::to_string(f.seed) + ", \"violation\": \"" +
           dvp::obs::JsonWriter::Escape(f.violation) +
           "\", \"explanation\": \"" +
           dvp::obs::JsonWriter::Escape(f.explanation) +
           "\", \"violation_time_us\": " + std::to_string(f.violation_time) +
           ", \"shrunk_plan_events\": " + std::to_string(f.shrunk_events) +
           ", \"shrink_runs\": " + std::to_string(f.shrink_runs) +
           ", \"repro\": \"" + dvp::obs::JsonWriter::Escape(f.literal) + "\"}";
  }
  arr += std::string(failures.empty() ? "" : "\n  ") + "]";
  out.SetRaw("failures", arr);
  std::cout << out.ToString();

  std::cerr << "total wall time " << wall_ms() << "ms\n";
  return failures.empty() ? 0 : 1;
}
