// E10b — Group commit + frame coalescing amortise the per-transaction force
// and the per-Vm real message (paper §4.2: one real message may carry many
// virtual messages; here the same amortisation is applied to the log force).
//
// Workload: a locally-satisfiable increment/decrement stream at every site
// (the paper's failure-free common case: 2 forces, 0 messages per commit)
// plus a periodic burst of ring redistributions, so each site continuously
// owes its neighbour a clump of Vm transfers and acceptance acks.
//
// Sweep (K records, T µs) group-commit bounds with coalescing on, against the
// force-per-append / message-per-packet baseline. Fixed seed; submissions are
// open-loop, inventory is generous, so the COMMIT OUTCOMES are identical in
// every configuration — only the cost columns move:
//   forces/txn    — stable-storage forces per committed transaction
//   msgs/txn      — network packets per committed transaction
//   p50/p99 (ms)  — commit latency (shows the deferral the timer buys back)
#include "bench/bench_common.h"

#include <cstdlib>

namespace dvp::bench {
namespace {

constexpr SimTime kRun = 10'000'000;    // 10 s of load
constexpr SimTime kDrain = 10'000'000;  // let Vm channels close
constexpr uint32_t kSites = 4;
constexpr SimTime kBurstGap = 5'000;    // ring burst every 5 ms per site
constexpr int kBurstSends = 4;          // transfers per burst (same peer)

struct Config {
  std::string label;
  bool group = false;
  uint32_t max_records = 8;
  SimTime max_delay_us = 1'000;
  bool coalesce = false;
};

struct Outcome {
  uint64_t submitted = 0;
  uint64_t committed = 0;
  uint64_t forces = 0;
  uint64_t packets = 0;
  uint64_t log_bytes = 0;
  uint64_t max_group_records = 0;
  double p50_us = 0;
  double p99_us = 0;
  double forces_per_txn = 0;
  double msgs_per_txn = 0;
};

Outcome RunOnce(const Config& cfg) {
  std::vector<ItemId> items;
  // Generous inventory: every decrement is locally satisfiable, so no
  // transaction ever needs a remote gather and outcomes cannot depend on
  // force/coalesce timing.
  core::Catalog catalog = MakeCountCatalog(4, 400'000, &items);
  system::ClusterOptions opts;
  opts.num_sites = kSites;
  opts.seed = 9'090;
  opts.site.group_commit.enabled = cfg.group;
  opts.site.group_commit.max_records = cfg.max_records;
  opts.site.group_commit.max_delay_us = cfg.max_delay_us;
  opts.site.transport.coalesce = cfg.coalesce;
  system::Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();

  // Ring redistribution bursts: every kBurstGap, each site ships kBurstSends
  // one-unit Vm to its neighbour — the clumped traffic coalescing targets.
  std::function<void(SimTime)> arm_burst = [&](SimTime at) {
    if (at >= kRun) return;
    cluster.kernel().ScheduleAt(at, [&, at]() {
      for (uint32_t s = 0; s < kSites; ++s) {
        for (int i = 0; i < kBurstSends; ++i) {
          (void)cluster.site(SiteId(s)).SendValue(SiteId((s + 1) % kSites),
                                                  items[0], 1);
        }
      }
      arm_burst(at + kBurstGap);
    });
  };
  arm_burst(kBurstGap);

  workload::DvpAdapter adapter(&cluster);
  workload::WorkloadOptions w;
  w.arrivals_per_sec = 400;
  w.p_decrement = 0.5;
  w.p_increment = 0.5;
  w.p_read = 0;
  w.seed = 515;
  workload::WorkloadDriver driver(&adapter, items, w);
  auto r = driver.Run(kRun, kDrain);

  Outcome out;
  out.submitted = r.submitted;
  out.committed = r.committed();
  for (uint32_t s = 0; s < kSites; ++s) {
    const wal::StableStorage& st = cluster.storage(SiteId(s));
    out.forces += st.forces();
    out.log_bytes += st.log_bytes();
    out.max_group_records =
        std::max(out.max_group_records, st.max_group_records());
  }
  out.packets = cluster.network().stats().packets_sent;
  double commits = double(std::max<uint64_t>(1, out.committed));
  out.forces_per_txn = double(out.forces) / commits;
  out.msgs_per_txn = double(out.packets) / commits;
  out.p50_us = r.commit_latency_us.Median();
  out.p99_us = r.commit_latency_us.P99();

  Status audit = cluster.AuditAll();
  if (!audit.ok()) {
    std::cout << "CONSERVATION VIOLATION (" << cfg.label
              << "): " << audit.ToString() << "\n";
    std::exit(1);
  }
  return out;
}

void Main(const std::string& json_path) {
  PrintHeader("E10b",
              "group commit + Vm coalescing: forces and messages per txn");
  JsonMetrics metrics;

  std::vector<Config> configs = {
      {"baseline", false, 0, 0, false},
      {"coalesce-only", false, 0, 0, true},
      {"K8-T1000", true, 8, 1'000, true},
      {"K8-T2000", true, 8, 2'000, true},
      {"K32-T2000", true, 32, 2'000, true},
      {"K32-T5000", true, 32, 5'000, true},
  };

  workload::TablePrinter table({"config", "committed", "forces/txn",
                                "msgs/txn", "max group", "p50 (ms)",
                                "p99 (ms)"});
  std::vector<Outcome> outcomes;
  for (const Config& cfg : configs) {
    Outcome o = RunOnce(cfg);
    outcomes.push_back(o);
    table.AddRow(cfg.label, o.committed, o.forces_per_txn, o.msgs_per_txn,
                 o.max_group_records, o.p50_us / 1000.0, o.p99_us / 1000.0);
    std::string k = "e10b." + cfg.label + ".";
    metrics.Set(k + "submitted", o.submitted);
    metrics.Set(k + "committed", o.committed);
    metrics.Set(k + "forces", o.forces);
    metrics.Set(k + "packets", o.packets);
    metrics.Set(k + "log_bytes", o.log_bytes);
    metrics.Set(k + "forces_per_txn", o.forces_per_txn);
    metrics.Set(k + "msgs_per_txn", o.msgs_per_txn);
    metrics.Set(k + "p50_latency_us", o.p50_us);
    metrics.Set(k + "p99_latency_us", o.p99_us);
  }
  table.Print();

  const Outcome& base = outcomes[0];
  const Outcome& best = outcomes.back();
  bool outcomes_equal = true;
  for (const Outcome& o : outcomes) {
    outcomes_equal = outcomes_equal && o.submitted == base.submitted &&
                     o.committed == base.committed;
  }
  double force_ratio =
      best.forces_per_txn > 0 ? base.forces_per_txn / best.forces_per_txn : 0;
  double msg_ratio =
      best.msgs_per_txn > 0 ? base.msgs_per_txn / best.msgs_per_txn : 0;
  metrics.Set("e10b.force_reduction_x", force_ratio);
  metrics.Set("e10b.msg_reduction_x", msg_ratio);
  metrics.Set("e10b.outcomes_unchanged", uint64_t(outcomes_equal ? 1 : 0));
  metrics.WriteTo(json_path);

  std::cout << "\nforce reduction (baseline vs " << configs.back().label
            << "): " << force_ratio << "x; message reduction: " << msg_ratio
            << "x; commit outcomes "
            << (outcomes_equal ? "identical" : "DIVERGED")
            << " across configs.\n";
  std::cout << "CHECK force_reduction>=3: "
            << (force_ratio >= 3.0 ? "PASS" : "FAIL")
            << "  CHECK msg_reduction>=1.5: "
            << (msg_ratio >= 1.5 ? "PASS" : "FAIL")
            << "  CHECK outcomes_unchanged: "
            << (outcomes_equal ? "PASS" : "FAIL") << "\n";
  if (force_ratio < 3.0 || msg_ratio < 1.5 || !outcomes_equal) std::exit(1);
}

}  // namespace
}  // namespace dvp::bench

int main(int argc, char** argv) {
  dvp::bench::Main(dvp::bench::JsonPathFromArgs(argc, argv));
}
