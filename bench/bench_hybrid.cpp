// E11 (extension ablation) — dynamic hybrid placement (paper §8: "design
// systems that can respond to different situations by dynamically
// interchanging between a DvP scheme and some traditional scheme").
//
// Phased workload on one item: update-heavy → read-heavy (one analyst site)
// → update-heavy. Strategies compared:
//   static-DvP      — always partitioned (reads pay the full drain);
//   static-consol.  — value pinned at the analyst site (remote updates pay
//                     per-op redistribution);
//   hybrid          — the controller consolidates for the read phase and
//                     re-splits for the update phases.
#include "bench/bench_common.h"
#include "system/hybrid.h"
#include "system/retry_client.h"

namespace dvp::bench {
namespace {

constexpr SimTime kPhase = 20'000'000;  // 3 phases of 20s

enum class Strategy { kStaticDvp, kStaticConsolidated, kHybrid };

struct Row {
  uint64_t update_commits = 0;
  uint64_t update_aborts = 0;
  uint64_t read_commits = 0;
  uint64_t read_aborts = 0;
  Histogram read_latency;
};

Row RunStrategy(Strategy strategy) {
  core::Catalog catalog;
  ItemId item =
      catalog.AddItem("pool", core::CountDomain::Instance(), 100'000);
  system::ClusterOptions opts;
  opts.num_sites = 4;
  opts.seed = 42;
  opts.site.txn.timeout_us = 400'000;
  opts.site.txn.local_compute_us = 2'000;  // single-site serialisation costs
  system::Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();

  std::unique_ptr<system::HybridController> controller;
  if (strategy == Strategy::kHybrid) {
    system::HybridOptions hopts;
    hopts.tick_us = 400'000;
    // The analyst reads 2.5/s against ~12/s updates in the read phase:
    // a ~17% read fraction is the consolidation signal here.
    hopts.consolidate_read_fraction = 0.10;
    hopts.min_accesses = 4;
    controller = std::make_unique<system::HybridController>(&cluster, hopts,
                                                            7);
    controller->Start();
  }
  system::RetryingClient client(&cluster, system::RetryPolicy{}, 11);

  if (strategy == Strategy::kStaticConsolidated) {
    // Pin everything at site 0 (the analyst site) up front.
    txn::TxnSpec drain;
    drain.ops = {txn::TxnOp::ReadFull(item)};
    client.Submit(SiteId(0), drain, nullptr);
    cluster.RunFor(2'000'000);
  }

  Row row;
  Rng rng(99);

  // Arrival pump: updates arrive everywhere at 120/s in the update-heavy
  // phases and ebb to 12/s during the analyst's read window (the *mix*
  // changes between phases; that is what the controller adapts to). While
  // consolidated, updates are routed to the home — the traditional
  // single-copy discipline.
  std::function<void()> pump = [&]() {
    SimTime now = cluster.Now();
    if (now >= 3 * kPhase) return;
    bool read_phase = now >= kPhase && now < 2 * kPhase;
    double rate = read_phase ? 12.0 : 120.0;

    txn::TxnSpec spec;
    core::Value amount = rng.NextInt(1, 5);
    spec.ops = {rng.NextBool(0.5) ? txn::TxnOp::Decrement(item, amount)
                                  : txn::TxnOp::Increment(item, amount)};
    // The client lives at `origin`; single-copy routing forwards its op to
    // the home site, which is only possible while they are connected.
    SiteId origin(static_cast<uint32_t>(rng.NextBounded(4)));
    SiteId at = origin;
    if (strategy == Strategy::kStaticConsolidated) {
      at = SiteId(0);
    } else if (controller) {
      at = controller->PreferredUpdateSite(item, origin);
      controller->RecordAccess(item, false, at);
    }
    if (!cluster.network().partition().Connected(origin, at)) {
      ++row.update_aborts;  // home unreachable from the client's group
    } else {
      client.Submit(at, spec, [&row](const system::RetryOutcome& o) {
        o.result.committed() ? ++row.update_commits : ++row.update_aborts;
      });
    }
    cluster.kernel().Schedule(SimTime(rng.NextExponential(1e6 / rate)) + 1,
                              pump);
  };
  std::function<void()> reader = [&]() {
    SimTime now = cluster.Now();
    if (now >= 3 * kPhase) return;
    if (now >= kPhase && now < 2 * kPhase) {
      txn::TxnSpec read;
      read.ops = {txn::TxnOp::ReadFull(item)};
      SiteId at = controller
                      ? controller->PreferredReadSite(item, SiteId(0))
                      : SiteId(0);
      if (controller) controller->RecordAccess(item, true, at);
      SimTime start = cluster.Now();
      client.Submit(at, read,
                    [&row, &cluster, start](const system::RetryOutcome& o) {
                      if (o.result.committed()) {
                        ++row.read_commits;
                        row.read_latency.Add(
                            double(cluster.Now() - start));
                      } else {
                        ++row.read_aborts;
                      }
                    });
    }
    cluster.kernel().Schedule(400'000, reader);
  };
  pump();
  cluster.kernel().Schedule(kPhase, reader);
  // A partition strikes during the final update phase: the {2,3} group can
  // only keep working if the value has been re-split back to it.
  cluster.kernel().ScheduleAt(2 * kPhase + 5'000'000, [&cluster]() {
    (void)cluster.Partition({{SiteId(0), SiteId(1)}, {SiteId(2), SiteId(3)}});
  });
  cluster.kernel().ScheduleAt(2 * kPhase + 12'000'000,
                              [&cluster]() { cluster.Heal(); });
  cluster.RunFor(3 * kPhase + 3'000'000);
  return row;
}

void Main() {
  PrintHeader("E11",
              "hybrid DvP/consolidated switching across phases "
              "(update-heavy | read-heavy | update-heavy)");
  workload::TablePrinter table({"strategy", "update commit %",
                                "reads done", "read abort %",
                                "read p50 (ms)", "read p99 (ms)"});
  for (Strategy s : {Strategy::kStaticDvp, Strategy::kStaticConsolidated,
                     Strategy::kHybrid}) {
    Row row = RunStrategy(s);
    double upd_total = double(row.update_commits + row.update_aborts);
    double read_total = double(row.read_commits + row.read_aborts);
    table.AddRow(s == Strategy::kStaticDvp
                     ? "static DvP"
                     : s == Strategy::kStaticConsolidated
                           ? "static consolidated"
                           : "hybrid",
                 upd_total == 0 ? 0.0
                                : Pct(double(row.update_commits) / upd_total),
                 row.read_commits,
                 read_total == 0
                     ? 0.0
                     : Pct(double(row.read_aborts) / read_total),
                 row.read_latency.Median() / 1000.0,
                 row.read_latency.P99() / 1000.0);
  }
  table.Print();
  std::cout << "\nStatic DvP pays dearly for every read (drain + retries) "
               "and, once a read has concentrated the value, suffers during "
               "the phase-3 partition. Static consolidation makes reads "
               "cheap but its remote groups go dark whenever the home is "
               "unreachable. The hybrid consolidates for the read window "
               "and re-splits before the partition, tracking the better "
               "column in each regime — §8's suggested design, realised "
               "with plain DvP transactions.\n";
}

}  // namespace
}  // namespace dvp::bench

int main() { dvp::bench::Main(); }
