// Shared helpers for the experiment harnesses (E1–E10). Each bench binary
// prints fixed-format tables whose rows are recorded in EXPERIMENTS.md.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "dvpcore/catalog.h"
#include "obs/json.h"
#include "system/cluster.h"
#include "workload/adapter.h"
#include "workload/generator.h"
#include "workload/table.h"

namespace dvp::bench {

/// Schedules repeating random 2-way partitions against any adapter:
/// every `period_us` the network splits into two random nonempty groups for
/// `duration_us`, then heals.
class PartitionInjector {
 public:
  PartitionInjector(workload::SystemAdapter* adapter, SimTime period_us,
                    SimTime duration_us, uint64_t seed)
      : adapter_(adapter),
        period_us_(period_us),
        duration_us_(duration_us),
        rng_(seed) {}

  /// Arms the injector until `until_us` (absolute virtual time).
  void Start(SimTime until_us) {
    until_ = until_us;
    Arm();
  }

  uint64_t splits() const { return splits_; }
  uint64_t heals() const { return heals_; }
  /// True when every split it caused was also healed — i.e. the injector
  /// left the network whole at the end of its window. Availability benches
  /// assert this so the post-window drain never runs against a partition the
  /// injector forgot.
  bool healed_at_end() const { return heals_ == splits_; }

 private:
  void Arm() {
    SimTime when = adapter_->Now() + period_us_;
    if (when >= until_) return;
    adapter_->kernel().ScheduleAt(when, [this]() {
      uint32_t n = adapter_->num_sites();
      if (n >= 2) {
        // Random nonempty bipartition.
        std::vector<SiteId> a, b;
        do {
          a.clear();
          b.clear();
          for (uint32_t s = 0; s < n; ++s) {
            (rng_.NextBool(0.5) ? a : b).push_back(SiteId(s));
          }
        } while (a.empty() || b.empty());
        (void)adapter_->Partition({a, b});
        ++splits_;
        // Clamp the heal inside the armed window: a split near `until_`
        // must not leave the network partitioned after the injector is
        // nominally done (the heal used to land past `until_`, poisoning
        // whatever the bench measured next).
        SimTime heal_at =
            std::min(adapter_->Now() + duration_us_, until_);
        adapter_->kernel().ScheduleAt(heal_at, [this]() {
          adapter_->Heal();
          ++heals_;
        });
      }
      Arm();
    });
  }

  workload::SystemAdapter* adapter_;
  SimTime period_us_;
  SimTime duration_us_;
  SimTime until_ = 0;
  Rng rng_;
  uint64_t splits_ = 0;
  uint64_t heals_ = 0;
};

/// A catalog with `n_items` count items of `total` each.
inline core::Catalog MakeCountCatalog(uint32_t n_items, core::Value total,
                                      std::vector<ItemId>* items) {
  core::Catalog catalog;
  for (uint32_t i = 0; i < n_items; ++i) {
    ItemId id = catalog.AddItem("item" + std::to_string(i),
                                core::CountDomain::Instance(), total);
    if (items) items->push_back(id);
  }
  return catalog;
}

inline double Pct(double x) { return 100.0 * x; }

inline void PrintHeader(const std::string& id, const std::string& claim) {
  std::cout << "\n=== " << id << ": " << claim << " ===\n";
}

/// Deterministic JSON metrics sink for the bench binaries (`--json <path>`).
/// Now the shared obs::JsonWriter: keys emit sorted, integers render as
/// integers, doubles with fixed six-digit precision (non-finite values as
/// null — strict parsers reject NaN), so a fixed-seed run produces
/// byte-identical files — the property the CI perf-smoke bounds check and
/// BENCH_seed.json rely on.
using JsonMetrics = ::dvp::obs::JsonWriter;

/// Extracts `--json <path>` (or `--json=<path>`) from argv; empty if absent.
inline std::string JsonPathFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) return argv[i + 1];
    if (arg.rfind("--json=", 0) == 0) return arg.substr(7);
  }
  return "";
}

}  // namespace dvp::bench
