// Shared helpers for the experiment harnesses (E1–E10). Each bench binary
// prints fixed-format tables whose rows are recorded in EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "dvpcore/catalog.h"
#include "system/cluster.h"
#include "workload/adapter.h"
#include "workload/generator.h"
#include "workload/table.h"

namespace dvp::bench {

/// Schedules repeating random 2-way partitions against any adapter:
/// every `period_us` the network splits into two random nonempty groups for
/// `duration_us`, then heals.
class PartitionInjector {
 public:
  PartitionInjector(workload::SystemAdapter* adapter, SimTime period_us,
                    SimTime duration_us, uint64_t seed)
      : adapter_(adapter),
        period_us_(period_us),
        duration_us_(duration_us),
        rng_(seed) {}

  /// Arms the injector until `until_us` (absolute virtual time).
  void Start(SimTime until_us) {
    until_ = until_us;
    Arm();
  }

  uint64_t splits() const { return splits_; }

 private:
  void Arm() {
    SimTime when = adapter_->Now() + period_us_;
    if (when >= until_) return;
    adapter_->kernel().ScheduleAt(when, [this]() {
      uint32_t n = adapter_->num_sites();
      if (n >= 2) {
        // Random nonempty bipartition.
        std::vector<SiteId> a, b;
        do {
          a.clear();
          b.clear();
          for (uint32_t s = 0; s < n; ++s) {
            (rng_.NextBool(0.5) ? a : b).push_back(SiteId(s));
          }
        } while (a.empty() || b.empty());
        (void)adapter_->Partition({a, b});
        ++splits_;
        adapter_->kernel().Schedule(duration_us_,
                                    [this]() { adapter_->Heal(); });
      }
      Arm();
    });
  }

  workload::SystemAdapter* adapter_;
  SimTime period_us_;
  SimTime duration_us_;
  SimTime until_ = 0;
  Rng rng_;
  uint64_t splits_ = 0;
};

/// A catalog with `n_items` count items of `total` each.
inline core::Catalog MakeCountCatalog(uint32_t n_items, core::Value total,
                                      std::vector<ItemId>* items) {
  core::Catalog catalog;
  for (uint32_t i = 0; i < n_items; ++i) {
    ItemId id = catalog.AddItem("item" + std::to_string(i),
                                core::CountDomain::Instance(), total);
    if (items) items->push_back(id);
  }
  return catalog;
}

inline double Pct(double x) { return 100.0 * x; }

inline void PrintHeader(const std::string& id, const std::string& claim) {
  std::cout << "\n=== " << id << ": " << claim << " ===\n";
}

/// Deterministic JSON metrics sink for the bench binaries (`--json <path>`).
/// Keys emit sorted; integers render as integers and doubles with fixed
/// six-digit precision, so a fixed-seed run produces byte-identical files —
/// the property the CI perf-smoke bounds check and BENCH_seed.json rely on.
class JsonMetrics {
 public:
  void Set(const std::string& key, uint64_t v) {
    entries_[key] = std::to_string(v);
  }
  void Set(const std::string& key, int64_t v) {
    entries_[key] = std::to_string(v);
  }
  void Set(const std::string& key, int v) { Set(key, int64_t{v}); }
  void Set(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f", v);
    entries_[key] = buf;
  }
  void Set(const std::string& key, const std::string& v) {
    std::string quoted = "\"";
    for (char ch : v) {
      if (ch == '"' || ch == '\\') quoted += '\\';
      quoted += ch;
    }
    quoted += '"';
    entries_[key] = std::move(quoted);
  }

  std::string ToString() const {
    std::string out = "{\n";
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      out += "  \"" + it->first + "\": " + it->second;
      out += std::next(it) == entries_.end() ? "\n" : ",\n";
    }
    out += "}\n";
    return out;
  }

  /// Writes the file when `path` is nonempty; a no-op sink otherwise, so
  /// callers record metrics unconditionally.
  void WriteTo(const std::string& path) const {
    if (path.empty()) return;
    std::ofstream f(path, std::ios::trunc);
    f << ToString();
  }

 private:
  std::map<std::string, std::string> entries_;  // key -> rendered value
};

/// Extracts `--json <path>` (or `--json=<path>`) from argv; empty if absent.
inline std::string JsonPathFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) return argv[i + 1];
    if (arg.rfind("--json=", 0) == 0) return arg.substr(7);
  }
  return "";
}

}  // namespace dvp::bench
