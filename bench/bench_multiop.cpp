// E13 — multi-item atomic sets: transfers and orders as first-class load.
//
// Claim: multi-item ACID transactions (transfer = decrement A + increment B;
// order = stock down + revenue up, both under ONE timestamp with locks taken
// in global item-id order) commit through the unchanged WAL/group-commit
// path, abort cleanly with partial gathers returned, and leave every
// cross-item invariant intact: each atomic commit record is zero-sum, the
// sum over the whole item set conserves with atomic records excluded, and
// the committed history replays serializably in timestamp order.
//
// Setup: 5 sites, 8 items, Zipf-skewed transfer/order/single-op mix, with
// the multiop abort-on-cycle-risk timeout armed below the single-op window.
// Each seed runs TWICE and the commit outcomes must be identical — the
// determinism gate CI byte-diffs via BENCH_multiop.json.
#include "bench/bench_common.h"
#include "verify/conservation.h"
#include "verify/serializability.h"

namespace dvp::bench {
namespace {

using txn::TxnOutcome;

constexpr SimTime kRun = 20'000'000;
constexpr SimTime kDrain = 3'000'000;
constexpr uint32_t kSites = 5;
constexpr uint32_t kItems = 8;
constexpr core::Value kPerItem = 400;
constexpr double kRate = 400.0;
constexpr uint64_t kSeeds[] = {7'001, 9'102};

struct Outcome {
  uint64_t submitted = 0;
  uint64_t committed = 0;
  uint64_t transfer_committed = 0;
  uint64_t order_committed = 0;
  uint64_t single_committed = 0;
  uint64_t aborted = 0;
  uint64_t timeouts = 0;
  uint64_t multiop_return_sends = 0;
  uint64_t zero_sum_violations = 0;
  uint64_t group_audit_violations = 0;
  uint64_t serializability_ok = 0;

  friend bool operator==(const Outcome&, const Outcome&) = default;
};

Outcome RunOne(uint64_t seed) {
  std::vector<ItemId> items;
  core::Catalog catalog = MakeCountCatalog(kItems, kPerItem, &items);
  system::ClusterOptions opts;
  opts.num_sites = kSites;
  opts.seed = seed;
  opts.site.txn.targeting = txn::TargetPolicy::kRandom;
  opts.site.txn.timeout_us = 300'000;
  // The abort-on-cycle-risk knob: multi-ops park locks on two items while
  // gathering, so they give up earlier than single-item transactions.
  opts.site.txn.multiop_timeout_us = 200'000;
  system::Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();
  workload::DvpAdapter adapter(&cluster);

  workload::WorkloadOptions w;
  w.arrivals_per_sec = kRate;
  w.p_decrement = 0.20;
  w.p_increment = 0.10;
  w.p_read = 0.05;
  w.p_transfer = 0.45;
  w.p_order = 0.20;
  w.amount_min = 1;
  w.amount_max = 6;
  w.item_zipf_theta = 0.6;
  w.seed = seed * 3 + 1;
  workload::WorkloadDriver driver(&adapter, items, w);

  verify::HistoryChecker checker(&catalog);
  driver.set_on_commit([&](TxnId id, const txn::TxnSpec& spec,
                           const txn::TxnResult& r) {
    checker.RecordCommitAt(adapter.Now(), id, spec, r);
  });

  Outcome out;
  driver.set_on_decision([&](SiteId, const txn::TxnSpec& spec,
                             const txn::TxnResult& r) {
    if (!r.committed()) {
      ++out.aborted;
      if (r.outcome == TxnOutcome::kAbortTimeout) ++out.timeouts;
      return;
    }
    if (spec.label == "transfer") {
      ++out.transfer_committed;
    } else if (spec.label == "order") {
      ++out.order_committed;
    } else {
      ++out.single_committed;
    }
  });

  auto r = driver.Run(kRun, kDrain);
  out.submitted = r.submitted;
  out.committed = r.committed();
  out.multiop_return_sends =
      cluster.AggregateCounters().Get("txn.multiop.return_sends");

  // Per-item conservation (legs counted individually)…
  Status audit = cluster.AuditAllBulk();
  if (!audit.ok()) {
    std::cout << "CONSERVATION VIOLATION (seed " << seed
              << "): " << audit.ToString() << "\n";
    std::exit(1);
  }
  // …and the invariant this experiment exists for: transaction-scoped
  // cross-item conservation. Every atomic record zero-sum, and the whole
  // item set balances with atomic records excluded.
  auto storages = cluster.Storages();
  if (!verify::CheckAtomicSetCommits(storages).ok()) {
    ++out.zero_sum_violations;
  }
  if (!verify::AuditGroup(storages, catalog, items).ok()) {
    ++out.group_audit_violations;
  }

  std::map<ItemId, core::Value> final_totals;
  for (ItemId item : items) final_totals[item] = cluster.TotalOf(item);
  Status ser = checker.Check(verify::HistoryChecker::Order::kTimestamp,
                             &final_totals);
  out.serializability_ok = ser.ok() ? 1 : 0;
  if (!ser.ok()) {
    std::cout << "SERIALIZABILITY VIOLATION (seed " << seed
              << "): " << ser.ToString() << "\n";
  }
  return out;
}

void Main(const std::string& json_path) {
  PrintHeader("E13",
              "multi-item atomic sets: transfers/orders commit atomically, "
              "abort cleanly, and every cross-item invariant holds");
  JsonMetrics metrics;
  workload::TablePrinter table({"seed", "committed", "transfer", "order",
                                "single", "aborted", "timeouts", "returns",
                                "serializable"});
  bool ok = true;
  uint64_t deterministic = 1;
  for (uint64_t seed : kSeeds) {
    Outcome a = RunOne(seed);
    Outcome b = RunOne(seed);
    if (!(a == b)) {
      deterministic = 0;
      std::cout << "DETERMINISM VIOLATION: seed " << seed
                << " produced different outcomes across two runs\n";
    }
    table.AddRow(seed, a.committed, a.transfer_committed, a.order_committed,
                 a.single_committed, a.aborted, a.timeouts,
                 a.multiop_return_sends, a.serializability_ok);
    std::string k = "multiop.s" + std::to_string(seed) + ".";
    metrics.Set(k + "submitted", a.submitted);
    metrics.Set(k + "committed", a.committed);
    metrics.Set(k + "transfer_committed", a.transfer_committed);
    metrics.Set(k + "order_committed", a.order_committed);
    metrics.Set(k + "single_committed", a.single_committed);
    metrics.Set(k + "aborted", a.aborted);
    metrics.Set(k + "timeout_aborts", a.timeouts);
    metrics.Set(k + "multiop_return_sends", a.multiop_return_sends);
    metrics.Set(k + "zero_sum_violations", a.zero_sum_violations);
    metrics.Set(k + "group_audit_violations", a.group_audit_violations);
    metrics.Set(k + "serializability_ok", a.serializability_ok);
    ok = ok && a.transfer_committed > 0 && a.order_committed > 0 &&
         a.zero_sum_violations == 0 && a.group_audit_violations == 0 &&
         a.serializability_ok == 1;
  }
  metrics.Set("multiop.determinism", deterministic);
  metrics.WriteTo(json_path);
  table.Print();

  ok = ok && deterministic == 1;
  std::cout << "\nCHECK transfers+orders committed, zero-sum clean, "
            << "serializable, deterministic: " << (ok ? "PASS" : "FAIL")
            << "\n";
  if (!ok) std::exit(1);
}

}  // namespace
}  // namespace dvp::bench

int main(int argc, char** argv) {
  dvp::bench::Main(dvp::bench::JsonPathFromArgs(argc, argv));
}
