// Substrate micro-benchmarks (google-benchmark): the costs that set the
// simulator's capacity — event scheduling, WAL record encode/decode+CRC,
// PRNG draws, Zipf sampling, and lock-table operations.
#include <benchmark/benchmark.h>

#include "cc/lock_manager.h"
#include "common/rng.h"
#include "sim/kernel.h"
#include "wal/record.h"

namespace dvp {
namespace {

void BM_KernelScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Kernel kernel;
    uint64_t sum = 0;
    for (int i = 0; i < 1024; ++i) {
      kernel.Schedule(i, [&sum, i]() { sum += uint64_t(i); });
    }
    kernel.Run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_KernelScheduleRun);

void BM_WalEncodeDecodeCommit(benchmark::State& state) {
  wal::TxnCommitRec rec;
  rec.txn = TxnId(123456);
  rec.ts_packed = 987654;
  for (int i = 0; i < 4; ++i) {
    rec.writes.push_back(
        wal::FragmentWrite{ItemId(uint32_t(i)), 1000 + i, -3, 42});
  }
  for (auto _ : state) {
    std::string encoded = wal::EncodeRecord(wal::LogRecord(rec));
    auto decoded = wal::DecodeRecord(encoded);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WalEncodeDecodeCommit);

void BM_Crc32c(benchmark::State& state) {
  std::string data(size_t(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(wal::Crc32c(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096);

void BM_RngNextU64(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextU64());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNextU64);

void BM_ZipfNext(benchmark::State& state) {
  Rng rng(42);
  ZipfGenerator zipf(1000, 0.99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfNext);

void BM_LockTryLockAll(benchmark::State& state) {
  cc::LockManager locks;
  std::vector<ItemId> items;
  for (uint32_t i = 0; i < 8; ++i) items.push_back(ItemId(i));
  uint64_t owner = 1;
  for (auto _ : state) {
    TxnId txn(owner++);
    benchmark::DoNotOptimize(locks.TryLockAll(items, txn));
    locks.ReleaseAll(txn);
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_LockTryLockAll);

}  // namespace
}  // namespace dvp

BENCHMARK_MAIN();
