// E12 — scale: the performance study the paper defers ("we have not
// addressed the issues of performance", §8–9), at the scale that makes it
// interesting: up to 10⁶ items × 100 sites.
//
// Claim: because DvP commits value-bounded updates against the local
// fragment with a single log force and zero remote steps (§5's write-only /
// locally-satisfiable fast path), committed throughput stays flat as
// items × sites grows four orders of magnitude — and the hot-path state
// (placement cache, advert ring, fragment store) stays O(active items), not
// O(items) or O(sites × items).
//
// Setup: open-loop driver — Poisson admission at a fixed offered rate from
// an unbounded simulated-user population (each arrival is an independent
// user drawn Zipf over two million ids), Zipfian item skew (θ = 0.99, the
// YCSB default) and Zipfian site skew for where work lands. Mix: mostly
// decrements submitted at the item's home site (the deliberately-partitioned
// regime the paper's airline example assumes), a slice of increments landing
// on Zipf-skewed sites (write-only: always local), and a small misdirected
// slice — decrements submitted where the value is NOT — to keep the gather /
// hint / rebalance machinery honest under the big catalog. Reads are left
// out: the full-read drain is a broadcast-scale protocol priced in E5, and
// at 100 sites it would swamp the fast-path signal this bench pins.
//
// Three scale points at the SAME offered rate; the committed/sec column is
// the claim. BENCH_scale.json pins the figures for CI's perf-smoke gate.
#include <unordered_set>

#include "bench/bench_common.h"
#include "net/message.h"

namespace dvp::bench {
namespace {

using txn::TxnOp;
using txn::TxnOutcome;
using txn::TxnSpec;

constexpr SimTime kRun = 2'000'000;    // admission window (virtual)
constexpr SimTime kDrain = 1'000'000;  // gathers/timeouts settle
constexpr double kRate = 2'000.0;      // offered txns/sec at EVERY point
constexpr core::Value kPerItem = 100;  // initial total per item
constexpr double kThetaItems = 0.99;   // YCSB-style item skew
constexpr double kThetaSites = 0.80;   // site skew for non-home submissions
constexpr uint64_t kUsers = 2'000'000;
constexpr double kThetaUsers = 0.60;
constexpr double kPIncrement = 0.28;   // Zipf-site increments (write-only)
constexpr double kPMisdirect = 0.03;   // decrements submitted off-home

struct ScalePoint {
  const char* label;
  uint32_t items;
  uint32_t sites;
};
constexpr ScalePoint kPoints[] = {
    {"s10k_x10", 10'000, 10},
    {"s100k_x32", 100'000, 32},
    {"s1m_x100", 1'000'000, 100},
};

struct Outcome {
  uint64_t submitted = 0;
  uint64_t committed = 0;
  uint64_t timeouts = 0;
  uint64_t local_commits = 0;
  uint64_t distinct_users = 0;
  double committed_per_sec = 0;
  double timeout_rate = 0;
  double local_fraction = 0;
  double bytes_per_txn = 0;
  double msgs_per_txn = 0;
  // Peak-RSS proxies, summed over sites: the O(active) claim, measurable.
  uint64_t resident_fragments = 0;
  uint64_t cache_entries_peak = 0;
  uint64_t advert_ring = 0;
  uint64_t dense_equivalent = 0;  ///< what cache_[site][item] would hold
  // Envelope pool behavior across this point (deltas of the process pool).
  uint64_t pool_envelopes = 0;
  uint64_t pool_upstream_allocs = 0;
};

Outcome RunPoint(const ScalePoint& p) {
  core::Catalog catalog = MakeCountCatalog(p.items, kPerItem, nullptr);
  system::ClusterOptions opts;
  opts.num_sites = p.sites;
  opts.seed = 11'011;
  opts.site.txn.targeting = txn::TargetPolicy::kSurplus;
  // Bounded fan-out: blind full-cluster asks are O(sites) messages per
  // gather — at 100 sites that is the scaling bug, not a workload.
  opts.site.txn.request_fanout = 4;
  opts.site.txn.gather_retry_us = 60'000;
  opts.site.placement.hints_per_frame = 4;
  opts.site.placement.rebalance = true;
  // Coalesced frames + group commit: the amortisation layers E10/E10b
  // price, on so the frame-building encode-once path is actually exercised.
  opts.site.transport.coalesce = true;
  opts.site.group_commit.enabled = true;
  system::Cluster cluster(&catalog, opts);
  cluster.BootstrapHomed();

  net::EnvelopePoolStats pool_before = net::PoolStats();

  Rng rng(opts.seed * 7 + 5);
  ZipfGenerator item_zipf(p.items, kThetaItems);
  ZipfGenerator site_zipf(p.sites, kThetaSites);
  ZipfGenerator user_zipf(kUsers, kThetaUsers);

  Outcome out;
  std::unordered_set<uint64_t> users;
  // Open loop: the whole arrival schedule is fixed up front; admission never
  // waits on completions (a closed loop would hide slowdowns by backing off).
  SimTime t = 0;
  while (true) {
    t += SimTime(rng.NextExponential(1e6 / kRate)) + 1;
    if (t >= kRun) break;
    users.insert(user_zipf.Next(rng));
    ItemId item(static_cast<uint32_t>(item_zipf.Next(rng)));
    SiteId home(item.value() % p.sites);
    SiteId skewed(static_cast<uint32_t>(site_zipf.Next(rng)));
    core::Value amount = rng.NextInt(1, 3);
    double roll = rng.NextDouble();

    TxnSpec spec;
    SiteId at = home;
    if (roll < kPIncrement) {
      spec.ops = {TxnOp::Increment(item, amount)};
      at = skewed;  // write-only: local wherever it lands
    } else if (roll < kPIncrement + kPMisdirect) {
      spec.ops = {TxnOp::Decrement(item, amount)};
      at = skewed;  // off-home: gather via hints or time out
    } else {
      spec.ops = {TxnOp::Decrement(item, amount)};
    }
    cluster.kernel().ScheduleAt(t, [&cluster, &out, at, spec]() {
      ++out.submitted;
      (void)cluster.Submit(at, spec, [&out](const txn::TxnResult& r) {
        if (r.committed()) {
          ++out.committed;
          if (r.rounds == 0) ++out.local_commits;
        } else if (r.outcome == TxnOutcome::kAbortTimeout) {
          ++out.timeouts;
        }
      });
    });
  }
  cluster.RunFor(kRun + kDrain);

  out.distinct_users = users.size();
  out.committed_per_sec = double(out.committed) * 1e6 / double(kRun);
  out.timeout_rate =
      double(out.timeouts) / double(std::max<uint64_t>(1, out.submitted));
  double commits = double(std::max<uint64_t>(1, out.committed));
  out.local_fraction = double(out.local_commits) / commits;
  const net::NetworkStats& ns = cluster.network().stats();
  out.bytes_per_txn = double(ns.bytes_sent) / commits;
  out.msgs_per_txn = double(ns.packets_sent) / commits;

  for (uint32_t s = 0; s < p.sites; ++s) {
    site::Site& site = cluster.site(SiteId(s));
    out.resident_fragments += site.store()->resident_count();
    out.cache_entries_peak += site.placement()->cache_entries_peak();
    out.advert_ring += site.placement()->advert_ring_size();
  }
  out.dense_equivalent = uint64_t(p.items) * p.sites;

  net::EnvelopePoolStats pool_after = net::PoolStats();
  out.pool_envelopes = pool_after.envelopes - pool_before.envelopes;
  out.pool_upstream_allocs =
      pool_after.upstream_allocations - pool_before.upstream_allocations;

  Status audit = cluster.AuditAllBulk();
  if (!audit.ok()) {
    std::cout << "CONSERVATION VIOLATION (" << p.label
              << "): " << audit.ToString() << "\n";
    std::exit(1);
  }
  return out;
}

void Main(const std::string& json_path) {
  PrintHeader("E12",
              "scale: committed txn/s stays flat from 10k items x 10 sites "
              "to 1M items x 100 sites at fixed offered load; hot-path "
              "state stays O(active items)");
  JsonMetrics metrics;
  workload::TablePrinter table({"scale", "committed/s", "timeout %",
                                "local %", "bytes/txn", "msgs/txn",
                                "cache peak", "dense equiv", "resident"});
  std::vector<Outcome> outcomes;
  for (const ScalePoint& p : kPoints) {
    Outcome o = RunPoint(p);
    outcomes.push_back(o);
    table.AddRow(p.label, o.committed_per_sec, Pct(o.timeout_rate),
                 Pct(o.local_fraction), o.bytes_per_txn, o.msgs_per_txn,
                 o.cache_entries_peak, o.dense_equivalent,
                 o.resident_fragments);
    std::string k = "scale." + std::string(p.label) + ".";
    metrics.Set(k + "submitted", o.submitted);
    metrics.Set(k + "committed", o.committed);
    metrics.Set(k + "committed_per_sec", o.committed_per_sec);
    metrics.Set(k + "timeout_abort_rate", o.timeout_rate);
    metrics.Set(k + "local_commit_fraction", o.local_fraction);
    metrics.Set(k + "bytes_per_txn", o.bytes_per_txn);
    metrics.Set(k + "msgs_per_txn", o.msgs_per_txn);
    metrics.Set(k + "distinct_users", o.distinct_users);
    metrics.Set(k + "placement_cache_entries_peak", o.cache_entries_peak);
    metrics.Set(k + "placement_dense_equivalent", o.dense_equivalent);
    metrics.Set(k + "advert_ring", o.advert_ring);
    metrics.Set(k + "resident_fragments", o.resident_fragments);
    metrics.Set(k + "pool_envelopes", o.pool_envelopes);
    metrics.Set(k + "pool_upstream_allocs", o.pool_upstream_allocs);
  }
  table.Print();

  const Outcome& small = outcomes.front();
  const Outcome& large = outcomes.back();
  double flatness = small.committed_per_sec > 0
                        ? large.committed_per_sec / small.committed_per_sec
                        : 0;
  // The dense cache would be 10⁸ entries at the large point; the sparse one
  // must be orders of magnitude under it (<1%), or the rewrite regressed.
  double cache_fill = double(large.cache_entries_peak) /
                      double(std::max<uint64_t>(1, large.dense_equivalent));
  bool pool_recycles = large.pool_envelopes > large.pool_upstream_allocs;
  metrics.Set("scale.throughput_flatness", flatness);
  metrics.Set("scale.large_cache_fill", cache_fill);
  metrics.Set("scale.pool_recycles", uint64_t(pool_recycles ? 1 : 0));
  metrics.WriteTo(json_path);

  std::cout << "\nthroughput flatness (1M×100 vs 10k×10): " << flatness
            << "; large-point cache fill " << Pct(cache_fill)
            << "% of dense; pool " << large.pool_envelopes << " envelopes / "
            << large.pool_upstream_allocs << " heap refills.\n";
  bool all_committed = true;
  for (const Outcome& o : outcomes) all_committed &= o.committed > 0;
  std::cout << "CHECK committed>0: " << (all_committed ? "PASS" : "FAIL")
            << "  CHECK flat>=0.8: " << (flatness >= 0.8 ? "PASS" : "FAIL")
            << "  CHECK cache_fill<1%: "
            << (cache_fill < 0.01 ? "PASS" : "FAIL")
            << "  CHECK pool_recycles: " << (pool_recycles ? "PASS" : "FAIL")
            << "\n";
  if (!all_committed || flatness < 0.8 || cache_fill >= 0.01 ||
      !pool_recycles) {
    std::exit(1);
  }
}

}  // namespace
}  // namespace dvp::bench

int main(int argc, char** argv) {
  dvp::bench::Main(dvp::bench::JsonPathFromArgs(argc, argv));
}
