// E8 — Redistribution traffic and the initial split policy (paper §9:
// "performance studies to find the best ways to distribute the data ... and
// to reduce the message traffic are needed").
//
// Sweep: demand skew (decrements Zipf-concentrated at low site ids,
// increments uniform) × initial allocation policy:
//   even            — N/n at every site,
//   all-at-one      — everything at site 0 (the traditional single-copy),
//   demand-weighted — shares proportional to expected demand.
// Report commit rate, timeout aborts, request messages and Vm per committed
// transaction.
#include <cmath>

#include "bench/bench_common.h"

namespace dvp::bench {
namespace {

constexpr SimTime kRun = 40'000'000;
constexpr core::Value kTotal = 6000;
constexpr uint32_t kSites = 4;

enum class SplitPolicy { kEven, kAllAtOne, kDemandWeighted };

std::vector<core::Value> MakeSplit(SplitPolicy policy, double theta) {
  switch (policy) {
    case SplitPolicy::kEven:
      return system::SplitEven(kTotal, kSites);
    case SplitPolicy::kAllAtOne: {
      std::vector<core::Value> v(kSites, 0);
      v[0] = kTotal;
      return v;
    }
    case SplitPolicy::kDemandWeighted: {
      // Zipf weights 1/(r+1)^theta, matching the workload's site skew.
      std::vector<double> w(kSites);
      double sum = 0;
      for (uint32_t s = 0; s < kSites; ++s) {
        w[s] = 1.0 / std::pow(double(s + 1), theta);
        sum += w[s];
      }
      std::vector<core::Value> v(kSites);
      core::Value used = 0;
      for (uint32_t s = 0; s < kSites; ++s) {
        v[s] = core::Value(double(kTotal) * w[s] / sum);
        used += v[s];
      }
      v[0] += kTotal - used;
      return v;
    }
  }
  return {};
}

std::string_view PolicyName(SplitPolicy p) {
  switch (p) {
    case SplitPolicy::kEven:
      return "even";
    case SplitPolicy::kAllAtOne:
      return "all-at-site0";
    case SplitPolicy::kDemandWeighted:
      return "demand-weighted";
  }
  return "?";
}

void Main() {
  PrintHeader("E8",
              "redistribution: aborts and message traffic vs demand skew × "
              "initial split policy");
  workload::TablePrinter table({"skew θ", "split", "commit %", "timeout %",
                                "req msgs/commit", "vm/commit",
                                "p99 commit (ms)"});
  for (double theta : {0.0, 0.6, 1.0, 1.4}) {
    for (SplitPolicy policy :
         {SplitPolicy::kEven, SplitPolicy::kAllAtOne,
          SplitPolicy::kDemandWeighted}) {
      std::vector<ItemId> items;
      core::Catalog catalog = MakeCountCatalog(1, kTotal, &items);
      system::ClusterOptions opts;
      opts.num_sites = kSites;
      opts.seed = 81 + uint64_t(theta * 10);
      system::Cluster cluster(&catalog, opts);
      std::map<ItemId, std::vector<core::Value>> alloc;
      alloc[items[0]] = MakeSplit(policy, theta);
      Status booted = cluster.Bootstrap(alloc);
      assert(booted.ok());
      (void)booted;
      workload::DvpAdapter adapter(&cluster);

      workload::WorkloadOptions w;
      w.arrivals_per_sec = 120;
      w.p_decrement = 0.5;
      w.p_increment = 0.5;
      w.p_read = 0;
      w.site_zipf_theta = theta;
      w.increment_site_zipf_theta = 0.0;
      w.seed = 810 + uint64_t(theta * 10) + uint64_t(policy);
      workload::WorkloadDriver driver(&adapter, items, w);
      auto results = driver.Run(kRun);

      CounterSet counters = cluster.AggregateCounters();
      double commits = double(std::max<uint64_t>(1, results.committed()));
      double timeout_pct = 0;
      if (auto it = results.outcomes.find(txn::TxnOutcome::kAbortTimeout);
          it != results.outcomes.end()) {
        timeout_pct = 100.0 * double(it->second) /
                      double(std::max<uint64_t>(1, results.submitted));
      }
      table.AddRow(theta, PolicyName(policy), Pct(results.commit_rate()),
                   timeout_pct, double(counters.Get("req.sent")) / commits,
                   double(counters.Get("vm.created")) / commits,
                   results.commit_latency_us.P99() / 1000.0);
    }
  }
  table.Print();
  std::cout << "\nMatching the split to the demand (demand-weighted) beats "
               "both the even split and the single-copy allocation as skew "
               "grows: fewer requests, fewer Vm, fewer timeout aborts — the "
               "data-placement study §9 calls for.\n";

  // ---- Request fan-out policy (the message-traffic knob) -------------------
  std::cout << "\nRequest fan-out policy at skew θ=1.4, even split:\n";
  workload::TablePrinter fan({"fanout", "divide?", "commit %",
                              "req msgs/commit", "vm/commit",
                              "value moved/commit"});
  for (auto [fanout, divide] :
       std::vector<std::pair<uint32_t, bool>>{
           {0, false}, {0, true}, {2, false}, {1, false}}) {
    std::vector<ItemId> items;
    core::Catalog catalog = MakeCountCatalog(1, kTotal, &items);
    system::ClusterOptions opts;
    opts.num_sites = kSites;
    opts.seed = 83;
    opts.site.txn.request_fanout = fanout;
    opts.site.txn.divide_shortfall = divide;
    opts.site.txn.targeting = txn::TargetPolicy::kRandom;
    system::Cluster cluster(&catalog, opts);
    std::map<ItemId, std::vector<core::Value>> alloc;
    alloc[items[0]] = MakeSplit(SplitPolicy::kEven, 1.4);
    (void)cluster.Bootstrap(alloc);
    workload::DvpAdapter adapter(&cluster);

    workload::WorkloadOptions w;
    w.arrivals_per_sec = 120;
    w.p_decrement = 0.5;
    w.p_increment = 0.5;
    w.p_read = 0;
    w.site_zipf_theta = 1.4;
    w.increment_site_zipf_theta = 0.0;
    w.seed = 831;
    workload::WorkloadDriver driver(&adapter, items, w);
    auto results = driver.Run(kRun);

    CounterSet counters = cluster.AggregateCounters();
    double commits = double(std::max<uint64_t>(1, results.committed()));
    // Value that physically moved between sites: an n-way ask for the full
    // shortfall ships up to n× the need (over-shipping).
    double vm_value = 0;
    for (const auto* storage : cluster.Storages()) {
      (void)storage->Scan(0, [&vm_value](Lsn, const wal::LogRecord& rec) {
        if (const auto* c = std::get_if<wal::VmCreateRec>(&rec)) {
          vm_value += double(c->amount);
        }
      });
    }
    vm_value /= commits;
    fan.AddRow(fanout == 0 ? std::string("all") : std::to_string(fanout),
               divide ? "yes" : "no", Pct(results.commit_rate()),
               double(counters.Get("req.msgs")) / commits,
               double(counters.Get("vm.created")) / commits, vm_value);
  }
  fan.Print();
  std::cout << "Asking everyone for the full shortfall maximises commit rate "
               "but over-ships value; dividing the ask or narrowing the "
               "fan-out trades commit probability for less traffic (§8's "
               "optimisation space).\n";
}

}  // namespace
}  // namespace dvp::bench

int main() { dvp::bench::Main(); }
