// E2 — Availability under network partition (paper §3, §8).
//
// Claim: during a partition, every DvP group keeps committing against its
// local quotas; quorum consensus serves only the majority group; primary
// copy serves only the group containing the primary; write-all serves no
// one. We run 60s with a partition over [20s, 40s] and report commit rates
// inside the partition window, per group.
#include "baseline/primary_copy.h"
#include "baseline/twopc.h"
#include "bench/bench_common.h"

namespace dvp::bench {
namespace {

constexpr SimTime kRun = 60'000'000;
constexpr SimTime kSplitStart = 20'000'000;
constexpr SimTime kSplitEnd = 40'000'000;

struct GroupStats {
  uint64_t committed = 0;
  uint64_t decided = 0;
};

struct Probe {
  workload::SystemAdapter* adapter = nullptr;
  // group index during the window: sites 0,1 -> group 0; 2,3 -> group 1.
  GroupStats in_window[2];
  uint64_t outside_committed = 0;
  uint64_t outside_decided = 0;

  void Record(SiteId at, const txn::TxnResult& r) {
    SimTime now = adapter->Now();
    bool inside = now >= kSplitStart && now <= kSplitEnd;
    if (!inside) {
      ++outside_decided;
      if (r.committed()) ++outside_committed;
      return;
    }
    int group = at.value() < 2 ? 0 : 1;
    ++in_window[group].decided;
    if (r.committed()) ++in_window[group].committed;
  }
};

workload::WorkloadOptions Mix(uint64_t seed) {
  workload::WorkloadOptions w;
  w.arrivals_per_sec = 120;
  w.p_decrement = 0.5;
  w.p_increment = 0.5;
  w.p_read = 0;
  w.seed = seed;
  return w;
}

void SchedulePartition(workload::SystemAdapter& adapter) {
  adapter.kernel().ScheduleAt(kSplitStart, [&adapter]() {
    (void)adapter.Partition(
        {{SiteId(0), SiteId(1)}, {SiteId(2), SiteId(3)}});
  });
  adapter.kernel().ScheduleAt(kSplitEnd, [&adapter]() { adapter.Heal(); });
}

void Report(workload::TablePrinter& table, std::string_view system,
            const Probe& probe) {
  auto rate = [](const GroupStats& g) {
    return g.decided == 0
               ? 0.0
               : 100.0 * double(g.committed) / double(g.decided);
  };
  double outside = probe.outside_decided == 0
                       ? 0.0
                       : 100.0 * double(probe.outside_committed) /
                             double(probe.outside_decided);
  table.AddRow(std::string(system), rate(probe.in_window[0]),
               rate(probe.in_window[1]), outside);
}

void Main() {
  PrintHeader("E2",
              "availability during a {0,1}|{2,3} partition (20s..40s): "
              "commit %% per group inside the window");
  workload::TablePrinter table({"system", "group{0,1} commit %",
                                "group{2,3} commit %",
                                "outside window commit %"});

  {  // DvP
    std::vector<ItemId> items;
    core::Catalog catalog = MakeCountCatalog(4, 4000, &items);
    system::ClusterOptions opts;
    opts.num_sites = 4;
    opts.seed = 31;
    system::Cluster cluster(&catalog, opts);
    cluster.BootstrapEven();
    workload::DvpAdapter adapter(&cluster);
    SchedulePartition(adapter);
    workload::WorkloadDriver driver(&adapter, items, Mix(21));
    Probe probe{&adapter, {}, 0, 0};
    driver.set_on_decision([&probe](SiteId at, const txn::TxnSpec&,
                                    const txn::TxnResult& r) {
      probe.Record(at, r);
    });
    (void)driver.Run(kRun);
    Report(table, "DvP", probe);
  }
  {  // 2PC write-all
    std::vector<ItemId> items;
    core::Catalog catalog = MakeCountCatalog(4, 4000, &items);
    baseline::TwoPcOptions opts;
    opts.num_sites = 4;
    opts.seed = 31;
    opts.policy = baseline::ReplicaPolicy::kWriteAll;
    baseline::TwoPcCluster cluster(&catalog, opts);
    cluster.Bootstrap();
    workload::TwoPcAdapter adapter(&cluster, "2PC write-all");
    SchedulePartition(adapter);
    workload::WorkloadDriver driver(&adapter, items, Mix(21));
    Probe probe{&adapter, {}, 0, 0};
    driver.set_on_decision([&probe](SiteId at, const txn::TxnSpec&,
                                    const txn::TxnResult& r) {
      probe.Record(at, r);
    });
    (void)driver.Run(kRun);
    Report(table, "2PC write-all", probe);
  }
  {  // 2PC quorum: split 3|1 so one side has a majority.
    std::vector<ItemId> items;
    core::Catalog catalog = MakeCountCatalog(4, 4000, &items);
    baseline::TwoPcOptions opts;
    opts.num_sites = 4;
    opts.seed = 31;
    opts.policy = baseline::ReplicaPolicy::kQuorum;
    baseline::TwoPcCluster cluster(&catalog, opts);
    cluster.Bootstrap();
    workload::TwoPcAdapter adapter(&cluster, "2PC quorum");
    adapter.kernel().ScheduleAt(kSplitStart, [&adapter]() {
      (void)adapter.Partition(
          {{SiteId(0), SiteId(1), SiteId(2)}, {SiteId(3)}});
    });
    adapter.kernel().ScheduleAt(kSplitEnd, [&adapter]() { adapter.Heal(); });
    workload::WorkloadDriver driver(&adapter, items, Mix(21));
    // Group 0 = sites 0..2 (majority), group 1 = site 3 (minority).
    Probe probe{&adapter, {}, 0, 0};
    driver.set_on_decision([&probe, &adapter](SiteId at, const txn::TxnSpec&,
                                              const txn::TxnResult& r) {
      SimTime now = adapter.Now();
      bool inside = now >= kSplitStart && now <= kSplitEnd;
      if (!inside) {
        ++probe.outside_decided;
        if (r.committed()) ++probe.outside_committed;
        return;
      }
      int group = at.value() < 3 ? 0 : 1;
      ++probe.in_window[group].decided;
      if (r.committed()) ++probe.in_window[group].committed;
    });
    (void)driver.Run(kRun);
    Report(table, "2PC quorum (3|1 split)", probe);
  }
  {  // Primary copy
    std::vector<ItemId> items;
    core::Catalog catalog = MakeCountCatalog(4, 4000, &items);
    baseline::PrimaryCopyOptions opts;
    opts.num_sites = 4;
    opts.seed = 31;
    baseline::PrimaryCopyCluster cluster(&catalog, opts);
    cluster.Bootstrap();
    workload::PrimaryCopyAdapter adapter(&cluster);
    SchedulePartition(adapter);
    workload::WorkloadDriver driver(&adapter, items, Mix(21));
    Probe probe{&adapter, {}, 0, 0};
    driver.set_on_decision([&probe](SiteId at, const txn::TxnSpec&,
                                    const txn::TxnResult& r) {
      probe.Record(at, r);
    });
    (void)driver.Run(kRun);
    Report(table, "PrimaryCopy", probe);
  }

  table.Print();
  std::cout << "\nDvP: both groups keep committing on their quotas. "
               "Write-all: nobody commits. Quorum: only the majority side. "
               "Primary copy: only the group holding each primary (items are "
               "striped, so each group reaches half its primaries).\n";
}

}  // namespace
}  // namespace dvp::bench

int main() { dvp::bench::Main(); }
