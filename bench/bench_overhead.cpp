// E10 — What the scheme costs when nothing fails (paper §8 admits overheads;
// here we quantify the failure-free common case).
//
// Uniform, locally-satisfiable workload, no faults. Sweep site count and
// compare per-committed-transaction costs:
//   DvP           — 2 log forces (commit + applied), 0 messages
//   PrimaryCopy   — 1 log force at the primary, 1 RPC round trip from
//                   non-primary sites
//   2PC write-all — prepare+decision forces at every replica, 4n messages
#include "baseline/primary_copy.h"
#include "baseline/twopc.h"
#include "bench/bench_common.h"

namespace dvp::bench {
namespace {

constexpr SimTime kRun = 20'000'000;

workload::WorkloadOptions Mix(uint64_t seed) {
  workload::WorkloadOptions w;
  w.arrivals_per_sec = 100;
  w.p_decrement = 0.5;
  w.p_increment = 0.5;
  w.p_read = 0;
  w.seed = seed;
  return w;
}

void Main(const std::string& json_path) {
  PrintHeader("E10",
              "failure-free overhead per committed txn vs cluster size");
  JsonMetrics metrics;
  workload::TablePrinter table({"sites", "system", "commit %",
                                "log forces/commit", "msgs/commit",
                                "p50 latency (ms)"});
  for (uint32_t n : {1u, 2u, 4u, 8u, 16u}) {
    {  // DvP
      std::vector<ItemId> items;
      core::Catalog catalog = MakeCountCatalog(4, core::Value(4000) * n, &items);
      system::ClusterOptions opts;
      opts.num_sites = n;
      opts.seed = 7;
      system::Cluster cluster(&catalog, opts);
      cluster.BootstrapEven();
      workload::DvpAdapter adapter(&cluster);
      workload::WorkloadDriver driver(&adapter, items, Mix(100 + n));
      auto r = driver.Run(kRun);
      uint64_t forces = 0;
      for (uint32_t s = 0; s < n; ++s) {
        forces += cluster.storage(SiteId(s)).forces();
      }
      CounterSet counters = cluster.AggregateCounters();
      double commits = double(std::max<uint64_t>(1, r.committed()));
      table.AddRow(n, "DvP", Pct(r.commit_rate()), double(forces) / commits,
                   double(counters.Get("net.sent")) / commits,
                   r.commit_latency_us.Median() / 1000.0);
      std::string k = "e10.dvp.n" + std::to_string(n) + ".";
      metrics.Set(k + "committed", r.committed());
      metrics.Set(k + "forces_per_commit", double(forces) / commits);
      metrics.Set(k + "msgs_per_commit",
                  double(counters.Get("net.sent")) / commits);
      metrics.Set(k + "p50_latency_us", r.commit_latency_us.Median());
    }
    if (n >= 2) {  // PrimaryCopy
      std::vector<ItemId> items;
      core::Catalog catalog = MakeCountCatalog(4, core::Value(4000) * n, &items);
      baseline::PrimaryCopyOptions opts;
      opts.num_sites = n;
      opts.seed = 7;
      baseline::PrimaryCopyCluster cluster(&catalog, opts);
      cluster.Bootstrap();
      workload::PrimaryCopyAdapter adapter(&cluster);
      workload::WorkloadDriver driver(&adapter, items, Mix(100 + n));
      auto r = driver.Run(kRun);
      const net::NetworkStats& ns = cluster.network().stats();
      double commits = double(std::max<uint64_t>(1, r.committed()));
      // One commit record per txn at the primary.
      table.AddRow(n, "PrimaryCopy", Pct(r.commit_rate()), 1.0,
                   double(ns.packets_sent) / commits,
                   r.commit_latency_us.Median() / 1000.0);
    }
    if (n >= 2) {  // 2PC write-all
      std::vector<ItemId> items;
      core::Catalog catalog = MakeCountCatalog(4, core::Value(4000) * n, &items);
      baseline::TwoPcOptions opts;
      opts.num_sites = n;
      opts.seed = 7;
      opts.policy = baseline::ReplicaPolicy::kWriteAll;
      baseline::TwoPcCluster cluster(&catalog, opts);
      cluster.Bootstrap();
      workload::TwoPcAdapter adapter(&cluster);
      workload::WorkloadDriver driver(&adapter, items, Mix(100 + n));
      auto r = driver.Run(kRun);
      const net::NetworkStats& ns = cluster.network().stats();
      double commits = double(std::max<uint64_t>(1, r.committed()));
      // Forces: 1 prepare per participant + 1 decision per site + coord.
      double forces_per_commit = double(n) + double(n) + 1.0;
      table.AddRow(n, "2PC write-all", Pct(r.commit_rate()), forces_per_commit,
                   double(ns.packets_sent) / commits,
                   r.commit_latency_us.Median() / 1000.0);
    }
  }
  table.Print();
  std::cout << "\nDvP's failure-free cost is flat in n (2 forces, 0 "
               "messages): the paper's 'traditional database without "
               "replicated data is a trivial special case' observation. 2PC "
               "pays O(n) forces and messages per commit; primary copy pays "
               "one RPC for remote submitters.\n";
  metrics.WriteTo(json_path);
}

}  // namespace
}  // namespace dvp::bench

int main(int argc, char** argv) {
  dvp::bench::Main(dvp::bench::JsonPathFromArgs(argc, argv));
}
