// E6 — Independent recovery (paper §7).
//
// Claims:
//  (a) A recovering DvP site exchanges ZERO remote messages before doing
//      useful local work; recovery time is proportional to the redo suffix
//      and shrinks with checkpointing.
//  (b) A recovering 2PC participant with an in-doubt (prepared, undecided)
//      transaction MUST interrogate the coordinator — remote messages > 0 —
//      and the in-doubt items stay locked until the answer arrives.
//
// Sweep: workload duration before the crash (log length) × checkpoint
// interval for DvP; a crash-inside-the-uncertainty-window scenario for 2PC.
#include "baseline/twopc.h"
#include "bench/bench_common.h"

namespace dvp::bench {
namespace {

struct DvpRow {
  uint64_t log_records = 0;
  uint64_t redo_suffix = 0;
  double recovery_ms = 0;
  uint64_t remote_msgs = 0;
  bool first_local_commit_ok = false;
};

DvpRow RunDvp(SimTime workload_us, SimTime checkpoint_us) {
  std::vector<ItemId> items;
  core::Catalog catalog = MakeCountCatalog(2, 2000, &items);
  system::ClusterOptions opts;
  opts.num_sites = 4;
  opts.seed = 61;
  opts.site.checkpoint_interval_us = checkpoint_us;
  opts.site.recovery_us_per_record = 50;  // pronounced, measurable redo cost
  system::Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();
  workload::DvpAdapter adapter(&cluster);

  workload::WorkloadOptions w;
  w.arrivals_per_sec = 120;
  w.p_decrement = 0.5;
  w.p_increment = 0.5;
  w.p_read = 0;
  w.site_zipf_theta = 1.0;  // cross-site traffic → Vm records in the log
  w.increment_site_zipf_theta = 0.0;
  w.seed = 71;
  workload::WorkloadDriver driver(&adapter, items, w);
  (void)driver.Run(workload_us, 1'000'000);

  DvpRow row;
  SiteId victim(0);
  row.log_records = cluster.storage(victim).log_size();
  row.redo_suffix =
      row.log_records - cluster.storage(victim).checkpoint_upto();
  cluster.CrashSite(victim);

  uint64_t sent_before = cluster.AggregateCounters().Get("net.sent");
  SimTime t0 = cluster.Now();
  bool recovered = false;
  recovery::RecoveryReport report;
  cluster.site(victim).Recover([&](const recovery::RecoveryReport& r) {
    recovered = true;
    report = r;
  });
  // Run only until the site is back up; no other traffic in flight.
  while (!recovered) cluster.kernel().Step();
  row.recovery_ms = double(cluster.Now() - t0) / 1000.0;
  row.remote_msgs = report.remote_messages_needed;
  (void)sent_before;

  // First useful work: a purely local transaction, no network needed.
  txn::TxnSpec spec;
  spec.ops = {txn::TxnOp::Increment(items[0], 1)};
  bool committed = false;
  (void)cluster.Submit(victim, spec, [&](const txn::TxnResult& r) {
    committed = r.committed();
  });
  row.first_local_commit_ok = committed;  // fast path commits synchronously
  return row;
}

void Run2pcScenario(workload::TablePrinter& table) {
  // Crash a participant inside the uncertainty window, then recover it.
  std::vector<ItemId> items;
  core::Catalog catalog = MakeCountCatalog(1, 1000, &items);
  baseline::TwoPcOptions opts;
  opts.num_sites = 4;
  opts.seed = 62;
  opts.link = net::LinkParams::Synchronous(10'000);
  baseline::TwoPcCluster cluster(&catalog, opts);
  cluster.Bootstrap();

  txn::TxnSpec spec;
  spec.ops = {txn::TxnOp::Decrement(items[0], 5)};
  (void)cluster.Submit(SiteId(0), spec, nullptr);
  // locks @10ms, grants @20ms, prepare @30ms (participants force prepare),
  // votes @40ms. Crash participant 3 right after it prepared.
  cluster.RunFor(31'000);
  cluster.CrashSite(SiteId(3));
  cluster.RunFor(200'000);

  bool done = false;
  uint64_t msgs = 0;
  SimTime t0 = cluster.Now();
  cluster.RecoverSite(SiteId(3), [&](uint64_t m) {
    done = true;
    msgs = m;
  });
  cluster.RunFor(2'000'000);
  table.AddRow("2PC participant (in-doubt)", uint64_t(3), uint64_t(1),
               done ? double(cluster.Now() - t0) / 1000.0 : -1.0, msgs,
               done ? "after coordinator answered" : "STILL BLOCKED");
}

void Main() {
  PrintHeader("E6",
              "independent recovery: remote messages needed and recovery "
              "time vs log length / checkpointing");
  workload::TablePrinter table({"scenario", "log records", "redo suffix",
                                "recovery (ms)", "remote msgs",
                                "first local commit"});
  for (SimTime workload : {5'000'000, 20'000'000, 60'000'000}) {
    for (SimTime ckpt : {SimTime{0}, SimTime{1'000'000}}) {
      DvpRow row = RunDvp(workload, ckpt);
      std::string label = "DvP " + std::to_string(workload / 1'000'000) +
                          "s" + (ckpt > 0 ? " + ckpt 1s" : " no ckpt");
      table.AddRow(label, row.log_records, row.redo_suffix, row.recovery_ms,
                   row.remote_msgs,
                   row.first_local_commit_ok ? "immediately" : "FAILED");
    }
  }
  Run2pcScenario(table);
  table.Print();
  std::cout << "\nDvP: zero remote messages, redo bounded by the checkpoint "
               "suffix, and useful local work the instant the redo ends. 2PC "
               "participant: cannot touch the in-doubt item until the "
               "coordinator answers.\n";
}

}  // namespace
}  // namespace dvp::bench

int main() { dvp::bench::Main(); }
