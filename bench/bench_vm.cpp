// E3 — Virtual messages never lose value (paper §4.2).
//
// Claim: under arbitrary link loss/duplication/delay, the conservation
// invariant Σ fragments + in-flight Vm = initial + committed deltas holds at
// the end of every run, and every Vm is eventually accepted exactly once.
// Cost: retransmissions grow with the loss rate; commit rate degrades only
// because gathers time out, never because value vanishes.
//
// Sweep: per-packet loss probability 0%..90%, duplication 10%, heavy
// redistribution (skewed demand).
//
// Phase 2 exercises the transport's bounded-state claim: a >= 10k-Vm flood
// under loss+duplication, sampling the receiver-side dedup footprint (the
// transport's out-of-order window and the Vm layer's accepted-set) to show
// both stay O(outstanding), not O(lifetime).
#include "bench/bench_common.h"

#include <algorithm>

namespace dvp::bench {
namespace {

constexpr SimTime kRun = 30'000'000;
constexpr SimTime kDrainLong = 120'000'000;  // let retransmissions finish

void SweepLoss(JsonMetrics* metrics) {
  PrintHeader("E3",
              "Vm conservation and delivery under lossy links (dup 10%)");
  workload::TablePrinter table(
      {"loss %", "commit %", "vm created", "vm accepted", "retransmits",
       "retrans/vm", "dup drops", "pure acks", "piggy acks", "live vm @end",
       "conservation"});

  for (double loss : {0.0, 0.1, 0.3, 0.5, 0.7, 0.9}) {
    std::vector<ItemId> items;
    core::Catalog catalog = MakeCountCatalog(2, 2000, &items);
    system::ClusterOptions opts;
    opts.num_sites = 4;
    opts.seed = 1700 + uint64_t(loss * 100);
    opts.link.loss_prob = loss;
    opts.link.duplicate_prob = 0.1;
    system::Cluster cluster(&catalog, opts);
    cluster.BootstrapEven();
    workload::DvpAdapter adapter(&cluster);

    workload::WorkloadOptions w;
    w.arrivals_per_sec = 80;
    w.p_decrement = 0.5;
    w.p_increment = 0.5;
    w.p_read = 0;
    w.site_zipf_theta = 1.5;            // decrements pile onto site 0 ...
    w.increment_site_zipf_theta = 0.0;  // ...while cancellations spread out,
                                        // so value continuously flows as Vm
    w.seed = 3000 + uint64_t(loss * 100);
    workload::WorkloadDriver driver(&adapter, items, w);
    auto results = driver.Run(kRun, kDrainLong);

    uint64_t retrans = 0, dup_drops = 0, pure = 0, piggy = 0;
    for (uint32_t s = 0; s < cluster.num_sites(); ++s) {
      const net::Transport* t = cluster.site(SiteId(s)).transport();
      retrans += t->retransmissions();
      dup_drops += t->dup_drops();
      pure += t->pure_acks();
      piggy += t->piggyback_acks();
    }
    CounterSet counters = cluster.AggregateCounters();
    uint64_t created = counters.Get("vm.created");
    uint64_t accepted = counters.Get("vm.accepted");
    uint64_t live = 0;
    for (ItemId item : items) live += cluster.Audit(item).live_vms;
    Status audit = cluster.AuditAll();

    table.AddRow(Pct(loss), Pct(results.commit_rate()), created, accepted,
                 retrans,
                 created == 0 ? 0.0 : double(retrans) / double(created),
                 dup_drops, pure, piggy, live,
                 audit.ok() ? "OK" : audit.ToString());
    std::string k = "e3.loss" + std::to_string(int(loss * 100)) + ".";
    metrics->Set(k + "committed", results.committed());
    metrics->Set(k + "vm_created", created);
    metrics->Set(k + "vm_accepted", accepted);
    metrics->Set(k + "retransmits", retrans);
    metrics->Set(k + "conservation_ok", uint64_t(audit.ok() ? 1 : 0));
  }
  table.Print();
  std::cout << "\nValue lost is identically zero at every loss rate; only "
               "latency and retransmission cost grow. (Live Vm at the end "
               "are transfers still being retried toward convergence.)\n";
}

void FloodBoundedState(JsonMetrics* metrics) {
  PrintHeader("E3b",
              "Bounded dedup state over a 12k-Vm flood (loss 30%, dup 10%)");

  core::Catalog catalog;
  ItemId item = catalog.AddItem("pool", core::CountDomain::Instance(), 40'000);
  system::ClusterOptions opts;
  opts.num_sites = 4;
  opts.seed = 4242;
  opts.link.loss_prob = 0.3;
  opts.link.duplicate_prob = 0.1;
  system::Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();

  // A ring of direct transfers: every site continuously ships one unit to its
  // neighbour. 3000 sends per site = 12000 Vm total, far beyond any plausible
  // in-flight window, so an unbounded dedup set would be obvious.
  constexpr int kPerSite = 3000;
  constexpr SimTime kGap = 2'000;  // 2ms between sends per site
  size_t accepted_peak_live = 0, dedup_peak_live = 0;
  for (int i = 0; i < kPerSite; ++i) {
    for (uint32_t s = 0; s < 4; ++s) {
      (void)cluster.site(SiteId(s)).SendValue(SiteId((s + 1) % 4), item, 1);
    }
    cluster.RunFor(kGap);
    if (i % 50 == 0) {
      for (uint32_t s = 0; s < 4; ++s) {
        accepted_peak_live = std::max(
            accepted_peak_live, cluster.site(SiteId(s)).vm()->accepted_entries());
        dedup_peak_live = std::max(
            dedup_peak_live,
            cluster.site(SiteId(s)).transport()->dedup_entries());
      }
    }
  }
  cluster.RunFor(60'000'000);  // drain

  uint64_t retrans = 0, dup_drops = 0;
  size_t accepted_now = 0, accepted_peak = 0, dedup_now = 0, dedup_peak = 0;
  uint64_t lifetime_accepts = 0;
  for (uint32_t s = 0; s < 4; ++s) {
    const net::Transport* t = cluster.site(SiteId(s)).transport();
    retrans += t->retransmissions();
    dup_drops += t->dup_drops();
    dedup_now += t->dedup_entries();
    dedup_peak = std::max(dedup_peak, t->dedup_peak());
    const vm::VmManager* v = cluster.site(SiteId(s)).vm();
    accepted_now += v->accepted_entries();
    accepted_peak = std::max(accepted_peak, v->accepted_entries_peak());
    lifetime_accepts += v->accept_count();
  }
  Status audit = cluster.AuditAll();

  workload::TablePrinter table(
      {"vm created", "vm accepted", "retransmits", "dup drops",
       "accepted-set now", "accepted-set peak", "dedup-window peak",
       "conservation"});
  table.AddRow(uint64_t(4 * kPerSite), lifetime_accepts, retrans, dup_drops,
               accepted_now, std::max(accepted_peak, accepted_peak_live),
               std::max(dedup_peak, dedup_peak_live),
               audit.ok() ? "OK" : audit.ToString());
  table.Print();
  std::cout << "\n12000 Vm flowed through. The dedup footprint is bounded by "
               "the retransmission window, not the lifetime count: the "
               "cumulative closed-below watermark stalls behind the oldest "
               "transfer still in retransmission, so under sustained 30% "
               "loss the accepted-set peaks at a fraction of the flood and "
               "drains to zero once the channels close (the final watermark "
               "rides a reliable closure notification).\n";
  metrics->Set("e3b.vm_created", uint64_t(4 * kPerSite));
  metrics->Set("e3b.vm_accepted", lifetime_accepts);
  metrics->Set("e3b.accepted_set_now", uint64_t(accepted_now));
  metrics->Set("e3b.dedup_window_peak",
               uint64_t(std::max(dedup_peak, dedup_peak_live)));
  metrics->Set("e3b.conservation_ok", uint64_t(audit.ok() ? 1 : 0));
}

void Main(const std::string& json_path) {
  JsonMetrics metrics;
  SweepLoss(&metrics);
  FloodBoundedState(&metrics);
  metrics.WriteTo(json_path);
}

}  // namespace
}  // namespace dvp::bench

int main(int argc, char** argv) {
  dvp::bench::Main(dvp::bench::JsonPathFromArgs(argc, argv));
}
