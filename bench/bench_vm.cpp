// E3 — Virtual messages never lose value (paper §4.2).
//
// Claim: under arbitrary link loss/duplication/delay, the conservation
// invariant Σ fragments + in-flight Vm = initial + committed deltas holds at
// the end of every run, and every Vm is eventually accepted exactly once.
// Cost: retransmissions grow with the loss rate; commit rate degrades only
// because gathers time out, never because value vanishes.
//
// Sweep: per-packet loss probability 0%..90%, duplication 10%, heavy
// redistribution (skewed demand).
#include "bench/bench_common.h"

namespace dvp::bench {
namespace {

constexpr SimTime kRun = 30'000'000;
constexpr SimTime kDrainLong = 120'000'000;  // let retransmissions finish

void Main() {
  PrintHeader("E3",
              "Vm conservation and delivery under lossy links (dup 10%)");
  workload::TablePrinter table(
      {"loss %", "commit %", "vm created", "vm accepted", "retransmits",
       "retrans/vm", "live vm @end", "conservation"});

  for (double loss : {0.0, 0.1, 0.3, 0.5, 0.7, 0.9}) {
    std::vector<ItemId> items;
    core::Catalog catalog = MakeCountCatalog(2, 2000, &items);
    system::ClusterOptions opts;
    opts.num_sites = 4;
    opts.seed = 1700 + uint64_t(loss * 100);
    opts.link.loss_prob = loss;
    opts.link.duplicate_prob = 0.1;
    system::Cluster cluster(&catalog, opts);
    cluster.BootstrapEven();
    workload::DvpAdapter adapter(&cluster);

    workload::WorkloadOptions w;
    w.arrivals_per_sec = 80;
    w.p_decrement = 0.5;
    w.p_increment = 0.5;
    w.p_read = 0;
    w.site_zipf_theta = 1.5;            // decrements pile onto site 0 ...
    w.increment_site_zipf_theta = 0.0;  // ...while cancellations spread out,
                                        // so value continuously flows as Vm
    w.seed = 3000 + uint64_t(loss * 100);
    workload::WorkloadDriver driver(&adapter, items, w);
    auto results = driver.Run(kRun, kDrainLong);

    uint64_t retrans = 0;
    for (uint32_t s = 0; s < cluster.num_sites(); ++s) {
      retrans += cluster.site(SiteId(s)).transport()->retransmissions();
    }
    CounterSet counters = cluster.AggregateCounters();
    uint64_t created = counters.Get("vm.created");
    uint64_t accepted = counters.Get("vm.accepted");
    uint64_t live = 0;
    for (ItemId item : items) live += cluster.Audit(item).live_vms;
    Status audit = cluster.AuditAll();

    table.AddRow(Pct(loss), Pct(results.commit_rate()), created, accepted,
                 retrans,
                 created == 0 ? 0.0 : double(retrans) / double(created), live,
                 audit.ok() ? "OK" : audit.ToString());
  }
  table.Print();
  std::cout << "\nValue lost is identically zero at every loss rate; only "
               "latency and retransmission cost grow. (Live Vm at the end "
               "are transfers still being retried toward convergence.)\n";
}

}  // namespace
}  // namespace dvp::bench

int main() { dvp::bench::Main(); }
