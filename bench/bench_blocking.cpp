// E1 — Non-blocking behaviour (paper §2, §5).
//
// Claim: a DvP transaction always reaches a commit/abort decision within a
// bounded number of locally-measured steps (here: bounded virtual time ≈
// timeout + local work), no matter when partitions strike. A 2PC participant
// caught in the uncertainty window can be blocked for the entire partition;
// transactions at the horizon may still be undecided.
//
// Sweep: partition injection period (how often a random 2-way split of 300ms
// hits the 4-site network), identical workload on DvP and 2PC/write-all.
#include <cassert>

#include "baseline/twopc.h"
#include "bench/bench_common.h"

namespace dvp::bench {
namespace {

constexpr SimTime kRun = 60'000'000;       // 60 s of virtual time
constexpr SimTime kDrain = 5'000'000;      // decisions may finish here
constexpr SimTime kSplitLen = 300'000;     // each partition lasts 300 ms
constexpr SimTime kTimeout = 300'000;      // DvP redistribution timeout

struct Row {
  std::string system;
  SimTime period;
  workload::WorkloadResults results;
  double max_blocked_ms = 0;
  uint64_t undecided = 0;
};

Row RunDvp(SimTime period_us) {
  std::vector<ItemId> items;
  core::Catalog catalog = MakeCountCatalog(4, 400, &items);
  system::ClusterOptions opts;
  opts.num_sites = 4;
  opts.seed = 99;
  opts.site.txn.timeout_us = kTimeout;
  system::Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();
  workload::DvpAdapter adapter(&cluster);

  workload::WorkloadOptions w;
  w.arrivals_per_sec = 150;
  // Balanced mix: the totals stay near steady state, so aborts measure the
  // protocol (conflicts, partitions), not resource exhaustion. Site skew
  // concentrates demand so redistribution actually happens.
  w.p_decrement = 0.5;
  w.p_increment = 0.5;
  w.p_read = 0;  // full reads are E5's subject
  w.site_zipf_theta = 0.8;
  w.seed = 5 + uint64_t(period_us);
  workload::WorkloadDriver driver(&adapter, items, w);

  PartitionInjector injector(&adapter, period_us, kSplitLen, 77);
  injector.Start(kRun);

  Row row;
  row.system = "DvP";
  row.period = period_us;
  row.results = driver.Run(kRun, kDrain);
  // Every split must have healed inside the injection window: the drain
  // phase measures decision tails, not a leftover partition.
  assert(injector.healed_at_end());
  row.undecided = row.results.submitted - row.results.decided();
  return row;
}

Row Run2pc(SimTime period_us) {
  std::vector<ItemId> items;
  core::Catalog catalog = MakeCountCatalog(4, 400, &items);
  baseline::TwoPcOptions opts;
  opts.num_sites = 4;
  opts.seed = 99;
  opts.policy = baseline::ReplicaPolicy::kWriteAll;
  opts.coordinator_timeout_us = kTimeout;
  baseline::TwoPcCluster cluster(&catalog, opts);
  cluster.Bootstrap();
  workload::TwoPcAdapter adapter(&cluster, "2PC");

  workload::WorkloadOptions w;
  w.arrivals_per_sec = 150;
  // Balanced mix: the totals stay near steady state, so aborts measure the
  // protocol (conflicts, partitions), not resource exhaustion. Site skew
  // concentrates demand so redistribution actually happens.
  w.p_decrement = 0.5;
  w.p_increment = 0.5;
  w.p_read = 0;  // full reads are E5's subject
  w.site_zipf_theta = 0.8;
  w.seed = 5 + uint64_t(period_us);
  workload::WorkloadDriver driver(&adapter, items, w);

  PartitionInjector injector(&adapter, period_us, kSplitLen, 77);
  injector.Start(kRun);

  Row row;
  row.system = "2PC";
  row.period = period_us;
  row.results = driver.Run(kRun, kDrain);
  assert(injector.healed_at_end());
  row.undecided = row.results.submitted - row.results.decided();
  row.max_blocked_ms = cluster.blocked_time().max() / 1000.0;
  return row;
}

void Main() {
  PrintHeader("E1",
              "non-blocking: decision latency is bounded for DvP; 2PC "
              "participants block across partitions");
  workload::TablePrinter table(
      {"system", "split every (s)", "commit %", "decided %",
       "p99 decision (ms)", "max decision (ms)", "undecided@end",
       "max blocked (ms)"});
  for (SimTime period : {20'000'000, 5'000'000, 2'000'000, 1'000'000}) {
    for (bool dvp : {true, false}) {
      Row row = dvp ? RunDvp(period) : Run2pc(period);
      const auto& r = row.results;
      table.AddRow(
          row.system, double(period) / 1e6, Pct(r.commit_rate()),
          Pct(double(r.decided()) / double(std::max<uint64_t>(1, r.submitted))),
          r.decision_latency_us.P99() / 1000.0,
          r.decision_latency_us.max() / 1000.0, row.undecided,
          row.max_blocked_ms);
    }
  }
  table.Print();
  std::cout << "\nDvP bound: timeout (" << kTimeout / 1000
            << " ms) + local work. Any 2PC row with max-decision or "
               "max-blocked well above that is the blocking behaviour the "
               "paper predicts.\n";
}

}  // namespace
}  // namespace dvp::bench

int main() { dvp::bench::Main(); }
