# Empty dependencies file for bench_timeout.
# This may be replaced when dependencies are built.
