file(REMOVE_RECURSE
  "CMakeFiles/bench_timeout.dir/bench_timeout.cpp.o"
  "CMakeFiles/bench_timeout.dir/bench_timeout.cpp.o.d"
  "bench_timeout"
  "bench_timeout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_timeout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
