file(REMOVE_RECURSE
  "CMakeFiles/bench_vm.dir/bench_vm.cpp.o"
  "CMakeFiles/bench_vm.dir/bench_vm.cpp.o.d"
  "bench_vm"
  "bench_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
