file(REMOVE_RECURSE
  "CMakeFiles/bench_redistribution.dir/bench_redistribution.cpp.o"
  "CMakeFiles/bench_redistribution.dir/bench_redistribution.cpp.o.d"
  "bench_redistribution"
  "bench_redistribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_redistribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
