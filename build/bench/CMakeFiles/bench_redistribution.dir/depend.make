# Empty dependencies file for bench_redistribution.
# This may be replaced when dependencies are built.
