file(REMOVE_RECURSE
  "CMakeFiles/bench_conc.dir/bench_conc.cpp.o"
  "CMakeFiles/bench_conc.dir/bench_conc.cpp.o.d"
  "bench_conc"
  "bench_conc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
