# Empty compiler generated dependencies file for bench_conc.
# This may be replaced when dependencies are built.
