file(REMOVE_RECURSE
  "CMakeFiles/conservation_property_test.dir/conservation_property_test.cpp.o"
  "CMakeFiles/conservation_property_test.dir/conservation_property_test.cpp.o.d"
  "conservation_property_test"
  "conservation_property_test.pdb"
  "conservation_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conservation_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
