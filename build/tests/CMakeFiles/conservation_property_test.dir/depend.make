# Empty dependencies file for conservation_property_test.
# This may be replaced when dependencies are built.
