# Empty dependencies file for dvpcore_test.
# This may be replaced when dependencies are built.
