file(REMOVE_RECURSE
  "CMakeFiles/dvpcore_test.dir/dvpcore_test.cpp.o"
  "CMakeFiles/dvpcore_test.dir/dvpcore_test.cpp.o.d"
  "dvpcore_test"
  "dvpcore_test.pdb"
  "dvpcore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvpcore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
