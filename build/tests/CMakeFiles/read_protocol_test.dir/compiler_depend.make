# Empty compiler generated dependencies file for read_protocol_test.
# This may be replaced when dependencies are built.
