file(REMOVE_RECURSE
  "CMakeFiles/read_protocol_test.dir/read_protocol_test.cpp.o"
  "CMakeFiles/read_protocol_test.dir/read_protocol_test.cpp.o.d"
  "read_protocol_test"
  "read_protocol_test.pdb"
  "read_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/read_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
