
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hybrid_test.cpp" "tests/CMakeFiles/hybrid_test.dir/hybrid_test.cpp.o" "gcc" "tests/CMakeFiles/hybrid_test.dir/hybrid_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/system/CMakeFiles/dvp_system.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/dvp_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dvp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/site/CMakeFiles/dvp_site.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/dvp_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/dvp_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/dvp_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/dvp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/dvpcore/CMakeFiles/dvp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/dvp_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dvp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dvp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/wal/CMakeFiles/dvp_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dvp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
