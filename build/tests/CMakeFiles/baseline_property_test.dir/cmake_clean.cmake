file(REMOVE_RECURSE
  "CMakeFiles/baseline_property_test.dir/baseline_property_test.cpp.o"
  "CMakeFiles/baseline_property_test.dir/baseline_property_test.cpp.o.d"
  "baseline_property_test"
  "baseline_property_test.pdb"
  "baseline_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
