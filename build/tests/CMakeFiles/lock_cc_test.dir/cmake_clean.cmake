file(REMOVE_RECURSE
  "CMakeFiles/lock_cc_test.dir/lock_cc_test.cpp.o"
  "CMakeFiles/lock_cc_test.dir/lock_cc_test.cpp.o.d"
  "lock_cc_test"
  "lock_cc_test.pdb"
  "lock_cc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_cc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
