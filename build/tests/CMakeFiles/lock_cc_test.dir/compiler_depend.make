# Empty compiler generated dependencies file for lock_cc_test.
# This may be replaced when dependencies are built.
