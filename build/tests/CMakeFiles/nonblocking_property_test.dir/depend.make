# Empty dependencies file for nonblocking_property_test.
# This may be replaced when dependencies are built.
