file(REMOVE_RECURSE
  "CMakeFiles/nonblocking_property_test.dir/nonblocking_property_test.cpp.o"
  "CMakeFiles/nonblocking_property_test.dir/nonblocking_property_test.cpp.o.d"
  "nonblocking_property_test"
  "nonblocking_property_test.pdb"
  "nonblocking_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonblocking_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
