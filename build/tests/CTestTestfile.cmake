# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/cluster_basic_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/wal_test[1]_include.cmake")
include("/root/repo/build/tests/dvpcore_test[1]_include.cmake")
include("/root/repo/build/tests/lock_cc_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/txn_protocol_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/conservation_property_test[1]_include.cmake")
include("/root/repo/build/tests/serializability_property_test[1]_include.cmake")
include("/root/repo/build/tests/nonblocking_property_test[1]_include.cmake")
include("/root/repo/build/tests/read_protocol_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/verify_test[1]_include.cmake")
include("/root/repo/build/tests/hybrid_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_api_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_decode_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_property_test[1]_include.cmake")
include("/root/repo/build/tests/site_test[1]_include.cmake")
