# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_banking "/root/repo/build/examples/banking")
set_tests_properties(example_banking PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_inventory "/root/repo/build/examples/inventory")
set_tests_properties(example_inventory PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_partition_demo "/root/repo/build/examples/partition_demo")
set_tests_properties(example_partition_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_simulate "/root/repo/build/examples/simulate" "--sites=4" "--duration-s=5" "--rate=100" "--loss=0.1")
set_tests_properties(example_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
