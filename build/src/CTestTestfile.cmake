# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("net")
subdirs("wal")
subdirs("dvpcore")
subdirs("vm")
subdirs("cc")
subdirs("txn")
subdirs("recovery")
subdirs("site")
subdirs("system")
subdirs("verify")
subdirs("baseline")
subdirs("workload")
