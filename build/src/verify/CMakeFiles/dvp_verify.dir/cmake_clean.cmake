file(REMOVE_RECURSE
  "CMakeFiles/dvp_verify.dir/conservation.cc.o"
  "CMakeFiles/dvp_verify.dir/conservation.cc.o.d"
  "CMakeFiles/dvp_verify.dir/serializability.cc.o"
  "CMakeFiles/dvp_verify.dir/serializability.cc.o.d"
  "libdvp_verify.a"
  "libdvp_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvp_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
