file(REMOVE_RECURSE
  "libdvp_verify.a"
)
