# Empty dependencies file for dvp_verify.
# This may be replaced when dependencies are built.
