file(REMOVE_RECURSE
  "CMakeFiles/dvp_vm.dir/vm_manager.cc.o"
  "CMakeFiles/dvp_vm.dir/vm_manager.cc.o.d"
  "libdvp_vm.a"
  "libdvp_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvp_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
