# Empty dependencies file for dvp_vm.
# This may be replaced when dependencies are built.
