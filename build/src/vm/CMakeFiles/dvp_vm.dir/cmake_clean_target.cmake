file(REMOVE_RECURSE
  "libdvp_vm.a"
)
