file(REMOVE_RECURSE
  "CMakeFiles/dvp_baseline.dir/escrow.cc.o"
  "CMakeFiles/dvp_baseline.dir/escrow.cc.o.d"
  "CMakeFiles/dvp_baseline.dir/primary_copy.cc.o"
  "CMakeFiles/dvp_baseline.dir/primary_copy.cc.o.d"
  "CMakeFiles/dvp_baseline.dir/twopc.cc.o"
  "CMakeFiles/dvp_baseline.dir/twopc.cc.o.d"
  "libdvp_baseline.a"
  "libdvp_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvp_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
