file(REMOVE_RECURSE
  "libdvp_baseline.a"
)
