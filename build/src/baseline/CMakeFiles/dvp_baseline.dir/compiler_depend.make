# Empty compiler generated dependencies file for dvp_baseline.
# This may be replaced when dependencies are built.
