file(REMOVE_RECURSE
  "libdvp_system.a"
)
