# Empty compiler generated dependencies file for dvp_system.
# This may be replaced when dependencies are built.
