file(REMOVE_RECURSE
  "CMakeFiles/dvp_system.dir/cluster.cc.o"
  "CMakeFiles/dvp_system.dir/cluster.cc.o.d"
  "CMakeFiles/dvp_system.dir/hybrid.cc.o"
  "CMakeFiles/dvp_system.dir/hybrid.cc.o.d"
  "CMakeFiles/dvp_system.dir/retry_client.cc.o"
  "CMakeFiles/dvp_system.dir/retry_client.cc.o.d"
  "libdvp_system.a"
  "libdvp_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvp_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
