# Empty compiler generated dependencies file for dvp_txn.
# This may be replaced when dependencies are built.
