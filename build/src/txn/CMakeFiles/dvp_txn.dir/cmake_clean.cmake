file(REMOVE_RECURSE
  "CMakeFiles/dvp_txn.dir/txn_manager.cc.o"
  "CMakeFiles/dvp_txn.dir/txn_manager.cc.o.d"
  "libdvp_txn.a"
  "libdvp_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvp_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
