file(REMOVE_RECURSE
  "libdvp_txn.a"
)
