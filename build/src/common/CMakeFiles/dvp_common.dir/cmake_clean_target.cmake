file(REMOVE_RECURSE
  "libdvp_common.a"
)
