# Empty compiler generated dependencies file for dvp_common.
# This may be replaced when dependencies are built.
