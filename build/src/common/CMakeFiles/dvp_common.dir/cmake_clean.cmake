file(REMOVE_RECURSE
  "CMakeFiles/dvp_common.dir/histogram.cc.o"
  "CMakeFiles/dvp_common.dir/histogram.cc.o.d"
  "CMakeFiles/dvp_common.dir/rng.cc.o"
  "CMakeFiles/dvp_common.dir/rng.cc.o.d"
  "CMakeFiles/dvp_common.dir/status.cc.o"
  "CMakeFiles/dvp_common.dir/status.cc.o.d"
  "libdvp_common.a"
  "libdvp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
