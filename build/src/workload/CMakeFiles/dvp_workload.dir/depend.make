# Empty dependencies file for dvp_workload.
# This may be replaced when dependencies are built.
