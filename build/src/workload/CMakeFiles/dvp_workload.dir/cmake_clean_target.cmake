file(REMOVE_RECURSE
  "libdvp_workload.a"
)
