file(REMOVE_RECURSE
  "CMakeFiles/dvp_workload.dir/generator.cc.o"
  "CMakeFiles/dvp_workload.dir/generator.cc.o.d"
  "libdvp_workload.a"
  "libdvp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
