
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/site/site.cc" "src/site/CMakeFiles/dvp_site.dir/site.cc.o" "gcc" "src/site/CMakeFiles/dvp_site.dir/site.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/txn/CMakeFiles/dvp_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/dvp_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/dvp_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/cc/CMakeFiles/dvp_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/dvpcore/CMakeFiles/dvp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dvp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dvp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/wal/CMakeFiles/dvp_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dvp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
