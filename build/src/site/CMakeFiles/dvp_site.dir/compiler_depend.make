# Empty compiler generated dependencies file for dvp_site.
# This may be replaced when dependencies are built.
