file(REMOVE_RECURSE
  "CMakeFiles/dvp_site.dir/site.cc.o"
  "CMakeFiles/dvp_site.dir/site.cc.o.d"
  "libdvp_site.a"
  "libdvp_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvp_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
