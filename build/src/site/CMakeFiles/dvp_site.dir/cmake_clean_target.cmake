file(REMOVE_RECURSE
  "libdvp_site.a"
)
