# Empty dependencies file for dvp_recovery.
# This may be replaced when dependencies are built.
