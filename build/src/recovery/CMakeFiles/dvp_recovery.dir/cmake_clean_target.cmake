file(REMOVE_RECURSE
  "libdvp_recovery.a"
)
