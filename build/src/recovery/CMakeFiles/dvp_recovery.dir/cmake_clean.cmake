file(REMOVE_RECURSE
  "CMakeFiles/dvp_recovery.dir/recovery.cc.o"
  "CMakeFiles/dvp_recovery.dir/recovery.cc.o.d"
  "libdvp_recovery.a"
  "libdvp_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvp_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
