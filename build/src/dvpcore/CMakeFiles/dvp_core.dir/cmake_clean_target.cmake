file(REMOVE_RECURSE
  "libdvp_core.a"
)
