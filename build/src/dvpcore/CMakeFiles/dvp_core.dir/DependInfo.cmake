
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dvpcore/catalog.cc" "src/dvpcore/CMakeFiles/dvp_core.dir/catalog.cc.o" "gcc" "src/dvpcore/CMakeFiles/dvp_core.dir/catalog.cc.o.d"
  "/root/repo/src/dvpcore/domain.cc" "src/dvpcore/CMakeFiles/dvp_core.dir/domain.cc.o" "gcc" "src/dvpcore/CMakeFiles/dvp_core.dir/domain.cc.o.d"
  "/root/repo/src/dvpcore/operators.cc" "src/dvpcore/CMakeFiles/dvp_core.dir/operators.cc.o" "gcc" "src/dvpcore/CMakeFiles/dvp_core.dir/operators.cc.o.d"
  "/root/repo/src/dvpcore/value_store.cc" "src/dvpcore/CMakeFiles/dvp_core.dir/value_store.cc.o" "gcc" "src/dvpcore/CMakeFiles/dvp_core.dir/value_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dvp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
