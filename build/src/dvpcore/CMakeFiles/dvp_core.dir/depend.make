# Empty dependencies file for dvp_core.
# This may be replaced when dependencies are built.
