file(REMOVE_RECURSE
  "CMakeFiles/dvp_core.dir/catalog.cc.o"
  "CMakeFiles/dvp_core.dir/catalog.cc.o.d"
  "CMakeFiles/dvp_core.dir/domain.cc.o"
  "CMakeFiles/dvp_core.dir/domain.cc.o.d"
  "CMakeFiles/dvp_core.dir/operators.cc.o"
  "CMakeFiles/dvp_core.dir/operators.cc.o.d"
  "CMakeFiles/dvp_core.dir/value_store.cc.o"
  "CMakeFiles/dvp_core.dir/value_store.cc.o.d"
  "libdvp_core.a"
  "libdvp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
