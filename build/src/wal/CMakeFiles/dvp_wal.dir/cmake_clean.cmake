file(REMOVE_RECURSE
  "CMakeFiles/dvp_wal.dir/encoding.cc.o"
  "CMakeFiles/dvp_wal.dir/encoding.cc.o.d"
  "CMakeFiles/dvp_wal.dir/record.cc.o"
  "CMakeFiles/dvp_wal.dir/record.cc.o.d"
  "CMakeFiles/dvp_wal.dir/stable_storage.cc.o"
  "CMakeFiles/dvp_wal.dir/stable_storage.cc.o.d"
  "libdvp_wal.a"
  "libdvp_wal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvp_wal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
