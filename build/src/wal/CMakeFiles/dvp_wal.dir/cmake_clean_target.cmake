file(REMOVE_RECURSE
  "libdvp_wal.a"
)
