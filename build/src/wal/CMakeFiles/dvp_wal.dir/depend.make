# Empty dependencies file for dvp_wal.
# This may be replaced when dependencies are built.
