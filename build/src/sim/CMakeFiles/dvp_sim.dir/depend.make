# Empty dependencies file for dvp_sim.
# This may be replaced when dependencies are built.
