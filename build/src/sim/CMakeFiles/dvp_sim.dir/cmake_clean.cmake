file(REMOVE_RECURSE
  "CMakeFiles/dvp_sim.dir/kernel.cc.o"
  "CMakeFiles/dvp_sim.dir/kernel.cc.o.d"
  "libdvp_sim.a"
  "libdvp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
