file(REMOVE_RECURSE
  "libdvp_sim.a"
)
