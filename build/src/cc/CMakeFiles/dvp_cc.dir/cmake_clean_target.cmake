file(REMOVE_RECURSE
  "libdvp_cc.a"
)
