file(REMOVE_RECURSE
  "CMakeFiles/dvp_cc.dir/lock_manager.cc.o"
  "CMakeFiles/dvp_cc.dir/lock_manager.cc.o.d"
  "libdvp_cc.a"
  "libdvp_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvp_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
