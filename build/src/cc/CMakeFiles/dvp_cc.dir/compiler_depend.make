# Empty compiler generated dependencies file for dvp_cc.
# This may be replaced when dependencies are built.
