file(REMOVE_RECURSE
  "CMakeFiles/dvp_net.dir/network.cc.o"
  "CMakeFiles/dvp_net.dir/network.cc.o.d"
  "CMakeFiles/dvp_net.dir/partition.cc.o"
  "CMakeFiles/dvp_net.dir/partition.cc.o.d"
  "CMakeFiles/dvp_net.dir/transport.cc.o"
  "CMakeFiles/dvp_net.dir/transport.cc.o.d"
  "libdvp_net.a"
  "libdvp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
