file(REMOVE_RECURSE
  "libdvp_net.a"
)
