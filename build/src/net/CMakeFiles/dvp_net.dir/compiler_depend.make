# Empty compiler generated dependencies file for dvp_net.
# This may be replaced when dependencies are built.
