// Multi-item atomic sets under chaos: transfers and orders mixed into the
// adversarial swarm. The cross-item oracles (every atomic commit record
// zero-sum; the whole item set conserving with atomic records excluded) run
// with the standard suite at probe instants and after the drain, so a
// multi-op that commits one leg without the other — or aborts without
// returning its partial gathers — surfaces as an oracle violation here.
//
// Layers follow conservation_property_test: pinned fault mixes, generated
// FaultPlan swarm seeds, one audit-after-every-event case, and pinned
// regression cases for bugs the multi-op work exposed.
#include <gtest/gtest.h>

#include "chaos/fault_plan.h"
#include "chaos/harness.h"
#include "system/cluster.h"
#include "verify/serializability.h"
#include "workload/adapter.h"
#include "workload/generator.h"

namespace dvp {
namespace {

chaos::WorkloadSpec MultiopWorkload(uint32_t transfer_permille,
                                    uint32_t order_permille) {
  chaos::WorkloadSpec w;
  w.sites = 4;
  w.items = 3;
  w.total = 300;
  w.txns = 80;
  w.gap_us = 25'000;
  w.read_permille = 100;
  w.redist_permille = 200;
  w.max_amount = 12;
  w.timeout_us = 150'000;
  w.transfer_permille = transfer_permille;
  w.order_permille = order_permille;
  return w;
}

struct MultiopCase {
  const char* name;
  uint64_t seed;
  uint32_t transfer_permille;
  uint32_t order_permille;
  uint32_t loss_permille;
  bool crashes;
  bool partitions;
};

class MultiopChaosTest : public ::testing::TestWithParam<MultiopCase> {};

TEST_P(MultiopChaosTest, CrossItemInvariantsHoldUnderFaults) {
  const MultiopCase& p = GetParam();

  chaos::ChaosCase c;
  c.seed = p.seed;
  c.workload = MultiopWorkload(p.transfer_permille, p.order_permille);
  c.workload.loss_permille = p.loss_permille;

  chaos::PlanSpec spec;
  spec.num_sites = 4;
  spec.horizon_us = 2'100'000;
  spec.max_events = 12;
  spec.crashes = p.crashes;
  spec.partitions = p.partitions;
  spec.link_faults = false;
  spec.skew = false;
  c.plan = chaos::GeneratePlan(p.seed, spec);

  chaos::RunResult r = chaos::RunCase(c);
  EXPECT_TRUE(r.ok) << p.name << ": " << r.violation << "\n" << c.ToLiteral();
  EXPECT_EQ(r.decided, r.submitted);
  EXPECT_GT(r.events_executed, 100u) << "the run must actually have run";
}

INSTANTIATE_TEST_SUITE_P(
    Pinned, MultiopChaosTest,
    ::testing::Values(
        MultiopCase{"calm_transfers", 11, 400, 0, 0, false, false},
        MultiopCase{"calm_orders", 12, 0, 400, 0, false, false},
        MultiopCase{"mixed", 13, 250, 250, 0, false, false},
        MultiopCase{"lossy", 14, 300, 150, 300, false, false},
        MultiopCase{"crashes", 15, 300, 150, 0, true, false},
        MultiopCase{"partitions", 16, 300, 150, 0, false, true},
        MultiopCase{"everything", 17, 300, 150, 300, true, true}),
    [](const auto& info) { return std::string(info.param.name); });

// Generated swarm: seeds drawn from the same generator the chaos_runner
// uses. MakeSwarmCase mixes transfer/order permille into roughly a third of
// the drawn workloads, so this block exercises multi-op traffic against the
// full generated fault-class mix.
TEST(MultiopSwarm, GeneratedSwarmSeedsHoldAllOracles) {
  uint32_t with_multiops = 0;
  for (uint64_t seed = 9'000; seed < 9'024; ++seed) {
    chaos::ChaosCase c = chaos::MakeSwarmCase(seed);
    if (c.workload.transfer_permille + c.workload.order_permille == 0) {
      continue;  // this block is about the multi-op mixes
    }
    ++with_multiops;
    chaos::RunResult r = chaos::RunCase(c);
    EXPECT_TRUE(r.ok) << "seed " << seed << ": " << r.violation << "\n"
                      << c.ToLiteral();
    EXPECT_EQ(r.decided, r.submitted) << "seed " << seed;
  }
  EXPECT_GE(with_multiops, 4u)
      << "swarm generator stopped drawing multi-op workloads";
}

// The durable cross-item ledger, audited after EVERY simulation event: at no
// instant — mid-gather, mid-abort-return, mid-crash — may the durable view
// show a state the atomic-set records cannot explain.
TEST(MultiopSwarm, AuditAfterEveryEventWithTransfers) {
  chaos::ChaosCase c;
  c.seed = 77;
  c.workload = MultiopWorkload(350, 150);
  c.workload.txns = 50;

  chaos::RunOptions opts;
  opts.audit_every_event = true;
  chaos::RunResult r = chaos::RunCase(c, opts);
  EXPECT_TRUE(r.ok) << r.violation << "\n" << c.ToLiteral();
  EXPECT_EQ(r.decided, r.submitted);
}

// Pinned shrunken swarm case (brace-literal, positional): the smallest
// generated case that drives transfers, orders, an abort-returned partial
// gather and a crash/recovery through one run. Also guards the WorkloadSpec
// literal layout — the transfer/order knobs are the two trailing fields, and
// re-ordering them silently re-maps every reproducer in the tree.
TEST(MultiopRegression, PinnedTransferOrderCrashCase) {
  chaos::ChaosCase c;
  c.seed = 9'102;
  c.perturb_seed = 9'103;
  c.max_jitter_us = 200;
  c.workload = {4, 3, 300, 70, 20'000, chaos::kAnySite, 100, 150,
                10, 120'000, 200, 100, 0, 0, 0, 0, 0, 350, 150};
  c.plan.events = {{200'000, chaos::FaultKind::kCrash, 1, 0},
                   {500'000, chaos::FaultKind::kRecover, 1, 0},
                   {700'000, chaos::FaultKind::kLinkLoss, 0, 600},
                   {1'100'000, chaos::FaultKind::kLinkLoss, 0, 0}};

  chaos::RunResult r = chaos::RunCase(c);
  EXPECT_TRUE(r.ok) << r.violation << "\n" << c.ToLiteral();
  EXPECT_EQ(r.decided, r.submitted);
}

// Regression for the read-termination soundness hole the multi-op abort
// path exposed (found by E13 seed 9102): a multi-op abort returns its
// partial gathers as Vm sends, and such a Vm — created at the READER's own
// site, repeatedly deferred at a destination that keeps the item locked —
// holds value invisible to every remote probe round. The §5 rule ("a read
// may be honored only when no Vm for the item is outstanding here") must
// also gate the reader's own outbox at termination, or the read observes a
// total no serial order can explain. This is the E13 mix shrunk to the
// failing window; pre-fix it fails the exact timestamp-order replay.
TEST(MultiopRegression, ReadDrainWaitsForLocalOutstandingVm) {
  uint64_t seed = 9'102;
  std::vector<ItemId> items;
  core::Catalog catalog;
  for (int i = 0; i < 8; ++i) {
    items.push_back(catalog.AddItem("item" + std::to_string(i),
                                    core::CountDomain::Instance(), 400));
  }

  system::ClusterOptions opts;
  opts.num_sites = 5;
  opts.seed = seed;
  opts.site.txn.targeting = txn::TargetPolicy::kRandom;
  opts.site.txn.timeout_us = 300'000;
  opts.site.txn.multiop_timeout_us = 200'000;
  system::Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();
  workload::DvpAdapter adapter(&cluster);

  workload::WorkloadOptions w;
  w.arrivals_per_sec = 400.0;
  w.p_decrement = 0.20;
  w.p_increment = 0.10;
  w.p_read = 0.05;
  w.p_transfer = 0.45;
  w.p_order = 0.20;
  w.amount_min = 1;
  w.amount_max = 6;
  w.item_zipf_theta = 0.6;
  w.seed = seed * 3 + 1;
  workload::WorkloadDriver driver(&adapter, items, w);

  verify::HistoryChecker checker(&catalog);
  driver.set_on_commit([&](TxnId id, const txn::TxnSpec& spec,
                           const txn::TxnResult& r) {
    checker.RecordCommitAt(adapter.Now(), id, spec, r);
  });
  driver.Run(9'000'000, 3'000'000);

  std::map<ItemId, core::Value> final_totals;
  for (ItemId item : items) final_totals[item] = cluster.TotalOf(item);
  Status ser = checker.Check(verify::HistoryChecker::Order::kTimestamp,
                             &final_totals);
  EXPECT_TRUE(ser.ok()) << ser.ToString();
  EXPECT_TRUE(cluster.AuditAllBulk().ok());
}

}  // namespace
}  // namespace dvp
