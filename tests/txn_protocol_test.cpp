// Transaction-protocol tests beyond the basic airline scenarios: spec
// validation, concurrency-control outcomes, Conc2 mode, compute windows,
// gauge-domain behaviour, fan-out options.
#include <gtest/gtest.h>

#include "system/cluster.h"

namespace dvp {
namespace {

using core::CountDomain;
using core::GaugeDomain;
using txn::TxnOp;
using txn::TxnOutcome;
using txn::TxnResult;
using txn::TxnSpec;

class TxnProtocolTest : public ::testing::Test {
 protected:
  void Build(system::ClusterOptions opts, core::Value total = 400) {
    catalog_ = std::make_unique<core::Catalog>();
    item_ = catalog_->AddItem("pool", CountDomain::Instance(), total);
    gauge_ = catalog_->AddItem("net", GaugeDomain::Instance(), 0);
    cluster_ = std::make_unique<system::Cluster>(catalog_.get(), opts);
    cluster_->BootstrapEven();
  }

  TxnResult SubmitAndRun(SiteId at, const TxnSpec& spec,
                         SimTime run_us = 2'000'000) {
    TxnResult out;
    bool done = false;
    auto submitted = cluster_->Submit(at, spec, [&](const TxnResult& r) {
      out = r;
      done = true;
    });
    EXPECT_TRUE(submitted.ok());
    cluster_->RunFor(run_us);
    EXPECT_TRUE(done);
    return out;
  }

  std::unique_ptr<core::Catalog> catalog_;
  ItemId item_;
  ItemId gauge_;
  std::unique_ptr<system::Cluster> cluster_;
};

TEST_F(TxnProtocolTest, EmptySpecIsInvalid) {
  Build({});
  TxnSpec spec;
  EXPECT_EQ(SubmitAndRun(SiteId(0), spec).outcome, TxnOutcome::kAbortInvalid);
}

TEST_F(TxnProtocolTest, NonPositiveAmountIsInvalid) {
  Build({});
  TxnSpec spec;
  spec.ops = {TxnOp::Decrement(item_, 0)};
  EXPECT_EQ(SubmitAndRun(SiteId(0), spec).outcome, TxnOutcome::kAbortInvalid);
  spec.ops = {TxnOp::Increment(item_, -3)};
  EXPECT_EQ(SubmitAndRun(SiteId(0), spec).outcome, TxnOutcome::kAbortInvalid);
}

TEST_F(TxnProtocolTest, UnknownItemIsInvalid) {
  Build({});
  TxnSpec spec;
  spec.ops = {TxnOp::Increment(ItemId(42), 1)};
  EXPECT_EQ(SubmitAndRun(SiteId(0), spec).outcome, TxnOutcome::kAbortInvalid);
}

TEST_F(TxnProtocolTest, DuplicateItemIsInvalid) {
  Build({});
  TxnSpec spec;
  spec.ops = {TxnOp::Increment(item_, 1), TxnOp::Decrement(item_, 1)};
  EXPECT_EQ(SubmitAndRun(SiteId(0), spec).outcome, TxnOutcome::kAbortInvalid);
}

TEST_F(TxnProtocolTest, SubmitToDownSiteFailsFast) {
  Build({});
  cluster_->CrashSite(SiteId(0));
  TxnSpec spec;
  spec.ops = {TxnOp::Increment(item_, 1)};
  auto submitted = cluster_->Submit(SiteId(0), spec, nullptr);
  EXPECT_FALSE(submitted.ok());
  EXPECT_TRUE(submitted.status().IsUnavailable());
}

TEST_F(TxnProtocolTest, LockConflictAbortsImmediately) {
  system::ClusterOptions opts;
  opts.site.txn.local_compute_us = 50'000;  // first txn holds the lock 50ms
  Build(opts);
  TxnSpec spec;
  spec.ops = {TxnOp::Decrement(item_, 1)};
  bool first_done = false, second_done = false;
  TxnResult second;
  ASSERT_TRUE(cluster_
                  ->Submit(SiteId(0), spec,
                           [&](const TxnResult&) { first_done = true; })
                  .ok());
  ASSERT_TRUE(cluster_
                  ->Submit(SiteId(0), spec,
                           [&](const TxnResult& r) {
                             second = r;
                             second_done = true;
                           })
                  .ok());
  // The conflicting submission decides instantly, before any time passes.
  EXPECT_TRUE(second_done);
  EXPECT_EQ(second.outcome, TxnOutcome::kAbortLockConflict);
  EXPECT_EQ(second.latency_us, 0);
  cluster_->RunFor(200'000);
  EXPECT_TRUE(first_done);
}

TEST_F(TxnProtocolTest, ComputeWindowDelaysCommitButCommits) {
  system::ClusterOptions opts;
  opts.site.txn.local_compute_us = 30'000;
  Build(opts);
  TxnSpec spec;
  spec.ops = {TxnOp::Decrement(item_, 1)};
  TxnResult r = SubmitAndRun(SiteId(0), spec);
  EXPECT_EQ(r.outcome, TxnOutcome::kCommitted);
  EXPECT_GE(r.latency_us, 30'000);
}

TEST_F(TxnProtocolTest, GaugeDecrementNeverNeedsRedistribution) {
  Build({});
  TxnSpec spec;
  spec.ops = {TxnOp::Decrement(gauge_, 1000)};
  TxnResult r = SubmitAndRun(SiteId(0), spec);
  EXPECT_EQ(r.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(r.rounds, 0u);
  EXPECT_EQ(cluster_->site(SiteId(0)).LocalValue(gauge_), -1000);
  EXPECT_EQ(cluster_->TotalOf(gauge_), -1000);
  EXPECT_TRUE(cluster_->AuditAll().ok());
}

TEST_F(TxnProtocolTest, MixedDomainTransaction) {
  Build({});
  TxnSpec spec;
  spec.ops = {TxnOp::Decrement(item_, 5), TxnOp::Increment(gauge_, 5)};
  TxnResult r = SubmitAndRun(SiteId(1), spec);
  EXPECT_EQ(r.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(cluster_->TotalOf(item_), 395);
  EXPECT_EQ(cluster_->TotalOf(gauge_), 5);
}

TEST_F(TxnProtocolTest, MultiItemShortfallGathersBoth) {
  Build({});
  // Drain site 0 on the count item.
  TxnSpec drain;
  drain.ops = {TxnOp::Decrement(item_, 100)};
  ASSERT_EQ(SubmitAndRun(SiteId(0), drain).outcome, TxnOutcome::kCommitted);
  // Needs 60 more than the (now empty) local fragment.
  TxnSpec both;
  both.ops = {TxnOp::Decrement(item_, 60), TxnOp::Increment(gauge_, 1)};
  TxnResult r = SubmitAndRun(SiteId(0), both);
  EXPECT_EQ(r.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(cluster_->TotalOf(item_), 240);
  EXPECT_TRUE(cluster_->AuditAll().ok());
}

// An emergent invariant worth pinning down: a *local* Begin can never fail
// the Conc1 gate, because every stamp on a local fragment was either issued
// by the local clock or accompanied by an Observe of the stamping timestamp.
// Conc1's conservatism therefore bites only at the remote-honor gate, where
// a requester with a lagging clock is refused — and the CcNack carries the
// refuser's clock so a retry succeeds (§7's "bump-up").
TEST_F(TxnProtocolTest, Conc1StaleRequesterRefusedThenNackEnablesRetry) {
  Build({});
  // Artificially age every remote fragment's lock timestamp far beyond
  // site 0's clock (as heavy traffic among sites 1..3 would).
  for (uint32_t s = 1; s < 4; ++s) {
    cluster_->site(SiteId(s)).store()->SetTs(item_,
                                             Timestamp(1000, SiteId(s)));
  }
  // Drain site 0 locally, then demand more than its fragment: the gather
  // requests carry a tiny timestamp and every remote site refuses.
  TxnSpec drain;
  drain.ops = {TxnOp::Decrement(item_, 100)};
  ASSERT_EQ(SubmitAndRun(SiteId(0), drain).outcome, TxnOutcome::kCommitted);
  TxnSpec need;
  need.ops = {TxnOp::Decrement(item_, 50)};
  TxnResult r = SubmitAndRun(SiteId(0), need);
  EXPECT_EQ(r.outcome, TxnOutcome::kAbortTimeout);
  EXPECT_GE(cluster_->AggregateCounters().Get("req.ignored.cc"), 3u);
  // The refusals carried clock NACKs; site 0's clock has caught up and the
  // retry's timestamp dominates the stamps.
  EXPECT_GE(cluster_->AggregateCounters().Get("req.nack_received"), 1u);
  TxnResult retry = SubmitAndRun(SiteId(0), need);
  EXPECT_EQ(retry.outcome, TxnOutcome::kCommitted);
  EXPECT_TRUE(cluster_->AuditAll().ok());
}

TEST_F(TxnProtocolTest, Conc2CommitsWhereConc1WouldReject) {
  system::ClusterOptions opts;
  opts.UseConc2();
  Build(opts);
  TxnSpec spec;
  spec.ops = {TxnOp::Decrement(item_, 1)};
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(SubmitAndRun(SiteId(1), spec).outcome, TxnOutcome::kCommitted);
  }
  TxnSpec big;
  big.ops = {TxnOp::Decrement(item_, 99)};
  ASSERT_EQ(SubmitAndRun(SiteId(1), big).outcome, TxnOutcome::kCommitted);
  TxnSpec local;
  local.ops = {TxnOp::Increment(item_, 1)};
  EXPECT_EQ(SubmitAndRun(SiteId(0), local).outcome, TxnOutcome::kCommitted);
}

TEST_F(TxnProtocolTest, Conc2RedistributionViaBroadcast) {
  system::ClusterOptions opts;
  opts.UseConc2();
  Build(opts);
  TxnSpec drain;
  drain.ops = {TxnOp::Decrement(item_, 100)};
  ASSERT_EQ(SubmitAndRun(SiteId(2), drain).outcome, TxnOutcome::kCommitted);
  TxnSpec need;
  need.ops = {TxnOp::Decrement(item_, 50)};
  TxnResult r = SubmitAndRun(SiteId(2), need);
  EXPECT_EQ(r.outcome, TxnOutcome::kCommitted);
  EXPECT_TRUE(cluster_->AuditAll().ok());
}

TEST_F(TxnProtocolTest, FanoutOneStillGathersFromSingleTarget) {
  system::ClusterOptions opts;
  opts.site.txn.request_fanout = 1;
  Build(opts);
  TxnSpec drain;
  drain.ops = {TxnOp::Decrement(item_, 100)};
  ASSERT_EQ(SubmitAndRun(SiteId(0), drain).outcome, TxnOutcome::kCommitted);
  TxnSpec need;
  need.ops = {TxnOp::Decrement(item_, 50)};
  // Fan-out 1 asks exactly one site for 50; that site holds 100: success.
  TxnResult r = SubmitAndRun(SiteId(0), need);
  EXPECT_EQ(r.outcome, TxnOutcome::kCommitted);
  EXPECT_LE(cluster_->AggregateCounters().Get("req.msgs"), 2u);
}

TEST_F(TxnProtocolTest, DivideShortfallSpreadsTheAsk) {
  system::ClusterOptions opts;
  opts.site.txn.divide_shortfall = true;
  Build(opts);
  TxnSpec drain;
  drain.ops = {TxnOp::Decrement(item_, 100)};
  ASSERT_EQ(SubmitAndRun(SiteId(0), drain).outcome, TxnOutcome::kCommitted);
  TxnSpec need;
  need.ops = {TxnOp::Decrement(item_, 60)};
  TxnResult r = SubmitAndRun(SiteId(0), need);
  EXPECT_EQ(r.outcome, TxnOutcome::kCommitted);
  // Each of 3 targets was asked for ceil(60/3) = 20; little over-shipping.
  EXPECT_LE(cluster_->site(SiteId(0)).LocalValue(item_), 10);
  EXPECT_TRUE(cluster_->AuditAll().ok());
}

TEST_F(TxnProtocolTest, TimeoutLatencyEqualsConfiguredBound) {
  system::ClusterOptions opts;
  opts.site.txn.timeout_us = 123'000;
  Build(opts);
  ASSERT_TRUE(cluster_->Partition({{SiteId(0)}, {SiteId(1), SiteId(2),
                                                 SiteId(3)}})
                  .ok());
  TxnSpec need;
  need.ops = {TxnOp::Decrement(item_, 101)};  // local 100 insufficient
  TxnResult r = SubmitAndRun(SiteId(0), need);
  EXPECT_EQ(r.outcome, TxnOutcome::kAbortTimeout);
  EXPECT_EQ(r.latency_us, 123'000);
}

TEST_F(TxnProtocolTest, SingleSiteClusterWorks) {
  system::ClusterOptions opts;
  opts.num_sites = 1;
  Build(opts);
  TxnSpec spec;
  spec.ops = {TxnOp::Decrement(item_, 10)};
  EXPECT_EQ(SubmitAndRun(SiteId(0), spec).outcome, TxnOutcome::kCommitted);
  // Reads are trivially local.
  TxnSpec read;
  read.ops = {TxnOp::ReadFull(item_)};
  TxnResult r = SubmitAndRun(SiteId(0), read);
  EXPECT_EQ(r.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(r.read_values.at(item_), 390);
  // Insufficient value has nobody to ask: bounded timeout abort.
  TxnSpec huge;
  huge.ops = {TxnOp::Decrement(item_, 1000)};
  EXPECT_EQ(SubmitAndRun(SiteId(0), huge).outcome, TxnOutcome::kAbortTimeout);
}

TEST_F(TxnProtocolTest, AbortedGatherLeavesValueRedistributedNotLost) {
  Build({});
  ASSERT_TRUE(cluster_->Partition({{SiteId(0), SiteId(1)},
                                   {SiteId(2), SiteId(3)}})
                  .ok());
  TxnSpec need;
  need.ops = {TxnOp::Decrement(item_, 180)};  // group holds 200 total
  TxnResult r = SubmitAndRun(SiteId(0), need);
  // Site 1's 100 flowed to site 0 even though the txn aborted (§6: aborted
  // transactions are Rds transactions).
  EXPECT_EQ(r.outcome, TxnOutcome::kCommitted);  // 100+100 = 200 >= 180!
  // Redo with an amount beyond the group's reach:
  TxnSpec over;
  over.ops = {TxnOp::Decrement(item_, 100)};  // only 20 left in the group
  TxnResult r2 = SubmitAndRun(SiteId(0), over);
  EXPECT_EQ(r2.outcome, TxnOutcome::kAbortTimeout);
  EXPECT_EQ(cluster_->TotalOf(item_), 220);
  EXPECT_TRUE(cluster_->AuditAll().ok());
}

}  // namespace
}  // namespace dvp
