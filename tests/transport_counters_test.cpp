// Transport observability under scripted faults: the retransmit, dup-drop,
// pure-ack, piggyback-ack and window-drop counters must tell the true story
// of what the window protocol did — they are what the chaos runner's digests
// and the E3/E10 experiments report.
#include <gtest/gtest.h>

#include <string>

#include "common/histogram.h"
#include "common/rng.h"
#include "net/link.h"
#include "net/message.h"
#include "net/network.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "sim/kernel.h"

namespace dvp {
namespace {

struct TestPayload : net::Envelope {
  explicit TestPayload(uint64_t n) : n(n) {}
  std::string_view Tag() const override { return "TestPayload"; }
  uint64_t n;
};

/// Two transports on a two-site network with controllable links.
struct Pair {
  sim::Kernel kernel;
  net::Network network;
  obs::MetricsRegistry c0, c1;
  net::Transport t0, t1;
  uint64_t delivered_at_1 = 0;

  explicit Pair(net::LinkParams link,
                net::Transport::Options opts = {})
      : network(&kernel, 2, link, Rng(7)),
        t0(&kernel, &network, SiteId(0), &c0, opts),
        t1(&kernel, &network, SiteId(1), &c1, opts) {
    network.RegisterEndpoint(
        SiteId(0), [this](const net::Packet& p) { t0.OnPacket(p); },
        []() { return true; });
    network.RegisterEndpoint(
        SiteId(1), [this](const net::Packet& p) { t1.OnPacket(p); },
        []() { return true; });
    t0.set_deliver_fn([this](SiteId, net::EnvelopePtr) {
      ++delivered_at_1;  // t0's deliveries are unused; reuse for simplicity
      return true;
    });
    t1.set_deliver_fn([this](SiteId, net::EnvelopePtr) {
      ++delivered_at_1;
      return true;
    });
  }
};

TEST(TransportCounters, RetransmitUnderScriptedLoss) {
  // Loss-free at first, then the 0→1 direction drops everything for a
  // while: every pending payload must be retried and counted.
  net::LinkParams clean = net::LinkParams::Synchronous(1'000);
  Pair p(clean);

  net::LinkParams dead = clean;
  dead.loss_prob = 1.0;
  p.network.SetLinkParams(SiteId(0), SiteId(1), dead);

  for (uint64_t i = 0; i < 4; ++i) {
    p.t0.SendReliable(SiteId(1), 100 + i,
                      std::make_shared<TestPayload>(i));
  }
  p.kernel.Run(400'000);
  EXPECT_EQ(p.delivered_at_1, 0u);
  uint64_t retx_during_loss = p.c0.Get("transport.retransmit");
  EXPECT_GT(retx_during_loss, 0u) << "silence must trigger retransmission";
  EXPECT_EQ(p.t0.outstanding(), 4u);

  // Heal the link: everything drains, each payload exactly once.
  p.network.SetLinkParams(SiteId(0), SiteId(1), clean);
  p.kernel.Run(4'000'000);
  EXPECT_EQ(p.delivered_at_1, 4u);
  EXPECT_EQ(p.t0.outstanding(), 0u);
  EXPECT_EQ(p.c0.Get("transport.retransmit"), p.t0.retransmissions());
}

TEST(TransportCounters, DupDropUnderDuplicatingLink) {
  net::LinkParams dupy = net::LinkParams::Synchronous(1'000);
  dupy.duplicate_prob = 0.8;
  Pair p(dupy);

  for (uint64_t i = 0; i < 10; ++i) {
    p.t0.SendReliable(SiteId(1), 200 + i,
                      std::make_shared<TestPayload>(i));
  }
  p.kernel.Run(5'000'000);
  EXPECT_EQ(p.delivered_at_1, 10u) << "dedup must not lose originals";
  EXPECT_GT(p.c1.Get("transport.dup_drop"), 0u)
      << "an 80% duplicating link must produce dropped duplicates";
  EXPECT_EQ(p.c1.Get("transport.dup_drop"), p.t1.dup_drops());
}

TEST(TransportCounters, PureAckCoversQuietReverseChannel) {
  // One-directional traffic: site 1 never sends payloads, so its cumulative
  // acks can't piggyback — the delayed pure ack must fire instead, and the
  // sender must then stop retransmitting.
  net::LinkParams clean = net::LinkParams::Synchronous(1'000);
  Pair p(clean);

  p.t0.SendReliable(SiteId(1), 300, std::make_shared<TestPayload>(1));
  p.kernel.Run(2'000'000);
  EXPECT_EQ(p.delivered_at_1, 1u);
  EXPECT_EQ(p.t0.outstanding(), 0u) << "the ack must complete the send";
  EXPECT_GT(p.c1.Get("transport.ack_pure"), 0u);
  EXPECT_EQ(p.c0.Get("transport.retransmit"), 0u)
      << "a healthy link with working acks needs no retransmission";
}

TEST(TransportCounters, PiggybackAckRidesReverseTraffic) {
  net::LinkParams clean = net::LinkParams::Synchronous(1'000);
  Pair p(clean);

  // Forward payloads arrive at ~1 ms; the reverse payloads go out at 5 ms —
  // inside the 10 ms delayed-ack window — so the owed acks must ride them.
  for (uint64_t i = 0; i < 6; ++i) {
    p.t0.SendReliable(SiteId(1), 400 + i, std::make_shared<TestPayload>(i));
  }
  p.kernel.ScheduleAt(5'000, [&p]() {
    for (uint64_t i = 0; i < 6; ++i) {
      p.t1.SendReliable(SiteId(0), 500 + i, std::make_shared<TestPayload>(i));
    }
  });
  p.kernel.Run(2'000'000);
  EXPECT_EQ(p.delivered_at_1, 12u);
  EXPECT_GT(p.c0.Get("transport.ack_piggyback") +
                p.c1.Get("transport.ack_piggyback"),
            0u);
}

TEST(TransportCounters, WindowDropBoundsOutOfOrderState) {
  // A tiny receive window plus a one-way block: release the first packet
  // late so everything beyond the window lands out of order and is dropped
  // (then recovered by retransmission).
  net::LinkParams clean = net::LinkParams::Synchronous(1'000);
  net::Transport::Options opts;
  opts.recv_window = 2;
  opts.rto_us = 30'000;
  Pair p(clean, opts);

  // First payload delayed enormously on 0→1; the rest go through fast.
  net::LinkParams slow = clean;
  slow.base_delay_us = 200'000;
  p.network.SetLinkParams(SiteId(0), SiteId(1), slow);
  p.t0.SendReliable(SiteId(1), 600, std::make_shared<TestPayload>(0));
  p.network.SetLinkParams(SiteId(0), SiteId(1), clean);
  for (uint64_t i = 1; i < 8; ++i) {
    p.t0.SendReliable(SiteId(1), 600 + i, std::make_shared<TestPayload>(i));
  }
  p.kernel.Run(5'000'000);
  EXPECT_EQ(p.delivered_at_1, 8u) << "window drops must heal via retry";
  EXPECT_EQ(p.t0.outstanding(), 0u);
  EXPECT_GT(p.c1.Get("transport.window_drop"), 0u)
      << "seqs far beyond the watermark must be refused";
}

}  // namespace
}  // namespace dvp
