// Tests for the workload generator, the system adapters, and the table
// printer used by the experiment harnesses.
#include <gtest/gtest.h>

#include <sstream>

#include "system/cluster.h"
#include "workload/adapter.h"
#include "workload/generator.h"
#include "workload/table.h"

namespace dvp::workload {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() {
    items_.push_back(catalog_.AddItem("a", core::CountDomain::Instance(),
                                      100'000));
    items_.push_back(catalog_.AddItem("b", core::CountDomain::Instance(),
                                      100'000));
    system::ClusterOptions opts;
    opts.num_sites = 4;
    opts.seed = 3;
    cluster_ = std::make_unique<system::Cluster>(&catalog_, opts);
    cluster_->BootstrapEven();
    adapter_ = std::make_unique<DvpAdapter>(cluster_.get());
  }

  core::Catalog catalog_;
  std::vector<ItemId> items_;
  std::unique_ptr<system::Cluster> cluster_;
  std::unique_ptr<DvpAdapter> adapter_;
};

TEST_F(WorkloadTest, MixProportionsAreRespected) {
  WorkloadOptions w;
  w.p_decrement = 0.6;
  w.p_increment = 0.3;
  w.p_read = 0.1;
  w.seed = 5;
  WorkloadDriver driver(adapter_.get(), items_, w);
  Rng rng(5);
  int dec = 0, inc = 0, read = 0;
  for (int i = 0; i < 20'000; ++i) {
    txn::TxnSpec spec = driver.MakeSpec(rng);
    switch (spec.ops.front().kind) {
      case txn::TxnOp::Kind::kDecrement:
        ++dec;
        break;
      case txn::TxnOp::Kind::kIncrement:
        ++inc;
        break;
      case txn::TxnOp::Kind::kReadFull:
        ++read;
        break;
    }
  }
  EXPECT_NEAR(dec / 20'000.0, 0.6, 0.02);
  EXPECT_NEAR(inc / 20'000.0, 0.3, 0.02);
  EXPECT_NEAR(read / 20'000.0, 0.1, 0.02);
}

TEST_F(WorkloadTest, AmountsStayInRange) {
  WorkloadOptions w;
  w.amount_min = 2;
  w.amount_max = 9;
  w.p_read = 0;
  WorkloadDriver driver(adapter_.get(), items_, w);
  Rng rng(7);
  for (int i = 0; i < 5'000; ++i) {
    txn::TxnSpec spec = driver.MakeSpec(rng);
    EXPECT_GE(spec.ops.front().amount, 2);
    EXPECT_LE(spec.ops.front().amount, 9);
  }
}

TEST_F(WorkloadTest, SiteSkewConcentratesDecrementsOnly) {
  WorkloadOptions w;
  w.p_decrement = 0.5;
  w.p_increment = 0.5;
  w.p_read = 0;
  w.site_zipf_theta = 1.5;
  w.increment_site_zipf_theta = 0.0;
  WorkloadDriver driver(adapter_.get(), items_, w);
  Rng rng(11);
  int dec_site0 = 0, decs = 0, inc_site0 = 0, incs = 0;
  for (int i = 0; i < 20'000; ++i) {
    txn::TxnSpec spec = driver.MakeSpec(rng);
    SiteId at = driver.PickSite(rng, spec);
    if (spec.ops.front().kind == txn::TxnOp::Kind::kDecrement) {
      ++decs;
      dec_site0 += at == SiteId(0);
    } else {
      ++incs;
      inc_site0 += at == SiteId(0);
    }
  }
  EXPECT_GT(double(dec_site0) / decs, 0.5);   // heavily skewed
  EXPECT_NEAR(double(inc_site0) / incs, 0.25, 0.03);  // uniform
}

TEST_F(WorkloadTest, RunProducesDecisionsAndThroughput) {
  WorkloadOptions w;
  w.arrivals_per_sec = 200;
  w.p_read = 0;
  w.seed = 13;
  WorkloadDriver driver(adapter_.get(), items_, w);
  WorkloadResults r = driver.Run(5'000'000, 1'000'000);
  EXPECT_NEAR(double(r.submitted), 1000.0, 150.0);  // Poisson(200/s * 5s)
  EXPECT_EQ(r.decided(), r.submitted);
  EXPECT_GT(r.commit_rate(), 0.95);
  EXPECT_GT(r.throughput_per_sec(5'000'000), 150.0);
}

TEST_F(WorkloadTest, HooksSeeEveryCommitAndDecision) {
  WorkloadOptions w;
  w.arrivals_per_sec = 100;
  w.p_read = 0;
  w.seed = 17;
  WorkloadDriver driver(adapter_.get(), items_, w);
  uint64_t commits = 0, decisions = 0;
  driver.set_on_commit([&](TxnId, const txn::TxnSpec&, const txn::TxnResult&) {
    ++commits;
  });
  driver.set_on_decision(
      [&](SiteId, const txn::TxnSpec&, const txn::TxnResult&) {
        ++decisions;
      });
  WorkloadResults r = driver.Run(3'000'000);
  EXPECT_EQ(commits, r.committed());
  EXPECT_EQ(decisions, r.decided());
}

TEST_F(WorkloadTest, DeterministicAcrossRuns) {
  auto run_once = [this]() {
    system::ClusterOptions opts;
    opts.num_sites = 4;
    opts.seed = 3;
    system::Cluster cluster(&catalog_, opts);
    cluster.BootstrapEven();
    DvpAdapter adapter(&cluster);
    WorkloadOptions w;
    w.arrivals_per_sec = 150;
    w.seed = 23;
    WorkloadDriver driver(&adapter, items_, w);
    WorkloadResults r = driver.Run(3'000'000);
    return std::make_pair(r.submitted, r.committed());
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a, b) << "same seeds must reproduce the identical run";
}

TEST(TablePrinterTest, AlignsColumnsAndFormatsCells) {
  TablePrinter table({"name", "value"});
  table.AddRow("x", 1.234567);
  table.AddRow(std::string("longer-name"), uint64_t{42});
  std::ostringstream os;
  table.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("| name        | value |"), std::string::npos) << out;
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  // Four lines: header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

}  // namespace
}  // namespace dvp::workload
