// End-to-end tests of the DvP cluster on the paper's §3 running example:
// flight A with N = 100 seats, four sites W, X, Y, Z holding 25 each.
#include <gtest/gtest.h>

#include "system/cluster.h"

namespace dvp {
namespace {

using core::CountDomain;
using core::Value;
using system::Cluster;
using system::ClusterOptions;
using txn::TxnOp;
using txn::TxnOutcome;
using txn::TxnResult;
using txn::TxnSpec;

constexpr SiteId kW{0}, kX{1}, kY{2}, kZ{3};

class AirlineTest : public ::testing::Test {
 protected:
  AirlineTest() {
    flight_a_ = catalog_.AddItem("flightA", CountDomain::Instance(), 100);
    ClusterOptions opts;
    opts.num_sites = 4;
    opts.seed = 7;
    cluster_ = std::make_unique<Cluster>(&catalog_, opts);
    cluster_->BootstrapEven();
  }

  TxnResult SubmitAndRun(SiteId at, const TxnSpec& spec,
                         SimTime run_us = 2'000'000) {
    TxnResult out;
    bool done = false;
    auto submitted = cluster_->Submit(at, spec, [&](const TxnResult& r) {
      out = r;
      done = true;
    });
    EXPECT_TRUE(submitted.ok()) << submitted.status().ToString();
    cluster_->RunFor(run_us);
    EXPECT_TRUE(done) << "transaction never reached a decision (blocking!)";
    return out;
  }

  core::Catalog catalog_;
  ItemId flight_a_;
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(AirlineTest, BootstrapSplitsEvenly) {
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(cluster_->site(SiteId(s)).LocalValue(flight_a_), 25);
  }
  EXPECT_EQ(cluster_->TotalOf(flight_a_), 100);
  EXPECT_TRUE(cluster_->AuditAll().ok());
}

TEST_F(AirlineTest, LocalReservationCommitsImmediately) {
  // Customers requesting 3, 4 and 5 seats at W: N_W goes 22, 18, 13.
  for (Value seats : {3, 4, 5}) {
    TxnSpec spec;
    spec.ops = {TxnOp::Decrement(flight_a_, seats)};
    TxnResult r = SubmitAndRun(kW, spec);
    EXPECT_EQ(r.outcome, TxnOutcome::kCommitted) << r.status.ToString();
    EXPECT_EQ(r.rounds, 0u) << "local execution should need no requests";
  }
  EXPECT_EQ(cluster_->site(kW).LocalValue(flight_a_), 13);
  EXPECT_EQ(cluster_->TotalOf(flight_a_), 88);
  EXPECT_TRUE(cluster_->AuditAll().ok());
}

TEST_F(AirlineTest, CancellationIsAlwaysLocal) {
  TxnSpec cancel;
  cancel.ops = {TxnOp::Increment(flight_a_, 2)};
  TxnResult r = SubmitAndRun(kX, cancel);
  EXPECT_EQ(r.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(cluster_->site(kX).LocalValue(flight_a_), 27);
  EXPECT_EQ(cluster_->TotalOf(flight_a_), 102);
}

TEST_F(AirlineTest, ShortfallTriggersRedistributionAndCommits) {
  // Drain X down to 3 seats, then ask for 5: X must gather at least 2 more.
  TxnSpec drain;
  drain.ops = {TxnOp::Decrement(flight_a_, 22)};
  ASSERT_EQ(SubmitAndRun(kX, drain).outcome, TxnOutcome::kCommitted);
  ASSERT_EQ(cluster_->site(kX).LocalValue(flight_a_), 3);

  TxnSpec want5;
  want5.ops = {TxnOp::Decrement(flight_a_, 5)};
  TxnResult r = SubmitAndRun(kX, want5);
  EXPECT_EQ(r.outcome, TxnOutcome::kCommitted) << r.status.ToString();
  EXPECT_GE(r.rounds, 1u);
  EXPECT_EQ(cluster_->TotalOf(flight_a_), 73);
  EXPECT_TRUE(cluster_->AuditAll().ok());
}

TEST_F(AirlineTest, OverDemandAborts) {
  TxnSpec too_many;
  too_many.ops = {TxnOp::Decrement(flight_a_, 101)};
  TxnResult r = SubmitAndRun(kY, too_many);
  EXPECT_EQ(r.outcome, TxnOutcome::kAbortTimeout);
  // The gather moved value to Y but destroyed none of it.
  EXPECT_EQ(cluster_->TotalOf(flight_a_), 100);
  EXPECT_TRUE(cluster_->AuditAll().ok());
}

TEST_F(AirlineTest, FullReadDrainsEverything) {
  TxnSpec read;
  read.ops = {TxnOp::ReadFull(flight_a_)};
  TxnResult r = SubmitAndRun(kX, read);
  ASSERT_EQ(r.outcome, TxnOutcome::kCommitted) << r.status.ToString();
  EXPECT_EQ(r.read_values.at(flight_a_), 100);
  // §3: after the read, N = N_X and every other share is zero.
  EXPECT_EQ(cluster_->site(kX).LocalValue(flight_a_), 100);
  EXPECT_EQ(cluster_->site(kW).LocalValue(flight_a_), 0);
  EXPECT_TRUE(cluster_->AuditAll().ok());
}

TEST_F(AirlineTest, ReservationDuringPartitionUsesLocalQuota) {
  // Split {W,X} | {Y,Z}. Local quotas keep working in both groups.
  ASSERT_TRUE(cluster_->Partition({{kW, kX}, {kY, kZ}}).ok());

  TxnSpec small;
  small.ops = {TxnOp::Decrement(flight_a_, 10)};
  EXPECT_EQ(SubmitAndRun(kW, small).outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(SubmitAndRun(kZ, small).outcome, TxnOutcome::kCommitted);

  // A demand exceeding the group's reachable value aborts by timeout — a
  // bounded decision, not a hang; no partition detection anywhere.
  TxnSpec large;
  large.ops = {TxnOp::Decrement(flight_a_, 45)};
  TxnResult r = SubmitAndRun(kX, large);
  EXPECT_EQ(r.outcome, TxnOutcome::kAbortTimeout);

  cluster_->Heal();
  // After healing, the same demand can be met from the whole network.
  TxnResult r2 = SubmitAndRun(kX, large);
  EXPECT_EQ(r2.outcome, TxnOutcome::kCommitted) << r2.status.ToString();
  EXPECT_EQ(cluster_->TotalOf(flight_a_), 100 - 10 - 10 - 45);
  EXPECT_TRUE(cluster_->AuditAll().ok());
}

TEST_F(AirlineTest, MultiItemTransferBetweenFlights) {
  core::Catalog catalog;
  ItemId a = catalog.AddItem("flightA", CountDomain::Instance(), 40);
  ItemId b = catalog.AddItem("flightB", CountDomain::Instance(), 40);
  ClusterOptions opts;
  opts.num_sites = 4;
  Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();

  // Change a 4-seat reservation from flight A to flight B at site 2.
  TxnSpec change;
  change.ops = {TxnOp::Increment(a, 4), TxnOp::Decrement(b, 4)};
  TxnResult out;
  bool done = false;
  ASSERT_TRUE(cluster
                  .Submit(SiteId(2), change,
                          [&](const TxnResult& r) {
                            out = r;
                            done = true;
                          })
                  .ok());
  cluster.RunFor(2'000'000);
  ASSERT_TRUE(done);
  EXPECT_EQ(out.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(cluster.TotalOf(a), 44);
  EXPECT_EQ(cluster.TotalOf(b), 36);
  EXPECT_TRUE(cluster.AuditAll().ok());
}

TEST_F(AirlineTest, CrashedSiteValueStaysDurable) {
  TxnSpec spec;
  spec.ops = {TxnOp::Decrement(flight_a_, 5)};
  ASSERT_EQ(SubmitAndRun(kW, spec).outcome, TxnOutcome::kCommitted);

  cluster_->CrashSite(kW);
  // The crashed site's share is temporarily inaccessible but not lost.
  EXPECT_EQ(cluster_->site(kW).DurableValue(flight_a_), 20);
  EXPECT_EQ(cluster_->TotalOf(flight_a_), 95);

  // Other sites keep processing against their own quotas.
  EXPECT_EQ(SubmitAndRun(kY, spec).outcome, TxnOutcome::kCommitted);

  cluster_->RecoverSite(kW);
  cluster_->RunFor(1'000'000);
  EXPECT_TRUE(cluster_->site(kW).IsUp());
  EXPECT_EQ(cluster_->site(kW).LocalValue(flight_a_), 20);
  // Independent recovery: a local transaction commits right away.
  EXPECT_EQ(SubmitAndRun(kW, spec).outcome, TxnOutcome::kCommitted);
  EXPECT_TRUE(cluster_->AuditAll().ok());
}

}  // namespace
}  // namespace dvp
