// Adversarial-input tests: the WAL decoder and the encoding primitives must
// never crash, hang, or mis-accept on arbitrary byte strings (a corrupted
// disk must surface as Status::Corruption, not undefined behaviour).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "wal/record.h"

namespace dvp::wal {
namespace {

std::string RandomBytes(Rng& rng, size_t len) {
  std::string out(len, '\0');
  for (char& c : out) c = static_cast<char>(rng.NextBounded(256));
  return out;
}

class DecoderFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DecoderFuzzTest, RandomBytesNeverCrashDecodeRecord) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 2'000; ++trial) {
    size_t len = rng.NextBounded(64);
    std::string bytes = RandomBytes(rng, len);
    auto decoded = DecodeRecord(bytes);
    // Random bytes passing a CRC32 check is a ~2^-32 event; over the whole
    // suite we accept it but record types must still parse fully.
    if (decoded.ok()) {
      EXPECT_FALSE(RecordToString(decoded.value()).empty());
    } else {
      EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
    }
  }
}

TEST_P(DecoderFuzzTest, TruncationsOfValidRecordsAreRejected) {
  Rng rng(GetParam() + 99);
  VmCreateRec rec;
  rec.vm = VmId(rng.NextU64() >> 1);
  rec.dst = SiteId(uint32_t(rng.NextBounded(1000)));
  rec.item = ItemId(uint32_t(rng.NextBounded(1000)));
  rec.amount = rng.NextInt(-1'000'000, 1'000'000);
  rec.for_txn = TxnId(rng.NextU64() >> 1);
  rec.write = FragmentWrite{rec.item, rng.NextInt(-100, 100),
                            rng.NextInt(-100, 100), rng.NextU64() >> 1};
  std::string encoded = EncodeRecord(LogRecord(rec));
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    auto decoded = DecodeRecord(encoded.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "accepted a record truncated to " << cut;
  }
}

TEST_P(DecoderFuzzTest, RandomRecordsRoundTrip) {
  Rng rng(GetParam() + 777);
  for (int trial = 0; trial < 500; ++trial) {
    TxnCommitRec rec;
    rec.txn = TxnId(rng.NextU64() >> 1);
    rec.ts_packed = rng.NextU64() >> 1;
    size_t n = rng.NextBounded(6);
    for (size_t i = 0; i < n; ++i) {
      rec.writes.push_back(FragmentWrite{
          ItemId(uint32_t(rng.NextBounded(1 << 20))),
          rng.NextInt(std::numeric_limits<int32_t>::min(),
                      std::numeric_limits<int32_t>::max()),
          rng.NextInt(-1'000'000, 1'000'000), rng.NextU64() >> 1});
    }
    std::string encoded = EncodeRecord(LogRecord(rec));
    auto decoded = DecodeRecord(encoded);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(std::get<TxnCommitRec>(decoded.value()), rec);
  }
}

TEST_P(DecoderFuzzTest, EncodingPrimitivesFuzzedCursor) {
  Rng rng(GetParam() + 31337);
  for (int trial = 0; trial < 2'000; ++trial) {
    std::string bytes = RandomBytes(rng, rng.NextBounded(32));
    Decoder dec(bytes);
    // Interleave random reads; must never read past the buffer.
    while (!dec.empty()) {
      switch (rng.NextBounded(5)) {
        case 0: {
          uint32_t v;
          if (!dec.GetFixed32(&v)) goto done;
          break;
        }
        case 1: {
          uint64_t v;
          if (!dec.GetFixed64(&v)) goto done;
          break;
        }
        case 2: {
          uint64_t v;
          if (!dec.GetVarint64(&v)) goto done;
          break;
        }
        case 3: {
          int64_t v;
          if (!dec.GetVarsint64(&v)) goto done;
          break;
        }
        case 4: {
          std::string_view s;
          if (!dec.GetLengthPrefixed(&s)) goto done;
          break;
        }
      }
    }
  done:;
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace dvp::wal
