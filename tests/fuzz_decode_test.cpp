// Adversarial-input tests: the WAL decoder and the encoding primitives must
// never crash, hang, or mis-accept on arbitrary byte strings (a corrupted
// disk must surface as Status::Corruption, not undefined behaviour).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "proto/packet_codec.h"
#include "proto/snapshot_codec.h"
#include "wal/record.h"

namespace dvp::wal {
namespace {

std::string RandomBytes(Rng& rng, size_t len) {
  std::string out(len, '\0');
  for (char& c : out) c = static_cast<char>(rng.NextBounded(256));
  return out;
}

class DecoderFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DecoderFuzzTest, RandomBytesNeverCrashDecodeRecord) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 2'000; ++trial) {
    size_t len = rng.NextBounded(64);
    std::string bytes = RandomBytes(rng, len);
    auto decoded = DecodeRecord(bytes);
    // Random bytes passing a CRC32 check is a ~2^-32 event; over the whole
    // suite we accept it but record types must still parse fully.
    if (decoded.ok()) {
      EXPECT_FALSE(RecordToString(decoded.value()).empty());
    } else {
      EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
    }
  }
}

TEST_P(DecoderFuzzTest, TruncationsOfValidRecordsAreRejected) {
  Rng rng(GetParam() + 99);
  VmCreateRec rec;
  rec.vm = VmId(rng.NextU64() >> 1);
  rec.dst = SiteId(uint32_t(rng.NextBounded(1000)));
  rec.item = ItemId(uint32_t(rng.NextBounded(1000)));
  rec.amount = rng.NextInt(-1'000'000, 1'000'000);
  rec.for_txn = TxnId(rng.NextU64() >> 1);
  rec.write = FragmentWrite{rec.item, rng.NextInt(-100, 100),
                            rng.NextInt(-100, 100), rng.NextU64() >> 1};
  std::string encoded = EncodeRecord(LogRecord(rec));
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    auto decoded = DecodeRecord(encoded.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "accepted a record truncated to " << cut;
  }
}

TEST_P(DecoderFuzzTest, RandomRecordsRoundTrip) {
  Rng rng(GetParam() + 777);
  for (int trial = 0; trial < 500; ++trial) {
    TxnCommitRec rec;
    rec.txn = TxnId(rng.NextU64() >> 1);
    rec.ts_packed = rng.NextU64() >> 1;
    size_t n = rng.NextBounded(6);
    for (size_t i = 0; i < n; ++i) {
      rec.writes.push_back(FragmentWrite{
          ItemId(uint32_t(rng.NextBounded(1 << 20))),
          rng.NextInt(std::numeric_limits<int32_t>::min(),
                      std::numeric_limits<int32_t>::max()),
          rng.NextInt(-1'000'000, 1'000'000), rng.NextU64() >> 1});
    }
    std::string encoded = EncodeRecord(LogRecord(rec));
    auto decoded = DecodeRecord(encoded);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(std::get<TxnCommitRec>(decoded.value()), rec);
  }
}

TEST_P(DecoderFuzzTest, EncodingPrimitivesFuzzedCursor) {
  Rng rng(GetParam() + 31337);
  for (int trial = 0; trial < 2'000; ++trial) {
    std::string bytes = RandomBytes(rng, rng.NextBounded(32));
    Decoder dec(bytes);
    // Interleave random reads; must never read past the buffer.
    while (!dec.empty()) {
      switch (rng.NextBounded(5)) {
        case 0: {
          uint32_t v;
          if (!dec.GetFixed32(&v)) goto done;
          break;
        }
        case 1: {
          uint64_t v;
          if (!dec.GetFixed64(&v)) goto done;
          break;
        }
        case 2: {
          uint64_t v;
          if (!dec.GetVarint64(&v)) goto done;
          break;
        }
        case 3: {
          int64_t v;
          if (!dec.GetVarsint64(&v)) goto done;
          break;
        }
        case 4: {
          std::string_view s;
          if (!dec.GetLengthPrefixed(&s)) goto done;
          break;
        }
      }
    }
  done:;
  }
  SUCCEED();
}

TEST_P(DecoderFuzzTest, AtomicSetRecordsRoundTrip) {
  Rng rng(GetParam() + 4'242);
  for (int trial = 0; trial < 500; ++trial) {
    TxnCommitRec rec;
    rec.txn = TxnId(rng.NextU64() >> 1);
    rec.ts_packed = rng.NextU64() >> 1;
    size_t n = 2 + rng.NextBounded(4);
    for (size_t i = 0; i < n; ++i) {
      rec.writes.push_back(FragmentWrite{
          ItemId(uint32_t(rng.NextBounded(1 << 20))),
          rng.NextInt(-1'000'000, 1'000'000), rng.NextInt(-1'000, 1'000),
          rng.NextU64() >> 1});
    }
    rec.atomic_set = rng.NextBounded(2) == 1;
    auto decoded = DecodeRecord(EncodeRecord(LogRecord(rec)));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(std::get<TxnCommitRec>(decoded.value()), rec);
  }
}

// ---- Atomic-set trailer: malformed frames must be REJECTED, never UB ----------
//
// The trailer is one optional varint that must be exactly 1. These tests
// doctor the body and re-stamp a VALID checksum, so rejection has to come
// from content validation, not from the CRC.

std::string WithFreshCrc(const std::string& body) {
  std::string out;
  PutFixed32(&out, Crc32c(body));
  out += body;
  return out;
}

std::string CommitBody(uint64_t txn, uint64_t ts) {
  std::string body;
  body.push_back(1);  // RecordType kTxnCommit
  PutVarint64(&body, txn);
  PutVarint64(&body, ts);
  PutVarint64(&body, 0);  // no writes
  return body;
}

TEST(AtomicTrailerTest, AbsentTrailerDecodesAsLegacyRecord) {
  auto decoded = DecodeRecord(WithFreshCrc(CommitBody(9, 40)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(std::get<TxnCommitRec>(decoded.value()).atomic_set);
}

TEST(AtomicTrailerTest, FlagOneDecodesAsAtomicSet) {
  std::string body = CommitBody(9, 40);
  PutVarint64(&body, 1);
  auto decoded = DecodeRecord(WithFreshCrc(body));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(std::get<TxnCommitRec>(decoded.value()).atomic_set);
}

TEST(AtomicTrailerTest, ZeroFlagIsRejected) {
  // A writer never emits flag=0 (absence IS false); a zero here means the
  // frame was corrupted or forged, and accepting it would silently change
  // what future encodings of this record look like.
  std::string body = CommitBody(9, 40);
  PutVarint64(&body, 0);
  auto decoded = DecodeRecord(WithFreshCrc(body));
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().ToString().find("atomic-set trailer"),
            std::string::npos);
}

TEST(AtomicTrailerTest, FlagValuesOtherThanOneAreRejected) {
  for (uint64_t flag : {2ull, 7ull, 1ull << 40}) {
    std::string body = CommitBody(9, 40);
    PutVarint64(&body, flag);
    auto decoded = DecodeRecord(WithFreshCrc(body));
    EXPECT_FALSE(decoded.ok()) << "accepted trailer flag " << flag;
  }
}

TEST(AtomicTrailerTest, GarbageAfterFlagIsRejected) {
  std::string body = CommitBody(9, 40);
  PutVarint64(&body, 1);
  body.push_back('\x07');  // trailing junk after a well-formed flag
  auto decoded = DecodeRecord(WithFreshCrc(body));
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().ToString().find("atomic-set trailer"),
            std::string::npos);
}

TEST(AtomicTrailerTest, TruncationsOfAtomicRecordAreRejected) {
  TxnCommitRec rec;
  rec.txn = TxnId(55);
  rec.ts_packed = 1'234;
  rec.writes = {FragmentWrite{ItemId(1), 90, -10, 77},
                FragmentWrite{ItemId(2), 60, 10, 77}};
  rec.atomic_set = true;
  std::string encoded = EncodeRecord(LogRecord(rec));
  // Every proper prefix fails — including the one that drops only the
  // trailer byte, which the checksum catches before it could silently
  // decode as a legacy non-atomic record.
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    auto decoded = DecodeRecord(encoded.substr(0, cut));
    EXPECT_FALSE(decoded.ok()) << "accepted a record truncated to " << cut;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---- Snapshot message codec: same adversarial treatment -----------------------
//
// The snapshot request/reply are the first envelopes with a real byte
// encoding (CRC-framed, varint-packed). Arbitrary bytes, truncations and
// checksum-valid doctored frames must all surface as kCorruption.

proto::SnapshotReqMsg RandomReq(Rng& rng) {
  proto::SnapshotReqMsg req;
  req.txn = TxnId(rng.NextU64() >> 1);
  req.ts_packed = rng.NextU64() >> 1;
  req.origin = SiteId(uint32_t(rng.NextBounded(1000)));
  req.round = uint32_t(rng.NextBounded(33));
  size_t n = rng.NextBounded(5);
  for (size_t i = 0; i < n; ++i) {
    req.items.push_back(ItemId(uint32_t(rng.NextBounded(1 << 20))));
  }
  return req;
}

proto::SnapshotReplyMsg RandomReply(Rng& rng) {
  proto::SnapshotReplyMsg reply;
  reply.txn = TxnId(rng.NextU64() >> 1);
  reply.from = SiteId(uint32_t(rng.NextBounded(1000)));
  reply.round = uint32_t(rng.NextBounded(33));
  reply.ts_packed = rng.NextU64() >> 1;
  size_t n = rng.NextBounded(4);
  for (size_t i = 0; i < n; ++i) {
    proto::SnapshotEntry e;
    e.item = ItemId(uint32_t(rng.NextBounded(1 << 20)));
    e.fragment = rng.NextInt(-1'000'000, 1'000'000);
    e.frag_ts_packed = rng.NextU64() >> 1;
    e.created_count = rng.NextBounded(1 << 20);
    e.created_value = rng.NextInt(-1'000'000, 1'000'000);
    e.accepted_count = rng.NextBounded(1 << 20);
    e.accepted_value = rng.NextInt(-1'000'000, 1'000'000);
    e.closed_below = rng.NextBounded(1 << 20);
    reply.entries.push_back(e);
  }
  return reply;
}

class SnapshotCodecFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SnapshotCodecFuzzTest, RandomBytesNeverCrashEitherDecoder) {
  Rng rng(GetParam() + 808);
  for (int trial = 0; trial < 2'000; ++trial) {
    std::string bytes = RandomBytes(rng, rng.NextBounded(64));
    auto req = proto::DecodeSnapshotReq(bytes);
    if (!req.ok()) EXPECT_EQ(req.status().code(), StatusCode::kCorruption);
    auto reply = proto::DecodeSnapshotReply(bytes);
    if (!reply.ok()) {
      EXPECT_EQ(reply.status().code(), StatusCode::kCorruption);
    }
  }
}

TEST_P(SnapshotCodecFuzzTest, RandomMessagesRoundTrip) {
  Rng rng(GetParam() + 909);
  for (int trial = 0; trial < 500; ++trial) {
    proto::SnapshotReqMsg req = RandomReq(rng);
    auto dreq = proto::DecodeSnapshotReq(proto::EncodeSnapshotReq(req));
    ASSERT_TRUE(dreq.ok()) << dreq.status().ToString();
    EXPECT_EQ(dreq.value(), req);
    proto::SnapshotReplyMsg reply = RandomReply(rng);
    auto drep = proto::DecodeSnapshotReply(proto::EncodeSnapshotReply(reply));
    ASSERT_TRUE(drep.ok()) << drep.status().ToString();
    EXPECT_EQ(drep.value(), reply);
  }
}

TEST_P(SnapshotCodecFuzzTest, TruncationsOfValidFramesAreRejected) {
  Rng rng(GetParam() + 1'010);
  std::string req = proto::EncodeSnapshotReq(RandomReq(rng));
  for (size_t cut = 0; cut < req.size(); ++cut) {
    EXPECT_FALSE(proto::DecodeSnapshotReq(req.substr(0, cut)).ok())
        << "accepted a request truncated to " << cut;
  }
  std::string reply = proto::EncodeSnapshotReply(RandomReply(rng));
  for (size_t cut = 0; cut < reply.size(); ++cut) {
    EXPECT_FALSE(proto::DecodeSnapshotReply(reply.substr(0, cut)).ok())
        << "accepted a reply truncated to " << cut;
  }
}

TEST(SnapshotCodecTest, KindBytesAreNotInterchangeable) {
  Rng rng(7);
  std::string req = proto::EncodeSnapshotReq(RandomReq(rng));
  auto as_reply = proto::DecodeSnapshotReply(req);
  ASSERT_FALSE(as_reply.ok());
  EXPECT_NE(as_reply.status().ToString().find("not a reply"),
            std::string::npos);
  std::string reply = proto::EncodeSnapshotReply(RandomReply(rng));
  auto as_req = proto::DecodeSnapshotReq(reply);
  ASSERT_FALSE(as_req.ok());
  EXPECT_NE(as_req.status().ToString().find("not a request"),
            std::string::npos);
}

TEST(SnapshotCodecTest, TrailingJunkWithValidCrcIsRejected) {
  // Re-stamp a valid checksum over a body with junk appended: rejection has
  // to come from content validation, not the CRC.
  Rng rng(11);
  std::string framed = proto::EncodeSnapshotReq(RandomReq(rng));
  std::string body(framed.substr(4));
  body.push_back('\x07');
  auto decoded = proto::DecodeSnapshotReq(WithFreshCrc(body));
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().ToString().find("trailing bytes"),
            std::string::npos);
}

TEST(SnapshotCodecTest, ForgedHugeCountIsRejectedWithoutAllocating) {
  // A count field claiming more entries than the frame has bytes must be
  // rejected up front (never trusted for a reserve()).
  std::string body;
  body.push_back(2);  // kind: reply
  PutVarint64(&body, 9);
  PutVarint64(&body, 1);
  PutVarint64(&body, 1);
  PutVarint64(&body, 40);
  PutVarint64(&body, uint64_t{1} << 50);  // entry count
  auto decoded = proto::DecodeSnapshotReply(WithFreshCrc(body));
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().ToString().find("count exceeds frame"),
            std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotCodecFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---- Packet codec (proto/packet_codec.h) ------------------------------------
//
// The real runtime's UDP conduit decodes whatever arrives on a socket, so
// the whole-packet decoder gets the same adversarial treatment as the WAL
// and snapshot decoders: arbitrary bytes and truncations must surface as
// kCorruption, and every envelope kind must round-trip bit-exactly.

net::Packet RandomPacket(Rng& rng) {
  net::Packet p;
  p.src = SiteId(uint32_t(rng.NextBounded(64)));
  p.dst = SiteId(uint32_t(rng.NextBounded(64)));
  p.reliability = rng.NextBool(0.5) ? net::Reliability::kReliable
                                    : net::Reliability::kDatagram;
  p.epoch = rng.NextBounded(1 << 20);
  p.seq = MsgSeq(rng.NextU64() >> 1);
  p.seq_base = rng.NextBounded(1 << 20);
  p.has_ack = rng.NextBool(0.5);
  if (p.has_ack) {
    p.ack_epoch = rng.NextBounded(1 << 20);
    p.ack_cum = rng.NextBounded(1 << 20);
  }
  p.trace_id = rng.NextU64() >> 1;
  size_t n_hints = rng.NextBounded(3);
  for (size_t i = 0; i < n_hints; ++i) {
    p.hints.push_back(net::PlacementHint{
        ItemId(uint32_t(rng.NextBounded(1 << 20))),
        rng.NextInt(-1'000'000, 1'000'000),
        rng.NextInt(-1'000'000, 1'000'000), rng.NextU64() >> 1});
  }
  switch (rng.NextBounded(5)) {
    case 0:
      break;  // pure ack: no payload
    case 1: {
      auto m = net::MakeEnvelope<proto::RequestMsg>();
      m->txn = TxnId(rng.NextU64() >> 1);
      m->ts_packed = rng.NextU64() >> 1;
      m->origin = SiteId(uint32_t(rng.NextBounded(64)));
      m->round = uint32_t(rng.NextBounded(8)) + 1;
      m->want_surplus_nack = rng.NextBool(0.5);
      m->atomic_set = rng.NextBool(0.5);
      size_t parts = rng.NextBounded(4);
      for (size_t i = 0; i < parts; ++i) {
        m->parts.push_back(proto::RequestPart{
            ItemId(uint32_t(rng.NextBounded(1 << 20))),
            rng.NextInt(-1'000, 1'000), rng.NextBool(0.3)});
      }
      p.payload = std::move(m);
      break;
    }
    case 2: {
      auto m = net::MakeEnvelope<proto::VmTransferMsg>();
      m->vm = VmId(rng.NextU64() >> 1);
      m->src = SiteId(uint32_t(rng.NextBounded(64)));
      m->item = ItemId(uint32_t(rng.NextBounded(1 << 20)));
      m->amount = rng.NextInt(-1'000'000, 1'000'000);
      m->for_txn = TxnId(rng.NextU64() >> 1);
      m->ts_packed = rng.NextU64() >> 1;
      m->closed_below = rng.NextBounded(1 << 20);
      m->is_read_reply = rng.NextBool(0.3);
      m->round = uint32_t(rng.NextBounded(8));
      m->accept_count = rng.NextBounded(1 << 20);
      m->create_count = rng.NextBounded(1 << 20);
      p.payload = std::move(m);
      break;
    }
    case 3: {
      auto m = net::MakeEnvelope<proto::SnapshotReqMsg>();
      *m = RandomReq(rng);
      p.payload = std::move(m);
      break;
    }
    case 4: {
      auto m = net::MakeEnvelope<proto::SnapshotReplyMsg>();
      *m = RandomReply(rng);
      p.payload = std::move(m);
      break;
    }
  }
  size_t n_extra = rng.NextBounded(3);
  for (size_t i = 0; i < n_extra; ++i) {
    auto m = net::MakeEnvelope<proto::VmAckMsg>();
    m->vm = VmId(rng.NextU64() >> 1);
    m->from = SiteId(uint32_t(rng.NextBounded(64)));
    m->ts_packed = rng.NextU64() >> 1;
    p.extra.push_back(net::SubMsg{net::Reliability::kReliable,
                                  MsgSeq(rng.NextU64() >> 1), std::move(m)});
  }
  return p;
}

class PacketCodecFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PacketCodecFuzzTest, RandomBytesNeverCrashDecodePacket) {
  Rng rng(GetParam() + 2'020);
  for (int trial = 0; trial < 2'000; ++trial) {
    std::string bytes = RandomBytes(rng, rng.NextBounded(128));
    auto p = proto::DecodePacket(bytes);
    if (!p.ok()) EXPECT_EQ(p.status().code(), StatusCode::kCorruption);
  }
}

TEST_P(PacketCodecFuzzTest, RandomPacketsRoundTrip) {
  Rng rng(GetParam() + 3'030);
  for (int trial = 0; trial < 300; ++trial) {
    net::Packet p = RandomPacket(rng);
    std::string frame = proto::EncodePacket(p);
    // The append-style APIs the fast path uses must be byte-identical to the
    // fresh-string encoder for every packet shape the fuzzer can produce —
    // the frame cache replays these bytes verbatim on retransmission.
    std::string appended = "prefix";
    std::string scratch;
    proto::EncodePacketTo(p, &appended, &scratch);
    EXPECT_EQ(appended.substr(6), frame);
    std::string patched, tail;
    proto::EncodePacketWithDstTo(p, p.dst, &patched, &tail, &scratch);
    EXPECT_EQ(patched, frame);
    auto rt = proto::DecodePacket(frame);
    ASSERT_TRUE(rt.ok()) << rt.status().ToString();
    EXPECT_EQ(rt->src, p.src);
    EXPECT_EQ(rt->dst, p.dst);
    EXPECT_EQ(rt->reliability, p.reliability);
    EXPECT_EQ(rt->epoch, p.epoch);
    EXPECT_EQ(rt->seq, p.seq);
    EXPECT_EQ(rt->seq_base, p.seq_base);
    EXPECT_EQ(rt->has_ack, p.has_ack);
    EXPECT_EQ(rt->ack_epoch, p.ack_epoch);
    EXPECT_EQ(rt->ack_cum, p.ack_cum);
    EXPECT_EQ(rt->trace_id, p.trace_id);
    ASSERT_EQ(rt->hints.size(), p.hints.size());
    for (size_t i = 0; i < p.hints.size(); ++i) {
      EXPECT_EQ(rt->hints[i].item, p.hints[i].item);
      EXPECT_EQ(rt->hints[i].surplus, p.hints[i].surplus);
      EXPECT_EQ(rt->hints[i].demand, p.hints[i].demand);
      EXPECT_EQ(rt->hints[i].stamp, p.hints[i].stamp);
    }
    EXPECT_EQ(rt->payload != nullptr, p.payload != nullptr);
    if (p.payload) {
      // Envelope identity via the modeled wire: same tag, same size.
      EXPECT_EQ(rt->payload->Tag(), p.payload->Tag());
      EXPECT_EQ(rt->payload->EncodedSize(), p.payload->EncodedSize());
      EXPECT_EQ(rt->payload->trace_id, p.payload->trace_id);
    }
    ASSERT_EQ(rt->extra.size(), p.extra.size());
    for (size_t i = 0; i < p.extra.size(); ++i) {
      EXPECT_EQ(rt->extra[i].seq, p.extra[i].seq);
      auto* a = static_cast<const proto::VmAckMsg*>(rt->extra[i].payload.get());
      auto* b = static_cast<const proto::VmAckMsg*>(p.extra[i].payload.get());
      EXPECT_EQ(a->vm, b->vm);
      EXPECT_EQ(a->ts_packed, b->ts_packed);
    }
  }
}

TEST_P(PacketCodecFuzzTest, TruncationsOfValidFramesAreRejected) {
  Rng rng(GetParam() + 4'040);
  std::string frame = proto::EncodePacket(RandomPacket(rng));
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    EXPECT_FALSE(proto::DecodePacket(frame.substr(0, cut)).ok())
        << "accepted a packet truncated to " << cut;
  }
}

/// Every envelope kind the wire knows, dressed with the full set of
/// per-frame extras (piggyback ack, placement hints, coalesced riders): the
/// append APIs must match the fresh-string encoder byte for byte, and the
/// destination-patching fan-out encoder must differ from a per-destination
/// fresh encode in no byte at all.
TEST(PacketCodecAppendTest, AllEnvelopeKindsEncodeIdenticallyViaAppendApis) {
  Rng rng(77);
  std::vector<net::EnvelopePtr> payloads;
  {
    auto m = net::MakeEnvelope<proto::RequestMsg>();
    m->txn = TxnId(101);
    m->ts_packed = 5'000;
    m->origin = SiteId(1);
    m->round = 2;
    m->want_surplus_nack = true;
    m->parts.push_back(proto::RequestPart{ItemId(7), 40, false});
    payloads.push_back(std::move(m));
  }
  {
    auto m = net::MakeEnvelope<proto::VmTransferMsg>();
    m->vm = VmId(55);
    m->src = SiteId(2);
    m->item = ItemId(7);
    m->amount = -12;
    m->for_txn = TxnId(101);
    m->ts_packed = 5'001;
    m->closed_below = 44;
    m->accept_count = 9;
    m->create_count = 8;
    payloads.push_back(std::move(m));
  }
  {
    auto m = net::MakeEnvelope<proto::VmAckMsg>();
    m->vm = VmId(55);
    m->from = SiteId(3);
    m->ts_packed = 5'002;
    payloads.push_back(std::move(m));
  }
  {
    auto m = net::MakeEnvelope<proto::VmClosureMsg>();
    m->src = SiteId(0);
    m->closed_below = 56;
    payloads.push_back(std::move(m));
  }
  {
    auto m = net::MakeEnvelope<proto::CcNackMsg>();
    m->from = SiteId(2);
    m->ts_packed = 5'003;
    payloads.push_back(std::move(m));
  }
  {
    auto m = net::MakeEnvelope<proto::SurplusNackMsg>();
    m->from = SiteId(1);
    m->item = ItemId(7);
    m->ts_packed = 5'004;
    payloads.push_back(std::move(m));
  }
  {
    auto m = net::MakeEnvelope<proto::SnapshotReqMsg>();
    *m = RandomReq(rng);
    payloads.push_back(std::move(m));
  }
  {
    auto m = net::MakeEnvelope<proto::SnapshotReplyMsg>();
    *m = RandomReply(rng);
    payloads.push_back(std::move(m));
  }
  ASSERT_EQ(payloads.size(), 8u);

  for (size_t k = 0; k < payloads.size(); ++k) {
    net::Packet p;
    p.src = SiteId(0);
    p.dst = SiteId(1);
    p.reliability = net::Reliability::kReliable;
    p.epoch = 3;
    p.seq = MsgSeq(900 + k);
    p.seq_base = 890;
    p.has_ack = true;
    p.ack_epoch = 2;
    p.ack_cum = 777;
    p.payload = payloads[k];
    p.trace_id = p.payload->trace_id;
    p.hints.push_back(net::PlacementHint{ItemId(7), 30, -4, 1'234});
    p.hints.push_back(net::PlacementHint{ItemId(9), 0, 12, 1'235});
    {
      auto rider = net::MakeEnvelope<proto::VmAckMsg>();
      rider->vm = VmId(60 + k);
      rider->from = SiteId(0);
      rider->ts_packed = 6'000 + k;
      p.extra.push_back(net::SubMsg{net::Reliability::kReliable,
                                    MsgSeq(901 + k), std::move(rider)});
    }

    const std::string fresh = proto::EncodePacket(p);
    std::string appended, scratch;
    proto::EncodePacketTo(p, &appended, &scratch);
    EXPECT_EQ(appended, fresh) << "kind " << p.payload->Tag();

    // Fan-out: one shared tail, three destinations. Each patched frame must
    // equal a from-scratch encode for that destination.
    std::string tail;
    for (uint32_t d = 1; d <= 3; ++d) {
      std::string out;
      proto::EncodePacketWithDstTo(p, SiteId(d), &out, &tail, &scratch);
      net::Packet q = p;
      q.dst = SiteId(d);
      EXPECT_EQ(out, proto::EncodePacket(q))
          << "kind " << p.payload->Tag() << " dst " << d;
      auto rt = proto::DecodePacket(out);
      ASSERT_TRUE(rt.ok()) << rt.status().ToString();
      EXPECT_EQ(rt->dst, SiteId(d));
      EXPECT_EQ(rt->payload->Tag(), p.payload->Tag());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketCodecFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace dvp::wal
