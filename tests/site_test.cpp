// Site-level lifecycle tests: bootstrap, crash/recover edges, checkpoint
// timers, durable reads while down, and redistribution APIs on a down site.
#include <gtest/gtest.h>

#include "system/cluster.h"

namespace dvp {
namespace {

using core::CountDomain;
using txn::TxnOp;
using txn::TxnOutcome;
using txn::TxnResult;
using txn::TxnSpec;

class SiteTest : public ::testing::Test {
 protected:
  void Build(site::SiteOptions site_opts = {}) {
    catalog_ = std::make_unique<core::Catalog>();
    item_ = catalog_->AddItem("pool", CountDomain::Instance(), 200);
    system::ClusterOptions opts;
    opts.num_sites = 2;
    opts.seed = 71;
    opts.site = site_opts;
    cluster_ = std::make_unique<system::Cluster>(catalog_.get(), opts);
    cluster_->BootstrapEven();
  }

  std::unique_ptr<core::Catalog> catalog_;
  ItemId item_;
  std::unique_ptr<system::Cluster> cluster_;
};

TEST_F(SiteTest, CrashIsIdempotent) {
  Build();
  cluster_->CrashSite(SiteId(0));
  cluster_->CrashSite(SiteId(0));  // no-op, no crash
  EXPECT_FALSE(cluster_->site(SiteId(0)).IsUp());
  EXPECT_EQ(cluster_->site(SiteId(0)).counters().Get("site.crashes"), 1u);
}

TEST_F(SiteTest, DurableValueReadableWhileDown) {
  Build();
  TxnSpec spec;
  spec.ops = {TxnOp::Decrement(item_, 25)};
  bool done = false;
  (void)cluster_->Submit(SiteId(0), spec,
                         [&](const TxnResult&) { done = true; });
  cluster_->RunFor(500'000);
  ASSERT_TRUE(done);
  cluster_->CrashSite(SiteId(0));
  EXPECT_EQ(cluster_->site(SiteId(0)).DurableValue(item_), 75);
}

TEST_F(SiteTest, PrefetchAndSendValueOnDownSiteAreSafe) {
  Build();
  cluster_->CrashSite(SiteId(0));
  cluster_->site(SiteId(0)).Prefetch(item_, 10);  // silently ignored
  Status s = cluster_->site(SiteId(0)).SendValue(SiteId(1), item_, 10);
  EXPECT_TRUE(s.IsUnavailable());
  cluster_->RunFor(200'000);
  EXPECT_TRUE(cluster_->AuditAll().ok());
}

TEST_F(SiteTest, PeriodicCheckpointAdvancesWatermark) {
  site::SiteOptions site_opts;
  site_opts.checkpoint_interval_us = 100'000;
  Build(site_opts);
  TxnSpec spec;
  spec.ops = {TxnOp::Increment(item_, 1)};
  for (int i = 0; i < 5; ++i) {
    (void)cluster_->Submit(SiteId(0), spec, nullptr);
    cluster_->RunFor(120'000);
  }
  const wal::StableStorage& storage = cluster_->storage(SiteId(0));
  EXPECT_GT(storage.checkpoint_upto(), 0u);
  EXPECT_GE(cluster_->site(SiteId(0)).counters().Get("site.checkpoints"), 4u);
  // The image reflects the committed state.
  EXPECT_EQ(storage.image().at(item_).value,
            cluster_->site(SiteId(0)).LocalValue(item_));
}

TEST_F(SiteTest, CheckpointTimerStopsAcrossCrash) {
  site::SiteOptions site_opts;
  site_opts.checkpoint_interval_us = 100'000;
  Build(site_opts);
  cluster_->RunFor(250'000);
  uint64_t before = cluster_->site(SiteId(0)).counters().Get("site.checkpoints");
  cluster_->CrashSite(SiteId(0));
  cluster_->RunFor(500'000);
  // No checkpoints while down.
  EXPECT_EQ(cluster_->site(SiteId(0)).counters().Get("site.checkpoints"),
            before);
  cluster_->RecoverSite(SiteId(0));
  cluster_->RunFor(500'000);
  EXPECT_GT(cluster_->site(SiteId(0)).counters().Get("site.checkpoints"),
            before);
}

TEST_F(SiteTest, IncarnationGrowsWithEachRecovery) {
  Build();
  EXPECT_EQ(cluster_->storage(SiteId(0)).incarnation(), 0u);
  for (uint64_t round = 1; round <= 3; ++round) {
    cluster_->CrashSite(SiteId(0));
    cluster_->RecoverSite(SiteId(0));
    cluster_->RunFor(500'000);
    EXPECT_EQ(cluster_->storage(SiteId(0)).incarnation(), round);
  }
}

TEST_F(SiteTest, RecoveryLogsARecoveryRecord) {
  Build();
  cluster_->CrashSite(SiteId(1));
  cluster_->RecoverSite(SiteId(1));
  cluster_->RunFor(500'000);
  bool found = false;
  ASSERT_TRUE(cluster_->storage(SiteId(1))
                  .Scan(0,
                        [&](Lsn, const wal::LogRecord& rec) {
                          if (std::holds_alternative<wal::RecoveryRec>(rec)) {
                            found = true;
                          }
                        })
                  .ok());
  EXPECT_TRUE(found);
}

// A deliberately larger configuration: 16 sites, multiple items, mixed load
// with a rolling crash/recover wave and two partition episodes — the "does
// it hold together at scale" integration test.
TEST(ScaleTest, SixteenSitesRollingFailures) {
  core::Catalog catalog;
  std::vector<ItemId> items;
  for (int i = 0; i < 6; ++i) {
    items.push_back(catalog.AddItem("item" + std::to_string(i),
                                    CountDomain::Instance(), 16'000));
  }
  system::ClusterOptions opts;
  opts.num_sites = 16;
  opts.seed = 2026;
  opts.link.loss_prob = 0.05;
  system::Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();

  // Rolling crash wave: site k down during [k, k+2) seconds.
  for (uint32_t k = 0; k < 8; ++k) {
    cluster.kernel().ScheduleAt(SimTime(k + 1) * 1'000'000, [&cluster, k]() {
      cluster.CrashSite(SiteId(k));
    });
    cluster.kernel().ScheduleAt(SimTime(k + 3) * 1'000'000, [&cluster, k]() {
      cluster.RecoverSite(SiteId(k));
    });
  }
  // Two partition episodes.
  cluster.kernel().ScheduleAt(4'000'000, [&cluster]() {
    std::vector<SiteId> a, b;
    for (uint32_t s = 0; s < 16; ++s) (s % 2 ? a : b).push_back(SiteId(s));
    (void)cluster.Partition({a, b});
  });
  cluster.kernel().ScheduleAt(6'000'000, [&cluster]() { cluster.Heal(); });
  cluster.kernel().ScheduleAt(8'000'000, [&cluster]() {
    std::vector<SiteId> a, b;
    for (uint32_t s = 0; s < 16; ++s) (s < 4 ? a : b).push_back(SiteId(s));
    (void)cluster.Partition({a, b});
  });
  cluster.kernel().ScheduleAt(10'000'000, [&cluster]() { cluster.Heal(); });

  // Load.
  Rng rng(404);
  uint64_t submitted = 0, decided = 0, committed = 0;
  for (int i = 0; i < 2'000; ++i) {
    SiteId at(static_cast<uint32_t>(rng.NextBounded(16)));
    if (!cluster.site(at).IsUp()) continue;
    TxnSpec spec;
    ItemId item = items[rng.NextBounded(items.size())];
    core::Value amount = rng.NextInt(1, 6);
    spec.ops = {rng.NextBool(0.5) ? TxnOp::Decrement(item, amount)
                                  : TxnOp::Increment(item, amount)};
    ++submitted;
    (void)cluster.Submit(at, spec, [&](const TxnResult& r) {
      ++decided;
      if (r.committed()) ++committed;
    });
    cluster.RunFor(rng.NextInt(2'000, 10'000));
  }
  // Recover any stragglers and drain.
  for (uint32_t s = 0; s < 16; ++s) {
    if (!cluster.site(SiteId(s)).IsUp()) cluster.RecoverSite(SiteId(s));
  }
  cluster.Heal();
  cluster.RunFor(5'000'000);

  EXPECT_EQ(decided, submitted) << "a transaction never decided at scale";
  EXPECT_GT(double(committed) / double(submitted), 0.9);
  EXPECT_TRUE(cluster.AuditAll().ok());
  for (ItemId item : items) {
    EXPECT_EQ(cluster.Audit(item).in_flight, 0)
        << "Vm failed to drain for item " << item.value();
  }
}

}  // namespace
}  // namespace dvp
