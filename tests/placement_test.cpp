// Placement layer: surplus-hint cache semantics, hint piggybacking through a
// live cluster, surplus-directed gathers, multi-round gathers, the exact
// shortfall split, and the background rebalancer feeding the local-commit
// fast path. The chaos-facing pinned case at the bottom proves the layer
// coexists with faults under the full oracle suite.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chaos/harness.h"
#include "placement/placement.h"
#include "system/cluster.h"

namespace dvp {
namespace {

using core::CountDomain;
using txn::TxnOp;
using txn::TxnOutcome;
using txn::TxnResult;
using txn::TxnSpec;

// ---- SurplusMap unit behaviour ----------------------------------------------

class PlacementUnitTest : public ::testing::Test {
 protected:
  void Build(placement::PlacementOptions popts, uint32_t num_sites = 4) {
    catalog_ = std::make_unique<core::Catalog>();
    item_ = catalog_->AddItem("pool", CountDomain::Instance(), 100);
    store_ = std::make_unique<core::ValueStore>(catalog_.get());
    pm_ = std::make_unique<placement::PlacementManager>(
        SiteId(0), num_sites, &kernel_, store_.get(), /*metrics=*/nullptr,
        popts);
  }

  void AdvanceTo(SimTime when) {
    kernel_.ScheduleAt(when, [] {});
    kernel_.Run();
  }

  sim::Kernel kernel_;
  std::unique_ptr<core::Catalog> catalog_;
  ItemId item_;
  std::unique_ptr<core::ValueStore> store_;
  std::unique_ptr<placement::PlacementManager> pm_;
};

TEST_F(PlacementUnitTest, RankTargetsOrdersBySurplusAndIgnoresStale) {
  placement::PlacementOptions popts;
  popts.hints_per_frame = 4;
  popts.hint_staleness_us = 100'000;
  Build(popts);

  pm_->OnHints(SiteId(1), {{item_, 10, 0, 1}});
  pm_->OnHints(SiteId(2), {{item_, 30, 0, 1}});
  pm_->OnHints(SiteId(3), {{item_, 0, 5, 1}});  // demand only: not a target
  auto ranked = pm_->RankTargets(item_);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].site, SiteId(2));
  EXPECT_EQ(ranked[0].surplus, 30);
  EXPECT_EQ(ranked[1].site, SiteId(1));

  // Past the freshness window every cached hint stops steering gathers.
  AdvanceTo(200'000);
  EXPECT_TRUE(pm_->RankTargets(item_).empty());
}

TEST_F(PlacementUnitTest, ReorderedOlderStampCannotOverwriteNewer) {
  placement::PlacementOptions popts;
  popts.hints_per_frame = 4;
  Build(popts);

  pm_->OnHints(SiteId(1), {{item_, 25, 0, /*stamp=*/7}});
  pm_->OnHints(SiteId(1), {{item_, 3, 0, /*stamp=*/4}});  // stale frame
  auto ranked = pm_->RankTargets(item_);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0].surplus, 25);
}

TEST_F(PlacementUnitTest, FeedbackAdjustsCacheWithoutNewFrames) {
  placement::PlacementOptions popts;
  popts.hints_per_frame = 4;
  Build(popts);

  pm_->OnHints(SiteId(1), {{item_, 20, 0, 1}});
  pm_->NoteShipped(SiteId(1), item_, 15);
  auto ranked = pm_->RankTargets(item_);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0].surplus, 5);

  // A "nothing to ship" NACK zeroes the entry outright.
  pm_->NoteEmpty(SiteId(1), item_);
  EXPECT_TRUE(pm_->RankTargets(item_).empty());
}

TEST_F(PlacementUnitTest, AdvertsReportShippableSurplusAndLocalDemand) {
  placement::PlacementOptions popts;
  popts.hints_per_frame = 4;
  popts.demand_halflife_us = 1'000'000;
  Build(popts);
  store_->Install(item_, 40, Timestamp::Zero());

  auto adverts = pm_->AdvertsFor(SiteId(1));
  ASSERT_EQ(adverts.size(), 1u);
  EXPECT_EQ(adverts[0].item, item_);
  EXPECT_EQ(adverts[0].surplus, 40);
  EXPECT_EQ(adverts[0].demand, 0);

  pm_->NoteShortfall(item_, 12);
  adverts = pm_->AdvertsFor(SiteId(1));
  ASSERT_EQ(adverts.size(), 1u);
  EXPECT_EQ(adverts[0].demand, 12);

  // Demand is an EWMA: it halves per halflife instead of persisting forever.
  AdvanceTo(2'000'000);
  EXPECT_EQ(pm_->LocalDemand(item_), 3);
}

// ---- Sparse-state behaviour (the O(active) rewrite) --------------------------

// The advert ring holds items this site has touched — never the catalog
// width — and drained items leave it as the advert cursor passes them.
TEST(PlacementSparseTest, AdvertRingTracksTouchedItemsAndRetiresDrained) {
  sim::Kernel kernel;
  core::Catalog catalog;
  std::vector<ItemId> items;
  for (int i = 0; i < 100; ++i) {
    items.push_back(
        catalog.AddItem("i" + std::to_string(i), CountDomain::Instance(), 10));
  }
  core::ValueStore store(&catalog);
  placement::PlacementOptions popts;
  popts.hints_per_frame = 4;
  placement::PlacementManager pm(SiteId(0), 4, &kernel, &store,
                                 /*metrics=*/nullptr, popts);
  EXPECT_EQ(pm.advert_ring_size(), 0u);

  store.Install(items[3], 10, Timestamp::Zero());
  store.SetValue(items[10], 5);
  EXPECT_EQ(pm.advert_ring_size(), 2u);  // O(touched), not 100

  auto adverts = pm.AdvertsFor(SiteId(1));
  EXPECT_EQ(adverts.size(), 2u);

  // Drain both fragments: with no surplus and no local demand the next
  // advert pass retires the ring entries instead of advertising nothing
  // forever.
  store.SetValue(items[3], 0);
  store.SetValue(items[10], 0);
  EXPECT_TRUE(pm.AdvertsFor(SiteId(1)).empty());
  EXPECT_EQ(pm.advert_ring_size(), 0u);

  // A later write re-adds the item — retirement is lazy, not permanent.
  store.SetValue(items[10], 2);
  EXPECT_EQ(pm.advert_ring_size(), 1u);
}

// Fragments resident before the manager exists (bootstrap, recovery) still
// get airtime: the constructor seeds the ring from the store.
TEST(PlacementSparseTest, AdvertRingSeedsFromFragmentsResidentAtConstruction) {
  sim::Kernel kernel;
  core::Catalog catalog;
  ItemId a = catalog.AddItem("a", CountDomain::Instance(), 50);
  catalog.AddItem("b", CountDomain::Instance(), 50);
  core::ValueStore store(&catalog);
  store.Install(a, 50, Timestamp::Zero());

  placement::PlacementOptions popts;
  popts.hints_per_frame = 4;
  placement::PlacementManager pm(SiteId(0), 4, &kernel, &store,
                                 /*metrics=*/nullptr, popts);
  EXPECT_EQ(pm.advert_ring_size(), 1u);
  auto adverts = pm.AdvertsFor(SiteId(1));
  ASSERT_EQ(adverts.size(), 1u);
  EXPECT_EQ(adverts[0].item, a);
  EXPECT_EQ(adverts[0].surplus, 50);
}

// The rebalance tick evicts hint rows untouched for
// cache_evict_staleness_windows staleness windows, so the cache is bounded
// by recently-hinted items instead of growing with every item ever hinted.
TEST_F(PlacementUnitTest, TickEvictsStaleHintRowsAndBoundsTheCache) {
  placement::PlacementOptions popts;
  popts.hints_per_frame = 4;
  popts.hint_staleness_us = 10'000;
  popts.cache_evict_staleness_windows = 2;  // evict after 20ms untouched
  popts.rebalance = true;
  popts.rebalance_interval_us = 5'000;
  Build(popts);
  pm_->set_send_value_fn(
      [](SiteId, ItemId, core::Value) { return Status::OK(); });
  pm_->Start();

  pm_->OnHints(SiteId(1), {{item_, 10, 0, 1}});
  pm_->OnHints(SiteId(2), {{item_, 7, 0, 1}});
  EXPECT_EQ(pm_->cache_items(), 1u);
  EXPECT_EQ(pm_->cache_entries(), 2u);

  // Run past the eviction horizon (bounded run: the tick rearms forever).
  kernel_.Run(100'000);
  EXPECT_EQ(pm_->cache_items(), 0u);
  EXPECT_EQ(pm_->cache_entries(), 0u);
  EXPECT_EQ(pm_->cache_entries_peak(), 2u);  // high-water mark survives
}

// ---- Cluster-level behaviour ------------------------------------------------

class PlacementClusterTest : public ::testing::Test {
 protected:
  void Build(system::ClusterOptions opts,
             const std::vector<core::Value>& split) {
    catalog_ = std::make_unique<core::Catalog>();
    core::Value total = 0;
    for (core::Value v : split) total += v;
    item_ = catalog_->AddItem("pool", CountDomain::Instance(), total);
    cluster_ = std::make_unique<system::Cluster>(catalog_.get(), opts);
    std::map<ItemId, std::vector<core::Value>> alloc;
    alloc[item_] = split;
    ASSERT_TRUE(cluster_->Bootstrap(alloc).ok());
  }

  TxnResult SubmitAndRun(SiteId at, const TxnSpec& spec,
                         SimTime run_us = 2'000'000) {
    TxnResult out;
    bool done = false;
    auto submitted = cluster_->Submit(at, spec, [&](const TxnResult& r) {
      out = r;
      done = true;
    });
    EXPECT_TRUE(submitted.ok());
    cluster_->RunFor(run_us);
    EXPECT_TRUE(done);
    return out;
  }

  std::unique_ptr<core::Catalog> catalog_;
  ItemId item_;
  std::unique_ptr<system::Cluster> cluster_;
};

TEST_F(PlacementClusterTest, HintsRideExistingFramesAcrossTheCluster) {
  system::ClusterOptions opts;
  opts.num_sites = 2;
  opts.site.placement.hints_per_frame = 4;
  opts.site.placement.hint_staleness_us = 60'000'000;
  Build(opts, {10, 50});

  // The gather's request/Vm exchange is the only traffic — the hints ride it.
  TxnSpec spec;
  spec.ops = {TxnOp::Decrement(item_, 20)};
  TxnResult r = SubmitAndRun(SiteId(0), spec);
  EXPECT_EQ(r.outcome, TxnOutcome::kCommitted);

  CounterSet counters = cluster_->AggregateCounters();
  EXPECT_GT(counters.Get("placement.hint.observed"), 0u);
  auto ranked = cluster_->site(SiteId(0)).placement()->RankTargets(item_);
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked[0].site, SiteId(1));
}

TEST_F(PlacementClusterTest, DirectedGatherAsksOnlyTheSurplusSite) {
  system::ClusterOptions opts;
  opts.num_sites = 4;
  opts.site.placement.hints_per_frame = 4;
  opts.site.placement.hint_staleness_us = 60'000'000;
  opts.site.txn.targeting = txn::TargetPolicy::kSurplus;
  Build(opts, {5, 0, 0, 200});

  // Warm-up: the first gather has no hints, falls back to blind fan-out, and
  // the replies seed every cache.
  TxnSpec spec;
  spec.ops = {TxnOp::Decrement(item_, 10)};
  ASSERT_EQ(SubmitAndRun(SiteId(0), spec).outcome, TxnOutcome::kCommitted);
  CounterSet before = cluster_->AggregateCounters();
  EXPECT_GT(before.Get("placement.gather.fallback"), 0u);

  // Directed: the ranked cache points at site 3 alone; one request message.
  TxnResult r = SubmitAndRun(SiteId(0), spec);
  EXPECT_EQ(r.outcome, TxnOutcome::kCommitted);
  CounterSet after = cluster_->AggregateCounters();
  EXPECT_GT(after.Get("placement.gather.directed"),
            before.Get("placement.gather.directed"));
  EXPECT_EQ(after.Get("req.msgs") - before.Get("req.msgs"), 1u);
}

TEST_F(PlacementClusterTest, EmptyReplyNackRedirectsTheNextGather) {
  system::ClusterOptions opts;
  opts.num_sites = 3;
  opts.site.placement.hints_per_frame = 4;
  opts.site.placement.hint_staleness_us = 60'000'000;  // only feedback corrects
  opts.site.txn.targeting = txn::TargetPolicy::kSurplus;
  opts.site.txn.gather_retry_us = 100'000;
  Build(opts, {0, 0, 40});

  // Seed site 0's cache with a lie: empty site 1 claims plenty of surplus.
  cluster_->site(SiteId(0)).placement()->OnHints(SiteId(1),
                                                 {{item_, 100, 0, 1}});

  // The directed gather asks site 1 first, gets the surplus NACK, and the
  // retry round (the cache now knows site 1 is empty) falls back to blind
  // fan-out and reaches site 2's real surplus.
  TxnSpec spec;
  spec.ops = {TxnOp::Decrement(item_, 30)};
  TxnResult r = SubmitAndRun(SiteId(0), spec);
  EXPECT_EQ(r.outcome, TxnOutcome::kCommitted);
  EXPECT_GE(r.rounds, 2u);
  CounterSet counters = cluster_->AggregateCounters();
  EXPECT_GT(counters.Get("req.surplus_nack"), 0u);
  EXPECT_GT(counters.Get("placement.hint.empty"), 0u);
}

// Satellite: a gather that under-ships in round 1 completes in a later
// retry round instead of waiting for the timeout to abort it.
TEST_F(PlacementClusterTest, MultiRoundGatherCompletesAndCountsRounds) {
  system::ClusterOptions opts;
  opts.num_sites = 3;
  opts.site.txn.targeting = txn::TargetPolicy::kRandom;
  opts.site.txn.request_fanout = 1;
  opts.site.txn.gather_retry_us = 50'000;
  opts.site.txn.timeout_us = 2'000'000;
  Build(opts, {0, 20, 20});

  // Shortfall 30 > any single site's 20: round 1 under-ships no matter which
  // target the fan-out of one draws; a later round must fill the rest.
  TxnSpec spec;
  spec.ops = {TxnOp::Decrement(item_, 30)};
  TxnResult r = SubmitAndRun(SiteId(0), spec, 4'000'000);
  EXPECT_EQ(r.outcome, TxnOutcome::kCommitted);
  EXPECT_GE(r.rounds, 2u);

  CounterSet counters = cluster_->AggregateCounters();
  EXPECT_GE(counters.Get("req.sent"), 2u);
  EXPECT_GE(counters.Get("req.msgs"), 2u);
  Histogram* rounds =
      cluster_->site(SiteId(0)).metrics().histogram("txn.rounds");
  ASSERT_EQ(rounds->count(), 1u);
  EXPECT_GE(rounds->max(), 2.0);
  EXPECT_TRUE(cluster_->AuditAll().ok());
}

// Satellite: divide_shortfall's split sums exactly to the shortfall — the
// old ceil division gathered up to k-1 surplus units per round.
TEST_F(PlacementClusterTest, DivideShortfallSumsExactlyToTheShortfall) {
  system::ClusterOptions opts;
  opts.num_sites = 3;
  opts.site.txn.divide_shortfall = true;
  opts.site.txn.targeting = txn::TargetPolicy::kFirstK;
  Build(opts, {10, 20, 20});

  // Shortfall 5 across 2 targets: exact split asks 3 + 2. Ceil division
  // would ask 3 + 3 and leave a stray unit at site 0 after commit.
  TxnSpec spec;
  spec.ops = {TxnOp::Decrement(item_, 15)};
  TxnResult r = SubmitAndRun(SiteId(0), spec);
  EXPECT_EQ(r.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(cluster_->site(SiteId(0)).LocalValue(item_), 0);
  EXPECT_TRUE(cluster_->AuditAll().ok());
}

TEST_F(PlacementClusterTest, RebalancerFeedsTheDemandHotSpot) {
  system::ClusterOptions opts;
  opts.num_sites = 4;
  opts.site.placement.hints_per_frame = 4;
  opts.site.placement.rebalance = true;
  opts.site.placement.rebalance_interval_us = 100'000;
  opts.site.txn.targeting = txn::TargetPolicy::kSurplus;
  Build(opts, {0, 400, 400, 400});

  // A steady decrement stream at value-less site 0: the early ones gather
  // remotely (feeding the demand EWMA the hints broadcast), then the
  // rebalancer's pushes let later ones commit on the local fragment alone.
  uint32_t committed = 0;
  for (uint32_t i = 0; i < 60; ++i) {
    cluster_->kernel().ScheduleAt(50'000 * SimTime(i + 1), [&]() {
      TxnSpec spec;
      spec.ops = {TxnOp::Decrement(item_, 4)};
      (void)cluster_->Submit(SiteId(0), spec, [&](const TxnResult& r) {
        if (r.committed()) ++committed;
      });
    });
  }
  cluster_->RunFor(5'000'000);

  CounterSet counters = cluster_->AggregateCounters();
  EXPECT_EQ(committed, 60u);
  EXPECT_GT(counters.Get("placement.rebalance.push"), 0u);
  // The fast path: decrements that found the rebalanced value locally.
  EXPECT_GT(counters.Get("txn.local_commit"), 0u);
  EXPECT_TRUE(cluster_->AuditAll().ok());
  EXPECT_TRUE(cluster_->AuditAllVolatile().ok());
}

// ---- Chaos coexistence ------------------------------------------------------

// Pinned case: hints + rebalancer + crashes and loss, full oracle suite.
// The rebalancer's pushes are ordinary Vm transfers, so conservation and
// exactly-once accounting hold by construction even mid-fault.
TEST(PlacementChaos, PinnedCaseWithHintsAndRebalancerHoldsAllOracles) {
  chaos::ChaosCase c;
  c.seed = 505;
  c.workload = {4,     2,   240, 120, 20'000, chaos::kAnySite, 0, 150,
                40,    150'000, 60,  0,   0,      0,               0,
                /*surplus_hints=*/1, /*rebalance=*/1};
  c.plan.events = {
      {40'000, chaos::FaultKind::kCrash, 1, 0},
      {90'000, chaos::FaultKind::kRecover, 1, 0},
      {120'000, chaos::FaultKind::kLinkLoss, 0, 120},
      {400'000, chaos::FaultKind::kLinkLoss, 0, 0},
  };
  chaos::RunResult r = chaos::RunCase(c);
  EXPECT_TRUE(r.ok) << r.violation;
  EXPECT_GT(r.committed, 0u);
}

}  // namespace
}  // namespace dvp
