// The full-read drain protocol (§3, §5): termination detection via double
// all-zero rounds with stable acceptance counters. The property at stake:
// a committed read returns EXACTLY initial + Σ deltas of the transactions
// serialized before it — even with concurrent traffic, lossy links and
// in-flight Vm racing the read.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "system/cluster.h"
#include "verify/serializability.h"

namespace dvp {
namespace {

using core::CountDomain;
using txn::TxnOp;
using txn::TxnOutcome;
using txn::TxnResult;
using txn::TxnSpec;

class ReadProtocolTest : public ::testing::Test {
 protected:
  void Build(system::ClusterOptions opts, core::Value total = 400) {
    catalog_ = std::make_unique<core::Catalog>();
    item_ = catalog_->AddItem("pool", CountDomain::Instance(), total);
    cluster_ = std::make_unique<system::Cluster>(catalog_.get(), opts);
    cluster_->BootstrapEven();
  }

  TxnResult SubmitAndRun(SiteId at, const TxnSpec& spec,
                         SimTime run_us = 4'000'000) {
    TxnResult out;
    bool done = false;
    auto ok = cluster_->Submit(at, spec, [&](const TxnResult& r) {
      out = r;
      done = true;
    });
    EXPECT_TRUE(ok.ok());
    cluster_->RunFor(run_us);
    EXPECT_TRUE(done);
    return out;
  }

  // A first read attempt from a cold site is often refused by the Conc1 gate
  // (fragment stamps exceed the fresh reader timestamp); the CC NACKs bump
  // the reader's clock, so one or two client retries suffice -- the realistic
  // usage pattern the paper's conservative scheme implies.
  TxnResult ReadWithRetry(SiteId at, ItemId item, int attempts = 3,
                          SimTime run_us = 4'000'000) {
    TxnSpec read;
    read.ops = {TxnOp::ReadFull(item)};
    TxnResult r;
    for (int i = 0; i < attempts; ++i) {
      r = SubmitAndRun(at, read, run_us);
      if (r.committed()) break;
    }
    return r;
  }

  std::unique_ptr<core::Catalog> catalog_;
  ItemId item_;
  std::unique_ptr<system::Cluster> cluster_;
};

TEST_F(ReadProtocolTest, QuiescentReadIsExact) {
  Build({});
  TxnSpec read;
  read.ops = {TxnOp::ReadFull(item_)};
  TxnResult r = SubmitAndRun(SiteId(2), read);
  ASSERT_EQ(r.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(r.read_values.at(item_), 400);
  // Everything is at the reader now; every other fragment is zero.
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(cluster_->site(SiteId(s)).LocalValue(item_),
              s == 2 ? 400 : 0);
  }
  // Minimum protocol cost: an initial gather round + two all-zero
  // confirmation rounds.
  EXPECT_GE(r.rounds, 2u);
}

TEST_F(ReadProtocolTest, BackToBackReadsBothExact) {
  Build({});
  TxnSpec read;
  read.ops = {TxnOp::ReadFull(item_)};
  EXPECT_EQ(SubmitAndRun(SiteId(0), read).read_values.at(item_), 400);
  EXPECT_EQ(SubmitAndRun(SiteId(3), read).read_values.at(item_), 400);
  EXPECT_EQ(cluster_->site(SiteId(3)).LocalValue(item_), 400);
}

TEST_F(ReadProtocolTest, ReadAfterUpdatesSeesCommittedTotal) {
  Build({});
  TxnSpec d;
  d.ops = {TxnOp::Decrement(item_, 37)};
  ASSERT_EQ(SubmitAndRun(SiteId(1), d).outcome, TxnOutcome::kCommitted);
  TxnSpec i;
  i.ops = {TxnOp::Increment(item_, 12)};
  ASSERT_EQ(SubmitAndRun(SiteId(3), i).outcome, TxnOutcome::kCommitted);
  TxnResult r = ReadWithRetry(SiteId(0), item_);
  ASSERT_EQ(r.outcome, TxnOutcome::kCommitted) << r.status.ToString();
  EXPECT_EQ(r.read_values.at(item_), 375);
}

TEST_F(ReadProtocolTest, ReadDuringPartitionAborts) {
  Build({});
  ASSERT_TRUE(cluster_->Partition({{SiteId(0), SiteId(1)},
                                   {SiteId(2), SiteId(3)}})
                  .ok());
  TxnSpec read;
  read.ops = {TxnOp::ReadFull(item_)};
  TxnResult r = SubmitAndRun(SiteId(0), read);
  EXPECT_EQ(r.outcome, TxnOutcome::kAbortTimeout);
  // The aborted read's gathered value is redistribution, not loss.
  EXPECT_TRUE(cluster_->AuditAll().ok());
}

TEST_F(ReadProtocolTest, ReadRacingInFlightVmStillExact) {
  // Start a transfer between two non-reader sites, then read while its Vm is
  // in flight. The sender refuses the read until its outbox drains, so the
  // reader can never terminate with the moving value uncounted.
  system::ClusterOptions opts;
  opts.link.base_delay_us = 10'000;  // slow links: wide race window
  opts.link.jitter_mean_us = 5'000;
  Build(opts);
  ASSERT_TRUE(cluster_->site(SiteId(1)).SendValue(SiteId(3), item_, 40).ok());
  TxnResult r = ReadWithRetry(SiteId(0), item_, 3, 8'000'000);
  ASSERT_EQ(r.outcome, TxnOutcome::kCommitted) << r.status.ToString();
  EXPECT_EQ(r.read_values.at(item_), 400);
}

// Property sweep: reads interleaved with concurrent committed updates under
// lossy links. The precise criterion is timestamp-order serializability
// (Conc1): every committed read value must equal the running total of the
// serial replay at the read's TS(t) position — verified by the checker,
// together with decrement applicability and the exact final totals.
class ReadRaceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReadRaceTest, ConcurrentReadsAreConsistentSnapshots) {
  core::Catalog catalog;
  ItemId item = catalog.AddItem("pool", CountDomain::Instance(), 500);
  system::ClusterOptions opts;
  opts.num_sites = 4;
  opts.seed = GetParam();
  opts.link.loss_prob = 0.1;
  opts.site.txn.timeout_us = 800'000;
  system::Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();

  Rng rng(GetParam() * 13 + 1);
  verify::HistoryChecker checker(&catalog);
  int reads_committed = 0;

  // Phase 1: concurrent updates with interleaved (often starving) reads.
  for (int step = 0; step < 50; ++step) {
    SiteId at(static_cast<uint32_t>(rng.NextBounded(4)));
    double roll = rng.NextDouble();
    TxnSpec spec;
    if (roll < 0.15) {
      spec.ops = {TxnOp::ReadFull(item)};
    } else {
      core::Value amount = rng.NextInt(1, 10);
      spec.ops = {rng.NextBool(0.5) ? TxnOp::Decrement(item, amount)
                                    : TxnOp::Increment(item, amount)};
    }
    (void)cluster.Submit(at, spec, [&, spec](const TxnResult& r) {
      if (!r.committed()) return;
      if (!r.read_values.empty()) ++reads_committed;
      checker.RecordCommitAt(cluster.Now(), r.id, spec, r);
    });
    cluster.RunFor(rng.NextInt(10'000, 120'000));
  }
  cluster.RunFor(5'000'000);

  // Phase 2: the system quiesces; a read (with NACK-assisted retries) must
  // now succeed and join the checked history.
  for (int attempt = 0; attempt < 5 && reads_committed == 0; ++attempt) {
    TxnSpec read;
    read.ops = {TxnOp::ReadFull(item)};
    (void)cluster.Submit(SiteId(0), read, [&, read](const TxnResult& r) {
      if (!r.committed()) return;
      ++reads_committed;
      checker.RecordCommitAt(cluster.Now(), r.id, read, r);
    });
    cluster.RunFor(3'000'000);
  }
  EXPECT_GT(reads_committed, 0) << "no read survived even at quiescence";

  std::map<ItemId, core::Value> final_totals{{item, cluster.TotalOf(item)}};
  Status check = checker.Check(verify::HistoryChecker::Order::kTimestamp,
                               &final_totals);
  EXPECT_TRUE(check.ok()) << check.ToString();
  EXPECT_TRUE(cluster.AuditAll().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReadRaceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace dvp
