// Unit tests for the lock manager (try-lock-only, deadlock-free by
// construction) and the Conc1/Conc2 policy object.
#include <gtest/gtest.h>

#include "cc/lock_manager.h"
#include "cc/policy.h"

namespace dvp::cc {
namespace {

std::vector<ItemId> Items(std::initializer_list<uint32_t> ids) {
  std::vector<ItemId> out;
  for (uint32_t id : ids) out.push_back(ItemId(id));
  return out;
}

TEST(LockManagerTest, TryLockAllGrantsWhenFree) {
  LockManager locks;
  EXPECT_TRUE(locks.TryLockAll(Items({1, 2, 3}), TxnId(10)));
  EXPECT_EQ(locks.num_locked(), 3u);
  EXPECT_TRUE(locks.HeldBy(ItemId(2), TxnId(10)));
  EXPECT_EQ(locks.OwnerOf(ItemId(3)), TxnId(10));
}

TEST(LockManagerTest, TryLockAllIsAllOrNothing) {
  LockManager locks;
  ASSERT_TRUE(locks.TryLock(ItemId(2), TxnId(1)));
  EXPECT_FALSE(locks.TryLockAll(Items({1, 2, 3}), TxnId(9)));
  // Nothing acquired: items 1 and 3 stay free.
  EXPECT_FALSE(locks.IsLocked(ItemId(1)));
  EXPECT_FALSE(locks.IsLocked(ItemId(3)));
  EXPECT_EQ(locks.OwnerOf(ItemId(2)), TxnId(1));
}

TEST(LockManagerTest, OwnerMayRelock) {
  LockManager locks;
  ASSERT_TRUE(locks.TryLock(ItemId(1), TxnId(5)));
  EXPECT_TRUE(locks.TryLock(ItemId(1), TxnId(5)));
  EXPECT_TRUE(locks.TryLockAll(Items({1, 2}), TxnId(5)));
}

TEST(LockManagerTest, DuplicateItemsInRequestAreFine) {
  LockManager locks;
  EXPECT_TRUE(locks.TryLockAll(Items({4, 4, 4}), TxnId(2)));
  EXPECT_EQ(locks.num_locked(), 1u);
}

TEST(LockManagerTest, UnlockOnlyByOwner) {
  LockManager locks;
  ASSERT_TRUE(locks.TryLock(ItemId(1), TxnId(5)));
  locks.Unlock(ItemId(1), TxnId(6));  // not the owner: no-op
  EXPECT_TRUE(locks.IsLocked(ItemId(1)));
  locks.Unlock(ItemId(1), TxnId(5));
  EXPECT_FALSE(locks.IsLocked(ItemId(1)));
}

TEST(LockManagerTest, ReleaseAllFreesOnlyOwners) {
  LockManager locks;
  ASSERT_TRUE(locks.TryLockAll(Items({1, 2}), TxnId(5)));
  ASSERT_TRUE(locks.TryLock(ItemId(3), TxnId(6)));
  locks.ReleaseAll(TxnId(5));
  EXPECT_FALSE(locks.IsLocked(ItemId(1)));
  EXPECT_FALSE(locks.IsLocked(ItemId(2)));
  EXPECT_TRUE(locks.IsLocked(ItemId(3)));
}

TEST(LockManagerTest, ClearDropsEverything) {
  LockManager locks;
  ASSERT_TRUE(locks.TryLockAll(Items({1, 2, 3}), TxnId(5)));
  locks.Clear();
  EXPECT_EQ(locks.num_locked(), 0u);
  EXPECT_EQ(locks.OwnerOf(ItemId(1)), TxnId::Invalid());
}

TEST(LockManagerTest, OwnerOfFreeItemIsInvalid) {
  LockManager locks;
  EXPECT_FALSE(locks.OwnerOf(ItemId(42)).valid());
  EXPECT_FALSE(locks.HeldBy(ItemId(42), TxnId(1)));
}

// ---- CcPolicy -----------------------------------------------------------------

TEST(CcPolicyTest, Conc1GateRequiresDominatingTimestamp) {
  CcPolicy policy(CcScheme::kConc1);
  Timestamp newer(10, SiteId(0));
  Timestamp older(5, SiteId(1));
  EXPECT_TRUE(policy.MayLock(newer, older));
  EXPECT_FALSE(policy.MayLock(older, newer));
  EXPECT_TRUE(policy.StampOnLock());
  EXPECT_FALSE(policy.BroadcastRequests());
}

TEST(CcPolicyTest, Conc1RejectsEqualTimestampAtBegin) {
  CcPolicy policy(CcScheme::kConc1);
  Timestamp ts(10, SiteId(0));
  // MayLock uses strict dominance at Begin; re-access equality is handled
  // by the request path, not this predicate.
  EXPECT_FALSE(policy.MayLock(ts, ts));
}

TEST(CcPolicyTest, Conc2HasNoTimestampGate) {
  CcPolicy policy(CcScheme::kConc2);
  Timestamp newer(10, SiteId(0));
  Timestamp older(5, SiteId(1));
  EXPECT_TRUE(policy.MayLock(older, newer));
  EXPECT_FALSE(policy.StampOnLock());
  EXPECT_TRUE(policy.BroadcastRequests());
}

}  // namespace
}  // namespace dvp::cc
