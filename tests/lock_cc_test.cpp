// Unit tests for the lock manager (try-lock-only, deadlock-free by
// construction) and the Conc1/Conc2 policy object, plus the multi-item
// lock-ordering invariant and its cluster-level deadlock regression.
#include <gtest/gtest.h>

#include "cc/lock_manager.h"
#include "cc/policy.h"
#include "system/cluster.h"

namespace dvp::cc {
namespace {

std::vector<ItemId> Items(std::initializer_list<uint32_t> ids) {
  std::vector<ItemId> out;
  for (uint32_t id : ids) out.push_back(ItemId(id));
  return out;
}

TEST(LockManagerTest, TryLockAllGrantsWhenFree) {
  LockManager locks;
  EXPECT_TRUE(locks.TryLockAll(Items({1, 2, 3}), TxnId(10)));
  EXPECT_EQ(locks.num_locked(), 3u);
  EXPECT_TRUE(locks.HeldBy(ItemId(2), TxnId(10)));
  EXPECT_EQ(locks.OwnerOf(ItemId(3)), TxnId(10));
}

TEST(LockManagerTest, TryLockAllIsAllOrNothing) {
  LockManager locks;
  ASSERT_TRUE(locks.TryLock(ItemId(2), TxnId(1)));
  EXPECT_FALSE(locks.TryLockAll(Items({1, 2, 3}), TxnId(9)));
  // Nothing acquired: items 1 and 3 stay free.
  EXPECT_FALSE(locks.IsLocked(ItemId(1)));
  EXPECT_FALSE(locks.IsLocked(ItemId(3)));
  EXPECT_EQ(locks.OwnerOf(ItemId(2)), TxnId(1));
}

TEST(LockManagerTest, OwnerMayRelock) {
  LockManager locks;
  ASSERT_TRUE(locks.TryLock(ItemId(1), TxnId(5)));
  EXPECT_TRUE(locks.TryLock(ItemId(1), TxnId(5)));
  EXPECT_TRUE(locks.TryLockAll(Items({1, 2}), TxnId(5)));
}

TEST(LockManagerTest, DuplicateItemsInRequestAreFine) {
  LockManager locks;
  EXPECT_TRUE(locks.TryLockAll(Items({4, 4, 4}), TxnId(2)));
  EXPECT_EQ(locks.num_locked(), 1u);
}

TEST(LockManagerTest, UnlockOnlyByOwner) {
  LockManager locks;
  ASSERT_TRUE(locks.TryLock(ItemId(1), TxnId(5)));
  locks.Unlock(ItemId(1), TxnId(6));  // not the owner: no-op
  EXPECT_TRUE(locks.IsLocked(ItemId(1)));
  locks.Unlock(ItemId(1), TxnId(5));
  EXPECT_FALSE(locks.IsLocked(ItemId(1)));
}

TEST(LockManagerTest, ReleaseAllFreesOnlyOwners) {
  LockManager locks;
  ASSERT_TRUE(locks.TryLockAll(Items({1, 2}), TxnId(5)));
  ASSERT_TRUE(locks.TryLock(ItemId(3), TxnId(6)));
  locks.ReleaseAll(TxnId(5));
  EXPECT_FALSE(locks.IsLocked(ItemId(1)));
  EXPECT_FALSE(locks.IsLocked(ItemId(2)));
  EXPECT_TRUE(locks.IsLocked(ItemId(3)));
}

TEST(LockManagerTest, ClearDropsEverything) {
  LockManager locks;
  ASSERT_TRUE(locks.TryLockAll(Items({1, 2, 3}), TxnId(5)));
  locks.Clear();
  EXPECT_EQ(locks.num_locked(), 0u);
  EXPECT_EQ(locks.OwnerOf(ItemId(1)), TxnId::Invalid());
}

TEST(LockManagerTest, OwnerOfFreeItemIsInvalid) {
  LockManager locks;
  EXPECT_FALSE(locks.OwnerOf(ItemId(42)).valid());
  EXPECT_FALSE(locks.HeldBy(ItemId(42), TxnId(1)));
}

// ---- Multi-item lock ordering -------------------------------------------------
//
// TryLockAllOrdered is the atomic-set acquisition path. Its contract: walk
// the requested set in global ascending item-id order with duplicates
// collapsed — the one total order every site agrees on, so no two multi-ops
// can ever wait on each other in a cycle — and acquire all or nothing.

TEST(LockOrderTest, AcquisitionWalksAscendingItemIdsDeduped) {
  LockManager locks;
  ASSERT_TRUE(locks.TryLockAllOrdered(Items({7, 2, 9, 2, 4}), TxnId(3)));
  std::vector<ItemId> expect = Items({2, 4, 7, 9});
  EXPECT_EQ(locks.last_acquisition_order(), expect);
  EXPECT_EQ(locks.num_locked(), 4u);
  for (ItemId item : expect) EXPECT_TRUE(locks.HeldBy(item, TxnId(3)));
}

TEST(LockOrderTest, OrderIsCanonicalRegardlessOfRequestOrder) {
  // The same set presented in any order must walk identically — this is the
  // invariant that makes the order global across sites (each site sorts
  // locally; no coordination needed).
  std::vector<ItemId> expect = Items({1, 5, 8});
  for (auto req : {Items({8, 5, 1}), Items({5, 8, 1}), Items({1, 8, 5})}) {
    LockManager locks;
    ASSERT_TRUE(locks.TryLockAllOrdered(req, TxnId(2)));
    EXPECT_EQ(locks.last_acquisition_order(), expect);
  }
}

TEST(LockOrderTest, MidSequenceConflictAcquiresNothing) {
  LockManager locks;
  ASSERT_TRUE(locks.TryLock(ItemId(4), TxnId(1)));
  EXPECT_FALSE(locks.TryLockAllOrdered(Items({7, 2, 9, 4}), TxnId(9)));
  // All-or-nothing: the items before AND after the conflict stay free, and
  // no acquisition order was recorded because nothing was acquired.
  EXPECT_FALSE(locks.IsLocked(ItemId(2)));
  EXPECT_FALSE(locks.IsLocked(ItemId(7)));
  EXPECT_FALSE(locks.IsLocked(ItemId(9)));
  EXPECT_EQ(locks.OwnerOf(ItemId(4)), TxnId(1));
  EXPECT_TRUE(locks.last_acquisition_order().empty());
}

TEST(LockOrderTest, OwnerMayRelockItsOwnSetOrdered) {
  LockManager locks;
  ASSERT_TRUE(locks.TryLockAllOrdered(Items({3, 1}), TxnId(5)));
  EXPECT_TRUE(locks.TryLockAllOrdered(Items({1, 3, 6}), TxnId(5)));
  EXPECT_EQ(locks.num_locked(), 3u);
}

// Cluster-level deadlock regression: opposing transfers A→B and B→A
// submitted simultaneously from different sites are the classic wait-cycle
// shape. With try-locks plus the canonical acquisition order there is no
// waiting to cycle, so every submission must DECIDE (commit or abort) —
// under every perturber interleaving, not just the FIFO one. A hang here
// (decided < submitted) is exactly the deadlock this suite regresses.
TEST(LockOrderTest, OpposingTransfersDecideUnderEveryInterleaving) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    core::Catalog catalog;
    ItemId a = catalog.AddItem("a", core::CountDomain::Instance(), 120);
    ItemId b = catalog.AddItem("b", core::CountDomain::Instance(), 120);
    system::ClusterOptions opts;
    opts.num_sites = 3;
    opts.seed = seed;
    opts.site.txn.multiop_timeout_us = 150'000;
    // Search interleavings: shuffle same-instant events and jitter delivery.
    opts.perturb.seed = seed * 13 + 7;
    opts.perturb.shuffle_ties = true;
    opts.perturb.max_jitter_us = 150;
    system::Cluster cluster(&catalog, opts);
    cluster.BootstrapEven();

    int submitted = 0;
    int decided = 0;
    auto submit = [&](SiteId at, const txn::TxnSpec& spec) {
      auto id = cluster.Submit(at, spec,
                               [&](const txn::TxnResult&) { ++decided; });
      ASSERT_TRUE(id.ok());
      ++submitted;
    };
    for (int round = 0; round < 4; ++round) {
      // Amounts above the local fragment (120/3 = 40 per site), so each
      // transfer must GATHER remotely while holding locks on both items —
      // the two sides wait on each other's locked fragments, which is the
      // wait-cycle shape the canonical order + timeout must always break.
      submit(SiteId(0), txn::MakeTransfer(a, b, 60));
      submit(SiteId(1), txn::MakeTransfer(b, a, 50));
      cluster.RunFor(700'000);
    }
    cluster.RunFor(2'000'000);

    EXPECT_EQ(decided, submitted) << "seed " << seed << ": undecided txn "
                                  << "— opposing transfers wedged";
    EXPECT_TRUE(cluster.AuditAllBulk().ok()) << "seed " << seed;
    EXPECT_EQ(cluster.TotalOf(a) + cluster.TotalOf(b), 240)
        << "seed " << seed;
  }
}

// ---- CcPolicy -----------------------------------------------------------------

TEST(CcPolicyTest, Conc1GateRequiresDominatingTimestamp) {
  CcPolicy policy(CcScheme::kConc1);
  Timestamp newer(10, SiteId(0));
  Timestamp older(5, SiteId(1));
  EXPECT_TRUE(policy.MayLock(newer, older));
  EXPECT_FALSE(policy.MayLock(older, newer));
  EXPECT_TRUE(policy.StampOnLock());
  EXPECT_FALSE(policy.BroadcastRequests());
}

TEST(CcPolicyTest, Conc1RejectsEqualTimestampAtBegin) {
  CcPolicy policy(CcScheme::kConc1);
  Timestamp ts(10, SiteId(0));
  // MayLock uses strict dominance at Begin; re-access equality is handled
  // by the request path, not this predicate.
  EXPECT_FALSE(policy.MayLock(ts, ts));
}

TEST(CcPolicyTest, Conc2HasNoTimestampGate) {
  CcPolicy policy(CcScheme::kConc2);
  Timestamp newer(10, SiteId(0));
  Timestamp older(5, SiteId(1));
  EXPECT_TRUE(policy.MayLock(older, newer));
  EXPECT_FALSE(policy.StampOnLock());
  EXPECT_TRUE(policy.BroadcastRequests());
}

}  // namespace
}  // namespace dvp::cc
