// Unit tests for the discrete-event kernel: ordering, determinism,
// cancellation, hooks.
#include <gtest/gtest.h>

#include <vector>

#include "sim/kernel.h"

namespace dvp::sim {
namespace {

TEST(KernelTest, StartsAtTimeZeroIdle) {
  Kernel kernel;
  EXPECT_EQ(kernel.Now(), 0);
  EXPECT_TRUE(kernel.Idle());
  EXPECT_FALSE(kernel.Step());
}

TEST(KernelTest, RunsEventsInTimeOrder) {
  Kernel kernel;
  std::vector<int> order;
  kernel.Schedule(30, [&]() { order.push_back(3); });
  kernel.Schedule(10, [&]() { order.push_back(1); });
  kernel.Schedule(20, [&]() { order.push_back(2); });
  kernel.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(kernel.Now(), 30);
}

TEST(KernelTest, EqualTimesRunFifo) {
  Kernel kernel;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    kernel.Schedule(5, [&order, i]() { order.push_back(i); });
  }
  kernel.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(KernelTest, EventsMayScheduleMoreEvents) {
  Kernel kernel;
  int fired = 0;
  std::function<void()> chain = [&]() {
    ++fired;
    if (fired < 5) kernel.Schedule(10, chain);
  };
  kernel.Schedule(10, chain);
  kernel.Run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(kernel.Now(), 50);
}

TEST(KernelTest, RunUntilStopsAtHorizon) {
  Kernel kernel;
  int fired = 0;
  kernel.Schedule(10, [&]() { ++fired; });
  kernel.Schedule(100, [&]() { ++fired; });
  uint64_t executed = kernel.Run(50);
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(kernel.Now(), 50);  // clock advances to the horizon
  kernel.Run(200);
  EXPECT_EQ(fired, 2);
}

TEST(KernelTest, CancelPreventsExecution) {
  Kernel kernel;
  bool fired = false;
  EventHandle handle = kernel.Schedule(10, [&]() { fired = true; });
  EXPECT_TRUE(handle.valid());
  handle.Cancel();
  EXPECT_TRUE(handle.cancelled());
  kernel.Run();
  EXPECT_FALSE(fired);
}

TEST(KernelTest, CancelAfterFireIsHarmless) {
  Kernel kernel;
  bool fired = false;
  EventHandle handle = kernel.Schedule(10, [&]() { fired = true; });
  kernel.Run();
  EXPECT_TRUE(fired);
  handle.Cancel();  // no crash, no effect
}

TEST(KernelTest, CancelledEventsDoNotAdvanceClockOnRun) {
  Kernel kernel;
  EventHandle h = kernel.Schedule(100, []() {});
  bool fired = false;
  kernel.Schedule(10, [&]() { fired = true; });
  h.Cancel();
  kernel.Run(kSimTimeMax);
  EXPECT_TRUE(fired);
  EXPECT_EQ(kernel.Now(), 10);
}

TEST(KernelTest, StepExecutesExactlyOne) {
  Kernel kernel;
  int fired = 0;
  kernel.Schedule(1, [&]() { ++fired; });
  kernel.Schedule(2, [&]() { ++fired; });
  EXPECT_TRUE(kernel.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(kernel.Step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(kernel.Step());
}

TEST(KernelTest, PostEventHookRunsAfterEachEvent) {
  Kernel kernel;
  int hooks = 0;
  kernel.set_post_event_hook([&]() { ++hooks; });
  kernel.Schedule(1, []() {});
  kernel.Schedule(2, []() {});
  kernel.Run();
  EXPECT_EQ(hooks, 2);
}

TEST(KernelTest, EventsExecutedCounts) {
  Kernel kernel;
  for (int i = 0; i < 7; ++i) kernel.Schedule(i, []() {});
  kernel.Run();
  EXPECT_EQ(kernel.events_executed(), 7u);
}

TEST(KernelTest, PendingEventsReflectsQueue) {
  Kernel kernel;
  kernel.Schedule(1, []() {});
  kernel.Schedule(2, []() {});
  EXPECT_EQ(kernel.PendingEvents(), 2u);
  kernel.Run();
  EXPECT_EQ(kernel.PendingEvents(), 0u);
}

TEST(KernelTest, ScheduleAtAbsoluteTime) {
  Kernel kernel;
  SimTime seen = -1;
  kernel.ScheduleAt(123, [&]() { seen = kernel.Now(); });
  kernel.Run();
  EXPECT_EQ(seen, 123);
}

// Regression: cancelled events used to stay queued as tombstones forever —
// a rig that arms and cancels an ack timer per packet grew the queue without
// bound, and PendingEvents() reported the garbage as backlog.
TEST(KernelTest, PendingEventsExcludesCancelledTombstones) {
  Kernel kernel;
  EventHandle cancelled = kernel.Schedule(5, []() { FAIL(); });
  kernel.Schedule(10, []() {});
  cancelled.Cancel();
  EXPECT_EQ(kernel.PendingEvents(), 1u);  // live only
  EXPECT_EQ(kernel.QueueEntries(), 2u);   // tombstone still queued
  EXPECT_FALSE(kernel.Idle());
  kernel.Run();
  EXPECT_EQ(kernel.PendingEvents(), 0u);
  EXPECT_TRUE(kernel.Idle());
  EXPECT_EQ(kernel.events_executed(), 1u);
}

TEST(KernelTest, CompactionDropsTombstonesWithoutReorderingLiveEvents) {
  Kernel kernel;
  std::vector<int> order;
  // Interleave live events with a large majority of cancelled ones so the
  // tombstone count crosses the half-queue compaction threshold.
  std::vector<EventHandle> doomed;
  for (int i = 0; i < 64; ++i) {
    kernel.ScheduleAt(1000 + i, [&order, i]() { order.push_back(i); });
    for (int j = 0; j < 4; ++j) {
      doomed.push_back(kernel.ScheduleAt(100 + i, []() { FAIL(); }));
    }
  }
  ASSERT_EQ(kernel.QueueEntries(), 64u + 256u);
  for (EventHandle& h : doomed) h.Cancel();
  EXPECT_EQ(kernel.PendingEvents(), 64u);
  // The next schedule trips compaction: tombstones (256) > queue/2.
  kernel.ScheduleAt(2000, [&order]() { order.push_back(64); });
  EXPECT_EQ(kernel.QueueEntries(), 65u);  // garbage gone
  EXPECT_EQ(kernel.PendingEvents(), 65u);
  kernel.Run();
  ASSERT_EQ(order.size(), 65u);
  for (int i = 0; i < 65; ++i) EXPECT_EQ(order[i], i);
}

TEST(KernelTest, CancelAfterCompactionIsHarmless) {
  Kernel kernel;
  std::vector<EventHandle> doomed;
  for (int i = 0; i < 128; ++i) {
    doomed.push_back(kernel.Schedule(i, []() { FAIL(); }));
  }
  for (EventHandle& h : doomed) h.Cancel();
  kernel.Schedule(500, []() {});  // trips compaction, retires tombstones
  EXPECT_EQ(kernel.QueueEntries(), 1u);
  // Double-cancel and cancel-after-retire must not corrupt the tally.
  for (EventHandle& h : doomed) h.Cancel();
  EXPECT_EQ(kernel.PendingEvents(), 1u);
  EXPECT_EQ(kernel.Run(), 1u);
  EXPECT_TRUE(kernel.Idle());
}

}  // namespace
}  // namespace dvp::sim
