// The stamped snapshot-read path (ReadMode::kSnapshot): a reader assembles
// Σ resident fragments + Σ in-flight value from per-site stamped replies,
// terminating when the Vm ledgers balance (Σ created == Σ accepted, counts
// and values). The properties at stake: the cut is EXACT (telescoping ledger
// identity), no value moves and no remote lock is taken, and every committed
// snapshot passes the windowed consistent-cut oracle even under loss,
// duplication, reordering and crashes.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "system/cluster.h"
#include "verify/serializability.h"

namespace dvp {
namespace {

using core::CountDomain;
using txn::TxnOp;
using txn::TxnOutcome;
using txn::TxnResult;
using txn::TxnSpec;

class SnapshotReadTest : public ::testing::Test {
 protected:
  void Build(system::ClusterOptions opts, core::Value total = 400) {
    catalog_ = std::make_unique<core::Catalog>();
    item_ = catalog_->AddItem("pool", CountDomain::Instance(), total);
    cluster_ = std::make_unique<system::Cluster>(catalog_.get(), opts);
    cluster_->BootstrapEven();
  }

  TxnResult SubmitAndRun(SiteId at, const TxnSpec& spec,
                         SimTime run_us = 4'000'000) {
    TxnResult out;
    bool done = false;
    auto ok = cluster_->Submit(at, spec, [&](const TxnResult& r) {
      out = r;
      done = true;
    });
    EXPECT_TRUE(ok.ok());
    cluster_->RunFor(run_us);
    EXPECT_TRUE(done);
    return out;
  }

  TxnResult Snapshot(SiteId at, SimTime run_us = 4'000'000) {
    TxnSpec spec;
    spec.ops = {TxnOp::ReadSnapshot(item_)};
    return SubmitAndRun(at, spec, run_us);
  }

  uint64_t Counter(const std::string& name) {
    auto counters = cluster_->AggregateCounters().counters();
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }

  std::unique_ptr<core::Catalog> catalog_;
  ItemId item_;
  std::unique_ptr<system::Cluster> cluster_;
};

TEST_F(SnapshotReadTest, QuiescentSnapshotIsExactAndMovesNothing) {
  Build({});
  TxnResult r = Snapshot(SiteId(2));
  ASSERT_EQ(r.outcome, TxnOutcome::kCommitted) << r.status.ToString();
  EXPECT_EQ(r.read_values.at(item_), 400);
  // Unlike the full-read drain, every fragment stays exactly where it was.
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(cluster_->site(SiteId(s)).LocalValue(item_), 100);
  }
  // One request per remote site, each answered, and the first round's
  // certificate balanced: no retry rounds at quiescence.
  EXPECT_EQ(Counter("snapshot.req.sent"), 3u);
  EXPECT_EQ(Counter("snapshot.reply.received"), 3u);
  EXPECT_EQ(Counter("snapshot.rounds.unbalanced"), 0u);
  EXPECT_EQ(r.rounds, 1u);  // the dispatch round; no retry rounds
}

TEST_F(SnapshotReadTest, SingleSiteFastPathIsLocal) {
  system::ClusterOptions opts;
  opts.num_sites = 1;
  Build(opts);
  TxnResult r = Snapshot(SiteId(0), 100'000);
  ASSERT_EQ(r.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(r.read_values.at(item_), 400);
  EXPECT_EQ(Counter("snapshot.req.sent"), 0u);
}

TEST_F(SnapshotReadTest, SnapshotAfterUpdatesSeesCommittedTotal) {
  Build({});
  TxnSpec d;
  d.ops = {TxnOp::Decrement(item_, 37)};
  ASSERT_EQ(SubmitAndRun(SiteId(1), d).outcome, TxnOutcome::kCommitted);
  TxnSpec i;
  i.ops = {TxnOp::Increment(item_, 12)};
  ASSERT_EQ(SubmitAndRun(SiteId(3), i).outcome, TxnOutcome::kCommitted);
  // No Conc1 read gate to trip (a snapshot takes no locks and stamps no
  // fragments), so the first attempt commits — no client retry loop.
  TxnResult r = Snapshot(SiteId(0));
  ASSERT_EQ(r.outcome, TxnOutcome::kCommitted) << r.status.ToString();
  EXPECT_EQ(r.read_values.at(item_), 375);
}

TEST_F(SnapshotReadTest, SnapshotRacingInFlightVmStillExact) {
  // Start a transfer between two non-reader sites, then snapshot while its
  // Vm is in flight. The sender's created-ledger counts the departed value
  // before any receiver accepts it, so the cut never misses moving value —
  // without refusing or delaying the read the way the full drain must.
  system::ClusterOptions opts;
  opts.link.base_delay_us = 10'000;  // slow links: wide race window
  opts.link.jitter_mean_us = 5'000;
  Build(opts);
  ASSERT_TRUE(cluster_->site(SiteId(1)).SendValue(SiteId(3), item_, 40).ok());
  TxnResult r = Snapshot(SiteId(0), 8'000'000);
  ASSERT_EQ(r.outcome, TxnOutcome::kCommitted) << r.status.ToString();
  EXPECT_EQ(r.read_values.at(item_), 400);
  EXPECT_TRUE(cluster_->AuditAll().ok());
}

TEST_F(SnapshotReadTest, SnapshotDuringPartitionAbortsCleanly) {
  Build({});
  ASSERT_TRUE(cluster_->Partition({{SiteId(0), SiteId(1)},
                                   {SiteId(2), SiteId(3)}})
                  .ok());
  TxnResult r = Snapshot(SiteId(0));
  EXPECT_EQ(r.outcome, TxnOutcome::kAbortTimeout);
  // Nothing moved and nothing leaked: the snapshot held no value hostage.
  EXPECT_TRUE(cluster_->AuditAll().ok());
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(cluster_->site(SiteId(s)).LocalValue(item_), 100);
  }
}

TEST_F(SnapshotReadTest, RemoteCrashMidSnapshotRecoversAndCommits) {
  system::ClusterOptions opts;
  opts.link.base_delay_us = 10'000;
  opts.site.txn.timeout_us = 5'000'000;  // survive the outage
  Build(opts, 300);
  TxnResult out;
  bool done = false;
  TxnSpec spec;
  spec.ops = {TxnOp::ReadSnapshot(item_)};
  ASSERT_TRUE(cluster_->Submit(SiteId(0), spec, [&](const TxnResult& r) {
                        out = r;
                        done = true;
                      })
                  .ok());
  cluster_->RunFor(5'000);  // requests in flight
  cluster_->CrashSite(SiteId(2));
  cluster_->RunFor(100'000);
  EXPECT_FALSE(done) << "read terminated without site 2's reply";
  cluster_->RecoverSite(SiteId(2));
  cluster_->RunFor(6'000'000);
  ASSERT_TRUE(done);
  // The recovered site rebuilt its ledger from the durable log, so the
  // balance certificate still closes on the exact total.
  ASSERT_EQ(out.outcome, TxnOutcome::kCommitted) << out.status.ToString();
  EXPECT_EQ(out.read_values.at(item_), 300);
  EXPECT_TRUE(cluster_->AuditAll().ok());
}

TEST_F(SnapshotReadTest, ReaderCrashMidSnapshotGetsVerdict) {
  system::ClusterOptions opts;
  opts.link.base_delay_us = 10'000;
  Build(opts);
  TxnResult out;
  bool done = false;
  TxnSpec spec;
  spec.ops = {TxnOp::ReadSnapshot(item_)};
  ASSERT_TRUE(cluster_->Submit(SiteId(0), spec, [&](const TxnResult& r) {
                        out = r;
                        done = true;
                      })
                  .ok());
  cluster_->RunFor(5'000);
  cluster_->CrashSite(SiteId(0));
  // Non-blocking: the crash delivers the verdict immediately, and a pure
  // read has no commit record, so that verdict is an abort.
  ASSERT_TRUE(done);
  EXPECT_NE(out.outcome, TxnOutcome::kCommitted);
  cluster_->RecoverSite(SiteId(0));
  cluster_->RunFor(3'000'000);
  EXPECT_TRUE(cluster_->AuditAll().ok());
}

// Property sweep: snapshot reads interleaved with concurrent updates under
// lossy, duplicating, reordering links. Every committed snapshot must pass
// the windowed consistent-cut check (it serialises at its capture points),
// writes replay exactly, and the final totals must match — the full checker
// plus the snapshot-only oracle.
class SnapshotRaceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SnapshotRaceTest, ConcurrentSnapshotsAreConsistentCuts) {
  core::Catalog catalog;
  ItemId item = catalog.AddItem("pool", CountDomain::Instance(), 500);
  system::ClusterOptions opts;
  opts.num_sites = 4;
  opts.seed = GetParam();
  opts.link.loss_prob = 0.12;
  opts.link.duplicate_prob = 0.10;
  opts.link.jitter_mean_us = 3'000;  // reordering
  opts.site.txn.timeout_us = 800'000;
  system::Cluster cluster(&catalog, opts);
  cluster.BootstrapEven();

  Rng rng(GetParam() * 29 + 3);
  verify::HistoryChecker checker(&catalog);
  int snaps_committed = 0;

  for (int step = 0; step < 60; ++step) {
    SiteId at(static_cast<uint32_t>(rng.NextBounded(4)));
    double roll = rng.NextDouble();
    TxnSpec spec;
    if (roll < 0.3) {
      spec.ops = {TxnOp::ReadSnapshot(item)};
    } else {
      core::Value amount = rng.NextInt(1, 10);
      spec.ops = {rng.NextBool(0.5) ? TxnOp::Decrement(item, amount)
                                    : TxnOp::Increment(item, amount)};
    }
    (void)cluster.Submit(at, spec, [&, spec](const TxnResult& r) {
      if (!r.committed()) return;
      if (!r.read_values.empty()) ++snaps_committed;
      checker.RecordCommitAt(cluster.Now(), r.id, spec, r);
    });
    cluster.RunFor(rng.NextInt(10'000, 120'000));
  }
  cluster.RunFor(8'000'000);

  // Snapshots take no locks and trip no CC gate: under this mix the balance
  // certificate is the only thing between them and commit, so plenty land.
  EXPECT_GT(snaps_committed, 0) << "no snapshot committed under chaos";

  std::map<ItemId, core::Value> final_totals{{item, cluster.TotalOf(item)}};
  Status check = checker.Check(verify::HistoryChecker::Order::kTimestamp,
                               &final_totals);
  EXPECT_TRUE(check.ok()) << check.ToString();
  Status cuts = checker.CheckSnapshotCuts();
  EXPECT_TRUE(cuts.ok()) << cuts.ToString();
  EXPECT_TRUE(cluster.AuditAll().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotRaceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---- The oracle must REJECT a torn cut -----------------------------------------
//
// A checker that cannot fail a doctored history proves nothing. Plant a
// snapshot that observed only one leg of an atomic transfer — each item's
// value is individually reachable, so only the JOINT windowed check (whole
// transactions as the unit of visibility) can catch it.

class TornCutTest : public ::testing::Test {
 protected:
  TornCutTest() {
    a_ = catalog_.AddItem("a", CountDomain::Instance(), 100);
    b_ = catalog_.AddItem("b", CountDomain::Instance(), 117);
  }

  // One committed atomic transfer a->b of 10, commit at t=50us.
  void RecordTransfer(verify::HistoryChecker* checker) {
    TxnSpec spec = txn::MakeTransfer(a_, b_, 10);
    TxnResult r;
    r.id = TxnId(Timestamp(10, SiteId(1)).packed());
    r.outcome = TxnOutcome::kCommitted;
    r.latency_us = 10;
    checker->RecordCommitAt(50, r.id, spec, r);
  }

  // One committed two-item snapshot spanning [0, 100]us observing the given
  // values.
  void RecordSnapshot(verify::HistoryChecker* checker, core::Value va,
                      core::Value vb) {
    TxnSpec spec;
    spec.ops = {TxnOp::ReadSnapshot(a_), TxnOp::ReadSnapshot(b_)};
    TxnResult r;
    r.id = TxnId(Timestamp(20, SiteId(0)).packed());
    r.outcome = TxnOutcome::kCommitted;
    r.latency_us = 100;
    r.read_values = {{a_, va}, {b_, vb}};
    checker->RecordCommitAt(100, r.id, spec, r);
  }

  core::Catalog catalog_;
  ItemId a_, b_;
};

TEST_F(TornCutTest, ConsistentCutsAccepted) {
  for (auto [va, vb] : {std::pair<core::Value, core::Value>{100, 117},
                        std::pair<core::Value, core::Value>{90, 127}}) {
    verify::HistoryChecker checker(&catalog_);
    RecordTransfer(&checker);
    RecordSnapshot(&checker, va, vb);
    EXPECT_TRUE(checker.CheckSnapshotCuts().ok()) << va << "/" << vb;
    EXPECT_TRUE(
        checker.Check(verify::HistoryChecker::Order::kTimestamp, nullptr)
            .ok())
        << va << "/" << vb;
  }
}

TEST_F(TornCutTest, TornCutRejectedByBothOracles) {
  // Saw the transfer's debit on a but not its credit on b: torn.
  verify::HistoryChecker checker(&catalog_);
  RecordTransfer(&checker);
  RecordSnapshot(&checker, 90, 117);
  Status cuts = checker.CheckSnapshotCuts();
  ASSERT_FALSE(cuts.ok());
  EXPECT_NE(cuts.ToString().find("jointly unreachable"), std::string::npos)
      << cuts.ToString();
  EXPECT_FALSE(
      checker.Check(verify::HistoryChecker::Order::kTimestamp, nullptr).ok());
  EXPECT_FALSE(
      checker.Check(verify::HistoryChecker::Order::kCommitOrder, nullptr)
          .ok());
}

TEST_F(TornCutTest, MissingReadValueRejected) {
  verify::HistoryChecker checker(&catalog_);
  TxnSpec spec;
  spec.ops = {TxnOp::ReadSnapshot(a_)};
  TxnResult r;
  r.id = TxnId(Timestamp(30, SiteId(0)).packed());
  r.outcome = TxnOutcome::kCommitted;
  r.latency_us = 10;  // read_values left empty
  checker.RecordCommitAt(40, r.id, spec, r);
  Status cuts = checker.CheckSnapshotCuts();
  ASSERT_FALSE(cuts.ok());
  EXPECT_NE(cuts.ToString().find("read value missing"), std::string::npos);
}

}  // namespace
}  // namespace dvp
