// Tests for the verification tooling itself: the conservation auditor and
// the serializability checker must not only pass correct histories — they
// must *fail* doctored ones (a checker that can't detect violations proves
// nothing).
#include <gtest/gtest.h>

#include "system/cluster.h"
#include "verify/conservation.h"
#include "verify/serializability.h"

namespace dvp {
namespace {

using core::CountDomain;
using txn::TxnOp;
using txn::TxnResult;
using txn::TxnSpec;
using verify::HistoryChecker;

// ---- Conservation auditor ------------------------------------------------------

class AuditorTest : public ::testing::Test {
 protected:
  AuditorTest() {
    item_ = catalog_.AddItem("pool", CountDomain::Instance(), 100);
    system::ClusterOptions opts;
    opts.num_sites = 2;
    opts.seed = 5;
    cluster_ = std::make_unique<system::Cluster>(&catalog_, opts);
    cluster_->BootstrapEven();
  }

  core::Catalog catalog_;
  ItemId item_;
  std::unique_ptr<system::Cluster> cluster_;
};

TEST_F(AuditorTest, BreakdownSeparatesFragmentsAndInFlight) {
  ASSERT_TRUE(cluster_->Partition({{SiteId(0)}, {SiteId(1)}}).ok());
  ASSERT_TRUE(cluster_->site(SiteId(0)).SendValue(SiteId(1), item_, 12).ok());
  auto b = cluster_->Audit(item_);
  EXPECT_EQ(b.site_total, 88);
  EXPECT_EQ(b.in_flight, 12);
  EXPECT_EQ(b.live_vms, 1u);
  EXPECT_EQ(b.committed_delta, 0);
  EXPECT_EQ(b.total(), 100);
}

TEST_F(AuditorTest, CommittedDeltaTracked) {
  TxnSpec spec;
  spec.ops = {TxnOp::Decrement(item_, 30)};
  bool done = false;
  ASSERT_TRUE(cluster_
                  ->Submit(SiteId(0), spec,
                           [&](const TxnResult& r) {
                             done = r.committed();
                           })
                  .ok());
  cluster_->RunFor(1'000'000);
  ASSERT_TRUE(done);
  auto b = cluster_->Audit(item_);
  EXPECT_EQ(b.committed_delta, -30);
  EXPECT_EQ(b.total(), 70);
  EXPECT_TRUE(cluster_->AuditAll().ok());
}

TEST_F(AuditorTest, DetectsDoctoredValueLoss) {
  // Forge a commit record that claims to have destroyed 10 units without a
  // matching delta — the auditor must notice.
  wal::TxnCommitRec forged;
  forged.txn = TxnId(999999);
  forged.ts_packed = Timestamp(500, SiteId(0)).packed();
  // Fragment drops by 10 but delta says 0: value vanished.
  forged.writes = {wal::FragmentWrite{item_, 40, 0, 0}};
  cluster_->storage(SiteId(0)).Append(wal::LogRecord(forged));
  Status audit = cluster_->AuditAll();
  EXPECT_FALSE(audit.ok());
  EXPECT_EQ(audit.code(), StatusCode::kInternal);
}

TEST_F(AuditorTest, DetectsDoctoredDuplication) {
  // Forge an acceptance for a Vm that was never created: value from nowhere.
  wal::VmAcceptRec forged;
  forged.vm = VmId(123456789);
  forged.src = SiteId(0);
  forged.item = item_;
  forged.amount = 25;
  forged.write = wal::FragmentWrite{item_, 75, 25, 0};
  cluster_->storage(SiteId(1)).Append(wal::LogRecord(forged));
  EXPECT_FALSE(cluster_->AuditAll().ok());
}

// ---- Cross-item conservation oracles -------------------------------------------
//
// The transaction-scoped invariants behind E13: every atomic-set commit
// record zero-sum (CheckAtomicSetCommits), and the group-level sum balancing
// with atomic records excluded (AuditGroup). Each oracle must also FAIL a
// doctored log — an oracle that can't reject forgeries proves nothing.

class GroupAuditTest : public ::testing::Test {
 protected:
  GroupAuditTest() {
    a_ = catalog_.AddItem("a", CountDomain::Instance(), 100);
    b_ = catalog_.AddItem("b", CountDomain::Instance(), 100);
    system::ClusterOptions opts;
    opts.num_sites = 2;
    opts.seed = 5;
    cluster_ = std::make_unique<system::Cluster>(&catalog_, opts);
    cluster_->BootstrapEven();
  }

  wal::TxnCommitRec ForgedAtomic(core::Value delta_a, core::Value delta_b) {
    // Post values consistent with site 0's even fragments (50/50), so the
    // per-item audit — which counts atomic legs individually — balances and
    // only the transaction-scoped oracles can notice.
    wal::TxnCommitRec rec;
    rec.txn = TxnId(424242);
    rec.ts_packed = Timestamp(700, SiteId(0)).packed();
    rec.atomic_set = true;
    rec.writes = {wal::FragmentWrite{a_, 50 + delta_a, delta_a, 0},
                  wal::FragmentWrite{b_, 50 + delta_b, delta_b, 0}};
    return rec;
  }

  core::Catalog catalog_;
  ItemId a_, b_;
  std::unique_ptr<system::Cluster> cluster_;
};

TEST_F(GroupAuditTest, CleanClusterPassesBothOracles) {
  auto storages = cluster_->Storages();
  EXPECT_TRUE(verify::CheckAtomicSetCommits(storages).ok());
  std::vector<ItemId> group{a_, b_};
  EXPECT_TRUE(verify::AuditGroup(storages, catalog_, group).ok());
}

TEST_F(GroupAuditTest, ZeroSumAtomicRecordPasses) {
  cluster_->storage(SiteId(0)).Append(wal::LogRecord(ForgedAtomic(-10, 10)));
  auto storages = cluster_->Storages();
  EXPECT_TRUE(verify::CheckAtomicSetCommits(storages).ok());
  std::vector<ItemId> group{a_, b_};
  EXPECT_TRUE(verify::AuditGroup(storages, catalog_, group).ok());
}

TEST_F(GroupAuditTest, NonZeroSumAtomicRecordIsRejected) {
  cluster_->storage(SiteId(0)).Append(wal::LogRecord(ForgedAtomic(-10, 25)));
  Status s = verify::CheckAtomicSetCommits(cluster_->Storages());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("not zero-sum"), std::string::npos);
}

TEST_F(GroupAuditTest, SingleLegAtomicRecordIsRejected) {
  wal::TxnCommitRec rec = ForgedAtomic(-10, 25);
  rec.writes.resize(1);  // an "atomic set" with one leg is a forgery
  cluster_->storage(SiteId(0)).Append(wal::LogRecord(rec));
  Status s = verify::CheckAtomicSetCommits(cluster_->Storages());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("need >= 2"), std::string::npos);
}

TEST_F(GroupAuditTest, GroupAuditCatchesMintingAtomicRecord) {
  // The minted 15 units hide from every per-item audit (each leg's post
  // value matches its delta) — only the group sum with atomic records
  // excluded exposes them.
  cluster_->storage(SiteId(0)).Append(wal::LogRecord(ForgedAtomic(-10, 25)));
  std::vector<ItemId> group{a_, b_};
  Status s = verify::AuditGroup(cluster_->Storages(), catalog_, group);
  EXPECT_FALSE(s.ok());
}

// ---- HistoryChecker -------------------------------------------------------------

class CheckerTest : public ::testing::Test {
 protected:
  CheckerTest() : item_(catalog_.AddItem("x", CountDomain::Instance(), 100)) {}

  TxnResult Committed(std::map<ItemId, core::Value> reads = {}) {
    TxnResult r;
    r.outcome = txn::TxnOutcome::kCommitted;
    r.read_values = std::move(reads);
    return r;
  }

  TxnSpec Dec(core::Value m) {
    TxnSpec s;
    s.ops = {TxnOp::Decrement(item_, m)};
    return s;
  }
  TxnSpec Inc(core::Value m) {
    TxnSpec s;
    s.ops = {TxnOp::Increment(item_, m)};
    return s;
  }
  TxnSpec Read() {
    TxnSpec s;
    s.ops = {TxnOp::ReadFull(item_)};
    return s;
  }

  TxnId Ts(uint64_t counter) {
    return TxnId(Timestamp(counter, SiteId(0)).packed());
  }

  core::Catalog catalog_;
  ItemId item_;
};

TEST_F(CheckerTest, AcceptsValidTimestampHistory) {
  HistoryChecker checker(&catalog_);
  checker.RecordCommit(Ts(1), Dec(40), Committed());
  checker.RecordCommit(Ts(2), Inc(10), Committed());
  checker.RecordCommit(Ts(3), Read(), Committed({{item_, 70}}));
  std::map<ItemId, core::Value> finals{{item_, 70}};
  EXPECT_TRUE(
      checker.Check(HistoryChecker::Order::kTimestamp, &finals).ok());
}

TEST_F(CheckerTest, RejectsOverdraft) {
  HistoryChecker checker(&catalog_);
  checker.RecordCommit(Ts(1), Dec(80), Committed());
  checker.RecordCommit(Ts(2), Dec(80), Committed());  // impossible
  Status s = checker.Check(HistoryChecker::Order::kTimestamp, nullptr);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("not applicable"), std::string::npos);
}

TEST_F(CheckerTest, RejectsWrongReadValue) {
  HistoryChecker checker(&catalog_);
  checker.RecordCommit(Ts(1), Dec(40), Committed());
  checker.RecordCommit(Ts(2), Read(), Committed({{item_, 99}}));  // lies
  EXPECT_FALSE(
      checker.Check(HistoryChecker::Order::kTimestamp, nullptr).ok());
}

TEST_F(CheckerTest, RejectsWrongFinalTotals) {
  HistoryChecker checker(&catalog_);
  checker.RecordCommit(Ts(1), Dec(40), Committed());
  std::map<ItemId, core::Value> finals{{item_, 99}};
  EXPECT_FALSE(
      checker.Check(HistoryChecker::Order::kTimestamp, &finals).ok());
}

TEST_F(CheckerTest, TimestampOrderIsNotRecordOrder) {
  HistoryChecker checker(&catalog_);
  // Recorded out of timestamp order; replay must sort by TS(t).
  checker.RecordCommit(Ts(2), Dec(100), Committed());
  checker.RecordCommit(Ts(1), Inc(50), Committed());
  std::map<ItemId, core::Value> finals{{item_, 50}};
  EXPECT_TRUE(
      checker.Check(HistoryChecker::Order::kTimestamp, &finals).ok());
}

TEST_F(CheckerTest, WindowedReadAcceptsAnyConsistentPlacement) {
  HistoryChecker checker(&catalog_);
  TxnResult dec = Committed();
  // Read starts at t=0, commits at t=100; a decrement of 30 commits at t=50.
  // Either 100 or 70 is a consistent read value.
  TxnResult read70 = Committed({{item_, 70}});
  read70.latency_us = 100;
  checker.RecordCommitAt(50, Ts(2), Dec(30), dec);
  checker.RecordCommitAt(100, Ts(1), Read(), read70);
  EXPECT_TRUE(
      checker.Check(HistoryChecker::Order::kCommitOrder, nullptr).ok());

  HistoryChecker checker2(&catalog_);
  TxnResult read100 = Committed({{item_, 100}});
  read100.latency_us = 100;
  checker2.RecordCommitAt(50, Ts(2), Dec(30), dec);
  checker2.RecordCommitAt(100, Ts(1), Read(), read100);
  EXPECT_TRUE(
      checker2.Check(HistoryChecker::Order::kCommitOrder, nullptr).ok());
}

TEST_F(CheckerTest, WindowedReadRejectsImpossibleValue) {
  HistoryChecker checker(&catalog_);
  TxnResult read = Committed({{item_, 85}});  // 100-30 or 100, never 85
  read.latency_us = 100;
  checker.RecordCommitAt(50, Ts(2), Dec(30), Committed());
  checker.RecordCommitAt(100, Ts(1), Read(), read);
  Status s = checker.Check(HistoryChecker::Order::kCommitOrder, nullptr);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unreachable"), std::string::npos);
}

TEST_F(CheckerTest, WindowedReadMustIncludePriorCommits) {
  HistoryChecker checker(&catalog_);
  // Decrement committed BEFORE the read started: it must be visible.
  TxnResult read = Committed({{item_, 100}});  // claims not to see it
  read.latency_us = 10;  // started at 90
  checker.RecordCommitAt(50, Ts(2), Dec(30), Committed());
  checker.RecordCommitAt(100, Ts(1), Read(), read);
  EXPECT_FALSE(
      checker.Check(HistoryChecker::Order::kCommitOrder, nullptr).ok());
}

// ---- Multi-item histories -------------------------------------------------------

class MultiItemCheckerTest : public ::testing::Test {
 protected:
  MultiItemCheckerTest()
      : a_(catalog_.AddItem("a", CountDomain::Instance(), 100)),
        b_(catalog_.AddItem("b", CountDomain::Instance(), 100)) {}

  TxnResult Committed(std::map<ItemId, core::Value> reads = {}) {
    TxnResult r;
    r.outcome = txn::TxnOutcome::kCommitted;
    r.read_values = std::move(reads);
    return r;
  }

  TxnSpec ReadBoth() {
    TxnSpec s;
    s.ops = {TxnOp::ReadFull(a_), TxnOp::ReadFull(b_)};
    return s;
  }

  TxnId Ts(uint64_t counter) {
    return TxnId(Timestamp(counter, SiteId(0)).packed());
  }

  core::Catalog catalog_;
  ItemId a_, b_;
};

TEST_F(MultiItemCheckerTest, RejectsCommittedAtomicSetThatIsNotZeroSum) {
  // The replay enforces the atomic-set contract itself: a committed
  // transfer whose legs do not cancel is a history no correct execution
  // could have produced, whatever the totals say.
  HistoryChecker checker(&catalog_);
  TxnSpec crooked;
  crooked.ops = {TxnOp::Decrement(a_, 10), TxnOp::Increment(b_, 5)};
  crooked.atomic_set = true;
  checker.RecordCommit(Ts(1), crooked, Committed());
  Status s = checker.Check(HistoryChecker::Order::kTimestamp, nullptr);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("not zero-sum"), std::string::npos);
}

TEST_F(MultiItemCheckerTest, AcceptsTransferThenConsistentJointRead) {
  HistoryChecker checker(&catalog_);
  checker.RecordCommitAt(50, Ts(2), txn::MakeTransfer(a_, b_, 30),
                         Committed());
  // Either both legs visible (70, 130) or neither (100, 100) is consistent.
  for (auto [va, vb] : {std::pair<core::Value, core::Value>{70, 130},
                        std::pair<core::Value, core::Value>{100, 100}}) {
    TxnResult read = Committed({{a_, va}, {b_, vb}});
    read.latency_us = 100;
    HistoryChecker c2(&catalog_);
    c2.RecordCommitAt(50, Ts(2), txn::MakeTransfer(a_, b_, 30), Committed());
    c2.RecordCommitAt(100, Ts(1), ReadBoth(), read);
    EXPECT_TRUE(c2.Check(HistoryChecker::Order::kCommitOrder, nullptr).ok())
        << "read (" << va << ", " << vb << ") should be consistent";
  }
}

// Pinned regression for the missed cross-item conflict edge: validating each
// read item's window subset-sum INDEPENDENTLY accepts a reader that saw only
// one leg of an atomic transfer — per item, {transfer} explains a=70 and {}
// explains b=100, so a per-item checker passes. The window choice must be
// per whole transaction (one joint subset), and no joint subset yields
// (70, 100). This history must FAIL; a checker that passes it would have
// missed the torn-read anomaly entirely.
TEST_F(MultiItemCheckerTest, RejectsJointReadThatTearsAnAtomicTransfer) {
  HistoryChecker checker(&catalog_);
  TxnResult torn = Committed({{a_, 70}, {b_, 100}});
  torn.latency_us = 100;
  checker.RecordCommitAt(50, Ts(2), txn::MakeTransfer(a_, b_, 30),
                         Committed());
  checker.RecordCommitAt(100, Ts(1), ReadBoth(), torn);
  Status s = checker.Check(HistoryChecker::Order::kCommitOrder, nullptr);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("jointly unreachable"), std::string::npos);
}

}  // namespace
}  // namespace dvp
